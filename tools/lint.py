#!/usr/bin/env python3
"""Repo-local lint: the rules the compilers cannot (or do not) enforce.

Four checks, all fatal:

  1. Bare standard synchronization primitives (std::mutex, std::lock_guard,
     std::unique_lock, std::scoped_lock, std::condition_variable*,
     std::shared_mutex/std::shared_lock) anywhere under src/ except
     src/common/mutex.h, which wraps them. Raw primitives are invisible to
     the Clang thread-safety analysis; the annotated xks::Mutex/MutexLock/
     CondVar wrappers are the only sanctioned spelling.

  2. XKS_NO_THREAD_SAFETY_ANALYSIS without a justification. Every opt-out
     must carry a comment containing the word "justification" within the
     three lines above the use (or on the same line), explaining why the
     analysis cannot see the invariant. Unexplained opt-outs rot into
     unchecked code.

  3. Include guards. Every header under src/ must use the canonical
     XKS_<PATH>_H_ guard derived from its repo-relative path; headers under
     tests/ and bench/ must carry some XKS_*_H_ guard. #pragma once does not
     count (the repo standardizes on guards).

  4. Decode safety. Inside any function named Decode* or Parse* under src/
     (the untrusted-input decoders), raw byte-shuffling — memcpy/memmove,
     reinterpret_cast, pointer arithmetic on .data(), subscript-with-
     post-increment, manual position advances — is banned. All decoding
     goes through the bounds-checked xks::ByteReader; src/common/codec.{h,cc}
     is the one sanctioned home of offset arithmetic and is exempt. A
     deliberate exception needs a comment containing "justification" within
     the three lines above the use (same escape hatch as rule 2).

Comments and string literals are stripped before rule 1 and 2 matching, so
prose *about* std::mutex (including this file's own docstring) cannot trip
the check.

Usage: python3 tools/lint.py [repo_root]   (defaults to the script's parent)
Exit status 0 = clean, 1 = violations (one line each on stderr).
"""

import os
import re
import sys

BARE_PRIMITIVE = re.compile(
    r"std::(mutex|timed_mutex|recursive_mutex|shared_mutex|lock_guard|"
    r"unique_lock|scoped_lock|shared_lock|condition_variable(_any)?)\b"
)
OPT_OUT = "XKS_NO_THREAD_SAFETY_ANALYSIS"
GUARD_EXEMPT = {os.path.join("src", "common", "mutex.h")}
DECODE_FUNC = re.compile(r"\b((?:Decode|Parse)\w*)\s*\(")
DECODE_BANNED = (
    (re.compile(r"\bmem(cpy|move)\s*\("), "memcpy/memmove"),
    (re.compile(r"\breinterpret_cast\s*<"), "reinterpret_cast"),
    (re.compile(r"\.data\(\)\s*\+"), "pointer arithmetic on .data()"),
    (re.compile(r"\[\s*\w+\s*\+\+\s*\]"), "subscript with post-increment"),
    (re.compile(r"\b\w*pos\w*\s*(\+=|\+\+|--|-=)"), "manual offset advance"),
)
DECODE_EXEMPT = {
    os.path.join("src", "common", "codec.h"),
    os.path.join("src", "common", "codec.cc"),
}
QUALIFIER = re.compile(r"\s*(const|noexcept|override|final|\w+)\b")
HEADER_DIRS = ("src", "tests", "bench")
SOURCE_DIRS = ("src",)


def strip_comments_and_strings(text: str) -> str:
    """Blank out //, /* */ comments and string/char literals, keeping
    newlines so line numbers survive."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif c in "\"'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def decode_function_spans(code: str):
    """Yields (name, first_line, last_line) for every Decode*/Parse*
    function DEFINITION in comment/string-stripped code. A match counts as
    a definition when its argument list is directly followed (modulo
    qualifiers) by the opening brace of a body — calls are followed by
    ';', ')', '.', etc. and are skipped."""
    for m in DECODE_FUNC.finditer(code):
        open_paren = code.find("(", m.end() - 1)
        if open_paren < 0:
            continue
        depth, i = 1, open_paren + 1
        while i < len(code) and depth:
            if code[i] == "(":
                depth += 1
            elif code[i] == ")":
                depth -= 1
            i += 1
        if depth:
            continue
        # Skip qualifiers between the argument list and the body.
        while True:
            q = QUALIFIER.match(code, i)
            if not q:
                break
            i = q.end()
        while i < len(code) and code[i] in " \t\n":
            i += 1
        if i >= len(code) or code[i] != "{":
            continue
        body_start = i
        depth, i = 1, i + 1
        while i < len(code) and depth:
            if code[i] == "{":
                depth += 1
            elif code[i] == "}":
                depth -= 1
            i += 1
        first_line = code.count("\n", 0, body_start) + 1
        last_line = code.count("\n", 0, i) + 1
        yield m.group(1), first_line, last_line


def guard_name(rel_path: str) -> str:
    # src/server/wire.h -> XKS_SERVER_WIRE_H_ (repo convention: the guard
    # roots at the project namespace, not the src/ directory).
    trimmed = rel_path[len("src" + os.sep):]
    return "XKS_" + re.sub(r"[^A-Za-z0-9]", "_", trimmed).upper() + "_"


def check_file(root: str, rel: str, errors: list) -> None:
    path = os.path.join(root, rel)
    with open(path, encoding="utf-8") as f:
        text = f.read()
    code = strip_comments_and_strings(text)
    code_lines = code.splitlines()
    raw_lines = text.splitlines()
    top = rel.split(os.sep, 1)[0]

    # Rule 1: bare primitives under src/ (the wrapper itself is exempt).
    if top in SOURCE_DIRS and rel not in GUARD_EXEMPT:
        for lineno, line in enumerate(code_lines, 1):
            m = BARE_PRIMITIVE.search(line)
            if m:
                errors.append(
                    f"{rel}:{lineno}: bare std::{m.group(1)} — use "
                    "xks::Mutex/MutexLock/CondVar from src/common/mutex.h"
                )

    # Rule 2: opt-outs need a justification comment nearby (the comment
    # lives in the raw text; the use is matched in stripped code so the
    # wrapper header's documentation of the macro does not count as a use).
    for lineno, line in enumerate(code_lines, 1):
        if OPT_OUT in line:
            window = raw_lines[max(0, lineno - 4) : lineno]
            if not any("justification" in w.lower() for w in window):
                errors.append(
                    f"{rel}:{lineno}: {OPT_OUT} without a justification "
                    "comment (say 'Justification: ...' within 3 lines above)"
                )

    # Rule 4: no raw byte-shuffling inside Decode*/Parse* functions (the
    # justification escape hatch mirrors rule 2's).
    if top in SOURCE_DIRS and rel not in DECODE_EXEMPT:
        for func, first, last in decode_function_spans(code):
            for lineno in range(first, min(last, len(code_lines)) + 1):
                line = code_lines[lineno - 1]
                for pattern, label in DECODE_BANNED:
                    if not pattern.search(line):
                        continue
                    window = raw_lines[max(0, lineno - 4) : lineno]
                    if any("justification" in w.lower() for w in window):
                        continue
                    errors.append(
                        f"{rel}:{lineno}: {label} inside {func}() — decode "
                        "untrusted bytes through xks::ByteReader "
                        "(src/common/codec.h); raw offset arithmetic is "
                        "only sanctioned there"
                    )

    # Rule 3: include guards.
    if rel.endswith(".h"):
        want = guard_name(rel) if top == "src" else None
        m = re.search(r"#ifndef\s+(\S+)\s*\n\s*#define\s+(\S+)", text)
        if not m or m.group(1) != m.group(2):
            errors.append(f"{rel}: missing or mismatched include guard")
        elif want is not None and m.group(1) != want:
            errors.append(
                f"{rel}: include guard {m.group(1)} should be {want}"
            )
        elif want is None and not re.match(r"XKS_\w+_H_$", m.group(1)):
            errors.append(
                f"{rel}: include guard {m.group(1)} should match XKS_*_H_"
            )


def main() -> int:
    root = sys.argv[1] if len(sys.argv) > 1 else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    )
    errors = []
    scanned = 0
    for top in HEADER_DIRS:
        for dirpath, _, filenames in os.walk(os.path.join(root, top)):
            for name in sorted(filenames):
                if not name.endswith((".h", ".cc")):
                    continue
                rel = os.path.relpath(os.path.join(dirpath, name), root)
                scanned += 1
                check_file(root, rel, errors)
    for err in errors:
        print(err, file=sys.stderr)
    print(f"lint.py: {scanned} files scanned, {len(errors)} violation(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
