// Compile-fail smoke test for the thread-safety gate.
//
// The CI static-analysis job compiles this TU twice with clang:
//
//   * without -DXKS_EXPECT_ANALYSIS_FAIL: it must compile cleanly, proving
//     the annotated wrappers themselves are analysis-clean;
//   * with -DXKS_EXPECT_ANALYSIS_FAIL: it must FAIL under
//     -Werror=thread-safety, proving the gate actually fires. A gate that
//     cannot fail is decoration — this file is the proof it can.
//
// Each guarded block below is a canonical violation the analysis is
// expected to catch: unguarded read of a guarded field, write without the
// lock, and a REQUIRES function called lock-free.

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() {
    xks::MutexLock lock(mutex_);
    ++value_;
  }

  int ReadLocked() XKS_REQUIRES(mutex_) { return value_; }

  int ReadSafely() {
    xks::MutexLock lock(mutex_);
    return ReadLocked();
  }

#ifdef XKS_EXPECT_ANALYSIS_FAIL
  // Violation 1: reading a guarded field with no lock held.
  int ReadRacy() { return value_; }

  // Violation 2: writing a guarded field with no lock held.
  void WriteRacy() { ++value_; }

  // Violation 3: calling a REQUIRES(mutex_) function without the lock.
  int CallRacy() { return ReadLocked(); }
#endif

 private:
  xks::Mutex mutex_;
  int value_ XKS_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return counter.ReadSafely() == 1 ? 0 : 1;
}
