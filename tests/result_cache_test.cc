// xks::ResultCache in isolation: exact-match keys, LRU recency order under
// byte-budget eviction, the per-entry size cap, counter accounting, and a
// concurrent probe/fill/evict hammer (this binary runs under TSan in CI).

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/cache/result_cache.h"

namespace xks {
namespace {

/// A distinguishable candidate list: `marker` is stamped into the content
/// (so a hammer hit can verify it got the right entry) and `label_bytes`
/// inflates the approximate size.
std::shared_ptr<const SearchResult> MakeResult(size_t label_bytes,
                                               size_t marker) {
  auto result = std::make_shared<SearchResult>();
  FragmentResult fragment;
  fragment.rtf.root = Dewey({1, static_cast<uint32_t>(marker)});
  FragmentNode node;
  node.dewey = Dewey({1});
  node.label = std::string(label_bytes, 'x');
  fragment.fragment.CreateRoot(node);
  result->fragments.push_back(std::move(fragment));
  result->keyword_node_count = marker;
  return result;
}

CacheKey Key(const std::string& name) {
  return CacheKey::FromMaterial("key:" + name);
}

TEST(ResultCacheTest, MissThenHit) {
  ResultCache cache(CacheConfig{});
  EXPECT_EQ(cache.Get(Key("a")), nullptr);

  auto value = MakeResult(16, 1);
  cache.Put(Key("a"), value);
  std::shared_ptr<const SearchResult> hit = cache.Get(Key("a"));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), value.get());

  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.entry_count, 1u);
  EXPECT_GT(stats.bytes_in_use, 0u);
  EXPECT_TRUE(stats.enabled);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(ResultCacheTest, ExactMaterialMatchNotJustHash) {
  // Same hash, different material must miss: forge a key carrying another
  // material's hash to prove the probe compares bytes, not digests.
  ResultCache cache(CacheConfig{});
  cache.Put(Key("a"), MakeResult(16, 1));
  CacheKey forged = Key("a");
  forged.material = "key:b";  // hash still Key("a")'s
  EXPECT_EQ(cache.Get(forged), nullptr);
}

TEST(ResultCacheTest, ReplaceSameKeyKeepsOneEntry) {
  ResultCache cache(CacheConfig{});
  cache.Put(Key("a"), MakeResult(16, 1));
  const size_t bytes_first = cache.stats().bytes_in_use;
  cache.Put(Key("a"), MakeResult(512, 2));

  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entry_count, 1u);
  EXPECT_EQ(stats.insertions, 2u);
  EXPECT_GT(stats.bytes_in_use, bytes_first);  // re-charged, not leaked

  std::shared_ptr<const SearchResult> hit = cache.Get(Key("a"));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->keyword_node_count, 2u);
}

/// The charge of one entry under `config`, observed through the counters
/// (the bookkeeping overhead constant is internal, so measure it).
size_t ObservedCharge(const CacheConfig& config, const std::string& name,
                      size_t label_bytes) {
  ResultCache probe(config);
  probe.Put(Key(name), MakeResult(label_bytes, 0));
  return probe.stats().bytes_in_use;
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedUnderBytePressure) {
  CacheConfig config;
  config.shards = 1;
  const size_t charge = ObservedCharge(config, "a", 64);
  ASSERT_GT(charge, 0u);
  config.capacity_bytes = 2 * charge + charge / 2;  // room for two entries
  ResultCache cache(config);

  cache.Put(Key("a"), MakeResult(64, 1));
  cache.Put(Key("b"), MakeResult(64, 2));
  ASSERT_NE(cache.Get(Key("a")), nullptr);  // refresh a; b is now LRU
  cache.Put(Key("c"), MakeResult(64, 3));   // over budget: b must go

  EXPECT_EQ(cache.Get(Key("b")), nullptr);
  EXPECT_NE(cache.Get(Key("a")), nullptr);
  EXPECT_NE(cache.Get(Key("c")), nullptr);

  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entry_count, 2u);
  EXPECT_LE(stats.bytes_in_use, config.capacity_bytes);
}

TEST(ResultCacheTest, PerEntryCapRejectsOversizedValues) {
  CacheConfig config;
  config.shards = 1;
  config.max_entry_bytes = 256;
  ResultCache cache(config);

  cache.Put(Key("big"), MakeResult(4096, 1));
  EXPECT_EQ(cache.Get(Key("big")), nullptr);

  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.insertions, 0u);
  EXPECT_EQ(stats.entry_count, 0u);
  EXPECT_EQ(stats.bytes_in_use, 0u);
}

TEST(ResultCacheTest, EntryLargerThanShardBudgetTrimsItselfOut) {
  CacheConfig config;
  config.shards = 1;
  config.capacity_bytes = 64;  // smaller than any entry's charge
  config.max_entry_bytes = 0;  // no per-entry cap: budget does the work
  ResultCache cache(config);

  cache.Put(Key("a"), MakeResult(512, 1));
  EXPECT_EQ(cache.Get(Key("a")), nullptr);
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entry_count, 0u);
  EXPECT_EQ(stats.bytes_in_use, 0u);
}

TEST(ResultCacheTest, EvictionDoesNotInvalidateHandedOutValues) {
  CacheConfig config;
  config.shards = 1;
  config.capacity_bytes = 64;
  config.max_entry_bytes = 0;
  ResultCache cache(config);

  auto value = MakeResult(512, 7);
  cache.Put(Key("a"), value);  // immediately trimmed back out
  EXPECT_EQ(cache.stats().entry_count, 0u);
  // The caller's reference (and any reference a Get handed out before the
  // eviction) stays fully usable.
  EXPECT_EQ(value->keyword_node_count, 7u);
  EXPECT_EQ(value->fragments.size(), 1u);
}

TEST(ResultCacheTest, ZeroShardConfigClampsToOne) {
  CacheConfig config;
  config.shards = 0;
  ResultCache cache(config);
  cache.Put(Key("a"), MakeResult(16, 1));
  EXPECT_NE(cache.Get(Key("a")), nullptr);
}

TEST(ResultCacheTest, ApproximateBytesGrowWithPayload) {
  auto small = MakeResult(8, 0);
  auto large = MakeResult(4096, 0);
  EXPECT_GT(ApproximateResultBytes(*large), ApproximateResultBytes(*small));
  EXPECT_GE(ApproximateResultBytes(*large) - ApproximateResultBytes(*small),
            4096u - 8u);
}

TEST(ResultCacheTest, ConcurrentProbeFillEvictHammer) {
  // 8 threads over a 32-key space against a cache that can only hold a few
  // entries per shard: every operation is a probe, every miss a fill, and
  // the tiny budget keeps eviction running the whole time. Checks: hits
  // return the right entry (exact-match keys), counters stay coherent, and
  // TSan (CI) sees no races between Get/Put/stats.
  CacheConfig config;
  config.shards = 2;
  const size_t charge = ObservedCharge(config, "00", 64);
  config.capacity_bytes = 6 * charge;  // ~3 entries per shard
  ResultCache cache(config);

  constexpr size_t kThreads = 8;
  constexpr size_t kOpsPerThread = 2000;
  constexpr size_t kKeySpace = 32;
  std::atomic<uint64_t> observed_hits{0};
  std::atomic<uint64_t> observed_misses{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t op = 0; op < kOpsPerThread; ++op) {
        const size_t k = (op * (t + 1) + t) % kKeySpace;
        const std::string name =
            std::string(1, static_cast<char>('a' + k / 8)) +
            std::string(1, static_cast<char>('a' + k % 8));
        CacheKey key = Key(name);
        if (std::shared_ptr<const SearchResult> hit = cache.Get(key)) {
          // Exact keys: a hit must carry this key's marker.
          EXPECT_EQ(hit->keyword_node_count, k);
          observed_hits.fetch_add(1, std::memory_order_relaxed);
        } else {
          cache.Put(key, MakeResult(64, k));
          observed_misses.fetch_add(1, std::memory_order_relaxed);
        }
        if (op % 256 == 0) (void)cache.stats();  // stats race coverage
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, observed_hits.load());
  EXPECT_EQ(stats.misses, observed_misses.load());
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kOpsPerThread);
  EXPECT_EQ(stats.insertions, stats.misses);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes_in_use, config.capacity_bytes);
}

}  // namespace
}  // namespace xks
