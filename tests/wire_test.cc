// The xksd wire protocol: lossless request round-trips, response
// projection round-trips, status payloads, frame framing over real fds,
// and a corruption sweep — truncations, trailing garbage, out-of-range
// enums and hostile length prefixes must all fail with a clean Status,
// never crash or over-allocate.

#include "src/server/wire.h"

#include <unistd.h>

#include <memory>
#include <string>
#include <thread>

#include <gtest/gtest.h>

namespace xks {
namespace {

SearchRequest MakeFullRequest() {
  SearchRequest request;
  request.query = "title:xml keyword search";
  request.terms = {QueryTerm{"xml", "title"}, QueryTerm{"keyword", ""}};
  request.documents = {0, 3, 17};
  request.semantics = LcaSemantics::kSlca;
  request.elca_algorithm = ElcaAlgorithm::kBruteForce;
  request.slca_algorithm = SlcaAlgorithm::kScanEager;
  request.pruning = PruningPolicy::kContributor;
  request.max_parallelism = 3;
  request.top_k = 25;
  request.cursor = std::string("opaque\x00\x01\x7f cursor bytes", 22);
  request.rank = false;
  request.use_cache = false;
  request.include_snippets = false;
  request.include_raw_fragments = true;
  request.include_stats = true;
  request.weights.specificity = 0.125;
  request.weights.proximity = -1.5;
  request.weights.compactness = 3.25;
  request.weights.slca_bonus = 0.0;
  request.weights.match_concentration = 1e-3;
  request.deadline_ms = 12'345;
  return request;
}

TEST(WireRequestTest, RoundTripsEveryField) {
  const SearchRequest request = MakeFullRequest();
  Result<SearchRequest> decoded = DecodeSearchRequest(EncodeSearchRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const SearchRequest& out = decoded.value();
  EXPECT_EQ(out.query, request.query);
  ASSERT_EQ(out.terms.size(), request.terms.size());
  for (size_t i = 0; i < out.terms.size(); ++i) {
    EXPECT_EQ(out.terms[i].word, request.terms[i].word);
    EXPECT_EQ(out.terms[i].label, request.terms[i].label);
  }
  EXPECT_EQ(out.documents, request.documents);
  EXPECT_EQ(out.semantics, request.semantics);
  EXPECT_EQ(out.elca_algorithm, request.elca_algorithm);
  EXPECT_EQ(out.slca_algorithm, request.slca_algorithm);
  EXPECT_EQ(out.pruning, request.pruning);
  EXPECT_EQ(out.max_parallelism, request.max_parallelism);
  EXPECT_EQ(out.top_k, request.top_k);
  EXPECT_EQ(out.cursor, request.cursor);
  EXPECT_EQ(out.rank, request.rank);
  EXPECT_EQ(out.use_cache, request.use_cache);
  EXPECT_EQ(out.include_snippets, request.include_snippets);
  EXPECT_EQ(out.include_raw_fragments, request.include_raw_fragments);
  EXPECT_EQ(out.include_stats, request.include_stats);
  EXPECT_EQ(out.weights.specificity, request.weights.specificity);
  EXPECT_EQ(out.weights.proximity, request.weights.proximity);
  EXPECT_EQ(out.weights.compactness, request.weights.compactness);
  EXPECT_EQ(out.weights.slca_bonus, request.weights.slca_bonus);
  EXPECT_EQ(out.weights.match_concentration,
            request.weights.match_concentration);
  EXPECT_EQ(out.deadline_ms, request.deadline_ms);
  // The in-process token intentionally does not travel.
  EXPECT_FALSE(out.cancel.can_expire());
}

TEST(WireRequestTest, DefaultRequestRoundTrips) {
  Result<SearchRequest> decoded =
      DecodeSearchRequest(EncodeSearchRequest(SearchRequest{}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().query.empty());
  EXPECT_EQ(decoded.value().top_k, 10u);
  EXPECT_TRUE(decoded.value().rank);
  EXPECT_TRUE(decoded.value().use_cache);
  EXPECT_EQ(decoded.value().deadline_ms, 0u);
}

TEST(WireRequestTest, EncodingIsDeterministic) {
  EXPECT_EQ(EncodeSearchRequest(MakeFullRequest()),
            EncodeSearchRequest(MakeFullRequest()));
}

SearchResponse MakeResponse() {
  SearchResponse response;
  Hit hit;
  hit.document = 7;
  hit.document_name = "dblp-2";
  hit.score = 0.875;
  hit.snippet = "<article>\n  <title>xml keyword</title>\n</article>";
  response.hits.push_back(hit);
  Hit second;
  second.document = 0;
  second.document_name = "x";
  second.score = 0.25;
  response.hits.push_back(second);
  response.next_cursor = std::string("c\x00\xffz", 4);
  response.total_hits = 41;
  response.total_is_exact = false;
  response.documents_searched = 9;
  response.epoch = 12;
  response.served_from_cache = true;
  response.documents_from_cache = 9;
  response.stats_are_exact = false;
  response.keyword_node_count = 123;
  response.timings.get_keyword_nodes_ms = 0.5;
  response.timings.get_lca_ms = 1.25;
  response.timings.get_rtf_ms = 0.0625;
  response.timings.prune_ms = 2.0;
  response.pruning.raw_nodes = 400;
  response.pruning.kept_nodes = 77;
  return response;
}

TEST(WireResponseTest, RoundTripsTheClientVisibleProjection) {
  const SearchResponse response = MakeResponse();
  Result<SearchResponse> decoded =
      DecodeSearchResponse(EncodeSearchResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const SearchResponse& out = decoded.value();
  ASSERT_EQ(out.hits.size(), response.hits.size());
  for (size_t i = 0; i < out.hits.size(); ++i) {
    EXPECT_EQ(out.hits[i].document, response.hits[i].document);
    EXPECT_EQ(out.hits[i].document_name, response.hits[i].document_name);
    EXPECT_EQ(out.hits[i].score, response.hits[i].score);
    EXPECT_EQ(out.hits[i].snippet, response.hits[i].snippet);
  }
  EXPECT_EQ(out.next_cursor, response.next_cursor);
  EXPECT_EQ(out.total_hits, response.total_hits);
  EXPECT_EQ(out.total_is_exact, response.total_is_exact);
  EXPECT_EQ(out.documents_searched, response.documents_searched);
  EXPECT_EQ(out.epoch, response.epoch);
  EXPECT_EQ(out.served_from_cache, response.served_from_cache);
  EXPECT_EQ(out.documents_from_cache, response.documents_from_cache);
  EXPECT_EQ(out.stats_are_exact, response.stats_are_exact);
  EXPECT_EQ(out.keyword_node_count, response.keyword_node_count);
  EXPECT_EQ(out.timings.get_keyword_nodes_ms,
            response.timings.get_keyword_nodes_ms);
  EXPECT_EQ(out.timings.get_lca_ms, response.timings.get_lca_ms);
  EXPECT_EQ(out.timings.get_rtf_ms, response.timings.get_rtf_ms);
  EXPECT_EQ(out.timings.prune_ms, response.timings.prune_ms);
  EXPECT_EQ(out.pruning.raw_nodes, response.pruning.raw_nodes);
  EXPECT_EQ(out.pruning.kept_nodes, response.pruning.kept_nodes);
  // Re-encoding the decoded projection reproduces the bytes — the property
  // the byte-identity contract with the library rests on.
  EXPECT_EQ(EncodeSearchResponse(out), EncodeSearchResponse(response));
}

TraceSpan MakeResponseTrace() {
  TraceSpan scan;
  scan.name = "scan";
  scan.start_us = 15;
  scan.duration_us = 930;
  scan.attributes = {{"documents", 9}};
  TraceSpan root;
  root.name = "search";
  root.duration_us = 1200;
  root.attributes = {{"hits", 41}};
  root.children.push_back(std::move(scan));
  return root;
}

TEST(WireResponseTest, TraceRidesTheBareSentinelForm) {
  // No scan breakdown: the trace section starts with the varint-0 sentinel
  // where the breakdown count would be.
  SearchResponse response = MakeResponse();
  response.trace = std::make_shared<const TraceSpan>(MakeResponseTrace());
  const std::string body = EncodeSearchResponse(response);

  Result<SearchResponse> decoded = DecodeSearchResponse(body);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_NE(decoded.value().trace, nullptr);
  EXPECT_EQ(decoded.value().trace->name, "search");
  EXPECT_EQ(decoded.value().trace->Attr("hits"), 41u);
  ASSERT_NE(decoded.value().trace->Child("scan"), nullptr);
  EXPECT_EQ(decoded.value().trace->Child("scan")->duration_us, 930u);
  EXPECT_EQ(EncodeSearchResponse(decoded.value()), body);

  // Dropping the trace reproduces the prior (trace-off) byte form — the
  // property the byte-identity goldens rest on.
  SearchResponse stripped = decoded.value();
  stripped.trace.reset();
  EXPECT_EQ(EncodeSearchResponse(stripped),
            EncodeSearchResponse(MakeResponse()));
}

TEST(WireResponseTest, TraceFollowsTheBreakdownBehindASeparator) {
  SearchResponse response = MakeResponse();
  response.scan_breakdown = {{/*document=*/2, /*hits=*/5},
                             {/*document=*/7, /*hits=*/36}};
  response.trace = std::make_shared<const TraceSpan>(MakeResponseTrace());
  const std::string body = EncodeSearchResponse(response);

  Result<SearchResponse> decoded = DecodeSearchResponse(body);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded.value().scan_breakdown.size(), 2u);
  EXPECT_EQ(decoded.value().scan_breakdown[1].document, 7u);
  EXPECT_EQ(decoded.value().scan_breakdown[1].hits, 36u);
  ASSERT_NE(decoded.value().trace, nullptr);
  EXPECT_EQ(decoded.value().trace->name, "search");
  EXPECT_EQ(EncodeSearchResponse(decoded.value()), body);
}

TEST(WireStatusTest, RoundTripsEveryCode) {
  for (uint32_t code = 0;
       code <= static_cast<uint32_t>(StatusCode::kUnavailable); ++code) {
    const Status original(static_cast<StatusCode>(code),
                          code == 0 ? "" : "message for code");
    Status decoded;
    const Status parse =
        DecodeStatusPayload(EncodeStatusPayload(original), &decoded);
    ASSERT_TRUE(parse.ok()) << parse.ToString();
    EXPECT_EQ(decoded, original);
  }
}

TEST(WireFrameTest, PayloadRoundTrips) {
  Frame frame;
  frame.kind = FrameKind::kSearchResponse;
  frame.request_id = 0x1234'5678'9abcULL;
  frame.body = EncodeSearchResponse(MakeResponse());
  Result<Frame> decoded = DecodeFramePayload(EncodeFramePayload(frame));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().kind, frame.kind);
  EXPECT_EQ(decoded.value().request_id, frame.request_id);
  EXPECT_EQ(decoded.value().body, frame.body);
}

// --- Corruption sweep -------------------------------------------------------

TEST(WireCorruptionTest, TruncatedRequestAlwaysFailsCleanly) {
  const std::string body = EncodeSearchRequest(MakeFullRequest());
  for (size_t len = 0; len < body.size(); ++len) {
    Result<SearchRequest> decoded =
        DecodeSearchRequest(std::string_view(body.data(), len));
    EXPECT_FALSE(decoded.ok()) << "prefix of length " << len << " decoded";
  }
}

TEST(WireCorruptionTest, TruncatedResponseAlwaysFailsCleanly) {
  const std::string body = EncodeSearchResponse(MakeResponse());
  for (size_t len = 0; len < body.size(); ++len) {
    Result<SearchResponse> decoded =
        DecodeSearchResponse(std::string_view(body.data(), len));
    EXPECT_FALSE(decoded.ok()) << "prefix of length " << len << " decoded";
  }
}

TEST(WireCorruptionTest, TrailingBytesAreRejected) {
  std::string request = EncodeSearchRequest(MakeFullRequest());
  request.push_back('\x00');
  EXPECT_FALSE(DecodeSearchRequest(request).ok());

  std::string response = EncodeSearchResponse(MakeResponse());
  response.push_back('\x00');
  EXPECT_FALSE(DecodeSearchResponse(response).ok());

  std::string status = EncodeStatusPayload(Status::NotFound("x"));
  status.push_back('\x00');
  Status out;
  EXPECT_FALSE(DecodeStatusPayload(status, &out).ok());
}

TEST(WireCorruptionTest, BadTraceSectionsAreRejected) {
  // A nonzero separator between the breakdown and the trace.
  SearchResponse with_breakdown = MakeResponse();
  with_breakdown.scan_breakdown = {{/*document=*/1, /*hits=*/3}};
  std::string body = EncodeSearchResponse(with_breakdown);
  body.push_back('\x02');  // separator must be the varint 0
  body.push_back('\x00');
  Result<SearchResponse> decoded = DecodeSearchResponse(body);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);

  // An empty trace section behind a valid sentinel.
  std::string empty_trace = EncodeSearchResponse(MakeResponse());
  empty_trace.push_back('\x00');  // sentinel: trace follows
  empty_trace.push_back('\x00');  // ... but zero trace bytes
  EXPECT_FALSE(DecodeSearchResponse(empty_trace).ok());

  // Truncating a traced response inside the trace section must fail
  // cleanly. (Truncating at exactly the section start IS the valid
  // trace-off body, so the sweep begins one byte past it.)
  SearchResponse traced = MakeResponse();
  traced.trace = std::make_shared<const TraceSpan>(MakeResponseTrace());
  const std::string full = EncodeSearchResponse(traced);
  for (size_t len = EncodeSearchResponse(MakeResponse()).size() + 1;
       len < full.size(); ++len) {
    EXPECT_FALSE(DecodeSearchResponse(std::string_view(full.data(), len)).ok())
        << "prefix of length " << len << " decoded";
  }
}

TEST(WireCorruptionTest, UnknownVersionIsRejected) {
  std::string body = EncodeSearchRequest(SearchRequest{});
  body[0] = 9;
  Result<SearchRequest> decoded = DecodeSearchRequest(body);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kUnsupported);
}

TEST(WireCorruptionTest, OutOfRangeEnumsAreRejected) {
  // The four enum bytes sit right after the (empty) query, term list and
  // document list of a default request: version, query len, 0 terms,
  // 0 documents → offsets 4..7.
  const std::string body = EncodeSearchRequest(SearchRequest{});
  for (size_t offset = 4; offset < 8; ++offset) {
    std::string bad = body;
    bad[offset] = 0x7f;
    Result<SearchRequest> decoded = DecodeSearchRequest(bad);
    EXPECT_FALSE(decoded.ok()) << "enum byte at " << offset;
    EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
  }
}

TEST(WireCorruptionTest, BadStatusCodeIsRejected) {
  std::string body = EncodeStatusPayload(Status::Unavailable("x"));
  body[1] = 0x7f;
  Status out;
  EXPECT_FALSE(DecodeStatusPayload(body, &out).ok());
}

TEST(WireCorruptionTest, BadFrameKindIsRejected) {
  Frame frame;
  frame.kind = FrameKind::kStatus;
  std::string payload = EncodeFramePayload(frame);
  payload[0] = 0;
  EXPECT_FALSE(DecodeFramePayload(payload).ok());
  payload[0] = 8;  // one past kStatsReply, the highest assigned kind
  EXPECT_FALSE(DecodeFramePayload(payload).ok());
}

TEST(WireCorruptionTest, NonCanonicalVarintByteFieldsAreRejected) {
  // Harness-surfaced (fuzz_wire_frame round-trip property): single-byte
  // fields — frame kind, body version — used to be decoded as varints, so
  // "\x81\x00" (a two-byte varint encoding of 1) was accepted wherever a
  // 0x01 byte belonged, and two distinct byte strings decoded to the same
  // frame. ByteReader::ReadU8 closes the aliasing: a byte field is exactly
  // one byte.
  Frame frame;
  frame.kind = FrameKind::kStatus;
  frame.request_id = 9;
  frame.body = EncodeStatusPayload(Status::Unavailable("x"));
  const std::string payload = EncodeFramePayload(frame);
  ASSERT_EQ(payload[0], 3);
  std::string aliased = payload;
  aliased.replace(0, 1, "\x83\x00");  // varint(3) in two bytes
  EXPECT_FALSE(DecodeFramePayload(aliased).ok());

  const std::string body = EncodeSearchRequest(MakeFullRequest());
  ASSERT_EQ(body[0], 1);  // version byte
  std::string aliased_body = body;
  aliased_body.replace(0, 1, "\x81\x00");
  EXPECT_FALSE(DecodeSearchRequest(aliased_body).ok());
}

TEST(WireCorruptionTest, OverlongVarintNeverAliasesAnotherValue) {
  // Harness-surfaced (fuzz_codec): a 10-group varint whose 10th byte
  // carries payload past bit 63 used to decode by silently dropping the
  // overflow, so e.g. ten 0xff bytes and UINT64_MAX-encoded bytes aliased.
  // Now any overflow is Corruption at the codec layer, wire included.
  std::string body;
  body.push_back(1);  // version
  body.push_back(0);  // empty query
  for (int i = 0; i < 9; ++i) body.push_back('\xff');
  body.push_back('\x7f');  // term-count varint overflows u64
  Result<SearchRequest> request = DecodeSearchRequest(body);
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.status().code(), StatusCode::kCorruption);
}

TEST(WireCorruptionTest, HostileHitCountIsRejectedBeforeAllocation) {
  // version + a varint64 hit count of ~2^60 and nothing else: the decoder
  // must reject it against remaining(), not reserve petabytes.
  std::string body;
  body.push_back(1);
  for (int i = 0; i < 8; ++i) body.push_back('\xff');
  body.push_back('\x0f');
  EXPECT_FALSE(DecodeSearchResponse(body).ok());
  EXPECT_FALSE(DecodeSearchRequest(body).ok());
}

// --- Frame I/O over real fds ------------------------------------------------

struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() { EXPECT_EQ(::pipe(fds), 0); }
  ~Pipe() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
  void CloseWrite() {
    ::close(fds[1]);
    fds[1] = -1;
  }
};

TEST(WireFrameIoTest, WriteThenReadRoundTrips) {
  Pipe pipe;
  Frame frame;
  frame.kind = FrameKind::kSearchRequest;
  frame.request_id = 42;
  frame.body = EncodeSearchRequest(MakeFullRequest());
  ASSERT_TRUE(WriteFrame(pipe.fds[1], frame).ok());
  Result<Frame> read = ReadFrame(pipe.fds[0]);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value().kind, frame.kind);
  EXPECT_EQ(read.value().request_id, frame.request_id);
  EXPECT_EQ(read.value().body, frame.body);
}

TEST(WireFrameIoTest, SeveralFramesInSequence) {
  Pipe pipe;
  for (uint64_t id = 1; id <= 3; ++id) {
    Frame frame;
    frame.kind = FrameKind::kStatus;
    frame.request_id = id;
    frame.body = EncodeStatusPayload(Status::Unavailable("draining"));
    ASSERT_TRUE(WriteFrame(pipe.fds[1], frame).ok());
  }
  for (uint64_t id = 1; id <= 3; ++id) {
    Result<Frame> read = ReadFrame(pipe.fds[0]);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read.value().request_id, id);
  }
}

TEST(WireFrameIoTest, CleanEofIsUnavailable) {
  Pipe pipe;
  pipe.CloseWrite();
  Result<Frame> read = ReadFrame(pipe.fds[0]);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kUnavailable);
}

TEST(WireFrameIoTest, MidFrameEofIsIoError) {
  Pipe pipe;
  // A length prefix promising 100 bytes, then only 3.
  const char partial[] = {0, 0, 0, 100, 'a', 'b', 'c'};
  ASSERT_EQ(::write(pipe.fds[1], partial, sizeof(partial)),
            static_cast<ssize_t>(sizeof(partial)));
  pipe.CloseWrite();
  Result<Frame> read = ReadFrame(pipe.fds[0]);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
}

TEST(WireFrameIoTest, OversizedLengthPrefixIsRejected) {
  Pipe pipe;
  // 16 MiB advertised against a 1 KiB limit: rejected from the header
  // alone, without allocating or reading the body.
  const char header[] = {1, 0, 0, 0};
  ASSERT_EQ(::write(pipe.fds[1], header, sizeof(header)),
            static_cast<ssize_t>(sizeof(header)));
  Result<Frame> read = ReadFrame(pipe.fds[0], /*max_frame_bytes=*/1024);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kCorruption);
}

TEST(WireFrameIoTest, LargeFrameCrossesPipeBufferBoundaries) {
  Pipe pipe;
  Frame frame;
  frame.kind = FrameKind::kSearchResponse;
  frame.request_id = 9;
  SearchResponse response = MakeResponse();
  response.hits[0].snippet.assign(1 << 20, 's');  // > pipe buffer
  frame.body = EncodeSearchResponse(response);
  // Writer must run concurrently: a 1 MiB frame cannot fit the pipe buffer,
  // so a single-threaded write would deadlock against the unread pipe.
  std::thread writer(
      [&] { EXPECT_TRUE(WriteFrame(pipe.fds[1], frame).ok()); });
  Result<Frame> read = ReadFrame(pipe.fds[0]);
  writer.join();
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().body, frame.body);
}

}  // namespace
}  // namespace xks
