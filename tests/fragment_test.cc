#include "src/core/fragment.h"

#include <gtest/gtest.h>

namespace xks {
namespace {

FragmentTree SampleTree() {
  // article(0.2) → title(0.2.0)*, abstract(0.2.1)*
  FragmentTree tree;
  FragmentNode root;
  root.dewey = Dewey{0, 2};
  root.label = "article";
  root.klist = 0b11;
  FragmentNodeId r = tree.CreateRoot(std::move(root));
  FragmentNode title;
  title.dewey = Dewey{0, 2, 0};
  title.label = "title";
  title.klist = 0b01;
  title.is_keyword_node = true;
  tree.AddChild(r, std::move(title));
  FragmentNode abstract;
  abstract.dewey = Dewey{0, 2, 1};
  abstract.label = "abstract";
  abstract.klist = 0b10;
  abstract.is_keyword_node = true;
  tree.AddChild(r, std::move(abstract));
  return tree;
}

TEST(FragmentTreeTest, EmptyTree) {
  FragmentTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.root(), kNullFragmentNode);
  EXPECT_TRUE(tree.NodeSet().empty());
  EXPECT_TRUE(tree.ToTreeString().empty());
}

TEST(FragmentTreeTest, StructureAndParents) {
  FragmentTree tree = SampleTree();
  EXPECT_EQ(tree.size(), 3u);
  const FragmentNode& root = tree.node(tree.root());
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(tree.node(root.children[0]).label, "title");
  EXPECT_EQ(tree.node(root.children[0]).parent, tree.root());
  EXPECT_EQ(root.parent, kNullFragmentNode);
}

TEST(FragmentTreeTest, NodeSetSorted) {
  FragmentTree tree = SampleTree();
  std::vector<Dewey> set = tree.NodeSet();
  ASSERT_EQ(set.size(), 3u);
  EXPECT_EQ(set[0], (Dewey{0, 2}));
  EXPECT_EQ(set[1], (Dewey{0, 2, 0}));
  EXPECT_EQ(set[2], (Dewey{0, 2, 1}));
}

TEST(FragmentTreeTest, KeywordNodeCount) {
  EXPECT_EQ(SampleTree().KeywordNodeCount(), 2u);
}

TEST(FragmentTreeTest, ToTreeStringShape) {
  std::string s = SampleTree().ToTreeString(2);
  EXPECT_NE(s.find("article (0.2) [1 1]"), std::string::npos) << s;
  EXPECT_NE(s.find("  title (0.2.0) [1 0] *"), std::string::npos) << s;
  EXPECT_NE(s.find("  abstract (0.2.1) [0 1] *"), std::string::npos) << s;
}

TEST(CountSetDifferenceTest, Basic) {
  std::vector<Dewey> a = {{0}, {0, 1}, {0, 2}};
  std::vector<Dewey> b = {{0}, {0, 2}};
  EXPECT_EQ(CountSetDifference(a, b), 1u);
  EXPECT_EQ(CountSetDifference(b, a), 0u);
  EXPECT_EQ(CountSetDifference(a, a), 0u);
  EXPECT_EQ(CountSetDifference(a, {}), 3u);
  EXPECT_EQ(CountSetDifference({}, a), 0u);
}

TEST(CountSetDifferenceTest, DisjointSets) {
  std::vector<Dewey> a = {{0, 1}, {0, 3}};
  std::vector<Dewey> b = {{0, 2}, {0, 4}};
  EXPECT_EQ(CountSetDifference(a, b), 2u);
}

}  // namespace
}  // namespace xks
