#include "src/core/ranking.h"

#include <gtest/gtest.h>

#include "src/core/validrtf.h"
#include "src/datagen/figure1.h"
#include "src/storage/store.h"
#include "src/xml/parser.h"

namespace xks {
namespace {

SearchResult Search(const ShreddedStore& store, const std::string& text) {
  Result<SearchResult> r = ValidRtfSearch(store, text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(RankingTest, EmptyResult) {
  SearchResult empty;
  EXPECT_TRUE(RankFragments(empty, 2).empty());
  EXPECT_TRUE(TopFragments(empty, 2, 5).empty());
}

TEST(RankingTest, DeeperSlcaRootOutranksShallowAncestor) {
  // Q2 on Figure 1(a): the ref node (deep, SLCA, matches both keywords in
  // one node) must outrank the article fragment (shallower, scattered).
  ShreddedStore store = ShreddedStore::Build(*Figure1aDocument());
  SearchResult result = Search(store, PaperQuery(2));
  ASSERT_EQ(result.rtf_count(), 2u);
  std::vector<FragmentScore> scores = RankFragments(result, 2);
  ASSERT_EQ(scores.size(), 2u);
  const FragmentResult& best = result.fragments[scores[0].fragment_index];
  EXPECT_EQ(best.rtf.root, *Dewey::Parse("0.2.0.3.0"));
  EXPECT_GT(scores[0].total, scores[1].total);
}

TEST(RankingTest, ComponentsInUnitRange) {
  ShreddedStore store = ShreddedStore::Build(*Figure1aDocument());
  for (int q = 1; q <= 3; ++q) {
    SearchResult result = Search(store, PaperQuery(q));
    for (const FragmentScore& s :
         RankFragments(result, result.fragments.empty()
                                   ? 1
                                   : result.fragments[0].rtf.knodes.size())) {
      EXPECT_GE(s.specificity, 0.0);
      EXPECT_LE(s.specificity, 1.0);
      EXPECT_GE(s.proximity, 0.0);
      EXPECT_LE(s.proximity, 1.0);
      EXPECT_GE(s.compactness, 0.0);
      EXPECT_LE(s.compactness, 1.0);
      EXPECT_GE(s.match_concentration, 0.0);
      EXPECT_LE(s.match_concentration, 1.0);
      EXPECT_TRUE(s.slca == 0.0 || s.slca == 1.0);
    }
  }
}

TEST(RankingTest, WeightsChangeOrdering) {
  ShreddedStore store = ShreddedStore::Build(*Figure1aDocument());
  SearchResult result = Search(store, PaperQuery(2));
  ASSERT_EQ(result.rtf_count(), 2u);
  // All weight on proximity: the single-node ref fragment (distance 0) wins.
  RankingWeights proximity_only;
  proximity_only.specificity = 0;
  proximity_only.proximity = 1;
  proximity_only.compactness = 0;
  proximity_only.slca_bonus = 0;
  proximity_only.match_concentration = 0;
  std::vector<FragmentScore> scores = RankFragments(result, 2, proximity_only);
  EXPECT_EQ(result.fragments[scores[0].fragment_index].rtf.root,
            *Dewey::Parse("0.2.0.3.0"));
  // All weight on compactness with zero elsewhere: totals reflect keyword
  // density only.
  RankingWeights compact_only;
  compact_only.specificity = 0;
  compact_only.proximity = 0;
  compact_only.compactness = 1;
  compact_only.slca_bonus = 0;
  compact_only.match_concentration = 0;
  for (const FragmentScore& s : RankFragments(result, 2, compact_only)) {
    EXPECT_DOUBLE_EQ(s.total, s.compactness);
  }
}

TEST(RankingTest, StableTieBreakByDocumentOrder) {
  // Two identical sibling records tie exactly; document order must break it.
  Result<Document> doc = ParseXml(
      "<r><rec><t>alpha</t><u>beta</u></rec><rec><t>alpha</t><u>beta</u></rec></r>");
  ASSERT_TRUE(doc.ok());
  ShreddedStore store = ShreddedStore::Build(*doc);
  SearchResult result = Search(store, "alpha beta");
  ASSERT_EQ(result.rtf_count(), 2u);
  std::vector<FragmentScore> scores = RankFragments(result, 2);
  EXPECT_DOUBLE_EQ(scores[0].total, scores[1].total);
  EXPECT_EQ(scores[0].fragment_index, 0u);
  EXPECT_EQ(scores[1].fragment_index, 1u);
}

TEST(RankingTest, TopFragmentsLimits) {
  ShreddedStore store = ShreddedStore::Build(*Figure1aDocument());
  SearchResult result = Search(store, PaperQuery(2));
  EXPECT_EQ(TopFragments(result, 2, 1).size(), 1u);
  EXPECT_EQ(TopFragments(result, 2, 10).size(), 2u);
  EXPECT_TRUE(TopFragments(result, 2, 0).empty());
}

TEST(RankingTest, ScoreToStringMentionsComponents) {
  FragmentScore s;
  s.total = 0.5;
  s.specificity = 1.0;
  std::string text = s.ToString();
  EXPECT_NE(text.find("total="), std::string::npos);
  EXPECT_NE(text.find("specificity="), std::string::npos);
}

TEST(RankingTest, MatchConcentrationFavorsAllInOneNode) {
  // One record matches both keywords in a single node; another spreads them
  // over two nodes at the same depth.
  Result<Document> doc = ParseXml(
      "<r>"
      "<rec><t>alpha beta</t></rec>"
      "<rec><t>alpha</t><t>beta</t></rec>"
      "</r>");
  ASSERT_TRUE(doc.ok());
  ShreddedStore store = ShreddedStore::Build(*doc);
  SearchResult result = Search(store, "alpha beta");
  ASSERT_EQ(result.rtf_count(), 2u);
  RankingWeights concentration_only;
  concentration_only.specificity = 0;
  concentration_only.proximity = 0;
  concentration_only.compactness = 0;
  concentration_only.slca_bonus = 0;
  concentration_only.match_concentration = 1;
  std::vector<FragmentScore> scores =
      RankFragments(result, 2, concentration_only);
  const FragmentResult& best = result.fragments[scores[0].fragment_index];
  // The all-in-one-node result is the <t> holding both words.
  EXPECT_EQ(best.rtf.knodes.size(), 1u);
  EXPECT_GT(scores[0].total, scores[1].total);
}

}  // namespace
}  // namespace xks
