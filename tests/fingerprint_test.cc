// The shared fingerprint machinery (src/common/fingerprint.h) and the
// request-identity builders on top of it (src/api/request_fingerprint.h).
//
// Two contracts matter here. Stability: the same input always produces the
// same material and digest, across calls and across runs (FNV-1a golden
// vectors pin the hash itself). Sensitivity: the cursor fingerprint moves
// with every request field that changes the page a cursor points into — and
// ONLY those — while the cache key moves with every field that changes a
// per-document candidate list, and only those. A field that drifts between
// the two identities is exactly the bug the shared AppendExecutionShape
// prefix exists to prevent.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/request_fingerprint.h"
#include "src/common/fingerprint.h"

namespace xks {
namespace {

// -- Fnv1a64 -----------------------------------------------------------------

TEST(Fnv1a64Test, MatchesPublishedVectors) {
  // Published FNV-1a 64-bit test vectors.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(Fnv1a64Test, SeedChainsLikeConcatenation) {
  // Hashing "foo" then chaining "bar" through the seed must equal hashing
  // "foobar" in one go — the property the corpus revision chain relies on.
  EXPECT_EQ(Fnv1a64("bar", Fnv1a64("foo")), Fnv1a64("foobar"));
}

// -- Fingerprint accumulator -------------------------------------------------

TEST(FingerprintTest, MaterialEncodingIsAsDocumented) {
  Fingerprint fp;
  fp.PutString("ab");
  fp.PutByte(0x7f);
  fp.PutBool(true);
  fp.PutBool(false);
  EXPECT_EQ(fp.material(), std::string("ab\0\x7f\x01\0", 6));
}

TEST(FingerprintTest, DigestIsFnvOfMaterial) {
  Fingerprint fp;
  fp.PutString("query");
  fp.PutVarint64(12345);
  EXPECT_EQ(fp.Digest64(), Fnv1a64(fp.material()));
}

TEST(FingerprintTest, StringTerminatorPreventsFieldBleed) {
  // ("ab", "c") and ("a", "bc") must not collide.
  Fingerprint left;
  left.PutString("ab");
  left.PutString("c");
  Fingerprint right;
  right.PutString("a");
  right.PutString("bc");
  EXPECT_NE(left.material(), right.material());
}

TEST(FingerprintTest, DoublesUseRawBytes) {
  Fingerprint fp;
  const double values[] = {0.25, -1.5};
  fp.PutDoubles(values, 2);
  EXPECT_EQ(fp.material().size(), 2 * sizeof(double));
  EXPECT_EQ(fp.Digest64(), Fnv1a64(fp.material()));
}

// -- Request identities ------------------------------------------------------

KeywordQuery BaseQuery() {
  Result<KeywordQuery> query = KeywordQuery::Parse("xml keyword");
  EXPECT_TRUE(query.ok());
  return std::move(query).value();
}

SearchRequest BaseRequest() {
  SearchRequest request;
  request.query = "xml keyword";
  request.top_k = 10;
  return request;
}

uint64_t CursorFp(const SearchRequest& request) {
  return CursorFingerprint(BaseQuery(), request, {0, 1, 2}, /*revision=*/42);
}

std::string CacheMaterial(const SearchRequest& request, DocumentId id = 7) {
  return DocumentCacheKey(CacheKeyPrefix(BaseQuery(), request), id).material;
}

TEST(RequestFingerprintTest, StableAcrossCalls) {
  const SearchRequest request = BaseRequest();
  EXPECT_EQ(CursorFp(request), CursorFp(request));
  EXPECT_EQ(CacheMaterial(request), CacheMaterial(request));
  CacheKey key = DocumentCacheKey(CacheKeyPrefix(BaseQuery(), request), 7);
  EXPECT_EQ(key.hash, Fnv1a64(key.material));
}

TEST(RequestFingerprintTest, CursorSensitiveToEveryResultShapingField) {
  const SearchRequest base = BaseRequest();
  const uint64_t fp = CursorFp(base);

  {
    Result<KeywordQuery> other = KeywordQuery::Parse("different terms");
    ASSERT_TRUE(other.ok());
    EXPECT_NE(CursorFingerprint(other.value(), base, {0, 1, 2}, 42), fp);
  }
  {
    SearchRequest r = base;
    r.semantics = LcaSemantics::kSlca;
    EXPECT_NE(CursorFp(r), fp);
  }
  {
    SearchRequest r = base;
    r.elca_algorithm = ElcaAlgorithm::kStackMerge;
    EXPECT_NE(CursorFp(r), fp);
  }
  {
    SearchRequest r = base;
    r.slca_algorithm = SlcaAlgorithm::kScanEager;
    EXPECT_NE(CursorFp(r), fp);
  }
  {
    SearchRequest r = base;
    r.pruning = PruningPolicy::kContributor;
    EXPECT_NE(CursorFp(r), fp);
  }
  {
    SearchRequest r = base;
    r.rank = false;
    EXPECT_NE(CursorFp(r), fp);
  }
  {
    SearchRequest r = base;
    r.weights.specificity += 0.125;
    EXPECT_NE(CursorFp(r), fp);
  }
  {
    SearchRequest r = base;
    r.weights.match_concentration += 0.125;
    EXPECT_NE(CursorFp(r), fp);
  }
  {
    SearchRequest r = base;
    r.top_k = 11;
    EXPECT_NE(CursorFp(r), fp);
  }
  // Corpus revision and document selection are fingerprint inputs too.
  EXPECT_NE(CursorFingerprint(BaseQuery(), base, {0, 1, 2}, 43), fp);
  EXPECT_NE(CursorFingerprint(BaseQuery(), base, {0, 1}, 42), fp);
  EXPECT_NE(CursorFingerprint(BaseQuery(), base, {0, 2, 1}, 42), fp);
}

TEST(RequestFingerprintTest, CursorIgnoresPresentationAndThroughputFields) {
  const SearchRequest base = BaseRequest();
  const uint64_t fp = CursorFp(base);

  SearchRequest r = base;
  r.include_snippets = !base.include_snippets;
  r.include_raw_fragments = !base.include_raw_fragments;
  r.include_stats = !base.include_stats;
  r.max_parallelism = 7;
  r.use_cache = !base.use_cache;
  r.cursor = "xksc2:1:2:3";
  EXPECT_EQ(CursorFp(r), fp);
}

TEST(RequestFingerprintTest, CacheKeySensitiveToExecutionShape) {
  const SearchRequest base = BaseRequest();
  const std::string material = CacheMaterial(base);

  {
    Result<KeywordQuery> other = KeywordQuery::Parse("different terms");
    ASSERT_TRUE(other.ok());
    EXPECT_NE(DocumentCacheKey(CacheKeyPrefix(other.value(), base), 7).material,
              material);
  }
  {
    SearchRequest r = base;
    r.semantics = LcaSemantics::kSlca;
    EXPECT_NE(CacheMaterial(r), material);
  }
  {
    SearchRequest r = base;
    r.elca_algorithm = ElcaAlgorithm::kBruteForce;
    EXPECT_NE(CacheMaterial(r), material);
  }
  {
    SearchRequest r = base;
    r.slca_algorithm = SlcaAlgorithm::kStackMerge;
    EXPECT_NE(CacheMaterial(r), material);
  }
  {
    SearchRequest r = base;
    r.pruning = PruningPolicy::kContributor;
    EXPECT_NE(CacheMaterial(r), material);
  }
  {
    // keep_raw_fragments changes the cached value (the unpruned trees are
    // either in the entry or not), so it must split the key space.
    SearchRequest r = base;
    r.include_raw_fragments = true;
    EXPECT_NE(CacheMaterial(r), material);
  }
  // The document id is the final key component.
  EXPECT_NE(CacheMaterial(base, 8), material);
}

TEST(RequestFingerprintTest, CacheKeyIgnoresRankingPagingAndSelection) {
  // One cached candidate list serves every ranking, page and selection —
  // these fields must NOT split the key space (they would destroy reuse).
  const SearchRequest base = BaseRequest();
  const std::string material = CacheMaterial(base);

  SearchRequest r = base;
  r.rank = !base.rank;
  r.weights.specificity += 0.125;
  r.top_k = 99;
  r.cursor = "xksc2:1:2:3";
  r.documents = {1, 2};
  r.max_parallelism = 3;
  r.include_snippets = !base.include_snippets;
  r.include_stats = !base.include_stats;
  r.use_cache = false;
  EXPECT_EQ(CacheMaterial(r), material);
}

TEST(RequestFingerprintTest, CursorAndCacheShareTheExecutionShapePrefix) {
  // The no-drift coupling: both identities start with the exact bytes
  // AppendExecutionShape produces.
  Fingerprint shape;
  AppendExecutionShape(&shape, BaseQuery(), BaseRequest());
  const std::string prefix = CacheKeyPrefix(BaseQuery(), BaseRequest());
  ASSERT_GE(prefix.size(), shape.material().size());
  EXPECT_EQ(prefix.substr(0, shape.material().size()), shape.material());
}

}  // namespace
}  // namespace xks
