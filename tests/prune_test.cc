#include "src/core/prune.h"

#include <gtest/gtest.h>

namespace xks {
namespace {

/// Handy builder for pruning scenarios.
class TreeBuilder {
 public:
  TreeBuilder() {
    FragmentNode root;
    root.dewey = Dewey{0};
    root.label = "root";
    tree_.CreateRoot(std::move(root));
  }

  FragmentNodeId Add(FragmentNodeId parent, std::string label, KeywordMask klist,
                     ContentId cid = {}, bool keyword = false) {
    FragmentNode node;
    node.dewey = NextDewey(parent);
    node.label = std::move(label);
    node.klist = klist;
    node.cid = std::move(cid);
    node.is_keyword_node = keyword;
    return tree_.AddChild(parent, std::move(node));
  }

  FragmentNodeId root() const { return tree_.root(); }
  FragmentTree& tree() { return tree_; }

 private:
  Dewey NextDewey(FragmentNodeId parent) {
    const FragmentNode& p = tree_.node(parent);
    return p.dewey.Child(static_cast<uint32_t>(p.children.size()));
  }

  FragmentTree tree_;
};

std::vector<std::string> Labels(const FragmentTree& tree) {
  std::vector<std::string> labels;
  for (size_t i = 0; i < tree.size(); ++i) {
    labels.push_back(tree.node(static_cast<FragmentNodeId>(i)).label);
  }
  return labels;
}

TEST(PruneTest, NonePolicyKeepsEverything) {
  TreeBuilder b;
  b.Add(b.root(), "a", 0b01);
  b.Add(b.root(), "b", 0b10);
  FragmentTree pruned = PruneFragment(b.tree(), PruningPolicy::kNone, 2);
  EXPECT_EQ(pruned.size(), 3u);
}

TEST(PruneTest, EmptyTreeSafe) {
  FragmentTree empty;
  EXPECT_TRUE(PruneFragment(empty, PruningPolicy::kValidContributor, 2).empty());
}

TEST(PruneTest, RootAlwaysSurvives) {
  TreeBuilder b;
  FragmentTree pruned =
      PruneFragment(b.tree(), PruningPolicy::kValidContributor, 1);
  EXPECT_EQ(pruned.size(), 1u);
  EXPECT_EQ(pruned.node(pruned.root()).label, "root");
}

// --- contributor (MaxMatch) policy ---

TEST(PruneContributorTest, StrictSubsetAcrossDifferentLabelsDiscarded) {
  // The false positive problem: title {s,q} ⊂ abstract {d,s,q} gets title
  // discarded even though its label is unique.
  TreeBuilder b;
  b.Add(b.root(), "authors", 0b011);
  b.Add(b.root(), "title", 0b100);
  b.Add(b.root(), "abstract", 0b110);  // covers title? 0b100 ⊂ 0b110
  FragmentTree pruned = PruneFragment(b.tree(), PruningPolicy::kContributor, 3);
  EXPECT_EQ(Labels(pruned), (std::vector<std::string>{"root", "authors", "abstract"}));
}

TEST(PruneContributorTest, EqualMasksBothKept) {
  // The redundancy problem: equal dMatch survives, duplicates included.
  TreeBuilder b;
  b.Add(b.root(), "player", 0b1, {"forward", "position"});
  b.Add(b.root(), "player", 0b1, {"guard", "position"});
  b.Add(b.root(), "player", 0b1, {"forward", "position"});
  FragmentTree pruned = PruneFragment(b.tree(), PruningPolicy::kContributor, 1);
  EXPECT_EQ(pruned.size(), 4u);
}

TEST(PruneContributorTest, DiscardedSubtreeRemovedEntirely) {
  TreeBuilder b;
  FragmentNodeId weak = b.Add(b.root(), "x", 0b01);
  b.Add(weak, "inner", 0b01);
  b.Add(b.root(), "y", 0b11);
  FragmentTree pruned = PruneFragment(b.tree(), PruningPolicy::kContributor, 2);
  EXPECT_EQ(Labels(pruned), (std::vector<std::string>{"root", "y"}));
}

TEST(PruneContributorTest, RecursesIntoKeptChildren) {
  TreeBuilder b;
  FragmentNodeId kept = b.Add(b.root(), "x", 0b11);
  b.Add(kept, "weak", 0b01);
  b.Add(kept, "strong", 0b11);
  FragmentTree pruned = PruneFragment(b.tree(), PruningPolicy::kContributor, 2);
  EXPECT_EQ(Labels(pruned), (std::vector<std::string>{"root", "x", "strong"}));
}

// --- valid contributor policy ---

TEST(PruneValidTest, UniqueLabelAlwaysSurvives) {
  // Rule 1 fixes the false positive problem of the case above.
  TreeBuilder b;
  b.Add(b.root(), "authors", 0b011);
  b.Add(b.root(), "title", 0b100);
  b.Add(b.root(), "abstract", 0b110);
  FragmentTree pruned =
      PruneFragment(b.tree(), PruningPolicy::kValidContributor, 3);
  EXPECT_EQ(pruned.size(), 4u);
}

TEST(PruneValidTest, SameLabelStrictSubsetDiscarded) {
  // Rule 2.(a): article {title} ⊂ article {title,xml,keyword,search}.
  TreeBuilder b;
  b.Add(b.root(), "article", 0b11110);
  b.Add(b.root(), "article", 0b00010);
  FragmentTree pruned =
      PruneFragment(b.tree(), PruningPolicy::kValidContributor, 5);
  ASSERT_EQ(pruned.size(), 2u);
  EXPECT_EQ(pruned.node(1).klist, 0b11110u);
}

TEST(PruneValidTest, EqualMasksDeduplicatedByCid) {
  // Rule 2.(b): three players, two with identical content → one dropped.
  TreeBuilder b;
  b.Add(b.root(), "player", 0b1, {"forward", "position"});
  b.Add(b.root(), "player", 0b1, {"guard", "position"});
  b.Add(b.root(), "player", 0b1, {"forward", "position"});
  FragmentTree pruned =
      PruneFragment(b.tree(), PruningPolicy::kValidContributor, 1);
  ASSERT_EQ(pruned.size(), 3u);
  // First occurrence of (forward,position) and the distinct (guard,position).
  EXPECT_EQ(pruned.node(1).cid, (ContentId{"forward", "position"}));
  EXPECT_EQ(pruned.node(2).cid, (ContentId{"guard", "position"}));
}

TEST(PruneValidTest, ThreeWayDuplicateKeepsExactlyFirst) {
  TreeBuilder b;
  b.Add(b.root(), "p", 0b1, {"same", "same"});
  b.Add(b.root(), "p", 0b1, {"same", "same"});
  b.Add(b.root(), "p", 0b1, {"same", "same"});
  FragmentTree pruned =
      PruneFragment(b.tree(), PruningPolicy::kValidContributor, 1);
  EXPECT_EQ(pruned.size(), 2u);
  EXPECT_EQ(pruned.node(1).dewey, (Dewey{0, 0}));
}

TEST(PruneValidTest, SameCidDifferentMasksBothSurvive) {
  // Definition 4 pairs TK-equality with TC-equality: a cID collision across
  // *different* keyword sets must not discard (see prune.h faithfulness
  // note — the paper's pseudo-code would wrongly drop the third child).
  TreeBuilder b;
  b.Add(b.root(), "p", 0b01, {"x", "x"});
  b.Add(b.root(), "p", 0b10, {"y", "y"});
  b.Add(b.root(), "p", 0b10, {"x", "x"});  // same cid as first, mask of second
  FragmentTree pruned =
      PruneFragment(b.tree(), PruningPolicy::kValidContributor, 2);
  EXPECT_EQ(pruned.size(), 4u);
}

TEST(PruneValidTest, CoveredChildDiscardedEvenWithUniqueCid) {
  TreeBuilder b;
  b.Add(b.root(), "p", 0b11, {"a", "b"});
  b.Add(b.root(), "p", 0b01, {"c", "d"});
  FragmentTree pruned =
      PruneFragment(b.tree(), PruningPolicy::kValidContributor, 2);
  EXPECT_EQ(pruned.size(), 2u);
  EXPECT_EQ(pruned.node(1).klist, 0b11u);
}

TEST(PruneValidTest, MixedLabelsPruneIndependently) {
  // Coverage only applies within a label group.
  TreeBuilder b;
  b.Add(b.root(), "a", 0b01);   // unique label → kept (despite ⊂ b's mask)
  b.Add(b.root(), "b", 0b11);
  b.Add(b.root(), "c", 0b01);   // unique label → kept
  b.Add(b.root(), "b", 0b01);   // covered within the b group → discarded
  FragmentTree pruned =
      PruneFragment(b.tree(), PruningPolicy::kValidContributor, 2);
  EXPECT_EQ(pruned.size(), 4u);
  std::vector<std::string> labels = Labels(pruned);
  EXPECT_EQ(std::count(labels.begin(), labels.end(), "b"), 1);
}

TEST(PruneValidTest, DocumentOrderPreservedAcrossLabelGroups) {
  TreeBuilder b;
  b.Add(b.root(), "z", 0b1, {"z1", "z1"});
  b.Add(b.root(), "a", 0b1, {"a1", "a1"});
  b.Add(b.root(), "z", 0b1, {"z2", "z2"});
  FragmentTree pruned =
      PruneFragment(b.tree(), PruningPolicy::kValidContributor, 1);
  const FragmentNode& root = pruned.node(pruned.root());
  ASSERT_EQ(root.children.size(), 3u);
  EXPECT_EQ(pruned.node(root.children[0]).dewey, (Dewey{0, 0}));
  EXPECT_EQ(pruned.node(root.children[1]).dewey, (Dewey{0, 1}));
  EXPECT_EQ(pruned.node(root.children[2]).dewey, (Dewey{0, 2}));
}

TEST(PruneValidTest, RecursionAppliesAtEveryLevel) {
  TreeBuilder b;
  FragmentNodeId mid = b.Add(b.root(), "mid", 0b11);
  b.Add(mid, "leaf", 0b01, {"l1", "l1"});
  b.Add(mid, "leaf", 0b11, {"l2", "l2"});
  FragmentTree pruned =
      PruneFragment(b.tree(), PruningPolicy::kValidContributor, 2);
  // leaf 0b01 covered by sibling leaf 0b11.
  EXPECT_EQ(pruned.size(), 3u);
}

TEST(PruneValidTest, DiscardedSubtreeDoesNotResurface) {
  TreeBuilder b;
  FragmentNodeId weak = b.Add(b.root(), "p", 0b01);
  b.Add(weak, "inner", 0b01);
  b.Add(b.root(), "p", 0b11);
  FragmentTree pruned =
      PruneFragment(b.tree(), PruningPolicy::kValidContributor, 2);
  EXPECT_EQ(Labels(pruned), (std::vector<std::string>{"root", "p"}));
}

TEST(PruneValidTest, KlistAndCidMetadataPreserved) {
  TreeBuilder b;
  b.Add(b.root(), "x", 0b10, {"m", "n"});
  FragmentTree pruned =
      PruneFragment(b.tree(), PruningPolicy::kValidContributor, 2);
  EXPECT_EQ(pruned.node(1).klist, 0b10u);
  EXPECT_EQ(pruned.node(1).cid, (ContentId{"m", "n"}));
}

}  // namespace
}  // namespace xks
