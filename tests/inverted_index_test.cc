#include "src/index/inverted_index.h"

#include <gtest/gtest.h>

#include "src/storage/shredder.h"
#include "src/xml/parser.h"

namespace xks {
namespace {

PostingList MakeList(std::initializer_list<std::initializer_list<uint32_t>> codes) {
  PostingList list;
  for (auto code : codes) list.emplace_back(std::vector<uint32_t>(code));
  return list;
}

TEST(PostingOpsTest, LowerBound) {
  PostingList list = MakeList({{0, 1}, {0, 3}, {0, 5}});
  EXPECT_EQ(LowerBoundPosting(list, Dewey{0, 0}), 0u);
  EXPECT_EQ(LowerBoundPosting(list, Dewey{0, 1}), 0u);
  EXPECT_EQ(LowerBoundPosting(list, Dewey{0, 2}), 1u);
  EXPECT_EQ(LowerBoundPosting(list, Dewey{0, 9}), 3u);
}

TEST(PostingOpsTest, LeftAndRightMatch) {
  PostingList list = MakeList({{0, 1}, {0, 3}});
  EXPECT_EQ(*LeftMatch(list, Dewey{0, 2}), (Dewey{0, 1}));
  EXPECT_EQ(*LeftMatch(list, Dewey{0, 3}), (Dewey{0, 3}));  // <=
  EXPECT_EQ(LeftMatch(list, Dewey{0, 0}), nullptr);
  EXPECT_EQ(*RightMatch(list, Dewey{0, 2}), (Dewey{0, 3}));
  EXPECT_EQ(*RightMatch(list, Dewey{0, 1}), (Dewey{0, 1}));  // >=
  EXPECT_EQ(RightMatch(list, Dewey{0, 4}), nullptr);
}

TEST(PostingOpsTest, ClosestPrefersDeeperLca) {
  // Query point 0.2.5; left neighbour 0.2.1 shares prefix 0.2 (depth 2),
  // right neighbour 0.3 shares only 0 (depth 1) → left wins.
  PostingList list = MakeList({{0, 2, 1}, {0, 3}});
  EXPECT_EQ(ClosestPosting(list, Dewey{0, 2, 5}), (Dewey{0, 2, 1}));
  // Flip: left shares depth 1, right shares depth 2.
  PostingList list2 = MakeList({{0, 1}, {0, 2, 9}});
  EXPECT_EQ(ClosestPosting(list2, Dewey{0, 2, 5}), (Dewey{0, 2, 9}));
}

TEST(PostingOpsTest, ClosestAtBoundaries) {
  PostingList list = MakeList({{0, 2}, {0, 4}});
  EXPECT_EQ(ClosestPosting(list, Dewey{0, 0}), (Dewey{0, 2}));  // before all
  EXPECT_EQ(ClosestPosting(list, Dewey{0, 9}), (Dewey{0, 4}));  // after all
  EXPECT_EQ(ClosestPosting(list, Dewey{0, 2}), (Dewey{0, 2}));  // exact
}

TEST(PostingOpsTest, ClosestDescendantSharesFullPrefix) {
  // A posting inside the query node's subtree shares the whole node prefix.
  PostingList list = MakeList({{0, 1}, {0, 2, 3, 1}});
  EXPECT_EQ(ClosestPosting(list, Dewey{0, 2}), (Dewey{0, 2, 3, 1}));
}

TEST(PostingOpsTest, RangeQueries) {
  PostingList list = MakeList({{0, 1}, {0, 2, 0}, {0, 2, 5}, {0, 3}});
  Dewey v{0, 2};
  Dewey end = v.SubtreeEnd();
  EXPECT_TRUE(AnyPostingInRange(list, v, end));
  EXPECT_EQ(CountPostingsInRange(list, v, end), 2u);
  EXPECT_FALSE(AnyPostingInRange(list, Dewey{0, 4}, Dewey{0, 5}));
  EXPECT_EQ(CountPostingsInRange(list, Dewey{0}, Dewey{1}), 4u);
}

TEST(InvertedIndexTest, BuildFromValueTable) {
  Result<Document> doc =
      ParseXml("<r><a>xml search</a><b>xml</b><c>other</c></r>");
  ASSERT_TRUE(doc.ok());
  ShreddedTables tables = Shred(*doc);
  InvertedIndex index = InvertedIndex::Build(tables.values);
  const PostingList* xml = index.Find("xml");
  ASSERT_NE(xml, nullptr);
  ASSERT_EQ(xml->size(), 2u);
  EXPECT_EQ((*xml)[0], (Dewey{0, 0}));
  EXPECT_EQ((*xml)[1], (Dewey{0, 1}));
  EXPECT_EQ(index.Find("absent"), nullptr);
  EXPECT_TRUE(index.FindOrEmpty("absent").empty());
  EXPECT_GE(index.vocabulary_size(), 5u);  // xml, search, other, b, c, r...
  EXPECT_GE(index.total_postings(), 5u);
}

TEST(InvertedIndexTest, PostingsDeduplicated) {
  // The same word at the same node from two sources yields one posting.
  Result<Document> doc = ParseXml(R"(<r><title title="title">title</title></r>)");
  ASSERT_TRUE(doc.ok());
  ShreddedTables tables = Shred(*doc);
  InvertedIndex index = InvertedIndex::Build(tables.values);
  ASSERT_NE(index.Find("title"), nullptr);
  EXPECT_EQ(index.Find("title")->size(), 1u);
}

}  // namespace
}  // namespace xks
