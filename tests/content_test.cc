#include "src/text/content.h"

#include <gtest/gtest.h>

#include "src/xml/parser.h"

namespace xks {
namespace {

TEST(ContentIdTest, EmptyIsIdentity) {
  ContentId id;
  EXPECT_TRUE(id.empty());
  ContentId other;
  other.Absorb("word");
  id.Merge(other);
  EXPECT_EQ(id, other);
}

TEST(ContentIdTest, AbsorbTracksMinMax) {
  ContentId id;
  id.Absorb("keyword");
  EXPECT_EQ(id.min_word, "keyword");
  EXPECT_EQ(id.max_word, "keyword");
  id.Absorb("xml");
  EXPECT_EQ(id.min_word, "keyword");
  EXPECT_EQ(id.max_word, "xml");
  id.Absorb("abstract");
  EXPECT_EQ(id.min_word, "abstract");
  EXPECT_EQ(id.max_word, "xml");
  id.Absorb("match");  // interior word: no change
  EXPECT_EQ(id.ToString(), "(abstract,xml)");
}

TEST(ContentIdTest, MergeWidens) {
  ContentId a;
  a.Absorb("match");
  a.Absorb("search");
  ContentId b;
  b.Absorb("chen");
  b.Absorb("xml");
  a.Merge(b);
  EXPECT_EQ(a.min_word, "chen");
  EXPECT_EQ(a.max_word, "xml");
}

TEST(ContentIdTest, MergeWithEmptyIsNoop) {
  ContentId a;
  a.Absorb("x");
  ContentId before = a;
  a.Merge(ContentId{});
  EXPECT_EQ(a, before);
}

TEST(ContentIdTest, ComparisonIsLexicographicPair) {
  ContentId a{"alpha", "beta"};
  ContentId b{"alpha", "gamma"};
  ContentId c{"beta", "beta"};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (ContentId{"alpha", "beta"}));
}

TEST(ContentWordsTest, LabelTextAndAttributesParticipate) {
  // The paper's Cv: "the word set implied in v's label, text and attributes".
  Result<Document> doc = ParseXml(R"(<title lang="English">XML Keyword</title>)");
  ASSERT_TRUE(doc.ok());
  std::vector<std::string> words = ContentWords(*doc, doc->root());
  EXPECT_EQ(words, (std::vector<std::string>{"english", "keyword", "lang",
                                             "title", "xml"}));
}

TEST(ContentWordsTest, StopWordsRemoved) {
  Result<Document> doc = ParseXml("<ref>Liu and Chen on the search</ref>");
  ASSERT_TRUE(doc.ok());
  std::vector<std::string> words = ContentWords(*doc, doc->root());
  EXPECT_EQ(words, (std::vector<std::string>{"chen", "liu", "ref", "search"}));
}

TEST(ContentWordsTest, SortedAndDeduplicated) {
  // Note: the label "a" itself is a stop word and is filtered out.
  Result<Document> doc = ParseXml("<a>zz aa zz aa</a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(ContentWords(*doc, doc->root()),
            (std::vector<std::string>{"aa", "zz"}));
}

TEST(ContentWordsTest, OnlyOwnContentNotDescendants) {
  Result<Document> doc = ParseXml("<outer><inner>hidden</inner></outer>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(ContentWords(*doc, doc->root()),
            (std::vector<std::string>{"outer"}));
}

TEST(ContentIdOfTest, PaperTitleExample) {
  // Section 4.1: sorted tree content set {keyword, match, relevant, search,
  // xml} has cID (keyword, xml).
  ContentId id = ContentIdOf({"keyword", "match", "relevant", "search", "xml"});
  EXPECT_EQ(id.min_word, "keyword");
  EXPECT_EQ(id.max_word, "xml");
}

TEST(ContentIdOfTest, EmptyWordList) {
  EXPECT_TRUE(ContentIdOf({}).empty());
}

TEST(ContentIdOfTest, ApproximationCanCollide) {
  // Two different sets with the same cID — the documented approximation the
  // cID ablation bench quantifies.
  ContentId a = ContentIdOf({"alpha", "omega"});
  ContentId b = ContentIdOf({"alpha", "middle", "omega"});
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace xks
