#include "src/core/metrics.h"

#include <gtest/gtest.h>

namespace xks {
namespace {

/// Builds a one-chain fragment tree over `deweys` (first is the root).
FragmentTree Chain(std::initializer_list<std::initializer_list<uint32_t>> deweys) {
  FragmentTree tree;
  FragmentNodeId parent = kNullFragmentNode;
  for (auto code : deweys) {
    FragmentNode node;
    node.dewey = Dewey(std::vector<uint32_t>(code));
    node.label = "n";
    if (parent == kNullFragmentNode) {
      parent = tree.CreateRoot(std::move(node));
    } else {
      parent = tree.AddChild(parent, std::move(node));
    }
  }
  return tree;
}

SearchResult MakeResult(std::vector<FragmentTree> trees) {
  SearchResult result;
  for (FragmentTree& tree : trees) {
    FragmentResult f;
    f.rtf.root = tree.node(tree.root()).dewey;
    f.fragment = std::move(tree);
    result.fragments.push_back(std::move(f));
  }
  return result;
}

TEST(MetricsTest, IdenticalResultsGiveCfrOne) {
  SearchResult v = MakeResult({Chain({{0}, {0, 1}})});
  SearchResult x = MakeResult({Chain({{0}, {0, 1}})});
  Result<QueryEffectiveness> eff = CompareEffectiveness(v, x);
  ASSERT_TRUE(eff.ok());
  EXPECT_EQ(eff->rtf_count, 1u);
  EXPECT_EQ(eff->common_count, 1u);
  EXPECT_DOUBLE_EQ(eff->cfr(), 1.0);
  EXPECT_DOUBLE_EQ(eff->apr(), 0.0);
  EXPECT_DOUBLE_EQ(eff->max_apr(), 0.0);
  EXPECT_DOUBLE_EQ(eff->apr_prime(), 0.0);
}

TEST(MetricsTest, PrunedNodesCounted) {
  // MaxMatch kept 4 nodes, ValidRTF kept 2 of them → ratio 2/4.
  SearchResult v = MakeResult({Chain({{0}, {0, 1}})});
  SearchResult x = MakeResult({Chain({{0}, {0, 1}, {0, 1, 0}, {0, 1, 0, 0}})});
  Result<QueryEffectiveness> eff = CompareEffectiveness(v, x);
  ASSERT_TRUE(eff.ok());
  EXPECT_DOUBLE_EQ(eff->cfr(), 0.0);
  EXPECT_DOUBLE_EQ(eff->apr(), 0.5);
  EXPECT_DOUBLE_EQ(eff->max_apr(), 0.5);
  EXPECT_DOUBLE_EQ(eff->apr_prime(), 0.0);  // single differing fragment
}

TEST(MetricsTest, ValidRtfKeepingMoreGivesZeroRatio) {
  // The false positive fix: ValidRTF keeps nodes MaxMatch dropped;
  // |x_a − v_a| = 0 although the fragments differ.
  SearchResult v = MakeResult({Chain({{0}, {0, 1}, {0, 2}})});
  SearchResult x = MakeResult({Chain({{0}, {0, 1}})});
  Result<QueryEffectiveness> eff = CompareEffectiveness(v, x);
  ASSERT_TRUE(eff.ok());
  EXPECT_DOUBLE_EQ(eff->cfr(), 0.0);
  EXPECT_DOUBLE_EQ(eff->apr(), 0.0);
}

TEST(MetricsTest, MixedFragments) {
  // Three RTFs: identical, mildly pruned (1/2), heavily pruned (3/4).
  SearchResult v = MakeResult({
      Chain({{0, 1}}),
      Chain({{0, 2}}),
      Chain({{0, 3}}),
  });
  SearchResult x = MakeResult({
      Chain({{0, 1}}),
      Chain({{0, 2}, {0, 2, 0}}),
      Chain({{0, 3}, {0, 3, 0}, {0, 3, 1}, {0, 3, 2}}),
  });
  Result<QueryEffectiveness> eff = CompareEffectiveness(v, x);
  ASSERT_TRUE(eff.ok());
  EXPECT_EQ(eff->rtf_count, 3u);
  EXPECT_EQ(eff->common_count, 1u);
  EXPECT_NEAR(eff->cfr(), 1.0 / 3.0, 1e-12);
  // APR = (0 + 1/2 + 3/4) / 2.
  EXPECT_NEAR(eff->apr(), 0.625, 1e-12);
  EXPECT_NEAR(eff->max_apr(), 0.75, 1e-12);
  // APR' discards the extreme 3/4: (0 + 1/2) / 1.
  EXPECT_NEAR(eff->apr_prime(), 0.5, 1e-12);
}

TEST(MetricsTest, EmptyResults) {
  SearchResult v = MakeResult({});
  SearchResult x = MakeResult({});
  Result<QueryEffectiveness> eff = CompareEffectiveness(v, x);
  ASSERT_TRUE(eff.ok());
  EXPECT_EQ(eff->rtf_count, 0u);
  EXPECT_DOUBLE_EQ(eff->cfr(), 1.0);
  EXPECT_DOUBLE_EQ(eff->apr(), 0.0);
}

TEST(MetricsTest, MisalignedCountsRejected) {
  SearchResult v = MakeResult({Chain({{0}})});
  SearchResult x = MakeResult({});
  EXPECT_FALSE(CompareEffectiveness(v, x).ok());
}

TEST(MetricsTest, MisalignedRootsRejected) {
  SearchResult v = MakeResult({Chain({{0, 1}})});
  SearchResult x = MakeResult({Chain({{0, 2}})});
  EXPECT_FALSE(CompareEffectiveness(v, x).ok());
}

TEST(MetricsTest, AprPrimeWithTwoEqualExtremes) {
  // Two differing fragments with equal ratios: APR' keeps one of them.
  SearchResult v = MakeResult({Chain({{0, 1}}), Chain({{0, 2}})});
  SearchResult x = MakeResult({Chain({{0, 1}, {0, 1, 0}}),
                               Chain({{0, 2}, {0, 2, 0}})});
  Result<QueryEffectiveness> eff = CompareEffectiveness(v, x);
  ASSERT_TRUE(eff.ok());
  EXPECT_DOUBLE_EQ(eff->apr(), 0.5);
  EXPECT_DOUBLE_EQ(eff->apr_prime(), 0.5);
  EXPECT_DOUBLE_EQ(eff->max_apr(), 0.5);
}

}  // namespace
}  // namespace xks
