// Serial/parallel equivalence: Database::Search must produce byte-identical
// SearchResponses at every max_parallelism setting — hit order, scores,
// cursors, totals and deterministic statistics — across ranked and unranked
// modes, multi-page cursor walks, and degenerate (single-document) corpora.
// The parallel scan is an implementation detail; this suite is the contract
// that keeps it invisible.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/database.h"
#include "src/common/string_util.h"

namespace xks {
namespace {

/// A 10-document corpus with deliberately uneven shape: variable hit counts
/// per document (including zero), variable depths, so both the early-
/// termination high-water mark and the ranked merge see interesting input.
Database MakeUnevenCorpus() {
  Database db;
  for (int d = 0; d < 10; ++d) {
    std::string xml = "<lib>";
    // Document d carries (d * 3) % 7 matching books at depth 3...
    const int hits = (d * 3) % 7;
    for (int h = 0; h < hits; ++h) {
      xml += StrFormat("<book><title>keyword study %d-%d</title></book>", d, h);
    }
    // ...plus, on every third document, a deeply nested match.
    if (d % 3 == 0) {
      xml += "<shelf><row><box><book><title>keyword deep</title></book>"
             "</box></row></shelf>";
    }
    xml += StrFormat("<book><title>filler %d</title></book></lib>", d);
    EXPECT_TRUE(db.AddDocumentXml("doc" + std::to_string(d), xml).ok());
  }
  EXPECT_TRUE(db.Build().ok());
  return db;
}

void ExpectSameHit(const Hit& a, const Hit& b, const std::string& where) {
  EXPECT_EQ(a.document, b.document) << where;
  EXPECT_EQ(a.document_name, b.document_name) << where;
  EXPECT_EQ(a.rtf.root, b.rtf.root) << where;
  EXPECT_EQ(a.rtf.root_is_slca, b.rtf.root_is_slca) << where;
  EXPECT_EQ(a.score, b.score) << where;  // bitwise: same ops, same order
  EXPECT_EQ(a.fragment.NodeSet(), b.fragment.NodeSet()) << where;
  EXPECT_EQ(a.snippet, b.snippet) << where;
}

/// Every deterministic response field; timings are wall-clock and excluded.
void ExpectSameResponse(const SearchResponse& a, const SearchResponse& b,
                        const std::string& where) {
  EXPECT_EQ(a.total_hits, b.total_hits) << where;
  EXPECT_EQ(a.total_is_exact, b.total_is_exact) << where;
  EXPECT_EQ(a.stats_are_exact, b.stats_are_exact) << where;
  EXPECT_EQ(a.documents_searched, b.documents_searched) << where;
  EXPECT_EQ(a.next_cursor, b.next_cursor) << where;
  EXPECT_EQ(a.pruning.raw_nodes, b.pruning.raw_nodes) << where;
  EXPECT_EQ(a.pruning.kept_nodes, b.pruning.kept_nodes) << where;
  EXPECT_EQ(a.keyword_node_count, b.keyword_node_count) << where;
  ASSERT_EQ(a.hits.size(), b.hits.size()) << where;
  for (size_t i = 0; i < a.hits.size(); ++i) {
    ExpectSameHit(a.hits[i], b.hits[i], where + " hit " + std::to_string(i));
  }
}

/// Walks every page of `request` at the given parallelism, returning the
/// sequence of responses. Fails the test on any non-OK page.
std::vector<SearchResponse> WalkPages(const Database& db,
                                      SearchRequest request,
                                      size_t parallelism) {
  request.max_parallelism = parallelism;
  // This suite is the contract for the *uncached* parallel scan: with the
  // default-on result cache, the serial baseline walk would fill the
  // snapshot cache and every parallel walk would replay it, leaving the
  // fan-out unexercised. Cached-vs-uncached equivalence has its own
  // contract in tests/cache_search_test.cc.
  request.use_cache = false;
  std::vector<SearchResponse> pages;
  std::string cursor;
  for (int page = 0; page < 64; ++page) {
    request.cursor = cursor;
    Result<SearchResponse> response = db.Search(request);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    if (!response.ok()) return pages;
    cursor = response->next_cursor;
    pages.push_back(std::move(response).value());
    if (cursor.empty()) break;
  }
  return pages;
}

void ExpectEquivalentWalks(const Database& db, const SearchRequest& request,
                           const std::string& label) {
  const std::vector<SearchResponse> serial = WalkPages(db, request, 1);
  for (size_t parallelism : {2u, 8u}) {
    const std::vector<SearchResponse> parallel =
        WalkPages(db, request, parallelism);
    ASSERT_EQ(serial.size(), parallel.size())
        << label << " p=" << parallelism;
    for (size_t i = 0; i < serial.size(); ++i) {
      ExpectSameResponse(serial[i], parallel[i],
                         StrFormat("%s p=%zu page %zu", label.c_str(),
                                   parallelism, i));
    }
  }
}

SearchRequest BaseRequest(bool rank, size_t top_k) {
  SearchRequest request;
  request.query = "keyword";
  request.rank = rank;
  request.top_k = top_k;
  request.include_stats = true;
  // Keep every request in this suite on the uncached scan path (see the
  // WalkPages comment); the cursor and concurrency tests below would
  // otherwise certify cache replays instead of the fan-out.
  request.use_cache = false;
  return request;
}

TEST(ParallelSearchTest, RankedMultiPageWalksAreIdentical) {
  Database db = MakeUnevenCorpus();
  ExpectEquivalentWalks(db, BaseRequest(/*rank=*/true, /*top_k=*/3),
                        "ranked,k=3");
}

TEST(ParallelSearchTest, UnrankedEarlyTerminatingWalksAreIdentical) {
  Database db = MakeUnevenCorpus();
  ExpectEquivalentWalks(db, BaseRequest(/*rank=*/false, /*top_k=*/2),
                        "unranked,k=2");
}

TEST(ParallelSearchTest, UnboundedPagesAreIdentical) {
  Database db = MakeUnevenCorpus();
  ExpectEquivalentWalks(db, BaseRequest(/*rank=*/true, /*top_k=*/0),
                        "ranked,k=0");
  ExpectEquivalentWalks(db, BaseRequest(/*rank=*/false, /*top_k=*/0),
                        "unranked,k=0");
}

TEST(ParallelSearchTest, SingleDocumentCorpusIsIdentical) {
  Database db;
  ASSERT_TRUE(db.AddDocumentXml(
                    "only", "<r><a><t>keyword one</t></a>"
                            "<b><t>keyword two</t></b></r>")
                  .ok());
  ASSERT_TRUE(db.Build().ok());
  ExpectEquivalentWalks(db, BaseRequest(/*rank=*/true, /*top_k=*/1),
                        "single-doc ranked");
  ExpectEquivalentWalks(db, BaseRequest(/*rank=*/false, /*top_k=*/1),
                        "single-doc unranked");
}

TEST(ParallelSearchTest, RestrictedSelectionIsIdentical) {
  Database db = MakeUnevenCorpus();
  SearchRequest request = BaseRequest(/*rank=*/false, /*top_k=*/2);
  request.documents = {7, 1, 4, 3};
  ExpectEquivalentWalks(db, request, "restricted unranked");
}

TEST(ParallelSearchTest, CursorsCrossParallelismBoundaries) {
  Database db = MakeUnevenCorpus();
  // A cursor minted by a serial scan continues under a parallel scan (and
  // back): max_parallelism is not part of the fingerprint.
  SearchRequest request = BaseRequest(/*rank=*/true, /*top_k=*/4);
  request.max_parallelism = 1;
  Result<SearchResponse> first = db.Search(request);
  ASSERT_TRUE(first.ok());
  ASSERT_FALSE(first->next_cursor.empty());

  SearchRequest continued = request;
  continued.max_parallelism = 8;
  continued.cursor = first->next_cursor;
  Result<SearchResponse> parallel_second = db.Search(continued);
  ASSERT_TRUE(parallel_second.ok());

  request.cursor = first->next_cursor;
  Result<SearchResponse> serial_second = db.Search(request);
  ASSERT_TRUE(serial_second.ok());
  ExpectSameResponse(*serial_second, *parallel_second, "cross-parallelism");
}

TEST(ParallelSearchTest, MutatedCorpusWalksAreIdentical) {
  // The serial/parallel equivalence contract must survive the snapshot
  // lifecycle: after removals (tombstoned ids), replacements and
  // post-Build adds, responses stay byte-identical at every parallelism.
  Database db = MakeUnevenCorpus();
  ASSERT_TRUE(db.RemoveDocument("doc3").ok());
  ASSERT_TRUE(db.RemoveDocument("doc7").ok());
  ASSERT_TRUE(db
                  .ReplaceDocumentXml(
                      "doc5", "<lib><book><title>keyword rewritten</title>"
                              "</book></lib>")
                  .ok());
  ASSERT_TRUE(db.AddDocumentXml(
                    "late", "<lib><shelf><book><title>keyword late add"
                            "</title></book></shelf></lib>")
                  .ok());
  ExpectEquivalentWalks(db, BaseRequest(/*rank=*/true, /*top_k=*/3),
                        "mutated ranked,k=3");
  ExpectEquivalentWalks(db, BaseRequest(/*rank=*/false, /*top_k=*/2),
                        "mutated unranked,k=2");
}

TEST(ParallelSearchTest, ConcurrentSearchesShareOneDatabase) {
  // Search is const: hammer one Database from many threads (each itself
  // fanning out) and spot-check against the serial answer. Under TSan this
  // is the no-data-races certificate for the shared corpus state.
  Database db = MakeUnevenCorpus();
  SearchRequest request = BaseRequest(/*rank=*/true, /*top_k=*/5);
  request.max_parallelism = 1;
  Result<SearchResponse> expected = db.Search(request);
  ASSERT_TRUE(expected.ok());

  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&db, &expected, &mismatches] {
      SearchRequest parallel = BaseRequest(/*rank=*/true, /*top_k=*/5);
      parallel.max_parallelism = 4;
      for (int round = 0; round < 5; ++round) {
        Result<SearchResponse> got = db.Search(parallel);
        if (!got.ok() || got->hits.size() != expected->hits.size() ||
            got->next_cursor != expected->next_cursor) {
          mismatches.fetch_add(1);
          continue;
        }
        for (size_t i = 0; i < got->hits.size(); ++i) {
          if (got->hits[i].document != expected->hits[i].document ||
              got->hits[i].score != expected->hits[i].score) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace xks
