#include "src/xml/parser.h"

#include <gtest/gtest.h>

#include "src/common/random.h"

namespace xks {
namespace {

Document MustParse(std::string_view xml, const ParseOptions& options = {}) {
  Result<Document> doc = ParseXml(xml, options);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return std::move(doc).value();
}

TEST(ParserTest, MinimalDocument) {
  Document doc = MustParse("<a/>");
  EXPECT_EQ(doc.size(), 1u);
  EXPECT_EQ(doc.node(doc.root()).label, "a");
  EXPECT_TRUE(doc.node(doc.root()).text.empty());
}

TEST(ParserTest, TextContent) {
  Document doc = MustParse("<a>hello world</a>");
  EXPECT_EQ(doc.node(doc.root()).text, "hello world");
}

TEST(ParserTest, NestedElements) {
  Document doc = MustParse("<a><b><c>x</c></b><d/></a>");
  const Node& root = doc.node(doc.root());
  ASSERT_EQ(root.children.size(), 2u);
  const Node& b = doc.node(root.children[0]);
  EXPECT_EQ(b.label, "b");
  EXPECT_EQ(doc.node(b.children[0]).text, "x");
  EXPECT_EQ(doc.node(root.children[1]).label, "d");
}

TEST(ParserTest, Attributes) {
  Document doc = MustParse(R"(<a id="1" name='two'/>)");
  const Node& root = doc.node(doc.root());
  ASSERT_EQ(root.attributes.size(), 2u);
  EXPECT_EQ(root.attributes[0].name, "id");
  EXPECT_EQ(root.attributes[0].value, "1");
  EXPECT_EQ(root.attributes[1].value, "two");
}

TEST(ParserTest, AttributeEntityExpansion) {
  Document doc = MustParse(R"(<a t="&lt;x&gt; &amp; &quot;y&quot;"/>)");
  EXPECT_EQ(doc.node(doc.root()).attributes[0].value, "<x> & \"y\"");
}

TEST(ParserTest, DuplicateAttributeRejected) {
  EXPECT_FALSE(ParseXml(R"(<a x="1" x="2"/>)").ok());
}

TEST(ParserTest, PredefinedEntities) {
  Document doc = MustParse("<a>&lt;tag&gt; &amp; &apos;q&apos; &quot;p&quot;</a>");
  EXPECT_EQ(doc.node(doc.root()).text, "<tag> & 'q' \"p\"");
}

TEST(ParserTest, NumericCharacterReferences) {
  Document doc = MustParse("<a>&#65;&#x42;&#x43a;</a>");
  EXPECT_EQ(doc.node(doc.root()).text, "AB\xD0\xBA");  // 'A', 'B', U+043A
}

TEST(ParserTest, UndefinedEntityLenientByDefault) {
  Document doc = MustParse("<a>M&uuml;ller</a>");
  EXPECT_EQ(doc.node(doc.root()).text, "M&uuml;ller");
}

TEST(ParserTest, UndefinedEntityStrictFails) {
  ParseOptions options;
  options.allow_undefined_entities = false;
  EXPECT_FALSE(ParseXml("<a>&uuml;</a>", options).ok());
}

TEST(ParserTest, MalformedCharacterReference) {
  EXPECT_FALSE(ParseXml("<a>&#;</a>").ok());
  EXPECT_FALSE(ParseXml("<a>&#xZZ;</a>").ok());
  EXPECT_FALSE(ParseXml("<a>&#0;</a>").ok());
  EXPECT_FALSE(ParseXml("<a>&#x110000;</a>").ok());
}

TEST(ParserTest, CdataSection) {
  Document doc = MustParse("<a><![CDATA[<not> & parsed]]></a>");
  EXPECT_EQ(doc.node(doc.root()).text, "<not> & parsed");
}

TEST(ParserTest, CommentsSkipped) {
  // Per XML semantics a comment does not break character data: "x" and "y"
  // join into one text chunk.
  Document doc = MustParse("<!-- head --><a>x<!-- mid -->y</a><!-- tail -->");
  EXPECT_EQ(doc.node(doc.root()).text, "xy");
  EXPECT_EQ(doc.size(), 1u);
}

TEST(ParserTest, ProcessingInstructionsSkipped) {
  Document doc = MustParse("<?xml version=\"1.0\"?><a><?php echo ?>x</a>");
  EXPECT_EQ(doc.node(doc.root()).text, "x");
}

TEST(ParserTest, DoctypeSkippedIncludingInternalSubset) {
  Document doc = MustParse(
      "<!DOCTYPE dblp [<!ELEMENT dblp (article)*> <!ENTITY x \"y\">]><a/>");
  EXPECT_EQ(doc.node(doc.root()).label, "a");
}

TEST(ParserTest, ByteOrderMarkSkipped) {
  Document doc = MustParse("\xEF\xBB\xBF<a/>");
  EXPECT_EQ(doc.node(doc.root()).label, "a");
}

TEST(ParserTest, WhitespaceOnlyTextDroppedByDefault) {
  Document doc = MustParse("<a>\n  <b/>\n  <c/>\n</a>");
  EXPECT_TRUE(doc.node(doc.root()).text.empty());
}

TEST(ParserTest, WhitespaceKeptWhenRequested) {
  ParseOptions options;
  options.keep_whitespace_text = true;
  Document doc = MustParse("<a> <b/></a>", options);
  EXPECT_EQ(doc.node(doc.root()).text, " ");
}

TEST(ParserTest, MixedContentMergedWithSpaces) {
  Document doc = MustParse("<a>one<b/>two<c/>three</a>");
  EXPECT_EQ(doc.node(doc.root()).text, "one two three");
}

TEST(ParserTest, DeweysAssignedAfterParse) {
  Document doc = MustParse("<a><b/><c><d/></c></a>");
  NodeId d = *doc.FindByDewey(Dewey{0, 1, 0});
  EXPECT_EQ(doc.node(d).label, "d");
}

TEST(ParserTest, MismatchedTagsRejected) {
  EXPECT_FALSE(ParseXml("<a></b>").ok());
  EXPECT_FALSE(ParseXml("<a><b></a></b>").ok());
}

TEST(ParserTest, UnterminatedConstructsRejected) {
  EXPECT_FALSE(ParseXml("<a>").ok());
  EXPECT_FALSE(ParseXml("<a").ok());
  EXPECT_FALSE(ParseXml("<a attr=\"x>").ok());
  EXPECT_FALSE(ParseXml("<a><!-- comment </a>").ok());
  EXPECT_FALSE(ParseXml("<a><![CDATA[ x </a>").ok());
  EXPECT_FALSE(ParseXml("<!DOCTYPE a [ <a/>").ok());
}

TEST(ParserTest, ContentAfterRootRejected) {
  EXPECT_FALSE(ParseXml("<a/><b/>").ok());
  EXPECT_FALSE(ParseXml("<a/>text").ok());
  EXPECT_TRUE(ParseXml("<a/>  <!-- ok -->  ").ok());
}

TEST(ParserTest, EmptyAndGarbageInputRejected) {
  EXPECT_FALSE(ParseXml("").ok());
  EXPECT_FALSE(ParseXml("   ").ok());
  EXPECT_FALSE(ParseXml("no markup").ok());
  EXPECT_FALSE(ParseXml("<>").ok());
  EXPECT_FALSE(ParseXml("<1tag/>").ok());
}

TEST(ParserTest, BareAmpersandRejected) {
  EXPECT_FALSE(ParseXml("<a>fish & chips</a>").ok());
}

TEST(ParserTest, LtInAttributeRejected) {
  EXPECT_FALSE(ParseXml("<a x=\"<\"/>").ok());
}

TEST(ParserTest, ErrorsCarryLineAndColumn) {
  Result<Document> r = ParseXml("<a>\n  <b>\n</a>");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("3:"), std::string::npos)
      << r.status().ToString();
}

TEST(ParserTest, MaxDepthGuard) {
  ParseOptions options;
  options.max_depth = 10;
  std::string deep;
  for (int i = 0; i < 12; ++i) deep += "<a>";
  deep += "x";
  for (int i = 0; i < 12; ++i) deep += "</a>";
  EXPECT_FALSE(ParseXml(deep, options).ok());
  EXPECT_TRUE(ParseXml("<a><a><a/></a></a>", options).ok());
}

TEST(ParserTest, NamesAllowXmlCharacters) {
  Document doc = MustParse("<ns:a-b.c_1><x_y/></ns:a-b.c_1>");
  EXPECT_EQ(doc.node(doc.root()).label, "ns:a-b.c_1");
}

TEST(ParserTest, Utf8PassThrough) {
  Document doc = MustParse("<a>\xC3\xA9l\xC3\xA8ve</a>");
  EXPECT_EQ(doc.node(doc.root()).text, "\xC3\xA9l\xC3\xA8ve");
}

TEST(ParserTest, MutationFuzzNeverCrashes) {
  // Byte-level mutations of a valid document must always come back as a
  // clean Status — parse errors are fine, crashes and hangs are not.
  const std::string base =
      R"(<lib count="2"><book id="a&amp;1"><title>X &lt; Y</title>)"
      R"(<![CDATA[raw]]><!-- c --></book><book/><ref x='y'>&#65;</ref></lib>)";
  Rng rng(4242);
  size_t parsed_ok = 0;
  for (int round = 0; round < 2000; ++round) {
    std::string mutated = base;
    const size_t edits = 1 + rng.Uniform(4);
    for (size_t e = 0; e < edits; ++e) {
      const size_t pos = rng.Uniform(mutated.size());
      switch (rng.Uniform(3)) {
        case 0:  // flip
          mutated[pos] = static_cast<char>(rng.Uniform(256));
          break;
        case 1:  // delete
          mutated.erase(pos, 1);
          break;
        default:  // duplicate
          mutated.insert(pos, 1, mutated[pos]);
          break;
      }
      if (mutated.empty()) break;
    }
    Result<Document> result = ParseXml(mutated);
    if (result.ok()) {
      ++parsed_ok;
      // Whatever parsed must be a sane tree.
      EXPECT_LE(result->size(), mutated.size());
    }
  }
  // Some mutations (e.g. inside text) must still parse.
  EXPECT_GT(parsed_ok, 0u);
}

TEST(UnescapeXmlTest, Basic) {
  Result<std::string> r = UnescapeXml("a&lt;b&amp;c", true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "a<b&c");
}

TEST(UnescapeXmlTest, FailsOnBadReference) {
  EXPECT_FALSE(UnescapeXml("&#xGG;", true).ok());
  EXPECT_FALSE(UnescapeXml("&unterminated", true).ok());
}

}  // namespace
}  // namespace xks
