#include "src/storage/store.h"

#include <cstdio>
#include <gtest/gtest.h>

#include "src/datagen/figure1.h"
#include "src/xml/parser.h"

namespace xks {
namespace {

ShreddedStore BuildFromXml(std::string_view xml) {
  Result<Document> doc = ParseXml(xml);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return ShreddedStore::Build(*doc);
}

TEST(StoreTest, KeywordNodesSortedAndLowercased) {
  ShreddedStore store = BuildFromXml("<r><a>XML</a><b>xml</b><c>Xml</c></r>");
  const PostingList& postings = store.KeywordNodes("XML");
  ASSERT_EQ(postings.size(), 3u);
  EXPECT_EQ(postings[0], (Dewey{0, 0}));
  EXPECT_EQ(postings[2], (Dewey{0, 2}));
  EXPECT_TRUE(std::is_sorted(postings.begin(), postings.end()));
}

TEST(StoreTest, AbsentWordGivesEmptyList) {
  ShreddedStore store = BuildFromXml("<r>content</r>");
  EXPECT_TRUE(store.KeywordNodes("missing").empty());
  EXPECT_TRUE(store.KeywordNodes("the").empty());  // stop word
}

TEST(StoreTest, LabelOf) {
  ShreddedStore store = BuildFromXml("<pub><article/></pub>");
  Result<std::string> label = store.LabelOf(Dewey{0, 0});
  ASSERT_TRUE(label.ok());
  EXPECT_EQ(*label, "article");
  EXPECT_FALSE(store.LabelOf(Dewey{0, 7}).ok());
}

TEST(StoreTest, AncestorLabels) {
  ShreddedStore store = BuildFromXml("<a><b><c/></b></a>");
  Result<std::vector<std::string>> labels = store.AncestorLabels(Dewey{0, 0, 0});
  ASSERT_TRUE(labels.ok());
  EXPECT_EQ(*labels, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StoreTest, ContentFeature) {
  ShreddedStore store = BuildFromXml("<r><title>zeta alpha</title></r>");
  Result<ContentId> cid = store.ContentFeatureOf(Dewey{0, 0});
  ASSERT_TRUE(cid.ok());
  EXPECT_EQ(cid->min_word, "alpha");
  EXPECT_EQ(cid->max_word, "zeta");
}

TEST(StoreTest, WordFrequencyCaseInsensitive) {
  ShreddedStore store = BuildFromXml("<r>Data DATA data</r>");
  EXPECT_EQ(store.WordFrequency("DATA"), 3u);
}

TEST(StoreTest, EncodeDecodeRoundTrip) {
  Result<Document> doc = Figure1aDocument();
  ASSERT_TRUE(doc.ok());
  ShreddedStore store = ShreddedStore::Build(*doc);
  std::string buffer;
  store.EncodeTo(&buffer);
  Result<ShreddedStore> restored = ShreddedStore::DecodeFrom(buffer);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  EXPECT_EQ(restored->labels().size(), store.labels().size());
  EXPECT_EQ(restored->elements().size(), store.elements().size());
  EXPECT_EQ(restored->values().size(), store.values().size());
  EXPECT_EQ(restored->index().vocabulary_size(), store.index().vocabulary_size());
  EXPECT_EQ(restored->KeywordNodes("keyword"), store.KeywordNodes("keyword"));
  EXPECT_EQ(restored->WordFrequency("xml"), store.WordFrequency("xml"));
  Result<std::vector<std::string>> labels =
      restored->AncestorLabels(Dewey{0, 2, 0, 1});
  ASSERT_TRUE(labels.ok());
  EXPECT_EQ(labels->back(), "title");
}

TEST(StoreTest, DecodeRejectsBadMagic) {
  EXPECT_EQ(ShreddedStore::DecodeFrom("JUNKdata").status().code(),
            StatusCode::kCorruption);
  EXPECT_EQ(ShreddedStore::DecodeFrom("XK").status().code(),
            StatusCode::kCorruption);
}

TEST(StoreTest, DecodeRejectsEveryTruncatedPrefix) {
  // Every strict prefix of a valid encoding must come back as a Result
  // error — a mid-stream EOF can never crash or be accepted.
  Result<Document> doc = Figure1aDocument();
  ASSERT_TRUE(doc.ok());
  ShreddedStore store = ShreddedStore::Build(*doc);
  std::string buffer;
  store.EncodeTo(&buffer);
  for (size_t cut = 0; cut < buffer.size(); ++cut) {
    Result<ShreddedStore> r = ShreddedStore::DecodeFrom(buffer.substr(0, cut));
    ASSERT_FALSE(r.ok()) << "cut=" << cut;
    EXPECT_EQ(r.status().code(), StatusCode::kCorruption) << "cut=" << cut;
  }
}

TEST(StoreTest, DecodeRejectsImplausibleCounts) {
  // A corrupt count larger than the bytes left must fail before any
  // allocation sized by it (truncated-varint floods, fuzzer food).
  std::string buffer = "XKS1";
  PutVarint64(&buffer, uint64_t{1} << 62);  // label count
  EXPECT_EQ(ShreddedStore::DecodeFrom(buffer).status().code(),
            StatusCode::kCorruption);

  // Same through the Dewey depth field of an element row.
  buffer = "XKS1";
  PutVarint64(&buffer, 0);   // no labels
  PutVarint64(&buffer, 1);   // one element row
  PutVarint32(&buffer, 0);   // label_id
  PutVarint32(&buffer, 512);  // Dewey depth with no components following
  EXPECT_EQ(ShreddedStore::DecodeFrom(buffer).status().code(),
            StatusCode::kCorruption);
}

TEST(StoreTest, DecodeRejectsTrailingGarbage) {
  ShreddedStore store = BuildFromXml("<r>x</r>");
  std::string buffer;
  store.EncodeTo(&buffer);
  buffer += "extra";
  EXPECT_FALSE(ShreddedStore::DecodeFrom(buffer).ok());
}

TEST(StoreTest, SaveAndLoadFile) {
  std::string path = ::testing::TempDir() + "/xks_store_test.bin";
  {
    ShreddedStore store = BuildFromXml("<r><a>alpha</a><b>beta</b></r>");
    ASSERT_TRUE(store.Save(path).ok());
  }
  Result<ShreddedStore> loaded = ShreddedStore::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->KeywordNodes("alpha").size(), 1u);
  std::remove(path.c_str());
}

TEST(StoreTest, LoadMissingFileFails) {
  EXPECT_EQ(ShreddedStore::Load("/nonexistent/path/file.bin").status().code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace xks
