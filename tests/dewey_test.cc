#include "src/xml/dewey.h"

#include <algorithm>
#include <gtest/gtest.h>
#include <unordered_set>

#include "src/common/random.h"

namespace xks {
namespace {

TEST(DeweyTest, ParseAndToString) {
  Result<Dewey> d = Dewey::Parse("0.2.0.1");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->ToString(), "0.2.0.1");
  EXPECT_EQ(d->depth(), 4u);
  EXPECT_EQ((*d)[0], 0u);
  EXPECT_EQ((*d)[1], 2u);
}

TEST(DeweyTest, ParseSingleComponent) {
  Result<Dewey> d = Dewey::Parse("0");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, Dewey::Root());
}

TEST(DeweyTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Dewey::Parse("").ok());
  EXPECT_FALSE(Dewey::Parse(".").ok());
  EXPECT_FALSE(Dewey::Parse("0.").ok());
  EXPECT_FALSE(Dewey::Parse(".0").ok());
  EXPECT_FALSE(Dewey::Parse("0..1").ok());
  EXPECT_FALSE(Dewey::Parse("0.a").ok());
  EXPECT_FALSE(Dewey::Parse("0 1").ok());
}

TEST(DeweyTest, ParseRejectsOverflow) {
  EXPECT_FALSE(Dewey::Parse("99999999999").ok());
  EXPECT_TRUE(Dewey::Parse("4294967295").ok());  // UINT32_MAX fits
}

TEST(DeweyTest, NullCode) {
  Dewey null;
  EXPECT_TRUE(null.empty());
  EXPECT_EQ(null.ToString(), "");
  EXPECT_EQ(null.depth(), 0u);
}

TEST(DeweyTest, ChildAndParent) {
  Dewey root = Dewey::Root();
  Dewey child = root.Child(2).Child(0);
  EXPECT_EQ(child.ToString(), "0.2.0");
  EXPECT_EQ(child.Parent().ToString(), "0.2");
  EXPECT_EQ(root.Parent(), Dewey());
  EXPECT_EQ(Dewey().Parent(), Dewey());
}

TEST(DeweyTest, DocumentOrderIsLexicographic) {
  // Preorder: ancestors before descendants, siblings left to right.
  Dewey a{0};
  Dewey b{0, 1};
  Dewey c{0, 1, 5};
  Dewey d{0, 2};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(c, d);
  EXPECT_LT(b, d);
}

TEST(DeweyTest, OrderingComparesComponentsNumerically) {
  // 0.10 sorts after 0.9 (numeric, not string, comparison).
  EXPECT_LT((Dewey{0, 9}), (Dewey{0, 10}));
}

TEST(DeweyTest, AncestorOrSelf) {
  Dewey a{0, 2};
  EXPECT_TRUE(a.IsAncestorOrSelf(a));
  EXPECT_TRUE(a.IsAncestorOrSelf(Dewey{0, 2, 0, 1}));
  EXPECT_FALSE(a.IsAncestorOrSelf(Dewey{0, 1}));
  EXPECT_FALSE(a.IsAncestorOrSelf(Dewey{0}));
  EXPECT_FALSE(a.IsAncestorOrSelf(Dewey{0, 20}));  // not a prefix componentwise
}

TEST(DeweyTest, StrictAncestor) {
  Dewey a{0, 2};
  EXPECT_FALSE(a.IsAncestor(a));
  EXPECT_TRUE(a.IsAncestor(Dewey{0, 2, 3}));
  EXPECT_TRUE(Dewey::Root().IsAncestor(a));
}

TEST(DeweyTest, LcaIsLongestCommonPrefix) {
  EXPECT_EQ(Dewey::Lca(Dewey{0, 2, 0, 1}, Dewey{0, 2, 1}), (Dewey{0, 2}));
  EXPECT_EQ(Dewey::Lca(Dewey{0, 2}, Dewey{0, 2, 5}), (Dewey{0, 2}));
  EXPECT_EQ(Dewey::Lca(Dewey{0, 1}, Dewey{0, 2}), (Dewey{0}));
  EXPECT_EQ(Dewey::Lca(Dewey{0}, Dewey{0}), (Dewey{0}));
}

TEST(DeweyTest, LcaWithNullIsIdentity) {
  EXPECT_EQ(Dewey::Lca(Dewey(), Dewey{0, 3}), (Dewey{0, 3}));
  EXPECT_EQ(Dewey::Lca(Dewey{0, 3}, Dewey()), (Dewey{0, 3}));
}

TEST(DeweyTest, LcaOfSetFolds) {
  std::vector<Dewey> set = {{0, 2, 0, 1}, {0, 2, 0, 3}, {0, 2, 1}};
  EXPECT_EQ(LcaOfSet(set), (Dewey{0, 2}));
  EXPECT_EQ(LcaOfSet({{0, 5, 5}}), (Dewey{0, 5, 5}));
}

TEST(DeweyTest, SubtreeEndBoundsExactlyTheSubtree) {
  Dewey v{0, 2};
  Dewey end = v.SubtreeEnd();
  EXPECT_EQ(end, (Dewey{0, 3}));
  // Everything in the subtree is in [v, end).
  EXPECT_LE(v, v);
  EXPECT_LT((Dewey{0, 2, 9, 9}), end);
  // First node outside.
  EXPECT_GE((Dewey{0, 3}), end);
  EXPECT_LT((Dewey{0, 1, 99}), v);
}

TEST(DeweyTest, HashConsistentWithEquality) {
  Dewey a{0, 2, 1};
  Dewey b{0, 2, 1};
  Dewey c{0, 2, 2};
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a.Hash(), c.Hash());  // overwhelmingly likely for FNV
  std::unordered_set<Dewey, DeweyHash> set;
  set.insert(a);
  set.insert(b);
  set.insert(c);
  EXPECT_EQ(set.size(), 2u);
}

TEST(DeweyTest, RoundTripRandomized) {
  Rng rng(123);
  for (int i = 0; i < 200; ++i) {
    std::vector<uint32_t> components;
    size_t depth = 1 + rng.Uniform(8);
    for (size_t d = 0; d < depth; ++d) {
      components.push_back(static_cast<uint32_t>(rng.Uniform(1000)));
    }
    Dewey dewey(components);
    Result<Dewey> parsed = Dewey::Parse(dewey.ToString());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, dewey);
  }
}

TEST(DeweyTest, LcaPropertiesRandomized) {
  // lca is commutative, idempotent, and an ancestor-or-self of both args.
  Rng rng(77);
  auto random_dewey = [&rng]() {
    std::vector<uint32_t> c = {0};
    size_t depth = rng.Uniform(6);
    for (size_t d = 0; d < depth; ++d) {
      c.push_back(static_cast<uint32_t>(rng.Uniform(4)));
    }
    return Dewey(c);
  };
  for (int i = 0; i < 500; ++i) {
    Dewey a = random_dewey();
    Dewey b = random_dewey();
    Dewey lca = Dewey::Lca(a, b);
    EXPECT_EQ(lca, Dewey::Lca(b, a));
    EXPECT_EQ(Dewey::Lca(a, a), a);
    EXPECT_TRUE(lca.IsAncestorOrSelf(a));
    EXPECT_TRUE(lca.IsAncestorOrSelf(b));
    // No deeper common ancestor: extending the LCA by one component of `a`
    // must not cover `b` (unless lca == a already).
    if (lca != a && lca != b) {
      Dewey deeper = lca.Child(a[lca.depth()]);
      EXPECT_FALSE(deeper.IsAncestorOrSelf(b));
    }
  }
}

TEST(DeweyTest, SubtreeRangeMatchesIsAncestorRandomized) {
  Rng rng(99);
  auto random_dewey = [&rng]() {
    std::vector<uint32_t> c = {0};
    size_t depth = rng.Uniform(5);
    for (size_t d = 0; d < depth; ++d) {
      c.push_back(static_cast<uint32_t>(rng.Uniform(3)));
    }
    return Dewey(c);
  };
  for (int i = 0; i < 1000; ++i) {
    Dewey v = random_dewey();
    Dewey x = random_dewey();
    bool in_range = v <= x && x < v.SubtreeEnd();
    EXPECT_EQ(in_range, v.IsAncestorOrSelf(x))
        << "v=" << v.ToString() << " x=" << x.ToString();
  }
}

}  // namespace
}  // namespace xks
