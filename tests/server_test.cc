// XksServer end-to-end over real sockets: the byte-identity contract
// (responses served through xksd are byte-for-byte the library's
// EncodeSearchResponse), pipelined batches, wire-level deadlines, overload
// shedding, abrupt-disconnect robustness and graceful drain.

#include "src/server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/database.h"
#include "src/server/client.h"
#include "src/server/wire.h"
#include "tests/test_util.h"

namespace xks {
namespace {

Database BuildCorpus(size_t documents = 4, size_t nodes_per_doc = 60) {
  Database db;
  for (size_t d = 0; d < documents; ++d) {
    EXPECT_TRUE(
        db.AddDocument("doc-" + std::to_string(d),
                       RandomDocument(/*seed=*/3000 + d, nodes_per_doc))
            .ok());
  }
  EXPECT_TRUE(db.Build().ok());
  return db;
}

XksClient ConnectTo(const XksServer& server) {
  auto connected = XksClient::Connect("127.0.0.1", server.port());
  EXPECT_TRUE(connected.ok()) << connected.status().ToString();
  return std::move(connected).value();
}

TEST(XksServerTest, ResponsesAreByteIdenticalToTheLibrary) {
  Database db = BuildCorpus();
  XksServer server(&db, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());
  XksClient client = ConnectTo(server);

  // Deterministic projection: cache-state flags and wall-clock timings are
  // the two nondeterministic response fields, so the contract is stated
  // with the cache bypassed and stats off.
  const std::vector<std::string> queries = {"apple berry", "cedar",
                                            "ember fig dune", "nosuchword"};
  for (const std::string& query_text : queries) {
    SearchRequest request;
    request.query = query_text;
    request.use_cache = false;
    request.include_stats = false;

    Result<SearchResponse> direct = db.Search(request);
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();

    auto reply = client.Call(request);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_TRUE(reply.value().outcome.ok())
        << reply.value().outcome.status().ToString();
    EXPECT_EQ(reply.value().raw_response, EncodeSearchResponse(direct.value()))
        << "wire bytes diverge from the library encoding for '" << query_text
        << "'";
  }
}

TEST(XksServerTest, TraceSpansComeBackWhenAskedAndCostNothingWhenNot) {
  Database db = BuildCorpus();
  XksServer server(&db, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());
  XksClient client = ConnectTo(server);

  SearchRequest request;
  request.query = "apple berry";
  request.use_cache = false;
  request.include_stats = false;
  request.include_trace = true;

  auto reply = client.Call(request);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_TRUE(reply.value().outcome.ok())
      << reply.value().outcome.status().ToString();
  const SearchResponse& response = reply.value().outcome.value();
  ASSERT_NE(response.trace, nullptr) << "include_trace must return a trace";
  const TraceSpan& root = *response.trace;
  EXPECT_EQ(root.name, "search");
  EXPECT_NE(root.Child("parse"), nullptr);
  EXPECT_NE(root.Child("scan"), nullptr);
  for (const TraceSpan& stage : root.children) {
    EXPECT_LE(stage.start_us + stage.duration_us, root.duration_us + 1)
        << "stage '" << stage.name << "' must sit inside the root span";
  }
  EXPECT_EQ(root.Attr("hits"), response.total_hits);

  // Trace off: the wire bytes are exactly the library encoding (no trailing
  // trace section), and the same response minus the trace is what came back
  // above — the trace rides strictly additively.
  SearchRequest plain = request;
  plain.include_trace = false;
  Result<SearchResponse> direct = db.Search(plain);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  auto plain_reply = client.Call(plain);
  ASSERT_TRUE(plain_reply.ok() && plain_reply.value().outcome.ok());
  EXPECT_EQ(plain_reply.value().outcome.value().trace, nullptr);
  EXPECT_EQ(plain_reply.value().raw_response,
            EncodeSearchResponse(direct.value()))
      << "trace-off responses must keep the prior byte form";
  SearchResponse stripped = response;
  stripped.trace.reset();
  EXPECT_EQ(EncodeSearchResponse(stripped), EncodeSearchResponse(direct.value()))
      << "a traced response minus its trace must equal the untraced bytes";
}

TEST(XksServerTest, ErrorsTravelAsStatusFrames) {
  Database db = BuildCorpus();
  XksServer server(&db, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());
  XksClient client = ConnectTo(server);

  SearchRequest request;  // empty query
  auto reply = client.Call(request);
  ASSERT_TRUE(reply.ok());
  ASSERT_FALSE(reply.value().outcome.ok());
  // The library's own validation error, carried over the wire.
  Result<SearchResponse> direct = db.Search(request);
  ASSERT_FALSE(direct.ok());
  EXPECT_EQ(reply.value().outcome.status(), direct.status());
  EXPECT_TRUE(reply.value().raw_response.empty());
}

TEST(XksServerTest, PipelinedBurstAnswersEveryRequestOnce) {
  Database db = BuildCorpus();
  ServerConfig config;
  config.service.batch_max = 8;
  config.service.batch_linger_ms = 5;
  XksServer server(&db, config);
  ASSERT_TRUE(server.Start().ok());
  XksClient client = ConnectTo(server);

  constexpr uint64_t kRequests = 24;
  SearchRequest request;
  request.query = "apple berry";
  for (uint64_t id = 1; id <= kRequests; ++id) {
    ASSERT_TRUE(client.Send(id, request).ok());
  }
  std::set<uint64_t> seen;
  uint64_t epoch = 0;
  for (uint64_t i = 0; i < kRequests; ++i) {
    auto reply = client.Receive();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_TRUE(reply.value().outcome.ok());
    EXPECT_TRUE(seen.insert(reply.value().request_id).second)
        << "duplicate reply for id " << reply.value().request_id;
    if (epoch == 0) epoch = reply.value().outcome.value().epoch;
    EXPECT_EQ(reply.value().outcome.value().epoch, epoch);
  }
  EXPECT_EQ(seen.size(), kRequests);
  EXPECT_EQ(*seen.begin(), 1u);
  EXPECT_EQ(*seen.rbegin(), kRequests);
}

TEST(XksServerTest, WireDeadlineComesBackAsDeadlineExceeded) {
  Database db = BuildCorpus();
  ServerConfig config;
  // The dispatcher lingers past the deadline (the batch never fills), so
  // the query expires in the queue — deterministically.
  config.service.batch_max = 64;
  config.service.batch_linger_ms = 100;
  XksServer server(&db, config);
  ASSERT_TRUE(server.Start().ok());
  XksClient client = ConnectTo(server);

  SearchRequest request;
  request.query = "apple berry";
  request.deadline_ms = 1;
  auto reply = client.Call(request);
  ASSERT_TRUE(reply.ok());
  ASSERT_FALSE(reply.value().outcome.ok());
  EXPECT_EQ(reply.value().outcome.status().code(),
            StatusCode::kDeadlineExceeded);
}

TEST(XksServerTest, OverloadBurstShedsWithResourceExhausted) {
  Database db = BuildCorpus(6, 120);
  ServerConfig config;
  config.service.max_pending = 2;
  config.service.per_client_inflight = 2;
  config.service.batch_max = 4;
  config.service.batch_linger_ms = 50;  // holds the first batch open while
                                        // the burst floods the queue
  XksServer server(&db, config);
  ASSERT_TRUE(server.Start().ok());
  XksClient client = ConnectTo(server);

  constexpr uint64_t kRequests = 32;
  SearchRequest request;
  request.query = "apple berry";
  request.use_cache = false;
  for (uint64_t id = 1; id <= kRequests; ++id) {
    ASSERT_TRUE(client.Send(id, request).ok());
  }
  uint64_t ok = 0, exhausted = 0, other = 0;
  for (uint64_t i = 0; i < kRequests; ++i) {
    auto reply = client.Receive();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    if (reply.value().outcome.ok()) {
      ++ok;
    } else if (reply.value().outcome.status().code() ==
               StatusCode::kResourceExhausted) {
      ++exhausted;
    } else {
      ++other;
    }
  }
  EXPECT_GE(ok, 1u) << "admitted queries must still complete";
  EXPECT_GE(exhausted, 1u) << "a 32-deep burst against quota 2 must shed";
  EXPECT_EQ(other, 0u);
  // Replies are written before the service's completion bookkeeping runs;
  // drain first so the counters have settled.
  server.Shutdown();
  const ServiceStats stats = server.service_stats();
  EXPECT_EQ(stats.shed_overload + stats.shed_quota, exhausted);
  EXPECT_EQ(stats.completed, ok);
}

TEST(XksServerTest, AbruptDisconnectLeavesTheServerServing) {
  Database db = BuildCorpus();
  XksServer server(&db, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());

  // Fire requests and slam the connection without reading replies; repeat.
  for (int round = 0; round < 3; ++round) {
    XksClient client = ConnectTo(server);
    SearchRequest request;
    request.query = "apple berry";
    for (uint64_t id = 1; id <= 4; ++id) {
      ASSERT_TRUE(client.Send(id, request).ok());
    }
    // client destructor closes the socket with replies still in flight
  }

  // The server must still answer a well-behaved client.
  XksClient client = ConnectTo(server);
  SearchRequest request;
  request.query = "cedar";
  auto reply = client.Call(request);
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply.value().outcome.ok());
  EXPECT_GE(server.connections_accepted(), 4u);
}

TEST(XksServerTest, NonRequestFramesAreAnsweredWithInvalidArgument) {
  Database db = BuildCorpus();
  XksServer server(&db, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());

  // Drive the socket by hand: a kStatus frame is not something a client may
  // send.
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  Frame frame;
  frame.kind = FrameKind::kStatus;
  frame.request_id = 5;
  frame.body = EncodeStatusPayload(Status::Internal("client nonsense"));
  ASSERT_TRUE(WriteFrame(fd, frame).ok());
  Result<Frame> reply = ReadFrame(fd);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().kind, FrameKind::kStatus);
  EXPECT_EQ(reply.value().request_id, 5u);
  Status decoded;
  ASSERT_TRUE(DecodeStatusPayload(reply.value().body, &decoded).ok());
  EXPECT_EQ(decoded.code(), StatusCode::kInvalidArgument);
  ::close(fd);
}

TEST(XksServerTest, GracefulShutdownAnswersEverythingAdmitted) {
  Database db = BuildCorpus();
  ServerConfig config;
  config.service.batch_linger_ms = 20;
  XksServer server(&db, config);
  ASSERT_TRUE(server.Start().ok());
  XksClient client = ConnectTo(server);

  constexpr uint64_t kRequests = 8;
  SearchRequest request;
  request.query = "apple berry";
  for (uint64_t id = 1; id <= kRequests; ++id) {
    ASSERT_TRUE(client.Send(id, request).ok());
  }

  std::thread shutter([&] { server.Shutdown(); });
  // Every admitted request is answered before the connection dies: each
  // reply is either its response or a clean draining/shed status — never
  // silence. The transport may drop only after the last reply.
  uint64_t answered = 0;
  for (uint64_t i = 0; i < kRequests; ++i) {
    auto reply = client.Receive();
    if (!reply.ok()) break;  // connection closed after the drain
    ASSERT_TRUE(reply.value().outcome.ok() ||
                reply.value().outcome.status().code() ==
                    StatusCode::kUnavailable);
    ++answered;
  }
  shutter.join();
  const ServiceStats stats = server.service_stats();
  // Everything admitted completed; admitted + rejected covers every reply
  // we saw.
  EXPECT_EQ(stats.completed, stats.admitted);
  EXPECT_GE(answered, stats.completed);

  // After shutdown the listener is gone.
  auto refused = XksClient::Connect("127.0.0.1", server.port());
  EXPECT_FALSE(refused.ok());
}

TEST(XksServerTest, EphemeralPortIsReportedAfterStart) {
  Database db = BuildCorpus(1, 20);
  XksServer server(&db, ServerConfig{});  // port 0
  EXPECT_EQ(server.port(), 0);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_GT(server.port(), 0);
  server.Shutdown();
}

// Regression test for the Shutdown locking fix: Shutdown used to iterate
// connections_ and join reader_threads_ without connections_mutex_,
// racing the acceptor's appends during the connect/teardown window.
// Shutdown now swaps both registries out under the lock; this hammer
// drives fresh connections into the server while Shutdown runs, which is
// exactly the interleaving TSan would flag against the old code.
TEST(XksServerTest, ShutdownRacesWithConnectionChurn) {
  Database db = BuildCorpus(2, 30);
  XksServer server(&db, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();

  std::atomic<bool> stop{false};
  std::vector<std::thread> churners;
  for (int t = 0; t < 4; ++t) {
    churners.emplace_back([&] {
      uint64_t request_id = 1;
      while (!stop.load(std::memory_order_acquire)) {
        auto connected = XksClient::Connect("127.0.0.1", port);
        if (!connected.ok()) continue;  // listener may already be closed
        XksClient client = std::move(connected).value();
        SearchRequest request;
        request.query = "apple berry";
        // Sends and receives may fail mid-shutdown; only crashes and
        // races are failures here, not refused connections.
        if (client.Send(request_id, request).ok()) {
          static_cast<void>(client.Receive());
        }
        ++request_id;
      }
    });
  }

  // Let the churn establish, then tear down while it is still running.
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  server.Shutdown();
  stop.store(true, std::memory_order_release);
  for (std::thread& churner : churners) churner.join();
}

TEST(XksServerTest, ShutdownIsIdempotent) {
  Database db = BuildCorpus(1, 20);
  XksServer server(&db, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());
  server.Shutdown();
  server.Shutdown();  // second call is a no-op
}

}  // namespace
}  // namespace xks
