#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>

#include "src/datagen/dblp_gen.h"
#include "src/datagen/figure1.h"
#include "src/datagen/vocab.h"
#include "src/datagen/workloads.h"
#include "src/datagen/xmark_gen.h"
#include "src/storage/store.h"
#include "src/text/stopwords.h"
#include "src/xml/writer.h"

namespace xks {
namespace {

TEST(Figure1Test, DocumentsParse) {
  Result<Document> a = Figure1aDocument();
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(a->node(a->root()).label, "Publications");
  Result<Document> b = Figure1bDocument();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->node(b->root()).label, "team");
}

TEST(Figure1Test, KeyDeweysExist) {
  Document a = *Figure1aDocument();
  for (const char* code : {"0.0", "0.2.0", "0.2.0.0.0.0", "0.2.0.1", "0.2.0.2",
                           "0.2.0.3.0", "0.2.1", "0.2.1.1", "0.2.1.2"}) {
    EXPECT_TRUE(a.FindByDewey(*Dewey::Parse(code)).ok()) << code;
  }
  Document b = *Figure1bDocument();
  for (const char* code : {"0.0", "0.1.0.2", "0.1.1.2", "0.1.2.2"}) {
    EXPECT_TRUE(b.FindByDewey(*Dewey::Parse(code)).ok()) << code;
  }
}

TEST(Figure1Test, QueriesDefined) {
  for (int i = 1; i <= 5; ++i) {
    EXPECT_FALSE(PaperQuery(i).empty()) << "Q" << i;
  }
  EXPECT_TRUE(PaperQuery(0).empty());
  EXPECT_TRUE(PaperQuery(6).empty());
  EXPECT_EQ(PaperQuery(3), "VLDB title XML keyword search");
  EXPECT_EQ(PaperQuery(4), "Grizzlies position");
}

TEST(VocabTest, PoolsAreUsableAndClean) {
  EXPECT_GE(FillerWords().size(), 150u);
  for (const std::string& w : FillerWords()) {
    EXPECT_FALSE(IsStopWord(w)) << w;
    // No filler word collides with a workload keyword.
    for (const WorkloadKeyword& kw : DblpKeywords()) EXPECT_NE(w, kw.word);
    for (const WorkloadKeyword& kw : XmarkKeywords()) EXPECT_NE(w, kw.word);
  }
  EXPECT_GE(FirstNames().size(), 30u);
  EXPECT_GE(LastNames().size(), 30u);
}

TEST(VocabTest, FillerSentenceShape) {
  Rng rng(5);
  std::string s = FillerSentence(&rng, 5);
  EXPECT_FALSE(s.empty());
  EXPECT_TRUE(s[0] >= 'A' && s[0] <= 'Z');
  EXPECT_EQ(std::count(s.begin(), s.end(), ' '), 4);
}

TEST(WorkloadTest, DblpKeywordTable) {
  EXPECT_EQ(DblpKeywords().size(), 20u);
  // Paper frequencies spot checks.
  for (const WorkloadKeyword& kw : DblpKeywords()) {
    ASSERT_EQ(kw.paper_frequencies.size(), 1u);
    if (kw.word == "keyword") {
      EXPECT_EQ(kw.paper_frequencies[0], 90u);
    }
    if (kw.word == "data") {
      EXPECT_EQ(kw.paper_frequencies[0], 25840u);
    }
  }
}

TEST(WorkloadTest, XmarkKeywordTable) {
  EXPECT_EQ(XmarkKeywords().size(), 13u);
  for (const WorkloadKeyword& kw : XmarkKeywords()) {
    ASSERT_EQ(kw.paper_frequencies.size(), 3u);
    // The paper's 1 : ~3 : ~6 size ratios show in the frequencies.
    EXPECT_GT(kw.paper_frequencies[1], kw.paper_frequencies[0]);
    EXPECT_GT(kw.paper_frequencies[2], kw.paper_frequencies[1]);
  }
}

TEST(WorkloadTest, VdoAnchorFromPaper) {
  // "vdo" = "preventions description order" is anchored in Section 5.1.
  std::vector<std::string> expanded = ExpandLabel("vdo", XmarkKeywords());
  EXPECT_EQ(expanded, (std::vector<std::string>{"preventions", "description",
                                                "order"}));
}

TEST(WorkloadTest, XmarkWorkloadIsThePaper24) {
  const auto& queries = XmarkWorkload();
  ASSERT_EQ(queries.size(), 24u);
  EXPECT_EQ(queries.front().label, "at");
  EXPECT_EQ(queries.back().label, "dtcmvo");
  for (const WorkloadQuery& q : queries) {
    EXPECT_EQ(q.keywords.size(), q.label.size()) << q.label;
  }
}

TEST(WorkloadTest, DblpWorkloadShape) {
  const auto& queries = DblpWorkload();
  ASSERT_EQ(queries.size(), 16u);
  EXPECT_EQ(queries.front().keywords.size(), 2u);
  // Sizes span 2..13 mixing frequencies.
  size_t max_size = 0;
  for (const WorkloadQuery& q : queries) {
    EXPECT_FALSE(q.keywords.empty()) << q.label;
    max_size = std::max(max_size, q.keywords.size());
  }
  EXPECT_GE(max_size, 10u);
}

TEST(DblpGenTest, Deterministic) {
  DblpOptions options;
  options.scale = 0.001;
  Document a = GenerateDblp(options);
  Document b = GenerateDblp(options);
  ASSERT_EQ(a.size(), b.size());
  WriteOptions wo;
  wo.indent = "";
  EXPECT_EQ(WriteXml(a, wo), WriteXml(b, wo));
  options.seed = 43;
  Document c = GenerateDblp(options);
  EXPECT_NE(WriteXml(a, wo), WriteXml(c, wo));
}

TEST(DblpGenTest, StructureIsFlatRecords) {
  DblpOptions options;
  options.scale = 0.001;
  Document doc = GenerateDblp(options);
  const Node& root = doc.node(doc.root());
  EXPECT_EQ(root.label, "dblp");
  EXPECT_EQ(root.children.size(), DblpRecordCount(options));
  for (NodeId rec : root.children) {
    const std::string& label = doc.node(rec).label;
    EXPECT_TRUE(label == "article" || label == "inproceedings") << label;
    // Each record has at least author, title, year, venue, pages, ee.
    EXPECT_GE(doc.node(rec).children.size(), 6u);
  }
}

TEST(DblpGenTest, KeywordFrequenciesMatchScaledTargets) {
  DblpOptions options;
  options.scale = 0.002;
  Document doc = GenerateDblp(options);
  ShreddedStore store = ShreddedStore::Build(doc);
  for (const WorkloadKeyword& kw : DblpKeywords()) {
    const uint64_t expected = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               std::llround(static_cast<double>(kw.paper_frequencies[0]) *
                            options.scale)));
    EXPECT_EQ(store.WordFrequency(kw.word), expected) << kw.word;
  }
}

TEST(XmarkGenTest, Deterministic) {
  XmarkOptions options;
  options.scale = 0.02;
  Document a = GenerateXmark(options);
  Document b = GenerateXmark(options);
  WriteOptions wo;
  wo.indent = "";
  EXPECT_EQ(WriteXml(a, wo), WriteXml(b, wo));
}

TEST(XmarkGenTest, SchemaShape) {
  XmarkOptions options;
  options.scale = 0.02;
  Document doc = GenerateXmark(options);
  const Node& site = doc.node(doc.root());
  EXPECT_EQ(site.label, "site");
  ASSERT_EQ(site.children.size(), 6u);
  EXPECT_EQ(doc.node(site.children[0]).label, "regions");
  EXPECT_EQ(doc.node(site.children[1]).label, "categories");
  EXPECT_EQ(doc.node(site.children[2]).label, "catgraph");
  EXPECT_EQ(doc.node(site.children[3]).label, "people");
  EXPECT_EQ(doc.node(site.children[4]).label, "open_auctions");
  EXPECT_EQ(doc.node(site.children[5]).label, "closed_auctions");
  EXPECT_EQ(doc.node(site.children[0]).children.size(), 6u);  // six regions
}

TEST(XmarkGenTest, DeepRecursiveDescriptions) {
  XmarkOptions options;
  options.scale = 0.05;
  Document doc = GenerateXmark(options);
  // parlist/listitem recursion must appear (drives the extreme fragments).
  bool saw_parlist = false;
  size_t max_depth = 0;
  doc.PreOrder([&](NodeId id) {
    if (doc.node(id).label == "parlist") saw_parlist = true;
    max_depth = std::max(max_depth, doc.node(id).dewey.depth());
    return true;
  });
  EXPECT_TRUE(saw_parlist);
  EXPECT_GE(max_depth, 8u);
}

TEST(XmarkGenTest, SizeScalesLinearly) {
  XmarkOptions small;
  small.scale = 0.02;
  XmarkOptions large;
  large.scale = 0.06;
  size_t small_size = GenerateXmark(small).size();
  size_t large_size = GenerateXmark(large).size();
  EXPECT_GT(large_size, 2 * small_size);
  EXPECT_LT(large_size, 5 * small_size);
}

TEST(XmarkGenTest, WorkloadKeywordsAllPresent) {
  XmarkOptions options;
  options.scale = 0.05;
  Document doc = GenerateXmark(options);
  ShreddedStore store = ShreddedStore::Build(doc);
  for (const WorkloadKeyword& kw : XmarkKeywords()) {
    if (kw.word == "dominator") continue;  // unused in the query workload
    EXPECT_GE(store.WordFrequency(kw.word), 1u) << kw.word;
  }
  // The high-frequency keywords dominate the low-frequency ones.
  EXPECT_GT(store.WordFrequency("preventions"), store.WordFrequency("particle"));
  EXPECT_GT(store.WordFrequency("order"), store.WordFrequency("chronicle"));
}

}  // namespace
}  // namespace xks
