// Cross-module integration: generators → shredding → store → both engines →
// metrics, with structural invariants checked on every fragment.

#include <atomic>
#include <cstdio>
#include <gtest/gtest.h>
#include <thread>

#include "src/core/maxmatch.h"
#include "src/core/metrics.h"
#include "src/core/validrtf.h"
#include "src/datagen/dblp_gen.h"
#include "src/datagen/workloads.h"
#include "src/datagen/xmark_gen.h"
#include "src/storage/store.h"

namespace xks {
namespace {

void CheckFragmentInvariants(const SearchResult& result, size_t k) {
  // Roots strictly increasing in document order.
  for (size_t i = 1; i < result.fragments.size(); ++i) {
    EXPECT_LT(result.fragments[i - 1].rtf.root, result.fragments[i].rtf.root);
  }
  for (const FragmentResult& f : result.fragments) {
    // Every keyword node sits under the root and carries a non-empty mask.
    EXPECT_FALSE(f.rtf.knodes.empty());
    KeywordMask seen = 0;
    for (const RtfKeywordNode& kn : f.rtf.knodes) {
      EXPECT_TRUE(f.rtf.root.IsAncestorOrSelf(kn.dewey));
      EXPECT_NE(kn.mask, 0u);
      seen |= kn.mask;
    }
    // An RTF covers the whole query (keyword requirement).
    EXPECT_EQ(seen, FullMask(k));
    // The pruned fragment is rooted at the RTF root and non-empty.
    ASSERT_FALSE(f.fragment.empty());
    EXPECT_EQ(f.fragment.node(f.fragment.root()).dewey, f.rtf.root);
    // Parent links and Dewey nesting are consistent.
    for (size_t i = 0; i < f.fragment.size(); ++i) {
      const FragmentNode& n = f.fragment.node(static_cast<FragmentNodeId>(i));
      if (n.parent != kNullFragmentNode) {
        const FragmentNode& p = f.fragment.node(n.parent);
        EXPECT_TRUE(p.dewey.IsAncestor(n.dewey));
        EXPECT_EQ(p.dewey.depth() + 1, n.dewey.depth());
      }
    }
  }
}

class DblpIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DblpOptions options;
    options.scale = 0.003;  // ~1.4k records
    store_ = new ShreddedStore(ShreddedStore::Build(GenerateDblp(options)));
  }
  static void TearDownTestSuite() {
    delete store_;
    store_ = nullptr;
  }
  static ShreddedStore* store_;
};

ShreddedStore* DblpIntegrationTest::store_ = nullptr;

TEST_F(DblpIntegrationTest, WholeWorkloadRunsOnBothEngines) {
  for (const WorkloadQuery& wq : DblpWorkload()) {
    KeywordQuery query = *KeywordQuery::FromKeywords(wq.keywords);
    Result<SearchResult> valid = ValidRtfSearch(*store_, query);
    ASSERT_TRUE(valid.ok()) << wq.label;
    Result<SearchResult> max = MaxMatchSearch(*store_, query);
    ASSERT_TRUE(max.ok()) << wq.label;
    CheckFragmentInvariants(*valid, query.size());
    CheckFragmentInvariants(*max, query.size());
    // Same LCA set → aligned fragments.
    Result<QueryEffectiveness> eff = CompareEffectiveness(*valid, *max);
    ASSERT_TRUE(eff.ok()) << wq.label;
    EXPECT_GE(eff->cfr(), 0.0);
    EXPECT_LE(eff->cfr(), 1.0);
    EXPECT_LE(eff->apr_prime(), eff->max_apr() + 1e-12) << wq.label;
  }
}

TEST_F(DblpIntegrationTest, ValidRtfNeverPrunesKeywordCoverage) {
  // After pruning, the fragment still covers every query keyword: the root
  // keeps the full kList and at least one keyword node per keyword remains.
  KeywordQuery query = *KeywordQuery::Parse("xml keyword");
  Result<SearchResult> result = ValidRtfSearch(*store_, query);
  ASSERT_TRUE(result.ok());
  for (const FragmentResult& f : result->fragments) {
    KeywordMask covered = 0;
    for (size_t i = 0; i < f.fragment.size(); ++i) {
      const FragmentNode& n = f.fragment.node(static_cast<FragmentNodeId>(i));
      if (n.is_keyword_node) covered |= n.klist;
    }
    EXPECT_EQ(covered & FullMask(query.size()), FullMask(query.size()));
  }
}

TEST_F(DblpIntegrationTest, StoreRoundTripPreservesSearchResults) {
  std::string path = ::testing::TempDir() + "/xks_integration_store.bin";
  ASSERT_TRUE(store_->Save(path).ok());
  Result<ShreddedStore> loaded = ShreddedStore::Load(path);
  ASSERT_TRUE(loaded.ok());
  KeywordQuery query = *KeywordQuery::Parse("keyword algorithm");
  Result<SearchResult> before = ValidRtfSearch(*store_, query);
  Result<SearchResult> after = ValidRtfSearch(*loaded, query);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(before->rtf_count(), after->rtf_count());
  for (size_t i = 0; i < before->rtf_count(); ++i) {
    EXPECT_EQ(before->fragments[i].fragment.NodeSet(),
              after->fragments[i].fragment.NodeSet());
  }
  std::remove(path.c_str());
}

TEST_F(DblpIntegrationTest, DblpRecordsAreSelfComplete) {
  // The paper's observation behind Figure 6(a): real-world bibliographic
  // records produce regular RTFs that both mechanisms leave alone (APR' = 0)
  // — differences concentrate in the extreme fragment near the root.
  KeywordQuery query = *KeywordQuery::Parse("keyword similarity");
  Result<SearchResult> valid = ValidRtfSearch(*store_, query);
  Result<SearchResult> max = MaxMatchSearch(*store_, query);
  ASSERT_TRUE(valid.ok());
  ASSERT_TRUE(max.ok());
  Result<QueryEffectiveness> eff = CompareEffectiveness(*valid, *max);
  ASSERT_TRUE(eff.ok());
  size_t differing = 0;
  for (size_t i = 0; i < eff->ratios.size(); ++i) {
    if (eff->ratios[i] > 0) ++differing;
  }
  // At most a handful of fragments differ by pruning ratio.
  EXPECT_LE(differing, eff->rtf_count / 2 + 1);
}

class XmarkIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    XmarkOptions options;
    options.scale = 0.12;
    store_ = new ShreddedStore(ShreddedStore::Build(GenerateXmark(options)));
  }
  static void TearDownTestSuite() {
    delete store_;
    store_ = nullptr;
  }
  static ShreddedStore* store_;
};

ShreddedStore* XmarkIntegrationTest::store_ = nullptr;

TEST_F(XmarkIntegrationTest, WholeWorkloadRunsOnBothEngines) {
  for (const WorkloadQuery& wq : XmarkWorkload()) {
    KeywordQuery query = *KeywordQuery::FromKeywords(wq.keywords);
    Result<SearchResult> valid = ValidRtfSearch(*store_, query);
    ASSERT_TRUE(valid.ok()) << wq.label;
    Result<SearchResult> max = MaxMatchSearch(*store_, query);
    ASSERT_TRUE(max.ok()) << wq.label;
    CheckFragmentInvariants(*valid, query.size());
    Result<QueryEffectiveness> eff = CompareEffectiveness(*valid, *max);
    ASSERT_TRUE(eff.ok()) << wq.label;
  }
}

TEST_F(XmarkIntegrationTest, ElcaAlgorithmsAgreeOnRealWorkload) {
  SearchEngine engine(store_);
  for (const WorkloadQuery& wq : XmarkWorkload()) {
    if (wq.keywords.size() > 4) continue;  // keep brute force tractable
    KeywordQuery query = *KeywordQuery::FromKeywords(wq.keywords);
    SearchEngine::KeywordNodeLists keyword_nodes = engine.GetKeywordNodes(query);
    const KeywordLists& lists = keyword_nodes.views;
    SearchOptions indexed;
    indexed.elca_algorithm = ElcaAlgorithm::kIndexedStack;
    SearchOptions merged;
    merged.elca_algorithm = ElcaAlgorithm::kStackMerge;
    EXPECT_EQ(SearchEngine::GetLca(lists, indexed),
              SearchEngine::GetLca(lists, merged))
        << wq.label;
  }
}

TEST_F(XmarkIntegrationTest, ConcurrentSearchesAreConsistent) {
  // The engine and store are read-only at query time; concurrent searches
  // must produce identical results to a serial run.
  KeywordQuery query = *KeywordQuery::FromKeywords(
      ExpandLabel("vdo", XmarkKeywords()));
  Result<SearchResult> serial = ValidRtfSearch(*store_, query);
  ASSERT_TRUE(serial.ok());
  std::vector<std::vector<Dewey>> expected;
  for (const FragmentResult& f : serial->fragments) {
    expected.push_back(f.fragment.NodeSet());
  }

  constexpr int kThreads = 4;
  constexpr int kRounds = 5;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      for (int round = 0; round < kRounds; ++round) {
        Result<SearchResult> r = ValidRtfSearch(*store_, query);
        if (!r.ok() || r->rtf_count() != expected.size()) {
          ++mismatches;
          return;
        }
        for (size_t i = 0; i < expected.size(); ++i) {
          if (r->fragments[i].fragment.NodeSet() != expected[i]) {
            ++mismatches;
            return;
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(XmarkIntegrationTest, ValidRtfPrunesDuplicatesOnXmark) {
  // Synthetic data has low-entropy text → duplicate contents appear and the
  // valid contributor prunes strictly more than the contributor on at least
  // one workload query (the Figure 6(b-d) effect: APR' > 0).
  bool found_extra_pruning = false;
  for (const WorkloadQuery& wq : XmarkWorkload()) {
    KeywordQuery query = *KeywordQuery::FromKeywords(wq.keywords);
    Result<SearchResult> valid = ValidRtfSearch(*store_, query);
    Result<SearchResult> max = MaxMatchSearch(*store_, query);
    ASSERT_TRUE(valid.ok());
    ASSERT_TRUE(max.ok());
    Result<QueryEffectiveness> eff = CompareEffectiveness(*valid, *max);
    ASSERT_TRUE(eff.ok());
    if (eff->max_apr() > 0) {
      found_extra_pruning = true;
      break;
    }
  }
  EXPECT_TRUE(found_extra_pruning);
}

}  // namespace
}  // namespace xks
