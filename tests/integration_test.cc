// Cross-module integration: generators → corpus (xks::Database) → both
// pruning configurations → metrics, with structural invariants checked on
// every fragment. Queries run through the public request/response API; one
// test additionally cross-checks the stage-level LCA algorithms against the
// store building block directly.

#include <atomic>
#include <cstdio>
#include <gtest/gtest.h>
#include <thread>

#include "src/api/database.h"
#include "src/api/effectiveness.h"
#include "src/datagen/dblp_gen.h"
#include "src/datagen/workloads.h"
#include "src/datagen/xmark_gen.h"

namespace xks {
namespace {

SearchRequest WorkloadRequest(const WorkloadQuery& wq, PruningPolicy pruning) {
  return SearchRequest::Exhaustive(wq.keywords, pruning);
}

void CheckFragmentInvariants(const std::vector<Hit>& hits, size_t k) {
  // Roots strictly increasing in document order (single-document corpus).
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_LT(hits[i - 1].rtf.root, hits[i].rtf.root);
  }
  for (const Hit& hit : hits) {
    // Every keyword node sits under the root and carries a non-empty mask.
    EXPECT_FALSE(hit.rtf.knodes.empty());
    KeywordMask seen = 0;
    for (const RtfKeywordNode& kn : hit.rtf.knodes) {
      EXPECT_TRUE(hit.rtf.root.IsAncestorOrSelf(kn.dewey));
      EXPECT_NE(kn.mask, 0u);
      seen |= kn.mask;
    }
    // An RTF covers the whole query (keyword requirement).
    EXPECT_EQ(seen, FullMask(k));
    // The pruned fragment is rooted at the RTF root and non-empty.
    ASSERT_FALSE(hit.fragment.empty());
    EXPECT_EQ(hit.fragment.node(hit.fragment.root()).dewey, hit.rtf.root);
    // Parent links and Dewey nesting are consistent.
    for (size_t i = 0; i < hit.fragment.size(); ++i) {
      const FragmentNode& n = hit.fragment.node(static_cast<FragmentNodeId>(i));
      if (n.parent != kNullFragmentNode) {
        const FragmentNode& p = hit.fragment.node(n.parent);
        EXPECT_TRUE(p.dewey.IsAncestor(n.dewey));
        EXPECT_EQ(p.dewey.depth() + 1, n.dewey.depth());
      }
    }
  }
}

class DblpIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DblpOptions options;
    options.scale = 0.003;  // ~1.4k records
    db_ = new Database();
    ASSERT_TRUE(db_->AddDocument("dblp", GenerateDblp(options)).ok());
    ASSERT_TRUE(db_->Build().ok());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static Database* db_;
};

Database* DblpIntegrationTest::db_ = nullptr;

TEST_F(DblpIntegrationTest, WholeWorkloadRunsOnBothConfigurations) {
  for (const WorkloadQuery& wq : DblpWorkload()) {
    Result<SearchResponse> valid =
        db_->Search(WorkloadRequest(wq, PruningPolicy::kValidContributor));
    ASSERT_TRUE(valid.ok()) << wq.label;
    Result<SearchResponse> max =
        db_->Search(WorkloadRequest(wq, PruningPolicy::kContributor));
    ASSERT_TRUE(max.ok()) << wq.label;
    const size_t k = valid->parsed_query.size();
    CheckFragmentInvariants(valid->hits, k);
    CheckFragmentInvariants(max->hits, k);
    // Same LCA set → aligned fragments.
    Result<QueryEffectiveness> eff =
        CompareHitEffectiveness(valid->hits, max->hits);
    ASSERT_TRUE(eff.ok()) << wq.label;
    EXPECT_GE(eff->cfr(), 0.0);
    EXPECT_LE(eff->cfr(), 1.0);
    EXPECT_LE(eff->apr_prime(), eff->max_apr() + 1e-12) << wq.label;
  }
}

TEST_F(DblpIntegrationTest, ValidRtfNeverPrunesKeywordCoverage) {
  // After pruning, the fragment still covers every query keyword: the root
  // keeps the full kList and at least one keyword node per keyword remains.
  SearchRequest request = SearchRequest::ValidRtf("xml keyword");
  request.top_k = 0;
  request.rank = false;
  Result<SearchResponse> response = db_->Search(request);
  ASSERT_TRUE(response.ok());
  const size_t k = response->parsed_query.size();
  for (const Hit& hit : response->hits) {
    KeywordMask covered = 0;
    for (size_t i = 0; i < hit.fragment.size(); ++i) {
      const FragmentNode& n = hit.fragment.node(static_cast<FragmentNodeId>(i));
      if (n.is_keyword_node) covered |= n.klist;
    }
    EXPECT_EQ(covered & FullMask(k), FullMask(k));
  }
}

TEST_F(DblpIntegrationTest, CorpusRoundTripPreservesSearchResults) {
  std::string path = ::testing::TempDir() + "/xks_integration_corpus.db";
  ASSERT_TRUE(db_->Save(path).ok());
  Result<Database> loaded = Database::Load(path);
  ASSERT_TRUE(loaded.ok());
  SearchRequest request = SearchRequest::ValidRtf("keyword algorithm");
  request.top_k = 0;
  request.rank = false;
  Result<SearchResponse> before = db_->Search(request);
  Result<SearchResponse> after = loaded->Search(request);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(before->hits.size(), after->hits.size());
  for (size_t i = 0; i < before->hits.size(); ++i) {
    EXPECT_EQ(before->hits[i].fragment.NodeSet(),
              after->hits[i].fragment.NodeSet());
  }
  std::remove(path.c_str());
}

TEST_F(DblpIntegrationTest, DblpRecordsAreSelfComplete) {
  // The paper's observation behind Figure 6(a): real-world bibliographic
  // records produce regular RTFs that both mechanisms leave alone (APR' = 0)
  // — differences concentrate in the extreme fragment near the root.
  WorkloadQuery wq{"ks", {"keyword", "similarity"}};
  Result<SearchResponse> valid =
      db_->Search(WorkloadRequest(wq, PruningPolicy::kValidContributor));
  Result<SearchResponse> max =
      db_->Search(WorkloadRequest(wq, PruningPolicy::kContributor));
  ASSERT_TRUE(valid.ok());
  ASSERT_TRUE(max.ok());
  Result<QueryEffectiveness> eff =
      CompareHitEffectiveness(valid->hits, max->hits);
  ASSERT_TRUE(eff.ok());
  size_t differing = 0;
  for (size_t i = 0; i < eff->ratios.size(); ++i) {
    if (eff->ratios[i] > 0) ++differing;
  }
  // At most a handful of fragments differ by pruning ratio.
  EXPECT_LE(differing, eff->rtf_count / 2 + 1);
}

class XmarkIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    XmarkOptions options;
    options.scale = 0.12;
    db_ = new Database();
    ASSERT_TRUE(db_->AddDocument("xmark", GenerateXmark(options)).ok());
    ASSERT_TRUE(db_->Build().ok());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static Database* db_;
};

Database* XmarkIntegrationTest::db_ = nullptr;

TEST_F(XmarkIntegrationTest, WholeWorkloadRunsOnBothConfigurations) {
  for (const WorkloadQuery& wq : XmarkWorkload()) {
    Result<SearchResponse> valid =
        db_->Search(WorkloadRequest(wq, PruningPolicy::kValidContributor));
    ASSERT_TRUE(valid.ok()) << wq.label;
    Result<SearchResponse> max =
        db_->Search(WorkloadRequest(wq, PruningPolicy::kContributor));
    ASSERT_TRUE(max.ok()) << wq.label;
    CheckFragmentInvariants(valid->hits, valid->parsed_query.size());
    Result<QueryEffectiveness> eff =
        CompareHitEffectiveness(valid->hits, max->hits);
    ASSERT_TRUE(eff.ok()) << wq.label;
  }
}

TEST_F(XmarkIntegrationTest, ElcaAlgorithmsAgreeOnRealWorkload) {
  // Stage-level cross-check on the store building block (internal API).
  Result<std::shared_ptr<const ShreddedStore>> shared = db_->store(0);
  ASSERT_TRUE(shared.ok());
  const ShreddedStore& store = **shared;
  for (const WorkloadQuery& wq : XmarkWorkload()) {
    if (wq.keywords.size() > 4) continue;  // keep brute force tractable
    KeywordQuery query = *KeywordQuery::FromKeywords(wq.keywords);
    KeywordNodeLists keyword_nodes = GetKeywordNodes(store, query);
    const KeywordLists& lists = keyword_nodes.views;
    SearchOptions indexed;
    indexed.elca_algorithm = ElcaAlgorithm::kIndexedStack;
    SearchOptions merged;
    merged.elca_algorithm = ElcaAlgorithm::kStackMerge;
    EXPECT_EQ(GetLcaNodes(lists, indexed), GetLcaNodes(lists, merged))
        << wq.label;
  }
}

TEST_F(XmarkIntegrationTest, ConcurrentSearchesAreConsistent) {
  // The database is read-only at query time; concurrent searches must
  // produce identical results to a serial run.
  SearchRequest request;
  for (const std::string& keyword : ExpandLabel("vdo", XmarkKeywords())) {
    request.terms.push_back(QueryTerm{keyword, ""});
  }
  request.top_k = 0;
  request.rank = false;
  request.include_snippets = false;
  Result<SearchResponse> serial = db_->Search(request);
  ASSERT_TRUE(serial.ok());
  std::vector<std::vector<Dewey>> expected;
  for (const Hit& hit : serial->hits) {
    expected.push_back(hit.fragment.NodeSet());
  }

  constexpr int kThreads = 4;
  constexpr int kRounds = 5;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      for (int round = 0; round < kRounds; ++round) {
        Result<SearchResponse> r = db_->Search(request);
        if (!r.ok() || r->hits.size() != expected.size()) {
          ++mismatches;
          return;
        }
        for (size_t i = 0; i < expected.size(); ++i) {
          if (r->hits[i].fragment.NodeSet() != expected[i]) {
            ++mismatches;
            return;
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(XmarkIntegrationTest, ValidRtfPrunesDuplicatesOnXmark) {
  // Synthetic data has low-entropy text → duplicate contents appear and the
  // valid contributor prunes strictly more than the contributor on at least
  // one workload query (the Figure 6(b-d) effect: APR' > 0).
  bool found_extra_pruning = false;
  for (const WorkloadQuery& wq : XmarkWorkload()) {
    Result<SearchResponse> valid =
        db_->Search(WorkloadRequest(wq, PruningPolicy::kValidContributor));
    Result<SearchResponse> max =
        db_->Search(WorkloadRequest(wq, PruningPolicy::kContributor));
    ASSERT_TRUE(valid.ok());
    ASSERT_TRUE(max.ok());
    Result<QueryEffectiveness> eff =
        CompareHitEffectiveness(valid->hits, max->hits);
    ASSERT_TRUE(eff.ok());
    if (eff->max_apr() > 0) {
      found_extra_pruning = true;
      break;
    }
  }
  EXPECT_TRUE(found_extra_pruning);
}

}  // namespace
}  // namespace xks
