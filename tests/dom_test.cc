#include "src/xml/dom.h"

#include <gtest/gtest.h>

namespace xks {
namespace {

Document SmallTree() {
  // root(a) → b(text "hello"), c → d
  Document doc;
  NodeId root = *doc.CreateRoot("a");
  NodeId b = doc.AddNode(root, "b");
  doc.AppendText(b, "hello");
  NodeId c = doc.AddNode(root, "c");
  doc.AddNode(c, "d");
  doc.AssignDeweys();
  return doc;
}

TEST(DomTest, EmptyDocument) {
  Document doc;
  EXPECT_TRUE(doc.empty());
  EXPECT_EQ(doc.root(), kNullNode);
  EXPECT_EQ(doc.MaxDepth(), 0u);
}

TEST(DomTest, CreateRootOnlyOnce) {
  Document doc;
  ASSERT_TRUE(doc.CreateRoot("a").ok());
  EXPECT_EQ(doc.CreateRoot("b").status().code(), StatusCode::kAlreadyExists);
}

TEST(DomTest, StructureAndParents) {
  Document doc = SmallTree();
  EXPECT_EQ(doc.size(), 4u);
  const Node& root = doc.node(doc.root());
  EXPECT_EQ(root.label, "a");
  EXPECT_EQ(root.parent, kNullNode);
  ASSERT_EQ(root.children.size(), 2u);
  const Node& b = doc.node(root.children[0]);
  EXPECT_EQ(b.label, "b");
  EXPECT_EQ(b.text, "hello");
  EXPECT_TRUE(b.is_leaf());
  const Node& c = doc.node(root.children[1]);
  EXPECT_EQ(c.label, "c");
  EXPECT_EQ(doc.node(c.children[0]).parent, root.children[1]);
}

TEST(DomTest, AppendTextConcatenatesWithSpace) {
  Document doc;
  NodeId root = *doc.CreateRoot("a");
  doc.AppendText(root, "one");
  doc.AppendText(root, "two");
  EXPECT_EQ(doc.node(root).text, "one two");
}

TEST(DomTest, Attributes) {
  Document doc;
  NodeId root = *doc.CreateRoot("a");
  doc.AddAttribute(root, "id", "x1");
  doc.AddAttribute(root, "lang", "en");
  ASSERT_EQ(doc.node(root).attributes.size(), 2u);
  EXPECT_EQ(doc.node(root).attributes[0].name, "id");
  EXPECT_EQ(doc.node(root).attributes[1].value, "en");
}

TEST(DomTest, DeweyAssignment) {
  Document doc = SmallTree();
  EXPECT_EQ(doc.node(doc.root()).dewey, Dewey::Root());
  const Node& root = doc.node(doc.root());
  EXPECT_EQ(doc.node(root.children[0]).dewey, (Dewey{0, 0}));
  EXPECT_EQ(doc.node(root.children[1]).dewey, (Dewey{0, 1}));
  NodeId d = doc.node(root.children[1]).children[0];
  EXPECT_EQ(doc.node(d).dewey, (Dewey{0, 1, 0}));
}

TEST(DomTest, FindByDewey) {
  Document doc = SmallTree();
  Result<NodeId> found = doc.FindByDewey(Dewey{0, 1, 0});
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(doc.node(*found).label, "d");
  EXPECT_TRUE(doc.FindByDewey(Dewey{0}).ok());
  EXPECT_FALSE(doc.FindByDewey(Dewey{0, 5}).ok());
  EXPECT_FALSE(doc.FindByDewey(Dewey{1}).ok());
  EXPECT_FALSE(doc.FindByDewey(Dewey{0, 1, 0, 0}).ok());
  EXPECT_FALSE(doc.FindByDewey(Dewey()).ok());
}

TEST(DomTest, PreOrderVisitsDocumentOrder) {
  Document doc = SmallTree();
  std::vector<std::string> labels;
  doc.PreOrder([&](NodeId id) {
    labels.push_back(doc.node(id).label);
    return true;
  });
  EXPECT_EQ(labels, (std::vector<std::string>{"a", "b", "c", "d"}));
}

TEST(DomTest, PreOrderPrunesWhenVisitorReturnsFalse) {
  Document doc = SmallTree();
  std::vector<std::string> labels;
  doc.PreOrder([&](NodeId id) {
    labels.push_back(doc.node(id).label);
    return doc.node(id).label != "c";  // prune below c
  });
  EXPECT_EQ(labels, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(DomTest, DepthAndMaxDepth) {
  Document doc = SmallTree();
  EXPECT_EQ(doc.Depth(doc.root()), 1u);
  EXPECT_EQ(doc.MaxDepth(), 3u);
}

TEST(DomTest, CopyIsIndependent) {
  Document doc = SmallTree();
  Document copy = doc;
  copy.AddNode(copy.root(), "extra");
  EXPECT_EQ(doc.size(), 4u);
  EXPECT_EQ(copy.size(), 5u);
}

TEST(DomTest, DeweyOrderEqualsPreorderRandomized) {
  // Build a fan-out tree and check lexicographic Dewey order == preorder.
  Document doc;
  NodeId root = *doc.CreateRoot("r");
  for (int i = 0; i < 3; ++i) {
    NodeId a = doc.AddNode(root, "a");
    for (int j = 0; j < 3; ++j) {
      NodeId b = doc.AddNode(a, "b");
      for (int l = 0; l < 2; ++l) doc.AddNode(b, "c");
    }
  }
  doc.AssignDeweys();
  std::vector<Dewey> order;
  doc.PreOrder([&](NodeId id) {
    order.push_back(doc.node(id).dewey);
    return true;
  });
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_LT(order[i - 1], order[i]);
  }
}

}  // namespace
}  // namespace xks
