// xks::Database unit tests: corpus building, doc-qualified search, top-k +
// cursor pagination, ranking, persistence (XKS2 + legacy XKS1) and request
// validation.

#include "src/api/database.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/cursor.h"
#include "src/xml/parser.h"

namespace xks {
namespace {

/// Three small documents; "keyword" occurs in all, "skyline" only in c.
Database MakeCorpus() {
  Database db;
  EXPECT_TRUE(db.AddDocumentXml(
                    "a", "<lib><book><title>xml keyword search</title></book>"
                         "<book><title>keyword proximity</title></book></lib>")
                  .ok());
  EXPECT_TRUE(db.AddDocumentXml(
                    "b", "<lib><paper><title>keyword ranking</title></paper></lib>")
                  .ok());
  EXPECT_TRUE(db.AddDocumentXml(
                    "c", "<lib><paper><title>skyline keyword query</title>"
                         "</paper></lib>")
                  .ok());
  EXPECT_TRUE(db.Build().ok());
  return db;
}

SearchRequest Unranked(const std::string& query, size_t top_k = 0) {
  SearchRequest request;
  request.query = query;
  request.top_k = top_k;
  request.rank = false;
  return request;
}

TEST(DatabaseTest, RejectsEmptyAndDuplicateNames) {
  Database db;
  Result<Document> doc = ParseXml("<r>x</r>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(db.AddDocument("", *doc).status().code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(db.AddDocument("dup", *doc).ok());
  EXPECT_EQ(db.AddDocument("dup", *doc).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(DatabaseTest, SearchRequiresBuild) {
  Database db;
  ASSERT_TRUE(db.AddDocumentXml("a", "<r>word</r>").ok());
  EXPECT_FALSE(db.Search(Unranked("word")).ok());
  ASSERT_TRUE(db.Build().ok());
  EXPECT_TRUE(db.Search(Unranked("word")).ok());
  // Adding another document after Build() does NOT invalidate the corpus:
  // a new snapshot is published and the document is searchable immediately.
  ASSERT_TRUE(db.AddDocumentXml("b", "<r>word</r>").ok());
  Result<SearchResponse> response = db.Search(Unranked("word"));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->hits.size(), 2u);
  EXPECT_TRUE(db.built());
}

TEST(DatabaseTest, BuildFailsOnEmptyCorpus) {
  Database db;
  EXPECT_FALSE(db.Build().ok());
}

TEST(DatabaseTest, AddDocumentXmlPropagatesParseErrors) {
  Database db;
  EXPECT_FALSE(db.AddDocumentXml("bad", "<r><unclosed></r>").ok());
}

TEST(DatabaseTest, MultiDocumentHitsAreDocQualified) {
  Database db = MakeCorpus();
  EXPECT_EQ(db.document_count(), 3u);
  Result<SearchResponse> response = db.Search(Unranked("keyword"));
  ASSERT_TRUE(response.ok());
  // One RTF per matching title; every document matches "keyword".
  ASSERT_EQ(response->hits.size(), 4u);
  EXPECT_EQ(response->hits[0].document, *db.FindDocument("a"));
  EXPECT_EQ(response->hits[0].document_name, "a");
  EXPECT_EQ(response->hits[2].document_name, "b");
  EXPECT_EQ(response->hits[3].document_name, "c");
  EXPECT_TRUE(response->next_cursor.empty());
  EXPECT_TRUE(response->total_is_exact);
  EXPECT_EQ(response->total_hits, 4u);
}

TEST(DatabaseTest, DocumentRestrictionAndUnknownIds) {
  Database db = MakeCorpus();
  SearchRequest request = Unranked("keyword");
  request.documents = {*db.FindDocument("c")};
  Result<SearchResponse> response = db.Search(request);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->hits.size(), 1u);
  EXPECT_EQ(response->hits[0].document_name, "c");

  request.documents = {99};
  EXPECT_EQ(db.Search(request).status().code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, PaginationWalksTheFullResultSet) {
  Database db = MakeCorpus();
  Result<SearchResponse> all = db.Search(Unranked("keyword"));
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->hits.size(), 4u);

  // Page through with top_k=2 and compare against the unbounded run.
  SearchRequest paged = Unranked("keyword", /*top_k=*/2);
  std::vector<Hit> collected;
  std::string cursor;
  for (int page = 0; page < 10; ++page) {
    paged.cursor = cursor;
    Result<SearchResponse> response = db.Search(paged);
    ASSERT_TRUE(response.ok());
    EXPECT_LE(response->hits.size(), 2u);
    for (Hit& hit : response->hits) collected.push_back(std::move(hit));
    cursor = response->next_cursor;
    if (cursor.empty()) break;
  }
  ASSERT_EQ(collected.size(), all->hits.size());
  for (size_t i = 0; i < collected.size(); ++i) {
    EXPECT_EQ(collected[i].document, all->hits[i].document);
    EXPECT_EQ(collected[i].rtf.root, all->hits[i].rtf.root);
    EXPECT_EQ(collected[i].fragment.NodeSet(), all->hits[i].fragment.NodeSet());
  }
}

TEST(DatabaseTest, EarlyTerminationSkipsTrailingDocuments) {
  Database db = MakeCorpus();
  // Document "a" alone fills a one-hit page plus the look-ahead probe, so
  // the scan never reaches "b" or "c".
  Result<SearchResponse> response = db.Search(Unranked("keyword", /*top_k=*/1));
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->hits.size(), 1u);
  EXPECT_EQ(response->hits[0].document_name, "a");
  EXPECT_EQ(response->documents_searched, 1u);
  EXPECT_FALSE(response->total_is_exact);
  EXPECT_FALSE(response->next_cursor.empty());
}

TEST(DatabaseTest, RankedScoresAreComparableAcrossDocumentDepths) {
  // Regression: specificity used to be normalized by each document's own
  // deepest result root, so a shallow document's only hit scored a perfect
  // specificity and could outrank a deep document's genuinely more specific
  // hit. With the corpus-level normalizer the deep hit must win.
  Database db;
  ASSERT_TRUE(
      db.AddDocumentXml("shallow", "<r><t>keyword</t></r>").ok());
  ASSERT_TRUE(db.AddDocumentXml(
                    "deep", "<r><a><b><c><t>keyword</t></c></b></a></r>")
                  .ok());
  ASSERT_TRUE(db.Build().ok());
  EXPECT_GE(db.corpus_max_depth(), 5u);

  SearchRequest request;
  request.query = "keyword";
  request.top_k = 0;
  request.rank = true;
  Result<SearchResponse> response = db.Search(request);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->hits.size(), 2u);
  EXPECT_EQ(response->hits[0].document_name, "deep");
  EXPECT_EQ(response->hits[1].document_name, "shallow");
  // Strictly different scores, not a tie broken by document order.
  EXPECT_GT(response->hits[0].score, response->hits[1].score);
}

TEST(DatabaseTest, SingleDocumentSelectionKeepsLegacyNormalization) {
  // Restricting the search to one document falls back to result-set-
  // relative specificity: the lone hit of a shallow document still scores
  // a full specificity component, exactly as the pre-corpus API did.
  Database db;
  ASSERT_TRUE(db.AddDocumentXml("shallow", "<r><t>keyword</t></r>").ok());
  ASSERT_TRUE(db.AddDocumentXml(
                    "deep", "<r><a><b><c><t>keyword</t></c></b></a></r>")
                  .ok());
  ASSERT_TRUE(db.Build().ok());

  SearchRequest request;
  request.query = "keyword";
  request.top_k = 0;
  request.rank = true;
  request.documents = {*db.FindDocument("shallow")};
  Result<SearchResponse> restricted = db.Search(request);
  ASSERT_TRUE(restricted.ok());
  ASSERT_EQ(restricted->hits.size(), 1u);

  Database alone;
  ASSERT_TRUE(alone.AddDocumentXml("shallow", "<r><t>keyword</t></r>").ok());
  ASSERT_TRUE(alone.Build().ok());
  SearchRequest solo = request;
  solo.documents.clear();
  Result<SearchResponse> standalone = alone.Search(solo);
  ASSERT_TRUE(standalone.ok());
  ASSERT_EQ(standalone->hits.size(), 1u);
  EXPECT_EQ(restricted->hits[0].score, standalone->hits[0].score);
}

TEST(DatabaseTest, RankedSearchOrdersByDescendingScore) {
  Database db = MakeCorpus();
  SearchRequest request;
  request.query = "keyword";
  request.top_k = 0;
  request.rank = true;
  Result<SearchResponse> response = db.Search(request);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->hits.size(), 4u);
  for (size_t i = 1; i < response->hits.size(); ++i) {
    EXPECT_GE(response->hits[i - 1].score, response->hits[i].score);
  }
}

TEST(DatabaseTest, CursorIsBoundToItsRequest) {
  Database db = MakeCorpus();
  Result<SearchResponse> page = db.Search(Unranked("keyword", /*top_k=*/2));
  ASSERT_TRUE(page.ok());
  ASSERT_FALSE(page->next_cursor.empty());

  // Same cursor, different query → rejected.
  SearchRequest other = Unranked("skyline", /*top_k=*/2);
  other.cursor = page->next_cursor;
  EXPECT_EQ(db.Search(other).status().code(), StatusCode::kInvalidArgument);

  // Same cursor, different pruning policy → rejected.
  SearchRequest different_config = Unranked("keyword", /*top_k=*/2);
  different_config.pruning = PruningPolicy::kContributor;
  different_config.cursor = page->next_cursor;
  EXPECT_FALSE(db.Search(different_config).ok());

  // Garbage cursors → rejected.
  SearchRequest garbage = Unranked("keyword", /*top_k=*/2);
  garbage.cursor = "not-a-cursor";
  EXPECT_EQ(db.Search(garbage).status().code(), StatusCode::kInvalidArgument);
}

TEST(DatabaseTest, CursorDiesWithTheCorpus) {
  Database db = MakeCorpus();
  Result<SearchResponse> page = db.Search(Unranked("keyword", /*top_k=*/2));
  ASSERT_TRUE(page.ok());
  ASSERT_FALSE(page->next_cursor.empty());

  // A different corpus with the same document count and ids must reject the
  // replayed cursor — the revision hash differs.
  Database other;
  ASSERT_TRUE(other.AddDocumentXml("x", "<r><t>keyword one</t></r>").ok());
  ASSERT_TRUE(other.AddDocumentXml("y", "<r><t>keyword two</t></r>").ok());
  ASSERT_TRUE(other.AddDocumentXml("z", "<r><t>keyword three</t></r>").ok());
  ASSERT_TRUE(other.Build().ok());
  SearchRequest replay = Unranked("keyword", /*top_k=*/2);
  replay.cursor = page->next_cursor;
  EXPECT_EQ(other.Search(replay).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DatabaseTest, RankedCursorIsBoundToWeights) {
  Database db = MakeCorpus();
  SearchRequest request;
  request.query = "keyword";
  request.top_k = 2;  // rank defaults to true
  Result<SearchResponse> page = db.Search(request);
  ASSERT_TRUE(page.ok());
  ASSERT_FALSE(page->next_cursor.empty());

  // Different ranking weights reorder the merge → the cursor must die.
  SearchRequest reweighted = request;
  reweighted.weights.specificity = 0.9;
  reweighted.cursor = page->next_cursor;
  EXPECT_EQ(db.Search(reweighted).status().code(),
            StatusCode::kInvalidArgument);

  // Unchanged weights keep it valid.
  request.cursor = page->next_cursor;
  EXPECT_TRUE(db.Search(request).ok());
}

TEST(DatabaseTest, SnippetAndRawFragmentOptIns) {
  Database db = MakeCorpus();
  SearchRequest request = Unranked("keyword", 1);
  request.include_snippets = false;
  Result<SearchResponse> bare = db.Search(request);
  ASSERT_TRUE(bare.ok());
  ASSERT_EQ(bare->hits.size(), 1u);
  EXPECT_TRUE(bare->hits[0].snippet.empty());
  EXPECT_TRUE(bare->hits[0].raw.empty());

  request.include_snippets = true;
  request.include_raw_fragments = true;
  Result<SearchResponse> full = db.Search(request);
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full->hits[0].snippet.empty());
  EXPECT_FALSE(full->hits[0].raw.empty());
  EXPECT_GE(full->hits[0].raw.size(), full->hits[0].fragment.size());
}

TEST(DatabaseTest, StatsAreExactSignalsPartialCoverage) {
  Database db = MakeCorpus();
  // Full unranked scan: statistics cover every document.
  SearchRequest full = Unranked("keyword");
  full.include_stats = true;
  Result<SearchResponse> complete = db.Search(full);
  ASSERT_TRUE(complete.ok());
  EXPECT_TRUE(complete->stats_are_exact);
  EXPECT_EQ(complete->documents_searched, db.document_count());

  // Early-terminated scan: stats cover only the scanned prefix and must
  // say so explicitly, not merely via total_is_exact.
  SearchRequest partial = Unranked("keyword", /*top_k=*/1);
  partial.include_stats = true;
  Result<SearchResponse> truncated = db.Search(partial);
  ASSERT_TRUE(truncated.ok());
  EXPECT_LT(truncated->documents_searched, db.document_count());
  EXPECT_FALSE(truncated->stats_are_exact);
  EXPECT_LT(truncated->keyword_node_count, complete->keyword_node_count);

  // Ranked requests execute everything: always exact.
  SearchRequest ranked;
  ranked.query = "keyword";
  ranked.top_k = 1;
  ranked.include_stats = true;
  Result<SearchResponse> scored = db.Search(ranked);
  ASSERT_TRUE(scored.ok());
  EXPECT_TRUE(scored->stats_are_exact);

  // A restricted selection that completes is exact even though fewer
  // documents than the corpus were touched.
  SearchRequest restricted = Unranked("keyword");
  restricted.include_stats = true;
  restricted.documents = {*db.FindDocument("b")};
  Result<SearchResponse> subset = db.Search(restricted);
  ASSERT_TRUE(subset.ok());
  EXPECT_EQ(subset->documents_searched, 1u);
  EXPECT_TRUE(subset->stats_are_exact);
}

TEST(DatabaseTest, StatsOptIn) {
  Database db = MakeCorpus();
  Result<SearchResponse> plain = db.Search(Unranked("keyword"));
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->keyword_node_count, 0u);

  SearchRequest with_stats = Unranked("keyword");
  with_stats.include_stats = true;
  Result<SearchResponse> stats = db.Search(with_stats);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->keyword_node_count, 4u);
  EXPECT_GT(stats->pruning.raw_nodes, 0u);
}

TEST(DatabaseTest, CorpusStatistics) {
  Database db = MakeCorpus();
  // "keyword" appears once per title across the three documents, 4 total.
  EXPECT_EQ(db.WordFrequency("keyword"), 4u);
  EXPECT_EQ(db.WordFrequency("skyline"), 1u);
  EXPECT_EQ(db.WordFrequency("absent"), 0u);
  EXPECT_GT(db.vocabulary_size(), 0u);
  EXPECT_GT(db.total_postings(), 0u);
}

TEST(DatabaseTest, EncodeDecodeRoundTrip) {
  Database db = MakeCorpus();
  std::string buffer;
  db.EncodeTo(&buffer);
  Result<Database> restored = Database::DecodeFrom(buffer);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->document_count(), 3u);
  EXPECT_EQ(*restored->document_name(0), "a");
  EXPECT_EQ(*restored->document_name(2), "c");
  EXPECT_TRUE(restored->built());

  Result<SearchResponse> before = db.Search(Unranked("keyword"));
  Result<SearchResponse> after = restored->Search(Unranked("keyword"));
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(before->hits.size(), after->hits.size());
  for (size_t i = 0; i < before->hits.size(); ++i) {
    EXPECT_EQ(before->hits[i].document, after->hits[i].document);
    EXPECT_EQ(before->hits[i].fragment.NodeSet(),
              after->hits[i].fragment.NodeSet());
  }
}

// Regression test for the DecodeFrom locking fix: decode used to call
// ...Locked helpers and publish epoch/revision/built_ without the catalog
// mutex, trusting "no one else can see the object yet". The decoded
// database must hand a fully published, internally consistent catalog to
// the first concurrent readers and writers that touch it — under TSan this
// hammer is what would catch a decode path that skipped the publish fences.
TEST(DatabaseTest, DecodedDatabaseServesConcurrentSearchAndMutation) {
  std::string buffer;
  MakeCorpus().EncodeTo(&buffer);
  Result<Database> restored = Database::DecodeFrom(buffer);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  Database& db = *restored;

  std::atomic<bool> stop{false};
  std::atomic<int> search_failures{0};
  std::vector<std::thread> searchers;
  for (int t = 0; t < 3; ++t) {
    searchers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        Result<SearchResponse> response = db.Search(Unranked("keyword"));
        if (!response.ok()) ++search_failures;
      }
    });
  }
  // The mutator churns documents through add/remove on the decoded catalog
  // while the searchers pin snapshots of it.
  for (int round = 0; round < 25; ++round) {
    const std::string name = "churn-" + std::to_string(round);
    ASSERT_TRUE(db.AddDocumentXml(
                      name, "<r><x>keyword churn</x><y>extra</y></r>")
                    .ok());
    ASSERT_TRUE(db.RemoveDocument(name).ok());
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& searcher : searchers) searcher.join();

  EXPECT_EQ(search_failures.load(), 0);
  EXPECT_EQ(db.document_count(), 3u);
}

TEST(DatabaseTest, SaveAndLoadFile) {
  std::string path = ::testing::TempDir() + "/xks_database_test.db";
  {
    Database db = MakeCorpus();
    ASSERT_TRUE(db.Save(path).ok());
  }
  Result<Database> loaded = Database::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->document_count(), 3u);
  std::remove(path.c_str());
}

TEST(DatabaseTest, LoadsLegacySingleDocumentStore) {
  // A pre-corpus XKS1 file surfaces as a one-document corpus.
  std::string path = ::testing::TempDir() + "/xks_database_legacy.bin";
  {
    Result<Document> doc = ParseXml("<r><a>legacy keyword</a></r>");
    ASSERT_TRUE(doc.ok());
    ShreddedStore store = ShreddedStore::Build(*doc);
    ASSERT_TRUE(store.Save(path).ok());
  }
  Result<Database> loaded = Database::Load(path, "legacy");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->document_count(), 1u);
  EXPECT_EQ(*loaded->document_name(0), "legacy");
  Result<SearchResponse> response = loaded->Search(Unranked("keyword"));
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->hits.size(), 1u);
  EXPECT_EQ(response->hits[0].document_name, "legacy");
  std::remove(path.c_str());
}

TEST(DatabaseTest, DecodeRejectsCorruptCorpora) {
  EXPECT_EQ(Database::DecodeFrom("JUNKdata").status().code(),
            StatusCode::kCorruption);
  EXPECT_EQ(Database::DecodeFrom("XK").status().code(),
            StatusCode::kCorruption);

  Database db = MakeCorpus();
  std::string buffer;
  db.EncodeTo(&buffer);
  // Every strict prefix of a valid encoding must fail cleanly, never crash.
  for (size_t cut = 0; cut < buffer.size(); ++cut) {
    EXPECT_FALSE(Database::DecodeFrom(buffer.substr(0, cut)).ok())
        << "cut=" << cut;
  }
  EXPECT_FALSE(Database::DecodeFrom(buffer + "extra").ok());
}

TEST(DatabaseTest, TermsTakePrecedenceOverQueryText) {
  Database db = MakeCorpus();
  SearchRequest request;
  request.query = "skyline";
  request.terms = {QueryTerm{"ranking", ""}};
  request.rank = false;
  request.top_k = 0;
  Result<SearchResponse> response = db.Search(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->parsed_query.ToString(), "ranking");
  ASSERT_EQ(response->hits.size(), 1u);
  EXPECT_EQ(response->hits[0].document_name, "b");
}

TEST(DatabaseTest, DocumentAccessorsAreBoundsChecked) {
  // Out-of-range ids used to index documents_ unchecked (UB); both
  // accessors now answer NotFound instead.
  Database db = MakeCorpus();
  EXPECT_TRUE(db.document_name(0).ok());
  EXPECT_TRUE(db.store(2).ok());

  Result<std::string> name = db.document_name(99);
  EXPECT_EQ(name.status().code(), StatusCode::kNotFound);
  EXPECT_NE(name.status().message().find("unknown document id 99"),
            std::string::npos);
  EXPECT_EQ(db.store(99).status().code(), StatusCode::kNotFound);

  // Removed ids answer NotFound too, from both the catalog and its
  // snapshot.
  ASSERT_TRUE(db.RemoveDocument(*db.FindDocument("b")).ok());
  EXPECT_EQ(db.document_name(1).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(db.store(1).status().code(), StatusCode::kNotFound);
  std::shared_ptr<const Snapshot> snapshot = db.snapshot();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->document_name(1).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(snapshot->store(1).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(*snapshot->document_name(2), "c");
}

TEST(DatabaseTest, RejectsDuplicateDocumentIdsInSelection) {
  Database db = MakeCorpus();
  SearchRequest request = Unranked("keyword");
  DocumentId a = *db.FindDocument("a");
  request.documents = {a, *db.FindDocument("b"), a};
  Result<SearchResponse> response = db.Search(request);
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(response.status().message().find("duplicate document id"),
            std::string::npos);
}

TEST(DatabaseTest, UnknownSelectionIdsReportTheOffendingId) {
  Database db = MakeCorpus();
  SearchRequest request = Unranked("keyword");
  request.documents = {0, 42};
  Result<SearchResponse> response = db.Search(request);
  EXPECT_EQ(response.status().code(), StatusCode::kNotFound);
  EXPECT_NE(response.status().message().find("unknown document id 42"),
            std::string::npos);
}

TEST(DatabaseTest, RejectsOverflowingPageWindows) {
  Database db = MakeCorpus();
  // Mint a legitimate cursor, then forge its offset to the top of the
  // range: offset + top_k + 1 would wrap, so the request is rejected
  // instead of degrading into a misaligned scan.
  SearchRequest request = Unranked("keyword", /*top_k=*/2);
  Result<SearchResponse> page = db.Search(request);
  ASSERT_TRUE(page.ok());
  ASSERT_FALSE(page->next_cursor.empty());
  Result<PageCursor> decoded = DecodeCursor(page->next_cursor);
  ASSERT_TRUE(decoded.ok());

  PageCursor forged = *decoded;
  forged.offset = UINT64_MAX - 1;
  request.cursor = EncodeCursor(forged);
  Result<SearchResponse> overflowed = db.Search(request);
  EXPECT_EQ(overflowed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(overflowed.status().message().find("page window overflows"),
            std::string::npos);

  // A top_k of SIZE_MAX cannot fit its look-ahead probe either.
  SearchRequest huge = Unranked("keyword", /*top_k=*/SIZE_MAX);
  Result<SearchResponse> rejected = db.Search(huge);
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rejected.status().message().find("page window overflows"),
            std::string::npos);
}

TEST(CursorTest, EncodeDecodeRoundTrip) {
  PageCursor cursor;
  cursor.offset = 12345;
  cursor.fingerprint = 0xdeadbeefcafef00dull;
  cursor.epoch = 42;
  Result<PageCursor> decoded = DecodeCursor(EncodeCursor(cursor));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->offset, cursor.offset);
  EXPECT_EQ(decoded->fingerprint, cursor.fingerprint);
  EXPECT_EQ(decoded->epoch, cursor.epoch);
}

TEST(CursorTest, AcceptsUppercaseAndMixedCaseHex) {
  // A cursor round-tripped through a case-normalizing client (HTTP header
  // canonicalization, copy-paste through a hex viewer) must still decode.
  PageCursor cursor;
  cursor.offset = 0xabc;
  cursor.fingerprint = 0xdeadbeefcafef00dull;
  cursor.epoch = 0x2f;
  std::string token = EncodeCursor(cursor);
  // Encode stays lowercase...
  EXPECT_EQ(token.find_first_of("ABCDEF"), std::string::npos);

  // ...but decode takes uppercase and mixed case.
  std::string upper = token;
  for (char& c : upper) c = static_cast<char>(std::toupper(c));
  upper.replace(0, 5, "xksc2");  // only the hex body is case-insensitive
  Result<PageCursor> from_upper = DecodeCursor(upper);
  ASSERT_TRUE(from_upper.ok()) << from_upper.status().ToString();
  EXPECT_EQ(from_upper->offset, cursor.offset);
  EXPECT_EQ(from_upper->fingerprint, cursor.fingerprint);
  EXPECT_EQ(from_upper->epoch, cursor.epoch);

  Result<PageCursor> mixed = DecodeCursor("xksc2:DeadBEEFcafeF00d:aBc:2F");
  ASSERT_TRUE(mixed.ok());
  EXPECT_EQ(mixed->offset, cursor.offset);
  EXPECT_EQ(mixed->fingerprint, cursor.fingerprint);
  EXPECT_EQ(mixed->epoch, cursor.epoch);
}

TEST(CursorTest, UppercasePrefixIsStillRejected) {
  // Only the hex segments are case-insensitive; the scheme tag is exact.
  EXPECT_FALSE(DecodeCursor("XKSC2:1:2:3").ok());
}

TEST(CursorTest, RejectsLegacyPreEpochScheme) {
  // xksc1 cursors predate epochs; they carry no epoch to validate against,
  // so they are rejected with a message telling the client to re-search.
  Result<PageCursor> legacy = DecodeCursor("xksc1:deadbeef:2");
  EXPECT_EQ(legacy.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(legacy.status().message().find("legacy"), std::string::npos);
}

TEST(CursorTest, RejectsMalformedTokens) {
  EXPECT_FALSE(DecodeCursor("").ok());
  EXPECT_FALSE(DecodeCursor("xksc2:").ok());          // empty all segments
  EXPECT_FALSE(DecodeCursor("xksc2:12").ok());        // no separator
  EXPECT_FALSE(DecodeCursor("xksc2:1:2").ok());       // missing epoch segment
  EXPECT_FALSE(DecodeCursor("xksc2:zz:1:1").ok());    // non-hex
  EXPECT_FALSE(DecodeCursor("xksc2:GG:1:1").ok());    // non-hex, uppercase
  EXPECT_FALSE(DecodeCursor("xksc2:1::1").ok());      // empty offset segment
  EXPECT_FALSE(DecodeCursor("xksc2::1:1").ok());      // empty fingerprint
  EXPECT_FALSE(DecodeCursor("xksc2:1:1:").ok());      // empty epoch segment
  EXPECT_FALSE(DecodeCursor("other:1:2:3").ok());
  // Overlong: 17 hex digits exceed 64 bits, lowercase or not.
  EXPECT_FALSE(DecodeCursor("xksc2:11111111111111111:2:1").ok());
  EXPECT_FALSE(DecodeCursor("xksc2:1:AAAAAAAAAAAAAAAAA:1").ok());
  EXPECT_FALSE(DecodeCursor("xksc2:1:2:11111111111111111").ok());
}

}  // namespace
}  // namespace xks
