// End-to-end reproduction of the paper's worked examples (Examples 1-7,
// Figures 2-4) on the reconstructed Figure 1 data.

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/core/maxmatch.h"
#include "src/core/metrics.h"
#include "src/core/validrtf.h"
#include "src/datagen/figure1.h"
#include "src/lca/elca.h"
#include "src/lca/slca.h"

namespace xks {
namespace {

std::vector<Dewey> Set(std::initializer_list<const char*> codes) {
  std::vector<Dewey> out;
  for (const char* c : codes) out.push_back(*Dewey::Parse(c));
  std::sort(out.begin(), out.end());
  return out;
}

class Figure1aTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    store_ = new ShreddedStore(ShreddedStore::Build(*Figure1aDocument()));
  }
  static void TearDownTestSuite() {
    delete store_;
    store_ = nullptr;
  }

  static SearchResult Run(const std::string& query_text,
                          const SearchOptions& options) {
    SearchEngine engine(store_);
    KeywordQuery query = *KeywordQuery::Parse(query_text);
    Result<SearchResult> result = engine.Search(query, options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  static ShreddedStore* store_;
};

ShreddedStore* Figure1aTest::store_ = nullptr;

// --- Example 6: getKeywordNodes for Q3 ---

TEST_F(Figure1aTest, Example6KeywordNodeSets) {
  EXPECT_EQ(store_->KeywordNodes("vldb"), Set({"0.0"}));
  EXPECT_EQ(store_->KeywordNodes("title"), Set({"0.0", "0.2.0.1", "0.2.1.1"}));
  const std::vector<Dewey> xks_nodes = Set({"0.2.0.1", "0.2.0.2", "0.2.0.3.0"});
  EXPECT_EQ(store_->KeywordNodes("xml"), xks_nodes);
  EXPECT_EQ(store_->KeywordNodes("keyword"), xks_nodes);
  EXPECT_EQ(store_->KeywordNodes("search"), xks_nodes);
}

TEST_F(Figure1aTest, Example3KeywordNodeSetsForQ2) {
  // D1 (liu) = {n, r}; D2 (keyword) = {t, r, a}.
  EXPECT_EQ(store_->KeywordNodes("liu"), Set({"0.2.0.0.0.0", "0.2.0.3.0"}));
  EXPECT_EQ(store_->KeywordNodes("keyword"),
            Set({"0.2.0.1", "0.2.0.2", "0.2.0.3.0"}));
}

// --- Example 6 / Example 1: getLCA ---

TEST_F(Figure1aTest, Example6Q3HasSingleLcaAtRoot) {
  SearchResult result = Run(PaperQuery(3), ValidRtfOptions());
  ASSERT_EQ(result.rtf_count(), 1u);
  EXPECT_EQ(result.fragments[0].rtf.root, Dewey::Root());
  EXPECT_TRUE(result.fragments[0].rtf.root_is_slca);
}

TEST_F(Figure1aTest, Example1Q2SlcaVersusElca) {
  // SLCA semantics returns only the ref node; ELCA also surfaces the outer
  // article — the paper's motivating example for going beyond SLCA.
  KeywordLists lists = {&store_->KeywordNodes("liu"),
                        &store_->KeywordNodes("keyword")};
  EXPECT_EQ(SlcaIndexedLookup(lists), Set({"0.2.0.3.0"}));
  EXPECT_EQ(ElcaIndexedStack(lists), Set({"0.2.0", "0.2.0.3.0"}));
}

TEST_F(Figure1aTest, Q1HasUniqueSlcaAtSecondArticle) {
  SearchResult result = Run(PaperQuery(1), ValidRtfOptions());
  ASSERT_EQ(result.rtf_count(), 1u);
  EXPECT_EQ(result.fragments[0].rtf.root, *Dewey::Parse("0.2.1"));
  EXPECT_TRUE(result.fragments[0].rtf.root_is_slca);
}

// --- Example 4: the two RTFs of Q2 ---

TEST_F(Figure1aTest, Example4Q2RtfPartitions) {
  SearchResult result = Run(PaperQuery(2), ValidRtfOptions());
  ASSERT_EQ(result.rtf_count(), 2u);
  // RTF {n, t, a} rooted at the article.
  const Rtf& article = result.fragments[0].rtf;
  EXPECT_EQ(article.root, *Dewey::Parse("0.2.0"));
  std::vector<Dewey> knodes;
  for (const RtfKeywordNode& kn : article.knodes) knodes.push_back(kn.dewey);
  EXPECT_EQ(knodes, Set({"0.2.0.0.0.0", "0.2.0.1", "0.2.0.2"}));
  EXPECT_FALSE(article.root_is_slca);
  // RTF {r} rooted at (and consisting of) the ref node.
  const Rtf& ref = result.fragments[1].rtf;
  EXPECT_EQ(ref.root, *Dewey::Parse("0.2.0.3.0"));
  ASSERT_EQ(ref.knodes.size(), 1u);
  EXPECT_EQ(ref.knodes[0].dewey, *Dewey::Parse("0.2.0.3.0"));
  EXPECT_EQ(ref.knodes[0].mask, 0b11u);  // matches both keywords
  EXPECT_TRUE(ref.root_is_slca);
}

// --- Example 7 / Figure 4: node structure key numbers for Q3 ---

TEST_F(Figure1aTest, Example7KeyNumbers) {
  SearchOptions options = ValidRtfOptions();
  options.keep_raw_fragments = true;
  SearchResult result = Run(PaperQuery(3), options);
  ASSERT_EQ(result.rtf_count(), 1u);
  const FragmentTree& raw = result.fragments[0].raw;
  const size_t k = 5;

  auto key_of = [&](const char* dewey_text) -> uint64_t {
    Dewey d = *Dewey::Parse(dewey_text);
    for (size_t i = 0; i < raw.size(); ++i) {
      const FragmentNode& n = raw.node(static_cast<FragmentNodeId>(i));
      if (n.dewey == d) return PaperKeyNumber(n.klist, k);
    }
    ADD_FAILURE() << "node " << dewey_text << " not in raw fragment";
    return 0;
  };

  // Figure 4(b)/(c): node 0.2 has kList [0 1 1 1 1] → 15; node 0.2.1 has
  // [0 1 0 0 0] → 8; node 0.0 carries VLDB+title → 24; the root → 31.
  EXPECT_EQ(key_of("0.2"), 15u);
  EXPECT_EQ(key_of("0.2.1"), 8u);
  EXPECT_EQ(key_of("0.2.0"), 15u);
  EXPECT_EQ(key_of("0.0"), 24u);
  EXPECT_EQ(key_of("0"), 31u);
}

// --- Figure 2(c)/(d): raw and meaningful RTF for Q3 ---

TEST_F(Figure1aTest, Q3RawRtfIsFigure2c) {
  SearchOptions options = ValidRtfOptions();
  options.keep_raw_fragments = true;
  SearchResult result = Run(PaperQuery(3), options);
  EXPECT_EQ(result.fragments[0].raw.NodeSet(),
            Set({"0", "0.0", "0.2", "0.2.0", "0.2.0.1", "0.2.0.2", "0.2.0.3",
                 "0.2.0.3.0", "0.2.1", "0.2.1.1"}));
}

TEST_F(Figure1aTest, Q3ValidRtfIsFigure2d) {
  // Example 7: the article 0.2.1 (key 8, covered by 15) is pruned; the
  // title/abstract/references children of 0.2.0 survive by rule 1.
  SearchResult result = Run(PaperQuery(3), ValidRtfOptions());
  EXPECT_EQ(result.fragments[0].fragment.NodeSet(),
            Set({"0", "0.0", "0.2", "0.2.0", "0.2.0.1", "0.2.0.2", "0.2.0.3",
                 "0.2.0.3.0"}));
}

TEST_F(Figure1aTest, Q3MaxMatchOverPrunes) {
  // The contributor discards abstract and references (their {xml, keyword,
  // search} is a strict subset of the title's {title, xml, keyword,
  // search}) — the false positive problem on Q3.
  SearchResult result = Run(PaperQuery(3), MaxMatchOptions());
  EXPECT_EQ(result.fragments[0].fragment.NodeSet(),
            Set({"0", "0.0", "0.2", "0.2.0", "0.2.0.1"}));
}

// --- Example 2 / Figure 3(b)(c): the false positive problem on Q1 ---

TEST_F(Figure1aTest, Q1ValidRtfKeepsTitleFigure3b) {
  SearchResult result = Run(PaperQuery(1), ValidRtfOptions());
  ASSERT_EQ(result.rtf_count(), 1u);
  EXPECT_EQ(result.fragments[0].fragment.NodeSet(),
            Set({"0.2.1", "0.2.1.0", "0.2.1.0.0", "0.2.1.0.0.0", "0.2.1.0.1",
                 "0.2.1.0.1.0", "0.2.1.1", "0.2.1.2"}));
}

TEST_F(Figure1aTest, Q1MaxMatchDiscardsTitleFigure3c) {
  SearchResult result = Run(PaperQuery(1), MaxMatchOptions());
  ASSERT_EQ(result.rtf_count(), 1u);
  EXPECT_EQ(result.fragments[0].fragment.NodeSet(),
            Set({"0.2.1", "0.2.1.0", "0.2.1.0.0", "0.2.1.0.0.0", "0.2.1.0.1",
                 "0.2.1.0.1.0", "0.2.1.2"}));
}

// --- Figure 2(a): original (SLCA) MaxMatch only sees the ref fragment ---

TEST_F(Figure1aTest, Q2OriginalMaxMatchReturnsOnlySlcaFragment) {
  SearchResult result = Run(PaperQuery(2), MaxMatchOriginalOptions());
  ASSERT_EQ(result.rtf_count(), 1u);
  EXPECT_EQ(result.fragments[0].rtf.root, *Dewey::Parse("0.2.0.3.0"));
  EXPECT_EQ(result.fragments[0].fragment.NodeSet(), Set({"0.2.0.3.0"}));
}

// --- Pruning statistics across the pipeline ---

TEST_F(Figure1aTest, Q3PruningStats) {
  SearchResult valid = Run(PaperQuery(3), ValidRtfOptions());
  // Raw Figure 2(c) has 10 nodes; the meaningful RTF (Figure 2(d)) keeps 8.
  EXPECT_EQ(valid.pruning.raw_nodes, 10u);
  EXPECT_EQ(valid.pruning.kept_nodes, 8u);
  EXPECT_EQ(valid.pruning.pruned_nodes(), 2u);
  SearchResult max = Run(PaperQuery(3), MaxMatchOptions());
  EXPECT_EQ(max.pruning.kept_nodes, 5u);
  EXPECT_GT(max.pruning.pruning_ratio(), valid.pruning.pruning_ratio());
}

// --- Label-constrained query terms (XSearch-style extension) ---

TEST_F(Figure1aTest, LabelConstrainedKeywordNarrowsToTitles) {
  // Unconstrained "keyword" matches title, abstract and ref of the first
  // article; "title:keyword" leaves only the title node.
  EXPECT_EQ(store_->KeywordNodes("keyword").size(), 3u);
  PostingList constrained = store_->KeywordNodesWithLabel("keyword", "title");
  ASSERT_EQ(constrained.size(), 1u);
  EXPECT_EQ(constrained[0], *Dewey::Parse("0.2.0.1"));
  // End to end: "liu title:keyword" keeps only the article RTF (the ref no
  // longer matches the second keyword).
  SearchResult result = Run("liu title:keyword", ValidRtfOptions());
  ASSERT_EQ(result.rtf_count(), 1u);
  EXPECT_EQ(result.fragments[0].rtf.root, *Dewey::Parse("0.2.0"));
}

// --- Q2: both mechanisms agree (all labels distinct) ---

TEST_F(Figure1aTest, Q2BothMechanismsAgree) {
  SearchResult valid = Run(PaperQuery(2), ValidRtfOptions());
  SearchResult max = Run(PaperQuery(2), MaxMatchOptions());
  Result<QueryEffectiveness> eff = CompareEffectiveness(valid, max);
  ASSERT_TRUE(eff.ok());
  EXPECT_DOUBLE_EQ(eff->cfr(), 1.0);
  EXPECT_DOUBLE_EQ(eff->apr(), 0.0);
}

class Figure1bTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    store_ = new ShreddedStore(ShreddedStore::Build(*Figure1bDocument()));
  }
  static void TearDownTestSuite() {
    delete store_;
    store_ = nullptr;
  }

  static SearchResult Run(const std::string& query_text,
                          const SearchOptions& options) {
    SearchEngine engine(store_);
    KeywordQuery query = *KeywordQuery::Parse(query_text);
    Result<SearchResult> result = engine.Search(query, options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  static ShreddedStore* store_;
};

ShreddedStore* Figure1bTest::store_ = nullptr;

// --- Example 2 / Figure 3(d): the redundancy problem on Q4 ---

TEST_F(Figure1bTest, Q4MaxMatchKeepsDuplicateForwardFigure3d) {
  SearchResult result = Run(PaperQuery(4), MaxMatchOptions());
  ASSERT_EQ(result.rtf_count(), 1u);
  EXPECT_EQ(result.fragments[0].fragment.NodeSet(),
            Set({"0", "0.0", "0.1", "0.1.0", "0.1.0.2", "0.1.1", "0.1.1.2",
                 "0.1.2", "0.1.2.2"}));
}

TEST_F(Figure1bTest, Q4ValidRtfDropsDuplicateForward) {
  // Example 5: TC(0.1.0) = TC(0.1.2) = {position, forward} → the second
  // forward player is discarded; the result keeps {forward, guard}.
  SearchResult result = Run(PaperQuery(4), ValidRtfOptions());
  ASSERT_EQ(result.rtf_count(), 1u);
  EXPECT_EQ(result.fragments[0].fragment.NodeSet(),
            Set({"0", "0.0", "0.1", "0.1.0", "0.1.0.2", "0.1.1", "0.1.1.2"}));
}

TEST_F(Figure1bTest, Q4TreeContentSetsMatchExample5) {
  SearchOptions options = ValidRtfOptions();
  options.keep_raw_fragments = true;
  SearchResult result = Run(PaperQuery(4), options);
  const FragmentTree& raw = result.fragments[0].raw;
  auto cid_of = [&](const char* dewey_text) -> ContentId {
    Dewey d = *Dewey::Parse(dewey_text);
    for (size_t i = 0; i < raw.size(); ++i) {
      const FragmentNode& n = raw.node(static_cast<FragmentNodeId>(i));
      if (n.dewey == d) return n.cid;
    }
    ADD_FAILURE() << dewey_text << " missing";
    return {};
  };
  // TC(player) = content of its position keyword node only.
  EXPECT_EQ(cid_of("0.1.0"), (ContentId{"forward", "position"}));
  EXPECT_EQ(cid_of("0.1.1"), (ContentId{"guard", "position"}));
  EXPECT_EQ(cid_of("0.1.2"), (ContentId{"forward", "position"}));
}

TEST_F(Figure1bTest, Q4EffectivenessMetrics) {
  SearchResult valid = Run(PaperQuery(4), ValidRtfOptions());
  SearchResult max = Run(PaperQuery(4), MaxMatchOptions());
  Result<QueryEffectiveness> eff = CompareEffectiveness(valid, max);
  ASSERT_TRUE(eff.ok());
  EXPECT_DOUBLE_EQ(eff->cfr(), 0.0);            // the single RTF differs
  EXPECT_NEAR(eff->apr(), 2.0 / 9.0, 1e-12);    // 2 of 9 nodes pruned away
  EXPECT_NEAR(eff->max_apr(), 2.0 / 9.0, 1e-12);
  EXPECT_DOUBLE_EQ(eff->apr_prime(), 0.0);      // only one differing RTF
}

// --- Example 2/5 positive case: Q5 ---

TEST_F(Figure1bTest, Q5BothMechanismsReturnGassolFigure3a) {
  // dMatch(0.1.0) = {gassol, position} strictly covers the other players'
  // {position} → both mechanisms keep only the Gassol player, plus the team
  // name matching "grizzlies".
  const std::vector<Dewey> expected =
      Set({"0", "0.0", "0.1", "0.1.0", "0.1.0.0", "0.1.0.2"});
  SearchResult valid = Run(PaperQuery(5), ValidRtfOptions());
  ASSERT_EQ(valid.rtf_count(), 1u);
  EXPECT_EQ(valid.fragments[0].fragment.NodeSet(), expected);
  SearchResult max = Run(PaperQuery(5), MaxMatchOptions());
  EXPECT_EQ(max.fragments[0].fragment.NodeSet(), expected);
  Result<QueryEffectiveness> eff = CompareEffectiveness(valid, max);
  ASSERT_TRUE(eff.ok());
  EXPECT_DOUBLE_EQ(eff->cfr(), 1.0);
}

TEST_F(Figure1bTest, Q5SingleElcaAtRoot) {
  SearchResult result = Run(PaperQuery(5), ValidRtfOptions());
  ASSERT_EQ(result.rtf_count(), 1u);
  EXPECT_EQ(result.fragments[0].rtf.root, Dewey::Root());
}

}  // namespace
}  // namespace xks
