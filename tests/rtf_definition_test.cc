// Section 4.3 claim (1): the getRTF pipeline output coincides with the
// Definition-1/2 RTFs. Checked on the paper's own Example 3/4 and on
// randomized small instances against the exhaustive enumerator.

#include <gtest/gtest.h>

#include "src/core/rtf.h"
#include "src/datagen/figure1.h"
#include "src/lca/elca.h"
#include "src/storage/store.h"
#include "tests/test_util.h"

namespace xks {
namespace {

PostingList MakeList(std::initializer_list<std::initializer_list<uint32_t>> codes) {
  PostingList list;
  for (auto code : codes) list.emplace_back(std::vector<uint32_t>(code));
  return list;
}

/// Normalized (root, keyword-node set) pairs for comparison.
std::vector<std::pair<Dewey, std::vector<Dewey>>> Normalize(
    const std::vector<Rtf>& rtfs) {
  std::vector<std::pair<Dewey, std::vector<Dewey>>> out;
  for (const Rtf& rtf : rtfs) {
    std::vector<Dewey> knodes;
    for (const RtfKeywordNode& kn : rtf.knodes) knodes.push_back(kn.dewey);
    std::sort(knodes.begin(), knodes.end());
    out.emplace_back(rtf.root, std::move(knodes));
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(RtfDefinitionTest, Example3CountsElevenCombinations) {
  ShreddedStore store = ShreddedStore::Build(*Figure1aDocument());
  KeywordLists lists = {&store.KeywordNodes("liu"), &store.KeywordNodes("keyword")};
  Result<EctEnumeration> enumeration = RtfsByDefinition(lists);
  ASSERT_TRUE(enumeration.ok()) << enumeration.status().ToString();
  // |V1| = 3, |V2| = 7, but D1 ∩ D2 = {r} collapses the raw 21 products to
  // 11 distinct combinations (Example 3).
  EXPECT_EQ(enumeration->partition_count, 11u);
}

TEST(RtfDefinitionTest, Example4QualifyingPartitions) {
  ShreddedStore store = ShreddedStore::Build(*Figure1aDocument());
  KeywordLists lists = {&store.KeywordNodes("liu"), &store.KeywordNodes("keyword")};
  Result<EctEnumeration> enumeration = RtfsByDefinition(lists);
  ASSERT_TRUE(enumeration.ok());
  auto norm = Normalize(enumeration->rtfs);
  ASSERT_EQ(norm.size(), 2u);
  // {n, t, a} at the article.
  EXPECT_EQ(norm[0].first, *Dewey::Parse("0.2.0"));
  EXPECT_EQ(norm[0].second,
            (std::vector<Dewey>{*Dewey::Parse("0.2.0.0.0.0"),
                                *Dewey::Parse("0.2.0.1"),
                                *Dewey::Parse("0.2.0.2")}));
  // {r} at the ref node.
  EXPECT_EQ(norm[1].first, *Dewey::Parse("0.2.0.3.0"));
  EXPECT_EQ(norm[1].second, (std::vector<Dewey>{*Dewey::Parse("0.2.0.3.0")}));
}

TEST(RtfDefinitionTest, Example4AgreesWithPipeline) {
  ShreddedStore store = ShreddedStore::Build(*Figure1aDocument());
  KeywordLists lists = {&store.KeywordNodes("liu"), &store.KeywordNodes("keyword")};
  Result<EctEnumeration> enumeration = RtfsByDefinition(lists);
  ASSERT_TRUE(enumeration.ok());
  std::vector<Rtf> pipeline = GetRtfs(ElcaIndexedStack(lists), lists);
  EXPECT_EQ(Normalize(enumeration->rtfs), Normalize(pipeline));
}

TEST(RtfDefinitionTest, SingleKeywordEveryNodeItsOwnPartition) {
  PostingList w1 = MakeList({{0, 1}, {0, 2}});
  Result<EctEnumeration> enumeration = RtfsByDefinition({&w1});
  ASSERT_TRUE(enumeration.ok());
  EXPECT_EQ(enumeration->partition_count, 3u);  // {a}, {b}, {a,b}
  auto norm = Normalize(enumeration->rtfs);
  ASSERT_EQ(norm.size(), 2u);
  EXPECT_EQ(norm[0].first, (Dewey{0, 1}));
  EXPECT_EQ(norm[1].first, (Dewey{0, 2}));
}

TEST(RtfDefinitionTest, EmptyListShortCircuits) {
  PostingList w1 = MakeList({{0, 1}});
  PostingList empty;
  Result<EctEnumeration> enumeration = RtfsByDefinition({&w1, &empty});
  ASSERT_TRUE(enumeration.ok());
  EXPECT_EQ(enumeration->partition_count, 0u);
  EXPECT_TRUE(enumeration->rtfs.empty());
}

TEST(RtfDefinitionTest, CombinationCapEnforced) {
  PostingList big;
  for (uint32_t i = 0; i < 15; ++i) big.push_back(Dewey{0, i});
  Result<EctEnumeration> r = RtfsByDefinition({&big, &big}, /*max_combinations=*/100);
  EXPECT_FALSE(r.ok());
}

TEST(RtfDefinitionTest, CrossChildLeftoverScenario) {
  // The scenario from DESIGN.md's interpretive note: an all-keyword child u
  // with an inner ELCA e and a leftover witness z outside e. getRTF assigns
  // z to the outer ELCA a; the claimed-aware Definition-2 reading agrees.
  //   a=0: x=0.0 (w1), y=0.1 (w2), u=0.2 with z=0.2.0 (w1) and
  //   e=0.2.1 holding p=0.2.1.0 (w1), q=0.2.1.1 (w2).
  PostingList w1 = MakeList({{0, 0}, {0, 2, 0}, {0, 2, 1, 0}});
  PostingList w2 = MakeList({{0, 1}, {0, 2, 1, 1}});
  KeywordLists lists = {&w1, &w2};
  std::vector<Dewey> elcas = ElcaBruteForce(lists);
  EXPECT_EQ(elcas, (std::vector<Dewey>{Dewey{0}, Dewey{0, 2, 1}}));
  Result<EctEnumeration> enumeration = RtfsByDefinition(lists);
  ASSERT_TRUE(enumeration.ok());
  EXPECT_EQ(Normalize(enumeration->rtfs),
            Normalize(GetRtfs(elcas, lists)));
}

struct RandomCase {
  uint64_t seed;
  size_t tree_size;
  size_t k;
  double density;
};

class RtfDefinitionEquivalenceTest : public ::testing::TestWithParam<RandomCase> {};

// The sound relationships documented in rtf.h. Definition 2 and Algorithm 1
// are not exactly equivalent (the paper's claim (1) fails on corner cases
// where a keyword's entire support inside a partition lies within excluded
// contains-all subtrees), so the test asserts the relations that do hold and
// requires exact agreement whenever the definitional roots are the ELCAs.
TEST_P(RtfDefinitionEquivalenceTest, DefinitionSoundnessVersusPipeline) {
  const RandomCase& c = GetParam();
  RandomLcaInstance instance =
      MakeRandomLcaInstance(c.seed, c.tree_size, c.k, c.density);
  KeywordLists lists = instance.Views();
  // Keep the enumeration tractable: skip instances with large lists.
  for (const PostingList* list : lists) {
    if (list->size() > 6) GTEST_SKIP() << "instance too large for enumeration";
  }
  Result<EctEnumeration> enumeration = RtfsByDefinition(lists);
  ASSERT_TRUE(enumeration.ok()) << enumeration.status().ToString();

  std::vector<Dewey> elcas = ElcaBruteForce(lists);
  std::vector<Rtf> pipeline = GetRtfs(elcas, lists);
  std::vector<Dewey> full_lcas = FullLcaBruteForce(lists);

  std::vector<Dewey> def_roots;
  for (const Rtf& rtf : enumeration->rtfs) def_roots.push_back(rtf.root);
  std::sort(def_roots.begin(), def_roots.end());

  // Every ELCA is a definitional root.
  for (const Dewey& e : elcas) {
    EXPECT_TRUE(std::binary_search(def_roots.begin(), def_roots.end(), e))
        << "seed=" << c.seed << " missing ELCA " << e.ToString();
  }
  // Every definitional root is a full LCA (cond 1 with singleton subsets
  // yields the witness tuple).
  for (const Dewey& r : def_roots) {
    EXPECT_TRUE(std::binary_search(full_lcas.begin(), full_lcas.end(), r))
        << "seed=" << c.seed << " root " << r.ToString() << " not a full LCA";
  }
  // Exact agreement when no extra roots were admitted.
  if (def_roots == elcas) {
    EXPECT_EQ(Normalize(enumeration->rtfs), Normalize(pipeline))
        << "seed=" << c.seed;
  }
}

TEST(RtfDefinitionStressTest, SoundnessAcrossManySeeds) {
  size_t evaluated = 0;
  size_t exact_agreement = 0;
  for (uint64_t seed = 700; seed < 780; ++seed) {
    RandomLcaInstance instance = MakeRandomLcaInstance(
        seed, /*tree_size=*/10 + seed % 20, /*k=*/2 + seed % 3,
        /*density=*/0.08 + 0.02 * static_cast<double>(seed % 8));
    KeywordLists lists = instance.Views();
    bool too_large = false;
    for (const PostingList* list : lists) too_large |= list->size() > 6;
    if (too_large) continue;
    Result<EctEnumeration> enumeration = RtfsByDefinition(lists);
    if (!enumeration.ok()) continue;
    ++evaluated;
    std::vector<Dewey> elcas = ElcaBruteForce(lists);
    std::vector<Dewey> def_roots;
    for (const Rtf& rtf : enumeration->rtfs) def_roots.push_back(rtf.root);
    std::sort(def_roots.begin(), def_roots.end());
    for (const Dewey& e : elcas) {
      ASSERT_TRUE(std::binary_search(def_roots.begin(), def_roots.end(), e))
          << "seed=" << seed;
    }
    if (def_roots == elcas) {
      ++exact_agreement;
      ASSERT_EQ(Normalize(enumeration->rtfs),
                Normalize(GetRtfs(elcas, lists)))
          << "seed=" << seed;
    }
  }
  // The definitional and operational semantics agree on the typical case.
  ASSERT_GE(evaluated, 30u);
  EXPECT_GE(exact_agreement * 10, evaluated * 8);  // ≥80% exact agreement
}

INSTANTIATE_TEST_SUITE_P(
    RandomSweep, RtfDefinitionEquivalenceTest,
    ::testing::Values(RandomCase{601, 12, 2, 0.2}, RandomCase{602, 12, 2, 0.3},
                      RandomCase{603, 15, 2, 0.2}, RandomCase{604, 15, 3, 0.15},
                      RandomCase{605, 18, 2, 0.15}, RandomCase{606, 18, 3, 0.1},
                      RandomCase{607, 20, 2, 0.1}, RandomCase{608, 20, 3, 0.12},
                      RandomCase{609, 25, 2, 0.1}, RandomCase{610, 25, 3, 0.08},
                      RandomCase{611, 14, 4, 0.15}, RandomCase{612, 16, 4, 0.1},
                      RandomCase{613, 22, 2, 0.2}, RandomCase{614, 10, 3, 0.3},
                      RandomCase{615, 30, 2, 0.08}, RandomCase{616, 30, 3, 0.06}),
    [](const ::testing::TestParamInfo<RandomCase>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace xks
