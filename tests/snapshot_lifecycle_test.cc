// Snapshot-based corpus lifecycle: incremental AddDocument / RemoveDocument /
// ReplaceDocument after Build(), epoch-tagged cursors (FailedPrecondition on
// post-mutation replay), pinned-snapshot isolation, Save/Load round trips
// after mutations (XKS3 tombstones + epoch/revision), and concurrent
// Search-while-mutate hammering (the TSan certificate for the
// publish-and-swap design).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/cursor.h"
#include "src/api/database.h"
#include "src/common/string_util.h"

namespace xks {
namespace {

SearchRequest Unranked(const std::string& query, size_t top_k = 0) {
  SearchRequest request;
  request.query = query;
  request.top_k = top_k;
  request.rank = false;
  return request;
}

/// Four small documents; every title matches "keyword".
Database MakeCorpus() {
  Database db;
  EXPECT_TRUE(db.AddDocumentXml(
                    "a", "<lib><book><title>xml keyword search</title></book>"
                         "<book><title>keyword proximity</title></book></lib>")
                  .ok());
  EXPECT_TRUE(db.AddDocumentXml(
                    "b", "<lib><paper><title>keyword ranking</title></paper></lib>")
                  .ok());
  EXPECT_TRUE(db.AddDocumentXml(
                    "c", "<lib><paper><title>skyline keyword query</title>"
                         "</paper></lib>")
                  .ok());
  EXPECT_TRUE(db.AddDocumentXml(
                    "d", "<lib><book><title>fragment keyword pruning</title>"
                         "</book></lib>")
                  .ok());
  EXPECT_TRUE(db.Build().ok());
  return db;
}

std::vector<std::string> HitDocNames(const SearchResponse& response) {
  std::vector<std::string> names;
  for (const Hit& hit : response.hits) names.push_back(hit.document_name);
  return names;
}

TEST(SnapshotLifecycleTest, AddAfterBuildIsSearchableImmediately) {
  Database db = MakeCorpus();
  EXPECT_EQ(db.epoch(), 1u);
  Result<DocumentId> added = db.AddDocumentXml(
      "e", "<lib><book><title>incremental keyword add</title></book></lib>");
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(*added, 4u);
  EXPECT_TRUE(db.built());
  EXPECT_EQ(db.epoch(), 2u);
  EXPECT_EQ(db.document_count(), 5u);

  Result<SearchResponse> response = db.Search(Unranked("keyword"));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->epoch, 2u);
  std::vector<std::string> names = HitDocNames(*response);
  EXPECT_NE(std::find(names.begin(), names.end(), "e"), names.end());
}

TEST(SnapshotLifecycleTest, RemoveHidesHitsAndTombstonesTheId) {
  Database db = MakeCorpus();
  DocumentId b = *db.FindDocument("b");
  ASSERT_TRUE(db.RemoveDocument(b).ok());
  EXPECT_EQ(db.epoch(), 2u);
  EXPECT_EQ(db.document_count(), 3u);

  // The removed document's hits are gone; the survivors keep their ids.
  Result<SearchResponse> response = db.Search(Unranked("keyword"));
  ASSERT_TRUE(response.ok());
  std::vector<std::string> names = HitDocNames(*response);
  EXPECT_EQ(std::find(names.begin(), names.end(), "b"), names.end());
  EXPECT_EQ(*db.FindDocument("c"), 2u);
  EXPECT_EQ(*db.FindDocument("d"), 3u);

  // The id is tombstoned, not recycled: a new document gets a fresh id even
  // though it reuses the freed name.
  Result<DocumentId> reborn =
      db.AddDocumentXml("b", "<lib><t>keyword reborn</t></lib>");
  ASSERT_TRUE(reborn.ok());
  EXPECT_EQ(*reborn, 4u);

  // Removing twice (or removing an unknown name) fails cleanly.
  EXPECT_EQ(db.RemoveDocument(b).code(), StatusCode::kNotFound);
  EXPECT_EQ(db.RemoveDocument("nope").code(), StatusCode::kNotFound);
}

TEST(SnapshotLifecycleTest, ReplaceKeepsIdAndName) {
  Database db = MakeCorpus();
  DocumentId c = *db.FindDocument("c");
  Result<DocumentId> replaced = db.ReplaceDocumentXml(
      "c", "<lib><paper><title>replacement keyword content</title></paper>"
           "</lib>");
  ASSERT_TRUE(replaced.ok());
  EXPECT_EQ(*replaced, c);
  EXPECT_EQ(db.epoch(), 2u);
  EXPECT_EQ(db.document_count(), 4u);
  EXPECT_EQ(*db.FindDocument("c"), c);

  // Old content is gone, new content is live.
  EXPECT_EQ(db.WordFrequency("skyline"), 0u);
  EXPECT_EQ(db.WordFrequency("replacement"), 1u);
  Result<SearchResponse> response = db.Search(Unranked("replacement"));
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->hits.size(), 1u);
  EXPECT_EQ(response->hits[0].document, c);

  EXPECT_EQ(db.ReplaceDocumentXml("ghost", "<r>x</r>").status().code(),
            StatusCode::kNotFound);
}

TEST(SnapshotLifecycleTest, IncrementalStatsMatchAFreshBuild) {
  // Drive the catalog through adds, removes and replaces, then rebuild the
  // same final corpus from scratch: every corpus aggregate must agree —
  // the merge/unmerge arithmetic cannot drift from the one-shot Build().
  Database db = MakeCorpus();
  ASSERT_TRUE(db.AddDocumentXml(
                    "e", "<lib><deep><deeper><deepest><t>rare keyword</t>"
                         "</deepest></deeper></deep></lib>")
                  .ok());
  ASSERT_TRUE(db.RemoveDocument("a").ok());
  ASSERT_TRUE(db
                  .ReplaceDocumentXml(
                      "b", "<lib><paper><title>rewritten keyword set</title>"
                           "</paper></lib>")
                  .ok());
  ASSERT_TRUE(db.RemoveDocument("e").ok());  // the deep doc leaves again

  Database fresh;
  ASSERT_TRUE(fresh
                  .AddDocumentXml(
                      "b", "<lib><paper><title>rewritten keyword set</title>"
                           "</paper></lib>")
                  .ok());
  ASSERT_TRUE(fresh.AddDocumentXml(
                       "c", "<lib><paper><title>skyline keyword query</title>"
                            "</paper></lib>")
                  .ok());
  ASSERT_TRUE(fresh.AddDocumentXml(
                       "d", "<lib><book><title>fragment keyword pruning</title>"
                            "</book></lib>")
                  .ok());
  ASSERT_TRUE(fresh.Build().ok());

  EXPECT_EQ(db.document_count(), fresh.document_count());
  EXPECT_EQ(db.vocabulary_size(), fresh.vocabulary_size());
  EXPECT_EQ(db.total_postings(), fresh.total_postings());
  EXPECT_EQ(db.corpus_max_depth(), fresh.corpus_max_depth());
  for (const char* word : {"keyword", "skyline", "rewritten", "rare", "xml",
                           "proximity", "fragment"}) {
    EXPECT_EQ(db.WordFrequency(word), fresh.WordFrequency(word)) << word;
  }

  // And the removed deep document's depth no longer dominates the census.
  EXPECT_LT(db.corpus_max_depth(), 5u);
}

TEST(SnapshotLifecycleTest, StaleCursorFailsWithFailedPrecondition) {
  Database db = MakeCorpus();
  Result<SearchResponse> page = db.Search(Unranked("keyword", /*top_k=*/2));
  ASSERT_TRUE(page.ok());
  ASSERT_FALSE(page->next_cursor.empty());
  EXPECT_EQ(page->epoch, 1u);

  // Mutate: the catalog moves to epoch 2, the cursor was minted at epoch 1.
  ASSERT_TRUE(db.RemoveDocument("d").ok());
  SearchRequest replay = Unranked("keyword", /*top_k=*/2);
  replay.cursor = page->next_cursor;
  Result<SearchResponse> stale = db.Search(replay);
  EXPECT_EQ(stale.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(stale.status().message().find("corpus changed"), std::string::npos);

  // A fresh first page works fine and mints an epoch-2 cursor.
  Result<SearchResponse> restarted = db.Search(Unranked("keyword", /*top_k=*/2));
  ASSERT_TRUE(restarted.ok());
  EXPECT_EQ(restarted->epoch, 2u);
}

TEST(SnapshotLifecycleTest, EveryMutationKindInvalidatesCursors) {
  for (int kind = 0; kind < 3; ++kind) {
    Database db = MakeCorpus();
    Result<SearchResponse> page = db.Search(Unranked("keyword", /*top_k=*/2));
    ASSERT_TRUE(page.ok());
    ASSERT_FALSE(page->next_cursor.empty());
    switch (kind) {
      case 0:
        ASSERT_TRUE(db.AddDocumentXml("x", "<r>keyword</r>").ok());
        break;
      case 1:
        ASSERT_TRUE(db.RemoveDocument("a").ok());
        break;
      case 2:
        ASSERT_TRUE(db.ReplaceDocumentXml("a", "<r>keyword</r>").ok());
        break;
    }
    SearchRequest replay = Unranked("keyword", /*top_k=*/2);
    replay.cursor = page->next_cursor;
    EXPECT_EQ(db.Search(replay).status().code(),
              StatusCode::kFailedPrecondition)
        << "mutation kind " << kind;
  }
}

TEST(SnapshotLifecycleTest, PinnedSnapshotOutlivesMutations) {
  Database db = MakeCorpus();
  std::shared_ptr<const Snapshot> pinned = db.snapshot();
  ASSERT_NE(pinned, nullptr);
  EXPECT_EQ(pinned->epoch(), 1u);

  Result<SearchResponse> before = pinned->Search(Unranked("keyword"));
  ASSERT_TRUE(before.ok());

  // Mutate the catalog heavily; the pinned view must not move.
  ASSERT_TRUE(db.RemoveDocument("a").ok());
  ASSERT_TRUE(db.ReplaceDocumentXml("b", "<r>other words</r>").ok());
  ASSERT_TRUE(db.AddDocumentXml("z", "<r>keyword keyword</r>").ok());
  EXPECT_EQ(db.epoch(), 4u);

  EXPECT_EQ(pinned->epoch(), 1u);
  EXPECT_EQ(pinned->document_count(), 4u);
  Result<SearchResponse> after = pinned->Search(Unranked("keyword"));
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->hits.size(), before->hits.size());
  for (size_t i = 0; i < after->hits.size(); ++i) {
    EXPECT_EQ(after->hits[i].document, before->hits[i].document);
    EXPECT_EQ(after->hits[i].fragment.NodeSet(),
              before->hits[i].fragment.NodeSet());
  }

  // Cursors minted from the pinned snapshot keep paginating against it —
  // even though the catalog has long moved on.
  Result<SearchResponse> page = pinned->Search(Unranked("keyword", /*top_k=*/1));
  ASSERT_TRUE(page.ok());
  ASSERT_FALSE(page->next_cursor.empty());
  SearchRequest next = Unranked("keyword", /*top_k=*/1);
  next.cursor = page->next_cursor;
  EXPECT_TRUE(pinned->Search(next).ok());
  EXPECT_EQ(db.Search(next).status().code(), StatusCode::kFailedPrecondition);
}

TEST(SnapshotLifecycleTest, SaveLoadAfterMutationsPreservesIdsEpochAndPages) {
  Database db = MakeCorpus();
  ASSERT_TRUE(db.RemoveDocument("b").ok());
  ASSERT_TRUE(db
                  .ReplaceDocumentXml(
                      "c", "<lib><paper><title>replaced keyword body</title>"
                           "</paper></lib>")
                  .ok());
  ASSERT_TRUE(db.AddDocumentXml("e", "<lib><t>keyword tail</t></lib>").ok());
  EXPECT_EQ(db.epoch(), 4u);

  // Mint a cursor before the round trip.
  Result<SearchResponse> page = db.Search(Unranked("keyword", /*top_k=*/2));
  ASSERT_TRUE(page.ok());
  ASSERT_FALSE(page->next_cursor.empty());

  std::string path = ::testing::TempDir() + "/xks_snapshot_lifecycle.db";
  ASSERT_TRUE(db.Save(path).ok());
  Result<Database> loaded = Database::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::remove(path.c_str());

  // Epoch, live set and surviving ids all round-trip; the tombstoned id
  // stays dead.
  EXPECT_EQ(loaded->epoch(), 4u);
  EXPECT_EQ(loaded->document_count(), 4u);
  EXPECT_EQ(*loaded->FindDocument("a"), *db.FindDocument("a"));
  EXPECT_EQ(*loaded->FindDocument("c"), *db.FindDocument("c"));
  EXPECT_EQ(*loaded->FindDocument("d"), *db.FindDocument("d"));
  EXPECT_EQ(*loaded->FindDocument("e"), *db.FindDocument("e"));
  EXPECT_EQ(loaded->document_name(1).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(loaded->WordFrequency("keyword"), db.WordFrequency("keyword"));

  // Byte-identical responses, including the cursor chain: a cursor minted
  // before Save keeps working after Load (same epoch, same revision).
  Result<SearchResponse> reloaded_page =
      loaded->Search(Unranked("keyword", /*top_k=*/2));
  ASSERT_TRUE(reloaded_page.ok());
  EXPECT_EQ(reloaded_page->next_cursor, page->next_cursor);
  EXPECT_EQ(reloaded_page->total_hits, page->total_hits);
  ASSERT_EQ(reloaded_page->hits.size(), page->hits.size());
  for (size_t i = 0; i < page->hits.size(); ++i) {
    EXPECT_EQ(reloaded_page->hits[i].document, page->hits[i].document);
    EXPECT_EQ(reloaded_page->hits[i].document_name,
              page->hits[i].document_name);
    EXPECT_EQ(reloaded_page->hits[i].snippet, page->hits[i].snippet);
    EXPECT_EQ(reloaded_page->hits[i].fragment.NodeSet(),
              page->hits[i].fragment.NodeSet());
  }
  SearchRequest continued = Unranked("keyword", /*top_k=*/2);
  continued.cursor = page->next_cursor;
  Result<SearchResponse> second = loaded->Search(continued);
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  // A post-load mutation still epoch-bumps from the restored epoch.
  ASSERT_TRUE(loaded->RemoveDocument("e").ok());
  EXPECT_EQ(loaded->epoch(), 5u);
}

TEST(SnapshotLifecycleTest, EncodeDecodePreservesTombstonesInMemory) {
  Database db = MakeCorpus();
  ASSERT_TRUE(db.RemoveDocument("a").ok());
  std::string buffer;
  db.EncodeTo(&buffer);
  // Corrupted prefixes fail cleanly, never crash.
  for (size_t cut = 0; cut < buffer.size(); cut += 7) {
    EXPECT_FALSE(Database::DecodeFrom(buffer.substr(0, cut)).ok())
        << "cut=" << cut;
  }
  Result<Database> decoded = Database::DecodeFrom(buffer);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->document_count(), 3u);
  EXPECT_EQ(decoded->document_name(0).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(*decoded->document_name(1), "b");
}

TEST(SnapshotLifecycleTest, RemovalToEmptyCorpusStaysServable) {
  Database db;
  ASSERT_TRUE(db.AddDocumentXml("only", "<r>keyword</r>").ok());
  ASSERT_TRUE(db.Build().ok());
  ASSERT_TRUE(db.RemoveDocument("only").ok());
  EXPECT_EQ(db.document_count(), 0u);
  EXPECT_TRUE(db.built());
  Result<SearchResponse> response = db.Search(Unranked("keyword"));
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->hits.empty());
  EXPECT_EQ(response->total_hits, 0u);
  EXPECT_TRUE(response->total_is_exact);

  // The all-tombstone corpus round-trips: it loads back built, at the same
  // epoch, still serving empty pages.
  std::string buffer;
  db.EncodeTo(&buffer);
  Result<Database> loaded = Database::DecodeFrom(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->built());
  EXPECT_EQ(loaded->epoch(), db.epoch());
  EXPECT_EQ(loaded->document_count(), 0u);
  Result<SearchResponse> reloaded = loaded->Search(Unranked("keyword"));
  ASSERT_TRUE(reloaded.ok());
  EXPECT_TRUE(reloaded->hits.empty());
}

TEST(SnapshotLifecycleTest, ConcurrentSearchAndMutateIsSafe) {
  // The Search-while-mutate hammer: reader threads page through the corpus
  // while the main thread adds, replaces and removes documents. Every
  // response must be internally consistent (a page of some published
  // snapshot); cursor replays may fail, but only with the two sanctioned
  // rejections. Under TSan this is the no-data-races certificate for the
  // snapshot publish-and-swap.
  Database db = MakeCorpus();
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&db, &stop, &violations] {
      while (!stop.load(std::memory_order_relaxed)) {
        // One-shot searches against the live catalog.
        SearchRequest request = Unranked("keyword", /*top_k=*/2);
        request.max_parallelism = 2;
        Result<SearchResponse> page = db.Search(request);
        if (!page.ok()) {
          violations.fetch_add(1);
          continue;
        }
        // Replaying the cursor races with the mutator: success and
        // FailedPrecondition are both legal, anything else is a bug.
        if (!page->next_cursor.empty()) {
          SearchRequest next = request;
          next.cursor = page->next_cursor;
          Result<SearchResponse> replay = db.Search(next);
          if (!replay.ok() && replay.status().code() !=
                                  StatusCode::kFailedPrecondition) {
            violations.fetch_add(1);
          }
        }
        // Pinned-snapshot pagination must always run to completion.
        std::shared_ptr<const Snapshot> pinned = db.snapshot();
        std::string cursor;
        for (int hop = 0; hop < 8; ++hop) {
          SearchRequest paged = Unranked("keyword", /*top_k=*/1);
          paged.cursor = cursor;
          Result<SearchResponse> fixed = pinned->Search(paged);
          if (!fixed.ok()) {
            violations.fetch_add(1);
            break;
          }
          cursor = fixed->next_cursor;
          if (cursor.empty()) break;
        }
      }
    });
  }

  for (int round = 0; round < 30; ++round) {
    const std::string name = "extra" + std::to_string(round);
    Result<DocumentId> added = db.AddDocumentXml(
        name, StrFormat("<r><t>keyword round %d</t></r>", round));
    if (!added.ok()) violations.fetch_add(1);
    if (round % 3 == 0) {
      if (!db.ReplaceDocumentXml(name, "<r><t>keyword swapped</t></r>").ok()) {
        violations.fetch_add(1);
      }
    }
    if (round % 2 == 0) {
      if (!db.RemoveDocument(name).ok()) violations.fetch_add(1);
    }
  }
  stop.store(true);
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(db.epoch(), 1u + 30u + 10u + 15u);  // build + adds + replaces + removes
}

}  // namespace
}  // namespace xks
