// ShardMap roster validation, the text format, global-id routing and the
// fingerprint that pins coordinator cursors to one sharding layout.

#include "src/coord/shard_map.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace xks {
namespace {

ShardInfo Shard(const std::string& host, uint16_t port, DocumentId first,
                DocumentId last) {
  ShardInfo info;
  info.host = host;
  info.port = port;
  info.first_id = first;
  info.last_id = last;
  return info;
}

TEST(ShardMapTest, OfAcceptsAValidRoster) {
  auto map = ShardMap::Of({Shard("127.0.0.1", 7001, 0, 4),
                           Shard("127.0.0.1", 7002, 5, 9),
                           Shard("10.0.0.3", 7001, 20, 20)});
  ASSERT_TRUE(map.ok()) << map.status().ToString();
  EXPECT_EQ(map.value().size(), 3u);
  EXPECT_EQ(map.value().shard(1).port, 7002);
  EXPECT_EQ(map.value().shard(2).first_id, 20u);
}

TEST(ShardMapTest, OfRejectsInvalidRosters) {
  EXPECT_FALSE(ShardMap::Of({}).ok()) << "empty roster";
  EXPECT_EQ(ShardMap::Of({Shard("127.0.0.1", 0, 0, 4)}).status().code(),
            StatusCode::kInvalidArgument)
      << "port 0";
  EXPECT_EQ(ShardMap::Of({Shard("", 7001, 0, 4)}).status().code(),
            StatusCode::kInvalidArgument)
      << "empty host";
  EXPECT_EQ(ShardMap::Of({Shard("127.0.0.1", 7001, 5, 4)}).status().code(),
            StatusCode::kInvalidArgument)
      << "inverted range";
  EXPECT_EQ(ShardMap::Of({Shard("127.0.0.1", 7001, 0, 5),
                          Shard("127.0.0.1", 7002, 5, 9)})
                .status()
                .code(),
            StatusCode::kInvalidArgument)
      << "overlapping ranges";
  EXPECT_EQ(ShardMap::Of({Shard("127.0.0.1", 7001, 5, 9),
                          Shard("127.0.0.1", 7002, 0, 4)})
                .status()
                .code(),
            StatusCode::kInvalidArgument)
      << "ranges out of order";
}

TEST(ShardMapTest, ParseReadsTheFileFormat) {
  auto map = ShardMap::Parse(
      "# the fleet\n"
      "\n"
      "127.0.0.1:7001 0-4999\n"
      "  127.0.0.1:7002   5000-9999   # second half\n");
  ASSERT_TRUE(map.ok()) << map.status().ToString();
  ASSERT_EQ(map.value().size(), 2u);
  EXPECT_EQ(map.value().shard(0).host, "127.0.0.1");
  EXPECT_EQ(map.value().shard(0).port, 7001);
  EXPECT_EQ(map.value().shard(0).first_id, 0u);
  EXPECT_EQ(map.value().shard(0).last_id, 4999u);
  EXPECT_EQ(map.value().shard(1).first_id, 5000u);
}

TEST(ShardMapTest, ParseRejectsMalformedLines) {
  EXPECT_FALSE(ShardMap::Parse("").ok()) << "no shards";
  EXPECT_FALSE(ShardMap::Parse("127.0.0.1 0-4\n").ok()) << "no port";
  EXPECT_FALSE(ShardMap::Parse("127.0.0.1:abc 0-4\n").ok()) << "bad port";
  EXPECT_FALSE(ShardMap::Parse("127.0.0.1:7001 4\n").ok()) << "no range";
  EXPECT_FALSE(ShardMap::Parse("127.0.0.1:7001 a-4\n").ok()) << "bad range";
  EXPECT_FALSE(ShardMap::Parse("127.0.0.1:7001 0-4 extra\n").ok())
      << "trailing junk";
  EXPECT_FALSE(ShardMap::Parse("127.0.0.1:99999 0-4\n").ok())
      << "port out of range";
}

TEST(ShardMapTest, LoadReportsUnreadablePaths) {
  auto map = ShardMap::Load("/nonexistent/shards.txt");
  ASSERT_FALSE(map.ok());
  EXPECT_EQ(map.status().code(), StatusCode::kIoError);
}

TEST(ShardMapTest, ShardForRoutesAndRejectsLikeASingleNode) {
  auto map = ShardMap::Of({Shard("127.0.0.1", 7001, 0, 4),
                           Shard("127.0.0.1", 7002, 10, 14)})
                 .value();
  EXPECT_EQ(map.ShardFor(0).value(), 0u);
  EXPECT_EQ(map.ShardFor(4).value(), 0u);
  EXPECT_EQ(map.ShardFor(10).value(), 1u);
  EXPECT_EQ(map.ShardFor(14).value(), 1u);

  // A gap id and a beyond-the-roster id both answer exactly like a
  // single-node corpus asked for a tombstoned id.
  for (DocumentId id : {DocumentId{7}, DocumentId{15}, DocumentId{1000}}) {
    auto routed = map.ShardFor(id);
    ASSERT_FALSE(routed.ok());
    EXPECT_EQ(routed.status().code(), StatusCode::kNotFound);
    EXPECT_EQ(routed.status().message(),
              "unknown document id " + std::to_string(id));
  }
}

TEST(ShardMapTest, LocalGlobalTranslationRoundTrips) {
  auto map = ShardMap::Of({Shard("127.0.0.1", 7001, 0, 4),
                           Shard("127.0.0.1", 7002, 5, 9)})
                 .value();
  EXPECT_EQ(map.ToLocal(1, 7), 2u);
  EXPECT_EQ(map.ToGlobal(1, 2), 7u);
  for (DocumentId id = 0; id <= 9; ++id) {
    const size_t shard = map.ShardFor(id).value();
    EXPECT_EQ(map.ToGlobal(shard, map.ToLocal(shard, id)), id);
  }
}

TEST(ShardMapTest, FingerprintPinsTheLayout) {
  const uint64_t base =
      ShardMap::Of({Shard("127.0.0.1", 7001, 0, 4),
                    Shard("127.0.0.1", 7002, 5, 9)})
          .value()
          .fingerprint();
  // Deterministic across construction paths.
  EXPECT_EQ(base,
            ShardMap::Parse("127.0.0.1:7001 0-4\n127.0.0.1:7002 5-9\n")
                .value()
                .fingerprint());
  // Any resharding — moved boundary, different address, different port —
  // changes it, so cursors cannot cross layouts.
  EXPECT_NE(base, ShardMap::Of({Shard("127.0.0.1", 7001, 0, 5),
                                Shard("127.0.0.1", 7002, 6, 9)})
                      .value()
                      .fingerprint());
  EXPECT_NE(base, ShardMap::Of({Shard("127.0.0.2", 7001, 0, 4),
                                Shard("127.0.0.1", 7002, 5, 9)})
                      .value()
                      .fingerprint());
  EXPECT_NE(base, ShardMap::Of({Shard("127.0.0.1", 7001, 0, 4),
                                Shard("127.0.0.1", 7003, 5, 9)})
                      .value()
                      .fingerprint());
  EXPECT_NE(base, ShardMap::Of({Shard("127.0.0.1", 7001, 0, 9)})
                      .value()
                      .fingerprint());
}

}  // namespace
}  // namespace xks
