#include "src/lca/elca.h"

#include <gtest/gtest.h>

#include "src/lca/slca.h"
#include "tests/test_util.h"

namespace xks {
namespace {

PostingList MakeList(std::initializer_list<std::initializer_list<uint32_t>> codes) {
  PostingList list;
  for (auto code : codes) list.emplace_back(std::vector<uint32_t>(code));
  return list;
}

using ElcaFn = std::vector<Dewey> (*)(const KeywordLists&);

class ElcaAlgorithmTest : public ::testing::TestWithParam<ElcaFn> {};

TEST_P(ElcaAlgorithmTest, EmptyInputs) {
  ElcaFn elca = GetParam();
  EXPECT_TRUE(elca({}).empty());
  PostingList a = MakeList({{0, 1}});
  PostingList empty;
  EXPECT_TRUE(elca({&a, &empty}).empty());
}

TEST_P(ElcaAlgorithmTest, SingleKeywordAllNodes) {
  ElcaFn elca = GetParam();
  // For one keyword every keyword node is an ELCA (its own occurrence is
  // never inside an excluded subtree).
  PostingList w1 = MakeList({{0, 1}, {0, 1, 0}, {0, 2}});
  EXPECT_EQ(elca({&w1}),
            (std::vector<Dewey>{Dewey{0, 1}, Dewey{0, 1, 0}, Dewey{0, 2}}));
}

TEST_P(ElcaAlgorithmTest, SlcaOnlyCase) {
  ElcaFn elca = GetParam();
  PostingList w1 = MakeList({{0, 0}});
  PostingList w2 = MakeList({{0, 1}});
  EXPECT_EQ(elca({&w1, &w2}), (std::vector<Dewey>{Dewey{0}}));
}

TEST_P(ElcaAlgorithmTest, AncestorWithResidualWitnessesIsElca) {
  ElcaFn elca = GetParam();
  // Paper Example 1 shape (Q2): an inner node holds both keywords itself
  // (the "ref" node) and the outer article still has its own name/title
  // witnesses → both are ELCAs.
  //   article = 0.2; name = 0.2.0 (w1), title = 0.2.1 (w2),
  //   ref = 0.2.3 in both lists.
  PostingList w1 = MakeList({{0, 2, 0}, {0, 2, 3}});
  PostingList w2 = MakeList({{0, 2, 1}, {0, 2, 3}});
  EXPECT_EQ(elca({&w1, &w2}),
            (std::vector<Dewey>{Dewey{0, 2}, Dewey{0, 2, 3}}));
}

TEST_P(ElcaAlgorithmTest, AncestorWithoutResidualIsNotElca) {
  ElcaFn elca = GetParam();
  // Root contains all keywords but only through the contains-all child 0.2;
  // its residual (0.1's w1) misses w2 → root is not an ELCA.
  PostingList w1 = MakeList({{0, 1}, {0, 2, 0}});
  PostingList w2 = MakeList({{0, 2, 1}});
  EXPECT_EQ(elca({&w1, &w2}), (std::vector<Dewey>{Dewey{0, 2}}));
}

TEST_P(ElcaAlgorithmTest, ResidualSpreadAcrossTwoChildren) {
  ElcaFn elca = GetParam();
  // Root has contains-all child 0.0 plus residual witnesses w1@0.1, w2@0.2
  // → root IS an ELCA alongside the inner one.
  PostingList w1 = MakeList({{0, 0, 0}, {0, 1}});
  PostingList w2 = MakeList({{0, 0, 1}, {0, 2}});
  EXPECT_EQ(elca({&w1, &w2}), (std::vector<Dewey>{Dewey{0}, Dewey{0, 0}}));
}

TEST_P(ElcaAlgorithmTest, ChainOfContainsAllNodes) {
  ElcaFn elca = GetParam();
  // 0 → 0.0 → 0.0.0 all contain everything; only the deepest is an ELCA,
  // the chain above has no residual witnesses.
  PostingList w1 = MakeList({{0, 0, 0, 0}});
  PostingList w2 = MakeList({{0, 0, 0, 1}});
  EXPECT_EQ(elca({&w1, &w2}), (std::vector<Dewey>{Dewey{0, 0, 0}}));
}

TEST_P(ElcaAlgorithmTest, WitnessAtTheNodeItselfCountsAsResidual) {
  ElcaFn elca = GetParam();
  // 0.1 matches w1 in its own content and has a contains-all child; the
  // child's subtree is excluded but the self-occurrence plus w2 at another
  // child keeps 0.1 an ELCA.
  PostingList w1 = MakeList({{0, 1}, {0, 1, 0, 0}});
  PostingList w2 = MakeList({{0, 1, 0, 1}, {0, 1, 1}});
  EXPECT_EQ(elca({&w1, &w2}),
            (std::vector<Dewey>{Dewey{0, 1}, Dewey{0, 1, 0}}));
}

TEST_P(ElcaAlgorithmTest, SlcaIsAlwaysSubsetOfElca) {
  ElcaFn elca = GetParam();
  PostingList w1 = MakeList({{0, 0, 0}, {0, 1}, {0, 2, 0}});
  PostingList w2 = MakeList({{0, 0, 1}, {0, 2, 1}});
  KeywordLists lists = {&w1, &w2};
  std::vector<Dewey> elcas = elca(lists);
  for (const Dewey& s : SlcaBruteForce(lists)) {
    EXPECT_TRUE(std::binary_search(elcas.begin(), elcas.end(), s))
        << s.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, ElcaAlgorithmTest,
                         ::testing::Values(&ElcaBruteForce, &ElcaStackMerge,
                                           &ElcaIndexedStack),
                         [](const ::testing::TestParamInfo<ElcaFn>& info) {
                           if (info.param == &ElcaBruteForce) return "BruteForce";
                           if (info.param == &ElcaStackMerge) return "StackMerge";
                           return "IndexedStack";
                         });

struct RandomCase {
  uint64_t seed;
  size_t tree_size;
  size_t k;
  double density;
};

class ElcaEquivalenceTest : public ::testing::TestWithParam<RandomCase> {};

TEST_P(ElcaEquivalenceTest, AllAlgorithmsAgree) {
  const RandomCase& c = GetParam();
  RandomLcaInstance instance =
      MakeRandomLcaInstance(c.seed, c.tree_size, c.k, c.density);
  KeywordLists lists = instance.Views();
  std::vector<Dewey> brute = ElcaBruteForce(lists);
  EXPECT_EQ(ElcaStackMerge(lists), brute) << "seed=" << c.seed;
  EXPECT_EQ(ElcaIndexedStack(lists), brute) << "seed=" << c.seed;
}

INSTANTIATE_TEST_SUITE_P(
    RandomSweep, ElcaEquivalenceTest,
    ::testing::Values(RandomCase{21, 20, 2, 0.2}, RandomCase{22, 20, 2, 0.5},
                      RandomCase{23, 50, 2, 0.1}, RandomCase{24, 50, 3, 0.2},
                      RandomCase{25, 80, 3, 0.05}, RandomCase{26, 80, 4, 0.3},
                      RandomCase{27, 120, 2, 0.02}, RandomCase{28, 120, 5, 0.15},
                      RandomCase{29, 200, 3, 0.1}, RandomCase{30, 200, 4, 0.05},
                      RandomCase{31, 300, 2, 0.3}, RandomCase{32, 300, 6, 0.1},
                      RandomCase{33, 60, 3, 0.8}, RandomCase{34, 40, 8, 0.4},
                      RandomCase{35, 500, 3, 0.05}, RandomCase{36, 500, 4, 0.2}),
    [](const ::testing::TestParamInfo<RandomCase>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

TEST(ElcaStressTest, ManySeedsAgainstBruteForce) {
  for (uint64_t seed = 200; seed < 260; ++seed) {
    RandomLcaInstance instance = MakeRandomLcaInstance(
        seed, /*tree_size=*/30 + seed % 60, /*k=*/2 + seed % 4,
        /*density=*/0.05 + 0.02 * static_cast<double>(seed % 10));
    KeywordLists lists = instance.Views();
    std::vector<Dewey> brute = ElcaBruteForce(lists);
    EXPECT_EQ(ElcaStackMerge(lists), brute) << "seed=" << seed;
    EXPECT_EQ(ElcaIndexedStack(lists), brute) << "seed=" << seed;
  }
}

TEST(ElcaStressTest, SlcaSubsetInvariantRandomized) {
  for (uint64_t seed = 300; seed < 330; ++seed) {
    RandomLcaInstance instance =
        MakeRandomLcaInstance(seed, /*tree_size=*/60, /*k=*/3, /*density=*/0.15);
    KeywordLists lists = instance.Views();
    std::vector<Dewey> elcas = ElcaStackMerge(lists);
    for (const Dewey& s : SlcaStackMerge(lists)) {
      EXPECT_TRUE(std::binary_search(elcas.begin(), elcas.end(), s))
          << "seed=" << seed << " slca=" << s.ToString();
    }
  }
}

}  // namespace
}  // namespace xks
