#include "src/lca/lca.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace xks {
namespace {

PostingList MakeList(std::initializer_list<std::initializer_list<uint32_t>> codes) {
  PostingList list;
  for (auto code : codes) list.emplace_back(std::vector<uint32_t>(code));
  return list;
}

TEST(LcaHelpersTest, AnyListEmpty) {
  PostingList a = MakeList({{0, 1}});
  PostingList empty;
  EXPECT_TRUE(AnyListEmpty({}));
  EXPECT_TRUE(AnyListEmpty({&a, &empty}));
  EXPECT_TRUE(AnyListEmpty({&a, nullptr}));
  EXPECT_FALSE(AnyListEmpty({&a, &a}));
}

TEST(LcaHelpersTest, FullMask) {
  EXPECT_EQ(FullMask(1), 0x1u);
  EXPECT_EQ(FullMask(5), 0x1Fu);
  EXPECT_EQ(FullMask(64), ~KeywordMask{0});
}

TEST(LcaHelpersTest, SmallestListIndex) {
  PostingList a = MakeList({{0, 1}, {0, 2}});
  PostingList b = MakeList({{0, 1}});
  PostingList c = MakeList({{0, 1}, {0, 2}, {0, 3}});
  KeywordLists lists = {&a, &b, &c};
  EXPECT_EQ(SmallestListIndex(lists), 1u);
}

TEST(LcaHelpersTest, ContainsAllKeywords) {
  PostingList w1 = MakeList({{0, 0, 1}});
  PostingList w2 = MakeList({{0, 1}});
  KeywordLists lists = {&w1, &w2};
  EXPECT_TRUE(ContainsAllKeywords(Dewey{0}, lists));
  EXPECT_FALSE(ContainsAllKeywords(Dewey{0, 0}, lists));
  EXPECT_FALSE(ContainsAllKeywords(Dewey{0, 1}, lists));
}

TEST(LcaHelpersTest, ContainsAllWithPostingAtNodeItself) {
  PostingList w1 = MakeList({{0, 2}});
  KeywordLists lists = {&w1};
  EXPECT_TRUE(ContainsAllKeywords(Dewey{0, 2}, lists));
}

TEST(SmallestContainsAllAncestorTest, SimpleCases) {
  // Tree: 0 → {0.0 (w1), 0.1 (w2)}.
  PostingList w1 = MakeList({{0, 0}});
  PostingList w2 = MakeList({{0, 1}});
  KeywordLists lists = {&w1, &w2};
  EXPECT_EQ(SmallestContainsAllAncestor(Dewey{0, 0}, lists), (Dewey{0}));
  EXPECT_EQ(SmallestContainsAllAncestor(Dewey{0, 1}, lists), (Dewey{0}));
}

TEST(SmallestContainsAllAncestorTest, StaysLowWhenPossible) {
  // 0.2 holds both keywords below it; a witness inside stays at 0.2.
  PostingList w1 = MakeList({{0, 2, 0}, {0, 5}});
  PostingList w2 = MakeList({{0, 2, 1}});
  KeywordLists lists = {&w1, &w2};
  EXPECT_EQ(SmallestContainsAllAncestor(Dewey{0, 2, 0}, lists), (Dewey{0, 2}));
  // A witness outside 0.2 must go to the root.
  EXPECT_EQ(SmallestContainsAllAncestor(Dewey{0, 5}, lists), (Dewey{0}));
}

TEST(SmallestContainsAllAncestorTest, SelfWitness) {
  // A node containing every keyword itself is its own answer.
  PostingList w1 = MakeList({{0, 3}});
  PostingList w2 = MakeList({{0, 3}});
  KeywordLists lists = {&w1, &w2};
  EXPECT_EQ(SmallestContainsAllAncestor(Dewey{0, 3}, lists), (Dewey{0, 3}));
}

TEST(SmallestContainsAllAncestorTest, MatchesBruteForceRandomized) {
  for (uint64_t seed = 0; seed < 30; ++seed) {
    RandomLcaInstance instance =
        MakeRandomLcaInstance(seed, /*tree_size=*/40, /*k=*/3, /*density=*/0.15);
    KeywordLists lists = instance.Views();
    for (const Dewey& witness : instance.lists[0]) {
      Dewey got = SmallestContainsAllAncestor(witness, lists);
      // Oracle: walk ancestors of the witness from deepest to root.
      Dewey expected;
      for (size_t depth = witness.depth(); depth >= 1; --depth) {
        Dewey prefix(std::vector<uint32_t>(
            witness.components().begin(),
            witness.components().begin() + static_cast<long>(depth)));
        if (ContainsAllKeywords(prefix, lists)) {
          expected = prefix;
          break;
        }
      }
      EXPECT_EQ(got, expected) << "seed=" << seed << " witness=" << witness.ToString();
    }
  }
}

TEST(ContainsAllNodesBruteForceTest, EnumeratesExactly) {
  // 0 → {0.0 (w1 w2 below), 0.1 (w1 only)}.
  PostingList w1 = MakeList({{0, 0, 0}, {0, 1}});
  PostingList w2 = MakeList({{0, 0, 1}});
  KeywordLists lists = {&w1, &w2};
  std::vector<Dewey> nodes = ContainsAllNodesBruteForce(lists);
  EXPECT_EQ(nodes, (std::vector<Dewey>{Dewey{0}, Dewey{0, 0}}));
}

TEST(ContainsAllNodesBruteForceTest, EmptyOnMissingKeyword) {
  PostingList w1 = MakeList({{0, 1}});
  PostingList empty;
  EXPECT_TRUE(ContainsAllNodesBruteForce({&w1, &empty}).empty());
}

TEST(FullLcaBruteForceTest, WitnessAtNodeItself) {
  // Single keyword: full LCAs are exactly the keyword nodes.
  PostingList w1 = MakeList({{0, 1}, {0, 1, 2}});
  std::vector<Dewey> lcas = FullLcaBruteForce({&w1});
  EXPECT_EQ(lcas, (std::vector<Dewey>{Dewey{0, 1}, Dewey{0, 1, 2}}));
}

TEST(FullLcaBruteForceTest, BranchingNode) {
  // w1 at 0.0, w2 at 0.1 → only the root is an LCA of a witness pair.
  PostingList w1 = MakeList({{0, 0}});
  PostingList w2 = MakeList({{0, 1}});
  std::vector<Dewey> lcas = FullLcaBruteForce({&w1, &w2});
  EXPECT_EQ(lcas, (std::vector<Dewey>{Dewey{0}}));
}

TEST(FullLcaBruteForceTest, ConfinedToOneChildExcluded) {
  // All witnesses live under 0.2 → the root cannot be the LCA of any pair,
  // even though it contains all keywords.
  PostingList w1 = MakeList({{0, 2, 0}});
  PostingList w2 = MakeList({{0, 2, 1}});
  std::vector<Dewey> lcas = FullLcaBruteForce({&w1, &w2});
  EXPECT_EQ(lcas, (std::vector<Dewey>{Dewey{0, 2}}));
}

TEST(FullLcaBruteForceTest, AncestorLcaWithSpreadWitnesses) {
  // Example 1's shape: an SLCA plus an ancestor LCA reachable by choosing
  // witnesses from different children.
  PostingList w1 = MakeList({{0, 2, 0}, {0, 3}});
  PostingList w2 = MakeList({{0, 2, 1}});
  std::vector<Dewey> lcas = FullLcaBruteForce({&w1, &w2});
  EXPECT_EQ(lcas, (std::vector<Dewey>{Dewey{0}, Dewey{0, 2}}));
}

using FullLcaFn = std::vector<Dewey> (*)(const KeywordLists&);

class FullLcaAlgorithmTest : public ::testing::TestWithParam<FullLcaFn> {};

TEST_P(FullLcaAlgorithmTest, WitnessAtNodeItself) {
  FullLcaFn full_lca = GetParam();
  PostingList w1 = MakeList({{0, 1}, {0, 1, 2}});
  EXPECT_EQ(full_lca({&w1}),
            (std::vector<Dewey>{Dewey{0, 1}, Dewey{0, 1, 2}}));
}

TEST_P(FullLcaAlgorithmTest, BranchingAndConfinement) {
  FullLcaFn full_lca = GetParam();
  PostingList w1 = MakeList({{0, 2, 0}});
  PostingList w2 = MakeList({{0, 2, 1}});
  // All witnesses under 0.2: the root is not a full LCA.
  EXPECT_EQ(full_lca({&w1, &w2}), (std::vector<Dewey>{Dewey{0, 2}}));
}

TEST_P(FullLcaAlgorithmTest, PaperQ2Shape) {
  FullLcaFn full_lca = GetParam();
  // Example 1's shape: SLCA at the ref node, LCA at the article reachable
  // by spreading witnesses — both are full LCAs.
  PostingList w1 = MakeList({{0, 2, 0}, {0, 2, 3}});  // name, ref
  PostingList w2 = MakeList({{0, 2, 1}, {0, 2, 3}});  // title, ref
  EXPECT_EQ(full_lca({&w1, &w2}),
            (std::vector<Dewey>{Dewey{0, 2}, Dewey{0, 2, 3}}));
}

INSTANTIATE_TEST_SUITE_P(Both, FullLcaAlgorithmTest,
                         ::testing::Values(&FullLcaBruteForce,
                                           &FullLcaStackMerge),
                         [](const ::testing::TestParamInfo<FullLcaFn>& info) {
                           return info.param == &FullLcaBruteForce
                                      ? "BruteForce"
                                      : "StackMerge";
                         });

TEST(FullLcaStackMergeTest, MatchesBruteForceRandomized) {
  for (uint64_t seed = 900; seed < 980; ++seed) {
    RandomLcaInstance instance = MakeRandomLcaInstance(
        seed, /*tree_size=*/20 + seed % 70, /*k=*/2 + seed % 4,
        /*density=*/0.05 + 0.02 * static_cast<double>(seed % 10));
    KeywordLists lists = instance.Views();
    EXPECT_EQ(FullLcaStackMerge(lists), FullLcaBruteForce(lists))
        << "seed=" << seed;
  }
}

TEST(FullLcaStackMergeTest, EmptyInputs) {
  EXPECT_TRUE(FullLcaStackMerge({}).empty());
  PostingList a = MakeList({{0, 1}});
  PostingList empty;
  EXPECT_TRUE(FullLcaStackMerge({&a, &empty}).empty());
}

TEST(SortUniqueDeweysTest, SortsAndDedupes) {
  std::vector<Dewey> v = {{0, 2}, {0, 1}, {0, 2}, {0}};
  SortUniqueDeweys(&v);
  EXPECT_EQ(v, (std::vector<Dewey>{Dewey{0}, Dewey{0, 1}, Dewey{0, 2}}));
}

}  // namespace
}  // namespace xks
