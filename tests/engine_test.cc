#include "src/core/engine.h"

#include <gtest/gtest.h>

#include "src/core/maxmatch.h"
#include "src/core/validrtf.h"
#include "src/xml/parser.h"

namespace xks {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Two self-contained records plus one stray keyword node.
    Result<Document> doc = ParseXml(
        "<lib>"
        "<rec><t>alpha</t><u>beta</u></rec>"
        "<rec><t>alpha</t><u>beta</u></rec>"
        "<stray>alpha</stray>"
        "</lib>");
    ASSERT_TRUE(doc.ok());
    store_ = ShreddedStore::Build(*doc);
  }

  SearchResult Run(const std::string& text, const SearchOptions& options) {
    SearchEngine engine(&store_);
    Result<SearchResult> r = engine.Search(*KeywordQuery::Parse(text), options);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }

  ShreddedStore store_;
};

TEST_F(EngineTest, ElcaSemanticsFindsBothRecords) {
  SearchResult r = Run("alpha beta", ValidRtfOptions());
  ASSERT_EQ(r.rtf_count(), 2u);
  EXPECT_EQ(r.fragments[0].rtf.root, (Dewey{0, 0}));
  EXPECT_EQ(r.fragments[1].rtf.root, (Dewey{0, 1}));
}

TEST_F(EngineTest, SlcaSemanticsMatches) {
  SearchOptions options = MaxMatchOriginalOptions();
  SearchResult r = Run("alpha beta", options);
  ASSERT_EQ(r.rtf_count(), 2u);
  EXPECT_TRUE(r.fragments[0].rtf.root_is_slca);
  EXPECT_TRUE(r.fragments[1].rtf.root_is_slca);
}

TEST_F(EngineTest, MissingKeywordYieldsNoResults) {
  SearchResult r = Run("alpha zzz_missing", ValidRtfOptions());
  EXPECT_EQ(r.rtf_count(), 0u);
}

TEST_F(EngineTest, SingleKeywordReturnsEveryKeywordNode) {
  SearchResult r = Run("alpha", ValidRtfOptions());
  EXPECT_EQ(r.rtf_count(), 3u);  // two <t> nodes plus <stray>
}

TEST_F(EngineTest, AllElcaAlgorithmsAgree) {
  SearchOptions a = ValidRtfOptions();
  a.elca_algorithm = ElcaAlgorithm::kIndexedStack;
  SearchOptions b = ValidRtfOptions();
  b.elca_algorithm = ElcaAlgorithm::kStackMerge;
  SearchOptions c = ValidRtfOptions();
  c.elca_algorithm = ElcaAlgorithm::kBruteForce;
  SearchResult ra = Run("alpha beta", a);
  SearchResult rb = Run("alpha beta", b);
  SearchResult rc = Run("alpha beta", c);
  ASSERT_EQ(ra.rtf_count(), rb.rtf_count());
  ASSERT_EQ(ra.rtf_count(), rc.rtf_count());
  for (size_t i = 0; i < ra.rtf_count(); ++i) {
    EXPECT_EQ(ra.fragments[i].fragment.NodeSet(), rb.fragments[i].fragment.NodeSet());
    EXPECT_EQ(ra.fragments[i].fragment.NodeSet(), rc.fragments[i].fragment.NodeSet());
  }
}

TEST_F(EngineTest, RawFragmentsOnlyWhenRequested) {
  SearchOptions options = ValidRtfOptions();
  SearchResult r = Run("alpha beta", options);
  EXPECT_TRUE(r.fragments[0].raw.empty());
  options.keep_raw_fragments = true;
  r = Run("alpha beta", options);
  EXPECT_FALSE(r.fragments[0].raw.empty());
  EXPECT_GE(r.fragments[0].raw.size(), r.fragments[0].fragment.size());
}

TEST_F(EngineTest, PruningNoneKeepsRawTree) {
  SearchOptions options = ValidRtfOptions();
  options.pruning = PruningPolicy::kNone;
  options.keep_raw_fragments = true;
  SearchResult r = Run("alpha beta", options);
  EXPECT_EQ(r.fragments[0].fragment.NodeSet(), r.fragments[0].raw.NodeSet());
}

TEST_F(EngineTest, KeywordNodeCountSumsPostings) {
  SearchResult r = Run("alpha beta", ValidRtfOptions());
  EXPECT_EQ(r.keyword_node_count, 5u);  // 3 alpha + 2 beta
}

TEST_F(EngineTest, TimingsPopulated) {
  SearchResult r = Run("alpha beta", ValidRtfOptions());
  EXPECT_GE(r.timings.get_keyword_nodes_ms, 0.0);
  EXPECT_GE(r.timings.post_retrieval_ms(), 0.0);
  EXPECT_GE(r.timings.post_retrieval_ms(),
            r.timings.get_lca_ms + r.timings.get_rtf_ms);
}

TEST_F(EngineTest, StageFunctionsExposed) {
  SearchEngine engine(&store_);
  KeywordQuery q = *KeywordQuery::Parse("alpha beta");
  SearchEngine::KeywordNodeLists lists = engine.GetKeywordNodes(q);
  ASSERT_EQ(lists.views.size(), 2u);
  EXPECT_EQ(lists.views[0]->size(), 3u);
  EXPECT_TRUE(lists.owned.empty());  // no constrained terms
  std::vector<Dewey> lcas = SearchEngine::GetLca(lists.views, ValidRtfOptions());
  EXPECT_EQ(lcas.size(), 2u);
}

TEST_F(EngineTest, LabelConstrainedTermNarrowsResults) {
  // "alpha" occurs in <t> (twice) and in <stray>; constraining to t:alpha
  // drops the stray keyword node entirely.
  SearchResult unconstrained = Run("alpha", ValidRtfOptions());
  EXPECT_EQ(unconstrained.rtf_count(), 3u);
  SearchResult constrained = Run("t:alpha", ValidRtfOptions());
  EXPECT_EQ(constrained.rtf_count(), 2u);
  for (const FragmentResult& f : constrained.fragments) {
    EXPECT_EQ(f.fragment.node(f.fragment.root()).label, "t");
  }
}

TEST_F(EngineTest, LabelConstrainedMultiKeyword) {
  // Both records match "t:alpha beta"; the stray alpha cannot contribute.
  SearchResult r = Run("t:alpha beta", ValidRtfOptions());
  ASSERT_EQ(r.rtf_count(), 2u);
  EXPECT_EQ(r.keyword_node_count, 4u);  // 2 filtered alpha + 2 beta
}

TEST_F(EngineTest, UnknownLabelConstraintYieldsNoResults) {
  SearchResult r = Run("nosuchlabel:alpha beta", ValidRtfOptions());
  EXPECT_EQ(r.rtf_count(), 0u);
}

TEST_F(EngineTest, SlcaFlagDisabled) {
  SearchOptions options = ValidRtfOptions();
  options.flag_slca_roots = false;
  SearchResult r = Run("alpha beta", options);
  for (const FragmentResult& f : r.fragments) {
    EXPECT_FALSE(f.rtf.root_is_slca);
  }
}

TEST_F(EngineTest, ValidRtfSearchConvenienceWrappers) {
  Result<SearchResult> r = ValidRtfSearch(store_, "alpha beta");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rtf_count(), 2u);
  Result<SearchResult> bad = ValidRtfSearch(store_, "   ");
  EXPECT_FALSE(bad.ok());
}

TEST_F(EngineTest, MaxMatchWrappers) {
  KeywordQuery q = *KeywordQuery::Parse("alpha beta");
  Result<SearchResult> revised = MaxMatchSearch(store_, q);
  ASSERT_TRUE(revised.ok());
  Result<SearchResult> original = MaxMatchOriginalSearch(store_, q);
  ASSERT_TRUE(original.ok());
  EXPECT_EQ(revised->rtf_count(), original->rtf_count());
}

TEST_F(EngineTest, StopWordQueryKeywordIgnored) {
  // "the" never reaches the index; "alpha the beta" behaves as "alpha beta".
  SearchResult with_stop = Run("alpha the beta", ValidRtfOptions());
  SearchResult without = Run("alpha beta", ValidRtfOptions());
  EXPECT_EQ(with_stop.rtf_count(), without.rtf_count());
}

}  // namespace
}  // namespace xks
