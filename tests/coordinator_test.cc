// Coordinator scatter-gather over real xksd shards: the byte-identity
// contract (merged responses are byte-for-byte what the single-node union
// corpus encodes, at every page of a pagination walk), selection and error
// parity, epoch-vector cursor agreement, the never-partial failure policy
// for dead and slow shards, and a TSan query/reconnect hammer.

#include "src/coord/coordinator.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/database.h"
#include "src/coord/coord_service.h"
#include "src/coord/shard_map.h"
#include "src/server/client.h"
#include "src/server/server.h"
#include "src/server/wire.h"
#include "tests/test_util.h"

namespace xks {
namespace {

// ---------------------------------------------------------------------------
// Fixture: a union corpus and its sharded twin.
//
// The union database holds documents doc-0..doc-5; shard 0 serves doc-0..2
// and shard 1 serves doc-3..5 (same names, same content, same relative
// order), each behind a real XksServer socket. Byte-identity is stated
// against `union_db`.
// ---------------------------------------------------------------------------

constexpr size_t kDocs = 6;
constexpr size_t kDocsPerShard = 3;

Document CorpusDocument(size_t d) {
  return RandomDocument(/*seed=*/9100 + d, /*target_count=*/40);
}

class CoordinatorTest : public ::testing::Test {
 protected:
  void SetUp() override { StartFleet(ServerConfig{}, ServerConfig{}); }

  void StartFleet(const ServerConfig& shard0_config,
                  const ServerConfig& shard1_config) {
    for (size_t d = 0; d < kDocs; ++d) {
      const std::string name = "doc-" + std::to_string(d);
      const Document doc = CorpusDocument(d);
      ASSERT_TRUE(union_db_.AddDocument(name, doc).ok());
      Database& shard = d < kDocsPerShard ? shard0_db_ : shard1_db_;
      ASSERT_TRUE(shard.AddDocument(name, doc).ok());
    }
    ASSERT_TRUE(union_db_.Build().ok());
    ASSERT_TRUE(shard0_db_.Build().ok());
    ASSERT_TRUE(shard1_db_.Build().ok());
    shard0_server_ = std::make_unique<XksServer>(&shard0_db_, shard0_config);
    shard1_server_ = std::make_unique<XksServer>(&shard1_db_, shard1_config);
    ASSERT_TRUE(shard0_server_->Start().ok());
    ASSERT_TRUE(shard1_server_->Start().ok());
  }

  ShardMap Map() const {
    ShardInfo s0, s1;
    s0.host = s1.host = "127.0.0.1";
    s0.port = shard0_server_->port();
    s1.port = shard1_server_->port();
    s0.first_id = 0;
    s0.last_id = kDocsPerShard - 1;
    s1.first_id = kDocsPerShard;
    s1.last_id = kDocs - 1;
    auto map = ShardMap::Of({s0, s1});
    EXPECT_TRUE(map.ok()) << map.status().ToString();
    return std::move(map).value();
  }

  /// A coordinator that fails fast when a shard is gone (the dead-shard
  /// tests would otherwise sit out the full dial backoff).
  static CoordinatorConfig FastConfig() {
    CoordinatorConfig config;
    config.channel.connect_timeout_ms = 500;
    config.channel.connect_attempts = 1;
    return config;
  }

  /// Deterministic byte-identity projection (see server_test.cc): cache
  /// bypassed, stats off — the two nondeterministic field groups.
  static SearchRequest DeterministicRequest(const std::string& query,
                                            bool rank, size_t top_k) {
    SearchRequest request;
    request.query = query;
    request.rank = rank;
    request.top_k = top_k;
    request.use_cache = false;
    request.include_stats = false;
    return request;
  }

  /// Asserts `actual` (coordinator) is byte-identical to `expected`
  /// (single-node) modulo the cursor token, whose FORMAT legitimately
  /// differs ("xksco1" carries an epoch vector, "xksc2" one epoch); the
  /// cursors' presence must still agree. Returns via out-params both
  /// next cursors so walks can continue on their own token.
  static void ExpectPageIdentical(const SearchResponse& expected,
                                  const SearchResponse& actual,
                                  const std::string& what) {
    EXPECT_EQ(expected.next_cursor.empty(), actual.next_cursor.empty())
        << what << ": cursor presence diverges";
    SearchResponse expected_copy = expected;
    SearchResponse actual_copy = actual;
    expected_copy.next_cursor.clear();
    actual_copy.next_cursor.clear();
    EXPECT_EQ(EncodeSearchResponse(expected_copy),
              EncodeSearchResponse(actual_copy))
        << what << ": wire bytes diverge from the single-node union corpus";
  }

  /// Walks one request to the last page on both sides, asserting
  /// byte-identity page by page. Returns the number of pages.
  size_t ExpectWalkIdentical(Coordinator& coordinator, SearchRequest request,
                             const std::string& what) {
    std::string union_cursor;
    std::string coord_cursor;
    size_t pages = 0;
    for (;;) {
      SearchRequest union_request = request;
      union_request.cursor = union_cursor;
      SearchRequest coord_request = request;
      coord_request.cursor = coord_cursor;
      Result<SearchResponse> expected = union_db_.Search(union_request);
      Result<SearchResponse> actual = coordinator.Search(coord_request);
      EXPECT_EQ(expected.ok(), actual.ok())
          << what << " page " << pages << ": "
          << (expected.ok() ? actual.status() : expected.status()).ToString();
      if (!expected.ok() || !actual.ok()) return pages;
      ++pages;
      ExpectPageIdentical(expected.value(), actual.value(),
                          what + " page " + std::to_string(pages));
      if (expected.value().next_cursor.empty() ||
          actual.value().next_cursor.empty()) {
        return pages;
      }
      union_cursor = expected.value().next_cursor;
      coord_cursor = actual.value().next_cursor;
    }
  }

  Database union_db_;
  Database shard0_db_;
  Database shard1_db_;
  std::unique_ptr<XksServer> shard0_server_;
  std::unique_ptr<XksServer> shard1_server_;
};

// ---------------------------------------------------------------------------
// Coordinator cursor codec.
// ---------------------------------------------------------------------------

TEST(CoordCursorTest, RoundTrips) {
  CoordCursor cursor;
  cursor.fingerprint = 0xdeadbeefcafef00dull;
  cursor.offset = 42;
  cursor.epochs = {1, 0, 0xffffffffffffffffull};
  const std::string token = EncodeCoordCursor(cursor);
  EXPECT_EQ(token.compare(0, 7, "xksco1:"), 0) << token;
  auto decoded = DecodeCoordCursor(token);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().fingerprint, cursor.fingerprint);
  EXPECT_EQ(decoded.value().offset, cursor.offset);
  EXPECT_EQ(decoded.value().epochs, cursor.epochs);
}

TEST(CoordCursorTest, RejectsMalformedTokens) {
  for (const char* token : {
           "",                        //
           "xksco1:",                 // no fields
           "xksco1:12",               // missing offset and epochs
           "xksco1:12:34",            // missing epochs
           "xksco1:12:34:",           // empty epoch list
           "xksco1:12:34:5,",         // trailing comma
           "xksco1:12:34:5,,6",       // empty epoch entry
           "xksco1:xyz:34:5",         // non-hex fingerprint
           "xksco1:12:34:5;6",        // wrong separator
           "xksco1:123456789abcdef01:0:1",  // 17-digit fingerprint
           "xksc2:12:34:5",           // the single-node family
           "bogus",                   //
       }) {
    auto decoded = DecodeCoordCursor(token);
    EXPECT_FALSE(decoded.ok()) << "accepted '" << token << "'";
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
}

// ---------------------------------------------------------------------------
// Byte identity.
// ---------------------------------------------------------------------------

TEST_F(CoordinatorTest, SinglePageMatchesUnionCorpusBytes) {
  Coordinator coordinator(Map(), CoordinatorConfig{});
  for (const char* query : {"apple berry", "cedar", "ember fig dune",
                            "nosuchword"}) {
    for (bool rank : {false, true}) {
      SearchRequest request = DeterministicRequest(query, rank, /*top_k=*/10);
      Result<SearchResponse> expected = union_db_.Search(request);
      Result<SearchResponse> actual = coordinator.Search(request);
      ASSERT_TRUE(expected.ok()) << expected.status().ToString();
      ASSERT_TRUE(actual.ok()) << actual.status().ToString();
      ExpectPageIdentical(expected.value(), actual.value(),
                          std::string(query) + (rank ? " ranked" : ""));
    }
  }
}

TEST_F(CoordinatorTest, UnboundedPageMatchesUnionCorpusBytes) {
  Coordinator coordinator(Map(), CoordinatorConfig{});
  for (bool rank : {false, true}) {
    SearchRequest request = DeterministicRequest("apple", rank, /*top_k=*/0);
    Result<SearchResponse> expected = union_db_.Search(request);
    Result<SearchResponse> actual = coordinator.Search(request);
    ASSERT_TRUE(expected.ok() && actual.ok());
    EXPECT_TRUE(actual.value().next_cursor.empty());
    ExpectPageIdentical(expected.value(), actual.value(), "top_k=0");
  }
}

TEST_F(CoordinatorTest, FullPaginationWalksAreByteIdentical) {
  Coordinator coordinator(Map(), CoordinatorConfig{});
  for (const char* query : {"apple berry", "apple", "fig"}) {
    for (bool rank : {false, true}) {
      // A small page so the walk crosses shard boundaries several times —
      // unranked this exercises the serial-prefix over-scan, ranked the
      // shared-normalizer k-way merge, page after page.
      const size_t pages = ExpectWalkIdentical(
          coordinator, DeterministicRequest(query, rank, /*top_k=*/2),
          std::string(query) + (rank ? " ranked" : " unranked"));
      EXPECT_GE(pages, 2u) << query << ": walk never paginated";
    }
  }
}

TEST_F(CoordinatorTest, SnippetsAndFragmentsSurviveTheMerge) {
  Coordinator coordinator(Map(), CoordinatorConfig{});
  SearchRequest request = DeterministicRequest("apple berry", true, 5);
  request.include_snippets = true;
  request.include_raw_fragments = true;
  Result<SearchResponse> expected = union_db_.Search(request);
  Result<SearchResponse> actual = coordinator.Search(request);
  ASSERT_TRUE(expected.ok() && actual.ok());
  ExpectPageIdentical(expected.value(), actual.value(), "snippets");
}

TEST_F(CoordinatorTest, ScanBreakdownReportsGlobalIds) {
  Coordinator coordinator(Map(), CoordinatorConfig{});
  SearchRequest request = DeterministicRequest("apple", false, /*top_k=*/0);
  request.include_scan_breakdown = true;
  Result<SearchResponse> expected = union_db_.Search(request);
  Result<SearchResponse> actual = coordinator.Search(request);
  ASSERT_TRUE(expected.ok() && actual.ok());
  ASSERT_EQ(actual.value().scan_breakdown.size(), kDocs);
  EXPECT_EQ(actual.value().scan_breakdown.back().document, kDocs - 1)
      << "shard-local ids leaked into the merged breakdown";
  ExpectPageIdentical(expected.value(), actual.value(), "breakdown");
}

// ---------------------------------------------------------------------------
// Document selections: routing, rewrite and error parity.
// ---------------------------------------------------------------------------

TEST_F(CoordinatorTest, TraceCarriesOneHopPerInvolvedShard) {
  Coordinator coordinator(Map(), CoordinatorConfig{});
  SearchRequest request = DeterministicRequest("apple berry", /*rank=*/true,
                                               /*top_k=*/10);
  request.include_trace = true;
  request.deadline_ms = 5000;

  Result<SearchResponse> actual = coordinator.Search(request);
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();
  ASSERT_NE(actual.value().trace, nullptr);
  const TraceSpan& root = *actual.value().trace;
  EXPECT_EQ(root.name, "coord_search");
  EXPECT_EQ(root.Attr("shards"), 2u) << "both shards route";
  EXPECT_NE(root.Child("parse"), nullptr);
  EXPECT_NE(root.Child("merge"), nullptr);

  const TraceSpan* scatter = root.Child("scatter");
  ASSERT_NE(scatter, nullptr);
  std::vector<const TraceSpan*> hops;
  for (const TraceSpan& child : scatter->children) {
    if (child.name == "hop") hops.push_back(&child);
  }
  ASSERT_EQ(hops.size(), 2u) << "one hop span per involved shard";
  for (size_t i = 0; i < hops.size(); ++i) {
    EXPECT_EQ(hops[i]->Attr("shard", ~0ull), i)
        << "hops attach in involved (roster) order";
    EXPECT_GT(hops[i]->Attr("budget_ms"), 0u)
        << "each hop records its remaining deadline budget";
    EXPECT_LE(hops[i]->Attr("budget_ms"), request.deadline_ms);
    // The shard's own stage breakdown rides under the hop.
    const TraceSpan* shard_root = hops[i]->Child("search");
    ASSERT_NE(shard_root, nullptr);
    EXPECT_NE(shard_root->Child("scan"), nullptr);
  }

  // The trace is strictly additive: stripping it reproduces the exact
  // bytes of the trace-off response (modulo the nondeterministic cursor,
  // as everywhere in this file).
  request.include_trace = false;
  Result<SearchResponse> plain = coordinator.Search(request);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_EQ(plain.value().trace, nullptr);
  SearchResponse stripped = actual.value();
  stripped.trace.reset();
  ExpectPageIdentical(plain.value(), stripped, "trace stripped");
}

TEST_F(CoordinatorTest, ExplicitSelectionsMatchAcrossShardsAndOrderings) {
  Coordinator coordinator(Map(), CoordinatorConfig{});
  const std::vector<std::vector<DocumentId>> selections = {
      {0, 1, 2},        // shard 0 only
      {3, 4, 5},        // shard 1 only
      {1, 4},           // one from each
      {4, 1, 3, 0},     // interleaved, out of id order
      {5, 4, 3, 2, 1, 0},  // everything, reversed
      {2},              // single document (result-set-relative ranking)
  };
  for (const auto& selection : selections) {
    for (bool rank : {false, true}) {
      SearchRequest request = DeterministicRequest("apple berry", rank, 4);
      request.documents = selection;
      const std::string what =
          "selection of " + std::to_string(selection.size()) +
          (rank ? " ranked" : "");
      ExpectWalkIdentical(coordinator, request, what);
    }
  }
}

TEST_F(CoordinatorTest, SelectionErrorsMatchTheSingleNodeMessages) {
  Coordinator coordinator(Map(), CoordinatorConfig{});
  {
    SearchRequest request = DeterministicRequest("apple", false, 10);
    request.documents = {1, 99};
    Result<SearchResponse> expected = union_db_.Search(request);
    Result<SearchResponse> actual = coordinator.Search(request);
    ASSERT_FALSE(expected.ok());
    ASSERT_FALSE(actual.ok());
    EXPECT_EQ(actual.status().code(), StatusCode::kNotFound);
    EXPECT_EQ(actual.status().message(), expected.status().message());
  }
  {
    SearchRequest request = DeterministicRequest("apple", false, 10);
    request.documents = {2, 2};
    Result<SearchResponse> expected = union_db_.Search(request);
    Result<SearchResponse> actual = coordinator.Search(request);
    ASSERT_FALSE(expected.ok());
    ASSERT_FALSE(actual.ok());
    EXPECT_EQ(actual.status().code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(actual.status().message(), expected.status().message());
  }
}

TEST_F(CoordinatorTest, ShardLocalNotFoundIsRewrittenToTheGlobalId) {
  // Remove a document on shard 1 only: global id 4 (= local id 1 there)
  // becomes a tombstone the coordinator's roster still routes to the shard.
  // The shard's local-id NotFound must come back in the client's global
  // terms.
  ASSERT_TRUE(shard1_db_.RemoveDocument("doc-4").ok());
  Coordinator coordinator(Map(), CoordinatorConfig{});
  SearchRequest request = DeterministicRequest("apple", false, 10);
  request.documents = {4};
  Result<SearchResponse> actual = coordinator.Search(request);
  ASSERT_FALSE(actual.ok());
  EXPECT_EQ(actual.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(actual.status().message(), "unknown document id 4");
}

// ---------------------------------------------------------------------------
// Epoch agreement.
// ---------------------------------------------------------------------------

TEST_F(CoordinatorTest, CursorReplayAfterShardMutationIsFailedPrecondition) {
  Coordinator coordinator(Map(), CoordinatorConfig{});
  for (bool rank : {false, true}) {
    SearchRequest request = DeterministicRequest("apple", rank, 2);
    Result<SearchResponse> first = coordinator.Search(request);
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    ASSERT_FALSE(first.value().next_cursor.empty());

    // One shard's corpus moves between pages (epoch bump on shard 0).
    ASSERT_TRUE(shard0_db_
                    .AddDocument("extra-" + std::to_string(rank),
                                 RandomDocument(7000 + rank, 20))
                    .ok());

    request.cursor = first.value().next_cursor;
    Result<SearchResponse> replay = coordinator.Search(request);
    ASSERT_FALSE(replay.ok()) << "replay across a mutation must fail";
    EXPECT_EQ(replay.status().code(), StatusCode::kFailedPrecondition);
    EXPECT_NE(replay.status().message().find("corpus changed"),
              std::string::npos)
        << replay.status().message();
  }
  EXPECT_GE(coordinator.stats().epoch_mismatches, 2u);
}

TEST_F(CoordinatorTest, CursorFromAnotherLayoutIsRejected) {
  Coordinator coordinator(Map(), CoordinatorConfig{});
  SearchRequest request = DeterministicRequest("apple", false, 2);
  Result<SearchResponse> first = coordinator.Search(request);
  ASSERT_TRUE(first.ok());
  ASSERT_FALSE(first.value().next_cursor.empty());

  // Same fields, one epoch entry instead of two: a cursor minted under a
  // different shard count never reaches the fingerprint check.
  auto cursor = DecodeCoordCursor(first.value().next_cursor);
  ASSERT_TRUE(cursor.ok());
  CoordCursor foreign = cursor.value();
  foreign.epochs.resize(1);
  request.cursor = EncodeCoordCursor(foreign);
  Result<SearchResponse> replay = coordinator.Search(request);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kInvalidArgument);

  // A different request under the same layout: wrong fingerprint.
  SearchRequest other = DeterministicRequest("cedar", false, 2);
  other.cursor = first.value().next_cursor;
  Result<SearchResponse> mismatch = coordinator.Search(other);
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(mismatch.status().message().find("does not belong"),
            std::string::npos);
}

TEST_F(CoordinatorTest, HealthAggregatesTheRoster) {
  Coordinator coordinator(Map(), CoordinatorConfig{});
  EXPECT_EQ(coordinator.Health().document_count, 0u)
      << "health must be all-zero before any roster sweep";
  ASSERT_TRUE(coordinator.RefreshRoster(CancelToken()).ok());
  const HealthReply health = coordinator.Health();
  EXPECT_EQ(health.document_count, kDocs);
  EXPECT_EQ(health.epoch, 1u);
  EXPECT_EQ(coordinator.stats().roster_refreshes, 1u);
  EXPECT_EQ(coordinator.shard_health(0), ShardHealth::kHealthy);
  EXPECT_EQ(coordinator.shard_health(1), ShardHealth::kHealthy);
}

// ---------------------------------------------------------------------------
// Failure policy: never partial.
// ---------------------------------------------------------------------------

TEST_F(CoordinatorTest, DeadShardFailsTheWholeQueryWithUnavailable) {
  Coordinator coordinator(Map(), FastConfig());
  // Prove the fleet answers, then kill shard 1.
  SearchRequest request = DeterministicRequest("apple", false, 10);
  ASSERT_TRUE(coordinator.Search(request).ok());
  shard1_server_->Shutdown();

  Result<SearchResponse> outcome = coordinator.Search(request);
  ASSERT_FALSE(outcome.ok()) << "a dead shard must never yield a partial "
                                "merge";
  EXPECT_EQ(outcome.status().code(), StatusCode::kUnavailable);

  // A query routed entirely to the live shard still succeeds.
  SearchRequest live = DeterministicRequest("apple", false, 10);
  live.documents = {0, 1, 2};
  Result<SearchResponse> survived = coordinator.Search(live);
  EXPECT_TRUE(survived.ok()) << survived.status().ToString();

  const CoordStats stats = coordinator.stats();
  EXPECT_GE(stats.degraded, 1u);
  EXPECT_GE(stats.failed, 1u);
}

TEST_F(CoordinatorTest, SlowShardFailsTheWholeQueryWithDeadlineExceeded) {
  // Rebuild the fleet with shard 1 configured to linger far past the
  // query deadline (its batch never fills), making it deterministically
  // "slow" rather than dead.
  shard0_server_->Shutdown();
  shard1_server_->Shutdown();
  ServerConfig slow;
  slow.service.batch_max = 64;
  slow.service.batch_linger_ms = 2000;
  shard0_server_ = std::make_unique<XksServer>(&shard0_db_, ServerConfig{});
  shard1_server_ = std::make_unique<XksServer>(&shard1_db_, slow);
  ASSERT_TRUE(shard0_server_->Start().ok());
  ASSERT_TRUE(shard1_server_->Start().ok());

  Coordinator coordinator(Map(), CoordinatorConfig{});
  SearchRequest request = DeterministicRequest("apple", false, 10);
  request.deadline_ms = 100;
  Result<SearchResponse> outcome = coordinator.Search(request);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(coordinator.stats().degraded, 1u);
}

TEST_F(CoordinatorTest, ShardRestartReconnectsTransparently) {
  Coordinator coordinator(Map(), FastConfig());
  SearchRequest request = DeterministicRequest("apple", false, 10);
  Result<SearchResponse> before = coordinator.Search(request);
  ASSERT_TRUE(before.ok());

  // Bounce shard 1 on the SAME port (the roster is static).
  const uint16_t port = shard1_server_->port();
  shard1_server_->Shutdown();
  ASSERT_FALSE(coordinator.Search(request).ok());
  ServerConfig config;
  config.port = port;
  shard1_server_ = std::make_unique<XksServer>(&shard1_db_, config);
  ASSERT_TRUE(shard1_server_->Start().ok());

  Result<SearchResponse> after = coordinator.Search(request);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ExpectPageIdentical(before.value(), after.value(), "post-restart");
  EXPECT_GE(coordinator.channel_stats(1).connects, 2u);
  EXPECT_GE(coordinator.channel_stats(1).connection_losses, 1u);
}

// ---------------------------------------------------------------------------
// Concurrency (the TSan target): queries racing reconnects and sweeps.
// ---------------------------------------------------------------------------

TEST_F(CoordinatorTest, ConcurrentQueriesSurviveShardChurn) {
  Coordinator coordinator(Map(), FastConfig());
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> merged_ok{0};

  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      const char* queries[] = {"apple berry", "cedar", "fig"};
      uint64_t round = 0;
      while (!stop.load(std::memory_order_acquire)) {
        SearchRequest request = DeterministicRequest(
            queries[(t + round) % 3], /*rank=*/(t + round) % 2 == 0,
            /*top_k=*/3);
        if ((t + round) % 4 == 0) request.documents = {1, 4};
        ++round;
        Result<SearchResponse> outcome = coordinator.Search(request);
        if (outcome.ok()) {
          merged_ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          // Shard churn may only surface as whole-query Unavailable /
          // DeadlineExceeded — anything else is a merge bug.
          EXPECT_TRUE(outcome.status().code() == StatusCode::kUnavailable ||
                      outcome.status().code() ==
                          StatusCode::kDeadlineExceeded)
              << outcome.status().ToString();
        }
      }
    });
  }
  std::thread sweeper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      static_cast<void>(coordinator.RefreshRoster(CancelToken()));
      static_cast<void>(coordinator.Health());
      static_cast<void>(coordinator.stats());
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  // Bounce shard 1 under load, twice.
  const uint16_t port = shard1_server_->port();
  for (int bounce = 0; bounce < 2; ++bounce) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    shard1_server_->Shutdown();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ServerConfig config;
    config.port = port;
    shard1_server_ = std::make_unique<XksServer>(&shard1_db_, config);
    ASSERT_TRUE(shard1_server_->Start().ok());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true, std::memory_order_release);
  for (std::thread& worker : workers) worker.join();
  sweeper.join();
  EXPECT_GT(merged_ok.load(), 0u) << "no query ever merged under churn";
}

// ---------------------------------------------------------------------------
// The daemon stack end to end: CoordBackend behind a real XksServer.
// ---------------------------------------------------------------------------

TEST_F(CoordinatorTest, CoordDaemonServesTheSameWireProtocol) {
  Coordinator coordinator(Map(), CoordinatorConfig{});
  CoordBackend backend(&coordinator, CoordBackendConfig{});
  XksServer front(&backend, ServerConfig{});
  ASSERT_TRUE(front.Start().ok());

  auto connected = XksClient::Connect("127.0.0.1", front.port());
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  XksClient client = std::move(connected).value();

  // Byte identity holds through the full daemon stack: client → coord
  // server → CoordBackend → Coordinator → shard servers and back.
  SearchRequest request = DeterministicRequest("apple berry", true, 4);
  Result<SearchResponse> expected = union_db_.Search(request);
  ASSERT_TRUE(expected.ok());
  auto reply = client.Call(request);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_TRUE(reply.value().outcome.ok())
      << reply.value().outcome.status().ToString();
  ExpectPageIdentical(expected.value(), reply.value().outcome.value(),
                      "daemon stack");

  // The health frame reports the union corpus once the roster is known.
  ASSERT_TRUE(coordinator.RefreshRoster(CancelToken()).ok());
  Frame ping;
  ping.kind = FrameKind::kHealthCheck;
  ping.request_id = 99;
  ping.body = EncodeHealthCheck();
  ASSERT_TRUE(client.SendFrame(ping).ok());
  Result<Frame> pong = client.ReceiveFrame();
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  ASSERT_EQ(pong.value().kind, FrameKind::kHealthReply);
  Result<HealthReply> health = DecodeHealthReply(pong.value().body);
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health.value().document_count, kDocs);

  // Drain: admitted queries finish, later ones are shed Unavailable.
  front.Shutdown();
  const ServiceStats stats = front.service_stats();
  EXPECT_EQ(stats.completed, stats.admitted);
}

}  // namespace
}  // namespace xks
