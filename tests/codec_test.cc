#include "src/common/codec.h"

#include <gtest/gtest.h>

namespace xks {
namespace {

TEST(CodecTest, Varint64RoundTrip) {
  const uint64_t values[] = {0,      1,        127,        128,
                             16383,  16384,    (1ULL << 32), UINT64_MAX};
  std::string buf;
  for (uint64_t v : values) PutVarint64(&buf, v);
  ByteReader reader(buf);
  for (uint64_t expected : values) {
    Result<uint64_t> v = reader.ReadVarint64();
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, expected);
  }
  EXPECT_TRUE(reader.done());
}

TEST(CodecTest, Varint32RoundTrip) {
  std::string buf;
  PutVarint32(&buf, 0);
  PutVarint32(&buf, UINT32_MAX);
  ByteReader reader(buf);
  Result<uint32_t> a = reader.ReadVarint32();
  Result<uint32_t> b = reader.ReadVarint32();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, 0u);
  EXPECT_EQ(*b, UINT32_MAX);
}

TEST(CodecTest, Varint32RejectsOverflow) {
  std::string buf;
  PutVarint64(&buf, uint64_t{UINT32_MAX} + 1);
  ByteReader reader(buf);
  EXPECT_EQ(reader.ReadVarint32().status().code(), StatusCode::kCorruption);
}

TEST(CodecTest, SmallVarintsAreOneByte) {
  std::string buf;
  PutVarint64(&buf, 127);
  EXPECT_EQ(buf.size(), 1u);
  PutVarint64(&buf, 128);
  EXPECT_EQ(buf.size(), 3u);  // +2 bytes
}

TEST(CodecTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(1000, 'x'));
  ByteReader reader(buf);
  Result<std::string> s = reader.ReadLengthPrefixedString();
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, "hello");
  s = reader.ReadLengthPrefixedString();
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, "");
  s = reader.ReadLengthPrefixedString();
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), 1000u);
  EXPECT_TRUE(reader.done());
}

TEST(CodecTest, TruncatedVarintFails) {
  std::string buf;
  PutVarint64(&buf, 1 << 20);
  buf.resize(buf.size() - 1);
  ByteReader reader(buf);
  EXPECT_EQ(reader.ReadVarint64().status().code(), StatusCode::kCorruption);
}

TEST(CodecTest, TruncatedStringFails) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello world");
  buf.resize(buf.size() - 3);
  ByteReader reader(buf);
  EXPECT_EQ(reader.ReadLengthPrefixedString().status().code(),
            StatusCode::kCorruption);
}

TEST(CodecTest, EmptyBufferFails) {
  ByteReader reader("");
  EXPECT_FALSE(reader.ReadVarint64().ok());
  EXPECT_TRUE(reader.done());
}

TEST(CodecTest, RemainingTracksPosition) {
  std::string buf;
  PutVarint64(&buf, 5);
  PutVarint64(&buf, 6);
  ByteReader reader(buf);
  EXPECT_EQ(reader.remaining(), 2u);
  ASSERT_TRUE(reader.ReadVarint64().ok());
  EXPECT_EQ(reader.remaining(), 1u);
}

TEST(CodecTest, MalformedUnterminatedVarint) {
  // Ten continuation bytes: varint too long.
  std::string buf(10, '\x80');
  ByteReader reader(buf);
  EXPECT_EQ(reader.ReadVarint64().status().code(), StatusCode::kCorruption);
}

TEST(CodecTest, FixedU32BERoundTrip) {
  std::string buf;
  PutFixedU32BE(&buf, 0x01020304u);
  PutFixedU32BE(&buf, 0);
  PutFixedU32BE(&buf, UINT32_MAX);
  ASSERT_EQ(buf.size(), 12u);
  EXPECT_EQ(static_cast<uint8_t>(buf[0]), 0x01);
  EXPECT_EQ(static_cast<uint8_t>(buf[3]), 0x04);
  ByteReader reader(buf);
  Result<uint32_t> a = reader.ReadFixedU32BE();
  Result<uint32_t> b = reader.ReadFixedU32BE();
  Result<uint32_t> c = reader.ReadFixedU32BE();
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(*a, 0x01020304u);
  EXPECT_EQ(*b, 0u);
  EXPECT_EQ(*c, UINT32_MAX);
  EXPECT_TRUE(reader.done());
}

}  // namespace
}  // namespace xks
