#include "src/common/codec.h"

#include <gtest/gtest.h>

namespace xks {
namespace {

TEST(CodecTest, Varint64RoundTrip) {
  const uint64_t values[] = {0,      1,        127,        128,
                             16383,  16384,    (1ULL << 32), UINT64_MAX};
  std::string buf;
  for (uint64_t v : values) PutVarint64(&buf, v);
  Decoder dec(buf);
  for (uint64_t expected : values) {
    uint64_t v = 0;
    ASSERT_TRUE(dec.GetVarint64(&v).ok());
    EXPECT_EQ(v, expected);
  }
  EXPECT_TRUE(dec.done());
}

TEST(CodecTest, Varint32RoundTrip) {
  std::string buf;
  PutVarint32(&buf, 0);
  PutVarint32(&buf, UINT32_MAX);
  Decoder dec(buf);
  uint32_t a = 1, b = 0;
  ASSERT_TRUE(dec.GetVarint32(&a).ok());
  ASSERT_TRUE(dec.GetVarint32(&b).ok());
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, UINT32_MAX);
}

TEST(CodecTest, Varint32RejectsOverflow) {
  std::string buf;
  PutVarint64(&buf, uint64_t{UINT32_MAX} + 1);
  Decoder dec(buf);
  uint32_t v = 0;
  EXPECT_EQ(dec.GetVarint32(&v).code(), StatusCode::kCorruption);
}

TEST(CodecTest, SmallVarintsAreOneByte) {
  std::string buf;
  PutVarint64(&buf, 127);
  EXPECT_EQ(buf.size(), 1u);
  PutVarint64(&buf, 128);
  EXPECT_EQ(buf.size(), 3u);  // +2 bytes
}

TEST(CodecTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(1000, 'x'));
  Decoder dec(buf);
  std::string s;
  ASSERT_TRUE(dec.GetLengthPrefixed(&s).ok());
  EXPECT_EQ(s, "hello");
  ASSERT_TRUE(dec.GetLengthPrefixed(&s).ok());
  EXPECT_EQ(s, "");
  ASSERT_TRUE(dec.GetLengthPrefixed(&s).ok());
  EXPECT_EQ(s.size(), 1000u);
  EXPECT_TRUE(dec.done());
}

TEST(CodecTest, TruncatedVarintFails) {
  std::string buf;
  PutVarint64(&buf, 1 << 20);
  buf.resize(buf.size() - 1);
  Decoder dec(buf);
  uint64_t v = 0;
  EXPECT_EQ(dec.GetVarint64(&v).code(), StatusCode::kCorruption);
}

TEST(CodecTest, TruncatedStringFails) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello world");
  buf.resize(buf.size() - 3);
  Decoder dec(buf);
  std::string s;
  EXPECT_EQ(dec.GetLengthPrefixed(&s).code(), StatusCode::kCorruption);
}

TEST(CodecTest, EmptyBufferFails) {
  Decoder dec("");
  uint64_t v = 0;
  EXPECT_FALSE(dec.GetVarint64(&v).ok());
  EXPECT_TRUE(dec.done());
}

TEST(CodecTest, RemainingTracksPosition) {
  std::string buf;
  PutVarint64(&buf, 5);
  PutVarint64(&buf, 6);
  Decoder dec(buf);
  EXPECT_EQ(dec.remaining(), 2u);
  uint64_t v;
  ASSERT_TRUE(dec.GetVarint64(&v).ok());
  EXPECT_EQ(dec.remaining(), 1u);
}

TEST(CodecTest, MalformedUnterminatedVarint) {
  // Ten continuation bytes: varint too long.
  std::string buf(10, '\x80');
  Decoder dec(buf);
  uint64_t v = 0;
  EXPECT_EQ(dec.GetVarint64(&v).code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace xks
