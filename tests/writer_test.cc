#include "src/xml/writer.h"

#include <gtest/gtest.h>

#include "src/xml/parser.h"

namespace xks {
namespace {

TEST(WriterTest, EscapeText) {
  EXPECT_EQ(EscapeXmlText("a<b>&c"), "a&lt;b&gt;&amp;c");
  EXPECT_EQ(EscapeXmlText("plain"), "plain");
  EXPECT_EQ(EscapeXmlText("\"quotes\""), "\"quotes\"");  // fine in text
}

TEST(WriterTest, EscapeAttribute) {
  EXPECT_EQ(EscapeXmlAttribute("a\"b"), "a&quot;b");
  EXPECT_EQ(EscapeXmlAttribute("<&>"), "&lt;&amp;&gt;");
}

TEST(WriterTest, CompactOutput) {
  Document doc;
  NodeId root = *doc.CreateRoot("a");
  NodeId b = doc.AddNode(root, "b");
  doc.AppendText(b, "x");
  doc.AddNode(root, "c");
  doc.AssignDeweys();
  WriteOptions options;
  options.indent = "";
  EXPECT_EQ(WriteXml(doc, options), "<a><b>x</b><c/></a>");
}

TEST(WriterTest, PrettyOutput) {
  Document doc;
  NodeId root = *doc.CreateRoot("a");
  doc.AddNode(root, "b");
  doc.AssignDeweys();
  EXPECT_EQ(WriteXml(doc), "<a>\n  <b/>\n</a>\n");
}

TEST(WriterTest, AttributesEscaped) {
  Document doc;
  NodeId root = *doc.CreateRoot("a");
  doc.AddAttribute(root, "x", "v<1>&\"2\"");
  doc.AssignDeweys();
  WriteOptions options;
  options.indent = "";
  EXPECT_EQ(WriteXml(doc, options), "<a x=\"v&lt;1&gt;&amp;&quot;2&quot;\"/>");
}

TEST(WriterTest, Declaration) {
  Document doc;
  (void)*doc.CreateRoot("a");
  doc.AssignDeweys();
  WriteOptions options;
  options.indent = "";
  options.declaration = true;
  EXPECT_EQ(WriteXml(doc, options),
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?><a/>");
}

TEST(WriterTest, SubtreeSerialization) {
  Result<Document> doc = ParseXml("<a><b><c>deep</c></b><d/></a>");
  ASSERT_TRUE(doc.ok());
  NodeId b = *doc->FindByDewey(Dewey{0, 0});
  WriteOptions options;
  options.indent = "";
  EXPECT_EQ(WriteXml(*doc, b, options), "<b><c>deep</c></b>");
}

TEST(WriterTest, RoundTripThroughParser) {
  const std::string original =
      R"(<lib count="2"><book id="a&amp;1"><title>X &lt; Y</title></book>)"
      R"(<book id="b"><title>Z</title><note>n1 n2</note></book></lib>)";
  Result<Document> doc = ParseXml(original);
  ASSERT_TRUE(doc.ok());
  WriteOptions options;
  options.indent = "";
  std::string written = WriteXml(*doc, options);
  Result<Document> reparsed = ParseXml(written);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(doc->size(), reparsed->size());
  // Compare structure node by node.
  for (size_t i = 0; i < doc->size(); ++i) {
    NodeId id = static_cast<NodeId>(i);
    EXPECT_EQ(doc->node(id).label, reparsed->node(id).label);
    EXPECT_EQ(doc->node(id).text, reparsed->node(id).text);
    EXPECT_EQ(doc->node(id).attributes, reparsed->node(id).attributes);
    EXPECT_EQ(doc->node(id).dewey, reparsed->node(id).dewey);
  }
}

TEST(WriterTest, TextWithChildrenKeepsTextBeforeChildren) {
  Result<Document> doc = ParseXml("<a>lead<b/></a>");
  ASSERT_TRUE(doc.ok());
  WriteOptions options;
  options.indent = "";
  EXPECT_EQ(WriteXml(*doc, options), "<a>lead<b/></a>");
}

}  // namespace
}  // namespace xks
