// Shared helpers for randomized property tests.

#ifndef XKS_TESTS_TEST_UTIL_H_
#define XKS_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/index/inverted_index.h"
#include "src/lca/lca.h"
#include "src/xml/dewey.h"
#include "src/xml/dom.h"

namespace xks {

/// A random prefix-closed Dewey set (a tree shape), sorted in document
/// order. Root is always present.
inline std::vector<Dewey> RandomTreeNodes(Rng* rng, size_t target_count,
                                          uint32_t max_fanout, size_t max_depth) {
  std::vector<Dewey> nodes = {Dewey::Root()};
  std::map<Dewey, uint32_t> child_count;
  while (nodes.size() < target_count) {
    const Dewey& parent = nodes[rng->Uniform(nodes.size())];
    if (parent.depth() >= max_depth) continue;
    uint32_t& count = child_count[parent];
    if (count >= max_fanout) continue;
    nodes.push_back(parent.Child(count));
    ++count;
  }
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

/// A sorted random subset of `nodes`, each node kept with probability `p`;
/// guaranteed non-empty (one node is forced in when the draw is empty).
inline PostingList RandomPostings(Rng* rng, const std::vector<Dewey>& nodes,
                                  double p) {
  PostingList list;
  for (const Dewey& d : nodes) {
    if (rng->Bernoulli(p)) list.push_back(d);
  }
  if (list.empty()) list.push_back(nodes[rng->Uniform(nodes.size())]);
  std::sort(list.begin(), list.end());
  return list;
}

/// Builds `k` random posting lists over one random tree.
struct RandomLcaInstance {
  std::vector<Dewey> tree;
  std::vector<PostingList> lists;

  KeywordLists Views() const {
    KeywordLists views;
    for (const PostingList& list : lists) views.push_back(&list);
    return views;
  }
};

inline RandomLcaInstance MakeRandomLcaInstance(uint64_t seed, size_t tree_size,
                                               size_t k, double density) {
  Rng rng(seed);
  RandomLcaInstance instance;
  instance.tree = RandomTreeNodes(&rng, tree_size, /*max_fanout=*/4,
                                  /*max_depth=*/7);
  for (size_t i = 0; i < k; ++i) {
    instance.lists.push_back(RandomPostings(&rng, instance.tree, density));
  }
  return instance;
}

/// A random small Document whose node labels and one-word texts are drawn
/// from tiny pools, for end-to-end engine property tests. Small pools make
/// label collisions and duplicate contents (the valid-contributor corner
/// cases) common.
inline Document RandomDocument(uint64_t seed, size_t target_count) {
  Rng rng(seed);
  static const std::vector<std::string> kLabels = {"r", "x", "y", "z", "w"};
  static const std::vector<std::string> kWords = {"apple",  "berry", "cedar",
                                                  "dune",   "ember", "fig"};
  Document doc;
  NodeId root = *doc.CreateRoot("r");
  std::vector<NodeId> ids = {root};
  while (doc.size() < target_count) {
    NodeId parent = ids[rng.Uniform(ids.size())];
    NodeId child = doc.AddNode(parent, rng.Choice(kLabels));
    if (rng.Bernoulli(0.7)) doc.AppendText(child, rng.Choice(kWords));
    if (rng.Bernoulli(0.2)) doc.AppendText(child, rng.Choice(kWords));
    ids.push_back(child);
  }
  doc.AssignDeweys();
  return doc;
}

}  // namespace xks

#endif  // XKS_TESTS_TEST_UTIL_H_
