#include "src/common/string_util.h"

#include <gtest/gtest.h>

namespace xks {
namespace {

TEST(AsciiLowerTest, LowersOnlyAsciiLetters) {
  EXPECT_EQ(AsciiLower("XML Keyword"), "xml keyword");
  EXPECT_EQ(AsciiLower("already"), "already");
  EXPECT_EQ(AsciiLower("MiXeD123!"), "mixed123!");
  EXPECT_EQ(AsciiLower(""), "");
}

TEST(IsAlnumAsciiTest, Classification) {
  EXPECT_TRUE(IsAlnumAscii('a'));
  EXPECT_TRUE(IsAlnumAscii('Z'));
  EXPECT_TRUE(IsAlnumAscii('0'));
  EXPECT_TRUE(IsAlnumAscii('9'));
  EXPECT_FALSE(IsAlnumAscii(' '));
  EXPECT_FALSE(IsAlnumAscii('-'));
  EXPECT_FALSE(IsAlnumAscii('\0'));
}

TEST(SplitStringTest, BasicSplit) {
  std::vector<std::string> parts = SplitString("a,b,c", ",");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitStringTest, DropsEmptyPieces) {
  EXPECT_EQ(SplitString(",,a,,b,,", ",").size(), 2u);
  EXPECT_TRUE(SplitString("", ",").empty());
  EXPECT_TRUE(SplitString(",,,", ",").empty());
}

TEST(SplitStringTest, MultipleDelimiters) {
  std::vector<std::string> parts = SplitString("a b\tc\nd", " \t\n");
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[3], "d");
}

TEST(JoinStringsTest, Joins) {
  EXPECT_EQ(JoinStrings({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(JoinStrings({"solo"}, ","), "solo");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(TrimWhitespaceTest, TrimsBothEnds) {
  EXPECT_EQ(TrimWhitespace("  abc  "), "abc");
  EXPECT_EQ(TrimWhitespace("\t\n abc"), "abc");
  EXPECT_EQ(TrimWhitespace("abc"), "abc");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace(" a b "), "a b");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("keyword search", "keyword"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("abc", "abcd"));
  EXPECT_FALSE(StartsWith("abc", "b"));
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%zu", static_cast<size_t>(7)), "7");
  EXPECT_EQ(StrFormat("plain"), "plain");
  EXPECT_EQ(StrFormat("%05.2f", 3.14159), "03.14");
}

}  // namespace
}  // namespace xks
