// WorkerPool / ParallelFor unit tests: queue draining, backpressure,
// Status propagation, cooperative stop, exception containment, and the
// contiguous-executed-prefix guarantee the corpus scan depends on.

#include "src/common/worker_pool.h"

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace xks {
namespace {

TEST(WorkerPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> counter{0};
  {
    WorkerPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.WaitIdle();
    EXPECT_EQ(counter.load(), 100);
  }
}

TEST(WorkerPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    WorkerPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No WaitIdle: destruction itself must run everything already queued.
  }
  EXPECT_EQ(counter.load(), 64);
}

TEST(WorkerPoolTest, BoundedQueueBackpressureStillCompletes) {
  std::atomic<int> counter{0};
  {
    // Capacity far below the submission count forces Submit to block.
    WorkerPool pool(2, /*queue_capacity=*/2);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.WaitIdle();
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(WorkerPoolTest, SurvivesThrowingTasks) {
  std::atomic<int> counter{0};
  {
    WorkerPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([] { throw std::runtime_error("task boom"); });
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.WaitIdle();
  }
  // Every non-throwing task still ran: the workers outlived the throwers.
  EXPECT_EQ(counter.load(), 10);
}

TEST(WorkerPoolTest, AtLeastOneThread) {
  WorkerPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(WorkerPoolTest, DefaultParallelismIsPositive) {
  EXPECT_GE(WorkerPool::DefaultParallelism(), 1u);
}

TEST(ParallelForTest, ZeroTasksSucceedImmediately) {
  Result<size_t> executed =
      ParallelFor(0, [](size_t) { return Status::OK(); });
  ASSERT_TRUE(executed.ok());
  EXPECT_EQ(*executed, 0u);
}

TEST(ParallelForTest, MoreTasksThanWorkersRunExactlyOnce) {
  constexpr size_t kCount = 500;
  std::vector<std::atomic<int>> runs(kCount);
  ParallelForOptions options;
  options.max_parallelism = 4;
  Result<size_t> executed = ParallelFor(
      kCount,
      [&runs](size_t i) {
        runs[i].fetch_add(1);
        return Status::OK();
      },
      options);
  ASSERT_TRUE(executed.ok());
  EXPECT_EQ(*executed, kCount);
  for (size_t i = 0; i < kCount; ++i) EXPECT_EQ(runs[i].load(), 1) << i;
}

TEST(ParallelForTest, PropagatesLowestIndexError) {
  ParallelForOptions options;
  options.max_parallelism = 4;
  Result<size_t> executed = ParallelFor(
      100,
      [](size_t i) {
        if (i == 17) return Status::NotFound("doc 17 vanished");
        if (i == 60) return Status::Internal("doc 60 exploded");
        return Status::OK();
      },
      options);
  ASSERT_FALSE(executed.ok());
  // Index 17 always runs (dispatch is ordered and 60 > 17 cannot halt
  // dispatch before 17 was claimed), so its error wins.
  EXPECT_EQ(executed.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(executed.status().message(), "doc 17 vanished");
}

TEST(ParallelForTest, SerialErrorStopsLaterIndices) {
  std::atomic<size_t> highest{0};
  ParallelForOptions options;
  options.max_parallelism = 1;
  Result<size_t> executed = ParallelFor(
      100,
      [&highest](size_t i) -> Status {
        highest.store(i);
        if (i == 5) return Status::Internal("stop here");
        return Status::OK();
      },
      options);
  ASSERT_FALSE(executed.ok());
  EXPECT_EQ(highest.load(), 5u);
}

TEST(ParallelForTest, ExceptionsBecomeInternalStatus) {
  ParallelForOptions options;
  options.max_parallelism = 2;
  Result<size_t> executed = ParallelFor(
      10,
      [](size_t i) -> Status {
        if (i == 3) throw std::runtime_error("body boom");
        return Status::OK();
      },
      options);
  ASSERT_FALSE(executed.ok());
  EXPECT_EQ(executed.status().code(), StatusCode::kInternal);
}

TEST(ParallelForTest, StopPredicateHaltsDispatch) {
  std::atomic<size_t> done{0};
  ParallelForOptions options;
  options.max_parallelism = 2;
  options.stop = [&done] { return done.load() >= 10; };
  Result<size_t> executed = ParallelFor(
      10000,
      [&done](size_t) {
        done.fetch_add(1);
        return Status::OK();
      },
      options);
  ASSERT_TRUE(executed.ok());
  // Dispatch stops soon after the threshold: well short of the full range
  // (each in-flight worker may add at most a few overshoot indices).
  EXPECT_GE(*executed, 10u);
  EXPECT_LT(*executed, 10000u);
  EXPECT_EQ(done.load(), *executed);
}

TEST(ParallelForTest, ExecutedSetIsAContiguousPrefix) {
  std::mutex mutex;
  std::set<size_t> seen;
  std::atomic<size_t> done{0};
  ParallelForOptions options;
  options.max_parallelism = 8;
  options.stop = [&done] { return done.load() >= 25; };
  Result<size_t> executed = ParallelFor(
      1000,
      [&](size_t i) {
        {
          std::lock_guard<std::mutex> lock(mutex);
          seen.insert(i);
        }
        done.fetch_add(1);
        return Status::OK();
      },
      options);
  ASSERT_TRUE(executed.ok());
  ASSERT_EQ(seen.size(), *executed);
  // Every index below the returned count ran: no holes.
  for (size_t i = 0; i < *executed; ++i) {
    EXPECT_TRUE(seen.contains(i)) << "hole at " << i;
  }
}

TEST(ParallelForTest, ParallelismOneMatchesSerialSemantics) {
  std::vector<size_t> order;
  ParallelForOptions options;
  options.max_parallelism = 1;
  size_t calls = 0;
  options.stop = [&calls] { return calls >= 3; };
  Result<size_t> executed = ParallelFor(
      10,
      [&](size_t i) {
        order.push_back(i);
        ++calls;
        return Status::OK();
      },
      options);
  ASSERT_TRUE(executed.ok());
  EXPECT_EQ(*executed, 3u);
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2}));
}

}  // namespace
}  // namespace xks
