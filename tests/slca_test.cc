#include "src/lca/slca.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace xks {
namespace {

PostingList MakeList(std::initializer_list<std::initializer_list<uint32_t>> codes) {
  PostingList list;
  for (auto code : codes) list.emplace_back(std::vector<uint32_t>(code));
  return list;
}

using SlcaFn = std::vector<Dewey> (*)(const KeywordLists&);

class SlcaAlgorithmTest : public ::testing::TestWithParam<SlcaFn> {};

TEST_P(SlcaAlgorithmTest, EmptyInputs) {
  SlcaFn slca = GetParam();
  EXPECT_TRUE(slca({}).empty());
  PostingList a = MakeList({{0, 1}});
  PostingList empty;
  EXPECT_TRUE(slca({&a, &empty}).empty());
}

TEST_P(SlcaAlgorithmTest, SingleKeywordDeepestNodes) {
  SlcaFn slca = GetParam();
  // Nested keyword nodes: only the deepest-in-chain survive.
  PostingList w1 = MakeList({{0, 1}, {0, 1, 0}, {0, 2}});
  std::vector<Dewey> result = slca({&w1});
  EXPECT_EQ(result, (std::vector<Dewey>{Dewey{0, 1, 0}, Dewey{0, 2}}));
}

TEST_P(SlcaAlgorithmTest, TwoKeywordsSimpleBranch) {
  SlcaFn slca = GetParam();
  PostingList w1 = MakeList({{0, 0}});
  PostingList w2 = MakeList({{0, 1}});
  EXPECT_EQ(slca({&w1, &w2}), (std::vector<Dewey>{Dewey{0}}));
}

TEST_P(SlcaAlgorithmTest, MinimalityPrunesAncestors) {
  SlcaFn slca = GetParam();
  // Both keywords under 0.2 and also spread at the top: SLCA = {0.2} only?
  // No: w1 at 0.5 with w2 only under 0.2 → the pair (0.5, 0.2.x) has lca 0,
  // but 0 has the contains-all descendant 0.2, so 0 is not an SLCA.
  PostingList w1 = MakeList({{0, 2, 0}, {0, 5}});
  PostingList w2 = MakeList({{0, 2, 1}});
  EXPECT_EQ(slca({&w1, &w2}), (std::vector<Dewey>{Dewey{0, 2}}));
}

TEST_P(SlcaAlgorithmTest, MultipleIndependentSlcas) {
  SlcaFn slca = GetParam();
  PostingList w1 = MakeList({{0, 1, 0}, {0, 3, 0}});
  PostingList w2 = MakeList({{0, 1, 1}, {0, 3, 1}});
  EXPECT_EQ(slca({&w1, &w2}),
            (std::vector<Dewey>{Dewey{0, 1}, Dewey{0, 3}}));
}

TEST_P(SlcaAlgorithmTest, KeywordNodeItselfCanBeSlca) {
  SlcaFn slca = GetParam();
  // One node matches both keywords.
  PostingList w1 = MakeList({{0, 4}});
  PostingList w2 = MakeList({{0, 4}});
  EXPECT_EQ(slca({&w1, &w2}), (std::vector<Dewey>{Dewey{0, 4}}));
}

TEST_P(SlcaAlgorithmTest, AncestorKeywordNodeAbsorbed) {
  SlcaFn slca = GetParam();
  // w1 at 0.2 (ancestor) and w2 at 0.2.3 → SLCA is 0.2 (the pair's LCA),
  // and no deeper node contains both.
  PostingList w1 = MakeList({{0, 2}});
  PostingList w2 = MakeList({{0, 2, 3}});
  EXPECT_EQ(slca({&w1, &w2}), (std::vector<Dewey>{Dewey{0, 2}}));
}

TEST_P(SlcaAlgorithmTest, ThreeKeywords) {
  SlcaFn slca = GetParam();
  PostingList w1 = MakeList({{0, 0, 0}, {0, 1, 0}});
  PostingList w2 = MakeList({{0, 0, 1}, {0, 1, 1}});
  PostingList w3 = MakeList({{0, 1, 2}});
  // Only 0.1 covers all three.
  EXPECT_EQ(slca({&w1, &w2, &w3}), (std::vector<Dewey>{Dewey{0, 1}}));
}

TEST_P(SlcaAlgorithmTest, DuplicateNodeAcrossLists) {
  SlcaFn slca = GetParam();
  PostingList w1 = MakeList({{0, 0}, {0, 1}});
  PostingList w2 = MakeList({{0, 1}, {0, 2}});
  // 0.1 matches both on its own.
  EXPECT_EQ(slca({&w1, &w2}), (std::vector<Dewey>{Dewey{0, 1}}));
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, SlcaAlgorithmTest,
                         ::testing::Values(&SlcaBruteForce, &SlcaIndexedLookup,
                                           &SlcaScanEager, &SlcaStackMerge),
                         [](const ::testing::TestParamInfo<SlcaFn>& info) {
                           if (info.param == &SlcaBruteForce) return "BruteForce";
                           if (info.param == &SlcaIndexedLookup) return "IndexedLookup";
                           if (info.param == &SlcaScanEager) return "ScanEager";
                           return "StackMerge";
                         });

struct RandomCase {
  uint64_t seed;
  size_t tree_size;
  size_t k;
  double density;
};

class SlcaEquivalenceTest : public ::testing::TestWithParam<RandomCase> {};

TEST_P(SlcaEquivalenceTest, AllAlgorithmsAgree) {
  const RandomCase& c = GetParam();
  RandomLcaInstance instance =
      MakeRandomLcaInstance(c.seed, c.tree_size, c.k, c.density);
  KeywordLists lists = instance.Views();
  std::vector<Dewey> brute = SlcaBruteForce(lists);
  EXPECT_EQ(SlcaIndexedLookup(lists), brute) << "seed=" << c.seed;
  EXPECT_EQ(SlcaScanEager(lists), brute) << "seed=" << c.seed;
  EXPECT_EQ(SlcaStackMerge(lists), brute) << "seed=" << c.seed;
}

INSTANTIATE_TEST_SUITE_P(
    RandomSweep, SlcaEquivalenceTest,
    ::testing::Values(RandomCase{1, 20, 2, 0.2}, RandomCase{2, 20, 2, 0.5},
                      RandomCase{3, 50, 2, 0.1}, RandomCase{4, 50, 3, 0.2},
                      RandomCase{5, 80, 3, 0.05}, RandomCase{6, 80, 4, 0.3},
                      RandomCase{7, 120, 2, 0.02}, RandomCase{8, 120, 5, 0.15},
                      RandomCase{9, 200, 3, 0.1}, RandomCase{10, 200, 4, 0.05},
                      RandomCase{11, 300, 2, 0.3}, RandomCase{12, 300, 6, 0.1},
                      RandomCase{13, 60, 3, 0.8}, RandomCase{14, 40, 8, 0.4},
                      RandomCase{15, 500, 3, 0.05}, RandomCase{16, 500, 4, 0.2}),
    [](const ::testing::TestParamInfo<RandomCase>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

TEST(SlcaStressTest, ManySeedsAgainstBruteForce) {
  for (uint64_t seed = 100; seed < 160; ++seed) {
    RandomLcaInstance instance = MakeRandomLcaInstance(
        seed, /*tree_size=*/30 + seed % 50, /*k=*/2 + seed % 3,
        /*density=*/0.05 + 0.02 * static_cast<double>(seed % 10));
    KeywordLists lists = instance.Views();
    std::vector<Dewey> brute = SlcaBruteForce(lists);
    EXPECT_EQ(SlcaIndexedLookup(lists), brute) << "seed=" << seed;
    EXPECT_EQ(SlcaScanEager(lists), brute) << "seed=" << seed;
    EXPECT_EQ(SlcaStackMerge(lists), brute) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace xks
