// Tests for the observability layer (PR 10): the MetricsRegistry instrument
// semantics (bucket boundaries, label keying, snapshot determinism), the
// snapshot/trace wire codecs (roundtrip fixpoint, fail-closed corruption),
// the QueryTrace span builder, and a multi-thread increment hammer (listed
// in the CI ThreadSanitizer job).

#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/obs/trace.h"
#include "src/server/wire.h"

namespace xks {
namespace {

std::string EncodeSnapshot(const MetricsSnapshot& snapshot) {
  std::string bytes;
  AppendMetricsSnapshot(&bytes, snapshot);
  return bytes;
}

// ---------------------------------------------------------------------------
// Instruments and registry keying.

TEST(MetricsRegistryTest, InstrumentPointersAreStableAndKeyed) {
  MetricsRegistry registry;
  Counter* a = registry.counter("xks_test_total");
  Counter* b = registry.counter("xks_test_total");
  EXPECT_EQ(a, b) << "same (name, labels) must resolve to one instrument";

  Counter* labeled = registry.counter("xks_test_total", "shard=\"s1\"");
  EXPECT_NE(a, labeled) << "distinct labels are distinct instruments";
  Counter* other = registry.counter("xks_other_total");
  EXPECT_NE(a, other);

  // Kinds live in separate namespaces: a gauge under a counter's name is a
  // different instrument, not an error.
  Gauge* gauge = registry.gauge("xks_test_total");
  EXPECT_NE(static_cast<void*>(a), static_cast<void*>(gauge));

  a->Increment();
  a->Increment(4);
  EXPECT_EQ(a->value(), 5u);
  labeled->Increment();
  EXPECT_EQ(labeled->value(), 1u) << "labels isolate the counts";

  gauge->Add(10);
  gauge->Add(-3);
  EXPECT_EQ(gauge->value(), 7);
  gauge->Set(-2);
  EXPECT_EQ(gauge->value(), -2) << "gauges may go negative";
}

TEST(MetricsRegistryTest, DefaultLatencyBoundsAreLogScaled) {
  const std::vector<double>& bounds = DefaultLatencyBounds();
  ASSERT_GE(bounds.size(), 8u);
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-6) << "first bound is one microsecond";
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]) << "bounds strictly increase";
    EXPECT_NEAR(bounds[i] / bounds[i - 1], 2.0, 1e-9)
        << "each bucket doubles the previous bound";
  }
  EXPECT_GT(bounds.back(), 8.0) << "top bound covers multi-second latencies";
}

TEST(MetricsRegistryTest, HistogramBucketBoundariesAreInclusiveUpperBounds) {
  MetricsRegistry registry;
  Histogram* histogram = registry.histogram("xks_test_seconds");
  const std::vector<double>& bounds = histogram->bounds();
  ASSERT_GE(bounds.size(), 3u);

  histogram->Observe(bounds[0] / 2);  // below the first bound → bucket 0
  histogram->Observe(bounds[1]);      // exactly ON a bound → that bucket (le)
  histogram->Observe((bounds[1] + bounds[2]) / 2);  // strictly between
  histogram->Observe(bounds.back() * 10);           // overflow bucket

  EXPECT_EQ(histogram->bucket(0), 1u);
  EXPECT_EQ(histogram->bucket(1), 1u)
      << "a value equal to a bound belongs to that bound's bucket";
  EXPECT_EQ(histogram->bucket(2), 1u);
  EXPECT_EQ(histogram->bucket(bounds.size()), 1u) << "overflow bucket";
  EXPECT_EQ(histogram->count(), 4u);
  EXPECT_GT(histogram->sum(), bounds.back() * 10);
}

// ---------------------------------------------------------------------------
// Snapshots.

TEST(MetricsRegistryTest, SnapshotIsDeterministicAndSorted) {
  MetricsRegistry registry;
  // Created in deliberately unsorted order.
  registry.counter("xks_zebra_total")->Increment(1);
  registry.counter("xks_alpha_total", "shard=\"s2\"")->Increment(2);
  registry.counter("xks_alpha_total", "shard=\"s1\"")->Increment(3);
  registry.gauge("xks_middle_gauge")->Set(4);

  const MetricsSnapshot first = registry.Snapshot();
  const MetricsSnapshot second = registry.Snapshot();
  EXPECT_EQ(EncodeSnapshot(first), EncodeSnapshot(second))
      << "a quiescent registry snapshots to identical bytes every time";

  // Families sorted by name; points sorted by label body.
  ASSERT_GE(first.families.size(), 3u);
  for (size_t f = 1; f < first.families.size(); ++f) {
    EXPECT_LT(first.families[f - 1].name, first.families[f].name);
  }
  const MetricFamily* alpha = first.Find("xks_alpha_total");
  ASSERT_NE(alpha, nullptr);
  ASSERT_EQ(alpha->points.size(), 2u);
  EXPECT_EQ(alpha->points[0].labels, "shard=\"s1\"");
  EXPECT_EQ(alpha->points[1].labels, "shard=\"s2\"");
  EXPECT_EQ(alpha->points[0].counter_value, 3u);
  EXPECT_EQ(alpha->points[1].counter_value, 2u);

  EXPECT_EQ(first.CounterTotal("xks_alpha_total"), 5u)
      << "CounterTotal sums the labeled points";
  EXPECT_EQ(first.CounterTotal("xks_absent_total"), 0u);
}

TEST(MetricsRegistryTest, TextExpositionRendersPrometheusShapes) {
  MetricsRegistry registry;
  registry.counter("xks_queries_total")->Increment(7);
  registry.counter("xks_hops_total", "shard=\"127.0.0.1:7700\"")->Increment(2);
  Histogram* histogram = registry.histogram("xks_latency_seconds");
  histogram->Observe(1e-7);
  histogram->Observe(1e-7);
  histogram->Observe(1e9);  // overflow → only +Inf grows

  const std::string text = registry.Snapshot().TextExposition();
  EXPECT_NE(text.find("# TYPE xks_queries_total counter"), std::string::npos);
  EXPECT_NE(text.find("xks_queries_total 7"), std::string::npos);
  EXPECT_NE(text.find("xks_hops_total{shard=\"127.0.0.1:7700\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE xks_latency_seconds histogram"),
            std::string::npos);
  // Cumulative le convention: the first bucket already holds both small
  // observations, and +Inf holds everything.
  EXPECT_NE(text.find("xks_latency_seconds_bucket{le=\"1e-06\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("xks_latency_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("xks_latency_seconds_count 3"), std::string::npos);
  EXPECT_NE(text.find("xks_latency_seconds_sum"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Snapshot wire codec.

MetricsSnapshot BuildRichSnapshot() {
  MetricsRegistry registry;
  registry.counter("xks_a_total")->Increment(42);
  registry.counter("xks_a_total", "shard=\"s1\"")->Increment(7);
  registry.gauge("xks_b_gauge")->Set(-12345);
  Histogram* histogram = registry.histogram("xks_c_seconds");
  histogram->Observe(0.000128);
  histogram->Observe(3.5);
  histogram->Observe(1e9);
  return registry.Snapshot();
}

TEST(MetricsSnapshotCodecTest, RoundTripsToAByteFixpoint) {
  const MetricsSnapshot snapshot = BuildRichSnapshot();
  const std::string bytes = EncodeSnapshot(snapshot);

  MetricsSnapshot decoded;
  ASSERT_TRUE(DecodeMetricsSnapshot(bytes, &decoded).ok());
  EXPECT_EQ(EncodeSnapshot(decoded), bytes);

  ASSERT_EQ(decoded.families.size(), snapshot.families.size());
  EXPECT_EQ(decoded.CounterTotal("xks_a_total"), 49u);
  const MetricFamily* gauge = decoded.Find("xks_b_gauge");
  ASSERT_NE(gauge, nullptr);
  ASSERT_EQ(gauge->points.size(), 1u);
  EXPECT_EQ(gauge->points[0].gauge_value, -12345);
  const MetricFamily* family = decoded.Find("xks_c_seconds");
  ASSERT_NE(family, nullptr);
  ASSERT_EQ(family->points.size(), 1u);
  EXPECT_EQ(family->points[0].histogram.count, 3u);
  EXPECT_EQ(family->points[0].histogram.buckets.size(),
            family->points[0].histogram.bounds.size() + 1);
}

TEST(MetricsSnapshotCodecTest, RejectsTruncationAndTrailingGarbage) {
  const std::string bytes = EncodeSnapshot(BuildRichSnapshot());
  MetricsSnapshot decoded;
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(DecodeMetricsSnapshot(bytes.substr(0, cut), &decoded).ok())
        << "prefix of length " << cut << " must not decode";
  }
  EXPECT_FALSE(DecodeMetricsSnapshot(bytes + "x", &decoded).ok())
      << "trailing garbage must be rejected";
}

TEST(MetricsSnapshotCodecTest, RejectsUnknownMetricKind) {
  // One family, kind byte 3 (only 0/1/2 exist).
  std::string bytes;
  bytes.push_back('\x01');              // family count
  bytes.push_back('\x04');              // name length
  bytes.append("name");
  bytes.push_back('\x03');              // bad kind
  bytes.push_back('\x00');              // point count
  MetricsSnapshot decoded;
  EXPECT_FALSE(DecodeMetricsSnapshot(bytes, &decoded).ok());
}

TEST(StatsFrameTest, RequestBodyIsCanonical) {
  EXPECT_TRUE(DecodeStatsRequest(EncodeStatsRequest()).ok());
  EXPECT_FALSE(DecodeStatsRequest("").ok()) << "missing version byte";
  EXPECT_FALSE(DecodeStatsRequest("\x02").ok()) << "unknown version";
  EXPECT_FALSE(DecodeStatsRequest(EncodeStatsRequest() + "x").ok())
      << "trailing garbage";
}

TEST(StatsFrameTest, ReplyRoundTripsThroughTheFrameCodec) {
  Frame frame;
  frame.kind = FrameKind::kStatsReply;
  frame.request_id = 99;
  frame.body = EncodeStatsReply(BuildRichSnapshot());

  const std::string payload = EncodeFramePayload(frame);
  Result<Frame> parsed = DecodeFramePayload(payload);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->kind, FrameKind::kStatsReply);
  EXPECT_EQ(parsed->request_id, 99u);

  Result<MetricsSnapshot> snapshot = DecodeStatsReply(parsed->body);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->CounterTotal("xks_a_total"), 49u);
  EXPECT_EQ(EncodeStatsReply(*snapshot), frame.body);

  EXPECT_FALSE(DecodeStatsReply("").ok());
  EXPECT_FALSE(DecodeStatsReply("\x02").ok()) << "unknown version";
}

// ---------------------------------------------------------------------------
// Trace spans.

TraceSpan MakeSpanTree() {
  TraceSpan hop;
  hop.name = "hop";
  hop.start_us = 10;
  hop.duration_us = 90;
  hop.attributes = {{"shard", 1}, {"budget_ms", 250}};
  TraceSpan root;
  root.name = "search";
  root.start_us = 0;
  root.duration_us = 120;
  root.attributes = {{"hits", 5}};
  root.children = {hop};
  return root;
}

TEST(TraceSpanTest, RoundTripsToAByteFixpoint) {
  const TraceSpan root = MakeSpanTree();
  const std::string bytes = EncodeTraceSpan(root);
  TraceSpan decoded;
  ASSERT_TRUE(DecodeTraceSpan(bytes, &decoded).ok());
  EXPECT_EQ(EncodeTraceSpan(decoded), bytes);
  EXPECT_EQ(decoded.name, "search");
  EXPECT_EQ(decoded.Attr("hits"), 5u);
  EXPECT_EQ(decoded.Attr("absent", 77), 77u);
  const TraceSpan* hop = decoded.Child("hop");
  ASSERT_NE(hop, nullptr);
  EXPECT_EQ(hop->Attr("budget_ms"), 250u);
  EXPECT_EQ(decoded.Child("nope"), nullptr);

  TraceSpan scratch;
  EXPECT_FALSE(DecodeTraceSpan(bytes.substr(0, bytes.size() - 1), &scratch).ok());
  EXPECT_FALSE(DecodeTraceSpan(bytes + "x", &scratch).ok());
}

TEST(TraceSpanTest, RejectsNestingBeyondTheDepthLimit) {
  TraceSpan chain;
  chain.name = "s";
  TraceSpan* tip = &chain;
  for (int depth = 0; depth < kMaxTraceDepth + 4; ++depth) {
    TraceSpan child;
    child.name = "s";
    tip->children.push_back(std::move(child));
    tip = &tip->children.back();
  }
  TraceSpan decoded;
  const Status status = DecodeTraceSpan(EncodeTraceSpan(chain), &decoded);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST(QueryTraceTest, DisabledTraceIsInert) {
  QueryTrace trace(false);
  EXPECT_FALSE(trace.enabled());
  EXPECT_EQ(trace.ElapsedUs(), 0u);
  trace.Attr("hits", 3);
  trace.AddChild(MakeSpanTree());
  {
    QueryTrace::Scope scope(trace, "stage");
  }
  const TraceSpan root = trace.Finish();
  EXPECT_TRUE(root.name.empty());
  EXPECT_TRUE(root.children.empty());
}

TEST(QueryTraceTest, ScopesNestAndFinishClosesEverything) {
  QueryTrace trace(true, "coord_search");
  ASSERT_TRUE(trace.enabled());
  {
    QueryTrace::Scope parse(trace, "parse");
  }
  {
    QueryTrace::Scope scatter(trace, "scatter");
    TraceSpan hop;
    hop.name = "hop";
    hop.attributes = {{"shard", 0}};
    trace.AddChild(std::move(hop));  // lands under the open scatter scope
    trace.Attr("fan", 1);
  }
  trace.Attr("hits", 9);  // root attribute: no scope open
  const TraceSpan root = trace.Finish();

  EXPECT_EQ(root.name, "coord_search");
  EXPECT_EQ(root.Attr("hits"), 9u);
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0].name, "parse");
  const TraceSpan* scatter = root.Child("scatter");
  ASSERT_NE(scatter, nullptr);
  EXPECT_EQ(scatter->Attr("fan"), 1u);
  ASSERT_EQ(scatter->children.size(), 1u);
  EXPECT_EQ(scatter->children[0].name, "hop");
  EXPECT_GE(root.duration_us, scatter->start_us)
      << "root spans its children's offsets";
}

TEST(QueryTraceTest, SlowQueryLineCarriesTheBreakdown) {
  TraceSpan hop1, hop2;
  hop1.name = "hop";
  hop2.name = "hop";
  TraceSpan scatter;
  scatter.name = "scatter";
  scatter.duration_us = 1500;
  scatter.children = {hop1, hop2};
  TraceSpan parse;
  parse.name = "parse";
  parse.duration_us = 40;
  TraceSpan root;
  root.name = "coord_search";
  root.duration_us = 1600;
  root.attributes = {{"hits", 12}, {"cache_docs", 3}};
  root.children = {parse, scatter};

  const std::string line =
      FormatSlowQueryLine("xks_coord", 0xabcdef, 1.6, root);
  EXPECT_NE(line.find("xks_coord: slow-query"), std::string::npos);
  EXPECT_NE(line.find("fingerprint=0000000000abcdef"), std::string::npos);
  EXPECT_NE(line.find("elapsed_ms=1.600"), std::string::npos);
  EXPECT_NE(line.find("parse:40us"), std::string::npos);
  EXPECT_NE(line.find("scatter:1500us"), std::string::npos);
  EXPECT_NE(line.find("hops=2"), std::string::npos)
      << "hops under a stage child are counted";
  EXPECT_NE(line.find("cache_docs=3"), std::string::npos);
  EXPECT_NE(line.find("hits=12"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Concurrency: the relaxed-atomic hot path must be exact under contention.
// (This binary is in the CI ThreadSanitizer list.)

TEST(MetricsRegistryTest, ConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIterations = 20000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Half the threads resolve their instruments mid-flight, racing
      // creation against other creators and against snapshots.
      Counter* counter = registry.counter("xks_hammer_total");
      Gauge* gauge = registry.gauge("xks_hammer_gauge");
      Histogram* histogram = registry.histogram("xks_hammer_seconds");
      Counter* labeled = registry.counter(
          "xks_hammer_labeled_total", t % 2 == 0 ? "lane=\"a\"" : "lane=\"b\"");
      for (int i = 0; i < kIterations; ++i) {
        counter->Increment();
        labeled->Increment();
        gauge->Add(1);
        gauge->Add(-1);
        histogram->Observe(1e-6 * (1 + (i % 1000)));
      }
    });
  }
  // Snapshot concurrently with the writers: must be data-race free (the
  // values seen are whatever the relaxed loads observe).
  for (int s = 0; s < 50; ++s) {
    const MetricsSnapshot snapshot = registry.Snapshot();
    static_cast<void>(snapshot.TextExposition());
  }
  for (std::thread& thread : threads) thread.join();

  const MetricsSnapshot final_snapshot = registry.Snapshot();
  EXPECT_EQ(final_snapshot.CounterTotal("xks_hammer_total"),
            static_cast<uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(final_snapshot.CounterTotal("xks_hammer_labeled_total"),
            static_cast<uint64_t>(kThreads) * kIterations);
  const MetricFamily* gauge = final_snapshot.Find("xks_hammer_gauge");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->points[0].gauge_value, 0);
  const MetricFamily* histogram = final_snapshot.Find("xks_hammer_seconds");
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->points[0].histogram.count,
            static_cast<uint64_t>(kThreads) * kIterations);
  uint64_t bucket_sum = 0;
  for (uint64_t b : histogram->points[0].histogram.buckets) bucket_sum += b;
  EXPECT_EQ(bucket_sum, static_cast<uint64_t>(kThreads) * kIterations)
      << "every observation lands in exactly one bucket";
}

}  // namespace
}  // namespace xks
