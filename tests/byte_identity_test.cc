// Byte-identity proof for the ByteReader consolidation: every encoded
// artifact — XKS3 corpus, wire frames, cursors — must come out of the
// post-migration encoders byte-for-byte equal to hex captured from the
// tree BEFORE the migration. A codec change that alters one output byte
// breaks persisted corpora and live client connections; these goldens make
// that a test failure instead of a corruption report in the field.
//
// The hex literals were captured by encoding fuzz/golden_artifacts.h's
// builders with the pre-migration encoders (the Decoder-era tree at
// commit 445de99). Regenerating them is only legitimate for a deliberate,
// versioned format change.

#include <gtest/gtest.h>

#include "fuzz/golden_artifacts.h"
#include "src/api/cursor.h"
#include "src/api/database.h"
#include "src/server/wire.h"

namespace xks {
namespace {

using golden::FromHex;
using golden::ToHex;

// Pre-migration capture: BuildGoldenCorpus().EncodeTo (XKS3, epoch 2, one
// tombstone).
constexpr const char* kCorpusHex =
    "584b533302ed8eca87dd88ed8e78030101618c02584b533104076c69627261727904626f"
    "6f6b057469746c6506617574686f7204000100010100076c696272617279076c69627261"
    "7279010200000202000104626f6f6b04626f6f6b02030000000303000102076b6579776f"
    "726403786d6c0303000001030300010306617574686f72036c697508076c696272617279"
    "0001000004626f6f6b0102000000076b6579776f72640203000000020673656172636802"
    "0300000002057469746c6502030000000003786d6c02030000000206617574686f720303"
    "00000100036c69750303000001020806617574686f720104626f6f6b01076b6579776f72"
    "6401076c69627261727901036c6975010673656172636801057469746c650103786d6c01"
    "00010163e501584b5331030473697465046974656d046e616d6503000100010100047369"
    "746504736974650102000002020001046974656d046974656d0203000000030300010208"
    "667261676d656e7408746967687465737407047369746500010000046974656d01020000"
    "0008667261676d656e74020300000002076b6579776f7264020300000002046e616d6502"
    "03000000000772656c617865640203000000020874696768746573740203000000020708"
    "667261676d656e7401046974656d01076b6579776f726401046e616d65010772656c6178"
    "65640104736974650108746967687465737401";

// Pre-migration capture: EncodeFramePayload over the three golden frames.
constexpr const char* kRequestFrameHex =
    "01e78a8d0901117469746c653a786d6c206b6579776f72640203786d6c057469746c6507"
    "6b6579776f726400030002070102010103190e786b7363323a313261623a353a391d8080"
    "8080808080e83fb3e6cc99b3e6cce93fb3e6cc99b3e6cce13f9ab3e6cc99b3e6e43f9ab3"
    "e6cc99b3e6dc3fdc0b";
constexpr const char* kResponseFrameHex =
    "02edfd0301020309646f632d746872656580808080808080f63f1a3c7469746c653e786d"
    "6c206b6579776f72643c2f7469746c653e0908646f632d6e696e6580808080808080f03f"
    "000e786b7363323a626565663a613a322a000507010400630b786d6c206b6579776f7264"
    "80808080808080fc3f80808080808080814080808080808080e03f808080808080808840"
    "0a04";
constexpr const char* kStatusFrameHex =
    "0307010c15646561646c696e6520356d73206578636565646564";

// Pre-migration capture: EncodeCursor(GoldenPageCursor()) and the cursor a
// real top_k=1 search for "keyword" minted against the golden corpus.
constexpr const char* kCursorToken = "xksc2:deadbeefcafef00d:1234:b";
constexpr const char* kLiveCursorToken = "xksc2:432bebfedd29e1b1:1:2";
constexpr uint64_t kLiveEpoch = 2;

TEST(ByteIdentityTest, CorpusEncodingUnchanged) {
  Database db = golden::BuildGoldenCorpus();
  std::string encoded;
  db.EncodeTo(&encoded);
  EXPECT_EQ(ToHex(encoded), kCorpusHex);
}

TEST(ByteIdentityTest, CorpusDecodesAndReencodesToSameBytes) {
  const std::string bytes = FromHex(kCorpusHex);
  Result<Database> db = Database::DecodeFrom(bytes);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  std::string reencoded;
  db->EncodeTo(&reencoded);
  EXPECT_EQ(ToHex(reencoded), kCorpusHex);
  EXPECT_EQ(db->epoch(), 2u);
}

TEST(ByteIdentityTest, RequestFrameUnchanged) {
  EXPECT_EQ(ToHex(EncodeFramePayload(golden::GoldenRequestFrame())),
            kRequestFrameHex);
}

TEST(ByteIdentityTest, RequestFrameDecodesToGoldenRequest) {
  Result<Frame> frame = DecodeFramePayload(FromHex(kRequestFrameHex));
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->kind, FrameKind::kSearchRequest);
  EXPECT_EQ(frame->request_id, 0x1234567u);
  Result<SearchRequest> request = DecodeSearchRequest(frame->body);
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  // Decode then re-encode is a fixpoint: the decoder read every field the
  // encoder wrote, into the same positions.
  EXPECT_EQ(ToHex(EncodeSearchRequest(*request)),
            ToHex(EncodeSearchRequest(golden::GoldenRequest())));
  EXPECT_EQ(request->query, "title:xml keyword");
  ASSERT_EQ(request->terms.size(), 2u);
  EXPECT_EQ(request->terms[0].word, "xml");
  EXPECT_EQ(request->terms[0].label, "title");
  EXPECT_EQ(request->deadline_ms, 1500u);
  EXPECT_EQ(request->weights.proximity, 0.30);
}

TEST(ByteIdentityTest, ResponseFrameUnchanged) {
  EXPECT_EQ(ToHex(EncodeFramePayload(golden::GoldenResponseFrame())),
            kResponseFrameHex);
}

TEST(ByteIdentityTest, ResponseFrameDecodesAndReencodesToSameBytes) {
  Result<Frame> frame = DecodeFramePayload(FromHex(kResponseFrameHex));
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->kind, FrameKind::kSearchResponse);
  EXPECT_EQ(frame->request_id, 0xfeedu);
  Result<SearchResponse> response = DecodeSearchResponse(frame->body);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(ToHex(EncodeSearchResponse(*response)),
            ToHex(frame->body));
  ASSERT_EQ(response->hits.size(), 2u);
  EXPECT_EQ(response->hits[0].document_name, "doc-three");
  EXPECT_EQ(response->hits[0].score, 0.875);
  EXPECT_EQ(response->next_cursor, "xksc2:beef:a:2");
  EXPECT_EQ(response->epoch, 7u);
}

TEST(ByteIdentityTest, StatusFrameUnchanged) {
  EXPECT_EQ(ToHex(EncodeFramePayload(golden::GoldenStatusFrame())),
            kStatusFrameHex);
}

TEST(ByteIdentityTest, StatusFrameDecodesToGoldenStatus) {
  Result<Frame> frame = DecodeFramePayload(FromHex(kStatusFrameHex));
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->kind, FrameKind::kStatus);
  EXPECT_EQ(frame->request_id, 7u);
  Status decoded = Status::OK();
  ASSERT_TRUE(DecodeStatusPayload(frame->body, &decoded).ok());
  EXPECT_EQ(decoded.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(decoded.message(), "deadline 5ms exceeded");
}

TEST(ByteIdentityTest, CursorTokenUnchanged) {
  EXPECT_EQ(EncodeCursor(golden::GoldenPageCursor()), kCursorToken);
  Result<PageCursor> cursor = DecodeCursor(kCursorToken);
  ASSERT_TRUE(cursor.ok());
  EXPECT_EQ(cursor->offset, 0x1234u);
  EXPECT_EQ(cursor->fingerprint, 0xdeadbeefcafef00dULL);
  EXPECT_EQ(cursor->epoch, 11u);
}

TEST(ByteIdentityTest, LiveSearchCursorUnchanged) {
  // A real paginated search against the golden corpus still mints the
  // pre-migration token: the request/revision fingerprint chain survived
  // the migration too, so pre-migration cursors stay replayable.
  Database db = golden::BuildGoldenCorpus();
  EXPECT_EQ(db.epoch(), kLiveEpoch);
  SearchRequest request = SearchRequest::ValidRtf("keyword");
  request.top_k = 1;
  request.max_parallelism = 1;
  Result<SearchResponse> response = db.Search(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->next_cursor, kLiveCursorToken);
}

}  // namespace
}  // namespace xks
