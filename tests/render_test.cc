#include "src/core/render.h"

#include <gtest/gtest.h>

#include "src/core/validrtf.h"
#include "src/datagen/figure1.h"
#include "src/storage/store.h"
#include "src/xml/parser.h"

namespace xks {
namespace {

struct Harness {
  Document doc;
  ShreddedStore store;
  SearchResult result;
};

Harness MakeHarness(const std::string& xml, const std::string& query) {
  Harness s;
  Result<Document> doc = ParseXml(xml);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  s.doc = std::move(doc).value();
  s.store = ShreddedStore::Build(s.doc);
  Result<SearchResult> r = ValidRtfSearch(s.store, query);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  s.result = std::move(r).value();
  return s;
}

TEST(RenderTest, EmptyFragment) {
  Document doc;
  FragmentTree empty;
  Result<std::string> out = RenderFragmentXml(doc, empty);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

TEST(RenderTest, KeywordNodesCarryText) {
  Harness s = MakeHarness("<r><a>alpha</a><b>beta</b></r>", "alpha beta");
  ASSERT_EQ(s.result.rtf_count(), 1u);
  RenderOptions options;
  options.indent = "";
  Result<std::string> out =
      RenderFragmentXml(s.doc, s.result.fragments[0].fragment, options);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(*out, "<r><a>alpha</a><b>beta</b></r>");
}

TEST(RenderTest, InternalTextSkippedByDefault) {
  Harness s = MakeHarness("<r>internal words<a>alpha</a><b>beta</b></r>", "alpha beta");
  RenderOptions options;
  options.indent = "";
  Result<std::string> out =
      RenderFragmentXml(s.doc, s.result.fragments[0].fragment, options);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->find("internal"), std::string::npos);
  options.include_internal_text = true;
  out = RenderFragmentXml(s.doc, s.result.fragments[0].fragment, options);
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("internal words"), std::string::npos);
}

TEST(RenderTest, AttributesPreserved) {
  Harness s = MakeHarness(R"(<r><item id="i1"><name>alpha</name></item><x>beta</x></r>)",
                "alpha beta");
  RenderOptions options;
  options.indent = "";
  Result<std::string> out =
      RenderFragmentXml(s.doc, s.result.fragments[0].fragment, options);
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("id=\"i1\""), std::string::npos);
  options.include_attributes = false;
  out = RenderFragmentXml(s.doc, s.result.fragments[0].fragment, options);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->find("id="), std::string::npos);
}

TEST(RenderTest, EscapingApplied) {
  Harness s = MakeHarness("<r><a>alpha &lt;tag&gt; &amp; more</a><b>beta</b></r>",
                "alpha beta");
  RenderOptions options;
  options.indent = "";
  Result<std::string> out =
      RenderFragmentXml(s.doc, s.result.fragments[0].fragment, options);
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("&lt;tag&gt; &amp; more"), std::string::npos);
}

TEST(RenderTest, RenderedSnippetReparses) {
  // Round-trip: the rendered fragment is well-formed XML.
  Harness s = MakeHarness(Figure1aXml(), PaperQuery(3));
  ASSERT_EQ(s.result.rtf_count(), 1u);
  Result<std::string> out =
      RenderFragmentXml(s.doc, s.result.fragments[0].fragment);
  ASSERT_TRUE(out.ok());
  Result<Document> reparsed = ParseXml(*out);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n" << *out;
  // The snippet has exactly the fragment's node count.
  EXPECT_EQ(reparsed->size(), s.result.fragments[0].fragment.size());
}

TEST(RenderTest, PrunedSubtreesAbsent) {
  // Q3: the skyline article 0.2.1 is pruned; it must not be rendered.
  Harness s = MakeHarness(Figure1aXml(), PaperQuery(3));
  Result<std::string> out =
      RenderFragmentXml(s.doc, s.result.fragments[0].fragment);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->find("Skyline"), std::string::npos);
  EXPECT_NE(out->find("Relevant Match for XML Keyword Search"), std::string::npos);
}

TEST(RenderTest, WrongDocumentFails) {
  Harness s = MakeHarness("<r><a>alpha</a><b>beta</b></r>", "alpha beta");
  Result<Document> other = ParseXml("<solo/>");
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(
      RenderFragmentXml(*other, s.result.fragments[0].fragment).ok());
}

}  // namespace
}  // namespace xks
