// Cooperative cancellation: the CancelToken primitive, the ParallelFor
// contiguous-prefix contract under a fired token, and the "never a partial
// response" guarantee of Snapshot::Search — including a cancel-while-
// scanning hammer intended to run under ThreadSanitizer.

#include "src/common/cancel_token.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/database.h"
#include "src/common/worker_pool.h"
#include "tests/test_util.h"

namespace xks {
namespace {

using std::chrono::milliseconds;

TEST(CancelTokenTest, DefaultTokenNeverFires) {
  CancelToken token;
  EXPECT_FALSE(token.can_expire());
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.has_deadline());
  EXPECT_TRUE(token.status().ok());
}

TEST(CancelTokenTest, SourceFiresItsTokens) {
  CancelSource source;
  CancelToken token = source.token();
  EXPECT_TRUE(token.can_expire());
  EXPECT_FALSE(token.cancelled());
  source.Cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.status().code(), StatusCode::kCancelled);
  // Idempotent.
  source.Cancel();
  EXPECT_TRUE(token.cancelled());
}

TEST(CancelTokenTest, TokensCopiedBeforeCancelStillObserveIt) {
  CancelSource source;
  CancelToken copy = source.token();
  CancelToken copy2 = copy;
  source.Cancel();
  EXPECT_TRUE(copy.cancelled());
  EXPECT_TRUE(copy2.cancelled());
}

TEST(CancelTokenTest, PastDeadlineFiresAsDeadlineExceeded) {
  CancelToken token =
      CancelToken().WithDeadline(CancelToken::Clock::now() - milliseconds(1));
  EXPECT_TRUE(token.can_expire());
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(CancelTokenTest, FutureDeadlineDoesNotFire) {
  CancelToken token = CancelToken().WithDeadlineAfter(milliseconds(60'000));
  EXPECT_TRUE(token.can_expire());
  EXPECT_TRUE(token.has_deadline());
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.status().ok());
}

TEST(CancelTokenTest, WithDeadlineOnlyTightens) {
  const auto early = CancelToken::Clock::now() + milliseconds(10);
  const auto late = CancelToken::Clock::now() + milliseconds(60'000);
  CancelToken token = CancelToken().WithDeadline(early).WithDeadline(late);
  EXPECT_EQ(token.deadline(), early);
  CancelToken other = CancelToken().WithDeadline(late).WithDeadline(early);
  EXPECT_EQ(other.deadline(), early);
}

TEST(CancelTokenTest, ExplicitCancelWinsOverExpiredDeadline) {
  CancelSource source;
  CancelToken token =
      source.token().WithDeadline(CancelToken::Clock::now() - milliseconds(1));
  source.Cancel();
  // Both conditions hold; the explicit cancel is the reported cause.
  EXPECT_EQ(token.status().code(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, DerivedTokenSharesTheSourceFlag) {
  CancelSource source;
  CancelToken derived = source.token().WithDeadlineAfter(milliseconds(60'000));
  EXPECT_FALSE(derived.cancelled());
  source.Cancel();
  EXPECT_TRUE(derived.cancelled());
  EXPECT_EQ(derived.status().code(), StatusCode::kCancelled);
}

// --- ParallelFor under cancellation -----------------------------------------

TEST(ParallelForCancelTest, PreFiredTokenRunsNothing) {
  CancelSource source;
  source.Cancel();
  ParallelForOptions options;
  options.cancel = source.token();
  std::atomic<size_t> ran{0};
  for (size_t parallelism : {size_t{1}, size_t{4}}) {
    options.max_parallelism = parallelism;
    Result<size_t> executed = ParallelFor(
        1000,
        [&](size_t) {
          ran.fetch_add(1);
          return Status::OK();
        },
        options);
    // Cancellation is NOT an error: the prefix (here empty) is returned and
    // the caller inspects the token.
    ASSERT_TRUE(executed.ok());
    EXPECT_EQ(executed.value(), 0u);
    EXPECT_EQ(ran.load(), 0u);
  }
}

TEST(ParallelForCancelTest, SerialCancelMidLoopExecutesExactPrefix) {
  CancelSource source;
  ParallelForOptions options;
  options.max_parallelism = 1;
  options.cancel = source.token();
  std::vector<int> executed(100, 0);
  Result<size_t> prefix = ParallelFor(
      100,
      [&](size_t i) {
        executed[i] = 1;
        if (i == 6) source.Cancel();  // fires before index 7 is claimed
        return Status::OK();
      },
      options);
  ASSERT_TRUE(prefix.ok());
  EXPECT_EQ(prefix.value(), 7u);
  for (size_t i = 0; i < executed.size(); ++i) {
    EXPECT_EQ(executed[i], i < 7 ? 1 : 0) << "index " << i;
  }
  EXPECT_EQ(source.token().status().code(), StatusCode::kCancelled);
}

TEST(ParallelForCancelTest, ParallelCancelExecutesContiguousPrefix) {
  for (uint64_t round = 0; round < 20; ++round) {
    CancelSource source;
    ParallelForOptions options;
    options.max_parallelism = 4;
    options.cancel = source.token();
    constexpr size_t kCount = 256;
    std::vector<std::atomic<int>> executed(kCount);
    Result<size_t> prefix = ParallelFor(
        kCount,
        [&](size_t i) {
          executed[i].store(1, std::memory_order_relaxed);
          if (i == 16 + round) source.Cancel();
          return Status::OK();
        },
        options);
    ASSERT_TRUE(prefix.ok());
    // Every executed index lies below the returned prefix size, and the
    // prefix has no holes: exactly the contiguous-prefix contract.
    size_t count = 0;
    for (size_t i = 0; i < kCount; ++i) {
      if (executed[i].load(std::memory_order_relaxed)) ++count;
    }
    EXPECT_EQ(count, prefix.value());
    for (size_t i = 0; i < prefix.value(); ++i) {
      EXPECT_TRUE(executed[i].load(std::memory_order_relaxed))
          << "hole at " << i;
    }
    for (size_t i = prefix.value(); i < kCount; ++i) {
      EXPECT_FALSE(executed[i].load(std::memory_order_relaxed))
          << "stray execution at " << i;
    }
    EXPECT_LT(prefix.value(), kCount);  // cancel landed before the end
  }
}

TEST(ParallelForCancelTest, ExpiredDeadlineStopsDispatch) {
  ParallelForOptions options;
  options.max_parallelism = 2;
  options.cancel =
      CancelToken().WithDeadline(CancelToken::Clock::now() - milliseconds(1));
  std::atomic<size_t> ran{0};
  Result<size_t> prefix = ParallelFor(
      50,
      [&](size_t) {
        ran.fetch_add(1);
        return Status::OK();
      },
      options);
  ASSERT_TRUE(prefix.ok());
  EXPECT_EQ(prefix.value(), 0u);
  EXPECT_EQ(ran.load(), 0u);
}

// --- Search-level guarantees ------------------------------------------------

Database BuildCorpus(size_t documents, size_t nodes_per_doc) {
  Database db;
  for (size_t d = 0; d < documents; ++d) {
    EXPECT_TRUE(
        db.AddDocument("doc-" + std::to_string(d),
                       RandomDocument(/*seed=*/1000 + d, nodes_per_doc))
            .ok());
  }
  EXPECT_TRUE(db.Build().ok());
  return db;
}

TEST(SearchCancelTest, ExpiredDeadlineReturnsDeadlineExceeded) {
  Database db = BuildCorpus(4, 60);
  SearchRequest request;
  request.query = "apple berry";
  request.cancel =
      CancelToken().WithDeadline(CancelToken::Clock::now() - milliseconds(1));
  Result<SearchResponse> response = db.Search(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(SearchCancelTest, PreFiredTokenReturnsCancelled) {
  Database db = BuildCorpus(4, 60);
  CancelSource source;
  source.Cancel();
  SearchRequest request;
  request.query = "apple berry";
  request.cancel = source.token();
  Result<SearchResponse> response = db.Search(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kCancelled);
}

TEST(SearchCancelTest, GenerousDeadlineStillAnswersIdentically) {
  Database db = BuildCorpus(4, 60);
  SearchRequest plain;
  plain.query = "apple berry";
  plain.use_cache = false;
  Result<SearchResponse> reference = db.Search(plain);
  ASSERT_TRUE(reference.ok());

  SearchRequest bounded = plain;
  bounded.deadline_ms = 60'000;
  Result<SearchResponse> response = db.Search(bounded);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().hits.size(), reference.value().hits.size());
  EXPECT_EQ(response.value().total_hits, reference.value().total_hits);
}

// The no-partial-response-leak hammer: race a cancel against a running scan
// many times. Whatever the timing, the outcome must be binary — either the
// complete response (identical totals to an uncancelled run) or a clean
// Cancelled error. Run under TSan this also proves the token plumbing and
// the fan-out are race-free.
TEST(SearchCancelTest, CancelWhileScanningNeverLeaksPartialResponses) {
  Database db = BuildCorpus(8, 80);
  SearchRequest reference_request;
  reference_request.query = "apple berry";
  reference_request.use_cache = false;
  reference_request.max_parallelism = 4;
  Result<SearchResponse> reference = db.Search(reference_request);
  ASSERT_TRUE(reference.ok());

  constexpr int kRounds = 60;
  int cancelled_rounds = 0;
  for (int round = 0; round < kRounds; ++round) {
    CancelSource source;
    SearchRequest request = reference_request;
    request.cancel = source.token();

    Result<SearchResponse> outcome = Status::Internal("unset");
    std::thread searcher(
        [&] { outcome = db.Search(request); });
    // Stagger the cancel across rounds so it lands at different points of
    // the scan — before it starts, mid-flight, after completion.
    if (round % 3 == 0) std::this_thread::yield();
    for (int spin = 0; spin < (round % 7) * 50; ++spin) {
      std::this_thread::yield();
    }
    source.Cancel();
    searcher.join();

    if (outcome.ok()) {
      // Complete response: must match the uncancelled reference exactly.
      EXPECT_EQ(outcome.value().hits.size(), reference.value().hits.size());
      EXPECT_EQ(outcome.value().total_hits, reference.value().total_hits);
      EXPECT_EQ(outcome.value().documents_searched,
                reference.value().documents_searched);
    } else {
      EXPECT_EQ(outcome.status().code(), StatusCode::kCancelled);
      ++cancelled_rounds;
    }
  }
  // Not asserted (timing), but useful when eyeballing -V output.
  (void)cancelled_rounds;
}

}  // namespace
}  // namespace xks
