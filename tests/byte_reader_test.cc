// Adversarial-input unit tests for ByteReader, the single decode primitive
// every untrusted-byte decoder in the tree sits on. The fuzzers
// (fuzz/fuzz_codec.cc) explore this surface randomly; these tests pin the
// edges deterministically: every truncation prefix, varint overflow
// boundaries, hostile counts, and the remaining()-only-decreases invariant.

#include <gtest/gtest.h>

#include <limits>

#include "src/common/codec.h"

namespace xks {
namespace {

TEST(ByteReaderTest, EmptyInputFailsEveryRead) {
  ByteReader reader("");
  EXPECT_EQ(reader.ReadU8().status().code(), StatusCode::kCorruption);
  EXPECT_EQ(ByteReader("").ReadFixedU32BE().status().code(),
            StatusCode::kCorruption);
  EXPECT_EQ(ByteReader("").ReadVarint64().status().code(),
            StatusCode::kCorruption);
  EXPECT_EQ(ByteReader("").ReadVarint32().status().code(),
            StatusCode::kCorruption);
  EXPECT_EQ(ByteReader("").ReadBytes(1).status().code(),
            StatusCode::kCorruption);
  EXPECT_EQ(ByteReader("").ReadLengthPrefixedSpan().status().code(),
            StatusCode::kCorruption);
  EXPECT_EQ(ByteReader("").ReadLengthPrefixedString().status().code(),
            StatusCode::kCorruption);
  // Zero-byte reads of nothing are satisfiable.
  EXPECT_TRUE(ByteReader("").ReadBytes(0).ok());
  EXPECT_TRUE(ByteReader("").ExpectDone("empty").ok());
  EXPECT_TRUE(ByteReader("").done());
}

TEST(ByteReaderTest, EveryPrefixOfAMultiFieldBufferFailsCleanly) {
  // A buffer exercising every read kind; no strict prefix may decode.
  std::string buf;
  buf.push_back('\x2a');                    // u8
  PutFixedU32BE(&buf, 0xdeadbeef);          // fixed u32
  PutVarint64(&buf, 3000000000ULL);         // multi-byte varint
  PutLengthPrefixed(&buf, "payload");       // length-prefixed
  auto decode_all = [](std::string_view bytes) -> Status {
    ByteReader reader(bytes);
    XKS_RETURN_IF_ERROR(reader.ReadU8().status());
    XKS_RETURN_IF_ERROR(reader.ReadFixedU32BE().status());
    XKS_RETURN_IF_ERROR(reader.ReadVarint64().status());
    XKS_RETURN_IF_ERROR(reader.ReadLengthPrefixedString().status());
    return reader.ExpectDone("buffer");
  };
  ASSERT_TRUE(decode_all(buf).ok());
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    const Status status = decode_all(std::string_view(buf).substr(0, cut));
    EXPECT_EQ(status.code(), StatusCode::kCorruption)
        << "prefix of length " << cut << " decoded: " << status.ToString();
  }
  // And a trailing byte is rejected by ExpectDone, not ignored.
  const Status trailing = decode_all(buf + '\x00');
  EXPECT_EQ(trailing.code(), StatusCode::kCorruption);
  EXPECT_NE(trailing.message().find("trailing"), std::string::npos);
}

TEST(ByteReaderTest, VarintBoundaryValuesRoundTrip) {
  const uint64_t values[] = {0,
                             1,
                             0x7f,
                             0x80,
                             0x3fff,
                             0x4000,
                             (1ULL << 35) - 1,
                             1ULL << 35,
                             (1ULL << 63) - 1,
                             1ULL << 63,
                             std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : values) {
    std::string buf;
    PutVarint64(&buf, v);
    ByteReader reader(buf);
    Result<uint64_t> back = reader.ReadVarint64();
    ASSERT_TRUE(back.ok()) << v;
    EXPECT_EQ(*back, v);
    EXPECT_TRUE(reader.done());
  }
}

TEST(ByteReaderTest, VarintOverflowPastBit63IsCorruption) {
  // UINT64_MAX encodes as nine 0xff bytes then 0x01: the 10th group may
  // carry bit 63 only. Any larger 10th byte would overflow u64 — the old
  // decoder silently truncated those bits; ByteReader rejects them.
  std::string max;
  PutVarint64(&max, std::numeric_limits<uint64_t>::max());
  ASSERT_EQ(max.size(), 10u);
  ASSERT_EQ(static_cast<uint8_t>(max[9]), 0x01);
  for (uint8_t tenth : {0x02, 0x03, 0x7f}) {
    std::string bad = max;
    bad[9] = static_cast<char>(tenth);
    ByteReader reader(bad);
    Result<uint64_t> r = reader.ReadVarint64();
    ASSERT_FALSE(r.ok()) << static_cast<int>(tenth);
    EXPECT_NE(r.status().message().find("overflows"), std::string::npos);
  }
  // An 11th group (continuation bit on the 10th byte) is also Corruption.
  std::string eleven = max;
  eleven[9] = '\x81';
  eleven.push_back('\x00');
  EXPECT_FALSE(ByteReader(eleven).ReadVarint64().ok());
}

TEST(ByteReaderTest, Varint32RejectsJustAbove32Bits) {
  for (uint64_t v : {uint64_t{UINT32_MAX} + 1, uint64_t{1} << 40}) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(ByteReader(buf).ReadVarint32().status().code(),
              StatusCode::kCorruption);
  }
  std::string ok;
  PutVarint64(&ok, UINT32_MAX);
  Result<uint32_t> r = ByteReader(ok).ReadVarint32();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, UINT32_MAX);
}

TEST(ByteReaderTest, LengthPrefixOverflowAdjacentLengthsFail) {
  // Length prefixes near and past the u64 ceiling: none is satisfiable by
  // a short buffer, and size_t arithmetic must not wrap into "satisfiable".
  for (uint64_t len : {uint64_t{100}, uint64_t{1} << 32, (uint64_t{1} << 63),
                       std::numeric_limits<uint64_t>::max()}) {
    std::string buf;
    PutVarint64(&buf, len);
    buf += "short";
    ByteReader reader(buf);
    EXPECT_EQ(reader.ReadLengthPrefixedSpan().status().code(),
              StatusCode::kCorruption)
        << len;
  }
}

TEST(ByteReaderTest, ReadCountRejectsCountsPastRemainingBytes) {
  // count == remaining is the acceptance boundary (1-byte elements).
  std::string buf;
  PutVarint64(&buf, 3);
  buf += "abc";
  ByteReader reader(buf);
  Result<uint64_t> count = reader.ReadCount("element count");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 3u);

  std::string hostile;
  PutVarint64(&hostile, 4);
  hostile += "abc";
  ByteReader hostile_reader(hostile);
  Result<uint64_t> bad = hostile_reader.ReadCount("element count");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("implausible element count"),
            std::string::npos);

  // The classic attack: a tiny buffer advertising 2^60 elements must be
  // rejected before any reserve()/resize() sees the number.
  std::string huge;
  PutVarint64(&huge, uint64_t{1} << 60);
  EXPECT_FALSE(ByteReader(huge).ReadCount("element count").ok());
}

TEST(ByteReaderTest, ReadBytesReturnsViewsIntoTheBuffer) {
  const std::string buf = "abcdef";
  ByteReader reader(buf);
  Result<std::string_view> head = reader.ReadBytes(2);
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(*head, "ab");
  EXPECT_EQ(head->data(), buf.data());  // a view, not a copy
  EXPECT_EQ(reader.rest(), "cdef");
  Result<std::string_view> tail = reader.ReadBytes(4);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(*tail, "cdef");
  EXPECT_TRUE(reader.done());
  EXPECT_FALSE(reader.ReadBytes(1).ok());
}

TEST(ByteReaderTest, RemainingOnlyDecreasesByConsumedBytes) {
  std::string buf;
  buf.push_back('\x07');
  PutVarint64(&buf, 300);  // 2 bytes
  PutLengthPrefixed(&buf, "xy");  // 1 + 2 bytes
  ByteReader reader(buf);
  size_t before = reader.remaining();
  ASSERT_EQ(before, 6u);
  ASSERT_TRUE(reader.ReadU8().ok());
  EXPECT_EQ(reader.remaining(), before - 1);
  ASSERT_TRUE(reader.ReadVarint64().ok());
  EXPECT_EQ(reader.remaining(), before - 3);
  ASSERT_TRUE(reader.ReadLengthPrefixedSpan().ok());
  EXPECT_EQ(reader.remaining(), 0u);
  // A failed read cannot rewind or advance past the end.
  EXPECT_FALSE(reader.ReadU8().ok());
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(ByteReaderTest, FixedU32TruncationEveryPrefix) {
  std::string buf;
  PutFixedU32BE(&buf, 0x0badf00d);
  for (size_t cut = 0; cut < 4; ++cut) {
    ByteReader reader(std::string_view(buf).substr(0, cut));
    EXPECT_EQ(reader.ReadFixedU32BE().status().code(),
              StatusCode::kCorruption);
  }
  Result<uint32_t> full = ByteReader(buf).ReadFixedU32BE();
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(*full, 0x0badf00du);
}

TEST(ByteReaderTest, ExpectDoneNamesTheFormatAndByteCount) {
  ByteReader reader("abc");
  const Status status = reader.ExpectDone("test payload");
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("test payload"), std::string::npos);
  EXPECT_NE(status.message().find("3 trailing bytes"), std::string::npos);
}

}  // namespace
}  // namespace xks
