#include "src/text/stopwords.h"

#include <algorithm>
#include <gtest/gtest.h>

namespace xks {
namespace {

TEST(StopWordsTest, CommonWordsAreStopWords) {
  for (const char* w : {"the", "a", "an", "and", "or", "of", "to", "in", "is"}) {
    EXPECT_TRUE(IsStopWord(w)) << w;
  }
}

TEST(StopWordsTest, ContentWordsAreNot) {
  for (const char* w : {"xml", "keyword", "search", "skyline", "position",
                        "grizzlies", "data", "query"}) {
    EXPECT_FALSE(IsStopWord(w)) << w;
  }
}

TEST(StopWordsTest, CaseSensitiveByContract) {
  // Callers must lowercase first; uppercase forms are not in the list.
  EXPECT_FALSE(IsStopWord("The"));
}

TEST(StopWordsTest, EmptyStringIsNotAStopWord) {
  EXPECT_FALSE(IsStopWord(""));
}

TEST(StopWordsTest, ListIsSortedAndUnique) {
  const auto& list = StopWordList();
  EXPECT_TRUE(std::is_sorted(list.begin(), list.end()));
  EXPECT_EQ(std::adjacent_find(list.begin(), list.end()), list.end());
  EXPECT_GE(list.size(), 40u);
}

TEST(StopWordsTest, EveryListedWordIsDetected) {
  for (std::string_view w : StopWordList()) {
    EXPECT_TRUE(IsStopWord(w)) << w;
  }
}

}  // namespace
}  // namespace xks
