#include "src/core/node_info.h"

#include <gtest/gtest.h>

namespace xks {
namespace {

/// Builds a parent with children described by (label, klist, cid) triples.
FragmentTree TreeWithChildren(
    const std::vector<std::tuple<std::string, KeywordMask, ContentId>>& children) {
  FragmentTree tree;
  FragmentNode root;
  root.dewey = Dewey{0};
  root.label = "root";
  FragmentNodeId r = tree.CreateRoot(std::move(root));
  uint32_t ordinal = 0;
  for (const auto& [label, klist, cid] : children) {
    FragmentNode child;
    child.dewey = Dewey{0, ordinal++};
    child.label = label;
    child.klist = klist;
    child.cid = cid;
    tree.AddChild(r, std::move(child));
  }
  return tree;
}

TEST(BuildLabelItemsTest, GroupsByDistinctLabel) {
  FragmentTree tree = TreeWithChildren({
      {"article", 0b01, {}},
      {"article", 0b10, {}},
      {"title", 0b11, {}},
  });
  std::vector<LabelItem> items = BuildLabelItems(tree, tree.root(), 2);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].label, "article");
  EXPECT_EQ(items[0].counter, 2u);
  EXPECT_EQ(items[1].label, "title");
  EXPECT_EQ(items[1].counter, 1u);
}

TEST(BuildLabelItemsTest, PaperFigure4cBottom) {
  // Node "0" of Figure 4(c): two label items ("title", "articles") for the
  // children 0.0 (key 24) and 0.2 (key 15) under Q3 (k=5).
  FragmentTree tree = TreeWithChildren({
      {"title", 0b00011, {"vldb", "vldb"}},      // vldb+title → key 24
      {"articles", 0b11110, {"chen", "xml"}},    // title..search → key 15
  });
  std::vector<LabelItem> items = BuildLabelItems(tree, tree.root(), 5);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].label, "title");
  EXPECT_EQ(items[0].chk_list, (std::vector<uint64_t>{24}));
  EXPECT_EQ(items[1].label, "articles");
  EXPECT_EQ(items[1].chk_list, (std::vector<uint64_t>{15}));
}

TEST(BuildLabelItemsTest, ChkListSortedDistinct) {
  FragmentTree tree = TreeWithChildren({
      {"p", 0b10, {}},
      {"p", 0b01, {}},
      {"p", 0b10, {}},
  });
  std::vector<LabelItem> items = BuildLabelItems(tree, tree.root(), 2);
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].counter, 3u);
  // Internal 0b10 → paper key 1; 0b01 → paper key 2.
  EXPECT_EQ(items[0].chk_list, (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(items[0].ch_list.size(), 3u);
  EXPECT_EQ(items[0].chcid_list.size(), 3u);
}

TEST(BuildLabelItemsTest, LeafHasNoItems) {
  FragmentTree tree = TreeWithChildren({});
  EXPECT_TRUE(BuildLabelItems(tree, tree.root(), 2).empty());
}

TEST(KeyNumberCoveredTest, PaperExample) {
  // Example from Section 4.1: chkList [7, 15]; 7 is covered by 15.
  std::vector<uint64_t> chk = {7, 15};
  EXPECT_TRUE(KeyNumberCovered(7, chk));
  EXPECT_FALSE(KeyNumberCovered(15, chk));
}

TEST(KeyNumberCoveredTest, EqualKeyIsNotCoverage) {
  std::vector<uint64_t> chk = {7};
  EXPECT_FALSE(KeyNumberCovered(7, chk));
}

TEST(KeyNumberCoveredTest, LargerButNotSuperset) {
  // 9 > 6 numerically but 6 & 9 != 6.
  std::vector<uint64_t> chk = {6, 9};
  EXPECT_FALSE(KeyNumberCovered(6, chk));
}

TEST(KeyNumberCoveredTest, CoverageAmongMany) {
  std::vector<uint64_t> chk = {1, 2, 3, 8, 11};
  EXPECT_TRUE(KeyNumberCovered(1, chk));   // 1 ⊂ 3
  EXPECT_TRUE(KeyNumberCovered(2, chk));   // 2 ⊂ 3
  EXPECT_TRUE(KeyNumberCovered(3, chk));   // 3 ⊂ 11
  EXPECT_TRUE(KeyNumberCovered(8, chk));   // 8 ⊂ 11
  EXPECT_FALSE(KeyNumberCovered(11, chk));
}

TEST(BuildLabelItemsTest, ItemsInFirstOccurrenceOrder) {
  FragmentTree tree = TreeWithChildren({
      {"z_label", 0b1, {}},
      {"a_label", 0b1, {}},
      {"z_label", 0b1, {}},
  });
  std::vector<LabelItem> items = BuildLabelItems(tree, tree.root(), 1);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].label, "z_label");  // first seen, despite sorting after
  EXPECT_EQ(items[1].label, "a_label");
}

}  // namespace
}  // namespace xks
