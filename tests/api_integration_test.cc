// End-to-end integration through the public API only: a multi-document
// corpus of generated datasets served via xks::Database — doc-qualified
// hits, top-k + cursor pagination, ranking, persistence and legacy loading.
// No direct ShreddedStore/SearchEngine use: this is the path external
// callers take.

#include <atomic>
#include <cstdio>
#include <gtest/gtest.h>
#include <thread>

#include "src/api/database.h"
#include "src/api/effectiveness.h"
#include "src/datagen/dblp_gen.h"
#include "src/datagen/figure1.h"
#include "src/datagen/workloads.h"
#include "src/datagen/xmark_gen.h"

namespace xks {
namespace {

void CheckHitInvariants(const std::vector<Hit>& hits, size_t k) {
  for (const Hit& hit : hits) {
    EXPECT_FALSE(hit.document_name.empty());
    // Every keyword node sits under the root and carries a non-empty mask.
    EXPECT_FALSE(hit.rtf.knodes.empty());
    KeywordMask seen = 0;
    for (const RtfKeywordNode& kn : hit.rtf.knodes) {
      EXPECT_TRUE(hit.rtf.root.IsAncestorOrSelf(kn.dewey));
      EXPECT_NE(kn.mask, 0u);
      seen |= kn.mask;
    }
    // An RTF covers the whole query (keyword requirement).
    EXPECT_EQ(seen, FullMask(k));
    // The pruned fragment is rooted at the RTF root and non-empty.
    ASSERT_FALSE(hit.fragment.empty());
    EXPECT_EQ(hit.fragment.node(hit.fragment.root()).dewey, hit.rtf.root);
  }
}

class ApiIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    Result<Document> fig1a = Figure1aDocument();
    Result<Document> fig1b = Figure1bDocument();
    ASSERT_TRUE(fig1a.ok());
    ASSERT_TRUE(fig1b.ok());
    ASSERT_TRUE(db_->AddDocument("publications", *fig1a).ok());
    ASSERT_TRUE(db_->AddDocument("team", *fig1b).ok());
    DblpOptions dblp;
    dblp.scale = 0.002;  // ~900 records
    ASSERT_TRUE(db_->AddDocument("dblp", GenerateDblp(dblp)).ok());
    XmarkOptions xmark;
    xmark.scale = 0.08;
    ASSERT_TRUE(db_->AddDocument("xmark", GenerateXmark(xmark)).ok());
    ASSERT_TRUE(db_->Build().ok());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static Database* db_;
};

Database* ApiIntegrationTest::db_ = nullptr;

TEST_F(ApiIntegrationTest, CorpusHoldsFourDocuments) {
  EXPECT_EQ(db_->document_count(), 4u);
  EXPECT_EQ(*db_->FindDocument("publications"), 0u);
  EXPECT_EQ(*db_->FindDocument("xmark"), 3u);
  EXPECT_FALSE(db_->FindDocument("absent").ok());
}

TEST_F(ApiIntegrationTest, WorkloadRunsThroughTheApi) {
  for (const WorkloadQuery& wq : DblpWorkload()) {
    SearchRequest request;
    for (const std::string& keyword : wq.keywords) {
      request.terms.push_back(QueryTerm{keyword, ""});
    }
    request.top_k = 0;
    request.rank = false;
    Result<SearchResponse> response = db_->Search(request);
    ASSERT_TRUE(response.ok()) << wq.label;
    CheckHitInvariants(response->hits, response->parsed_query.size());
  }
}

TEST_F(ApiIntegrationTest, QueryMatchingSeveralDocumentsMergesHits) {
  // "keyword" occurs in the Figure 1(a) instance and in generated DBLP.
  SearchRequest request = SearchRequest::ValidRtf("keyword");
  request.top_k = 0;
  request.rank = false;
  Result<SearchResponse> response = db_->Search(request);
  ASSERT_TRUE(response.ok());
  bool from_publications = false;
  bool from_dblp = false;
  for (const Hit& hit : response->hits) {
    if (hit.document_name == "publications") from_publications = true;
    if (hit.document_name == "dblp") from_dblp = true;
  }
  EXPECT_TRUE(from_publications);
  EXPECT_TRUE(from_dblp);
  // Unranked hits arrive grouped by ascending document id.
  for (size_t i = 1; i < response->hits.size(); ++i) {
    EXPECT_LE(response->hits[i - 1].document, response->hits[i].document);
  }
}

TEST_F(ApiIntegrationTest, RankedPaginationIsConsistentAcrossPages) {
  SearchRequest all = SearchRequest::ValidRtf("xml keyword");
  all.top_k = 0;
  Result<SearchResponse> reference = db_->Search(all);
  ASSERT_TRUE(reference.ok());
  ASSERT_GE(reference->hits.size(), 2u);

  const size_t page_size = (reference->hits.size() + 1) / 2;
  SearchRequest paged = SearchRequest::ValidRtf("xml keyword");
  paged.top_k = page_size;
  Result<SearchResponse> first = db_->Search(paged);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->hits.size(), page_size);
  ASSERT_FALSE(first->next_cursor.empty());

  paged.cursor = first->next_cursor;
  Result<SearchResponse> second = db_->Search(paged);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->hits.size() + second->hits.size(), reference->hits.size());

  std::vector<Hit> collected;
  for (Hit& hit : first->hits) collected.push_back(std::move(hit));
  for (Hit& hit : second->hits) collected.push_back(std::move(hit));
  for (size_t i = 0; i < collected.size(); ++i) {
    EXPECT_EQ(collected[i].document, reference->hits[i].document);
    EXPECT_EQ(collected[i].rtf.root, reference->hits[i].rtf.root);
    EXPECT_EQ(collected[i].score, reference->hits[i].score);
  }
}

TEST_F(ApiIntegrationTest, ValidRtfVersusMaxMatchEffectiveness) {
  SearchRequest valid_request = SearchRequest::ValidRtf("xml keyword");
  valid_request.top_k = 0;
  valid_request.rank = false;
  SearchRequest max_request = SearchRequest::MaxMatch("xml keyword");
  max_request.top_k = 0;
  max_request.rank = false;
  Result<SearchResponse> valid = db_->Search(valid_request);
  Result<SearchResponse> max = db_->Search(max_request);
  ASSERT_TRUE(valid.ok());
  ASSERT_TRUE(max.ok());
  Result<QueryEffectiveness> eff =
      CompareHitEffectiveness(valid->hits, max->hits);
  ASSERT_TRUE(eff.ok()) << eff.status().ToString();
  EXPECT_GE(eff->cfr(), 0.0);
  EXPECT_LE(eff->cfr(), 1.0);
}

TEST_F(ApiIntegrationTest, SaveLoadRoundTripPreservesResults) {
  std::string path = ::testing::TempDir() + "/xks_api_integration.db";
  ASSERT_TRUE(db_->Save(path).ok());
  Result<Database> loaded = Database::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->document_count(), db_->document_count());

  SearchRequest request = SearchRequest::ValidRtf("keyword search");
  request.top_k = 0;
  Result<SearchResponse> before = db_->Search(request);
  Result<SearchResponse> after = loaded->Search(request);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(before->hits.size(), after->hits.size());
  for (size_t i = 0; i < before->hits.size(); ++i) {
    EXPECT_EQ(before->hits[i].document_name, after->hits[i].document_name);
    EXPECT_EQ(before->hits[i].fragment.NodeSet(),
              after->hits[i].fragment.NodeSet());
  }
  std::remove(path.c_str());
}

TEST_F(ApiIntegrationTest, ConcurrentSearchesAreConsistent) {
  // A built Database is immutable; concurrent requests must agree with a
  // serial run.
  SearchRequest request = SearchRequest::ValidRtf("xml keyword search");
  request.top_k = 5;
  Result<SearchResponse> serial = db_->Search(request);
  ASSERT_TRUE(serial.ok());

  constexpr int kThreads = 4;
  constexpr int kRounds = 5;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      for (int round = 0; round < kRounds; ++round) {
        Result<SearchResponse> r = db_->Search(request);
        if (!r.ok() || r->hits.size() != serial->hits.size()) {
          ++mismatches;
          return;
        }
        for (size_t i = 0; i < r->hits.size(); ++i) {
          if (r->hits[i].document != serial->hits[i].document ||
              r->hits[i].rtf.root != serial->hits[i].rtf.root) {
            ++mismatches;
            return;
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace xks
