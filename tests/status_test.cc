#include "src/common/status.h"

#include <gtest/gtest.h>

#include "src/common/result.h"

namespace xks {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::ParseError("p").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::NotFound("n").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("o").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::IoError("i").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Corruption("c").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::AlreadyExists("a").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Unsupported("u").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::FailedPrecondition("f").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
}

TEST(StatusTest, NonOkToStringIncludesCodeNameAndMessage) {
  EXPECT_EQ(Status::NotFound("missing row").ToString(), "NotFound: missing row");
  EXPECT_EQ(Status(StatusCode::kParseError, "").ToString(), "ParseError");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IoError("x"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
  EXPECT_EQ(StatusCodeName(StatusCode::kUnsupported), "Unsupported");
  EXPECT_EQ(StatusCodeName(StatusCode::kFailedPrecondition),
            "FailedPrecondition");
}

Status Fails() { return Status::IoError("disk"); }
Status Succeeds() { return Status::OK(); }

Status UseReturnIfError(bool fail) {
  XKS_RETURN_IF_ERROR(fail ? Fails() : Succeeds());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UseReturnIfError(false).ok());
  EXPECT_EQ(UseReturnIfError(true).code(), StatusCode::kIoError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  int h;
  XKS_ASSIGN_OR_RETURN(h, Half(x));
  int q;
  XKS_ASSIGN_OR_RETURN(q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnChains) {
  Result<int> r = Quarter(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3, second Half fails
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace xks
