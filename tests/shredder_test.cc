#include "src/storage/shredder.h"

#include <gtest/gtest.h>

#include "src/xml/parser.h"

namespace xks {
namespace {

Document Parse(std::string_view xml) {
  Result<Document> doc = ParseXml(xml);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return std::move(doc).value();
}

TEST(ShredderTest, EmptyDocumentYieldsEmptyTables) {
  Document doc;
  ShreddedTables tables = Shred(doc);
  EXPECT_EQ(tables.labels.size(), 0u);
  EXPECT_EQ(tables.elements.size(), 0u);
  EXPECT_EQ(tables.values.size(), 0u);
}

TEST(ShredderTest, LabelTableInternsDistinctLabels) {
  Document doc = Parse("<a><b/><b/><c/></a>");
  ShreddedTables tables = Shred(doc);
  EXPECT_EQ(tables.labels.size(), 3u);  // a, b, c
  EXPECT_NE(tables.labels.Lookup("a"), kNoLabelId);
  EXPECT_NE(tables.labels.Lookup("b"), kNoLabelId);
  EXPECT_EQ(tables.labels.Lookup("zz"), kNoLabelId);
}

TEST(ShredderTest, ElementRowsInDocumentOrder) {
  Document doc = Parse("<a><b><c/></b><d/></a>");
  ShreddedTables tables = Shred(doc);
  ASSERT_EQ(tables.elements.size(), 4u);
  EXPECT_EQ(tables.elements.row(0).dewey, Dewey::Root());
  EXPECT_EQ(tables.elements.row(1).dewey, (Dewey{0, 0}));
  EXPECT_EQ(tables.elements.row(2).dewey, (Dewey{0, 0, 0}));
  EXPECT_EQ(tables.elements.row(3).dewey, (Dewey{0, 1}));
  for (size_t i = 1; i < tables.elements.size(); ++i) {
    EXPECT_LT(tables.elements.row(i - 1).dewey, tables.elements.row(i).dewey);
  }
}

TEST(ShredderTest, LevelEqualsDeweyDepth) {
  Document doc = Parse("<a><b><c/></b></a>");
  ShreddedTables tables = Shred(doc);
  for (size_t i = 0; i < tables.elements.size(); ++i) {
    EXPECT_EQ(tables.elements.row(i).level, tables.elements.row(i).dewey.depth());
  }
}

TEST(ShredderTest, LabelNumberSequenceRebuildsAncestorLabels) {
  Document doc = Parse("<pub><articles><article/></articles></pub>");
  ShreddedTables tables = Shred(doc);
  const ElementRow& leaf = tables.elements.row(2);
  ASSERT_EQ(leaf.label_path.size(), 3u);
  EXPECT_EQ(tables.labels.Name(leaf.label_path[0]), "pub");
  EXPECT_EQ(tables.labels.Name(leaf.label_path[1]), "articles");
  EXPECT_EQ(tables.labels.Name(leaf.label_path[2]), "article");
}

TEST(ShredderTest, SiblingPathsDoNotLeakAcrossSubtrees) {
  // Regression guard for the explicit path-stack handling: the second
  // branch's label path must not contain labels from the first branch.
  Document doc = Parse("<r><x><deep/></x><y><other/></y></r>");
  ShreddedTables tables = Shred(doc);
  const ElementRow& other = tables.elements.row(4);
  ASSERT_EQ(other.label_path.size(), 3u);
  EXPECT_EQ(tables.labels.Name(other.label_path[1]), "y");
}

TEST(ShredderTest, ContentFeatureIsOwnContentOnly) {
  Document doc = Parse("<title>match search</title>");
  ShreddedTables tables = Shred(doc);
  const ContentId& cid = tables.elements.row(0).content_feature;
  EXPECT_EQ(cid.min_word, "match");
  EXPECT_EQ(cid.max_word, "title");  // label participates
}

TEST(ShredderTest, ValueRowsCoverLabelAttributeText) {
  Document doc = Parse(R"(<title lang="english">xml</title>)");
  ShreddedTables tables = Shred(doc);
  ASSERT_EQ(tables.values.size(), 4u);  // title, lang, english, xml
  bool saw_label = false, saw_attr = false, saw_text = false;
  for (size_t i = 0; i < tables.values.size(); ++i) {
    const ValueRow& row = tables.values.row(i);
    if (row.keyword == "title") {
      saw_label = row.source == ValueSource::kLabel;
    } else if (row.keyword == "xml") {
      saw_text = row.source == ValueSource::kText;
    } else if (row.keyword == "lang" || row.keyword == "english") {
      saw_attr |= row.source == ValueSource::kAttribute;
    }
  }
  EXPECT_TRUE(saw_label);
  EXPECT_TRUE(saw_attr);
  EXPECT_TRUE(saw_text);
}

TEST(ShredderTest, ValueRowsDeduplicatePerNode) {
  Document doc = Parse("<a>data data data</a>");
  ShreddedTables tables = Shred(doc);
  EXPECT_EQ(tables.values.size(), 1u);  // "a" label is a stop word; one "data"
  EXPECT_EQ(tables.values.row(0).keyword, "data");
}

TEST(ShredderTest, FrequenciesCountOccurrencesNotMembership) {
  Document doc = Parse("<a>data data data</a>");
  ShreddedTables tables = Shred(doc);
  EXPECT_EQ(tables.values.Frequency("data"), 3u);
  EXPECT_EQ(tables.values.Frequency("absent"), 0u);
}

TEST(ShredderTest, StopWordsNeverBecomeValues) {
  Document doc = Parse("<ref>the quick and the dead</ref>");
  ShreddedTables tables = Shred(doc);
  for (size_t i = 0; i < tables.values.size(); ++i) {
    EXPECT_NE(tables.values.row(i).keyword, "the");
    EXPECT_NE(tables.values.row(i).keyword, "and");
  }
  EXPECT_EQ(tables.values.Frequency("the"), 0u);
}

TEST(ShredderTest, FrequencyTableSorted) {
  Document doc = Parse("<r>zeta alpha zeta</r>");
  ShreddedTables tables = Shred(doc);
  auto table = tables.values.FrequencyTable();
  ASSERT_EQ(table.size(), 3u);  // alpha, r, zeta
  EXPECT_EQ(table[0].first, "alpha");
  EXPECT_EQ(table[2].first, "zeta");
  EXPECT_EQ(table[2].second, 2u);
}

TEST(ShredderTest, ElementTableFindByDewey) {
  Document doc = Parse("<a><b/><c/></a>");
  ShreddedTables tables = Shred(doc);
  Result<const ElementRow*> row = tables.elements.Find(Dewey{0, 1});
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(tables.labels.Name((*row)->label_id), "c");
  EXPECT_FALSE(tables.elements.Find(Dewey{0, 9}).ok());
}

}  // namespace
}  // namespace xks
