// Runtime semantics of the annotated synchronization wrappers
// (src/common/mutex.h) and the invariant-check macros (src/common/check.h).
//
// The *static* half of the contract — that the annotations catch violations
// at compile time — is exercised by tools/expect_analysis_fail.cc under the
// CI static-analysis job; these tests pin down the runtime half: mutual
// exclusion, try-lock semantics, condition-variable predicate waits and
// timeout behavior, which must match std::mutex/std::condition_variable
// exactly (the wrappers add annotations, never semantics).

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/check.h"
#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace xks {
namespace {

TEST(MutexTest, MutualExclusionUnderContention) {
  Mutex mutex;
  int counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(mutex);
        ++counter;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  MutexLock lock(mutex);
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(MutexTest, TryLockFailsWhileHeldElsewhere) {
  // Cross-thread handshake: the helper thread acquires the mutex and parks;
  // the main thread's TryLock must then fail, and succeed after release.
  Mutex mutex;
  std::atomic<bool> held{false};
  std::atomic<bool> release{false};
  std::thread holder([&] {
    mutex.Lock();
    held.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    mutex.Unlock();
  });
  while (!held.load(std::memory_order_acquire)) std::this_thread::yield();

  EXPECT_FALSE(mutex.TryLock());
  release.store(true, std::memory_order_release);
  holder.join();

  ASSERT_TRUE(mutex.TryLock());
  mutex.Unlock();
}

TEST(MutexTest, MutexLockReleasesAtScopeExit) {
  Mutex mutex;
  {
    MutexLock lock(mutex);
    EXPECT_FALSE(mutex.TryLock());
  }
  ASSERT_TRUE(mutex.TryLock());
  mutex.Unlock();
}

TEST(CondVarTest, PredicateWaitObservesNotifiedState) {
  Mutex mutex;
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    {
      MutexLock lock(mutex);
      ready = true;
    }
    cv.NotifyOne();
  });
  {
    MutexLock lock(mutex);
    // The explicit while-loop idiom every wait in src/ uses: the predicate
    // reads guarded state inline in the locked scope, where the analysis
    // can see the lock is held.
    while (!ready) cv.Wait(lock);
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(CondVarTest, WaitForTimesOutWhenNeverNotified) {
  Mutex mutex;
  CondVar cv;
  MutexLock lock(mutex);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(cv.WaitFor(lock, std::chrono::milliseconds(20)));
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(20));
}

TEST(CondVarTest, WaitUntilReturnsTrueOnWakeBeforeDeadline) {
  Mutex mutex;
  CondVar cv;
  bool fired = false;
  std::thread producer([&] {
    {
      MutexLock lock(mutex);
      fired = true;
    }
    cv.NotifyAll();
  });
  bool observed = false;
  {
    MutexLock lock(mutex);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    // Spurious wakeups return true without the predicate holding, so loop —
    // exactly like the dispatcher's linger loop in src/server/service.cc.
    while (!fired) {
      if (!cv.WaitUntil(lock, deadline)) break;  // timeout: give up
    }
    observed = fired;
  }
  producer.join();
  EXPECT_TRUE(observed);
}

TEST(CheckTest, PassingCheckIsANoop) {
  XKS_CHECK(1 + 1 == 2);
  XKS_DCHECK(true);
  SUCCEED();
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(XKS_CHECK(false), "XKS_CHECK failed at .*: false");
}

}  // namespace
}  // namespace xks
