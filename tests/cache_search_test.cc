// The result cache seen through the public API: responses must be
// byte-identical with the cache on, off, cold, warm, at every parallelism
// setting and across pagination — the cache is a throughput knob, never a
// semantics knob. Plus the lifecycle contracts: a mutation publishes a
// fresh (cold) cache, a pinned snapshot keeps its warm one, and a
// concurrent probe/fill/evict hammer (this binary runs under TSan in CI)
// keeps serving correct responses under a deliberately tiny byte budget.

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/database.h"
#include "src/common/string_util.h"

namespace xks {
namespace {

/// The uneven corpus of tests/parallel_search_test.cc: variable hit counts
/// (including zero-hit documents) and variable depths, so early termination,
/// the ranked merge and the cache all see interesting input.
Database MakeUnevenCorpus() {
  Database db;
  for (int d = 0; d < 10; ++d) {
    std::string xml = "<lib>";
    const int hits = (d * 3) % 7;
    for (int h = 0; h < hits; ++h) {
      xml += StrFormat("<book><title>keyword study %d-%d</title></book>", d, h);
    }
    if (d % 3 == 0) {
      xml +=
          "<shelf><row><box><book><title>keyword deep</title></book>"
          "</box></row></shelf>";
    }
    xml += StrFormat("<book><title>filler %d</title></book></lib>", d);
    EXPECT_TRUE(db.AddDocumentXml("doc" + std::to_string(d), xml).ok());
  }
  EXPECT_TRUE(db.Build().ok());
  return db;
}

void ExpectSameHit(const Hit& a, const Hit& b, const std::string& where) {
  EXPECT_EQ(a.document, b.document) << where;
  EXPECT_EQ(a.document_name, b.document_name) << where;
  EXPECT_EQ(a.rtf.root, b.rtf.root) << where;
  EXPECT_EQ(a.rtf.knodes, b.rtf.knodes) << where;
  EXPECT_EQ(a.rtf.root_is_slca, b.rtf.root_is_slca) << where;
  EXPECT_EQ(a.score, b.score) << where;  // bitwise: same ops, same order
  EXPECT_EQ(a.fragment.NodeSet(), b.fragment.NodeSet()) << where;
  EXPECT_EQ(a.raw.NodeSet(), b.raw.NodeSet()) << where;
  EXPECT_EQ(a.snippet, b.snippet) << where;
}

/// Every deterministic response field. Timings are wall-clock and excluded;
/// served_from_cache / documents_from_cache are the observability fields
/// whose whole point is to differ between cold and warm, so they are
/// asserted separately by the tests that care.
void ExpectSameResponse(const SearchResponse& a, const SearchResponse& b,
                        const std::string& where) {
  EXPECT_EQ(a.total_hits, b.total_hits) << where;
  EXPECT_EQ(a.total_is_exact, b.total_is_exact) << where;
  EXPECT_EQ(a.stats_are_exact, b.stats_are_exact) << where;
  EXPECT_EQ(a.documents_searched, b.documents_searched) << where;
  EXPECT_EQ(a.next_cursor, b.next_cursor) << where;
  EXPECT_EQ(a.epoch, b.epoch) << where;
  EXPECT_EQ(a.pruning.raw_nodes, b.pruning.raw_nodes) << where;
  EXPECT_EQ(a.pruning.kept_nodes, b.pruning.kept_nodes) << where;
  EXPECT_EQ(a.keyword_node_count, b.keyword_node_count) << where;
  ASSERT_EQ(a.hits.size(), b.hits.size()) << where;
  for (size_t i = 0; i < a.hits.size(); ++i) {
    ExpectSameHit(a.hits[i], b.hits[i], where + " hit " + std::to_string(i));
  }
}

/// Walks every page of `request`, failing the test on any non-OK page.
std::vector<SearchResponse> WalkPages(const Database& db, SearchRequest request,
                                      bool use_cache, size_t parallelism) {
  request.use_cache = use_cache;
  request.max_parallelism = parallelism;
  std::vector<SearchResponse> pages;
  std::string cursor;
  for (int page = 0; page < 64; ++page) {
    request.cursor = cursor;
    Result<SearchResponse> response = db.Search(request);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    if (!response.ok()) break;
    cursor = response->next_cursor;
    pages.push_back(std::move(response).value());
    if (cursor.empty()) break;
  }
  return pages;
}

SearchRequest PagedRequest(bool rank) {
  SearchRequest request;
  request.query = "keyword";
  request.top_k = 3;
  request.rank = rank;
  request.include_stats = true;
  return request;
}

TEST(CacheSearchTest, ColdAndWarmMatchUncachedAcrossParallelism) {
  for (bool rank : {true, false}) {
    Database db = MakeUnevenCorpus();
    const SearchRequest request = PagedRequest(rank);
    // Baseline: cache bypassed (the pre-cache behavior).
    const std::vector<SearchResponse> baseline =
        WalkPages(db, request, /*use_cache=*/false, /*parallelism=*/1);
    ASSERT_GT(baseline.size(), 1u);  // multiple pages, cursors in play

    for (size_t parallelism : {size_t{1}, size_t{2}, size_t{4}}) {
      // Cold: fills the cache. Warm: served from it. All byte-identical.
      const std::vector<SearchResponse> cold =
          WalkPages(db, request, /*use_cache=*/true, parallelism);
      const std::vector<SearchResponse> warm =
          WalkPages(db, request, /*use_cache=*/true, parallelism);
      const std::string where = std::string(rank ? "ranked" : "unranked") +
                                " p" + std::to_string(parallelism);
      ASSERT_EQ(cold.size(), baseline.size()) << where;
      ASSERT_EQ(warm.size(), baseline.size()) << where;
      for (size_t i = 0; i < baseline.size(); ++i) {
        const std::string page = where + " page " + std::to_string(i);
        ExpectSameResponse(cold[i], baseline[i], page + " (cold)");
        ExpectSameResponse(warm[i], baseline[i], page + " (warm)");
        // The cold walk executed (and filled) at least the deterministic
        // replay prefix of every page, so the warm walk is fully warm.
        EXPECT_TRUE(warm[i].served_from_cache) << page;
        EXPECT_EQ(warm[i].documents_from_cache, warm[i].documents_searched)
            << page;
      }
    }
    EXPECT_GT(db.cache_stats().hits, 0u);
  }
}

TEST(CacheSearchTest, RawFragmentRequestsMatchToo) {
  Database db = MakeUnevenCorpus();
  SearchRequest request = PagedRequest(/*rank=*/true);
  request.include_raw_fragments = true;
  const std::vector<SearchResponse> baseline =
      WalkPages(db, request, /*use_cache=*/false, 1);
  const std::vector<SearchResponse> cold = WalkPages(db, request, true, 2);
  const std::vector<SearchResponse> warm = WalkPages(db, request, true, 2);
  ASSERT_EQ(cold.size(), baseline.size());
  ASSERT_EQ(warm.size(), baseline.size());
  for (size_t i = 0; i < baseline.size(); ++i) {
    ExpectSameResponse(cold[i], baseline[i], "raw cold " + std::to_string(i));
    ExpectSameResponse(warm[i], baseline[i], "raw warm " + std::to_string(i));
  }
}

TEST(CacheSearchTest, UnboundedPageServesIntactEntriesTwice) {
  // top_k = 0 materializes every candidate. The first (cold) response fills
  // the cache and must copy — not gut — the entries it just filled; if it
  // moved out of them, this second walk would serve empty fragments.
  Database db = MakeUnevenCorpus();
  SearchRequest request;
  request.query = "keyword";
  request.top_k = 0;
  request.rank = false;
  request.include_stats = true;
  const std::vector<SearchResponse> baseline =
      WalkPages(db, request, /*use_cache=*/false, 1);
  const std::vector<SearchResponse> first = WalkPages(db, request, true, 1);
  const std::vector<SearchResponse> second = WalkPages(db, request, true, 1);
  ASSERT_EQ(baseline.size(), 1u);
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(second.size(), 1u);
  ASSERT_GT(baseline[0].hits.size(), 0u);
  ExpectSameResponse(first[0], baseline[0], "unbounded cold");
  ExpectSameResponse(second[0], baseline[0], "unbounded warm");
  EXPECT_TRUE(second[0].served_from_cache);
}

TEST(CacheSearchTest, RankingWeightsShareCachedEntries) {
  // The cache key excludes ranking: re-ranking a warm query with different
  // weights must hit every entry (ranking runs downstream of the cache).
  Database db = MakeUnevenCorpus();
  SearchRequest request = PagedRequest(/*rank=*/true);
  ASSERT_TRUE(db.Search(request).ok());  // fill
  const CacheStats after_fill = db.cache_stats();
  ASSERT_GT(after_fill.insertions, 0u);

  request.weights.specificity = 0.9;
  request.weights.proximity = 0.05;
  Result<SearchResponse> reweighted = db.Search(request);
  ASSERT_TRUE(reweighted.ok());
  EXPECT_TRUE(reweighted->served_from_cache);
  const CacheStats after_reweight = db.cache_stats();
  EXPECT_EQ(after_reweight.misses, after_fill.misses);
  EXPECT_GT(after_reweight.hits, after_fill.hits);
}

TEST(CacheSearchTest, SelectionsShareCachedEntries) {
  // The cache key excludes the document selection: warming one document
  // through a restricted search pre-warms it for the full-corpus search.
  Database db = MakeUnevenCorpus();
  SearchRequest request = PagedRequest(/*rank=*/true);
  request.documents = {1};
  ASSERT_TRUE(db.Search(request).ok());

  request.documents.clear();
  Result<SearchResponse> full = db.Search(request);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->documents_from_cache, 1u);
  EXPECT_FALSE(full->served_from_cache);  // partially warm is not "served"
}

TEST(CacheSearchTest, EveryMutationPublishesAColdCache) {
  Database db = MakeUnevenCorpus();
  SearchRequest request = PagedRequest(/*rank=*/true);

  const auto warm_and_check = [&](const std::string& where) {
    ASSERT_TRUE(db.Search(request).ok()) << where;
    Result<SearchResponse> again = db.Search(request);
    ASSERT_TRUE(again.ok()) << where;
    EXPECT_TRUE(again->served_from_cache) << where;
    EXPECT_GT(db.cache_stats().hits, 0u) << where;
  };

  warm_and_check("initial");
  ASSERT_TRUE(db.AddDocumentXml("extra", "<a><b>keyword add</b></a>").ok());
  EXPECT_EQ(db.cache_stats().hits, 0u);
  EXPECT_EQ(db.cache_stats().entry_count, 0u);
  warm_and_check("after add");

  ASSERT_TRUE(db.RemoveDocument("extra").ok());
  EXPECT_EQ(db.cache_stats().hits, 0u);
  warm_and_check("after remove");

  ASSERT_TRUE(db.ReplaceDocumentXml("doc1", "<a><b>keyword new</b></a>").ok());
  EXPECT_EQ(db.cache_stats().hits, 0u);
  Result<SearchResponse> post_replace = db.Search(request);
  ASSERT_TRUE(post_replace.ok());
  // Cold again — and reflecting the replaced content, not a stale entry.
  EXPECT_FALSE(post_replace->served_from_cache);
}

TEST(CacheSearchTest, PinnedSnapshotKeepsItsWarmCacheAcrossMutations) {
  Database db = MakeUnevenCorpus();
  std::shared_ptr<const Snapshot> pinned = db.snapshot();
  ASSERT_NE(pinned, nullptr);

  SearchRequest request = PagedRequest(/*rank=*/true);
  ASSERT_TRUE(pinned->Search(request).ok());  // warm the pinned cache
  Result<SearchResponse> baseline = pinned->Search(request);
  ASSERT_TRUE(baseline.ok());
  EXPECT_TRUE(baseline->served_from_cache);
  const CacheStats warm = pinned->cache_stats();
  ASSERT_GT(warm.hits, 0u);

  // Mutate the catalog: the pinned snapshot (and its cache) must not care.
  ASSERT_TRUE(db.AddDocumentXml("extra", "<a><b>keyword add</b></a>").ok());
  Result<SearchResponse> after = pinned->Search(request);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->served_from_cache);
  ExpectSameResponse(*after, *baseline, "pinned post-mutation");
  EXPECT_GT(pinned->cache_stats().hits, warm.hits);
  // The database's current snapshot runs a separate, cold cache.
  EXPECT_EQ(db.cache_stats().hits, 0u);
}

TEST(CacheSearchTest, DisabledCacheNeverProbesOrFills) {
  Database db = MakeUnevenCorpus();
  CacheConfig config;
  config.enabled = false;
  db.set_cache_config(config);
  EXPECT_FALSE(db.cache_config().enabled);

  SearchRequest request = PagedRequest(/*rank=*/true);
  for (int i = 0; i < 2; ++i) {
    Result<SearchResponse> response = db.Search(request);
    ASSERT_TRUE(response.ok());
    EXPECT_FALSE(response->served_from_cache);
    EXPECT_EQ(response->documents_from_cache, 0u);
  }
  const CacheStats stats = db.cache_stats();
  EXPECT_FALSE(stats.enabled);
  EXPECT_EQ(stats.hits + stats.misses + stats.insertions, 0u);
}

TEST(CacheSearchTest, PerRequestOptOutBypassesTheCache) {
  Database db = MakeUnevenCorpus();
  SearchRequest request = PagedRequest(/*rank=*/true);
  request.use_cache = false;
  ASSERT_TRUE(db.Search(request).ok());
  ASSERT_TRUE(db.Search(request).ok());
  const CacheStats stats = db.cache_stats();
  EXPECT_TRUE(stats.enabled);
  EXPECT_EQ(stats.hits + stats.misses + stats.insertions, 0u);
}

TEST(CacheSearchTest, CursorsSurviveCacheReconfiguration) {
  // set_cache_config republishes the snapshot (fresh cache) but is not a
  // corpus mutation: same epoch, same revision, cursors keep working.
  Database db = MakeUnevenCorpus();
  SearchRequest request = PagedRequest(/*rank=*/true);
  Result<SearchResponse> first = db.Search(request);
  ASSERT_TRUE(first.ok());
  ASSERT_FALSE(first->next_cursor.empty());
  const uint64_t epoch_before = db.epoch();

  CacheConfig config;
  config.capacity_bytes = 1 << 20;
  db.set_cache_config(config);
  EXPECT_EQ(db.epoch(), epoch_before);
  EXPECT_EQ(db.cache_stats().entry_count, 0u);  // fresh cache

  request.cursor = first->next_cursor;
  Result<SearchResponse> second = db.Search(request);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->epoch, epoch_before);
}

TEST(CacheSearchTest, TinyBudgetDegradesToCorrectMisses) {
  // A cache too small to hold anything must behave exactly like no cache:
  // every response correct, every fill immediately trimmed back out.
  Database db = MakeUnevenCorpus();
  CacheConfig config;
  config.capacity_bytes = 8;  // below any entry's charge, even hitless docs
  config.max_entry_bytes = 0;
  config.shards = 1;
  db.set_cache_config(config);

  const SearchRequest request = PagedRequest(/*rank=*/true);
  const std::vector<SearchResponse> baseline =
      WalkPages(db, request, /*use_cache=*/false, 1);
  const std::vector<SearchResponse> squeezed = WalkPages(db, request, true, 2);
  ASSERT_EQ(squeezed.size(), baseline.size());
  for (size_t i = 0; i < baseline.size(); ++i) {
    ExpectSameResponse(squeezed[i], baseline[i],
                       "tiny budget page " + std::to_string(i));
    EXPECT_FALSE(squeezed[i].served_from_cache);
  }
  const CacheStats stats = db.cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.entry_count, 0u);
}

TEST(CacheSearchTest, RandomizedRequestsMatchUncachedBaseline) {
  // A small deterministic property sweep over request shapes: every cached
  // response (cold or warm — both runs are compared) must equal the
  // uncached baseline byte for byte.
  Database db = MakeUnevenCorpus();
  uint64_t rng = 0x9e3779b97f4a7c15ull;
  const auto next = [&rng](uint64_t bound) {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng % bound;
  };
  const std::vector<std::string> queries = {"keyword", "keyword study",
                                            "filler", "deep keyword", "study"};
  for (int round = 0; round < 40; ++round) {
    SearchRequest request;
    request.query = queries[next(queries.size())];
    request.rank = next(2) == 0;
    request.top_k = next(6);  // 0 = unbounded
    request.pruning = next(2) == 0 ? PruningPolicy::kValidContributor
                                   : PruningPolicy::kContributor;
    request.semantics = next(4) == 0 ? LcaSemantics::kSlca : LcaSemantics::kElca;
    request.include_stats = true;
    request.include_raw_fragments = next(4) == 0;
    if (next(3) == 0) {
      request.documents = {static_cast<DocumentId>(next(10))};
    }
    const size_t parallelism = 1 + next(4);
    const std::string where = "round " + std::to_string(round);

    request.use_cache = false;
    request.max_parallelism = 1;
    Result<SearchResponse> baseline = db.Search(request);
    ASSERT_TRUE(baseline.ok()) << where;

    request.use_cache = true;
    request.max_parallelism = parallelism;
    Result<SearchResponse> cached = db.Search(request);
    ASSERT_TRUE(cached.ok()) << where;
    ExpectSameResponse(*cached, *baseline, where + " (first)");
    Result<SearchResponse> again = db.Search(request);
    ASSERT_TRUE(again.ok()) << where;
    ExpectSameResponse(*again, *baseline, where + " (second)");
  }
}

TEST(CacheSearchTest, ConcurrentProbeFillEvictHammerStaysCorrect) {
  // Several threads hammer one snapshot with a rotating query workload
  // against a cache sized to hold only a fraction of the working set, at
  // parallelism 2, so probes, fills and evictions overlap freely. Every
  // response must equal its precomputed uncached baseline. TSan (CI) runs
  // this binary to certify the cache's synchronization.
  Database db = MakeUnevenCorpus();
  const std::vector<std::string> queries = {"keyword",      "keyword study",
                                            "filler",       "deep keyword",
                                            "study keyword", "keyword filler"};
  std::vector<SearchResponse> baselines;
  std::vector<SearchRequest> requests;
  for (size_t q = 0; q < queries.size(); ++q) {
    SearchRequest request;
    request.query = queries[q];
    request.rank = q % 2 == 0;
    request.top_k = 4;
    request.include_stats = true;
    request.max_parallelism = 2;
    request.use_cache = false;
    Result<SearchResponse> baseline = db.Search(request);
    ASSERT_TRUE(baseline.ok());
    baselines.push_back(std::move(baseline).value());
    request.use_cache = true;
    requests.push_back(std::move(request));
  }

  // Size the budget to roughly two queries' worth of entries.
  {
    SearchRequest fill = requests[0];
    ASSERT_TRUE(db.Search(fill).ok());
    const size_t one_query_bytes = db.cache_stats().bytes_in_use;
    ASSERT_GT(one_query_bytes, 0u);
    CacheConfig config;
    config.capacity_bytes = 2 * one_query_bytes;
    config.max_entry_bytes = 0;
    config.shards = 2;
    db.set_cache_config(config);  // republish: fresh cache under pressure
  }

  constexpr size_t kThreads = 4;
  constexpr size_t kRounds = 60;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t round = 0; round < kRounds; ++round) {
        const size_t q = (round + t) % requests.size();
        Result<SearchResponse> response = db.Search(requests[q]);
        EXPECT_TRUE(response.ok()) << response.status().ToString();
        if (!response.ok()) return;
        ExpectSameResponse(*response, baselines[q],
                           "thread " + std::to_string(t) + " round " +
                               std::to_string(round));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Interleaving decides which probes hit during the hammer (a lone thread
  // cycling 6 queries through a 2-query budget can legitimately miss every
  // time), so only the deterministic back-to-back pair pins down hits.
  ASSERT_TRUE(db.Search(requests[0]).ok());
  ASSERT_TRUE(db.Search(requests[0]).ok());
  const CacheStats stats = db.cache_stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GE(stats.hits + stats.misses, kThreads * kRounds);
  EXPECT_GT(stats.evictions, 0u);
}

}  // namespace
}  // namespace xks
