#include "src/core/rtf.h"

#include <gtest/gtest.h>

#include "src/lca/elca.h"
#include "src/xml/parser.h"
#include "tests/test_util.h"

namespace xks {
namespace {

PostingList MakeList(std::initializer_list<std::initializer_list<uint32_t>> codes) {
  PostingList list;
  for (auto code : codes) list.emplace_back(std::vector<uint32_t>(code));
  return list;
}

std::vector<Dewey> MakeLcas(
    std::initializer_list<std::initializer_list<uint32_t>> codes) {
  std::vector<Dewey> lcas;
  for (auto code : codes) lcas.emplace_back(std::vector<uint32_t>(code));
  return lcas;
}

TEST(GetRtfsTest, DispatchesToDeepestAncestor) {
  // LCAs: 0 and 0.2; keyword nodes inside 0.2 go to 0.2, others to 0.
  std::vector<Dewey> lcas = MakeLcas({{0}, {0, 2}});
  PostingList w1 = MakeList({{0, 1}, {0, 2, 0}});
  PostingList w2 = MakeList({{0, 2, 1}, {0, 3}});
  std::vector<Rtf> rtfs = GetRtfs(lcas, {&w1, &w2});
  ASSERT_EQ(rtfs.size(), 2u);
  EXPECT_EQ(rtfs[0].root, (Dewey{0}));
  ASSERT_EQ(rtfs[0].knodes.size(), 2u);
  EXPECT_EQ(rtfs[0].knodes[0].dewey, (Dewey{0, 1}));
  EXPECT_EQ(rtfs[0].knodes[0].mask, 0b01u);
  EXPECT_EQ(rtfs[0].knodes[1].dewey, (Dewey{0, 3}));
  EXPECT_EQ(rtfs[0].knodes[1].mask, 0b10u);
  EXPECT_EQ(rtfs[1].root, (Dewey{0, 2}));
  ASSERT_EQ(rtfs[1].knodes.size(), 2u);
  EXPECT_EQ(rtfs[1].knodes[0].dewey, (Dewey{0, 2, 0}));
  EXPECT_EQ(rtfs[1].knodes[1].dewey, (Dewey{0, 2, 1}));
}

TEST(GetRtfsTest, LcaNodeCanBeItsOwnKeywordNode) {
  std::vector<Dewey> lcas = MakeLcas({{0, 2}});
  PostingList w1 = MakeList({{0, 2}});
  std::vector<Rtf> rtfs = GetRtfs(lcas, {&w1});
  ASSERT_EQ(rtfs.size(), 1u);
  ASSERT_EQ(rtfs[0].knodes.size(), 1u);
  EXPECT_EQ(rtfs[0].knodes[0].dewey, (Dewey{0, 2}));
}

TEST(GetRtfsTest, KeywordNodeOutsideEveryLcaDropped) {
  std::vector<Dewey> lcas = MakeLcas({{0, 2}});
  PostingList w1 = MakeList({{0, 1}, {0, 2, 0}});  // 0.1 outside
  std::vector<Rtf> rtfs = GetRtfs(lcas, {&w1});
  ASSERT_EQ(rtfs.size(), 1u);
  ASSERT_EQ(rtfs[0].knodes.size(), 1u);
  EXPECT_EQ(rtfs[0].knodes[0].dewey, (Dewey{0, 2, 0}));
}

TEST(GetRtfsTest, MaskMergesAcrossLists) {
  std::vector<Dewey> lcas = MakeLcas({{0}});
  PostingList w1 = MakeList({{0, 1}});
  PostingList w2 = MakeList({{0, 1}});
  std::vector<Rtf> rtfs = GetRtfs(lcas, {&w1, &w2});
  ASSERT_EQ(rtfs[0].knodes.size(), 1u);
  EXPECT_EQ(rtfs[0].knodes[0].mask, 0b11u);
}

TEST(GetRtfsTest, EmptyLcaList) {
  PostingList w1 = MakeList({{0, 1}});
  EXPECT_TRUE(GetRtfs({}, {&w1}).empty());
}

TEST(GetRtfsTest, SiblingLcasSplitKeywordNodes) {
  std::vector<Dewey> lcas = MakeLcas({{0, 1}, {0, 3}});
  PostingList w1 = MakeList({{0, 1, 0}, {0, 3, 0}});
  PostingList w2 = MakeList({{0, 1, 1}, {0, 3, 1}});
  std::vector<Rtf> rtfs = GetRtfs(lcas, {&w1, &w2});
  ASSERT_EQ(rtfs.size(), 2u);
  EXPECT_EQ(rtfs[0].knodes.size(), 2u);
  EXPECT_EQ(rtfs[1].knodes.size(), 2u);
}

TEST(GetRtfsTest, MatchesOracleRandomized) {
  for (uint64_t seed = 400; seed < 440; ++seed) {
    RandomLcaInstance instance = MakeRandomLcaInstance(
        seed, /*tree_size=*/50 + seed % 40, /*k=*/2 + seed % 3,
        /*density=*/0.1 + 0.02 * static_cast<double>(seed % 5));
    KeywordLists lists = instance.Views();
    std::vector<Dewey> lcas = ElcaBruteForce(lists);
    std::vector<Rtf> fast = GetRtfs(lcas, lists);
    std::vector<Rtf> oracle = GetRtfsOracle(lcas, lists);
    ASSERT_EQ(fast.size(), oracle.size()) << "seed=" << seed;
    for (size_t i = 0; i < fast.size(); ++i) {
      EXPECT_EQ(fast[i].root, oracle[i].root) << "seed=" << seed;
      EXPECT_EQ(fast[i].knodes, oracle[i].knodes)
          << "seed=" << seed << " root=" << fast[i].root.ToString();
    }
  }
}

TEST(GetRtfsTest, EveryElcaRtfIsNonEmptyRandomized) {
  // ELCA semantics guarantees residual witnesses: no RTF can be empty.
  for (uint64_t seed = 500; seed < 530; ++seed) {
    RandomLcaInstance instance =
        MakeRandomLcaInstance(seed, /*tree_size=*/60, /*k=*/3, /*density=*/0.15);
    KeywordLists lists = instance.Views();
    std::vector<Rtf> rtfs = GetRtfs(ElcaBruteForce(lists), lists);
    for (const Rtf& rtf : rtfs) {
      EXPECT_FALSE(rtf.knodes.empty())
          << "seed=" << seed << " root=" << rtf.root.ToString();
    }
  }
}

class BuildFragmentTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<Document> doc = ParseXml(
        "<pub>"
        "<articles>"
        "<article><title>alpha xml</title><abstract>beta xml</abstract></article>"
        "</articles>"
        "</pub>");
    ASSERT_TRUE(doc.ok());
    doc_ = std::move(doc).value();
  }
  Document doc_;
};

TEST_F(BuildFragmentTreeTest, MaterializesPathNodes) {
  Rtf rtf;
  rtf.root = Dewey{0};
  rtf.knodes = {{Dewey{0, 0, 0, 0}, 0b01}, {Dewey{0, 0, 0, 1}, 0b10}};
  DocumentMetadata metadata(&doc_);
  Result<FragmentTree> tree = BuildFragmentTree(rtf, metadata);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ(tree->size(), 5u);  // pub, articles, article, title, abstract
  const FragmentNode& root = tree->node(tree->root());
  EXPECT_EQ(root.label, "pub");
  EXPECT_EQ(root.klist, 0b11u);
  EXPECT_FALSE(root.is_keyword_node);
  // Path labels come from metadata.
  std::vector<Dewey> nodes = tree->NodeSet();
  EXPECT_EQ(nodes, (std::vector<Dewey>{Dewey{0},
                                       Dewey{0, 0},
                                       Dewey{0, 0, 0},
                                       Dewey{0, 0, 0, 0},
                                       Dewey{0, 0, 0, 1}}));
}

TEST_F(BuildFragmentTreeTest, KListAndCidTransferToAncestors) {
  Rtf rtf;
  rtf.root = Dewey{0, 0, 0};
  rtf.knodes = {{Dewey{0, 0, 0, 0}, 0b01}, {Dewey{0, 0, 0, 1}, 0b10}};
  DocumentMetadata metadata(&doc_);
  Result<FragmentTree> tree = BuildFragmentTree(rtf, metadata);
  ASSERT_TRUE(tree.ok());
  const FragmentNode& article = tree->node(tree->root());
  EXPECT_EQ(article.klist, 0b11u);
  // title content: {alpha, title, xml}; abstract: {abstract, beta, xml};
  // the article's folded cID spans (abstract, xml).
  EXPECT_EQ(article.cid.min_word, "abstract");
  EXPECT_EQ(article.cid.max_word, "xml");
  const FragmentNode& title = tree->node(article.children[0]);
  EXPECT_TRUE(title.is_keyword_node);
  EXPECT_EQ(title.cid.min_word, "alpha");
  EXPECT_EQ(title.cid.max_word, "xml");
}

TEST_F(BuildFragmentTreeTest, RootCanBeKeywordNode) {
  Rtf rtf;
  rtf.root = Dewey{0, 0, 0, 0};
  rtf.knodes = {{Dewey{0, 0, 0, 0}, 0b11}};
  DocumentMetadata metadata(&doc_);
  Result<FragmentTree> tree = BuildFragmentTree(rtf, metadata);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->size(), 1u);
  EXPECT_TRUE(tree->node(tree->root()).is_keyword_node);
  EXPECT_EQ(tree->node(tree->root()).label, "title");
}

TEST_F(BuildFragmentTreeTest, KeywordNodeOutsideRootFails) {
  Rtf rtf;
  rtf.root = Dewey{0, 0, 0, 0};
  rtf.knodes = {{Dewey{0, 0, 0, 1}, 0b1}};
  DocumentMetadata metadata(&doc_);
  EXPECT_FALSE(BuildFragmentTree(rtf, metadata).ok());
}

TEST_F(BuildFragmentTreeTest, UnknownDeweyFails) {
  Rtf rtf;
  rtf.root = Dewey{0};
  rtf.knodes = {{Dewey{0, 9, 9}, 0b1}};
  DocumentMetadata metadata(&doc_);
  EXPECT_FALSE(BuildFragmentTree(rtf, metadata).ok());
}

TEST_F(BuildFragmentTreeTest, ChildrenInDocumentOrder) {
  Rtf rtf;
  rtf.root = Dewey{0, 0, 0};
  rtf.knodes = {{Dewey{0, 0, 0, 0}, 0b1}, {Dewey{0, 0, 0, 1}, 0b1}};
  DocumentMetadata metadata(&doc_);
  Result<FragmentTree> tree = BuildFragmentTree(rtf, metadata);
  ASSERT_TRUE(tree.ok());
  const FragmentNode& root = tree->node(tree->root());
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_LT(tree->node(root.children[0]).dewey, tree->node(root.children[1]).dewey);
}

}  // namespace
}  // namespace xks
