// Section 4.3 claim (2): the four axiomatic properties. Monotonicity and
// query consistency hold across randomized sweeps for both engines; data
// consistency holds for MaxMatch, while ValidRTF's duplicate-elimination
// admits a reproducible counterexample (see DESIGN.md / EXPERIMENTS.md).

#include "src/core/axioms.h"

#include <gtest/gtest.h>

#include "src/core/maxmatch.h"
#include "src/core/validrtf.h"
#include "src/xml/parser.h"
#include "tests/test_util.h"

namespace xks {
namespace {

TEST(AppendLeafTest, PreservesExistingDeweys) {
  Result<Document> before = ParseXml("<r><a/><b><c/></b></r>");
  ASSERT_TRUE(before.ok());
  Dewey new_node;
  Result<Document> after =
      AppendLeaf(*before, Dewey{0, 1}, "leaf", "text", &new_node);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(new_node, (Dewey{0, 1, 1}));
  EXPECT_EQ(after->size(), before->size() + 1);
  // Old nodes keep their codes.
  EXPECT_TRUE(after->FindByDewey(Dewey{0, 1, 0}).ok());
  EXPECT_EQ(after->node(*after->FindByDewey(Dewey{0, 1, 0})).label, "c");
}

TEST(AppendLeafTest, FailsOnMissingParent) {
  Result<Document> doc = ParseXml("<r/>");
  ASSERT_TRUE(doc.ok());
  Dewey new_node;
  EXPECT_FALSE(AppendLeaf(*doc, Dewey{0, 9}, "x", "", &new_node).ok());
}

class AxiomSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AxiomSweepTest, DataMonotonicityHoldsForBothEngines) {
  const uint64_t seed = GetParam();
  Document before = RandomDocument(seed, 25);
  Rng rng(seed * 31 + 7);
  KeywordQuery query = *KeywordQuery::Parse("apple berry");
  for (int step = 0; step < 4; ++step) {
    // Append a leaf with a (sometimes matching) word under a random node.
    Dewey parent;
    before.PreOrder([&](NodeId id) {
      if (rng.Bernoulli(0.2) || parent.empty()) parent = before.node(id).dewey;
      return true;
    });
    Dewey new_node;
    const char* text = rng.Bernoulli(0.5) ? "apple" : "berry cedar";
    Result<Document> after = AppendLeaf(before, parent, "x", text, &new_node);
    ASSERT_TRUE(after.ok());
    for (const SearchOptions& options :
         {ValidRtfOptions(), MaxMatchOptions(), MaxMatchOriginalOptions()}) {
      Result<std::string> v = CheckDataMonotonicity(before, *after, query, options);
      ASSERT_TRUE(v.ok()) << v.status().ToString();
      EXPECT_EQ(*v, "") << "seed=" << seed << " step=" << step;
    }
    before = std::move(after).value();
  }
}

TEST_P(AxiomSweepTest, QueryMonotonicityAndConsistencyHold) {
  const uint64_t seed = GetParam();
  Document doc = RandomDocument(seed, 30);
  KeywordQuery smaller = *KeywordQuery::Parse("apple berry");
  KeywordQuery larger = *KeywordQuery::Parse("apple berry cedar");
  for (const SearchOptions& options :
       {ValidRtfOptions(), MaxMatchOptions(), MaxMatchOriginalOptions()}) {
    Result<std::string> mono = CheckQueryMonotonicity(doc, smaller, larger, options);
    ASSERT_TRUE(mono.ok()) << mono.status().ToString();
    EXPECT_EQ(*mono, "") << "seed=" << seed;
    Result<std::string> cons = CheckQueryConsistency(doc, smaller, larger, options);
    ASSERT_TRUE(cons.ok()) << cons.status().ToString();
    EXPECT_EQ(*cons, "") << "seed=" << seed;
  }
}

TEST_P(AxiomSweepTest, DataConsistencyHoldsForMaxMatch) {
  const uint64_t seed = GetParam();
  Document before = RandomDocument(seed, 25);
  Rng rng(seed * 17 + 3);
  KeywordQuery query = *KeywordQuery::Parse("apple berry");
  Dewey parent;
  before.PreOrder([&](NodeId id) {
    if (rng.Bernoulli(0.15) || parent.empty()) parent = before.node(id).dewey;
    return true;
  });
  Dewey new_node;
  Result<Document> after = AppendLeaf(before, parent, "x", "apple", &new_node);
  ASSERT_TRUE(after.ok());
  Result<std::string> v =
      CheckDataConsistency(before, *after, new_node, query, MaxMatchOptions(),
                           ConsistencyStrength::kFragmentLevel);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(*v, "") << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, AxiomSweepTest,
                         ::testing::Range<uint64_t>(1, 21),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(AxiomCounterexampleTest, ValidRtfDataConsistencyViolation) {
  // Reproduction finding: valid-contributor duplicate elimination violates
  // data consistency. Before the insertion the second 'p' sibling is
  // removed as a duplicate (same TK, same TC). The inserted node changes
  // the first sibling's tree content set, un-duplicating the second — but
  // the inserted node itself is pruned by rule 2.(a), so the re-admitted
  // subtree is not attributable to it.
  Result<Document> before = ParseXml(
      "<r>"
      "<a>alpha</a>"
      "<p><t>beta ceta gamma</t></p>"
      "<p><t>beta ceta gamma</t></p>"
      "</r>");
  ASSERT_TRUE(before.ok());
  KeywordQuery query = *KeywordQuery::Parse("alpha beta ceta");

  Dewey new_node;
  Result<Document> after =
      AppendLeaf(*before, Dewey{0, 1}, "t", "beta zulu", &new_node);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(new_node, (Dewey{0, 1, 1}));

  // Monotonicity still holds...
  Result<std::string> mono =
      CheckDataMonotonicity(*before, *after, query, ValidRtfOptions());
  ASSERT_TRUE(mono.ok());
  EXPECT_EQ(*mono, "");

  // ...but consistency does not, at either strength.
  for (ConsistencyStrength strength : {ConsistencyStrength::kFragmentLevel,
                                       ConsistencyStrength::kDeltaLevel}) {
    Result<std::string> v = CheckDataConsistency(*before, *after, new_node,
                                                 query, ValidRtfOptions(), strength);
    ASSERT_TRUE(v.ok()) << v.status().ToString();
    EXPECT_NE(*v, "") << "expected a violation";
  }

  // MaxMatch's contributor is immune here (it never deduplicated).
  Result<std::string> max =
      CheckDataConsistency(*before, *after, new_node, query, MaxMatchOptions(),
                           ConsistencyStrength::kFragmentLevel);
  ASSERT_TRUE(max.ok());
  EXPECT_EQ(*max, "");
}

TEST(AxiomCheckerTest, DetectsFabricatedMonotonicityViolation) {
  // Sanity-check the checker itself: shrinking data (removal) can reduce
  // results; feed the checker reversed documents and expect a violation.
  Result<Document> small = ParseXml("<r><a>apple</a><b>berry</b></r>");
  Result<Document> big = ParseXml(
      "<r><a>apple</a><b>berry</b><c><a>apple</a><b>berry</b></c></r>");
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(big.ok());
  KeywordQuery query = *KeywordQuery::Parse("apple berry");
  // big → small loses the inner result: monotonicity check must fire.
  Result<std::string> v =
      CheckDataMonotonicity(*big, *small, query, ValidRtfOptions());
  ASSERT_TRUE(v.ok());
  EXPECT_NE(*v, "");
}

TEST(AxiomCheckerTest, QueryExtensionValidation) {
  Result<Document> doc = ParseXml("<r>apple</r>");
  ASSERT_TRUE(doc.ok());
  KeywordQuery q1 = *KeywordQuery::Parse("apple berry");
  KeywordQuery q2 = *KeywordQuery::Parse("apple");
  // larger must actually extend smaller.
  EXPECT_FALSE(CheckQueryMonotonicity(*doc, q1, q2, ValidRtfOptions()).ok());
  KeywordQuery q3 = *KeywordQuery::Parse("berry apple");
  EXPECT_FALSE(CheckQueryMonotonicity(*doc, q1, q3, ValidRtfOptions()).ok());
}

}  // namespace
}  // namespace xks
