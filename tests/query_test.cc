#include "src/core/query.h"

#include <gtest/gtest.h>

namespace xks {
namespace {

TEST(KeywordQueryTest, ParseBasic) {
  Result<KeywordQuery> q = KeywordQuery::Parse("XML keyword search");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->keywords(),
            (std::vector<std::string>{"xml", "keyword", "search"}));
  EXPECT_EQ(q->size(), 3u);
  EXPECT_EQ(q->ToString(), "xml keyword search");
}

TEST(KeywordQueryTest, ParseLowercasesAndDeduplicates) {
  Result<KeywordQuery> q = KeywordQuery::Parse("Data DATA data Query");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->keywords(), (std::vector<std::string>{"data", "query"}));
}

TEST(KeywordQueryTest, ParseDropsStopWords) {
  Result<KeywordQuery> q = KeywordQuery::Parse("the state of the art");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->keywords(), (std::vector<std::string>{"state", "art"}));
}

TEST(KeywordQueryTest, ParseFailsOnEmpty) {
  EXPECT_FALSE(KeywordQuery::Parse("").ok());
  EXPECT_FALSE(KeywordQuery::Parse("the of and").ok());
  EXPECT_FALSE(KeywordQuery::Parse("..,,!!").ok());
}

TEST(KeywordQueryTest, FromKeywordsPreservesOrder) {
  Result<KeywordQuery> q = KeywordQuery::FromKeywords({"Liu", "Keyword"});
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->keyword(0), "liu");
  EXPECT_EQ(q->keyword(1), "keyword");
}

TEST(KeywordQueryTest, TooManyKeywordsRejected) {
  std::vector<std::string> words;
  for (int i = 0; i < 70; ++i) words.push_back("w" + std::to_string(i));
  EXPECT_FALSE(KeywordQuery::FromKeywords(words).ok());
}

TEST(KeywordQueryTest, LabelConstrainedTerms) {
  Result<KeywordQuery> q = KeywordQuery::Parse("title:XML keyword");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->size(), 2u);
  EXPECT_EQ(q->term(0).word, "xml");
  EXPECT_EQ(q->term(0).label, "title");
  EXPECT_TRUE(q->term(0).constrained());
  EXPECT_EQ(q->term(1).word, "keyword");
  EXPECT_FALSE(q->term(1).constrained());
  EXPECT_TRUE(q->has_label_constraints());
  EXPECT_EQ(q->ToString(), "title:xml keyword");
}

TEST(KeywordQueryTest, MalformedLabelConstraints) {
  EXPECT_FALSE(KeywordQuery::Parse(":xml").ok());
  EXPECT_FALSE(KeywordQuery::Parse("title:").ok());
  EXPECT_FALSE(KeywordQuery::Parse("a b:xml c:").ok());
  // More than one colon in a token is ambiguous, not a nested constraint.
  EXPECT_FALSE(KeywordQuery::Parse("a:b:c").ok());
  EXPECT_FALSE(KeywordQuery::Parse("::").ok());
  EXPECT_FALSE(KeywordQuery::Parse("keyword a:b:c").ok());
  // The status carries the offending token.
  Result<KeywordQuery> q = KeywordQuery::Parse("a:b:c");
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(q.status().ToString().find("a:b:c"), std::string::npos);
}

TEST(KeywordQueryTest, AllStopWordInputFails) {
  // Every token normalizes away: plain stop words, case variants, and a
  // label-constrained stop word.
  EXPECT_FALSE(KeywordQuery::Parse("the").ok());
  EXPECT_FALSE(KeywordQuery::Parse("The OF And").ok());
  EXPECT_FALSE(KeywordQuery::Parse("title:the").ok());
  EXPECT_EQ(KeywordQuery::Parse("of the and").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(KeywordQueryTest, MaxQueryKeywordsBoundary) {
  // Exactly kMaxQueryKeywords distinct terms parse; one more is rejected.
  std::vector<std::string> words;
  for (size_t i = 0; i < kMaxQueryKeywords; ++i) {
    words.push_back("w" + std::to_string(i));
  }
  Result<KeywordQuery> at_limit = KeywordQuery::FromKeywords(words);
  ASSERT_TRUE(at_limit.ok());
  EXPECT_EQ(at_limit->size(), kMaxQueryKeywords);
  EXPECT_EQ(at_limit->full_mask(), FullMask(kMaxQueryKeywords));

  words.push_back("overflow");
  Result<KeywordQuery> over_limit = KeywordQuery::FromKeywords(words);
  EXPECT_EQ(over_limit.status().code(), StatusCode::kInvalidArgument);

  // Duplicates collapse before the limit check: 65 tokens, 64 distinct.
  words.back() = "w0";
  EXPECT_TRUE(KeywordQuery::FromKeywords(words).ok());

  // The same boundary through the free-text path.
  std::string text;
  for (size_t i = 0; i <= kMaxQueryKeywords; ++i) {
    text += "w" + std::to_string(i) + " ";
  }
  EXPECT_FALSE(KeywordQuery::Parse(text).ok());
}

TEST(KeywordQueryTest, SameWordDifferentConstraintsKept) {
  Result<KeywordQuery> q = KeywordQuery::Parse("title:xml xml");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->size(), 2u);
  EXPECT_TRUE(q->term(0).constrained());
  EXPECT_FALSE(q->term(1).constrained());
}

TEST(KeywordQueryTest, UnconstrainedQueriesHaveNoConstraints) {
  Result<KeywordQuery> q = KeywordQuery::Parse("xml keyword");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(q->has_label_constraints());
}

TEST(KeywordQueryTest, MasksAndBits) {
  KeywordQuery q = *KeywordQuery::Parse("a1 b2 c3");
  EXPECT_EQ(q.BitFor(0), 0x1u);
  EXPECT_EQ(q.BitFor(2), 0x4u);
  EXPECT_EQ(q.full_mask(), 0x7u);
}

TEST(PaperKeyNumberTest, MsbFirstConventionFromSection41) {
  // Q3 = "VLDB title XML keyword search": kList [0 1 1 1 1] → 15.
  const size_t k = 5;
  KeywordMask mask = 0b11110;  // internal LSB: keywords 1..4 present
  EXPECT_EQ(PaperKeyNumber(mask, k), 15u);
  // kList [0 1 0 0 0] (only "title") → 8.
  EXPECT_EQ(PaperKeyNumber(0b00010, k), 8u);
  // kList [1 1 0 0 0] (VLDB + title) → 24.
  EXPECT_EQ(PaperKeyNumber(0b00011, k), 24u);
  // All keywords → 31.
  EXPECT_EQ(PaperKeyNumber(0b11111, k), 31u);
}

TEST(PaperKeyNumberTest, RoundTrip) {
  const size_t k = 7;
  for (uint64_t key = 0; key < (1u << k); ++key) {
    KeywordMask mask = MaskFromPaperKeyNumber(key, k);
    EXPECT_EQ(PaperKeyNumber(mask, k), key);
  }
}

TEST(KListStringTest, RendersPaperStyle) {
  EXPECT_EQ(KListString(0b11110, 5), "0 1 1 1 1");
  EXPECT_EQ(KListString(0b00001, 5), "1 0 0 0 0");
  EXPECT_EQ(KListString(0, 3), "0 0 0");
}

TEST(IsStrictSubsetMaskTest, PaperCoverageSemantics) {
  // "7 AND 15 = true" example: 7 ⊂ 15.
  EXPECT_TRUE(IsStrictSubsetMask(7, 15));
  EXPECT_FALSE(IsStrictSubsetMask(15, 7));
  EXPECT_FALSE(IsStrictSubsetMask(7, 7));    // equality is not strict
  EXPECT_FALSE(IsStrictSubsetMask(9, 6));    // disjoint
  EXPECT_TRUE(IsStrictSubsetMask(0, 1));     // empty set is a subset
}

}  // namespace
}  // namespace xks
