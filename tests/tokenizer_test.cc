#include "src/text/tokenizer.h"

#include <gtest/gtest.h>

namespace xks {
namespace {

TEST(TokenizerTest, SplitsOnNonAlnum) {
  EXPECT_EQ(TokenizeWords("XML-keyword search"),
            (std::vector<std::string>{"xml", "keyword", "search"}));
}

TEST(TokenizerTest, Lowercases) {
  EXPECT_EQ(TokenizeWords("VLDB SIGMOD"),
            (std::vector<std::string>{"vldb", "sigmod"}));
}

TEST(TokenizerTest, KeepsDigits) {
  EXPECT_EQ(TokenizeWords("year 2008, pages 10-20"),
            (std::vector<std::string>{"year", "2008", "pages", "10", "20"}));
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(TokenizeWords("").empty());
  EXPECT_TRUE(TokenizeWords("—…!!??,,").empty());
}

TEST(TokenizerTest, SingleWord) {
  EXPECT_EQ(TokenizeWords("skyline"), (std::vector<std::string>{"skyline"}));
}

TEST(TokenizerTest, LeadingTrailingSeparators) {
  EXPECT_EQ(TokenizeWords("  (query)  "), (std::vector<std::string>{"query"}));
}

TEST(TokenizerTest, ApostropheSplits) {
  EXPECT_EQ(TokenizeWords("don't"), (std::vector<std::string>{"don", "t"}));
}

TEST(TokenizerTest, PreservesDuplicates) {
  EXPECT_EQ(TokenizeWords("data data data").size(), 3u);
}

TEST(TokenizerTest, ForEachWordStreams) {
  size_t count = 0;
  std::string last;
  ForEachWord("alpha beta gamma", [&](std::string&& w) {
    ++count;
    last = w;
  });
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(last, "gamma");
}

TEST(TokenizerTest, MixedAlnumStaysTogether) {
  EXPECT_EQ(TokenizeWords("x86 arch64"),
            (std::vector<std::string>{"x86", "arch64"}));
}

}  // namespace
}  // namespace xks
