// QueryService: admission control (overload shed, per-client quota,
// draining), submit-time deadline arming, batch coalescing under one pinned
// snapshot, and the graceful-drain contract (every admitted query completes
// exactly once, nothing new is accepted).

#include "src/server/service.h"

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/database.h"
#include "tests/test_util.h"

namespace xks {
namespace {

Database BuildCorpus(size_t documents = 3, size_t nodes_per_doc = 40) {
  Database db;
  for (size_t d = 0; d < documents; ++d) {
    EXPECT_TRUE(
        db.AddDocument("doc-" + std::to_string(d),
                       RandomDocument(/*seed=*/2000 + d, nodes_per_doc))
            .ok());
  }
  EXPECT_TRUE(db.Build().ok());
  return db;
}

SearchRequest ApppleBerryRequest() {
  SearchRequest request;
  request.query = "apple berry";
  return request;
}

TEST(QueryServiceTest, AnswersOneQuery) {
  Database db = BuildCorpus();
  QueryService service(&db, ServiceConfig{});
  std::promise<Result<SearchResponse>> done;
  ASSERT_TRUE(service
                  .Submit(1, ApppleBerryRequest(), CancelToken(),
                          [&](Result<SearchResponse> outcome) {
                            done.set_value(std::move(outcome));
                          })
                  .ok());
  Result<SearchResponse> outcome = done.get_future().get();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome.value().epoch, db.epoch());

  service.Drain();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_GE(stats.batches, 1u);
}

TEST(QueryServiceTest, OutcomeMatchesDirectLibraryCall) {
  Database db = BuildCorpus();
  SearchRequest request = ApppleBerryRequest();
  request.use_cache = false;
  Result<SearchResponse> direct = db.Search(request);
  ASSERT_TRUE(direct.ok());

  QueryService service(&db, ServiceConfig{});
  std::promise<Result<SearchResponse>> done;
  ASSERT_TRUE(service
                  .Submit(1, request, CancelToken(),
                          [&](Result<SearchResponse> outcome) {
                            done.set_value(std::move(outcome));
                          })
                  .ok());
  Result<SearchResponse> outcome = done.get_future().get();
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().hits.size(), direct.value().hits.size());
  EXPECT_EQ(outcome.value().total_hits, direct.value().total_hits);
  for (size_t i = 0; i < outcome.value().hits.size(); ++i) {
    EXPECT_EQ(outcome.value().hits[i].document,
              direct.value().hits[i].document);
    EXPECT_EQ(outcome.value().hits[i].score, direct.value().hits[i].score);
  }
}

TEST(QueryServiceTest, PipelinedBurstCoalescesIntoOneBatchOneEpoch) {
  Database db = BuildCorpus();
  ServiceConfig config;
  config.batch_max = 8;
  config.batch_linger_ms = 2'000;  // plenty; the 8th submission cuts it short
  QueryService service(&db, config);

  constexpr size_t kQueries = 8;
  std::vector<std::promise<Result<SearchResponse>>> done(kQueries);
  for (size_t i = 0; i < kQueries; ++i) {
    ASSERT_TRUE(service
                    .Submit(1, ApppleBerryRequest(), CancelToken(),
                            [&done, i](Result<SearchResponse> outcome) {
                              done[i].set_value(std::move(outcome));
                            })
                    .ok());
  }
  uint64_t epoch = 0;
  for (size_t i = 0; i < kQueries; ++i) {
    Result<SearchResponse> outcome = done[i].get_future().get();
    ASSERT_TRUE(outcome.ok());
    if (i == 0) epoch = outcome.value().epoch;
    // One pinned snapshot per batch: every member sees the same epoch.
    EXPECT_EQ(outcome.value().epoch, epoch);
  }
  service.Drain();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.admitted, kQueries);
  EXPECT_EQ(stats.completed, kQueries);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.max_batch, kQueries);
}

// Parks the dispatcher inside a done callback so admission state can be
// probed while a query is genuinely in flight.
struct Gate {
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::promise<void> entered;
};

TEST(QueryServiceTest, FullPendingQueueShedsWithResourceExhausted) {
  Database db = BuildCorpus(1, 20);
  ServiceConfig config;
  config.max_pending = 2;
  config.batch_max = 1;
  config.batch_linger_ms = 0;
  config.workers = 1;
  QueryService service(&db, config);

  Gate gate;
  std::atomic<int> completions{0};
  ASSERT_TRUE(service
                  .Submit(1, ApppleBerryRequest(), CancelToken(),
                          [&](Result<SearchResponse>) {
                            gate.entered.set_value();
                            gate.released.wait();
                            ++completions;
                          })
                  .ok());
  gate.entered.get_future().wait();  // dispatcher is parked; queue is free

  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(service
                    .Submit(1, ApppleBerryRequest(), CancelToken(),
                            [&](Result<SearchResponse>) { ++completions; })
                    .ok());
  }
  const Status shed = service.Submit(
      1, ApppleBerryRequest(), CancelToken(),
      [&](Result<SearchResponse>) { ++completions; });
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(shed.message().find("pending queue full"), std::string::npos);

  gate.release.set_value();
  service.Drain();
  EXPECT_EQ(completions.load(), 3);  // the shed query never ran
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.shed_overload, 1u);
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.completed, 3u);
}

TEST(QueryServiceTest, PerClientQuotaShedsGreedyClientOnly) {
  Database db = BuildCorpus(1, 20);
  ServiceConfig config;
  config.per_client_inflight = 1;
  config.batch_max = 1;
  config.batch_linger_ms = 0;
  config.workers = 1;
  QueryService service(&db, config);

  Gate gate;
  std::atomic<int> completions{0};
  ASSERT_TRUE(service
                  .Submit(7, ApppleBerryRequest(), CancelToken(),
                          [&](Result<SearchResponse>) {
                            gate.entered.set_value();
                            gate.released.wait();
                            ++completions;
                          })
                  .ok());
  gate.entered.get_future().wait();

  // Client 7 is at quota while its query is in flight...
  const Status shed = service.Submit(
      7, ApppleBerryRequest(), CancelToken(),
      [&](Result<SearchResponse>) { ++completions; });
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(shed.message().find("quota"), std::string::npos);

  // ...while client 8 is not affected.
  ASSERT_TRUE(service
                  .Submit(8, ApppleBerryRequest(), CancelToken(),
                          [&](Result<SearchResponse>) { ++completions; })
                  .ok());

  gate.release.set_value();
  service.Drain();
  EXPECT_EQ(completions.load(), 2);
  EXPECT_EQ(service.stats().shed_quota, 1u);

  // Quota released after completion: client 7 may submit again.
  const Status rejected = service.Submit(
      7, ApppleBerryRequest(), CancelToken(), [](Result<SearchResponse>) {});
  // (Drained service rejects — this checks the quota map was released, not
  // admission: the code must be Unavailable, not ResourceExhausted.)
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), StatusCode::kUnavailable);
}

TEST(QueryServiceTest, DeadlineArmsAtSubmitSoQueueWaitCounts) {
  Database db = BuildCorpus();
  ServiceConfig config;
  // The batch never fills, so the dispatcher lingers well past the
  // deadline; the query must expire in the queue without executing.
  config.batch_max = 64;
  config.batch_linger_ms = 100;
  QueryService service(&db, config);

  SearchRequest request = ApppleBerryRequest();
  request.deadline_ms = 1;
  std::promise<Result<SearchResponse>> done;
  ASSERT_TRUE(service
                  .Submit(1, request, CancelToken(),
                          [&](Result<SearchResponse> outcome) {
                            done.set_value(std::move(outcome));
                          })
                  .ok());
  Result<SearchResponse> outcome = done.get_future().get();
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(QueryServiceTest, PreFiredTokenReportsCancelled) {
  Database db = BuildCorpus();
  QueryService service(&db, ServiceConfig{});
  CancelSource source;
  source.Cancel();
  std::promise<Result<SearchResponse>> done;
  ASSERT_TRUE(service
                  .Submit(1, ApppleBerryRequest(), source.token(),
                          [&](Result<SearchResponse> outcome) {
                            done.set_value(std::move(outcome));
                          })
                  .ok());
  Result<SearchResponse> outcome = done.get_future().get();
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kCancelled);
}

TEST(QueryServiceTest, UnbuiltDatabaseFailsEachQueryCleanly) {
  Database db;  // never built
  QueryService service(&db, ServiceConfig{});
  std::promise<Result<SearchResponse>> done;
  ASSERT_TRUE(service
                  .Submit(1, ApppleBerryRequest(), CancelToken(),
                          [&](Result<SearchResponse> outcome) {
                            done.set_value(std::move(outcome));
                          })
                  .ok());
  Result<SearchResponse> outcome = done.get_future().get();
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryServiceTest, DrainRejectsNewWorkAndFinishesAdmittedWork) {
  Database db = BuildCorpus();
  ServiceConfig config;
  config.batch_linger_ms = 50;
  QueryService service(&db, config);

  constexpr size_t kQueries = 6;
  std::atomic<size_t> completions{0};
  for (size_t i = 0; i < kQueries; ++i) {
    ASSERT_TRUE(service
                    .Submit(i % 2, ApppleBerryRequest(), CancelToken(),
                            [&](Result<SearchResponse> outcome) {
                              EXPECT_TRUE(outcome.ok());
                              ++completions;
                            })
                    .ok());
  }
  service.Drain();
  // The graceful-drain contract: everything admitted completed...
  EXPECT_EQ(completions.load(), kQueries);
  // ...and nothing further is accepted.
  const Status rejected = service.Submit(
      1, ApppleBerryRequest(), CancelToken(), [](Result<SearchResponse>) {});
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), StatusCode::kUnavailable);
  EXPECT_EQ(service.stats().rejected_draining, 1u);
}

TEST(QueryServiceTest, DestructorDrains) {
  Database db = BuildCorpus();
  std::atomic<size_t> completions{0};
  {
    QueryService service(&db, ServiceConfig{});
    for (size_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(service
                      .Submit(1, ApppleBerryRequest(), CancelToken(),
                              [&](Result<SearchResponse>) { ++completions; })
                      .ok());
    }
  }
  EXPECT_EQ(completions.load(), 4u);
}

}  // namespace
}  // namespace xks
