// XMark scenario through the corpus API: the paper's synthetic auction site,
// including the deep description/parlist structure that produces the
// "extreme fragments" of Figure 6.
//
//   ./xmark_search                # default scale, paper workload sample
//   ./xmark_search 0.2 "vdo"      # scale + a workload label or free text

#include <cstdio>
#include <cstdlib>

#include "src/api/database.h"
#include "src/api/effectiveness.h"
#include "src/datagen/workloads.h"
#include "src/datagen/xmark_gen.h"

namespace {

using namespace xks;

SearchRequest WorkloadRequest(const WorkloadQuery& wq, PruningPolicy pruning) {
  SearchRequest request = SearchRequest::Exhaustive(wq.keywords, pruning);
  // Unexpanded labels fall back to free text.
  if (wq.keywords.empty()) request.query = wq.label;
  return request;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xks;

  XmarkOptions options;
  options.scale = argc > 1 ? std::atof(argv[1]) : 0.1;
  std::printf("generating XMark-like data at scale %.3f...\n", options.scale);
  Document doc = GenerateXmark(options);
  std::printf("document: %zu nodes, max depth %zu\n", doc.size(), doc.MaxDepth());

  Database db;
  if (!db.AddDocument("xmark", doc).ok() || !db.Build().ok()) {
    std::printf("failed to build the corpus\n");
    return 1;
  }
  std::printf("corpus: %zu distinct words, %zu postings\n\n",
              db.vocabulary_size(), db.total_postings());

  std::vector<WorkloadQuery> workload;
  if (argc > 2) {
    std::string arg = argv[2];
    std::vector<std::string> keywords = ExpandLabel(arg, XmarkKeywords());
    if (keywords.empty()) {
      // Treat as free text.
      workload.push_back(WorkloadQuery{arg, {}});
    } else {
      workload.push_back(WorkloadQuery{arg, keywords});
    }
  } else {
    // A representative slice of the paper's 24 queries.
    for (const WorkloadQuery& wq : XmarkWorkload()) {
      if (wq.label == "at" || wq.label == "vd" || wq.label == "vdo" ||
          wq.label == "tcmsuiel" || wq.label == "dtcmvo") {
        workload.push_back(wq);
      }
    }
  }

  for (const WorkloadQuery& wq : workload) {
    Result<SearchResponse> valid =
        db.Search(WorkloadRequest(wq, PruningPolicy::kValidContributor));
    Result<SearchResponse> max =
        db.Search(WorkloadRequest(wq, PruningPolicy::kContributor));
    if (!valid.ok() || !max.ok()) {
      std::printf("bad query '%s'\n", wq.label.c_str());
      continue;
    }
    std::printf("%-10s (%s)\n", wq.label.c_str(),
                valid->parsed_query.ToString().c_str());
    std::printf("  RTFs=%zu  ValidRTF=%.2fms  MaxMatch=%.2fms",
                valid->total_hits, valid->timings.post_retrieval_ms(),
                max->timings.post_retrieval_ms());
    Result<QueryEffectiveness> eff =
        CompareHitEffectiveness(valid->hits, max->hits);
    if (eff.ok()) {
      std::printf("  CFR=%.3f APR'=%.3f MaxAPR=%.3f", eff->cfr(),
                  eff->apr_prime(), eff->max_apr());
    }
    std::printf("\n");
  }
  return 0;
}
