// DBLP scenario: a generated bibliography served through the corpus API —
// ranked top-k pages, cursor pagination, and the ValidRTF/MaxMatch
// effectiveness comparison.
//
//   ./dblp_search                 # default scale, demo queries
//   ./dblp_search 0.01 "xml keyword query"

#include <cstdio>
#include <cstdlib>

#include "src/api/database.h"
#include "src/api/effectiveness.h"
#include "src/datagen/dblp_gen.h"

int main(int argc, char** argv) {
  using namespace xks;

  DblpOptions options;
  options.scale = argc > 1 ? std::atof(argv[1]) : 0.005;
  std::printf("generating DBLP-like data at scale %.4f (%zu records)...\n",
              options.scale, DblpRecordCount(options));
  Document doc = GenerateDblp(options);
  std::printf("shredding %zu nodes...\n", doc.size());

  Database db;
  if (!db.AddDocument("dblp", doc).ok() || !db.Build().ok()) {
    std::printf("failed to build the corpus\n");
    return 1;
  }
  std::printf("corpus: %zu document(s), %zu distinct words, %zu postings\n\n",
              db.document_count(), db.vocabulary_size(), db.total_postings());

  std::vector<std::string> queries;
  if (argc > 2) {
    queries.push_back(argv[2]);
  } else {
    queries = {"xml keyword", "keyword similarity", "data algorithm query",
               "vldb sigmod xml", "henry probabilistic retrieval"};
  }

  for (const std::string& text : queries) {
    // Ranked first page of three, with per-stage statistics.
    SearchRequest request = SearchRequest::ValidRtf(text);
    request.top_k = 3;
    request.include_stats = true;
    Result<SearchResponse> page = db.Search(request);
    if (!page.ok()) {
      std::printf("query '%s' failed: %s\n", text.c_str(),
                  page.status().ToString().c_str());
      continue;
    }
    std::printf("query \"%s\": %zu RTFs, post-retrieval %.2f ms\n",
                page->parsed_query.ToString().c_str(), page->total_hits,
                page->timings.post_retrieval_ms());
    if (!page->hits.empty()) {
      const Hit& top = page->hits.front();
      std::printf("  top hit (doc '%s', root %s, score %.3f):\n%s",
                  top.document_name.c_str(), top.rtf.root.ToString().c_str(),
                  top.score, top.snippet.c_str());
    }
    if (!page->next_cursor.empty()) {
      // Fetch the second page through the cursor.
      SearchRequest next = request;
      next.cursor = page->next_cursor;
      next.include_snippets = false;
      Result<SearchResponse> second = db.Search(next);
      if (second.ok()) {
        std::printf("  next page via cursor: %zu more hit(s)%s\n",
                    second->hits.size(),
                    second->next_cursor.empty() ? "" : " (+ further pages)");
      }
    }

    // Effectiveness comparison needs aligned, unranked, unbounded responses.
    SearchRequest valid_all = SearchRequest::ValidRtf(text);
    valid_all.top_k = 0;
    valid_all.rank = false;
    valid_all.include_snippets = false;
    SearchRequest max_all = SearchRequest::MaxMatch(text);
    max_all.top_k = 0;
    max_all.rank = false;
    max_all.include_snippets = false;
    Result<SearchResponse> valid = db.Search(valid_all);
    Result<SearchResponse> max = db.Search(max_all);
    if (valid.ok() && max.ok()) {
      Result<QueryEffectiveness> eff =
          CompareHitEffectiveness(valid->hits, max->hits);
      if (eff.ok()) {
        std::printf("  CFR=%.3f APR=%.3f MaxAPR=%.3f\n", eff->cfr(), eff->apr(),
                    eff->max_apr());
      }
    }
    std::printf("\n");
  }
  return 0;
}
