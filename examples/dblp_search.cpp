// DBLP scenario: generate a bibliography, search it, compare mechanisms.
//
//   ./dblp_search                 # default scale, demo queries
//   ./dblp_search 0.01 "xml keyword query"

#include <cstdio>
#include <cstdlib>

#include "src/core/maxmatch.h"
#include "src/core/metrics.h"
#include "src/core/ranking.h"
#include "src/core/validrtf.h"
#include "src/datagen/dblp_gen.h"
#include "src/datagen/workloads.h"

int main(int argc, char** argv) {
  using namespace xks;

  DblpOptions options;
  options.scale = argc > 1 ? std::atof(argv[1]) : 0.005;
  std::printf("generating DBLP-like data at scale %.4f (%zu records)...\n",
              options.scale, DblpRecordCount(options));
  Document doc = GenerateDblp(options);
  std::printf("shredding %zu nodes...\n", doc.size());
  ShreddedStore store = ShreddedStore::Build(doc);
  std::printf("index: %zu distinct words, %zu postings\n\n",
              store.index().vocabulary_size(), store.index().total_postings());

  std::vector<std::string> queries;
  if (argc > 2) {
    queries.push_back(argv[2]);
  } else {
    queries = {"xml keyword", "keyword similarity", "data algorithm query",
               "vldb sigmod xml", "henry probabilistic retrieval"};
  }

  for (const std::string& text : queries) {
    Result<KeywordQuery> query = KeywordQuery::Parse(text);
    if (!query.ok()) continue;
    Result<SearchResult> valid = ValidRtfSearch(store, *query);
    Result<SearchResult> max = MaxMatchSearch(store, *query);
    if (!valid.ok() || !max.ok()) {
      std::printf("query '%s' failed\n", text.c_str());
      continue;
    }
    std::printf("query \"%s\": %zu RTFs, ValidRTF %.2f ms, MaxMatch %.2f ms\n",
                query->ToString().c_str(), valid->rtf_count(),
                valid->timings.post_retrieval_ms(),
                max->timings.post_retrieval_ms());
    Result<QueryEffectiveness> eff = CompareEffectiveness(*valid, *max);
    if (eff.ok()) {
      std::printf("  CFR=%.3f APR=%.3f MaxAPR=%.3f\n", eff->cfr(), eff->apr(),
                  eff->max_apr());
    }
    // Show the top-ranked fragment (ranking is the paper's future work,
    // implemented in src/core/ranking.h).
    std::vector<FragmentScore> scores = RankFragments(*valid, query->size());
    if (!scores.empty()) {
      const FragmentScore& top = scores.front();
      const FragmentResult& f = valid->fragments[top.fragment_index];
      std::printf("  top-ranked fragment (root %s, %s):\n%s",
                  f.rtf.root.ToString().c_str(), top.ToString().c_str(),
                  f.fragment.ToTreeString(query->size()).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
