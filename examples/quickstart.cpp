// Quickstart: the corpus API on the paper's Figure 1 data.
//
// Builds one xks::Database holding both Figure 1 instances as separate
// documents, then reproduces the paper's running examples through
// SearchRequest/SearchResponse: queries Q1-Q5, the SLCA/ELCA distinction of
// Example 1, the false-positive fix (Q1) and the redundancy fix (Q4).
//
//   ./quickstart            # all five queries
//   ./quickstart "Liu Keyword"

#include <cstdio>

#include "src/api/database.h"
#include "src/datagen/figure1.h"

namespace {

using namespace xks;

void RunQuery(const Database& db, DocumentId doc, const std::string& text) {
  // Unranked, unbounded page: every meaningful RTF in document order, so the
  // ValidRTF and MaxMatch hit lists below stay aligned.
  SearchRequest valid_request = SearchRequest::ValidRtf(text);
  valid_request.documents = {doc};
  valid_request.top_k = 0;
  valid_request.rank = false;
  Result<SearchResponse> valid = db.Search(valid_request);
  if (!valid.ok()) {
    std::printf("bad query '%s': %s\n", text.c_str(),
                valid.status().ToString().c_str());
    return;
  }
  std::printf("=== query: \"%s\" ===\n", valid->parsed_query.ToString().c_str());
  std::printf("ValidRTF: %zu meaningful RTF(s)\n", valid->hits.size());
  for (const Hit& hit : valid->hits) {
    std::printf("-- RTF rooted at %s%s in '%s'\n", hit.rtf.root.ToString().c_str(),
                hit.rtf.root_is_slca ? " (SLCA)" : "", hit.document_name.c_str());
    std::printf("%s", hit.snippet.c_str());
  }

  SearchRequest max_request = SearchRequest::MaxMatch(text);
  max_request.documents = {doc};
  max_request.top_k = 0;
  max_request.rank = false;
  Result<SearchResponse> max = db.Search(max_request);
  if (!max.ok()) return;
  for (size_t i = 0; i < max->hits.size() && i < valid->hits.size(); ++i) {
    if (max->hits[i].fragment.NodeSet() != valid->hits[i].fragment.NodeSet()) {
      std::printf("-- MaxMatch differs on RTF %s (contributor filtering):\n%s",
                  max->hits[i].rtf.root.ToString().c_str(),
                  max->hits[i].snippet.c_str());
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xks;
  Result<Document> fig1a = Figure1aDocument();
  Result<Document> fig1b = Figure1bDocument();
  if (!fig1a.ok() || !fig1b.ok()) {
    std::printf("failed to load Figure 1 data\n");
    return 1;
  }

  Database db;
  Result<DocumentId> publications = db.AddDocument("publications", *fig1a);
  Result<DocumentId> team = db.AddDocument("team", *fig1b);
  if (!publications.ok() || !team.ok() || !db.Build().ok()) {
    std::printf("failed to build the corpus\n");
    return 1;
  }

  if (argc > 1) {
    RunQuery(db, *publications, argv[1]);
    return 0;
  }

  std::printf("Figure 1(a): Publications instance (%zu nodes)\n\n",
              fig1a->size());
  RunQuery(db, *publications, PaperQuery(1));
  RunQuery(db, *publications, PaperQuery(2));
  RunQuery(db, *publications, PaperQuery(3));
  std::printf("Figure 1(b): team/players instance (%zu nodes)\n\n",
              fig1b->size());
  RunQuery(db, *team, PaperQuery(4));
  RunQuery(db, *team, PaperQuery(5));
  return 0;
}
