// Quickstart: run ValidRTF and MaxMatch on the paper's Figure 1 data.
//
// Reproduces the paper's running examples: queries Q1-Q5, the SLCA/ELCA
// distinction of Example 1, the false-positive fix (Q1) and the redundancy
// fix (Q4).
//
//   ./quickstart            # all five queries
//   ./quickstart "Liu Keyword"

#include <cstdio>

#include "src/core/maxmatch.h"
#include "src/core/validrtf.h"
#include "src/datagen/figure1.h"

namespace {

using namespace xks;

void RunQuery(const ShreddedStore& store, const std::string& text) {
  Result<KeywordQuery> query = KeywordQuery::Parse(text);
  if (!query.ok()) {
    std::printf("bad query '%s': %s\n", text.c_str(),
                query.status().ToString().c_str());
    return;
  }
  std::printf("=== query: \"%s\" ===\n", query->ToString().c_str());

  Result<SearchResult> valid = ValidRtfSearch(store, *query);
  if (!valid.ok()) {
    std::printf("ValidRTF failed: %s\n", valid.status().ToString().c_str());
    return;
  }
  std::printf("ValidRTF: %zu meaningful RTF(s)\n", valid->rtf_count());
  for (const FragmentResult& f : valid->fragments) {
    std::printf("-- RTF rooted at %s%s\n", f.rtf.root.ToString().c_str(),
                f.rtf.root_is_slca ? " (SLCA)" : "");
    std::printf("%s", f.fragment.ToTreeString(query->size()).c_str());
  }

  Result<SearchResult> max = MaxMatchSearch(store, *query);
  if (!max.ok()) return;
  for (size_t i = 0; i < max->rtf_count(); ++i) {
    const auto& mm = max->fragments[i].fragment;
    const auto& vr = valid->fragments[i].fragment;
    if (mm.NodeSet() != vr.NodeSet()) {
      std::printf("-- MaxMatch differs on RTF %s (contributor filtering):\n%s",
                  max->fragments[i].rtf.root.ToString().c_str(),
                  mm.ToTreeString(query->size()).c_str());
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xks;
  Result<Document> fig1a = Figure1aDocument();
  Result<Document> fig1b = Figure1bDocument();
  if (!fig1a.ok() || !fig1b.ok()) {
    std::printf("failed to load Figure 1 data\n");
    return 1;
  }
  ShreddedStore store_a = ShreddedStore::Build(*fig1a);
  ShreddedStore store_b = ShreddedStore::Build(*fig1b);

  if (argc > 1) {
    RunQuery(store_a, argv[1]);
    return 0;
  }

  std::printf("Figure 1(a): Publications instance (%zu nodes)\n\n",
              fig1a->size());
  RunQuery(store_a, PaperQuery(1));
  RunQuery(store_a, PaperQuery(2));
  RunQuery(store_a, PaperQuery(3));
  std::printf("Figure 1(b): team/players instance (%zu nodes)\n\n",
              fig1b->size());
  RunQuery(store_b, PaperQuery(4));
  RunQuery(store_b, PaperQuery(5));
  return 0;
}
