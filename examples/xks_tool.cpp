// xks_tool: shred an arbitrary XML file and run keyword queries against it.
//
//   ./xks_tool shred  input.xml store.bin       # parse + shred + persist
//   ./xks_tool search store.bin "xml keyword"   # query a persisted store
//   ./xks_tool query  input.xml "xml keyword"   # one-shot parse + query
//
// Queries support label constraints ("title:xml keyword"). The search/query
// commands print each meaningful RTF as an indented tree (ValidRTF
// semantics; pass --maxmatch to compare). In query mode, --xml renders each
// fragment as an XML snippet with the original attributes and text.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/core/maxmatch.h"
#include "src/core/render.h"
#include "src/core/validrtf.h"
#include "src/xml/parser.h"

namespace {

using namespace xks;

int Usage() {
  std::printf(
      "usage:\n"
      "  xks_tool shred  <input.xml> <store.bin>\n"
      "  xks_tool search <store.bin> <query> [--maxmatch]\n"
      "  xks_tool query  <input.xml> <query> [--maxmatch] [--xml]\n");
  return 2;
}

Result<std::string> ReadFile(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError(std::string("cannot open ") + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int RunSearch(const ShreddedStore& store, const char* query_text, bool maxmatch,
              const Document* doc_for_rendering) {
  Result<KeywordQuery> query = KeywordQuery::Parse(query_text);
  if (!query.ok()) {
    std::printf("bad query: %s\n", query.status().ToString().c_str());
    return 1;
  }
  Result<SearchResult> result = maxmatch ? MaxMatchSearch(store, *query)
                                         : ValidRtfSearch(store, *query);
  if (!result.ok()) {
    std::printf("search failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%zu meaningful RTF(s) for \"%s\" [%s]\n", result->rtf_count(),
              query->ToString().c_str(), maxmatch ? "MaxMatch" : "ValidRTF");
  for (const FragmentResult& f : result->fragments) {
    std::printf("-- root %s%s\n", f.rtf.root.ToString().c_str(),
                f.rtf.root_is_slca ? " (SLCA)" : "");
    if (doc_for_rendering != nullptr) {
      Result<std::string> xml = RenderFragmentXml(*doc_for_rendering, f.fragment);
      if (xml.ok()) std::printf("%s", xml->c_str());
    } else {
      std::printf("%s", f.fragment.ToTreeString(query->size()).c_str());
    }
  }
  std::printf("timings: keyword nodes %.2fms, post-retrieval %.2fms; "
              "pruned %zu of %zu raw nodes (%.1f%%)\n",
              result->timings.get_keyword_nodes_ms,
              result->timings.post_retrieval_ms(),
              result->pruning.pruned_nodes(), result->pruning.raw_nodes,
              100.0 * result->pruning.pruning_ratio());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xks;
  if (argc < 4) return Usage();
  bool maxmatch = false;
  bool render_xml = false;
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "--maxmatch") == 0) maxmatch = true;
    if (std::strcmp(argv[i], "--xml") == 0) render_xml = true;
  }

  if (std::strcmp(argv[1], "shred") == 0) {
    Result<std::string> text = ReadFile(argv[2]);
    if (!text.ok()) {
      std::printf("%s\n", text.status().ToString().c_str());
      return 1;
    }
    Result<Document> doc = ParseXml(*text);
    if (!doc.ok()) {
      std::printf("parse error: %s\n", doc.status().ToString().c_str());
      return 1;
    }
    ShreddedStore store = ShreddedStore::Build(*doc);
    Status s = store.Save(argv[3]);
    if (!s.ok()) {
      std::printf("%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("shredded %zu nodes, %zu distinct words → %s\n", doc->size(),
                store.index().vocabulary_size(), argv[3]);
    return 0;
  }

  if (std::strcmp(argv[1], "search") == 0) {
    Result<ShreddedStore> store = ShreddedStore::Load(argv[2]);
    if (!store.ok()) {
      std::printf("%s\n", store.status().ToString().c_str());
      return 1;
    }
    return RunSearch(*store, argv[3], maxmatch, /*doc_for_rendering=*/nullptr);
  }

  if (std::strcmp(argv[1], "query") == 0) {
    Result<std::string> text = ReadFile(argv[2]);
    if (!text.ok()) {
      std::printf("%s\n", text.status().ToString().c_str());
      return 1;
    }
    Result<Document> doc = ParseXml(*text);
    if (!doc.ok()) {
      std::printf("parse error: %s\n", doc.status().ToString().c_str());
      return 1;
    }
    ShreddedStore store = ShreddedStore::Build(*doc);
    return RunSearch(store, argv[3], maxmatch,
                     render_xml ? &doc.value() : nullptr);
  }

  return Usage();
}
