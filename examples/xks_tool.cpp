// xks_tool: build, mutate and search a persistent corpus through the
// xks::Database API.
//
//   ./xks_tool shred   corpus.db a.xml [b.xml ...]  # parse + shred + persist
//   ./xks_tool search  corpus.db "xml keyword"      # query a persisted corpus
//   ./xks_tool query   input.xml "xml keyword"      # one-shot parse + query
//   ./xks_tool add     corpus.db new.xml [...]      # incremental add + save
//   ./xks_tool remove  corpus.db docname            # remove by name + save
//   ./xks_tool replace corpus.db docname new.xml    # replace content + save
//   ./xks_tool stats   corpus.db ["query"]          # corpus + cache counters
//   ./xks_tool stats --scrape HOST:PORT             # daemon metrics table
//
// add/remove/replace are incremental (O(changed doc), no corpus rescan):
// each publishes a new snapshot epoch, printed on success. Outstanding
// search cursors die with the old epoch.
//
// stats prints the corpus counters (documents, epoch, revision, vocabulary,
// postings, depth) plus the result-cache configuration and its
// hit/miss/eviction/bytes counters; with a query argument it runs the query
// twice first — cold fill, then warm hit — so the counters show the cache
// doing its job. The --scrape form instead sends one kStatsRequest frame to
// a running xksd / xks_coord daemon and renders the returned metrics
// snapshot as a human-readable table (counters and gauges one line per
// labeled point; histograms with count/sum and p50/p90/p99 estimated from
// the bucket boundaries).
//
// Queries support label constraints ("title:xml keyword"). search/query
// flags:
//   --maxmatch       contributor pruning (compare against ValidRTF)
//   --topk N         page size (default 10; 0 = everything)
//   --cursor TOKEN   continue from a previous page's next-cursor
//   --doc NAME       restrict the search to one document of the corpus
//   --parallelism N  concurrent document scans (0 = hardware threads,
//                    default; 1 = serial). Results are identical either way.
//   --cache=on|off   probe/fill the snapshot result cache (default on).
//                    Results are identical either way; within one tool run
//                    only repeated pages of one invocation can hit.
//   --stats          print per-stage timings, pruning and cache counters
//   --xml            (query mode) render fragments as XML snippets
//
// search also accepts legacy single-document XKS1 store files.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/api/database.h"
#include "src/common/io.h"
#include "src/core/render.h"
#include "src/server/client.h"
#include "src/xml/parser.h"

namespace {

using namespace xks;

int Usage() {
  std::printf(
      "usage:\n"
      "  xks_tool shred   <corpus.db> <input.xml> [input2.xml ...]\n"
      "  xks_tool search  <corpus.db> <query> [--maxmatch] [--topk N]\n"
      "                   [--cursor TOKEN] [--doc NAME] [--parallelism N]\n"
      "                   [--cache=on|off] [--stats]\n"
      "  xks_tool query   <input.xml> <query> [--maxmatch] [--xml] [--topk N]\n"
      "  xks_tool add     <corpus.db> <input.xml> [input2.xml ...]\n"
      "  xks_tool remove  <corpus.db> <docname>\n"
      "  xks_tool replace <corpus.db> <docname> <input.xml>\n"
      "  xks_tool stats   <corpus.db> [query]\n"
      "  xks_tool stats   --scrape HOST:PORT\n");
  return 2;
}

/// Flags shared by the search/query commands.
struct Flags {
  bool maxmatch = false;
  bool render_xml = false;
  bool stats = false;
  bool valid = true;
  bool use_cache = true;
  size_t top_k = 10;
  size_t parallelism = 0;  // 0 = one worker per hardware thread
  std::string cursor;
  std::string doc_name;
};

Flags ParseFlags(int argc, char** argv, int first) {
  Flags flags;
  for (int i = first; i < argc; ++i) {
    if (std::strcmp(argv[i], "--maxmatch") == 0) flags.maxmatch = true;
    if (std::strcmp(argv[i], "--xml") == 0) flags.render_xml = true;
    if (std::strcmp(argv[i], "--stats") == 0) flags.stats = true;
    if (std::strcmp(argv[i], "--cache=on") == 0) flags.use_cache = true;
    if (std::strcmp(argv[i], "--cache=off") == 0) flags.use_cache = false;
    if (std::strncmp(argv[i], "--cache=", 8) == 0 &&
        std::strcmp(argv[i] + 8, "on") != 0 &&
        std::strcmp(argv[i] + 8, "off") != 0) {
      std::printf("bad --cache value '%s' (expected on or off)\n", argv[i] + 8);
      flags.valid = false;
    }
    if (std::strcmp(argv[i], "--topk") == 0 && i + 1 < argc) {
      const char* value = argv[++i];
      char* end = nullptr;
      unsigned long long parsed = std::strtoull(value, &end, 10);
      if (*value == '\0' || *end != '\0' || *value == '-') {
        std::printf("bad --topk value '%s' (expected a non-negative integer)\n",
                    value);
        flags.valid = false;
      } else {
        flags.top_k = static_cast<size_t>(parsed);
      }
    }
    if (std::strcmp(argv[i], "--parallelism") == 0 && i + 1 < argc) {
      const char* value = argv[++i];
      char* end = nullptr;
      unsigned long long parsed = std::strtoull(value, &end, 10);
      if (*value == '\0' || *end != '\0' || *value == '-') {
        std::printf(
            "bad --parallelism value '%s' (expected a non-negative integer)\n",
            value);
        flags.valid = false;
      } else {
        flags.parallelism = static_cast<size_t>(parsed);
      }
    }
    if (std::strcmp(argv[i], "--cursor") == 0 && i + 1 < argc) {
      flags.cursor = argv[++i];
    }
    if (std::strcmp(argv[i], "--doc") == 0 && i + 1 < argc) {
      flags.doc_name = argv[++i];
    }
  }
  return flags;
}

std::string BaseName(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

int RunSearch(const Database& db, const char* query_text, const Flags& flags,
              const Document* doc_for_rendering) {
  SearchRequest request;
  request.query = query_text;
  if (flags.maxmatch) request.pruning = PruningPolicy::kContributor;
  request.top_k = flags.top_k;
  request.max_parallelism = flags.parallelism;
  request.cursor = flags.cursor;
  request.include_stats = flags.stats;
  request.use_cache = flags.use_cache;
  // XML rendering replaces the tree-string snippet entirely.
  request.include_snippets = doc_for_rendering == nullptr;
  if (!flags.doc_name.empty()) {
    Result<DocumentId> doc = db.FindDocument(flags.doc_name);
    if (!doc.ok()) {
      std::printf("%s\n", doc.status().ToString().c_str());
      return 1;
    }
    request.documents = {*doc};
  }

  Result<SearchResponse> response = db.Search(request);
  if (!response.ok()) {
    std::printf("search failed: %s\n", response.status().ToString().c_str());
    return 1;
  }
  std::printf("%zu%s hit(s) for \"%s\" [%s], showing %zu\n",
              response->total_hits, response->total_is_exact ? "" : "+",
              response->parsed_query.ToString().c_str(),
              flags.maxmatch ? "MaxMatch" : "ValidRTF", response->hits.size());
  for (const Hit& hit : response->hits) {
    std::printf("-- doc '%s' root %s%s score %.3f\n", hit.document_name.c_str(),
                hit.rtf.root.ToString().c_str(),
                hit.rtf.root_is_slca ? " (SLCA)" : "", hit.score);
    if (doc_for_rendering != nullptr) {
      Result<std::string> xml = RenderFragmentXml(*doc_for_rendering, hit.fragment);
      if (xml.ok()) std::printf("%s", xml->c_str());
    } else {
      std::printf("%s", hit.snippet.c_str());
    }
  }
  if (!response->next_cursor.empty()) {
    std::printf("next page: --cursor %s\n", response->next_cursor.c_str());
  }
  if (flags.stats) {
    std::printf("timings: keyword nodes %.2fms, post-retrieval %.2fms; "
                "pruned %zu of %zu raw nodes (%.1f%%); %zu keyword node(s), "
                "%zu document(s) searched\n",
                response->timings.get_keyword_nodes_ms,
                response->timings.post_retrieval_ms(),
                response->pruning.pruned_nodes(), response->pruning.raw_nodes,
                100.0 * response->pruning.pruning_ratio(),
                response->keyword_node_count, response->documents_searched);
    CacheStats cache = db.cache_stats();
    std::printf("cache: %s, %zu/%zu document(s) of this page from cache; "
                "%llu hit(s), %llu miss(es), %llu eviction(s), %zu entr%s, "
                "%zu of %zu bytes\n",
                !flags.use_cache        ? "bypassed"
                : response->served_from_cache ? "served this page"
                : cache.enabled               ? "enabled"
                                              : "disabled",
                response->documents_from_cache, response->documents_searched,
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses),
                static_cast<unsigned long long>(cache.evictions),
                cache.entry_count, cache.entry_count == 1 ? "y" : "ies",
                cache.bytes_in_use, cache.capacity_bytes);
  }
  return 0;
}

/// "0.000128" → "128us": durations-in-seconds as a human scale.
std::string HumanSeconds(double seconds) {
  char buffer[32];
  if (seconds < 1e-3) {
    std::snprintf(buffer, sizeof buffer, "%.0fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buffer, sizeof buffer, "%.2fms", seconds * 1e3);
  } else {
    std::snprintf(buffer, sizeof buffer, "%.3fs", seconds);
  }
  return buffer;
}

/// Upper bucket bound where the cumulative count first reaches q*count —
/// a conservative quantile estimate (the true value is at most this).
double QuantileUpperBound(const HistogramData& histogram, double q) {
  const uint64_t target =
      static_cast<uint64_t>(q * static_cast<double>(histogram.count) + 0.5);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < histogram.buckets.size(); ++b) {
    cumulative += histogram.buckets[b];
    if (cumulative >= target) {
      return b < histogram.bounds.size() ? histogram.bounds[b] : -1.0;
    }
  }
  return -1.0;  // overflow bucket: no finite bound
}

/// Renders a daemon metrics snapshot as a fixed-width table.
void PrintMetricsTable(const MetricsSnapshot& snapshot) {
  std::printf("%-42s %-10s %-28s %s\n", "metric", "kind", "labels", "value");
  for (const MetricFamily& family : snapshot.families) {
    for (const MetricPoint& point : family.points) {
      const char* labels = point.labels.empty() ? "-" : point.labels.c_str();
      switch (family.kind) {
        case MetricKind::kCounter:
          std::printf("%-42s %-10s %-28s %llu\n", family.name.c_str(),
                      "counter", labels,
                      static_cast<unsigned long long>(point.counter_value));
          break;
        case MetricKind::kGauge:
          std::printf("%-42s %-10s %-28s %lld\n", family.name.c_str(), "gauge",
                      labels, static_cast<long long>(point.gauge_value));
          break;
        case MetricKind::kHistogram: {
          const HistogramData& h = point.histogram;
          std::string quantiles;
          if (h.count > 0) {
            const double p50 = QuantileUpperBound(h, 0.50);
            const double p90 = QuantileUpperBound(h, 0.90);
            const double p99 = QuantileUpperBound(h, 0.99);
            quantiles =
                " p50<=" + (p50 < 0 ? "inf" : HumanSeconds(p50)) +
                " p90<=" + (p90 < 0 ? "inf" : HumanSeconds(p90)) +
                " p99<=" + (p99 < 0 ? "inf" : HumanSeconds(p99));
          }
          std::printf("%-42s %-10s %-28s count=%llu sum=%s%s\n",
                      family.name.c_str(), "histogram", labels,
                      static_cast<unsigned long long>(h.count),
                      HumanSeconds(h.sum).c_str(), quantiles.c_str());
          break;
        }
      }
    }
  }
}

/// `stats --scrape HOST:PORT`: one kStatsRequest frame to a live daemon.
int RunScrape(const char* endpoint) {
  const char* colon = std::strrchr(endpoint, ':');
  if (colon == nullptr || colon == endpoint || colon[1] == '\0') {
    std::printf("bad --scrape endpoint '%s' (expected HOST:PORT)\n", endpoint);
    return 2;
  }
  const std::string host(endpoint, static_cast<size_t>(colon - endpoint));
  char* end = nullptr;
  const unsigned long long port = std::strtoull(colon + 1, &end, 10);
  if (*end != '\0' || port == 0 || port > 65535) {
    std::printf("bad --scrape port '%s'\n", colon + 1);
    return 2;
  }
  auto connected =
      XksClient::Connect(host, static_cast<uint16_t>(port), /*timeout=*/5000);
  if (!connected.ok()) {
    std::printf("%s\n", connected.status().ToString().c_str());
    return 1;
  }
  XksClient client = std::move(connected).value();
  Frame request;
  request.kind = FrameKind::kStatsRequest;
  request.request_id = 1;
  request.body = EncodeStatsRequest();
  const Status sent = client.SendFrame(request);
  if (!sent.ok()) {
    std::printf("stats send: %s\n", sent.ToString().c_str());
    return 1;
  }
  Result<Frame> reply = client.ReceiveFrame();
  if (!reply.ok()) {
    std::printf("stats receive: %s\n", reply.status().ToString().c_str());
    return 1;
  }
  if (reply->kind != FrameKind::kStatsReply) {
    std::printf("unexpected reply kind %u\n",
                static_cast<unsigned>(reply->kind));
    return 1;
  }
  Result<MetricsSnapshot> snapshot = DecodeStatsReply(reply->body);
  if (!snapshot.ok()) {
    std::printf("stats decode: %s\n", snapshot.status().ToString().c_str());
    return 1;
  }
  PrintMetricsTable(*snapshot);
  return 0;
}

int RunStats(const char* path, const char* query_text) {
  Result<Database> db = Database::Load(path);
  if (!db.ok()) {
    std::printf("%s\n", db.status().ToString().c_str());
    return 1;
  }
  if (query_text != nullptr) {
    // Cold fill, then warm hit: the counters below show the cache working.
    SearchRequest request;
    request.query = query_text;
    request.include_snippets = false;
    for (int run = 0; run < 2; ++run) {
      Result<SearchResponse> response = db->Search(request);
      if (!response.ok()) {
        std::printf("search failed: %s\n", response.status().ToString().c_str());
        return 1;
      }
      std::printf("%s run: %zu hit(s)%s\n", run == 0 ? "cold" : "warm",
                  response->total_hits,
                  response->served_from_cache ? " (served from cache)" : "");
    }
  }
  std::printf("corpus: %zu document(s), epoch %llu, revision %016llx\n",
              db->document_count(),
              static_cast<unsigned long long>(db->epoch()),
              static_cast<unsigned long long>(db->snapshot()->revision()));
  std::printf("index: %zu distinct word(s), %zu posting(s), max depth %zu\n",
              db->vocabulary_size(), db->total_postings(),
              db->corpus_max_depth());
  CacheConfig config = db->cache_config();
  CacheStats cache = db->cache_stats();
  std::printf("cache config: %s, capacity %zu bytes, per-entry cap %zu bytes, "
              "%zu shard(s)\n",
              config.enabled ? "enabled" : "disabled", config.capacity_bytes,
              config.max_entry_bytes, config.shards);
  std::printf("cache stats: %llu hit(s), %llu miss(es), %llu insertion(s), "
              "%llu eviction(s), %llu rejected, %zu entr%s, %zu bytes in "
              "use, hit rate %.1f%%\n",
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses),
              static_cast<unsigned long long>(cache.insertions),
              static_cast<unsigned long long>(cache.evictions),
              static_cast<unsigned long long>(cache.rejected),
              cache.entry_count, cache.entry_count == 1 ? "y" : "ies",
              cache.bytes_in_use, 100.0 * cache.hit_rate());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xks;
  if (argc >= 3 && std::strcmp(argv[1], "stats") == 0) {
    if (std::strcmp(argv[2], "--scrape") == 0) {
      if (argc < 4) return Usage();
      return RunScrape(argv[3]);
    }
    return RunStats(argv[2], argc >= 4 ? argv[3] : nullptr);
  }
  if (argc < 4) return Usage();

  if (std::strcmp(argv[1], "shred") == 0) {
    Database db;
    for (int i = 3; i < argc; ++i) {
      Result<std::string> text = ReadFileToString(argv[i]);
      if (!text.ok()) {
        std::printf("%s\n", text.status().ToString().c_str());
        return 1;
      }
      Result<DocumentId> doc = db.AddDocumentXml(BaseName(argv[i]), *text);
      if (!doc.ok()) {
        std::printf("%s: %s\n", argv[i], doc.status().ToString().c_str());
        return 1;
      }
    }
    Status built = db.Build();
    if (!built.ok()) {
      std::printf("%s\n", built.ToString().c_str());
      return 1;
    }
    Status saved = db.Save(argv[2]);
    if (!saved.ok()) {
      std::printf("%s\n", saved.ToString().c_str());
      return 1;
    }
    std::printf("shredded %zu document(s), %zu distinct words, %zu postings → %s\n",
                db.document_count(), db.vocabulary_size(), db.total_postings(),
                argv[2]);
    return 0;
  }

  if (std::strcmp(argv[1], "add") == 0) {
    Result<Database> db = Database::Load(argv[2]);
    if (!db.ok()) {
      std::printf("%s\n", db.status().ToString().c_str());
      return 1;
    }
    for (int i = 3; i < argc; ++i) {
      Result<std::string> text = ReadFileToString(argv[i]);
      if (!text.ok()) {
        std::printf("%s\n", text.status().ToString().c_str());
        return 1;
      }
      Result<DocumentId> doc = db->AddDocumentXml(BaseName(argv[i]), *text);
      if (!doc.ok()) {
        std::printf("%s: %s\n", argv[i], doc.status().ToString().c_str());
        return 1;
      }
      std::printf("added '%s' as document %u\n", BaseName(argv[i]).c_str(),
                  *doc);
    }
    Status saved = db->Save(argv[2]);
    if (!saved.ok()) {
      std::printf("%s\n", saved.ToString().c_str());
      return 1;
    }
    std::printf("corpus now at epoch %llu with %zu document(s) → %s\n",
                static_cast<unsigned long long>(db->epoch()),
                db->document_count(), argv[2]);
    return 0;
  }

  if (std::strcmp(argv[1], "remove") == 0) {
    Result<Database> db = Database::Load(argv[2]);
    if (!db.ok()) {
      std::printf("%s\n", db.status().ToString().c_str());
      return 1;
    }
    Status removed = db->RemoveDocument(std::string(argv[3]));
    if (!removed.ok()) {
      std::printf("%s\n", removed.ToString().c_str());
      return 1;
    }
    Status saved = db->Save(argv[2]);
    if (!saved.ok()) {
      std::printf("%s\n", saved.ToString().c_str());
      return 1;
    }
    std::printf("removed '%s'; corpus now at epoch %llu with %zu "
                "document(s) → %s\n",
                argv[3], static_cast<unsigned long long>(db->epoch()),
                db->document_count(), argv[2]);
    return 0;
  }

  if (std::strcmp(argv[1], "replace") == 0) {
    if (argc < 5) return Usage();
    Result<Database> db = Database::Load(argv[2]);
    if (!db.ok()) {
      std::printf("%s\n", db.status().ToString().c_str());
      return 1;
    }
    Result<std::string> text = ReadFileToString(argv[4]);
    if (!text.ok()) {
      std::printf("%s\n", text.status().ToString().c_str());
      return 1;
    }
    Result<DocumentId> replaced = db->ReplaceDocumentXml(argv[3], *text);
    if (!replaced.ok()) {
      std::printf("%s\n", replaced.status().ToString().c_str());
      return 1;
    }
    Status saved = db->Save(argv[2]);
    if (!saved.ok()) {
      std::printf("%s\n", saved.ToString().c_str());
      return 1;
    }
    std::printf("replaced '%s' (document %u kept its id); corpus now at "
                "epoch %llu → %s\n",
                argv[3], *replaced,
                static_cast<unsigned long long>(db->epoch()), argv[2]);
    return 0;
  }

  if (std::strcmp(argv[1], "search") == 0) {
    Flags flags = ParseFlags(argc, argv, 4);
    if (!flags.valid) return Usage();
    Result<Database> db = Database::Load(argv[2]);
    if (!db.ok()) {
      std::printf("%s\n", db.status().ToString().c_str());
      return 1;
    }
    return RunSearch(*db, argv[3], flags, /*doc_for_rendering=*/nullptr);
  }

  if (std::strcmp(argv[1], "query") == 0) {
    Result<std::string> text = ReadFileToString(argv[2]);
    if (!text.ok()) {
      std::printf("%s\n", text.status().ToString().c_str());
      return 1;
    }
    Result<Document> doc = ParseXml(*text);
    if (!doc.ok()) {
      std::printf("parse error: %s\n", doc.status().ToString().c_str());
      return 1;
    }
    Database db;
    Flags flags = ParseFlags(argc, argv, 4);
    if (!flags.valid) return Usage();
    if (!db.AddDocument(BaseName(argv[2]), *doc).ok() || !db.Build().ok()) {
      std::printf("failed to build the corpus\n");
      return 1;
    }
    return RunSearch(db, argv[3], flags,
                     flags.render_xml ? &doc.value() : nullptr);
  }

  return Usage();
}
