// xks_client — command-line client for the xksd daemon.
//
// Sends keyword queries over the wire protocol and prints one line per
// reply plus a final tally, in a grep-friendly shape the CI server job
// asserts against:
//
//   reply id=3 status=OK hits=10 total=27 epoch=1
//   reply id=4 status=DeadlineExceeded message=...
//   tally: sent=12 ok=4 deadline_exceeded=0 resource_exhausted=8 unavailable=0 other=0
//
// Modes:
//   xks_client --port P "xml keyword"             one call, one reply
//   xks_client --port P a b c                     three sequential calls
//   xks_client --port P --count 32 --pipeline q   burst: 32 pipelined copies
//                                                 (reply order is NOT send
//                                                 order; ids match them up)
//
// Exit code: 0 when every reply is OK — or, under --expect-status NAME,
// when at least one reply carries that status (how CI asserts that a tiny
// deadline really produces DeadlineExceeded and a burst really sheds with
// ResourceExhausted).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/server/client.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --port PORT [options] QUERY [QUERY...]\n"
      "  --host ADDR          server address (default 127.0.0.1)\n"
      "  --connect-timeout-ms N  connection establishment budget (0 = OS\n"
      "                       default; otherwise fail fast with Unavailable)\n"
      "  --deadline-ms N      per-request deadline (0 = none)\n"
      "  --walk N             pagination walk: follow next_cursor for up to\n"
      "                       N pages of the first QUERY (excludes\n"
      "                       --pipeline/--count)\n"
      "  --count N            send each QUERY N times (default 1)\n"
      "  --pipeline           send all requests before reading any reply\n"
      "  --top-k K            page size (default 10)\n"
      "  --no-cache           bypass the server-side result cache\n"
      "  --quiet              tally only, no per-reply lines\n"
      "  --expect-status NAME succeed iff >=1 reply has this status code\n"
      "                       (e.g. DeadlineExceeded, ResourceExhausted)\n"
      "  --stats              scrape the daemon's metrics registry instead\n"
      "                       of searching: prints the Prometheus-style\n"
      "                       text exposition on stdout (no QUERY needed)\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint64_t port = 0;
  uint64_t connect_timeout_ms = 0;
  uint64_t deadline_ms = 0;
  uint64_t count = 1;
  uint64_t top_k = 10;
  uint64_t walk_pages = 0;
  bool pipeline = false;
  bool use_cache = true;
  bool quiet = false;
  bool stats = false;
  std::string expect_status;
  std::vector<std::string> queries;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "xks_client: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      host = next();
    } else if (arg == "--port") {
      port = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--connect-timeout-ms") {
      connect_timeout_ms = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--deadline-ms") {
      deadline_ms = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--walk") {
      walk_pages = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--count") {
      count = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--top-k") {
      top_k = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--pipeline") {
      pipeline = true;
    } else if (arg == "--no-cache") {
      use_cache = false;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--expect-status") {
      expect_status = next();
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "xks_client: unknown flag '%s'\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    } else {
      queries.push_back(arg);
    }
  }
  if (port == 0 || port > 65535 || (queries.empty() && !stats) ||
      count == 0 || (walk_pages > 0 && (pipeline || count != 1))) {
    Usage(argv[0]);
    return 2;
  }

  auto connected = xks::XksClient::Connect(host, static_cast<uint16_t>(port),
                                           connect_timeout_ms);
  if (!connected.ok()) {
    std::fprintf(stderr, "xks_client: %s\n",
                 connected.status().ToString().c_str());
    return 1;
  }
  xks::XksClient client = std::move(connected).value();

  if (stats) {
    // Metrics scrape: one kStatsRequest frame, one kStatsReply back. The
    // server answers these out-of-band (even while draining), like health.
    xks::Frame request;
    request.kind = xks::FrameKind::kStatsRequest;
    request.request_id = 1;
    request.body = xks::EncodeStatsRequest();
    const xks::Status sent = client.SendFrame(request);
    if (!sent.ok()) {
      std::fprintf(stderr, "xks_client: stats send: %s\n",
                   sent.ToString().c_str());
      return 1;
    }
    auto reply = client.ReceiveFrame();
    if (!reply.ok()) {
      std::fprintf(stderr, "xks_client: stats receive: %s\n",
                   reply.status().ToString().c_str());
      return 1;
    }
    if (reply.value().kind != xks::FrameKind::kStatsReply) {
      std::fprintf(stderr, "xks_client: unexpected reply kind %u\n",
                   static_cast<unsigned>(reply.value().kind));
      return 1;
    }
    auto snapshot = xks::DecodeStatsReply(reply.value().body);
    if (!snapshot.ok()) {
      std::fprintf(stderr, "xks_client: stats decode: %s\n",
                   snapshot.status().ToString().c_str());
      return 1;
    }
    std::fputs(snapshot.value().TextExposition().c_str(), stdout);
    std::fflush(stdout);
    return 0;
  }

  std::vector<xks::SearchRequest> requests;
  for (const std::string& query : queries) {
    for (uint64_t c = 0; c < count; ++c) {
      xks::SearchRequest request;
      request.query = query;
      request.top_k = top_k;
      request.deadline_ms = deadline_ms;
      request.use_cache = use_cache;
      requests.push_back(std::move(request));
    }
  }

  uint64_t sent = 0;
  uint64_t ok = 0, deadline = 0, exhausted = 0, unavailable = 0, other = 0;
  uint64_t expected_seen = 0;
  bool transport_error = false;

  auto consume = [&](const xks::XksClient::Reply& reply) {
    std::string code_name = "OK";
    if (reply.outcome.ok()) {
      ++ok;
      const xks::SearchResponse& response = reply.outcome.value();
      if (!quiet) {
        std::printf("reply id=%llu status=OK hits=%zu total=%zu epoch=%llu\n",
                    static_cast<unsigned long long>(reply.request_id),
                    response.hits.size(), response.total_hits,
                    static_cast<unsigned long long>(response.epoch));
      }
    } else {
      const xks::Status& status = reply.outcome.status();
      code_name = std::string(xks::StatusCodeName(status.code()));
      switch (status.code()) {
        case xks::StatusCode::kDeadlineExceeded:
          ++deadline;
          break;
        case xks::StatusCode::kResourceExhausted:
          ++exhausted;
          break;
        case xks::StatusCode::kUnavailable:
          ++unavailable;
          break;
        default:
          ++other;
          break;
      }
      if (!quiet) {
        std::printf("reply id=%llu status=%s message=%s\n",
                    static_cast<unsigned long long>(reply.request_id),
                    code_name.c_str(), status.message().c_str());
      }
    }
    if (code_name == expect_status) ++expected_seen;
  };

  if (walk_pages > 0) {
    // Pagination walk: one query, follow next_cursor page by page. The
    // cursor is server-minted and opaque — xksd and xks_coord tokens both
    // walk identically through here.
    xks::SearchRequest request = requests.front();
    uint64_t pages = 0;
    uint64_t walked_hits = 0;
    while (pages < walk_pages) {
      auto reply = client.Call(request);
      if (!reply.ok()) {
        std::fprintf(stderr, "xks_client: call: %s\n",
                     reply.status().ToString().c_str());
        transport_error = true;
        break;
      }
      ++sent;
      consume(reply.value());
      if (!reply.value().outcome.ok()) break;
      const xks::SearchResponse& response = reply.value().outcome.value();
      ++pages;
      walked_hits += response.hits.size();
      if (response.next_cursor.empty()) break;
      request.cursor = response.next_cursor;
    }
    std::printf("walk: pages=%llu hits=%llu\n",
                static_cast<unsigned long long>(pages),
                static_cast<unsigned long long>(walked_hits));
  } else if (pipeline) {
    for (size_t r = 0; r < requests.size(); ++r) {
      const xks::Status status =
          client.Send(static_cast<uint64_t>(r + 1), requests[r]);
      if (!status.ok()) {
        std::fprintf(stderr, "xks_client: send: %s\n",
                     status.ToString().c_str());
        transport_error = true;
        break;
      }
      ++sent;
    }
    for (uint64_t r = 0; r < sent; ++r) {
      auto reply = client.Receive();
      if (!reply.ok()) {
        std::fprintf(stderr, "xks_client: receive: %s\n",
                     reply.status().ToString().c_str());
        transport_error = true;
        break;
      }
      consume(reply.value());
    }
  } else {
    for (const xks::SearchRequest& request : requests) {
      auto reply = client.Call(request);
      if (!reply.ok()) {
        std::fprintf(stderr, "xks_client: call: %s\n",
                     reply.status().ToString().c_str());
        transport_error = true;
        break;
      }
      ++sent;
      consume(reply.value());
    }
  }

  std::printf(
      "tally: sent=%llu ok=%llu deadline_exceeded=%llu "
      "resource_exhausted=%llu unavailable=%llu other=%llu\n",
      static_cast<unsigned long long>(sent), static_cast<unsigned long long>(ok),
      static_cast<unsigned long long>(deadline),
      static_cast<unsigned long long>(exhausted),
      static_cast<unsigned long long>(unavailable),
      static_cast<unsigned long long>(other));
  std::fflush(stdout);

  if (transport_error) return 1;
  if (!expect_status.empty()) return expected_seen > 0 ? 0 : 1;
  return ok == sent ? 0 : 1;
}
