// Deterministic XMark-like dataset generator.
//
// Stands in for the XMark benchmark documents the paper evaluates on
// (standard 111.1 MB, data1 334.9 MB, data2 669.6 MB). The generator
// reproduces the XMark schema — site / regions(6) / items, categories,
// catgraph, people, open_auctions, closed_auctions — including the deep
// recursive description/parlist/listitem structure that drives the paper's
// "extreme fragment" behaviour in Figure 6. The 13 workload keywords are
// injected at the paper's frequencies scaled to the generated size, so the
// standard : data1 : data2 profile (1 : 3 : 6) is preserved.

#ifndef XKS_DATAGEN_XMARK_GEN_H_
#define XKS_DATAGEN_XMARK_GEN_H_

#include <cstdint>

#include "src/xml/dom.h"

namespace xks {

/// Generator knobs.
struct XmarkOptions {
  uint64_t seed = 7;
  /// 1.0 ≈ 1/20 of the real XMark standard document; the Figure 5/6 benches
  /// use {1.0, 3.0, 6.0} for standard/data1/data2 and scale keyword
  /// frequencies by the same factor (times the 1/20 size ratio).
  double scale = 1.0;
  /// Which frequency column of the paper's table to target: 0 = standard,
  /// 1 = data1, 2 = data2. Kept separate from `scale` so tests can pin both.
  int frequency_column = 0;
};

/// Generates the document (Dewey codes assigned).
Document GenerateXmark(const XmarkOptions& options);

}  // namespace xks

#endif  // XKS_DATAGEN_XMARK_GEN_H_
