// Deterministic word pools for the synthetic dataset generators.
//
// The filler pools intentionally exclude the Section-5.1 workload keywords
// (and English stop words), so every occurrence of a workload keyword in a
// generated dataset comes from the frequency-controlled injection pools and
// the shredded frequency table matches the targets exactly.

#ifndef XKS_DATAGEN_VOCAB_H_
#define XKS_DATAGEN_VOCAB_H_

#include <string>
#include <vector>

#include "src/common/random.h"

namespace xks {

/// General filler words (lowercase, no stop words, no workload keywords).
const std::vector<std::string>& FillerWords();

/// Person first names (capitalized).
const std::vector<std::string>& FirstNames();

/// Person last names (capitalized).
const std::vector<std::string>& LastNames();

/// City names for addresses.
const std::vector<std::string>& CityNames();

/// Country names.
const std::vector<std::string>& CountryNames();

/// Conference/journal venue names for DBLP booktitle fields (the two
/// venue keywords "sigmod"/"vldb" are injected separately).
const std::vector<std::string>& VenueNames();

/// A sentence of `words` filler words drawn with `rng`, capitalized first
/// word, space separated.
std::string FillerSentence(Rng* rng, size_t words);

}  // namespace xks

#endif  // XKS_DATAGEN_VOCAB_H_
