// The Section-5.1 experiment workloads: seeded keywords with their paper
// frequencies, the per-keyword abbreviation scheme, and the query sets of
// Figures 5 and 6.
//
// The XMark query labels are readable in the paper (at, ad, av, ..., dtcmvo)
// and are reproduced verbatim under the letter mapping below ("vdo =
// preventions description order" is anchored in the text). The DBLP labels
// are corrupted in the PDF extraction, so the DBLP workload reconstructs 16
// queries with the same shape: sizes 2..12 mixing low- and high-frequency
// keywords (see DESIGN.md, substitutions).

#ifndef XKS_DATAGEN_WORKLOADS_H_
#define XKS_DATAGEN_WORKLOADS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace xks {

/// One seeded workload keyword.
struct WorkloadKeyword {
  std::string word;
  /// Abbreviation letter used in query labels.
  char abbrev;
  /// Paper frequency in DBLP, or in XMark {standard, data1, data2}.
  std::vector<uint64_t> paper_frequencies;
};

/// The 20 DBLP keywords with the dblp20040213 frequencies.
const std::vector<WorkloadKeyword>& DblpKeywords();

/// The 13 XMark keywords with (standard, data1, data2) frequencies.
const std::vector<WorkloadKeyword>& XmarkKeywords();

/// One benchmark query.
struct WorkloadQuery {
  /// Abbreviation label ("vdo").
  std::string label;
  /// The expanded keywords ("preventions description order").
  std::vector<std::string> keywords;
};

/// The 16 reconstructed DBLP queries of Figures 5(a)/6(a).
const std::vector<WorkloadQuery>& DblpWorkload();

/// The paper's 24 XMark queries of Figures 5(b-d)/6(b-d).
const std::vector<WorkloadQuery>& XmarkWorkload();

/// Expands an abbreviation label ("vdo") against a keyword table; unknown
/// letters are skipped.
std::vector<std::string> ExpandLabel(const std::string& label,
                                     const std::vector<WorkloadKeyword>& table);

}  // namespace xks

#endif  // XKS_DATAGEN_WORKLOADS_H_
