// The paper's running-example data (Figure 1) and queries Q1–Q5.
//
// Reconstructed so that every keyword-node set, LCA/SLCA/ELCA, RTF and
// pruning decision worked through in Examples 1–7 is reproduced exactly:
//  * Figure 1(a): the Publications instance. Node 0.0 is <title>VLDB</title>
//    (which is why the paper's D2 for Q3 contains 0.0 — labels participate
//    in content sets), 0.2.0 is the XML-keyword-search article, 0.2.1 the
//    skyline article.
//  * Figure 1(b):(1): the team/players segment borrowed from MaxMatch.
//  * Q1–Q5 recovered from the examples:
//      Q1 = "Wong Fu Dynamic Skyline Query"   (Example 2: false positive)
//      Q2 = "Liu Keyword"                     (Examples 1/3/4)
//      Q3 = "VLDB title XML keyword search"   (Section 4.1, Examples 6/7)
//      Q4 = "Grizzlies position"              (Example 2: redundancy)
//      Q5 = "Grizzlies Gassol position"       (Examples 2/5: positive case)

#ifndef XKS_DATAGEN_FIGURE1_H_
#define XKS_DATAGEN_FIGURE1_H_

#include <string>

#include "src/common/result.h"
#include "src/xml/dom.h"

namespace xks {

/// The XML text of Figure 1(a).
const std::string& Figure1aXml();

/// The XML text of Figure 1(b):(1).
const std::string& Figure1bXml();

/// Parsed documents (Dewey codes assigned).
Result<Document> Figure1aDocument();
Result<Document> Figure1bDocument();

/// The five sample queries of Figure 1(b):(2).
const std::string& PaperQuery(int number);  // 1..5

}  // namespace xks

#endif  // XKS_DATAGEN_FIGURE1_H_
