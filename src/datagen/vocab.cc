#include "src/datagen/vocab.h"

namespace xks {

const std::vector<std::string>& FillerWords() {
  static const std::vector<std::string> kWords = {
      "abstraction", "adaptive",   "aggregate",  "analysis",   "annotation",
      "answering",   "approach",   "architecture", "arrays",   "assessment",
      "association", "asynchronous", "authority", "automatic", "bandwidth",
      "baseline",    "behavior",   "benchmark",  "binding",    "blocks",
      "boundary",    "branch",     "buffer",     "caching",    "calculus",
      "capacity",    "cardinality", "cascade",   "channel",    "classification",
      "clustering",  "coding",     "collection", "combination", "communication",
      "compiler",    "complexity", "composition", "compression", "computation",
      "concurrency", "configuration", "connection", "consistency", "constraint",
      "construction", "container", "convergence", "coordination", "correlation",
      "coverage",    "criteria",   "cube",       "cursor",     "database",
      "decomposition", "dependency", "deployment", "derivation", "detection",
      "diagram",     "dictionary", "dimension",  "discovery",  "distribution",
      "document",    "domain",     "duplicate",  "encoding",   "engine",
      "entropy",     "enumeration", "environment", "equivalence", "estimation",
      "evaluation",  "evolution",  "execution",  "expansion",  "exploration",
      "expression",  "extension",  "extraction", "factorization", "feedback",
      "filtering",   "foundation", "framework",  "frequency",  "function",
      "generation",  "grammar",    "granularity", "heuristic", "hierarchy",
      "histogram",   "identification", "implementation", "indexing", "inference",
      "instance",    "integration", "interaction", "interface", "interpretation",
      "iteration",   "join",       "kernel",     "knowledge",  "language",
      "latency",     "lattice",    "learning",   "lineage",    "linkage",
      "locality",    "logic",      "maintenance", "management", "mapping",
      "materialization", "measurement", "mechanism", "mediator", "membership",
      "memory",      "migration",  "mining",     "mobility",   "modeling",
      "monitoring",  "navigation", "negotiation", "network",   "normalization",
      "notation",    "notification", "numeric",  "observation", "ontology",
      "operator",    "optimization", "ordering", "overhead",   "overlay",
      "parallel",    "parsing",    "partition",  "performance", "persistence",
      "perspective", "pipeline",   "placement",  "planning",   "prediction",
      "preservation", "principle", "probability", "processing", "programming",
      "projection",  "propagation", "protocol",  "provenance", "publishing",
      "ranking",     "reasoning",  "recovery",   "reduction",  "refinement",
      "regression",  "relation",   "relevance",  "reliability", "replication",
      "repository",  "representation", "reputation", "resolution", "resource",
      "routing",     "sampling",   "scalability", "scheduling", "schema",
      "segmentation", "selection", "sensitivity", "sequence",   "service",
      "signature",   "simulation", "skew",       "snapshot",   "specification",
      "stability",   "statistics", "storage",    "streaming",  "structure",
      "summarization", "synchronization", "synthesis", "taxonomy", "technique",
      "template",    "throughput", "tolerance",  "topology",   "tracking",
      "transaction", "transformation", "translation", "traversal", "tuning",
      "validation",  "variance",   "verification", "versioning", "visualization",
      "vocabulary",  "warehouse",  "wavelet",    "workflow",   "workload",
  };
  return kWords;
}

const std::vector<std::string>& FirstNames() {
  static const std::vector<std::string> kNames = {
      "Alice",  "Boris",   "Carla",  "Daniel", "Elena",  "Felix",  "Grace",
      "Hiro",   "Irene",   "Jorge",  "Katrin", "Lars",   "Mina",   "Nikolai",
      "Olga",   "Pedro",   "Qing",   "Rosa",   "Stefan", "Tamara", "Umberto",
      "Viktor", "Wanda",   "Xiang",  "Yusuf",  "Zofia",  "Amara",  "Bruno",
      "Chiara", "Dmitri",  "Esther", "Farid",  "Giulia", "Hassan", "Ingrid",
      "Joon",   "Kemal",   "Lucia",  "Marco",  "Nadia",
  };
  return kNames;
}

const std::vector<std::string>& LastNames() {
  static const std::vector<std::string> kNames = {
      "Almeida",   "Bergstrom", "Castillo", "Dubois",   "Eriksson", "Fontana",
      "Gutierrez", "Hoffmann",  "Ivanov",   "Jansen",   "Kowalski", "Lindberg",
      "Moreau",    "Nakamura",  "Olofsson", "Petrov",   "Quintero", "Rossi",
      "Schneider", "Takahashi", "Ullmann",  "Vasquez",  "Weber",    "Xu",
      "Yamamoto",  "Zhao",      "Andersen", "Bianchi",  "Costa",    "Dimitrov",
      "Engel",     "Ferreira",  "Galindo",  "Haugen",   "Iversen",  "Jimenez",
      "Keller",    "Lombardi",  "Marchetti", "Novak",
  };
  return kNames;
}

const std::vector<std::string>& CityNames() {
  static const std::vector<std::string> kCities = {
      "Lisbon",  "Marseille", "Tampere",  "Gdansk",   "Valencia", "Bergen",
      "Graz",    "Utrecht",   "Porto",    "Aarhus",   "Leipzig",  "Bologna",
      "Brno",    "Ghent",     "Malmo",    "Nantes",   "Zaragoza", "Krakow",
      "Turku",   "Salzburg",
  };
  return kCities;
}

const std::vector<std::string>& CountryNames() {
  static const std::vector<std::string> kCountries = {
      "Portugal", "France", "Finland", "Poland",  "Spain",   "Norway",
      "Austria",  "Netherlands", "Denmark", "Germany", "Italy", "Belgium",
      "Sweden",   "Czechia",
  };
  return kCountries;
}

const std::vector<std::string>& VenueNames() {
  static const std::vector<std::string> kVenues = {
      "ICDE", "CIKM", "WWW",  "DASFAA", "EDBT", "SSDBM", "WISE", "ER",
      "DEXA", "ICDT", "MDM",  "WebDB",
  };
  return kVenues;
}

std::string FillerSentence(Rng* rng, size_t words) {
  const std::vector<std::string>& pool = FillerWords();
  std::string out;
  for (size_t i = 0; i < words; ++i) {
    std::string word = rng->Choice(pool);
    if (i == 0 && !word.empty()) {
      word[0] = static_cast<char>(word[0] - 'a' + 'A');
    } else {
      out.push_back(' ');
    }
    out += word;
  }
  return out;
}

}  // namespace xks
