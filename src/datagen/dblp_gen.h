// Deterministic DBLP-like dataset generator.
//
// Stands in for the dblp20040213 snapshot (197.6 MB) the paper uses: flat
// bibliographic records (article / inproceedings) under one root, each with
// author+, title, year, venue, pages, ee, url children. The 20 workload
// keywords are injected at the paper's frequencies scaled by
// DblpOptions::scale, so the frequency *profile* of Section 5.1 is preserved
// at any size. Generation is pure function of the options (see
// src/common/random.h).

#ifndef XKS_DATAGEN_DBLP_GEN_H_
#define XKS_DATAGEN_DBLP_GEN_H_

#include <cstdint>

#include "src/xml/dom.h"

namespace xks {

/// Generator knobs.
struct DblpOptions {
  uint64_t seed = 42;
  /// Fraction of the real dblp20040213 (~460k records, 197.6 MB). The
  /// default yields ~4.6k records; the Figure 5/6 benches use 0.05.
  double scale = 0.01;
};

/// Generates the document (Dewey codes assigned).
Document GenerateDblp(const DblpOptions& options);

/// Number of records the options produce (exposed for benches/tests).
size_t DblpRecordCount(const DblpOptions& options);

}  // namespace xks

#endif  // XKS_DATAGEN_DBLP_GEN_H_
