#include "src/datagen/workloads.h"

namespace xks {

const std::vector<WorkloadKeyword>& DblpKeywords() {
  static const std::vector<WorkloadKeyword> kKeywords = {
      {"keyword", 'k', {90}},        {"similarity", 's', {1242}},
      {"recognition", 'r', {6447}},  {"algorithm", 'a', {14181}},
      {"data", 'd', {25840}},        {"probabilistic", 'p', {2284}},
      {"xml", 'x', {2121}},          {"dynamic", 'y', {7281}},
      {"sigmod", 'g', {3983}},       {"tree", 't', {3549}},
      {"query", 'q', {3560}},        {"automata", 'u', {3337}},
      {"pattern", 'n', {6513}},      {"retrieval", 'v', {5111}},
      {"efficient", 'e', {8279}},    {"understanding", 'i', {1450}},
      {"searching", 'c', {4618}},    {"vldb", 'b', {2313}},
      {"henry", 'h', {1322}},        {"semantics", 'm', {3694}},
  };
  return kKeywords;
}

const std::vector<WorkloadKeyword>& XmarkKeywords() {
  static const std::vector<WorkloadKeyword> kKeywords = {
      {"particle", 'a', {12, 33, 69}},
      {"dominator", 'n', {56, 150, 285}},
      {"threshold", 't', {123, 405, 804}},
      {"chronicle", 'c', {426, 1286, 2568}},
      {"method", 'm', {552, 1667, 3356}},
      {"strings", 's', {615, 1847, 3620}},
      {"unjust", 'u', {1000, 3044, 6150}},
      {"invention", 'i', {1546, 4715, 9404}},
      {"egypt", 'e', {2064, 5255, 12466}},
      {"leon", 'l', {2519, 7647, 15210}},
      {"preventions", 'v', {66216, 199365, 397672}},
      {"description", 'd', {11681, 35168, 70230}},
      {"order", 'o', {12705, 38141, 76271}},
  };
  return kKeywords;
}

std::vector<std::string> ExpandLabel(const std::string& label,
                                     const std::vector<WorkloadKeyword>& table) {
  std::vector<std::string> keywords;
  for (char c : label) {
    for (const WorkloadKeyword& kw : table) {
      if (kw.abbrev == c) {
        keywords.push_back(kw.word);
        break;
      }
    }
  }
  return keywords;
}

namespace {

std::vector<WorkloadQuery> BuildWorkload(const std::vector<std::string>& labels,
                                         const std::vector<WorkloadKeyword>& table) {
  std::vector<WorkloadQuery> queries;
  queries.reserve(labels.size());
  for (const std::string& label : labels) {
    queries.push_back(WorkloadQuery{label, ExpandLabel(label, table)});
  }
  return queries;
}

}  // namespace

const std::vector<WorkloadQuery>& DblpWorkload() {
  static const std::vector<WorkloadQuery> kQueries = BuildWorkload(
      {
          "ks",            // keyword similarity           (2, both rare)
          "kr",            // keyword recognition          (2, rare+mid)
          "ka",            // keyword algorithm            (2, rare+frequent)
          "drp",           // data retrieval probabilistic (3)
          "xayg",          // xml algorithm dynamic sigmod (4)
          "tqg",           // tree query sigmod            (3)
          "psx",           // probabilistic similarity xml (3)
          "tnax",          // tree pattern algorithm xml   (4)
          "xkqe",          // xml keyword query efficient  (4)
          "ypbh",          // dynamic probabilistic vldb henry (4)
          "xkqac",         // xml keyword query algorithm searching (5)
          "xvtdr",         // xml retrieval tree data recognition (5)
          "xdkqab",        // 6 keywords
          "aynbvxdkq",     // 9 keywords
          "uchkngkems",    // 8 distinct after dedup
          "ksradpxygtqub", // 13 keywords, full mix
      },
      DblpKeywords());
  return kQueries;
}

const std::vector<WorkloadQuery>& XmarkWorkload() {
  // Exactly the 24 labels on the x-axes of Figures 5(b-d)/6(b-d).
  static const std::vector<WorkloadQuery> kQueries = BuildWorkload(
      {
          "at",       "ad",    "av",    "cm",    "do",     "vd",
          "tcm",      "cms",   "iel",   "sdc",   "vdo",    "atcm",
          "cmsu",     "suie",  "iadm",  "vdoi",  "tcmsuiel", "atcms",
          "atcmd",    "atcmv", "atcdv", "atcdve", "atcmve", "dtcmvo",
      },
      XmarkKeywords());
  return kQueries;
}

}  // namespace xks
