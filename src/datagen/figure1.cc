#include "src/datagen/figure1.h"

#include "src/xml/parser.h"

namespace xks {

const std::string& Figure1aXml() {
  static const std::string kXml = R"(<Publications>
  <title>VLDB</title>
  <year>2008</year>
  <Articles>
    <article>
      <authors>
        <author><name>Ziyang Liu</name></author>
      </authors>
      <title>Relevant Match for XML Keyword Search</title>
      <abstract>We study how keyword match semantics identify relevant results over XML data, and improve keyword search quality.</abstract>
      <references>
        <ref>Ziyang Liu and Yi Chen. Identifying meaningful return information in XML keyword search.</ref>
      </references>
    </article>
    <article>
      <authors>
        <author><name>Raymond Wong</name></author>
        <author><name>Ada Fu</name></author>
      </authors>
      <title>Efficient Skyline Query Processing with Variable User Preferences on Nominal Attributes</title>
      <abstract>We propose dynamic skyline query evaluation over nominal attributes using variable preferences.</abstract>
    </article>
  </Articles>
</Publications>
)";
  return kXml;
}

const std::string& Figure1bXml() {
  static const std::string kXml = R"(<team>
  <name>Grizzlies</name>
  <players>
    <player>
      <name>Pau Gassol</name>
      <nationality>Spain</nationality>
      <position>forward</position>
    </player>
    <player>
      <name>Mike Conley</name>
      <nationality>USA</nationality>
      <position>guard</position>
    </player>
    <player>
      <name>Rudy Gay</name>
      <nationality>USA</nationality>
      <position>forward</position>
    </player>
  </players>
</team>
)";
  return kXml;
}

Result<Document> Figure1aDocument() { return ParseXml(Figure1aXml()); }

Result<Document> Figure1bDocument() { return ParseXml(Figure1bXml()); }

const std::string& PaperQuery(int number) {
  static const std::string kQueries[] = {
      "",
      "Wong Fu Dynamic Skyline Query",
      "Liu Keyword",
      "VLDB title XML keyword search",
      "Grizzlies position",
      "Grizzlies Gassol position",
  };
  static const std::string kEmpty;
  if (number < 1 || number > 5) return kEmpty;
  return kQueries[number];
}

}  // namespace xks
