#include "src/datagen/dblp_gen.h"

#include <algorithm>
#include <cmath>

#include "src/common/random.h"
#include "src/common/string_util.h"
#include "src/datagen/vocab.h"
#include "src/datagen/workloads.h"

namespace xks {
namespace {

constexpr size_t kRealDblpRecords = 460000;

}  // namespace

size_t DblpRecordCount(const DblpOptions& options) {
  double records = static_cast<double>(kRealDblpRecords) * options.scale;
  return std::max<size_t>(50, static_cast<size_t>(std::llround(records)));
}

Document GenerateDblp(const DblpOptions& options) {
  Rng rng(options.seed);
  const size_t num_records = DblpRecordCount(options);

  Document doc;
  NodeId root = *doc.CreateRoot("dblp");

  // Per-record slots for frequency-exact keyword injection.
  std::vector<NodeId> title_slots;
  std::vector<NodeId> author_slots;   // one representative author per record
  std::vector<NodeId> venue_slots;

  for (size_t i = 0; i < num_records; ++i) {
    const bool conference = rng.Bernoulli(0.6);
    NodeId record = doc.AddNode(root, conference ? "inproceedings" : "article");
    doc.AddAttribute(record, "key",
                     StrFormat("%s/rec%zu", conference ? "conf" : "journals", i));

    const size_t num_authors = 1 + rng.Uniform(3);
    for (size_t a = 0; a < num_authors; ++a) {
      NodeId author = doc.AddNode(record, "author");
      doc.AppendText(author,
                     rng.Choice(FirstNames()) + " " + rng.Choice(LastNames()));
      if (a == 0) author_slots.push_back(author);
    }

    NodeId title = doc.AddNode(record, "title");
    doc.AppendText(title, FillerSentence(&rng, 5 + rng.Uniform(6)));
    title_slots.push_back(title);

    NodeId year = doc.AddNode(record, "year");
    doc.AppendText(year, std::to_string(1989 + rng.Uniform(20)));

    NodeId venue = doc.AddNode(record, conference ? "booktitle" : "journal");
    doc.AppendText(venue, rng.Choice(VenueNames()));
    venue_slots.push_back(venue);

    NodeId pages = doc.AddNode(record, "pages");
    const uint64_t first_page = 1 + rng.Uniform(500);
    doc.AppendText(pages, StrFormat("%llu-%llu",
                                    static_cast<unsigned long long>(first_page),
                                    static_cast<unsigned long long>(
                                        first_page + rng.Uniform(30))));

    NodeId ee = doc.AddNode(record, "ee");
    doc.AppendText(ee, StrFormat("db/%s/rec%zu", conference ? "conf" : "journals", i));

    if (rng.Bernoulli(0.4)) {
      NodeId url = doc.AddNode(record, "url");
      doc.AppendText(url, StrFormat("http://dblp.example/rec%zu", i));
    }
  }

  // Keyword injection: each workload keyword occurs exactly
  // max(1, round(paper_frequency * scale)) times. Real bibliographies bundle
  // related terms inside the same record ("efficient xml keyword search
  // ..."), which is what makes multi-keyword queries hit individual records
  // rather than only the document root. We reproduce that with a hot-record
  // set: half of all injections land in a small shared pool of records, so
  // keyword co-occurrence — and with it the per-query RTF counts of
  // Figure 5(a) — scales linearly with the data size.
  const size_t hot_count = std::max<size_t>(24, num_records / 200);
  std::vector<size_t> hot_records(hot_count);
  for (size_t h = 0; h < hot_count; ++h) hot_records[h] = rng.Uniform(num_records);

  for (const WorkloadKeyword& kw : DblpKeywords()) {
    const uint64_t count = std::max<uint64_t>(
        1, static_cast<uint64_t>(std::llround(
               static_cast<double>(kw.paper_frequencies[0]) * options.scale)));
    for (uint64_t c = 0; c < count; ++c) {
      const size_t record = rng.Bernoulli(0.5)
                                ? hot_records[rng.Uniform(hot_count)]
                                : rng.Uniform(num_records);
      if (kw.word == "henry") {
        // A person name: extend the record's first author.
        doc.AppendText(author_slots[record], "Henry");
      } else if (kw.word == "sigmod" || kw.word == "vldb") {
        // Venue keywords live in booktitle/journal fields.
        doc.AppendText(venue_slots[record],
                       kw.word == "sigmod" ? "SIGMOD" : "VLDB");
      } else {
        doc.AppendText(title_slots[record], kw.word);
      }
    }
  }

  doc.AssignDeweys();
  return doc;
}

}  // namespace xks
