#include "src/datagen/xmark_gen.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/random.h"
#include "src/common/string_util.h"
#include "src/datagen/vocab.h"
#include "src/datagen/workloads.h"

namespace xks {
namespace {

/// Ratio of our scale-1.0 document to the real 111.1 MB standard document;
/// keyword frequencies are scaled by this times XmarkOptions::scale.
constexpr double kSizeRatio = 1.0 / 20.0;

/// Per-scale-unit entity counts (≈ 1/20 of XMark sf=1).
constexpr size_t kItemsPerScale = 1088;  // across the six regions
constexpr size_t kPeoplePerScale = 1275;
constexpr size_t kOpenAuctionsPerScale = 600;
constexpr size_t kClosedAuctionsPerScale = 488;
constexpr size_t kCategoriesPerScale = 50;

const char* kRegions[] = {"africa", "asia",     "australia",
                          "europe", "namerica", "samerica"};

struct Builder {
  Document doc;
  Rng rng;
  std::vector<NodeId> text_slots;  // candidate nodes for keyword injection
  size_t num_people = 0;
  size_t num_items = 0;
  size_t num_categories = 0;

  explicit Builder(uint64_t seed) : rng(seed) {}

  NodeId Text(NodeId parent, const char* label, const std::string& content,
              bool injectable = false) {
    NodeId id = doc.AddNode(parent, label);
    doc.AppendText(id, content);
    if (injectable) text_slots.push_back(id);
    return id;
  }

  /// Low-entropy sentence: words drawn from a small per-topic slice of the
  /// filler pool. Real XMark text is built from a narrow vocabulary, which
  /// is what makes sibling subtrees with identical tree content sets (the
  /// redundancy the valid contributor prunes in Figure 6) plausible.
  std::string TopicSentence(size_t words) {
    const std::vector<std::string>& pool = FillerWords();
    constexpr size_t kTopicWidth = 12;
    const size_t topics = pool.size() / kTopicWidth;
    const size_t topic = rng.Uniform(topics);
    std::string out;
    for (size_t i = 0; i < words; ++i) {
      const std::string& word =
          pool[topic * kTopicWidth + rng.Uniform(kTopicWidth)];
      if (i > 0) out.push_back(' ');
      out += word;
    }
    return out;
  }

  std::string PersonRef() {
    return StrFormat("person%llu", static_cast<unsigned long long>(
                                       rng.Uniform(std::max<size_t>(1, num_people))));
  }

  std::string ItemRef() {
    return StrFormat("item%llu", static_cast<unsigned long long>(
                                     rng.Uniform(std::max<size_t>(1, num_items))));
  }

  std::string CategoryRef() {
    return StrFormat("category%llu",
                     static_cast<unsigned long long>(
                         rng.Uniform(std::max<size_t>(1, num_categories))));
  }

  /// description → text | parlist(listitem+) with bounded recursion; this is
  /// the deep XMark shape behind the Figure 6 extreme fragments.
  void Description(NodeId parent, int depth = 0) {
    NodeId description = doc.AddNode(parent, "description");
    FillDescription(description, depth);
  }

  void FillDescription(NodeId node, int depth) {
    if (depth >= 2 || rng.Bernoulli(0.7)) {
      Text(node, "text", TopicSentence(8 + rng.Uniform(10)),
           /*injectable=*/true);
      return;
    }
    NodeId parlist = doc.AddNode(node, "parlist");
    const size_t items = 1 + rng.Uniform(3);
    for (size_t i = 0; i < items; ++i) {
      NodeId listitem = doc.AddNode(parlist, "listitem");
      FillDescription(listitem, depth + 1);
    }
  }

  void Annotation(NodeId parent) {
    NodeId annotation = doc.AddNode(parent, "annotation");
    Text(annotation, "author", PersonRef());
    Description(annotation);
    Text(annotation, "happiness", std::to_string(1 + rng.Uniform(10)));
  }
};

}  // namespace

Document GenerateXmark(const XmarkOptions& options) {
  Builder b(options.seed);
  const double s = options.scale;
  auto scaled = [&](size_t per_scale) {
    return std::max<size_t>(6, static_cast<size_t>(std::llround(
                                   static_cast<double>(per_scale) * s)));
  };
  const size_t num_items = scaled(kItemsPerScale);
  const size_t num_people = scaled(kPeoplePerScale);
  const size_t num_open = scaled(kOpenAuctionsPerScale);
  const size_t num_closed = scaled(kClosedAuctionsPerScale);
  const size_t num_categories = scaled(kCategoriesPerScale);
  b.num_people = num_people;
  b.num_items = num_items;
  b.num_categories = num_categories;

  NodeId site = *b.doc.CreateRoot("site");

  // regions: six continents sharing the items round-robin-randomly.
  NodeId regions = b.doc.AddNode(site, "regions");
  NodeId region_nodes[6];
  for (int r = 0; r < 6; ++r) region_nodes[r] = b.doc.AddNode(regions, kRegions[r]);
  for (size_t i = 0; i < num_items; ++i) {
    NodeId item = b.doc.AddNode(region_nodes[b.rng.Uniform(6)], "item");
    b.doc.AddAttribute(item, "id", StrFormat("item%zu", i));
    b.Text(item, "location", b.rng.Choice(CountryNames()));
    b.Text(item, "quantity", std::to_string(1 + b.rng.Uniform(5)));
    b.Text(item, "name", b.TopicSentence(2 + b.rng.Uniform(2)), true);
    b.Text(item, "payment", "Money Creditcard");
    b.Description(item);
    NodeId shipping = b.doc.AddNode(item, "shipping");
    b.doc.AppendText(shipping, "Will ship internationally");
    const size_t cats = 1 + b.rng.Uniform(3);
    for (size_t c = 0; c < cats; ++c) {
      NodeId incategory = b.doc.AddNode(item, "incategory");
      b.doc.AddAttribute(incategory, "category", b.CategoryRef());
    }
    if (b.rng.Bernoulli(0.6)) {
      NodeId mailbox = b.doc.AddNode(item, "mailbox");
      const size_t mails = 1 + b.rng.Uniform(2);
      for (size_t m = 0; m < mails; ++m) {
        NodeId mail = b.doc.AddNode(mailbox, "mail");
        b.Text(mail, "from", b.rng.Choice(FirstNames()) + " " +
                                 b.rng.Choice(LastNames()));
        b.Text(mail, "to",
               b.rng.Choice(FirstNames()) + " " + b.rng.Choice(LastNames()));
        b.Text(mail, "date", StrFormat("%02llu/%02llu/2008",
                                       static_cast<unsigned long long>(
                                           1 + b.rng.Uniform(12)),
                                       static_cast<unsigned long long>(
                                           1 + b.rng.Uniform(28))));
        b.Text(mail, "text", b.TopicSentence(10 + b.rng.Uniform(15)), true);
      }
    }
  }

  // categories.
  NodeId categories = b.doc.AddNode(site, "categories");
  for (size_t c = 0; c < num_categories; ++c) {
    NodeId category = b.doc.AddNode(categories, "category");
    b.doc.AddAttribute(category, "id", StrFormat("category%zu", c));
    b.Text(category, "name", b.TopicSentence(1 + b.rng.Uniform(2)), true);
    b.Description(category);
  }

  // catgraph.
  NodeId catgraph = b.doc.AddNode(site, "catgraph");
  for (size_t e = 0; e < num_categories; ++e) {
    NodeId edge = b.doc.AddNode(catgraph, "edge");
    b.doc.AddAttribute(edge, "from", b.CategoryRef());
    b.doc.AddAttribute(edge, "to", b.CategoryRef());
  }

  // people.
  NodeId people = b.doc.AddNode(site, "people");
  for (size_t p = 0; p < num_people; ++p) {
    NodeId person = b.doc.AddNode(people, "person");
    b.doc.AddAttribute(person, "id", StrFormat("person%zu", p));
    std::string first = b.rng.Choice(FirstNames());
    std::string last = b.rng.Choice(LastNames());
    b.Text(person, "name", first + " " + last);
    b.Text(person, "emailaddress",
           StrFormat("mailto:%s@example.net", AsciiLower(last).c_str()));
    if (b.rng.Bernoulli(0.5)) {
      b.Text(person, "phone", StrFormat("+%llu", static_cast<unsigned long long>(
                                                     b.rng.Uniform(99999999))));
    }
    if (b.rng.Bernoulli(0.4)) {
      NodeId address = b.doc.AddNode(person, "address");
      b.Text(address, "street",
             StrFormat("%llu %s St", static_cast<unsigned long long>(
                                         1 + b.rng.Uniform(99)),
                       b.rng.Choice(LastNames()).c_str()));
      b.Text(address, "city", b.rng.Choice(CityNames()));
      b.Text(address, "country", b.rng.Choice(CountryNames()));
      b.Text(address, "zipcode", std::to_string(b.rng.Uniform(99999)));
    }
    if (b.rng.Bernoulli(0.6)) {
      NodeId profile = b.doc.AddNode(person, "profile");
      b.doc.AddAttribute(profile, "income",
                         std::to_string(20000 + b.rng.Uniform(80000)));
      const size_t interests = b.rng.Uniform(4);
      for (size_t i = 0; i < interests; ++i) {
        NodeId interest = b.doc.AddNode(profile, "interest");
        b.doc.AddAttribute(interest, "category", b.CategoryRef());
      }
      if (b.rng.Bernoulli(0.5)) {
        b.Text(profile, "education",
               b.rng.Bernoulli(0.5) ? "Graduate School" : "College");
      }
      b.Text(profile, "business", b.rng.Bernoulli(0.3) ? "Yes" : "No");
      if (b.rng.Bernoulli(0.6)) {
        b.Text(profile, "age", std::to_string(18 + b.rng.Uniform(50)));
      }
    }
    if (b.rng.Bernoulli(0.3)) {
      b.Text(person, "creditcard",
             StrFormat("%04llu %04llu %04llu %04llu",
                       static_cast<unsigned long long>(b.rng.Uniform(10000)),
                       static_cast<unsigned long long>(b.rng.Uniform(10000)),
                       static_cast<unsigned long long>(b.rng.Uniform(10000)),
                       static_cast<unsigned long long>(b.rng.Uniform(10000))));
    }
  }

  // open auctions.
  NodeId open_auctions = b.doc.AddNode(site, "open_auctions");
  for (size_t a = 0; a < num_open; ++a) {
    NodeId auction = b.doc.AddNode(open_auctions, "open_auction");
    b.doc.AddAttribute(auction, "id", StrFormat("open_auction%zu", a));
    b.Text(auction, "initial", StrFormat("%llu.%02llu",
                                         static_cast<unsigned long long>(
                                             1 + b.rng.Uniform(300)),
                                         static_cast<unsigned long long>(
                                             b.rng.Uniform(100))));
    const size_t bidders = b.rng.Uniform(4);
    for (size_t bid = 0; bid < bidders; ++bid) {
      NodeId bidder = b.doc.AddNode(auction, "bidder");
      b.Text(bidder, "date", StrFormat("%02llu/%02llu/2008",
                                       static_cast<unsigned long long>(
                                           1 + b.rng.Uniform(12)),
                                       static_cast<unsigned long long>(
                                           1 + b.rng.Uniform(28))));
      b.Text(bidder, "time", StrFormat("%02llu:%02llu:%02llu",
                                       static_cast<unsigned long long>(
                                           b.rng.Uniform(24)),
                                       static_cast<unsigned long long>(
                                           b.rng.Uniform(60)),
                                       static_cast<unsigned long long>(
                                           b.rng.Uniform(60))));
      NodeId personref = b.doc.AddNode(bidder, "personref");
      b.doc.AddAttribute(personref, "person", b.PersonRef());
      b.Text(bidder, "increase", StrFormat("%llu.%02llu",
                                           static_cast<unsigned long long>(
                                               1 + b.rng.Uniform(50)),
                                           static_cast<unsigned long long>(
                                               b.rng.Uniform(100))));
    }
    NodeId itemref = b.doc.AddNode(auction, "itemref");
    b.doc.AddAttribute(itemref, "item", b.ItemRef());
    NodeId seller = b.doc.AddNode(auction, "seller");
    b.doc.AddAttribute(seller, "person", b.PersonRef());
    b.Annotation(auction);
    b.Text(auction, "quantity", std::to_string(1 + b.rng.Uniform(5)));
    b.Text(auction, "type", b.rng.Bernoulli(0.5) ? "Regular" : "Featured");
    NodeId interval = b.doc.AddNode(auction, "interval");
    b.Text(interval, "start", "01/01/2008");
    b.Text(interval, "end", "12/31/2008");
  }

  // closed auctions.
  NodeId closed_auctions = b.doc.AddNode(site, "closed_auctions");
  for (size_t a = 0; a < num_closed; ++a) {
    NodeId auction = b.doc.AddNode(closed_auctions, "closed_auction");
    NodeId seller = b.doc.AddNode(auction, "seller");
    b.doc.AddAttribute(seller, "person", b.PersonRef());
    NodeId buyer = b.doc.AddNode(auction, "buyer");
    b.doc.AddAttribute(buyer, "person", b.PersonRef());
    NodeId itemref = b.doc.AddNode(auction, "itemref");
    b.doc.AddAttribute(itemref, "item", b.ItemRef());
    b.Text(auction, "price", StrFormat("%llu.%02llu",
                                       static_cast<unsigned long long>(
                                           1 + b.rng.Uniform(500)),
                                       static_cast<unsigned long long>(
                                           b.rng.Uniform(100))));
    b.Text(auction, "date", "06/15/2008");
    b.Text(auction, "quantity", std::to_string(1 + b.rng.Uniform(3)));
    b.Text(auction, "type", b.rng.Bernoulli(0.5) ? "Regular" : "Featured");
    b.Annotation(auction);
  }

  // Keyword injection at the paper's scaled frequencies. "description"
  // occurs naturally as an element label at XMark-typical rates, so it is
  // not injected as text. Half of all injections land in a small hot-slot
  // pool so multi-keyword co-occurrence (and the Figure 5(b-d) RTF counts)
  // scales with the data instead of collapsing to the document root.
  const int column = std::clamp(options.frequency_column, 0, 2);
  const size_t hot_count = std::max<size_t>(20, b.text_slots.size() / 150);
  std::vector<NodeId> hot_slots(hot_count);
  for (size_t h = 0; h < hot_count; ++h) {
    hot_slots[h] = b.text_slots[b.rng.Uniform(b.text_slots.size())];
  }
  for (const WorkloadKeyword& kw : XmarkKeywords()) {
    if (kw.word == "description") continue;
    const double target = static_cast<double>(kw.paper_frequencies[column]) *
                          kSizeRatio *
                          (column == 0 ? s : s / (column == 1 ? 3.0 : 6.0));
    const uint64_t count =
        std::max<uint64_t>(1, static_cast<uint64_t>(std::llround(target)));
    for (uint64_t c = 0; c < count; ++c) {
      NodeId slot = b.rng.Bernoulli(0.5)
                        ? hot_slots[b.rng.Uniform(hot_count)]
                        : b.rng.Choice(b.text_slots);
      b.doc.AppendText(slot, kw.word);
    }
  }

  b.doc.AssignDeweys();
  return b.doc;
}

}  // namespace xks
