// Inverted keyword index: word → sorted Dewey posting list.
//
// Built from the value table; this is the artifact the paper's SQL lookup
// produces ("collect the Dewey codes of the keyword nodes"), and the input
// every LCA algorithm in src/lca/ operates on. Posting lists are sorted in
// document order, enabling the binary-search probes (closest match left and
// right, subtree-range emptiness) that Scan Eager / Indexed Lookup Eager /
// Indexed Stack rely on.

#ifndef XKS_INDEX_INVERTED_INDEX_H_
#define XKS_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/storage/tables.h"
#include "src/xml/dewey.h"

namespace xks {

/// A sorted, deduplicated Dewey posting list for one word.
using PostingList = std::vector<Dewey>;

/// Binary-search helpers over a sorted posting list. All take the list by
/// reference and never allocate.

/// Index of the first posting >= `d`; postings.size() when none.
size_t LowerBoundPosting(const PostingList& postings, const Dewey& d);

/// The posting closest to `d` in document-order distance, preferring the
/// left neighbour on ties (lm/rm "closest match" of Xu & Papakonstantinou).
/// Requires a non-empty list.
const Dewey& ClosestPosting(const PostingList& postings, const Dewey& d);

/// Rightmost posting <= `d` (lm); nullptr when all postings are > d.
const Dewey* LeftMatch(const PostingList& postings, const Dewey& d);

/// Leftmost posting >= `d` (rm); nullptr when all postings are < d.
const Dewey* RightMatch(const PostingList& postings, const Dewey& d);

/// True iff some posting lies in the half-open document-order range
/// [begin, end) — e.g. a subtree range [v, v.SubtreeEnd()).
bool AnyPostingInRange(const PostingList& postings, const Dewey& begin,
                       const Dewey& end);

/// Number of postings in [begin, end).
size_t CountPostingsInRange(const PostingList& postings, const Dewey& begin,
                            const Dewey& end);

/// The index itself.
class InvertedIndex {
 public:
  InvertedIndex() = default;

  /// Builds the index from a value table (one posting per value row).
  static InvertedIndex Build(const ValueTable& values);

  /// Posting list for `word` (already lowercased), or nullptr when the word
  /// does not occur.
  const PostingList* Find(const std::string& word) const;

  /// Posting list for `word`; the empty list when absent.
  const PostingList& FindOrEmpty(const std::string& word) const;

  size_t vocabulary_size() const { return postings_.size(); }

  /// Total number of postings across all words.
  size_t total_postings() const { return total_postings_; }

 private:
  std::unordered_map<std::string, PostingList> postings_;
  size_t total_postings_ = 0;
};

}  // namespace xks

#endif  // XKS_INDEX_INVERTED_INDEX_H_
