#include "src/index/inverted_index.h"

#include <algorithm>

namespace xks {

size_t LowerBoundPosting(const PostingList& postings, const Dewey& d) {
  return static_cast<size_t>(
      std::lower_bound(postings.begin(), postings.end(), d) - postings.begin());
}

const Dewey& ClosestPosting(const PostingList& postings, const Dewey& d) {
  size_t i = LowerBoundPosting(postings, d);
  if (i == postings.size()) return postings.back();
  if (i == 0) return postings.front();
  // Tie-break by comparing the depth of the LCA with d: the candidate whose
  // LCA with d is deeper is "closer" in the tree sense that the SLCA
  // algorithms need; fall back to the left neighbour.
  const Dewey& right = postings[i];
  const Dewey& left = postings[i - 1];
  size_t left_lca = Dewey::Lca(left, d).depth();
  size_t right_lca = Dewey::Lca(right, d).depth();
  return right_lca > left_lca ? right : left;
}

const Dewey* LeftMatch(const PostingList& postings, const Dewey& d) {
  size_t i = static_cast<size_t>(
      std::upper_bound(postings.begin(), postings.end(), d) - postings.begin());
  return i == 0 ? nullptr : &postings[i - 1];
}

const Dewey* RightMatch(const PostingList& postings, const Dewey& d) {
  size_t i = LowerBoundPosting(postings, d);
  return i == postings.size() ? nullptr : &postings[i];
}

bool AnyPostingInRange(const PostingList& postings, const Dewey& begin,
                       const Dewey& end) {
  size_t i = LowerBoundPosting(postings, begin);
  return i < postings.size() && postings[i] < end;
}

size_t CountPostingsInRange(const PostingList& postings, const Dewey& begin,
                            const Dewey& end) {
  size_t lo = LowerBoundPosting(postings, begin);
  size_t hi = LowerBoundPosting(postings, end);
  return hi - lo;
}

InvertedIndex InvertedIndex::Build(const ValueTable& values) {
  InvertedIndex index;
  for (const ValueRow& row : values.rows()) {
    index.postings_[row.keyword].push_back(row.dewey);
  }
  for (auto& [word, list] : index.postings_) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    index.total_postings_ += list.size();
  }
  return index;
}

const PostingList* InvertedIndex::Find(const std::string& word) const {
  auto it = postings_.find(word);
  return it == postings_.end() ? nullptr : &it->second;
}

const PostingList& InvertedIndex::FindOrEmpty(const std::string& word) const {
  static const PostingList kEmpty;
  const PostingList* list = Find(word);
  return list == nullptr ? kEmpty : *list;
}

}  // namespace xks
