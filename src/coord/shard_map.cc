#include "src/coord/shard_map.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "src/common/fingerprint.h"

namespace xks {
namespace {

/// Parses a base-10 uint64 with no sign, no leading '+', no stray bytes.
Status ParseNumber(std::string_view text, uint64_t max_value, const char* what,
                   uint64_t* out) {
  if (text.empty()) {
    return Status::InvalidArgument(std::string("empty ") + what);
  }
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(std::string("bad ") + what + " '" +
                                     std::string(text) + "'");
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (max_value - digit) / 10) {
      return Status::InvalidArgument(std::string(what) + " '" +
                                     std::string(text) + "' out of range");
    }
    value = value * 10 + digit;
  }
  *out = value;
  return Status::OK();
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         (text[begin] == ' ' || text[begin] == '\t' || text[begin] == '\r')) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin && (text[end - 1] == ' ' || text[end - 1] == '\t' ||
                         text[end - 1] == '\r')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

}  // namespace

ShardMap::ShardMap(std::vector<ShardInfo> shards)
    : shards_(std::move(shards)) {
  Fingerprint fp;
  fp.PutVarint64(shards_.size());
  for (const ShardInfo& shard : shards_) {
    fp.PutString(shard.host);
    fp.PutVarint32(shard.port);
    fp.PutVarint32(shard.first_id);
    fp.PutVarint32(shard.last_id);
  }
  fingerprint_ = fp.Digest64();
}

Result<ShardMap> ShardMap::Of(std::vector<ShardInfo> shards) {
  if (shards.empty()) {
    return Status::InvalidArgument("shard map has no shards");
  }
  for (size_t i = 0; i < shards.size(); ++i) {
    const ShardInfo& shard = shards[i];
    const std::string where = "shard " + std::to_string(i);
    if (shard.host.empty()) {
      return Status::InvalidArgument(where + ": empty host");
    }
    if (shard.port == 0) {
      return Status::InvalidArgument(where + ": port 0");
    }
    if (shard.first_id > shard.last_id) {
      return Status::InvalidArgument(
          where + ": bad id range " + std::to_string(shard.first_id) + "-" +
          std::to_string(shard.last_id));
    }
    if (i > 0 && shard.first_id <= shards[i - 1].last_id) {
      return Status::InvalidArgument(
          where + ": id range overlaps or is out of order with shard " +
          std::to_string(i - 1) + " (ranges must be ascending and disjoint)");
    }
  }
  return ShardMap(std::move(shards));
}

Result<ShardMap> ShardMap::Parse(std::string_view text) {
  std::vector<ShardInfo> shards;
  size_t line_number = 0;
  while (!text.empty()) {
    const size_t newline = text.find('\n');
    std::string_view line = text.substr(0, newline);
    text = newline == std::string_view::npos ? std::string_view()
                                             : text.substr(newline + 1);
    ++line_number;
    const size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;

    const std::string where = "shard map line " + std::to_string(line_number);
    // host:port <ws> lo-hi
    const size_t space = line.find_first_of(" \t");
    if (space == std::string_view::npos) {
      return Status::InvalidArgument(
          where + ": expected 'host:port first_id-last_id'");
    }
    const std::string_view address = Trim(line.substr(0, space));
    const std::string_view range = Trim(line.substr(space + 1));
    const size_t colon = address.rfind(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Status::InvalidArgument(where + ": bad address '" +
                                     std::string(address) +
                                     "' (host:port expected)");
    }
    const size_t dash = range.find('-');
    if (dash == std::string_view::npos) {
      return Status::InvalidArgument(where + ": bad id range '" +
                                     std::string(range) +
                                     "' (first_id-last_id expected)");
    }
    ShardInfo shard;
    shard.host = std::string(address.substr(0, colon));
    uint64_t value = 0;
    XKS_RETURN_IF_ERROR(
        ParseNumber(address.substr(colon + 1), 65535, "port", &value));
    shard.port = static_cast<uint16_t>(value);
    XKS_RETURN_IF_ERROR(ParseNumber(range.substr(0, dash), UINT32_MAX,
                                    "document id", &value));
    shard.first_id = static_cast<DocumentId>(value);
    XKS_RETURN_IF_ERROR(ParseNumber(range.substr(dash + 1), UINT32_MAX,
                                    "document id", &value));
    shard.last_id = static_cast<DocumentId>(value);
    shards.push_back(std::move(shard));
  }
  return Of(std::move(shards));
}

Result<ShardMap> ShardMap::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open shard map '" + path + "'");
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  if (in.bad()) {
    return Status::IoError("cannot read shard map '" + path + "'");
  }
  return Parse(contents.str());
}

Result<size_t> ShardMap::ShardFor(DocumentId id) const {
  // Binary search over the (validated ascending, disjoint) ranges.
  size_t lo = 0;
  size_t hi = shards_.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (id < shards_[mid].first_id) {
      hi = mid;
    } else if (id > shards_[mid].last_id) {
      lo = mid + 1;
    } else {
      return mid;
    }
  }
  // Matches the single-node ResolveSelection message for an unknown id, so
  // coordinator and single-node corpora answer bad selections identically.
  return Status::NotFound("unknown document id " + std::to_string(id));
}

}  // namespace xks
