// xks_coord — the sharded query coordinator daemon.
//
// Speaks the exact same length-prefixed TCP protocol as xksd (an xks_client
// pointed at it cannot tell the difference), but answers every search by
// scattering rewritten sub-requests over a roster of xksd shards and
// merging the replies byte-identically to a single-node corpus
// (src/coord/coordinator.h). SIGTERM / SIGINT trigger the same graceful
// drain as xksd: stop accepting, finish every admitted query, exit 0.
//
//   xks_coord --shard-map shards.txt --port 7800
//   xks_coord --shard 127.0.0.1:7701/0-4999 --shard 127.0.0.1:7702/5000-9999

#include <signal.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/coord/coord_service.h"
#include "src/coord/coordinator.h"
#include "src/coord/shard_map.h"
#include "src/server/server.h"

namespace {

// Self-pipe: the signal handler writes one byte; main blocks on the read
// end, so the drain runs on the main thread with a full C++ runtime, not in
// signal context.
int g_signal_pipe[2] = {-1, -1};

void OnTermSignal(int) {
  const char byte = 1;
  // Best-effort; if the pipe is somehow full the daemon is already waking.
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--shard-map PATH | --shard SPEC...) [options]\n"
      "\n"
      "roster (exactly one form):\n"
      "  --shard-map PATH        shard roster file: one 'host:port lo-hi'\n"
      "                          per line ('#' comments; ids inclusive)\n"
      "  --shard SPEC            one roster entry, repeatable, in listed\n"
      "                          order; SPEC is host:port/lo-hi (the '/'\n"
      "                          stands in for the file format's space)\n"
      "\n"
      "server:\n"
      "  --host ADDR             numeric IPv4 listen address (default\n"
      "                          127.0.0.1)\n"
      "  --port PORT             listen port; 0 = ephemeral (default 7800)\n"
      "\n"
      "shard channels:\n"
      "  --connect-timeout-ms N  per-attempt shard connect budget\n"
      "  --connect-attempts N    dial attempts before Unavailable\n"
      "  --ping-deadline-ms N    budget for roster health sweeps\n"
      "\n"
      "admission:\n"
      "  --max-pending N         pending-queue bound before overload "
      "shedding\n"
      "  --inflight-quota N      per-connection in-flight quota\n"
      "  --workers N             concurrent coordinator queries\n"
      "\n"
      "observability:\n"
      "  --slow-query-ms N       log queries slower than N ms (hop\n"
      "                          breakdown on stderr); 0 = off (default)\n",
      argv0);
}

bool ParseUint(const char* text, uint64_t* out) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string map_path;
  std::string roster_text;
  std::string host = "127.0.0.1";
  uint64_t port = 7800;
  xks::CoordinatorConfig coordinator_config;
  xks::CoordBackendConfig backend_config;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "xks_coord: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    uint64_t u = 0;
    if (arg == "--shard-map") {
      map_path = next();
    } else if (arg == "--shard") {
      std::string spec = next();
      for (char& c : spec) {
        if (c == '/') c = ' ';
      }
      roster_text += spec;
      roster_text += '\n';
    } else if (arg == "--host") {
      host = next();
    } else if (arg == "--port") {
      if (!ParseUint(next(), &u) || u > 65535) {
        std::fprintf(stderr, "xks_coord: --port needs 0..65535\n");
        return 2;
      }
      port = u;
    } else if (arg == "--connect-timeout-ms") {
      if (!ParseUint(next(), &u)) return Usage(argv[0]), 2;
      coordinator_config.channel.connect_timeout_ms = u;
    } else if (arg == "--connect-attempts") {
      if (!ParseUint(next(), &u) || u == 0) return Usage(argv[0]), 2;
      coordinator_config.channel.connect_attempts = u;
    } else if (arg == "--ping-deadline-ms") {
      if (!ParseUint(next(), &u)) return Usage(argv[0]), 2;
      coordinator_config.ping_deadline_ms = u;
    } else if (arg == "--max-pending") {
      if (!ParseUint(next(), &u)) return Usage(argv[0]), 2;
      backend_config.max_pending = u;
    } else if (arg == "--inflight-quota") {
      if (!ParseUint(next(), &u)) return Usage(argv[0]), 2;
      backend_config.per_client_inflight = u;
    } else if (arg == "--workers") {
      if (!ParseUint(next(), &u) || u == 0) return Usage(argv[0]), 2;
      backend_config.workers = u;
    } else if (arg == "--slow-query-ms") {
      if (!ParseUint(next(), &u)) return Usage(argv[0]), 2;
      backend_config.slow_query_ms = u;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "xks_coord: unknown flag '%s'\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }

  if (map_path.empty() == roster_text.empty()) {
    std::fprintf(
        stderr,
        "xks_coord: exactly one of --shard-map / --shard... is required\n");
    Usage(argv[0]);
    return 2;
  }

  auto parsed = map_path.empty() ? xks::ShardMap::Parse(roster_text)
                                 : xks::ShardMap::Load(map_path);
  if (!parsed.ok()) {
    std::fprintf(stderr, "xks_coord: shard map: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  xks::Coordinator coordinator(std::move(parsed).value(), coordinator_config);

  // Warm the roster cache before serving, retrying briefly so a fleet
  // started in one script (shards first, coordinator second) comes up
  // without a race. Failure is not fatal: queries lazily refresh, and the
  // health frame reports all-zero until a sweep succeeds.
  xks::Status swept = xks::Status::OK();
  for (int attempt = 0; attempt < 5; ++attempt) {
    swept = coordinator.RefreshRoster(xks::CancelToken());
    if (swept.ok()) break;
    ::usleep(300 * 1000);
  }
  if (swept.ok()) {
    const xks::HealthReply view = coordinator.Health();
    std::fprintf(stderr,
                 "xks_coord: roster ready: %zu shards, %llu documents, "
                 "epoch %llu\n",
                 coordinator.shard_map().size(),
                 static_cast<unsigned long long>(view.document_count),
                 static_cast<unsigned long long>(view.epoch));
  } else {
    std::fprintf(stderr, "xks_coord: roster sweep failed (%s); serving "
                         "anyway, shards will be dialed per query\n",
                 swept.ToString().c_str());
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "xks_coord: pipe: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction action {};
  action.sa_handler = OnTermSignal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  xks::CoordBackend backend(&coordinator, backend_config);
  xks::ServerConfig server_config;
  server_config.host = host;
  server_config.port = static_cast<uint16_t>(port);
  xks::XksServer server(&backend, server_config);
  const xks::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "xks_coord: start: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  // The readiness line scripts wait for (stdout, flushed).
  std::printf("xks_coord: listening on %s:%u\n", host.c_str(), server.port());
  std::fflush(stdout);

  // Block until SIGTERM/SIGINT.
  char byte = 0;
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }

  std::fprintf(stderr, "xks_coord: draining...\n");
  server.Shutdown();

  const xks::ServiceStats stats = server.service_stats();
  const xks::CoordStats coord_stats = coordinator.stats();
  std::printf(
      "xks_coord: drained: submitted=%llu admitted=%llu completed=%llu "
      "shed_overload=%llu shed_quota=%llu rejected_draining=%llu "
      "queries=%llu ok=%llu failed=%llu degraded=%llu epoch_mismatches=%llu "
      "snapshot_retries=%llu roster_refreshes=%llu connections=%llu\n",
      static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.admitted),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.shed_overload),
      static_cast<unsigned long long>(stats.shed_quota),
      static_cast<unsigned long long>(stats.rejected_draining),
      static_cast<unsigned long long>(coord_stats.queries),
      static_cast<unsigned long long>(coord_stats.ok),
      static_cast<unsigned long long>(coord_stats.failed),
      static_cast<unsigned long long>(coord_stats.degraded),
      static_cast<unsigned long long>(coord_stats.epoch_mismatches),
      static_cast<unsigned long long>(coord_stats.snapshot_retries),
      static_cast<unsigned long long>(coord_stats.roster_refreshes),
      static_cast<unsigned long long>(server.connections_accepted()));
  std::fflush(stdout);
  return 0;
}
