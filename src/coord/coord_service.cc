#include "src/coord/coord_service.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace xks {

CoordBackend::CoordBackend(Coordinator* coordinator,
                           const CoordBackendConfig& config)
    : coordinator_(coordinator), config_(config) {
  const size_t workers = std::max<size_t>(1, config_.workers);
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

CoordBackend::~CoordBackend() {
  Drain();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

Status CoordBackend::Submit(uint64_t client_id, SearchRequest request,
                            CancelToken cancel, DoneCallback done) {
  PendingQuery query;
  query.client_id = client_id;
  query.request = std::move(request);
  query.cancel = cancel;
  query.done = std::move(done);
  // Arm the deadline at submission, not at Search entry: queue wait counts
  // against the budget, and the coordinator derives every per-hop shard
  // budget from what remains on this token.
  if (query.request.deadline_ms > 0) {
    query.cancel = query.cancel.WithDeadlineAfter(
        std::chrono::milliseconds(query.request.deadline_ms));
    query.request.deadline_ms = 0;
  }
  {
    MutexLock lock(mutex_);
    ++stats_.submitted;
    if (draining_) {
      ++stats_.rejected_draining;
      return Status::Unavailable("service is draining; not accepting queries");
    }
    if (pending_.size() >= config_.max_pending) {
      ++stats_.shed_overload;
      return Status::ResourceExhausted(
          "pending queue full (max_pending=" +
          std::to_string(config_.max_pending) + "); retry later");
    }
    auto it = inflight_.find(client_id);
    const size_t inflight = it == inflight_.end() ? 0 : it->second;
    if (inflight >= config_.per_client_inflight) {
      ++stats_.shed_quota;
      return Status::ResourceExhausted(
          "per-connection in-flight quota exceeded (quota=" +
          std::to_string(config_.per_client_inflight) + ")");
    }
    inflight_[client_id] = inflight + 1;
    ++inflight_total_;
    ++stats_.admitted;
    pending_.push_back(std::move(query));
  }
  work_cv_.NotifyOne();
  return Status::OK();
}

void CoordBackend::BeginDrain() {
  {
    MutexLock lock(mutex_);
    draining_ = true;
  }
  work_cv_.NotifyAll();
}

void CoordBackend::Drain() {
  BeginDrain();
  MutexLock lock(mutex_);
  while (!pending_.empty() || inflight_total_ != 0) drain_cv_.Wait(lock);
}

ServiceStats CoordBackend::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

HealthReply CoordBackend::Health() const { return coordinator_->Health(); }

void CoordBackend::WorkerLoop() {
  for (;;) {
    PendingQuery query;
    {
      MutexLock lock(mutex_);
      while (pending_.empty() && !draining_) work_cv_.Wait(lock);
      if (pending_.empty()) return;  // draining and nothing left to run
      query = std::move(pending_.front());
      pending_.pop_front();
      ++stats_.batches;
      stats_.max_batch = std::max<uint64_t>(stats_.max_batch, 1);
    }
    Result<SearchResponse> outcome = [&]() -> Result<SearchResponse> {
      if (query.cancel.can_expire() && query.cancel.cancelled()) {
        // Expired while queued: report without scattering anything.
        return query.cancel.status();
      }
      query.request.cancel = query.cancel;
      return coordinator_->Search(std::move(query.request));
    }();
    query.done(std::move(outcome));
    FinishOne(query.client_id);
  }
}

void CoordBackend::FinishOne(uint64_t client_id) {
  {
    MutexLock lock(mutex_);
    auto it = inflight_.find(client_id);
    if (it != inflight_.end() && --it->second == 0) inflight_.erase(it);
    --inflight_total_;
    ++stats_.completed;
  }
  drain_cv_.NotifyAll();
}

}  // namespace xks
