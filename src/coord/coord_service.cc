#include "src/coord/coord_service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

namespace xks {

CoordBackend::CoordBackend(Coordinator* coordinator,
                           const CoordBackendConfig& config)
    : coordinator_(coordinator), config_(config) {
  if (config_.metrics != nullptr) {
    MetricsRegistry& reg = *config_.metrics;
    // Same families as QueryService's admission mirror, distinguished by
    // backend="coord" so a process hosting both stays separable.
    const std::string_view b = "backend=\"coord\"";
    mirror_.submitted = reg.counter("xks_service_submitted_total", b);
    mirror_.admitted = reg.counter("xks_service_admitted_total", b);
    mirror_.completed = reg.counter("xks_service_completed_total", b);
    mirror_.shed_overload = reg.counter("xks_service_shed_overload_total", b);
    mirror_.shed_quota = reg.counter("xks_service_shed_quota_total", b);
    mirror_.rejected_draining =
        reg.counter("xks_service_rejected_draining_total", b);
    mirror_.batches = reg.counter("xks_service_batches_total", b);
    mirror_.slow_queries = reg.counter("xks_slow_queries_total", b);
  }
  const size_t workers = std::max<size_t>(1, config_.workers);
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

CoordBackend::~CoordBackend() {
  Drain();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

Status CoordBackend::Submit(uint64_t client_id, SearchRequest request,
                            CancelToken cancel, DoneCallback done) {
  PendingQuery query;
  query.client_id = client_id;
  query.request = std::move(request);
  query.cancel = cancel;
  query.done = std::move(done);
  // Arm the deadline at submission, not at Search entry: queue wait counts
  // against the budget, and the coordinator derives every per-hop shard
  // budget from what remains on this token.
  if (query.request.deadline_ms > 0) {
    query.cancel = query.cancel.WithDeadlineAfter(
        std::chrono::milliseconds(query.request.deadline_ms));
    query.request.deadline_ms = 0;
  }
  {
    MutexLock lock(mutex_);
    ++stats_.submitted;
    if (mirror_.submitted != nullptr) mirror_.submitted->Increment();
    if (draining_) {
      ++stats_.rejected_draining;
      if (mirror_.rejected_draining != nullptr) {
        mirror_.rejected_draining->Increment();
      }
      return Status::Unavailable("service is draining; not accepting queries");
    }
    if (pending_.size() >= config_.max_pending) {
      ++stats_.shed_overload;
      if (mirror_.shed_overload != nullptr) mirror_.shed_overload->Increment();
      return Status::ResourceExhausted(
          "pending queue full (max_pending=" +
          std::to_string(config_.max_pending) + "); retry later");
    }
    auto it = inflight_.find(client_id);
    const size_t inflight = it == inflight_.end() ? 0 : it->second;
    if (inflight >= config_.per_client_inflight) {
      ++stats_.shed_quota;
      if (mirror_.shed_quota != nullptr) mirror_.shed_quota->Increment();
      return Status::ResourceExhausted(
          "per-connection in-flight quota exceeded (quota=" +
          std::to_string(config_.per_client_inflight) + ")");
    }
    inflight_[client_id] = inflight + 1;
    ++inflight_total_;
    ++stats_.admitted;
    if (mirror_.admitted != nullptr) mirror_.admitted->Increment();
    pending_.push_back(std::move(query));
  }
  work_cv_.NotifyOne();
  return Status::OK();
}

void CoordBackend::BeginDrain() {
  {
    MutexLock lock(mutex_);
    draining_ = true;
  }
  work_cv_.NotifyAll();
}

void CoordBackend::Drain() {
  BeginDrain();
  MutexLock lock(mutex_);
  while (!pending_.empty() || inflight_total_ != 0) drain_cv_.Wait(lock);
}

ServiceStats CoordBackend::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

HealthReply CoordBackend::Health() const { return coordinator_->Health(); }

void CoordBackend::WorkerLoop() {
  for (;;) {
    PendingQuery query;
    {
      MutexLock lock(mutex_);
      while (pending_.empty() && !draining_) work_cv_.Wait(lock);
      if (pending_.empty()) return;  // draining and nothing left to run
      query = std::move(pending_.front());
      pending_.pop_front();
      ++stats_.batches;
      if (mirror_.batches != nullptr) mirror_.batches->Increment();
      stats_.max_batch = std::max<uint64_t>(stats_.max_batch, 1);
    }
    const bool slow_log = config_.slow_query_ms > 0;
    const bool client_wants_trace = query.request.include_trace;
    // The request is moved into Search below, so everything the slow-query
    // line needs from it is captured up front.
    const uint64_t fingerprint =
        slow_log ? QueryShapeFingerprint(query.request) : 0;
    Result<SearchResponse> outcome = [&]() -> Result<SearchResponse> {
      if (query.cancel.can_expire() && query.cancel.cancelled()) {
        // Expired while queued: report without scattering anything.
        return query.cancel.status();
      }
      query.request.cancel = query.cancel;
      // The slow-query log needs the hop breakdown, so force trace
      // collection while the log is enabled; the forced trace is stripped
      // again below unless the client asked for it.
      if (slow_log) query.request.include_trace = true;
      return coordinator_->Search(std::move(query.request));
    }();
    if (slow_log && outcome.ok() && outcome.value().trace != nullptr) {
      const TraceSpan& root = *outcome.value().trace;
      const double elapsed_ms = static_cast<double>(root.duration_us) / 1e3;
      if (elapsed_ms >= static_cast<double>(config_.slow_query_ms)) {
        std::fprintf(
            stderr, "%s\n",
            FormatSlowQueryLine("xks_coord", fingerprint, elapsed_ms, root)
                .c_str());
        if (mirror_.slow_queries != nullptr) mirror_.slow_queries->Increment();
      }
      if (!client_wants_trace) outcome.value().trace.reset();
    }
    query.done(std::move(outcome));
    FinishOne(query.client_id);
  }
}

void CoordBackend::FinishOne(uint64_t client_id) {
  {
    MutexLock lock(mutex_);
    auto it = inflight_.find(client_id);
    if (it != inflight_.end() && --it->second == 0) inflight_.erase(it);
    --inflight_total_;
    ++stats_.completed;
    if (mirror_.completed != nullptr) mirror_.completed->Increment();
  }
  drain_cv_.NotifyAll();
}

}  // namespace xks
