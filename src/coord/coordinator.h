// xks::Coordinator — scatter-gather search across xksd shards.
//
// The coordinator makes a roster of xksd shards (src/coord/shard_map.h)
// answer SearchRequests exactly as one big single-node corpus would: it
// rewrites the request's document selection into per-shard local ids, fans
// one sub-request per involved shard over its ShardChannels, and merges the
// replies with the same serial-prefix replay the single-node corpus scan
// uses (src/api/snapshot.cc), so merged responses — hit order, scores,
// totals, cursors' emptiness, pagination boundaries — are byte-identical
// to the equivalent single-node corpus at every page.
//
// Why the merge is exact:
//
//   * Every sub-request asks its shard for the union page's whole prefix
//     (offset' = 0, top_k' = offset + top_k) plus a per-document scan
//     breakdown. Unranked, a shard early-terminates once it alone holds
//     `offset + top_k + 1` hits — which is the union's own stopping
//     condition, so each shard's scanned prefix is a superset of what the
//     union scan would have covered on that shard. The coordinator then
//     replays the breakdowns in union selection order, consuming exactly
//     the documents a single-node serial scan would have, and cuts the
//     page out of the shard hit streams by offset arithmetic.
//
//   * Ranked, shards score with a coordinator-supplied
//     shared_depth_normalizer (the union corpus max depth, learned from
//     health pings), so per-shard scores land on the single-node scale;
//     the k-way merge breaks score ties by the document's position in the
//     union selection — the same (selection position, document order) tie
//     break the single-node stable sort applies.
//
// Epoch agreement: every shard reply carries its snapshot epoch. First
// pages record the full epoch vector into the minted cursor
// ("xksco1:..."), and replaying a cursor whose recorded epoch disagrees
// with any involved shard's current epoch fails with FailedPrecondition —
// the sharded analog of the single-node corpus-changed cursor check.
//
// Failure policy: a shard that is down (Unavailable) or too slow for the
// request's deadline (DeadlineExceeded) fails the WHOLE query with that
// status; the coordinator never returns a partial merge. Queries already
// written to a shard are never re-sent (the channel owns that contract);
// the only automatic retry is one refresh-and-rescatter when a ranked
// first page observes a shard epoch newer than the cached roster — search
// is idempotent and the re-scatter is bounded to one.

#ifndef XKS_COORD_COORDINATOR_H_
#define XKS_COORD_COORDINATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/api/search_types.h"
#include "src/common/cancel_token.h"
#include "src/common/mutex.h"
#include "src/common/result.h"
#include "src/coord/shard_channel.h"
#include "src/coord/shard_map.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/server/wire.h"

namespace xks {

/// A coordinator pagination cursor: which request (fingerprint), where the
/// next page starts (offset), and the per-shard snapshot epochs the walk
/// was minted under (one entry per roster shard, map order; 0 = the shard
/// was not consulted when the cursor was minted).
struct CoordCursor {
  uint64_t fingerprint = 0;
  uint64_t offset = 0;
  std::vector<uint64_t> epochs;
};

/// "xksco1:<fingerprint>:<offset>:<epoch>,<epoch>,..." — all hex.
std::string EncodeCoordCursor(const CoordCursor& cursor);

/// InvalidArgument on anything EncodeCoordCursor cannot emit (including
/// single-node "xksc2" tokens — the two families are deliberately
/// non-interchangeable).
Result<CoordCursor> DecodeCoordCursor(std::string_view token);

struct CoordinatorConfig {
  /// Connection behavior of every shard channel.
  ShardChannelConfig channel;
  /// Budget for a roster refresh (health pings) when the triggering query
  /// carries no deadline of its own. 0 = unbounded.
  uint64_t ping_deadline_ms = 5000;
  /// Registry the CoordStats counters and the per-hop instruments
  /// (xks_coord_hops_total{shard=...}, xks_coord_hop_seconds) are mirrored
  /// onto; nullptr disables. Must outlive the coordinator. Also the default
  /// for channel.metrics when that is left at MetricsRegistry::Default().
  MetricsRegistry* metrics = MetricsRegistry::Default();
};

/// Monotonic counters; read via Coordinator::stats().
struct CoordStats {
  uint64_t queries = 0;           ///< Search() invocations.
  uint64_t ok = 0;                ///< Fully merged responses.
  uint64_t failed = 0;            ///< Queries that returned any error.
  /// Queries failed because a shard was slow or unreachable (the whole
  /// query fails; this is the "degraded fleet" signal operators watch).
  uint64_t degraded = 0;
  /// Cursor replays rejected because a shard's epoch moved (FailedPrecondition).
  uint64_t epoch_mismatches = 0;
  /// Ranked first pages re-scattered after observing a shard epoch newer
  /// than the cached roster (bounded to one per query).
  uint64_t snapshot_retries = 0;
  uint64_t roster_refreshes = 0;  ///< Successful full-roster health sweeps.
};

class Coordinator {
 public:
  /// Builds one channel per roster shard. Nothing is dialed until the
  /// first query or RefreshRoster call.
  Coordinator(ShardMap map, CoordinatorConfig config);

  /// Closes every channel (failing in-flight calls) and joins receivers.
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Scatter-gather search over the roster. Global document ids in, global
  /// document ids out; responses byte-identical to the single-node union
  /// corpus (see file comment). Never partial: any shard failure fails the
  /// whole query with that shard's status.
  Result<SearchResponse> Search(SearchRequest request) XKS_EXCLUDES(mutex_);

  /// Health-pings every shard in parallel and refreshes the cached roster
  /// view (epochs, document counts, corpus depths). Per-shard successes
  /// are recorded even when the sweep as a whole fails; returns the first
  /// failing shard's status in map order.
  Status RefreshRoster(CancelToken cancel) XKS_EXCLUDES(mutex_);

  /// The union corpus view for the daemon's own health frame: max epoch,
  /// summed revisions and document counts, max depth — all zeros until a
  /// full roster sweep has succeeded (the "not built yet" shape a fresh
  /// xksd reports). Served from the cache; never blocks on the network.
  HealthReply Health() const XKS_EXCLUDES(mutex_);

  const ShardMap& shard_map() const { return map_; }
  CoordStats stats() const XKS_EXCLUDES(mutex_);
  ShardHealth shard_health(size_t shard_index) const;
  ShardChannelStats channel_stats(size_t shard_index) const;

 private:
  /// Where each selected document lives: which shards a query must visit
  /// and, for explicit selections, the union scan order.
  struct Routing {
    bool explicit_selection = false;
    /// Shard indices with a non-empty sub-selection, ascending.
    std::vector<size_t> involved;
    /// Per roster shard: its sub-selection in LOCAL ids, selection order.
    std::vector<std::vector<DocumentId>> local_selection;
    /// Explicit selections only: for each requested document in request
    /// order, (owning shard, position within that shard's sub-selection).
    std::vector<std::pair<size_t, size_t>> union_order;
  };

  /// Last successful health ping of one shard.
  struct ShardView {
    bool known = false;
    HealthReply info;
  };

  Result<SearchResponse> SearchInternal(SearchRequest request)
      XKS_EXCLUDES(mutex_);

  /// Validates the selection (NotFound / duplicate-id parity with the
  /// single-node corpus) and splits it per shard.
  Status Route(const std::vector<DocumentId>& documents,
               Routing* routing) const;

  /// Derives the ranked-merge score scale from the cached roster: the
  /// union corpus max depth when the union selection spans more than one
  /// document, else 0. Refreshes the roster first when forced or when any
  /// shard is still unknown. Reports the roster epochs the value was
  /// derived from, so callers can detect drift.
  Status RosterNormalizer(const SearchRequest& request,
                          const CancelToken& cancel, bool force_refresh,
                          uint64_t* normalizer,
                          std::vector<uint64_t>* roster_epochs)
      XKS_EXCLUDES(mutex_);

  /// Fans the rewritten sub-requests over the involved shards (all
  /// concurrently) and decodes the replies, involved order. Any shard
  /// failure fails the scatter with that shard's (globalized) status,
  /// first involved shard wins. When `trace` is non-null (and enabled), one
  /// "hop" child span per involved shard — carrying the hop's deadline
  /// budget vs. actual latency, with the shard's own trace attached below
  /// it — is added under the trace's innermost open span after the fan-out.
  Result<std::vector<SearchResponse>> Scatter(const SearchRequest& request,
                                              const Routing& routing,
                                              size_t offset,
                                              uint64_t normalizer,
                                              const CancelToken& cancel,
                                              QueryTrace* trace);

  /// Registry mirrors of the CoordStats counters plus the hop instruments;
  /// all nullptr when metrics are disabled. Immutable after construction.
  struct Mirror {
    Counter* queries = nullptr;
    Counter* ok = nullptr;
    Counter* failed = nullptr;
    Counter* degraded = nullptr;
    Counter* epoch_mismatches = nullptr;
    Counter* snapshot_retries = nullptr;
    Counter* roster_refreshes = nullptr;
    Histogram* hop_seconds = nullptr;
    /// One per roster shard (map order), labeled shard="host:port".
    std::vector<Counter*> hops;
    /// Fan-out pool instruments (pool="coord").
    Counter* worker_tasks = nullptr;
    Gauge* worker_queue_depth = nullptr;
  };

  const ShardMap map_;
  const CoordinatorConfig config_;
  Mirror mirror_;
  /// One channel per roster shard, map order. The vector itself is
  /// immutable after construction; each channel is internally thread-safe.
  std::vector<std::unique_ptr<ShardChannel>> channels_;

  mutable Mutex mutex_;
  std::vector<ShardView> views_ XKS_GUARDED_BY(mutex_);
  CoordStats stats_ XKS_GUARDED_BY(mutex_);
};

}  // namespace xks

#endif  // XKS_COORD_COORDINATOR_H_
