// xks::ShardChannel — a thread-safe, reconnecting RPC channel to one xksd
// shard.
//
// XksClient is a deliberately dumb blocking pipe; ShardChannel is the
// concurrency shell the coordinator needs around it:
//
//   * Call() is safe from any number of threads at once. Each call stamps a
//     channel-chosen request id, sends its frame (sends serialized by a
//     dedicated send lock), and blocks until the matching reply arrives —
//     replies may arrive in any order, demultiplexed to waiters by id by
//     one long-lived receiver thread per channel.
//
//   * Connection establishment (and re-establishment after a drop) happens
//     lazily inside Call(), with bounded retries and exponential backoff —
//     for CONNECTION failures only. Once a request frame has been written,
//     it is never re-sent: a connection lost mid-call fails that call with
//     Unavailable, and whether the shard executed it is unknown — exactly
//     why admitted queries must not be retried blindly (searches are
//     idempotent, but the coordinator owns that policy, not the channel).
//
//   * Deadlines: Call() honors its CancelToken end to end — while dialing
//     (each attempt's connect timeout is clipped to the remaining budget)
//     and while waiting for the reply. An expired budget fails the call
//     with DeadlineExceeded and abandons the reply (discarded by the
//     receiver if it arrives later); the connection itself stays up — a
//     slow shard is not a dead shard.
//
//   * Health: kNeverConnected until the first successful dial, then
//     kHealthy/kDown tracking the live connection state. Monotonic
//     counters via stats().
//
// All shared state is guarded by annotated mutexes (see the PR 7 ground
// rule in ROADMAP.md). Lock ordering: send_mutex_ and mutex_ are never
// held together.

#ifndef XKS_COORD_SHARD_CHANNEL_H_
#define XKS_COORD_SHARD_CHANNEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "src/common/cancel_token.h"
#include "src/common/mutex.h"
#include "src/common/result.h"
#include "src/coord/shard_map.h"
#include "src/obs/metrics.h"
#include "src/server/client.h"

namespace xks {

struct ShardChannelConfig {
  /// Per-attempt connection establishment budget (XksClient::Connect
  /// timeout). Also clipped to the calling token's remaining budget.
  uint64_t connect_timeout_ms = 2000;
  /// Dial attempts per Call() that finds the channel disconnected.
  size_t connect_attempts = 3;
  /// Backoff before the second attempt; doubles per further attempt.
  uint64_t backoff_initial_ms = 50;
  /// Registry the channel mirrors its counters onto, labeled
  /// shard="host:port"; nullptr disables. Must outlive the channel. The
  /// ShardChannelStats struct stays authoritative per instance.
  MetricsRegistry* metrics = MetricsRegistry::Default();
};

enum class ShardHealth : uint8_t {
  kNeverConnected = 0,
  kHealthy = 1,
  kDown = 2,
};

/// Monotonic counters; read via ShardChannel::stats().
struct ShardChannelStats {
  uint64_t calls = 0;              ///< Call() invocations.
  uint64_t connects = 0;           ///< Successful dials.
  uint64_t connect_failures = 0;   ///< Failed dial attempts.
  uint64_t connection_losses = 0;  ///< Established connections torn down.
  uint64_t call_timeouts = 0;      ///< Calls abandoned on deadline/cancel.
};

class ShardChannel {
 public:
  ShardChannel(ShardInfo shard, ShardChannelConfig config);

  /// Close() + joins the receiver.
  ~ShardChannel();

  ShardChannel(const ShardChannel&) = delete;
  ShardChannel& operator=(const ShardChannel&) = delete;

  /// Sends one `kind` frame with `body` and blocks for its reply frame
  /// (any reply kind; the caller dispatches). Connects first if needed.
  /// Unavailable when the shard is unreachable or the connection drops
  /// mid-call; DeadlineExceeded when `cancel`'s budget expires at any
  /// stage; Cancelled when its source fired.
  Result<Frame> Call(FrameKind kind, std::string body, CancelToken cancel)
      XKS_EXCLUDES(mutex_, send_mutex_);

  /// Fails all in-flight calls (Unavailable), tears the connection down
  /// and makes every later Call fail without dialing. Idempotent.
  void Close() XKS_EXCLUDES(mutex_);

  ShardHealth health() const XKS_EXCLUDES(mutex_);
  ShardChannelStats stats() const XKS_EXCLUDES(mutex_);
  const ShardInfo& shard() const { return shard_; }

 private:
  /// One blocked Call(); shared with the receiver which fills it in.
  struct Waiter {
    bool done = false;
    Result<Frame> reply = Status::Internal("reply pending");
  };

  /// Returns the live connection, dialing (with retries/backoff) when
  /// down. Only one thread dials at a time; others wait on state_cv_.
  Result<std::shared_ptr<XksClient>> GetOrConnect(const CancelToken& cancel)
      XKS_EXCLUDES(mutex_);

  /// The bounded retry loop of the elected dialer. No locks held while
  /// blocking in connect; installs the client under mutex_ on success.
  Status DialWithRetries(const CancelToken& cancel) XKS_EXCLUDES(mutex_);

  /// Demultiplexes reply frames to waiters; tears the connection down on
  /// receive errors.
  void ReceiverLoop() XKS_EXCLUDES(mutex_);

  /// Drops the current connection: aborts the socket, fails every waiter
  /// with `reason`, marks the channel kDown.
  void TearDownLocked(const Status& reason) XKS_REQUIRES(mutex_);

  /// Registry mirrors of the ShardChannelStats counters (all labeled with
  /// this channel's shard); nullptr when metrics are disabled. Immutable
  /// after construction, so increments need no extra synchronization beyond
  /// the counter's own atomic.
  struct Mirror {
    Counter* calls = nullptr;
    Counter* connects = nullptr;
    Counter* connect_failures = nullptr;
    Counter* connection_losses = nullptr;
    Counter* call_timeouts = nullptr;
  };

  const ShardInfo shard_;
  const ShardChannelConfig config_;
  /// "host:port" for error messages.
  const std::string label_;
  Mirror mirror_;

  /// Guards all channel state. Never held across blocking socket calls:
  /// the receiver blocks in ReceiveFrame and dialers block in Connect with
  /// no lock held, each pinning the XksClient via its own shared_ptr.
  mutable Mutex mutex_;
  /// Connection state changes, waiter completions, backoff sleeps.
  CondVar state_cv_;
  /// Live connection; null while down. Receiver/dialers/calls each take a
  /// shared_ptr copy under the lock and use it lock-free (the two socket
  /// directions are independent; Abort() is the cross-thread interrupt).
  std::shared_ptr<XksClient> client_ XKS_GUARDED_BY(mutex_);
  /// Bumped per successful dial; lets the receiver tell whether an error
  /// belongs to the connection it was reading or to a stale one.
  uint64_t generation_ XKS_GUARDED_BY(mutex_) = 0;
  bool connecting_ XKS_GUARDED_BY(mutex_) = false;
  bool closed_ XKS_GUARDED_BY(mutex_) = false;
  uint64_t next_request_id_ XKS_GUARDED_BY(mutex_) = 0;
  std::unordered_map<uint64_t, std::shared_ptr<Waiter>> waiters_
      XKS_GUARDED_BY(mutex_);
  ShardHealth health_ XKS_GUARDED_BY(mutex_) = ShardHealth::kNeverConnected;
  ShardChannelStats stats_ XKS_GUARDED_BY(mutex_);

  /// Serializes whole request frames onto the socket (WriteFull may need
  /// several writes). Acquired only while mutex_ is NOT held.
  Mutex send_mutex_;

  std::thread receiver_;
};

}  // namespace xks

#endif  // XKS_COORD_SHARD_CHANNEL_H_
