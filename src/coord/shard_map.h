// xks::ShardMap — the static shard roster of a sharded xks deployment.
//
// A shard map assigns each xksd shard an address and a contiguous range of
// GLOBAL document ids. Global ids are the coordinator's (and the client's)
// view: the union corpus numbered exactly as the equivalent single-node
// corpus would be. Each shard privately numbers its own documents from 0
// in AddDocument order, so the map's ranges double as the translation:
//
//   local id on shard s  =  global id - shards()[s].first_id
//
// which is what lets the coordinator rewrite per-shard document selections
// on the way out and hit document ids on the way back, keeping merged
// responses byte-identical to the single-node corpus.
//
// File format (one shard per line, '#' comments, blank lines ignored):
//
//   # host:port  first_id-last_id   (both ids inclusive)
//   127.0.0.1:7001 0-4999
//   127.0.0.1:7002 5000-9999
//
// Validation: at least one shard, numeric port != 0, first_id <= last_id,
// and ranges strictly ascending and disjoint in listed order. Gaps between
// ranges are legal — a global id falling in a gap is simply NotFound, the
// same answer a single-node corpus gives for a tombstoned id.
//
// The roster is immutable after construction (resharding = new map + new
// coordinator), which is what makes ShardMap freely shareable across the
// coordinator's threads without a lock.

#ifndef XKS_COORD_SHARD_MAP_H_
#define XKS_COORD_SHARD_MAP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/api/search_types.h"
#include "src/common/result.h"

namespace xks {

/// One shard of the roster.
struct ShardInfo {
  /// Numeric IPv4 address of the shard's xksd.
  std::string host;
  uint16_t port = 0;
  /// Global document-id range this shard owns, both ends inclusive.
  DocumentId first_id = 0;
  DocumentId last_id = 0;
};

class ShardMap {
 public:
  /// Builds a map from explicit shard entries (tests, programmatic setup).
  /// InvalidArgument on any validation failure (see file comment).
  static Result<ShardMap> Of(std::vector<ShardInfo> shards);

  /// Parses the text format from the file comment.
  static Result<ShardMap> Parse(std::string_view text);

  /// Reads and Parses `path`. IoError when unreadable.
  static Result<ShardMap> Load(const std::string& path);

  size_t size() const { return shards_.size(); }
  const ShardInfo& shard(size_t i) const { return shards_[i]; }
  const std::vector<ShardInfo>& shards() const { return shards_; }

  /// Index of the shard owning global id `id`; NotFound (with the same
  /// "unknown document id N" message a single-node corpus uses) when no
  /// range covers it.
  Result<size_t> ShardFor(DocumentId id) const;

  /// Local id of global id `id` on the shard that owns it. Only meaningful
  /// for ids ShardFor accepts.
  DocumentId ToLocal(size_t shard_index, DocumentId id) const {
    return id - shards_[shard_index].first_id;
  }

  /// Global id of `local_id` reported by shard `shard_index`.
  DocumentId ToGlobal(size_t shard_index, DocumentId local_id) const {
    return local_id + shards_[shard_index].first_id;
  }

  /// Digest of the whole roster (addresses + ranges). Folded into the
  /// coordinator's cursor fingerprints, so a cursor minted under one map
  /// cannot be replayed under a resharded one.
  uint64_t fingerprint() const { return fingerprint_; }

 private:
  explicit ShardMap(std::vector<ShardInfo> shards);

  std::vector<ShardInfo> shards_;
  uint64_t fingerprint_ = 0;
};

}  // namespace xks

#endif  // XKS_COORD_SHARD_MAP_H_
