#include "src/coord/shard_channel.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/common/check.h"

namespace xks {

namespace {
using Clock = CancelToken::Clock;
}  // namespace

ShardChannel::ShardChannel(ShardInfo shard, ShardChannelConfig config)
    : shard_(std::move(shard)),
      config_(config),
      label_(shard_.host + ":" + std::to_string(shard_.port)) {
  if (config_.metrics != nullptr) {
    MetricsRegistry& reg = *config_.metrics;
    const std::string labels = "shard=\"" + label_ + "\"";
    mirror_.calls = reg.counter("xks_shard_calls_total", labels);
    mirror_.connects = reg.counter("xks_shard_connects_total", labels);
    mirror_.connect_failures =
        reg.counter("xks_shard_connect_failures_total", labels);
    mirror_.connection_losses =
        reg.counter("xks_shard_connection_losses_total", labels);
    mirror_.call_timeouts =
        reg.counter("xks_shard_call_timeouts_total", labels);
  }
  receiver_ = std::thread([this] { ReceiverLoop(); });
}

ShardChannel::~ShardChannel() {
  Close();
  if (receiver_.joinable()) receiver_.join();
}

Result<Frame> ShardChannel::Call(FrameKind kind, std::string body,
                                 CancelToken cancel) {
  {
    MutexLock lock(mutex_);
    ++stats_.calls;
  }
  if (mirror_.calls != nullptr) mirror_.calls->Increment();
  std::shared_ptr<XksClient> client;
  XKS_ASSIGN_OR_RETURN(client, GetOrConnect(cancel));

  // Register the waiter before sending: the reply may arrive on the
  // receiver thread before SendFrame even returns.
  auto waiter = std::make_shared<Waiter>();
  uint64_t id = 0;
  {
    MutexLock lock(mutex_);
    if (closed_ || client_ != client) {
      // The connection turned over between GetOrConnect and registration.
      // Never send on a socket whose receiver is gone.
      return Status::Unavailable("shard " + label_ + ": connection lost");
    }
    id = ++next_request_id_;
    waiters_.emplace(id, waiter);
  }

  Frame frame;
  frame.kind = kind;
  frame.request_id = id;
  frame.body = std::move(body);
  Status sent;
  {
    // Sends serialized channel-wide; mutex_ is NOT held, so the receiver
    // and other calls' bookkeeping proceed while the frame drains.
    MutexLock send_lock(send_mutex_);
    sent = client->SendFrame(frame);
  }
  if (!sent.ok()) {
    const Status reason = Status::Unavailable("shard " + label_ +
                                              ": send failed: " +
                                              sent.message());
    MutexLock lock(mutex_);
    waiters_.erase(id);
    if (!closed_ && client_ == client) TearDownLocked(reason);
    return reason;
  }

  // The frame is on the wire: from here on there are no retries, only an
  // outcome — the reply, a torn-down connection (waiter failed by
  // TearDownLocked), or an expired budget.
  MutexLock lock(mutex_);
  for (;;) {
    if (waiter->done) {
      waiters_.erase(id);
      return std::move(waiter->reply);
    }
    if (cancel.cancelled()) {
      waiters_.erase(id);  // the receiver discards the late reply, if any
      ++stats_.call_timeouts;
      if (mirror_.call_timeouts != nullptr) mirror_.call_timeouts->Increment();
      if (cancel.status().code() == StatusCode::kCancelled) {
        return cancel.status();
      }
      return Status::DeadlineExceeded(
          "shard " + label_ + ": no reply within the deadline budget");
    }
    // Bounded waits keep external cancellation (a fired CancelSource has no
    // condvar tied to this channel) responsive at ~20ms granularity.
    Clock::time_point wake = Clock::now() + std::chrono::milliseconds(20);
    if (cancel.has_deadline() && cancel.deadline() < wake) {
      wake = cancel.deadline();
    }
    state_cv_.WaitUntil(lock, wake);
  }
}

Result<std::shared_ptr<XksClient>> ShardChannel::GetOrConnect(
    const CancelToken& cancel) {
  for (;;) {
    bool dialer = false;
    {
      MutexLock lock(mutex_);
      if (closed_) {
        return Status::Unavailable("shard " + label_ + ": channel closed");
      }
      if (client_ != nullptr) return client_;
      if (cancel.cancelled()) return cancel.status();
      if (connecting_) {
        // Another call is dialing; piggyback on its outcome.
        state_cv_.WaitFor(lock, std::chrono::milliseconds(20));
        continue;
      }
      connecting_ = true;
      dialer = true;
    }
    XKS_CHECK(dialer);
    const Status dialed = DialWithRetries(cancel);
    {
      MutexLock lock(mutex_);
      connecting_ = false;
    }
    state_cv_.NotifyAll();
    XKS_RETURN_IF_ERROR(dialed);
    // Loop back to pick the installed client up (or to discover a racing
    // teardown and dial again within this call's budget).
  }
}

Status ShardChannel::DialWithRetries(const CancelToken& cancel) {
  const size_t attempts = std::max<size_t>(1, config_.connect_attempts);
  uint64_t backoff_ms = config_.backoff_initial_ms;
  Status last = Status::Unavailable("unreachable");
  for (size_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      // Interruptible backoff: Close() notifies state_cv_.
      MutexLock lock(mutex_);
      if (closed_) {
        return Status::Unavailable("shard " + label_ + ": channel closed");
      }
      state_cv_.WaitFor(lock, std::chrono::milliseconds(backoff_ms));
      if (closed_) {
        return Status::Unavailable("shard " + label_ + ": channel closed");
      }
      backoff_ms *= 2;
    }
    if (cancel.cancelled()) return cancel.status();
    // Each attempt gets the configured connect timeout, clipped to the
    // call's remaining budget — a dial never outlives its query.
    uint64_t timeout_ms = config_.connect_timeout_ms;
    if (cancel.has_deadline()) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          cancel.deadline() - Clock::now());
      if (left.count() <= 0) {
        return Status::DeadlineExceeded("shard " + label_ +
                                        ": deadline expired while dialing");
      }
      timeout_ms =
          std::min(timeout_ms, static_cast<uint64_t>(left.count()) + 1);
    }
    if (timeout_ms == 0) timeout_ms = 1;
    Result<XksClient> conn =
        XksClient::Connect(shard_.host, shard_.port, timeout_ms);
    if (conn.ok()) {
      MutexLock lock(mutex_);
      if (closed_) {
        return Status::Unavailable("shard " + label_ + ": channel closed");
      }
      client_ = std::make_shared<XksClient>(std::move(conn).value());
      ++generation_;
      health_ = ShardHealth::kHealthy;
      ++stats_.connects;
      if (mirror_.connects != nullptr) mirror_.connects->Increment();
      state_cv_.NotifyAll();  // wake the receiver onto the new connection
      return Status::OK();
    }
    last = conn.status();
    MutexLock lock(mutex_);
    ++stats_.connect_failures;
    if (mirror_.connect_failures != nullptr) {
      mirror_.connect_failures->Increment();
    }
    health_ = ShardHealth::kDown;
  }
  if (cancel.cancelled()) {
    return Status::DeadlineExceeded("shard " + label_ +
                                    ": deadline expired while dialing");
  }
  return Status::Unavailable("shard " + label_ + " unreachable after " +
                             std::to_string(attempts) +
                             " attempts: " + last.message());
}

void ShardChannel::ReceiverLoop() {
  for (;;) {
    std::shared_ptr<XksClient> client;
    uint64_t my_generation = 0;
    {
      MutexLock lock(mutex_);
      while (!closed_ && client_ == nullptr) state_cv_.Wait(lock);
      if (closed_) return;
      client = client_;
      my_generation = generation_;
    }
    for (;;) {
      // Blocking read with no lock held; Abort() (teardown, Close) is the
      // cross-thread interrupt that fails this read.
      Result<Frame> frame = client->ReceiveFrame();
      if (!frame.ok()) {
        MutexLock lock(mutex_);
        if (!closed_ && generation_ == my_generation) {
          TearDownLocked(Status::Unavailable(
              "shard " + label_ + ": connection lost (" +
              frame.status().message() + ")"));
        }
        break;
      }
      MutexLock lock(mutex_);
      auto it = waiters_.find(frame->request_id);
      if (it != waiters_.end() && !it->second->done) {
        it->second->reply = std::move(frame).value();
        it->second->done = true;
        state_cv_.NotifyAll();
      }
      // No waiter: the call abandoned its reply (deadline) — discarded.
    }
  }
}

void ShardChannel::TearDownLocked(const Status& reason) {
  if (client_ != nullptr) {
    client_->Abort();
    client_ = nullptr;
    ++stats_.connection_losses;
    if (mirror_.connection_losses != nullptr) {
      mirror_.connection_losses->Increment();
    }
  }
  health_ = ShardHealth::kDown;
  for (auto& [id, waiter] : waiters_) {
    if (!waiter->done) {
      waiter->done = true;
      waiter->reply = reason;
    }
  }
  state_cv_.NotifyAll();
}

void ShardChannel::Close() {
  MutexLock lock(mutex_);
  if (closed_) return;
  closed_ = true;
  TearDownLocked(Status::Unavailable("shard " + label_ + ": channel closed"));
}

ShardHealth ShardChannel::health() const {
  MutexLock lock(mutex_);
  return health_;
}

ShardChannelStats ShardChannel::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

}  // namespace xks
