// CoordBackend — the admission-controlled executor behind the xks_coord
// daemon: the same QueryBackend seam the TCP server fronts for xksd, but
// with a Coordinator scatter-gather instead of a local corpus behind it.
//
// The admission rules are QueryService's, verbatim (same statuses, same
// client-quota unit), so a client cannot tell which daemon sheds it:
//
//   * pending queue full             → ResourceExhausted (overload shed)
//   * per-client in-flight quota hit → ResourceExhausted
//   * backend draining               → Unavailable
//
// Execution differs: coordinator queries spend their time BLOCKED on shard
// sockets, not burning cores, so instead of QueryService's snapshot-pinning
// batch dispatcher there is a plain pool of worker threads, each running
// one admitted query end to end through Coordinator::Search. Deadlines are
// armed at submission (queue wait counts against the budget — and against
// the per-hop budgets the coordinator derives from the remaining time).
//
// Drain: BeginDrain() makes every later Submit fail Unavailable; Drain()
// additionally blocks until every admitted query has completed — nothing
// admitted is dropped, nothing new is accepted (the SIGTERM contract).

#ifndef XKS_COORD_COORD_SERVICE_H_
#define XKS_COORD_COORD_SERVICE_H_

#include <cstdint>
#include <deque>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/cancel_token.h"
#include "src/common/mutex.h"
#include "src/coord/coordinator.h"
#include "src/server/backend.h"

namespace xks {

/// Admission knobs of the coordinator daemon.
struct CoordBackendConfig {
  /// Queries admitted but not yet claimed by a worker.
  size_t max_pending = 256;
  /// Admitted-but-incomplete queries one client may have at a time.
  size_t per_client_inflight = 32;
  /// Worker threads running queries (each blocks on its query's shard
  /// round-trips, so this bounds coordinator-side concurrency, not CPU).
  size_t workers = 8;
  /// Queries whose coordinator wall time reaches this many milliseconds are
  /// logged (one structured line on stderr, with the hop breakdown). 0 = off.
  /// While enabled, every query collects a trace; forced traces are stripped
  /// before the done callback unless the client asked for one, so the wire
  /// bytes are unchanged.
  uint64_t slow_query_ms = 0;
  /// Registry the ServiceStats counters are mirrored onto (labeled
  /// backend="coord") and the slow-query counter lives in; nullptr disables.
  /// Must outlive the backend.
  MetricsRegistry* metrics = MetricsRegistry::Default();
};

class CoordBackend : public QueryBackend {
 public:
  /// `coordinator` must outlive the backend. Workers start immediately.
  CoordBackend(Coordinator* coordinator, const CoordBackendConfig& config);

  /// Drains (see Drain) and joins the workers.
  ~CoordBackend() override;

  CoordBackend(const CoordBackend&) = delete;
  CoordBackend& operator=(const CoordBackend&) = delete;

  /// Admits one query or sheds it synchronously; on admission `done` fires
  /// exactly once with the coordinator's outcome. request.deadline_ms is
  /// armed HERE (queue wait counts against the budget).
  Status Submit(uint64_t client_id, SearchRequest request, CancelToken cancel,
                DoneCallback done) override XKS_EXCLUDES(mutex_);

  /// Stops admitting (Unavailable) without waiting.
  void BeginDrain() override XKS_EXCLUDES(mutex_);

  /// BeginDrain + blocks until every admitted query has completed.
  void Drain() override XKS_EXCLUDES(mutex_);

  /// `batches` counts claimed queries (every "batch" is one query here).
  ServiceStats stats() const override XKS_EXCLUDES(mutex_);

  /// The coordinator's cached union-corpus view (all-zero until a roster
  /// sweep succeeds). Never blocks on the network.
  HealthReply Health() const override;

 private:
  struct PendingQuery {
    uint64_t client_id = 0;
    SearchRequest request;
    CancelToken cancel;
    DoneCallback done;
  };

  void WorkerLoop() XKS_EXCLUDES(mutex_);
  /// Marks one query finished: quota release + drain bookkeeping.
  void FinishOne(uint64_t client_id) XKS_EXCLUDES(mutex_);

  /// Registry mirrors of the ServiceStats counters (labeled
  /// backend="coord"); nullptr when metrics are disabled. Immutable after
  /// construction.
  struct Mirror {
    Counter* submitted = nullptr;
    Counter* admitted = nullptr;
    Counter* completed = nullptr;
    Counter* shed_overload = nullptr;
    Counter* shed_quota = nullptr;
    Counter* rejected_draining = nullptr;
    Counter* batches = nullptr;
    Counter* slow_queries = nullptr;
  };

  Coordinator* const coordinator_;
  const CoordBackendConfig config_;
  Mirror mirror_;

  /// One mutex guards the whole admission state (queue, quotas, drain flag,
  /// counters), mirroring QueryService.
  mutable Mutex mutex_;
  CondVar work_cv_;   ///< Worker wake-up.
  CondVar drain_cv_;  ///< Drain() completion.
  std::deque<PendingQuery> pending_ XKS_GUARDED_BY(mutex_);
  std::unordered_map<uint64_t, size_t> inflight_ XKS_GUARDED_BY(mutex_);
  size_t inflight_total_ XKS_GUARDED_BY(mutex_) = 0;
  bool draining_ XKS_GUARDED_BY(mutex_) = false;
  ServiceStats stats_ XKS_GUARDED_BY(mutex_);

  /// Written by the constructor only; joined by the destructor.
  std::vector<std::thread> workers_;
};

}  // namespace xks

#endif  // XKS_COORD_COORD_SERVICE_H_
