#include "src/coord/coordinator.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "src/api/request_fingerprint.h"
#include "src/common/check.h"
#include "src/common/worker_pool.h"

namespace xks {
namespace {

constexpr std::string_view kCoordCursorPrefix = "xksco1:";

/// Parses a full run of hex digits; false on empty/overlong/non-hex input.
/// Both cases are accepted (encode emits lowercase, but cursors that round-
/// trip through case-normalizing clients must still decode).
bool ParseHex64(std::string_view text, uint64_t* value) {
  if (text.empty() || text.size() > 16) return false;
  uint64_t v = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return false;
    }
    v = (v << 4) | static_cast<uint64_t>(digit);
  }
  *value = v;
  return true;
}

void AppendHex64(std::string* out, uint64_t value) {
  char buffer[20];
  std::snprintf(buffer, sizeof(buffer), "%" PRIx64, value);
  out->append(buffer);
}

/// Same bound and same message as the single-node page-window validation
/// (src/api/snapshot.cc): the sub-requests' top_k is offset + top_k, so
/// the coordinator must reject the same wraparound the corpus scan does.
Status ValidatePageWindow(uint64_t offset, size_t top_k) {
  const uint64_t max_index = static_cast<uint64_t>(SIZE_MAX);
  if (offset >= max_index ||
      (top_k != 0 && static_cast<uint64_t>(top_k) > max_index - offset - 1)) {
    return Status::InvalidArgument(
        "page window overflows: offset " + std::to_string(offset) +
        " + top_k " + std::to_string(top_k) +
        " exceeds the addressable result range");
  }
  return Status::OK();
}

std::string ShardLabel(const ShardInfo& shard) {
  return shard.host + ":" + std::to_string(shard.port);
}

Status EpochMismatchError(const ShardInfo& shard, uint64_t minted,
                          uint64_t current) {
  return Status::FailedPrecondition(
      "corpus changed: cursor was minted at epoch " + std::to_string(minted) +
      " but shard " + ShardLabel(shard) + " is at epoch " +
      std::to_string(current) + "; restart pagination");
}

/// Rewrites a shard's "unknown document id <local>" NotFound into global
/// terms, so a selection naming a tombstoned id answers with the id the
/// client actually sent — the exact message a single-node corpus produces.
/// Any other status (or an unparseable message) passes through untouched.
Status GlobalizeShardStatus(const Status& status, const ShardMap& map,
                            size_t shard_index) {
  if (status.code() != StatusCode::kNotFound) return status;
  constexpr std::string_view kUnknownId = "unknown document id ";
  const std::string& message = status.message();
  if (message.compare(0, kUnknownId.size(), kUnknownId) != 0) return status;
  const std::string digits = message.substr(kUnknownId.size());
  if (digits.empty()) return status;
  uint64_t local = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return status;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (local > (UINT32_MAX - digit) / 10) return status;
    local = local * 10 + digit;
  }
  const ShardInfo& shard = map.shard(shard_index);
  if (local > static_cast<uint64_t>(shard.last_id - shard.first_id)) {
    return status;  // outside the shard's range; don't fabricate an id
  }
  return Status::NotFound(
      "unknown document id " +
      std::to_string(map.ToGlobal(shard_index,
                                  static_cast<DocumentId>(local))));
}

}  // namespace

std::string EncodeCoordCursor(const CoordCursor& cursor) {
  std::string token(kCoordCursorPrefix);
  AppendHex64(&token, cursor.fingerprint);
  token.push_back(':');
  AppendHex64(&token, cursor.offset);
  token.push_back(':');
  for (size_t i = 0; i < cursor.epochs.size(); ++i) {
    if (i > 0) token.push_back(',');
    AppendHex64(&token, cursor.epochs[i]);
  }
  return token;
}

Result<CoordCursor> DecodeCoordCursor(std::string_view token) {
  if (token.substr(0, kCoordCursorPrefix.size()) != kCoordCursorPrefix) {
    return Status::InvalidArgument("unrecognized cursor");
  }
  const std::string_view body = token.substr(kCoordCursorPrefix.size());
  const size_t first = body.find(':');
  if (first == std::string_view::npos) {
    return Status::InvalidArgument("malformed cursor");
  }
  const size_t second = body.find(':', first + 1);
  if (second == std::string_view::npos) {
    return Status::InvalidArgument("malformed cursor");
  }
  CoordCursor cursor;
  if (!ParseHex64(body.substr(0, first), &cursor.fingerprint) ||
      !ParseHex64(body.substr(first + 1, second - first - 1),
                  &cursor.offset)) {
    return Status::InvalidArgument("malformed cursor");
  }
  std::string_view epochs = body.substr(second + 1);
  for (;;) {
    const size_t comma = epochs.find(',');
    uint64_t epoch = 0;
    if (!ParseHex64(epochs.substr(0, comma), &epoch)) {
      return Status::InvalidArgument("malformed cursor");
    }
    cursor.epochs.push_back(epoch);
    if (comma == std::string_view::npos) break;
    epochs = epochs.substr(comma + 1);
  }
  return cursor;
}

Coordinator::Coordinator(ShardMap map, CoordinatorConfig config)
    : map_(std::move(map)), config_(config), views_(map_.size()) {
  if (config_.metrics != nullptr) {
    MetricsRegistry& reg = *config_.metrics;
    mirror_.queries = reg.counter("xks_coord_queries_total");
    mirror_.ok = reg.counter("xks_coord_ok_total");
    mirror_.failed = reg.counter("xks_coord_failed_total");
    mirror_.degraded = reg.counter("xks_coord_degraded_total");
    mirror_.epoch_mismatches = reg.counter("xks_coord_epoch_mismatches_total");
    mirror_.snapshot_retries = reg.counter("xks_coord_snapshot_retries_total");
    mirror_.roster_refreshes = reg.counter("xks_coord_roster_refreshes_total");
    mirror_.hop_seconds = reg.histogram("xks_coord_hop_seconds");
    mirror_.worker_tasks =
        reg.counter("xks_worker_tasks_total", "pool=\"coord\"");
    mirror_.worker_queue_depth =
        reg.gauge("xks_worker_queue_depth", "pool=\"coord\"");
    mirror_.hops.reserve(map_.size());
    for (const ShardInfo& shard : map_.shards()) {
      mirror_.hops.push_back(reg.counter(
          "xks_coord_hops_total", "shard=\"" + ShardLabel(shard) + "\""));
    }
  }
  channels_.reserve(map_.size());
  for (const ShardInfo& shard : map_.shards()) {
    channels_.push_back(
        std::make_unique<ShardChannel>(shard, config_.channel));
  }
}

Coordinator::~Coordinator() = default;

Result<SearchResponse> Coordinator::Search(SearchRequest request) {
  Result<SearchResponse> outcome = SearchInternal(std::move(request));
  MutexLock lock(mutex_);
  ++stats_.queries;
  if (mirror_.queries != nullptr) mirror_.queries->Increment();
  if (outcome.ok()) {
    ++stats_.ok;
    if (mirror_.ok != nullptr) mirror_.ok->Increment();
  } else {
    ++stats_.failed;
    if (mirror_.failed != nullptr) mirror_.failed->Increment();
    switch (outcome.status().code()) {
      case StatusCode::kUnavailable:
      case StatusCode::kDeadlineExceeded:
        ++stats_.degraded;
        if (mirror_.degraded != nullptr) mirror_.degraded->Increment();
        break;
      case StatusCode::kFailedPrecondition:
        ++stats_.epoch_mismatches;
        if (mirror_.epoch_mismatches != nullptr) {
          mirror_.epoch_mismatches->Increment();
        }
        break;
      default:
        break;
    }
  }
  return outcome;
}

Result<SearchResponse> Coordinator::SearchInternal(SearchRequest request) {
  // The effective cancellation token: the caller's token tightened by the
  // request's deadline budget, armed here (entry) exactly as the
  // single-node Snapshot::Search arms it. Sub-requests don't inherit
  // deadline_ms verbatim — each hop gets the REMAINING budget at scatter
  // time (see Scatter), so queue time at the coordinator counts against
  // the shard-side budget too.
  CancelToken cancel = request.cancel;
  if (request.deadline_ms > 0) {
    cancel =
        cancel.WithDeadlineAfter(std::chrono::milliseconds(request.deadline_ms));
    request.deadline_ms = 0;
  }
  if (cancel.can_expire() && cancel.cancelled()) return cancel.status();

  // The coordinator's own span tree: parse → route → (roster) → scatter
  // (one hop child per involved shard) → merge. Disabled traces never read
  // the clock.
  QueryTrace trace(request.include_trace, "coord_search");

  KeywordQuery query;
  {
    QueryTrace::Scope parse_scope(trace, "parse");
    if (!request.terms.empty()) {
      XKS_ASSIGN_OR_RETURN(query, KeywordQuery::FromTerms(request.terms));
    } else {
      XKS_ASSIGN_OR_RETURN(query, KeywordQuery::Parse(request.query));
    }
  }

  Routing routing;
  {
    QueryTrace::Scope route_scope(trace, "route");
    XKS_RETURN_IF_ERROR(Route(request.documents, &routing));
  }
  if (trace.enabled()) trace.Attr("shards", routing.involved.size());

  // The coordinator's cursor fingerprint: the request's execution shape
  // plus the roster digest — the sharded analog of the single-node corpus
  // revision, so a cursor cannot survive resharding.
  const uint64_t fingerprint =
      CursorFingerprint(query, request, request.documents, map_.fingerprint());

  CoordCursor cursor;
  bool replay = false;
  if (!request.cursor.empty()) {
    XKS_ASSIGN_OR_RETURN(cursor, DecodeCoordCursor(request.cursor));
    if (cursor.epochs.size() != map_.size()) {
      return Status::InvalidArgument(
          "cursor does not belong to this deployment (shard count changed)");
    }
    replay = true;
  }
  // The window is validated before the scatter (sub-request top_k needs
  // offset + top_k representable); the epoch and fingerprint checks below
  // still run in the single-node order — epoch first — once replies are in.
  XKS_RETURN_IF_ERROR(
      ValidatePageWindow(replay ? cursor.offset : 0, request.top_k));
  const size_t offset = replay ? static_cast<size_t>(cursor.offset) : 0;

  // The ranked-merge score scale. A multi-document union selection must
  // score every shard against the union corpus depth (what the single-node
  // corpus_max_depth normalizer would be); a single-document one keeps the
  // result-set-relative scale (normalizer 0), which each shard derives by
  // itself from its one-document sub-selection. An explicit caller override
  // passes through untouched.
  uint64_t normalizer = request.shared_depth_normalizer;
  std::vector<uint64_t> roster_epochs;
  const bool needs_roster =
      request.rank && normalizer == 0 &&
      (request.documents.empty() || request.documents.size() > 1);
  if (needs_roster) {
    QueryTrace::Scope roster_scope(trace, "roster");
    XKS_RETURN_IF_ERROR(RosterNormalizer(request, cancel,
                                         /*force_refresh=*/false, &normalizer,
                                         &roster_epochs));
    if (replay && roster_epochs != cursor.epochs) {
      // Replayed pages must score on the scale their cursor was minted
      // under. A stale roster cache gets one refresh; a disagreement that
      // survives it is a real epoch move — the corpus changed.
      XKS_RETURN_IF_ERROR(RosterNormalizer(request, cancel,
                                           /*force_refresh=*/true, &normalizer,
                                           &roster_epochs));
      for (size_t s = 0; s < map_.size(); ++s) {
        if (roster_epochs[s] != cursor.epochs[s]) {
          return EpochMismatchError(map_.shard(s), cursor.epochs[s],
                                    roster_epochs[s]);
        }
      }
    }
  }

  // Scatter, with epoch agreement on the gathered replies. First pages
  // that derived a normalizer from the roster tolerate exactly one epoch
  // drift (refresh + idempotent re-scatter); cursor replays never retry —
  // a drifted shard fails the replay outright.
  std::vector<SearchResponse> replies;
  // optional<> rather than a bare Scope: the span must close before the
  // merge span opens, without re-indenting the retry loop into a block.
  std::optional<QueryTrace::Scope> scatter_scope;
  if (trace.enabled()) scatter_scope.emplace(trace, "scatter");
  for (int attempt = 0;; ++attempt) {
    XKS_ASSIGN_OR_RETURN(
        replies, Scatter(request, routing, offset, normalizer, cancel,
                         trace.enabled() ? &trace : nullptr));
    if (replay) {
      for (size_t i = 0; i < routing.involved.size(); ++i) {
        const size_t s = routing.involved[i];
        if (replies[i].epoch != cursor.epochs[s]) {
          return EpochMismatchError(map_.shard(s), cursor.epochs[s],
                                    replies[i].epoch);
        }
      }
      break;
    }
    if (!roster_epochs.empty()) {
      bool drift = false;
      for (size_t i = 0; i < routing.involved.size(); ++i) {
        if (replies[i].epoch != roster_epochs[routing.involved[i]]) {
          drift = true;
          break;
        }
      }
      if (drift) {
        if (attempt == 0) {
          {
            MutexLock lock(mutex_);
            ++stats_.snapshot_retries;
            if (mirror_.snapshot_retries != nullptr) {
              mirror_.snapshot_retries->Increment();
            }
          }
          XKS_RETURN_IF_ERROR(RosterNormalizer(request, cancel,
                                               /*force_refresh=*/true,
                                               &normalizer, &roster_epochs));
          continue;
        }
        return Status::Unavailable(
            "shard snapshots changed while the query was being scattered; "
            "retry");
      }
    }
    break;
  }
  scatter_scope.reset();
  if (replay && cursor.fingerprint != fingerprint) {
    return Status::InvalidArgument(
        "cursor does not belong to this request (query, configuration or "
        "corpus changed)");
  }

  // The epoch vector the response (and a minted cursor) reports: the
  // replay's recorded vector or the roster view, overwritten with the
  // authoritative reply epochs for every shard that answered.
  std::vector<uint64_t> epochs =
      replay ? cursor.epochs
             : (roster_epochs.empty() ? std::vector<uint64_t>(map_.size(), 0)
                                      : roster_epochs);
  for (size_t i = 0; i < routing.involved.size(); ++i) {
    epochs[routing.involved[i]] = replies[i].epoch;
  }

  std::optional<QueryTrace::Scope> merge_scope;
  if (trace.enabled()) merge_scope.emplace(trace, "merge");

  // ---- Merge: replay the union serial scan over the shard breakdowns. --
  const size_t fan = routing.involved.size();
  std::vector<size_t> involved_index(map_.size(), SIZE_MAX);
  for (size_t i = 0; i < fan; ++i) involved_index[routing.involved[i]] = i;

  // Union scan order as (involved index, breakdown position). Explicit
  // selections carry it from routing; all-document selections concatenate
  // the shard breakdowns — ranges ascend, so that is ascending global id,
  // the single-node all-documents scan order.
  std::vector<std::pair<size_t, size_t>> order;
  if (routing.explicit_selection) {
    order.reserve(routing.union_order.size());
    for (const auto& [s, p] : routing.union_order) {
      order.emplace_back(involved_index[s], p);
    }
  } else {
    for (size_t i = 0; i < fan; ++i) {
      for (size_t p = 0; p < replies[i].scan_breakdown.size(); ++p) {
        order.emplace_back(i, p);
      }
    }
  }

  SearchResponse merged;
  merged.parsed_query = query;
  const size_t needed =
      request.top_k == 0 ? SIZE_MAX : offset + request.top_k + 1;
  std::vector<size_t> consumed(fan, 0);
  uint64_t total = 0;
  size_t scanned = 0;
  for (const auto& [i, p] : order) {
    const size_t s = routing.involved[i];
    const std::vector<DocumentScanCount>& breakdown =
        replies[i].scan_breakdown;
    if (p >= breakdown.size()) {
      // A shard stops scanning only once it alone holds `needed` hits — in
      // which case the union replay, which has consumed every one of those
      // hits by the time it reaches this document, broke out before getting
      // here. Reaching a truncated breakdown is a shard contract violation.
      return Status::Internal("shard " + ShardLabel(map_.shard(s)) +
                              " scanned fewer documents than the merge "
                              "requires");
    }
    if (routing.explicit_selection &&
        breakdown[p].document != routing.local_selection[s][p]) {
      return Status::Internal("shard " + ShardLabel(map_.shard(s)) +
                              " scan breakdown does not match its "
                              "sub-selection");
    }
    total += breakdown[p].hits;
    consumed[i] = p + 1;
    ++scanned;
    if (request.include_scan_breakdown) {
      merged.scan_breakdown.push_back(DocumentScanCount{
          map_.ToGlobal(s, breakdown[p].document), breakdown[p].hits});
    }
    if (!request.rank && total >= needed) break;
  }
  merged.documents_searched = scanned;
  merged.total_hits = static_cast<size_t>(total);

  // Exact iff the replay consumed every shard's whole breakdown and every
  // shard itself ran its sub-selection to completion — together: the union
  // scan covered the union selection, the single-node exactness condition.
  bool exact = true;
  for (size_t i = 0; i < fan; ++i) {
    if (consumed[i] != replies[i].scan_breakdown.size() ||
        !replies[i].total_is_exact) {
      exact = false;
      break;
    }
  }
  merged.total_is_exact = exact;
  merged.stats_are_exact = exact;

  // Cache counters are exact when a shard's breakdown was fully consumed
  // (every byte-identity mode); a partially consumed shard's counter is
  // clamped to its consumed prefix — shard-level counters cannot be split
  // per document, so this is observational, like the flag itself.
  for (size_t i = 0; i < fan; ++i) {
    merged.documents_from_cache +=
        consumed[i] == replies[i].scan_breakdown.size()
            ? replies[i].documents_from_cache
            : std::min(replies[i].documents_from_cache, consumed[i]);
  }
  merged.served_from_cache =
      scanned > 0 && merged.documents_from_cache == scanned;

  if (request.include_stats) {
    // Shard aggregates cover each shard's whole scanned prefix; with a
    // partially consumed shard they overshoot the consumed set — which
    // stats_are_exact == false already labels a non-corpus-wide answer.
    for (size_t i = 0; i < fan; ++i) {
      if (consumed[i] == 0) continue;
      merged.timings.Accumulate(replies[i].timings);
      merged.pruning.Accumulate(replies[i].pruning);
      merged.keyword_node_count += replies[i].keyword_node_count;
    }
  }
  for (uint64_t epoch : epochs) merged.epoch = std::max(merged.epoch, epoch);

  const size_t begin = std::min(offset, merged.total_hits);
  const size_t end = request.top_k == 0
                         ? merged.total_hits
                         : std::min(begin + request.top_k, merged.total_hits);
  merged.hits.reserve(end - begin);

  if (!request.rank) {
    // Unranked: the union hit stream is the per-document concatenation in
    // union scan order, and each shard's reply hits are ITS concatenation
    // in the same per-shard order — so the page is pure offset arithmetic:
    // hit k of a document at union stream position [cum, cum+h) is hit
    // (shard's consumed-hit prefix + k - cum) of its shard's stream.
    uint64_t cum = 0;
    std::vector<uint64_t> shard_cum(fan, 0);
    for (size_t oi = 0; oi < scanned && cum < end; ++oi) {
      const auto& [i, p] = order[oi];
      const DocumentScanCount& doc = replies[i].scan_breakdown[p];
      const uint64_t lo = std::max<uint64_t>(begin, cum);
      const uint64_t hi = std::min<uint64_t>(end, cum + doc.hits);
      for (uint64_t k = lo; k < hi; ++k) {
        const uint64_t index = shard_cum[i] + (k - cum);
        if (index >= replies[i].hits.size() ||
            replies[i].hits[static_cast<size_t>(index)].document !=
                doc.document) {
          return Status::Internal(
              "shard " + ShardLabel(map_.shard(routing.involved[i])) +
              " returned fewer hits than its scan breakdown promises");
        }
        Hit hit = std::move(replies[i].hits[static_cast<size_t>(index)]);
        hit.document = map_.ToGlobal(routing.involved[i], hit.document);
        merged.hits.push_back(std::move(hit));
      }
      cum += doc.hits;
      shard_cum[i] += doc.hits;
    }
  } else {
    // Ranked: k-way merge of the (already sorted) shard streams. Score
    // ties break on the document's position in the union selection — the
    // (selection position, document order) tie break of the single-node
    // stable sort. Two streams can never tie on (score, position): a
    // position names one document and a document lives on one shard, so
    // equal pairs only occur within a stream, where arrival order (the
    // shard's own sort) already matches the single-node order.
    std::unordered_map<DocumentId, size_t> union_pos;
    union_pos.reserve(order.size());
    if (routing.explicit_selection) {
      for (size_t d = 0; d < request.documents.size(); ++d) {
        union_pos.emplace(request.documents[d], d);
      }
    } else {
      size_t pos = 0;
      for (const auto& [i, p] : order) {
        union_pos.emplace(
            map_.ToGlobal(routing.involved[i],
                          replies[i].scan_breakdown[p].document),
            pos++);
      }
    }
    std::vector<size_t> head(fan, 0);
    for (size_t produced = 0; produced < end; ++produced) {
      size_t best = fan;
      double best_score = 0;
      size_t best_pos = 0;
      DocumentId best_global = 0;
      for (size_t i = 0; i < fan; ++i) {
        if (head[i] >= replies[i].hits.size()) continue;
        const Hit& candidate = replies[i].hits[head[i]];
        const DocumentId global =
            map_.ToGlobal(routing.involved[i], candidate.document);
        const auto it = union_pos.find(global);
        if (it == union_pos.end()) {
          return Status::Internal(
              "shard " + ShardLabel(map_.shard(routing.involved[i])) +
              " returned a hit outside the request selection");
        }
        if (best == fan || candidate.score > best_score ||
            (candidate.score == best_score && it->second < best_pos)) {
          best = i;
          best_score = candidate.score;
          best_pos = it->second;
          best_global = global;
        }
      }
      if (best == fan) {
        return Status::Internal(
            "shards returned fewer ranked hits than the page requires");
      }
      if (produced >= begin) {
        Hit hit = std::move(replies[best].hits[head[best]]);
        hit.document = best_global;
        merged.hits.push_back(std::move(hit));
      }
      ++head[best];
    }
  }

  if (end < merged.total_hits) {
    merged.next_cursor = EncodeCoordCursor(
        CoordCursor{fingerprint, static_cast<uint64_t>(end), epochs});
  }
  merge_scope.reset();
  if (trace.enabled()) {
    trace.Attr("hits", merged.total_hits);
    trace.Attr("cache_docs", merged.documents_from_cache);
    merged.trace = std::make_shared<const TraceSpan>(trace.Finish());
  }
  return merged;
}

Status Coordinator::Route(const std::vector<DocumentId>& documents,
                          Routing* routing) const {
  routing->local_selection.assign(map_.size(), {});
  routing->involved.clear();
  routing->union_order.clear();
  if (documents.empty()) {
    routing->explicit_selection = false;
    routing->involved.resize(map_.size());
    for (size_t s = 0; s < map_.size(); ++s) routing->involved[s] = s;
    return Status::OK();
  }
  routing->explicit_selection = true;
  routing->union_order.reserve(documents.size());
  std::unordered_set<DocumentId> seen;
  seen.reserve(documents.size());
  for (DocumentId id : documents) {
    // Same check order and messages as the single-node ResolveSelection:
    // unknown id first (NotFound), then duplicates (InvalidArgument).
    size_t s = 0;
    XKS_ASSIGN_OR_RETURN(s, map_.ShardFor(id));
    if (!seen.insert(id).second) {
      return Status::InvalidArgument("duplicate document id " +
                                     std::to_string(id) +
                                     " in request selection");
    }
    std::vector<DocumentId>& local = routing->local_selection[s];
    routing->union_order.emplace_back(s, local.size());
    local.push_back(map_.ToLocal(s, id));
  }
  for (size_t s = 0; s < map_.size(); ++s) {
    if (!routing->local_selection[s].empty()) routing->involved.push_back(s);
  }
  return Status::OK();
}

Status Coordinator::RosterNormalizer(const SearchRequest& request,
                                     const CancelToken& cancel,
                                     bool force_refresh, uint64_t* normalizer,
                                     std::vector<uint64_t>* roster_epochs) {
  bool have_all = true;
  {
    MutexLock lock(mutex_);
    for (const ShardView& view : views_) have_all = have_all && view.known;
  }
  if (force_refresh || !have_all) {
    XKS_RETURN_IF_ERROR(RefreshRoster(cancel));
  }
  uint64_t union_documents = 0;
  uint64_t depth = 0;
  roster_epochs->assign(map_.size(), 0);
  {
    MutexLock lock(mutex_);
    for (size_t s = 0; s < views_.size(); ++s) {
      // A successful refresh marks every shard known, and known is never
      // unset (refreshes only overwrite with fresher pings).
      XKS_CHECK(views_[s].known);
      (*roster_epochs)[s] = views_[s].info.epoch;
      union_documents += views_[s].info.document_count;
      depth = std::max(depth, views_[s].info.corpus_max_depth);
    }
  }
  if (!request.documents.empty()) union_documents = request.documents.size();
  *normalizer = union_documents > 1 ? depth : 0;
  return Status::OK();
}

Result<std::vector<SearchResponse>> Coordinator::Scatter(
    const SearchRequest& request, const Routing& routing, size_t offset,
    uint64_t normalizer, const CancelToken& cancel, QueryTrace* trace) {
  const size_t fan = routing.involved.size();
  const bool tracing = trace != nullptr && trace->enabled();
  std::vector<SearchResponse> responses(fan);
  std::vector<Status> failures(fan, Status::OK());
  // Hop spans are assembled per slot by the fan-out workers (QueryTrace is
  // a single-threaded builder, so workers never touch `trace` beyond the
  // read-only ElapsedUs) and attached in involved order afterwards.
  std::vector<TraceSpan> hops(tracing ? fan : 0);
  const auto call_shard = [&](size_t i) -> Status {
    const size_t s = routing.involved[i];
    // The sub-request: same execution shape, LOCAL document ids, and the
    // whole union page prefix (offset' = 0, top_k' = offset + top_k) so
    // the merge can cut the union page out of the shard streams. The
    // per-document scan breakdown is what the serial-prefix replay runs on.
    SearchRequest sub;
    sub.query = request.query;
    sub.terms = request.terms;
    sub.documents = routing.local_selection[s];
    sub.semantics = request.semantics;
    sub.elca_algorithm = request.elca_algorithm;
    sub.slca_algorithm = request.slca_algorithm;
    sub.pruning = request.pruning;
    sub.max_parallelism = request.max_parallelism;
    sub.top_k = request.top_k == 0 ? 0 : offset + request.top_k;
    sub.rank = request.rank;
    sub.weights = request.weights;
    if (request.rank) sub.shared_depth_normalizer = normalizer;
    sub.use_cache = request.use_cache;
    sub.include_snippets = request.include_snippets;
    sub.include_raw_fragments = request.include_raw_fragments;
    sub.include_stats = request.include_stats;
    sub.include_scan_breakdown = true;
    // A traced coordinator query asks each shard for its trace too, so the
    // hop span can carry the shard's own stage breakdown as a child.
    sub.include_trace = tracing;
    // Per-hop budget: the REMAINING share of the query's deadline at this
    // hop, so a shard stops scanning server-side once the coordinator has
    // given up on the query.
    if (cancel.has_deadline()) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          cancel.deadline() - CancelToken::Clock::now());
      sub.deadline_ms =
          left.count() <= 0 ? 1 : static_cast<uint64_t>(left.count());
    }
    const uint64_t hop_start_us = tracing ? trace->ElapsedUs() : 0;
    const auto call_start = std::chrono::steady_clock::now();
    Result<Frame> frame = channels_[s]->Call(
        FrameKind::kSearchRequest, EncodeSearchRequest(sub), cancel);
    if (mirror_.hop_seconds != nullptr) {
      mirror_.hop_seconds->Observe(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        call_start)
              .count());
    }
    if (s < mirror_.hops.size() && mirror_.hops[s] != nullptr) {
      mirror_.hops[s]->Increment();
    }
    if (tracing) {
      TraceSpan& hop = hops[i];
      hop.name = "hop";
      hop.start_us = hop_start_us;
      hop.duration_us = trace->ElapsedUs() - hop_start_us;
      hop.attributes.emplace_back("shard", static_cast<uint64_t>(s));
      hop.attributes.emplace_back("budget_ms", sub.deadline_ms);
    }
    if (!frame.ok()) {
      failures[i] = frame.status();
      return Status::OK();
    }
    if (frame->kind == FrameKind::kSearchResponse) {
      Result<SearchResponse> decoded = DecodeSearchResponse(frame->body);
      if (decoded.ok()) {
        responses[i] = std::move(decoded).value();
        if (tracing && responses[i].trace != nullptr) {
          // The shard's trace rides under the hop span (its offsets are
          // shard-relative); it must never leak into the merged response.
          hops[i].children.push_back(*responses[i].trace);
          responses[i].trace.reset();
        }
      } else {
        failures[i] = decoded.status();
      }
    } else if (frame->kind == FrameKind::kStatus) {
      Status remote = Status::OK();
      const Status decoded = DecodeStatusPayload(frame->body, &remote);
      if (!decoded.ok()) {
        failures[i] = decoded;
      } else if (remote.ok()) {
        failures[i] = Status::Corruption(
            "shard " + ShardLabel(map_.shard(s)) +
            " answered a search with an OK status frame");
      } else {
        failures[i] = GlobalizeShardStatus(remote, map_, s);
      }
    } else {
      failures[i] =
          Status::Corruption("unexpected reply frame kind from shard " +
                             ShardLabel(map_.shard(s)));
    }
    return Status::OK();
  };
  // Every shard concurrently: a query's latency is its slowest shard, not
  // the sum. Bodies never fail and no stop/cancel is passed — each Call
  // polls the token itself, so a fired deadline drains fast while every
  // slot still gets a definite outcome (no stranded placeholder).
  ParallelForOptions fan_out;
  fan_out.max_parallelism = fan;
  fan_out.tasks_metric = mirror_.worker_tasks;
  fan_out.queue_depth_metric = mirror_.worker_queue_depth;
  const Result<size_t> fanned = ParallelFor(fan, call_shard, fan_out);
  XKS_CHECK(fanned.ok() && *fanned == fan);
  if (tracing) {
    // Single-threaded again: attach the hop spans in involved order, so the
    // span tree is deterministic regardless of fan-out scheduling.
    for (TraceSpan& hop : hops) trace->AddChild(std::move(hop));
  }
  // Never partial: the first failed shard (involved order — deterministic)
  // fails the whole query with its status.
  for (size_t i = 0; i < fan; ++i) {
    XKS_RETURN_IF_ERROR(failures[i]);
  }
  return responses;
}

Status Coordinator::RefreshRoster(CancelToken cancel) {
  CancelToken effective = cancel;
  if (!effective.has_deadline() && config_.ping_deadline_ms > 0) {
    effective = effective.WithDeadlineAfter(
        std::chrono::milliseconds(config_.ping_deadline_ms));
  }
  std::vector<HealthReply> infos(map_.size());
  std::vector<Status> failures(map_.size(), Status::OK());
  const auto ping_shard = [&](size_t s) -> Status {
    Result<Frame> frame = channels_[s]->Call(FrameKind::kHealthCheck,
                                             EncodeHealthCheck(), effective);
    if (!frame.ok()) {
      failures[s] = frame.status();
      return Status::OK();
    }
    if (frame->kind == FrameKind::kHealthReply) {
      Result<HealthReply> decoded = DecodeHealthReply(frame->body);
      if (decoded.ok()) {
        infos[s] = *decoded;
      } else {
        failures[s] = decoded.status();
      }
    } else if (frame->kind == FrameKind::kStatus) {
      Status remote = Status::OK();
      const Status decoded = DecodeStatusPayload(frame->body, &remote);
      failures[s] = !decoded.ok()
                        ? decoded
                        : (remote.ok() ? Status::Corruption(
                                             "shard " +
                                             ShardLabel(map_.shard(s)) +
                                             " answered a health check with "
                                             "an OK status frame")
                                       : remote);
    } else {
      failures[s] =
          Status::Corruption("unexpected reply frame kind from shard " +
                             ShardLabel(map_.shard(s)));
    }
    return Status::OK();
  };
  ParallelForOptions fan_out;
  fan_out.max_parallelism = map_.size();
  fan_out.tasks_metric = mirror_.worker_tasks;
  fan_out.queue_depth_metric = mirror_.worker_queue_depth;
  const Result<size_t> fanned = ParallelFor(map_.size(), ping_shard, fan_out);
  XKS_CHECK(fanned.ok() && *fanned == map_.size());
  Status first = Status::OK();
  {
    MutexLock lock(mutex_);
    for (size_t s = 0; s < map_.size(); ++s) {
      if (failures[s].ok()) {
        views_[s].known = true;
        views_[s].info = infos[s];
      } else if (first.ok()) {
        first = failures[s];
      }
    }
    if (first.ok()) {
      ++stats_.roster_refreshes;
      if (mirror_.roster_refreshes != nullptr) {
        mirror_.roster_refreshes->Increment();
      }
    }
  }
  return first;
}

HealthReply Coordinator::Health() const {
  MutexLock lock(mutex_);
  HealthReply reply;
  for (const ShardView& view : views_) {
    if (!view.known) return HealthReply{};
    reply.epoch = std::max(reply.epoch, view.info.epoch);
    reply.revision += view.info.revision;
    reply.document_count += view.info.document_count;
    reply.corpus_max_depth =
        std::max(reply.corpus_max_depth, view.info.corpus_max_depth);
  }
  return reply;
}

CoordStats Coordinator::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

ShardHealth Coordinator::shard_health(size_t shard_index) const {
  return channels_[shard_index]->health();
}

ShardChannelStats Coordinator::channel_stats(size_t shard_index) const {
  return channels_[shard_index]->stats();
}

}  // namespace xks
