#include "src/api/effectiveness.h"

#include <string>

namespace xks {

Result<QueryEffectiveness> CompareHitEffectiveness(
    const std::vector<Hit>& valid_rtf, const std::vector<Hit>& max_match) {
  if (valid_rtf.size() != max_match.size()) {
    return Status::InvalidArgument(
        "hit lists have different sizes; were they produced with the same "
        "LCA semantics, ranking off and an unbounded page?");
  }
  QueryEffectiveness eff;
  eff.rtf_count = valid_rtf.size();
  eff.ratios.reserve(eff.rtf_count);
  for (size_t i = 0; i < eff.rtf_count; ++i) {
    const Hit& v = valid_rtf[i];
    const Hit& x = max_match[i];
    if (v.document != x.document || v.rtf.root != x.rtf.root) {
      return Status::InvalidArgument("hits are not aligned at index " +
                                     std::to_string(i));
    }
    AccumulateFragmentRatio(v.fragment, x.fragment, &eff);
  }
  return eff;
}

}  // namespace xks
