// xks::Database — the corpus-level entry point of the library.
//
// A Database is a mutable catalog of N shredded documents behind stable
// doc-id addressing. It publishes its searchable state as a sequence of
// immutable snapshots (src/api/snapshot.h): Build() publishes the first
// one (epoch 1), and every subsequent mutation — AddDocument,
// RemoveDocument, ReplaceDocument — merges or unmerges that one document's
// statistics into the corpus aggregates in O(changed doc) and publishes the
// next epoch. There is no full-corpus rescan on mutation, ever: each
// catalog entry keeps its own word-frequency list, posting count and max
// depth (DocumentStats), so corpus aggregates update by pure merge
// arithmetic, and no other document's tables are ever re-read. (Publishing
// the snapshot itself copies the aggregate index — the live-document list,
// name map and vocabulary frequency map — so a mutation's total cost is
// O(changed doc + vocabulary), independent of the other documents' count
// and content; sharing those maps structurally is a roadmap item.)
//
// Lifecycle:
//
//   Database db;
//   db.AddDocumentXml("a", xml_a);     // stage documents
//   db.Build();                        // publish snapshot, epoch 1
//   db.Search(request);                // executes against epoch 1
//   db.AddDocumentXml("b", xml_b);     // O(doc b) merge, publishes epoch 2
//   db.RemoveDocument("a");            // O(doc a) unmerge, epoch 3;
//                                      //   id of "a" is tombstoned forever
//   db.ReplaceDocument("b", new_doc);  // keeps b's id, epoch 4
//
// Concurrency: Search is const and safe from any number of threads, and
// mutations may run concurrently with searches — Search pins the snapshot
// that is current when it starts and executes entirely against it, while
// mutations build the next snapshot on the side and swap it in under the
// catalog mutex. In-flight and pinned snapshots stay alive (shared
// ownership) until their last reader drops them. Mutations are serialized
// against each other by the catalog mutex.
//
// Pagination across mutations: every response carries the epoch of the
// snapshot it was cut from, folded into next_cursor. Replaying a cursor
// after a mutation fails with FailedPrecondition("corpus changed ...") —
// clients either restart pagination against the new corpus or pin
// db.snapshot() up front and paginate against that fixed view.
//
// All methods are non-throwing; errors surface as Status/Result.

#ifndef XKS_API_DATABASE_H_
#define XKS_API_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/api/search_types.h"
#include "src/api/snapshot.h"
#include "src/common/mutex.h"
#include "src/common/result.h"
#include "src/storage/store.h"
#include "src/xml/dom.h"

namespace xks {

class Database {
 public:
  Database();
  Database(Database&&) noexcept = default;
  Database& operator=(Database&&) noexcept = default;

  /// Shreds `doc` and adds it to the corpus under `name`. Names must be
  /// unique among live documents and non-empty. Before Build() this stages
  /// the document; after Build() the document becomes searchable
  /// immediately (a new snapshot is published, epoch + 1) — no rebuild, no
  /// corpus rescan.
  Result<DocumentId> AddDocument(const std::string& name, const Document& doc);

  /// Parses `xml` and adds the document.
  Result<DocumentId> AddDocumentXml(const std::string& name,
                                    std::string_view xml);

  /// Removes document `id` from the corpus in O(changed doc): its
  /// statistics are unmerged from the corpus aggregates and, once built, a
  /// new snapshot without it is published. The id is tombstoned forever —
  /// never reassigned — so surviving ids stay stable, including across
  /// Save/Load. The name becomes available for reuse. NotFound for unknown
  /// or already-removed ids.
  Status RemoveDocument(DocumentId id);

  /// Removes the document named `name`; NotFound when absent.
  Status RemoveDocument(const std::string& name);

  /// Replaces the content of document `id` with `doc`, keeping its id and
  /// name. O(old doc + new doc): unmerge + merge, then publish. NotFound
  /// for unknown or removed ids.
  Status ReplaceDocument(DocumentId id, const Document& doc);

  /// Replaces the document named `name`, returning its (unchanged) id.
  Result<DocumentId> ReplaceDocument(const std::string& name,
                                     const Document& doc);

  /// Parses `xml` and replaces the document named `name`.
  Result<DocumentId> ReplaceDocumentXml(const std::string& name,
                                        std::string_view xml);

  /// Publishes the first snapshot (epoch 1), making the corpus searchable.
  /// Idempotent once built; fails on a corpus with no live documents.
  /// Purely a publication point: corpus statistics are maintained
  /// incrementally by the mutation methods, so Build() never rescans.
  Status Build();

  /// True once Build() has published the first snapshot. Mutations after
  /// Build() keep the database built (and searchable) — they publish new
  /// snapshots instead of invalidating the old one.
  bool built() const;

  /// Epoch of the currently published snapshot; 0 before Build().
  uint64_t epoch() const;

  /// Number of live (non-removed) documents.
  size_t document_count() const;

  /// Name of document `id`; NotFound for out-of-range or removed ids.
  Result<std::string> document_name(DocumentId id) const;

  /// Id of the live document named `name`; NotFound when absent.
  Result<DocumentId> FindDocument(const std::string& name) const;

  /// The underlying shredded document — internal building-block access for
  /// benches and stage-level tooling. NotFound for out-of-range or removed
  /// ids. Shared ownership: the store stays valid even if the document is
  /// removed or replaced afterwards.
  Result<std::shared_ptr<const ShreddedStore>> store(DocumentId id) const;

  /// Corpus-wide shred-time frequency of `word` (summed across live
  /// documents), maintained incrementally.
  uint64_t WordFrequency(const std::string& word) const;

  /// Distinct indexed words across the live documents.
  size_t vocabulary_size() const;

  /// Total postings across the live documents.
  size_t total_postings() const;

  /// Depth of the deepest element across the live documents — the shared
  /// specificity normalizer for cross-document ranking. Maintained as a
  /// census of per-document max depths, so removal is O(log corpus), not a
  /// rescan.
  size_t corpus_max_depth() const;

  /// Configures the per-snapshot result cache (src/cache/result_cache.h).
  /// Every snapshot published from now on carries a fresh cache under this
  /// configuration; if the database is already built, the current snapshot
  /// is republished immediately (same epoch, same revision — outstanding
  /// cursors keep working) so the change takes effect without a mutation.
  /// Snapshots pinned earlier keep the cache they were published with.
  void set_cache_config(const CacheConfig& config);
  CacheConfig cache_config() const;

  /// Points search instrumentation at `registry` (default: the shared
  /// process registry). Every snapshot published from now on resolves its
  /// Search instruments — query counter, latency and stage histograms,
  /// pipeline metrics, cache mirrors — against it; nullptr disables
  /// instrumentation entirely (no clock reads on the search path). Like
  /// set_cache_config, an already-built database republishes immediately
  /// (same epoch and revision).
  void set_metrics_registry(MetricsRegistry* registry);
  MetricsRegistry* metrics_registry() const;

  /// Counters of the currently published snapshot's cache; a zeroed struct
  /// (enabled = false) before Build() or when the cache is disabled.
  /// Counters reset whenever a new snapshot is published (every mutation) —
  /// they describe the current epoch, not the process lifetime.
  CacheStats cache_stats() const;

  /// The currently published snapshot (nullptr before Build()). Pin it to
  /// search / paginate against one immutable corpus state while the
  /// catalog keeps mutating.
  std::shared_ptr<const Snapshot> snapshot() const;

  /// Answers one request against the currently published snapshot.
  /// Equivalent to snapshot()->Search(request); fails InvalidArgument when
  /// the database is not built.
  Result<SearchResponse> Search(const SearchRequest& request) const;

  /// Persists the corpus to `path` (format "XKS3": epoch, revision and
  /// tombstoned ids included, so DocumentIds — and live cursors — survive
  /// the round trip) / restores it. Load also accepts the earlier
  /// multi-document "XKS2" corpus format and the legacy single-document
  /// "XKS1" store, surfacing the latter as a one-document corpus named
  /// after `legacy_name`.
  Status Save(const std::string& path) const;
  static Result<Database> Load(const std::string& path,
                               const std::string& legacy_name = "document");

  /// Encode/decode against in-memory buffers (used by Save/Load and tests).
  void EncodeTo(std::string* dst) const;
  static Result<Database> DecodeFrom(std::string_view data,
                                     const std::string& legacy_name = "document");

 private:
  /// One catalog slot. Slots are id-indexed and never erased: a removed
  /// document leaves a tombstone (live = false, no store) so later ids keep
  /// their meaning.
  struct DocumentEntry {
    std::string name;
    std::shared_ptr<const ShreddedStore> store;
    /// The document's own aggregates, kept so corpus statistics can be
    /// unmerged in O(this doc) when it is removed or replaced.
    DocumentStats stats;
    bool live = false;
  };

  /// Shared add path (AddDocument + the decoders).
  Result<DocumentId> AddStoreLocked(const std::string& name,
                                    ShreddedStore store) XKS_REQUIRES(*mutex_);
  Status RemoveLocked(DocumentId id) XKS_REQUIRES(*mutex_);
  Status ReplaceLocked(DocumentId id, const Document& doc)
      XKS_REQUIRES(*mutex_);

  /// O(changed doc) corpus-aggregate maintenance.
  void MergeStatsLocked(const DocumentStats& stats) XKS_REQUIRES(*mutex_);
  void UnmergeStatsLocked(const DocumentStats& stats) XKS_REQUIRES(*mutex_);
  size_t MaxDepthLocked() const XKS_REQUIRES(*mutex_);

  /// Evolves the corpus revision with one mutation record (op + id + name +
  /// table shape). Only meaningful once built; Build() seeds the chain with
  /// a full-shape hash.
  void BumpRevisionLocked(char op, DocumentId id, const DocumentEntry& entry)
      XKS_REQUIRES(*mutex_);

  /// Builds and swaps in a fresh snapshot of the current catalog state.
  void PublishLocked() XKS_REQUIRES(*mutex_);

  /// Serializes mutations and guards the catalog fields below; snapshots
  /// themselves are immutable and need no locking. Held behind unique_ptr
  /// so Database stays movable (Result<Database> returns by value); moving
  /// a Database concurrently with any other use of it is undefined, same
  /// as for every standard type.
  mutable std::unique_ptr<Mutex> mutex_;

  /// Id-indexed, tombstones kept.
  std::vector<DocumentEntry> documents_ XKS_GUARDED_BY(*mutex_);
  /// Live names only.
  std::unordered_map<std::string, DocumentId> by_name_ XKS_GUARDED_BY(*mutex_);
  size_t live_count_ XKS_GUARDED_BY(*mutex_) = 0;

  /// Corpus aggregates, maintained incrementally by merge/unmerge.
  std::unordered_map<std::string, uint64_t> corpus_frequency_
      XKS_GUARDED_BY(*mutex_);
  size_t total_postings_ XKS_GUARDED_BY(*mutex_) = 0;
  /// Census of per-document max depths (depth → live-document count); the
  /// corpus max depth is the largest key.
  std::map<size_t, size_t> depth_census_ XKS_GUARDED_BY(*mutex_);

  /// Hash chain over the corpus shape: seeded by Build() from the full
  /// shape, evolved per mutation, persisted in XKS3. Folded into cursor
  /// fingerprints so a cursor dies with the corpus it came from.
  uint64_t revision_ XKS_GUARDED_BY(*mutex_) = 0;
  /// Publication counter: 0 = never built, 1 = first Build(), +1 per
  /// mutation thereafter. Persisted in XKS3.
  uint64_t epoch_ XKS_GUARDED_BY(*mutex_) = 0;

  /// Result-cache configuration stamped onto every published snapshot.
  CacheConfig cache_config_ XKS_GUARDED_BY(*mutex_);
  /// Registry search instruments resolve against; nullptr = disabled.
  MetricsRegistry* metrics_registry_ XKS_GUARDED_BY(*mutex_) =
      MetricsRegistry::Default();
  /// Instruments resolved from metrics_registry_, lazily on first publish
  /// and shared by every snapshot published under the same registry.
  std::shared_ptr<const Snapshot::SearchInstruments> instruments_
      XKS_GUARDED_BY(*mutex_);

  std::shared_ptr<const Snapshot> snapshot_ XKS_GUARDED_BY(*mutex_);
  bool built_ XKS_GUARDED_BY(*mutex_) = false;
};

}  // namespace xks

#endif  // XKS_API_DATABASE_H_
