// xks::Database — the corpus-level entry point of the library.
//
// A Database owns N shredded documents behind doc-id-qualified addressing,
// is built incrementally (AddDocument → Build), answers SearchRequests with
// ranked, paginated SearchResponses, and persists the whole corpus as one
// artifact (magic "XKS2"; legacy single-document "XKS1" stores load
// transparently as a one-document corpus).
//
// Query execution fans the stateless per-document pipeline
// (src/core/engine.h) out over the selected documents — concurrently, up to
// SearchRequest::max_parallelism workers — and merges at the corpus level:
//  * rank = true   — every selected document is executed, per-document
//    scores (src/core/ranking.h) are merged into one descending order, and
//    the requested page is cut from it. Specificity is normalized by the
//    corpus-wide element depth (corpus_max_depth), so scores from different
//    documents are directly comparable; a single-document selection keeps
//    the legacy result-set-relative normalization.
//  * rank = false  — hits stream in (document id, document order), and the
//    corpus scan stops dispatching documents as soon as the requested page
//    (plus one look-ahead hit for next_cursor) is filled.
//
// The scan is sharded per document but observably serial: responses (hit
// order, scores, totals, cursors) are byte-identical at every
// max_parallelism, because executed documents always form a contiguous
// prefix of the selection and the merge replays that prefix in document
// order.
//
// All methods are non-throwing; errors surface as Status/Result. A built
// Database is immutable: Search shares only const document stores and
// corpus statistics across its workers (the per-document executor is
// stateless), so a Database may serve Search calls from any number of
// threads concurrently.

#ifndef XKS_API_DATABASE_H_
#define XKS_API_DATABASE_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/api/search_types.h"
#include "src/common/result.h"
#include "src/storage/store.h"
#include "src/xml/dom.h"

namespace xks {

class Database {
 public:
  Database() = default;

  /// Shreds `doc` and adds it to the corpus under `name`. Names must be
  /// unique and non-empty. Invalidates Build (call Build again before
  /// searching).
  Result<DocumentId> AddDocument(const std::string& name, const Document& doc);

  /// Parses `xml` and adds the document.
  Result<DocumentId> AddDocumentXml(const std::string& name,
                                    std::string_view xml);

  /// Finalizes the corpus: computes corpus-level statistics and makes the
  /// database searchable. Idempotent; fails on an empty corpus.
  Status Build();

  /// True once Build has run and no document was added since.
  bool built() const { return built_; }

  size_t document_count() const { return documents_.size(); }

  /// Name of document `id`. Requires a valid id.
  const std::string& document_name(DocumentId id) const {
    return documents_[id].name;
  }

  /// Id of the document named `name`; NotFound when absent.
  Result<DocumentId> FindDocument(const std::string& name) const;

  /// The underlying shredded document — internal building block access for
  /// benches and stage-level tooling. Requires a valid id.
  const ShreddedStore& store(DocumentId id) const {
    return documents_[id].store;
  }

  /// Corpus-wide shred-time frequency of `word` (summed across documents).
  /// Requires built().
  uint64_t WordFrequency(const std::string& word) const;

  /// Distinct indexed words across the corpus. Requires built().
  size_t vocabulary_size() const { return corpus_frequency_.size(); }

  /// Total postings across all documents. Requires built().
  size_t total_postings() const { return total_postings_; }

  /// Depth of the deepest element across the corpus — the shared specificity
  /// normalizer that puts ranking scores from different documents on one
  /// scale. Requires built().
  size_t corpus_max_depth() const { return corpus_max_depth_; }

  /// Answers one request. Fails when the database is not built, the query
  /// does not normalize to any usable keyword, a document id is unknown, or
  /// the cursor does not belong to this request.
  Result<SearchResponse> Search(const SearchRequest& request) const;

  /// Persists the corpus to `path` (format "XKS2") / restores it. Load also
  /// accepts a legacy single-document "XKS1" store, surfacing it as a
  /// one-document corpus named after `legacy_name`.
  Status Save(const std::string& path) const;
  static Result<Database> Load(const std::string& path,
                               const std::string& legacy_name = "document");

  /// Encode/decode against in-memory buffers (used by Save/Load and tests).
  void EncodeTo(std::string* dst) const;
  static Result<Database> DecodeFrom(std::string_view data,
                                     const std::string& legacy_name = "document");

 private:
  struct DocumentEntry {
    std::string name;
    ShreddedStore store;
  };

  std::vector<DocumentEntry> documents_;
  std::unordered_map<std::string, DocumentId> by_name_;
  /// Corpus-level word → total shred-time frequency; built by Build().
  std::unordered_map<std::string, uint64_t> corpus_frequency_;
  size_t total_postings_ = 0;
  /// Deepest element level across all documents; computed by Build().
  size_t corpus_max_depth_ = 1;
  /// Hash of the corpus shape (names + per-document table sizes), folded
  /// into cursor fingerprints so a cursor dies with the corpus it came
  /// from. Computed by Build().
  uint64_t revision_ = 0;
  bool built_ = false;
};

}  // namespace xks

#endif  // XKS_API_DATABASE_H_
