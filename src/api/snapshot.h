// xks::Snapshot — an immutable, shareable view of the corpus at one epoch.
//
// A Snapshot is what Database::Search actually executes against: the set of
// live documents (names + shredded stores, shared by reference) plus the
// corpus-level statistics the ranked merge needs (word frequencies, total
// postings, corpus_max_depth), stamped with the epoch and revision of the
// catalog state it was published from. Snapshots are plain const data after
// publication — no locks, no mutation (the one exception, the attached
// result cache, is internally synchronized and semantically transparent: it
// memoizes, never changes, what Search returns) — so
//
//  * any number of threads may Search one Snapshot concurrently,
//  * a Search that is in flight (or a client paginating across requests)
//    keeps its Snapshot alive via shared_ptr while the Database catalog
//    mutates underneath it, and
//  * a mutation never blocks on readers: the catalog publishes a fresh
//    Snapshot and drops its reference to the old one, which dies with its
//    last reader.
//
// Epoch semantics. Every published Snapshot carries a monotonically
// increasing epoch (first Build() = 1, each AddDocument / RemoveDocument /
// ReplaceDocument afterwards increments it). The epoch is folded into every
// pagination cursor: replaying a cursor against a snapshot with a different
// epoch fails with FailedPrecondition("corpus changed ..."), cleanly
// distinguishing "the corpus state under your pagination is gone" from the
// InvalidArgument a wrong-request (or same-epoch wrong-corpus) cursor
// produces. To paginate consistently across mutations, pin one Snapshot
// (Database::snapshot()) and keep issuing pages against it.
//
// Why this file carries no XKS_GUARDED_BY annotations (see
// src/common/thread_annotations.h for the scheme): immutability after
// publication is the concurrency contract, and it is stronger than any
// lock discipline — there is no mutable state for an annotation to guard.
// The catalog mutex that orders publications lives in Database
// (src/api/database.h), where it is annotated; the embedded ResultCache
// synchronizes itself (src/cache/result_cache.h).

#ifndef XKS_API_SNAPSHOT_H_
#define XKS_API_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/api/search_types.h"
#include "src/cache/result_cache.h"
#include "src/common/result.h"
#include "src/storage/store.h"

namespace xks {

class Snapshot {
 public:
  /// Monotonic publication counter; 1 for the first Build().
  uint64_t epoch() const { return epoch_; }

  /// Hash of the corpus shape (surviving ids, names, table sizes), evolved
  /// per mutation; folded into cursor fingerprints together with the epoch.
  uint64_t revision() const { return revision_; }

  /// Number of live documents in this view.
  size_t document_count() const { return documents_.size(); }

  /// Ids of the live documents, ascending. Ids are stable: removal
  /// tombstones an id forever, it is never reassigned.
  std::vector<DocumentId> document_ids() const;

  /// Name of document `id`; NotFound for unknown or removed ids.
  Result<std::string> document_name(DocumentId id) const;

  /// Id of the live document named `name`; NotFound when absent.
  Result<DocumentId> FindDocument(const std::string& name) const;

  /// The underlying shredded document — internal building-block access for
  /// benches and stage-level tooling. NotFound for unknown or removed ids.
  /// The returned store is shared: it outlives both the Snapshot and any
  /// subsequent catalog mutation.
  Result<std::shared_ptr<const ShreddedStore>> store(DocumentId id) const;

  /// Corpus-wide shred-time frequency of `word` across the live documents.
  uint64_t WordFrequency(const std::string& word) const;

  /// Distinct indexed words across the live documents.
  size_t vocabulary_size() const { return frequency_.size(); }

  /// Total postings across the live documents.
  size_t total_postings() const { return total_postings_; }

  /// Depth of the deepest element across the live documents — the shared
  /// specificity normalizer that puts ranking scores from different
  /// documents on one scale.
  size_t corpus_max_depth() const { return corpus_max_depth_; }

  /// Answers one request against this immutable view. Fails when the query
  /// does not normalize to any usable keyword, the document selection names
  /// an unknown/removed id or contains duplicates, the page window
  /// overflows, or the cursor does not belong to this request
  /// (InvalidArgument) / was minted at a different epoch
  /// (FailedPrecondition).
  Result<SearchResponse> Search(const SearchRequest& request) const;

  /// Counters of this snapshot's result cache; a zeroed struct (enabled =
  /// false) when the snapshot was published without one. The cache — and
  /// these counters — live exactly as long as the snapshot: a catalog
  /// mutation publishes a fresh snapshot with a fresh, empty cache, which
  /// is what makes epoch invalidation free.
  CacheStats cache_stats() const;

 private:
  friend class Database;

  /// One live document of the view.
  struct Doc {
    DocumentId id = 0;
    std::string name;
    std::shared_ptr<const ShreddedStore> store;
  };

  Snapshot() = default;

  /// Index into documents_ for `id`; NotFound (with the canonical
  /// "unknown document id" message) for unknown or removed ids.
  Result<size_t> IndexOf(DocumentId id) const;

  /// The single validation point for a request's document selection:
  /// resolves ids to documents_ indices, rejecting unknown/removed ids
  /// (NotFound) and duplicates (InvalidArgument) with explicit messages.
  /// An empty request selection resolves to every live document.
  Status ResolveSelection(const std::vector<DocumentId>& requested,
                          std::vector<size_t>* selection) const;

  /// Pre-resolved registry instruments for Search (query counter, latency
  /// and stage histograms, per-document pipeline metrics). Resolved once by
  /// the publishing Database and set at publication like cache_; nullptr
  /// when the Database's metrics registry is disabled, which removes every
  /// clock read and atomic bump from Search.
  struct SearchInstruments {
    Counter* queries = nullptr;
    Histogram* latency = nullptr;
    Histogram* stage_parse = nullptr;
    Histogram* stage_selection = nullptr;
    Histogram* stage_scan = nullptr;
    Histogram* stage_rank = nullptr;
    Histogram* stage_snippet = nullptr;
    PipelineMetrics pipeline;
  };

  std::vector<Doc> documents_;  ///< Live documents, ascending id.
  /// Per-snapshot candidate-list cache; nullptr when disabled. The pointer
  /// is set once at publication and never reseated, so const Search may use
  /// the (internally synchronized) cache without any snapshot-level lock.
  std::shared_ptr<ResultCache> cache_;
  /// Set once at publication, shared across publications; nullptr disables
  /// search instrumentation (see SearchInstruments).
  std::shared_ptr<const SearchInstruments> instruments_;
  std::unordered_map<std::string, DocumentId> by_name_;
  std::unordered_map<std::string, uint64_t> frequency_;
  size_t total_postings_ = 0;
  size_t corpus_max_depth_ = 1;
  uint64_t epoch_ = 0;
  uint64_t revision_ = 0;
};

}  // namespace xks

#endif  // XKS_API_SNAPSHOT_H_
