// The corpus-level request/response vocabulary of the public API.
//
// xks::Database answers a SearchRequest with a SearchResponse: a bounded,
// optionally ranked page of Hits drawn from every document of the corpus,
// plus an opaque cursor for the next page. These types are the stable
// surface future scaling work (sharding, result caching, concurrent
// serving) slots behind; the per-document pipeline types of src/core stay
// internal building blocks.

#ifndef XKS_API_SEARCH_TYPES_H_
#define XKS_API_SEARCH_TYPES_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/cancel_token.h"
#include "src/core/engine.h"
#include "src/core/query.h"
#include "src/core/ranking.h"
#include "src/obs/trace.h"

namespace xks {

/// Identifies one document inside a Database. Ids are assigned in
/// AddDocument order and are stable for the lifetime of the corpus —
/// including across Save/Load and across mutations: RemoveDocument
/// tombstones an id forever (it is never reassigned), and ReplaceDocument
/// keeps the id of the document it replaces.
using DocumentId = uint32_t;

/// A corpus-level search request.
struct SearchRequest {
  /// Free-text query ("xml keyword", "title:xml search"); parsed with
  /// KeywordQuery::Parse. Ignored when `terms` is non-empty.
  std::string query;
  /// Pre-parsed terms (generators, tests); takes precedence over `query`.
  std::vector<QueryTerm> terms;

  /// Restrict the search to these documents; empty = every live document.
  /// Unknown (or removed) ids fail with NotFound, duplicate ids with
  /// InvalidArgument — both validated in one place before any document
  /// executes.
  std::vector<DocumentId> documents;

  /// LCA semantics and per-semantics algorithm selection.
  LcaSemantics semantics = LcaSemantics::kElca;
  ElcaAlgorithm elca_algorithm = ElcaAlgorithm::kIndexedStack;
  SlcaAlgorithm slca_algorithm = SlcaAlgorithm::kIndexedLookup;
  /// Pruning policy: kValidContributor = ValidRTF, kContributor = MaxMatch.
  PruningPolicy pruning = PruningPolicy::kValidContributor;

  /// Maximum number of documents executed concurrently by the corpus scan.
  /// 0 = one worker per hardware thread, 1 = serial scan on the calling
  /// thread. Purely a throughput knob: the response (hit order, scores,
  /// totals, cursors) is identical at every setting, so it is NOT part of
  /// the cursor fingerprint — a cursor from a serial page continues under a
  /// parallel scan and vice versa.
  size_t max_parallelism = 0;

  /// Page size; 0 = unbounded (every hit in one page, no cursor).
  size_t top_k = 10;
  /// Opaque continuation token from a previous response's `next_cursor`;
  /// empty = first page. A cursor is only valid for the request that
  /// produced it (same query, configuration and corpus) and for the corpus
  /// epoch it was minted at: after any mutation, replaying it fails with
  /// FailedPrecondition("corpus changed ...") — pin Database::snapshot() to
  /// paginate consistently across mutations.
  std::string cursor;

  /// Rank hits by fragment score (src/core/ranking.h) before paging; when
  /// false, hits arrive in (document id, document order) and the corpus scan
  /// stops early once the page is filled.
  bool rank = true;
  RankingWeights weights;

  /// Overrides the depth normalizer used by ranking (0 = derive locally:
  /// corpus_max_depth for multi-document selections, result-set-relative for
  /// single-document ones). A sharded coordinator sets this to the UNION
  /// corpus max depth so every shard scores against the same scale and the
  /// merged ranking matches a single-node corpus. Changes scores, so it IS
  /// part of the cursor fingerprint — but not of the cache key (the cache
  /// stores pre-ranking candidate lists).
  uint64_t shared_depth_normalizer = 0;

  /// Probe and fill the snapshot's result cache (when the Database's
  /// CacheConfig enables one). Purely a throughput knob: a cache hit skips
  /// the per-document pipeline but the response (hits, scores, totals,
  /// cursors, deterministic statistics) is byte-identical either way, so it
  /// is NOT part of the cursor fingerprint. Set false to bypass the cache
  /// for one request (measurement runs, one-off scans not worth caching).
  bool use_cache = true;

  /// Wall-clock budget for this request in milliseconds, measured from
  /// Search() entry; 0 = no deadline. An expired deadline makes Search
  /// return DeadlineExceeded — never a partial response: dispatch stops
  /// cooperatively mid-scan (the contiguous-prefix contract holds, claimed
  /// documents finish) and the whole response is withheld. Purely an
  /// execution knob, NOT part of the cursor fingerprint: a cursor minted
  /// under one deadline continues under any other.
  uint64_t deadline_ms = 0;
  /// External cancellation (client disconnect, server shutdown): a token
  /// whose source fires makes Search return Cancelled at the next
  /// checkpoint, with the same no-partial-response guarantee as deadlines.
  /// Combines with deadline_ms — the earlier of the two wins. The default
  /// token never fires and costs nothing.
  CancelToken cancel;

  /// Attach the rendered fragment tree text to each returned hit.
  bool include_snippets = true;
  /// Keep the unpruned fragment tree on each returned hit.
  bool include_raw_fragments = false;
  /// Populate the response's timings / pruning / keyword-node statistics.
  bool include_stats = false;
  /// Populate SearchResponse::scan_breakdown: one (document, hit count)
  /// entry per document the response reflects, in scan order. The sharded
  /// coordinator requires this from every shard to replay the serial-prefix
  /// merge across machines; plain clients leave it off.
  bool include_scan_breakdown = false;
  /// Populate SearchResponse::trace with the per-stage span tree (parse,
  /// selection, scan, rank, snippet — plus one hop span per shard on the
  /// coordinator). Observational only: every other response field is
  /// byte-identical with tracing on or off, and a request with this off
  /// encodes byte-identically to previous protocol revisions.
  bool include_trace = false;

  /// The paper's ValidRTF configuration over free text.
  static SearchRequest ValidRtf(std::string query_text) {
    SearchRequest request;
    request.query = std::move(query_text);
    return request;
  }

  /// The revised-MaxMatch comparison configuration over free text.
  static SearchRequest MaxMatch(std::string query_text) {
    SearchRequest request;
    request.query = std::move(query_text);
    request.pruning = PruningPolicy::kContributor;
    return request;
  }

  /// An exhaustive, unranked request over pre-normalized keywords: every
  /// hit in document order, no snippets, statistics on — the shape the
  /// effectiveness metrics and the paper-protocol benches consume.
  static SearchRequest Exhaustive(const std::vector<std::string>& keywords,
                                  PruningPolicy pruning_policy) {
    SearchRequest request;
    request.terms.reserve(keywords.size());
    for (const std::string& keyword : keywords) {
      request.terms.push_back(QueryTerm{keyword, ""});
    }
    request.pruning = pruning_policy;
    request.top_k = 0;
    request.rank = false;
    request.include_snippets = false;
    request.include_stats = true;
    return request;
  }
};

/// One ranked result: a meaningful RTF from one document of the corpus.
struct Hit {
  /// The document the fragment came from.
  DocumentId document = 0;
  std::string document_name;
  /// The raw RTF: root Dewey code, keyword nodes, SLCA flag.
  Rtf rtf;
  /// Ranking score in [0, 1]; 0 when the request disabled ranking.
  double score = 0;
  /// The meaningful (pruned) fragment tree.
  FragmentTree fragment;
  /// The unpruned tree; only when SearchRequest::include_raw_fragments.
  FragmentTree raw;
  /// Rendered fragment text; only when SearchRequest::include_snippets.
  std::string snippet;
};

/// One entry of SearchResponse::scan_breakdown: how many hits one scanned
/// document contributed to the (pre-paging) result set.
struct DocumentScanCount {
  DocumentId document = 0;
  uint64_t hits = 0;
};

/// A page of corpus-level results.
struct SearchResponse {
  std::vector<Hit> hits;
  /// Pass as SearchRequest::cursor to fetch the next page; empty when the
  /// result set is exhausted.
  std::string next_cursor;
  /// Total matching RTFs discovered across the scanned documents. A lower
  /// bound when `total_is_exact` is false (early-terminated unranked scan).
  size_t total_hits = 0;
  bool total_is_exact = true;
  /// Documents whose results this response reflects (≤ the requested set
  /// when the unranked scan terminated early).
  size_t documents_searched = 0;
  /// Epoch of the snapshot this page was cut from; next_cursor is only
  /// redeemable while the corpus is still at this epoch (or against a
  /// pinned Snapshot of it).
  uint64_t epoch = 0;
  /// True when every document this response reflects was answered from the
  /// snapshot's result cache — no per-document pipeline ran. False for cold
  /// or partially cold responses, for cache-bypassing requests, and when
  /// the cache is disabled. Observational only: the response content is
  /// identical either way.
  bool served_from_cache = false;
  /// How many of `documents_searched` were answered from the cache.
  size_t documents_from_cache = 0;
  /// The normalized query ("liu keyword" — lowercased, stop words removed).
  KeywordQuery parsed_query;

  /// Aggregate statistics; only when SearchRequest::include_stats.
  /// `stats_are_exact` is the dedicated partial-coverage signal: it is false
  /// whenever the scan terminated early (documents_searched < the selected
  /// set), in which case `timings`, `pruning`, `keyword_node_count` — and
  /// `total_hits` — cover only the scanned prefix of the corpus and are
  /// lower bounds, not corpus-wide truths. Always true for ranked requests
  /// and for unranked requests that ran to completion.
  /// Documents served from the result cache contribute the statistics
  /// recorded when their entry was filled: pruning and keyword-node
  /// counters are exact replays, while timings describe the execution that
  /// filled the entry, not the (near-free) hit itself.
  bool stats_are_exact = true;
  StageTimings timings;
  PruningStats pruning;
  size_t keyword_node_count = 0;

  /// Per-document hit counts over exactly the `documents_searched` prefix,
  /// in scan order — zero-hit documents included. Only populated when
  /// SearchRequest::include_scan_breakdown; the coordinator replays these
  /// counts to reconstruct the single-node serial-prefix merge across
  /// shards.
  std::vector<DocumentScanCount> scan_breakdown;

  /// The per-query span tree; only populated when
  /// SearchRequest::include_trace (null otherwise, and never encoded when
  /// null — which keeps trace-off responses byte-identical to previous
  /// protocol revisions). Shared so responses stay cheap to copy.
  std::shared_ptr<const TraceSpan> trace;
};

}  // namespace xks

#endif  // XKS_API_SEARCH_TYPES_H_
