// Canonical request-fingerprint material, shared by the pagination cursor
// and the snapshot result cache.
//
// Both identities start from the same question — "which fields of a
// SearchRequest change the candidate lists the pipeline produces?" — and
// both answer it with AppendExecutionShape, the single place that appends
// those fields. On top of that shared prefix:
//
//   * CursorFingerprint adds what changes the *page* a cursor points into:
//     ranking on/off and weights (merge order), top_k (page geometry), the
//     corpus revision and the exact document selection. Presentation
//     toggles (snippets, raw fragments, statistics) and max_parallelism are
//     deliberately absent — a cursor survives flipping them.
//
//   * CacheKeyPrefix adds what changes the *cached value* beyond the
//     execution shape: keep_raw_fragments (the entry either carries the
//     unpruned trees or it does not). DocumentCacheKey then appends one
//     document id, yielding the exact per-document key. Ranking, paging and
//     selection are deliberately absent — one cached candidate list serves
//     every ranking, every page and every selection that includes the
//     document.
//
// Because both builders call AppendExecutionShape, a field added there is
// automatically reflected in both identities; the two cannot drift apart.

#ifndef XKS_API_REQUEST_FINGERPRINT_H_
#define XKS_API_REQUEST_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/api/search_types.h"
#include "src/cache/result_cache.h"
#include "src/common/fingerprint.h"
#include "src/core/query.h"

namespace xks {

/// Appends the execution shape: the normalized query plus the pipeline
/// configuration (semantics, per-semantics algorithm, pruning policy) —
/// every request field that changes the raw candidate set ExecuteSearch
/// produces for a document. Any new such field MUST be appended here (and
/// only here) so cursor and cache stay in lockstep.
void AppendExecutionShape(Fingerprint* fp, const KeywordQuery& query,
                          const SearchRequest& request);

/// The cursor fingerprint: execution shape + merge order (rank + weights) +
/// page geometry (top_k) + corpus revision + exact document selection.
uint64_t CursorFingerprint(const KeywordQuery& query,
                           const SearchRequest& request,
                           const std::vector<DocumentId>& documents,
                           uint64_t corpus_revision);

/// The shared material prefix of every per-document cache key of one
/// request: execution shape + keep_raw_fragments. Compute once per request,
/// then stamp out per-document keys with DocumentCacheKey.
std::string CacheKeyPrefix(const KeywordQuery& query,
                           const SearchRequest& request);

/// The exact cache key for one document: `prefix` (from CacheKeyPrefix)
/// plus the document id.
CacheKey DocumentCacheKey(const std::string& prefix, DocumentId id);

}  // namespace xks

#endif  // XKS_API_REQUEST_FINGERPRINT_H_
