#include "src/api/snapshot.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>

#include "src/api/cursor.h"
#include "src/api/request_fingerprint.h"
#include "src/common/check.h"
#include "src/common/worker_pool.h"
#include "src/obs/trace.h"

namespace xks {
namespace {

using ObsClock = std::chrono::steady_clock;

double SecondsSince(ObsClock::time_point start) {
  return std::chrono::duration<double>(ObsClock::now() - start).count();
}

/// One pre-page candidate: a fragment of one executed document.
struct Candidate {
  size_t doc_index = 0;
  size_t fragment_index = 0;
  double score = 0;
};

SearchOptions PipelineOptions(const SearchRequest& request,
                              const CancelToken& cancel,
                              const PipelineMetrics* metrics) {
  SearchOptions options;
  options.semantics = request.semantics;
  options.elca_algorithm = request.elca_algorithm;
  options.slca_algorithm = request.slca_algorithm;
  options.pruning = request.pruning;
  options.keep_raw_fragments = request.include_raw_fragments;
  options.cancel = cancel;
  options.metrics = metrics;
  return options;
}

/// The single validation point for the page window: the first hit index
/// (cursor offset) plus the page size plus the one look-ahead hit must fit
/// the addressable result range, or the request is rejected outright — a
/// forged cursor can no longer push the window arithmetic into wraparound.
Status ValidatePageWindow(uint64_t offset, size_t top_k) {
  // The page cut indexes candidates with size_t; the first unserved hit
  // (offset), the page end (offset + top_k) and the look-ahead probe (+1)
  // must all be representable without wraparound.
  const uint64_t max_index = static_cast<uint64_t>(SIZE_MAX);
  if (offset >= max_index ||
      (top_k != 0 && static_cast<uint64_t>(top_k) > max_index - offset - 1)) {
    return Status::InvalidArgument(
        "page window overflows: offset " + std::to_string(offset) +
        " + top_k " + std::to_string(top_k) +
        " exceeds the addressable result range");
  }
  return Status::OK();
}

}  // namespace

std::vector<DocumentId> Snapshot::document_ids() const {
  std::vector<DocumentId> ids;
  ids.reserve(documents_.size());
  for (const Doc& doc : documents_) ids.push_back(doc.id);
  return ids;
}

Result<size_t> Snapshot::IndexOf(DocumentId id) const {
  auto it = std::lower_bound(
      documents_.begin(), documents_.end(), id,
      [](const Doc& doc, DocumentId wanted) { return doc.id < wanted; });
  if (it == documents_.end() || it->id != id) {
    return Status::NotFound("unknown document id " + std::to_string(id));
  }
  return static_cast<size_t>(it - documents_.begin());
}

Result<std::string> Snapshot::document_name(DocumentId id) const {
  size_t index = 0;
  XKS_ASSIGN_OR_RETURN(index, IndexOf(id));
  return documents_[index].name;
}

Result<DocumentId> Snapshot::FindDocument(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no document named '" + name + "'");
  }
  return it->second;
}

Result<std::shared_ptr<const ShreddedStore>> Snapshot::store(
    DocumentId id) const {
  size_t index = 0;
  XKS_ASSIGN_OR_RETURN(index, IndexOf(id));
  return documents_[index].store;
}

CacheStats Snapshot::cache_stats() const {
  return cache_ != nullptr ? cache_->stats() : CacheStats{};
}

uint64_t Snapshot::WordFrequency(const std::string& word) const {
  auto it = frequency_.find(word);
  return it == frequency_.end() ? 0 : it->second;
}

Status Snapshot::ResolveSelection(const std::vector<DocumentId>& requested,
                                  std::vector<size_t>* selection) const {
  selection->clear();
  if (requested.empty()) {
    selection->resize(documents_.size());
    for (size_t i = 0; i < selection->size(); ++i) (*selection)[i] = i;
    return Status::OK();
  }
  selection->reserve(requested.size());
  for (DocumentId id : requested) {
    size_t index = 0;
    XKS_ASSIGN_OR_RETURN(index, IndexOf(id));
    if (std::find(selection->begin(), selection->end(), index) !=
        selection->end()) {
      return Status::InvalidArgument("duplicate document id " +
                                     std::to_string(id) +
                                     " in request selection");
    }
    selection->push_back(index);
  }
  return Status::OK();
}

Result<SearchResponse> Snapshot::Search(const SearchRequest& request) const {
  // The effective cancellation token: the caller's token tightened by the
  // request's deadline budget (measured from here — entry). Every checkpoint
  // below polls this one token, so explicit cancellation and deadlines share
  // one code path; a request with neither costs nothing extra.
  CancelToken cancel = request.cancel;
  if (request.deadline_ms > 0) {
    cancel = cancel.WithDeadlineAfter(
        std::chrono::milliseconds(request.deadline_ms));
  }
  const bool cancellable = cancel.can_expire();
  if (cancellable && cancel.cancelled()) return cancel.status();

  // Observability: the registry instruments resolved at publication (null =
  // disabled, no clock reads) and the per-request span tree (no-op unless
  // the request asked for one). Neither changes any other response field.
  const SearchInstruments* const obs = instruments_.get();
  if (obs != nullptr) obs->queries->Increment();
  QueryTrace trace(request.include_trace);
  ObsClock::time_point search_start;
  ObsClock::time_point stage_start;
  if (obs != nullptr) search_start = stage_start = ObsClock::now();

  // Resolve the query.
  KeywordQuery query;
  {
    QueryTrace::Scope stage(trace, "parse");
    if (!request.terms.empty()) {
      XKS_ASSIGN_OR_RETURN(query, KeywordQuery::FromTerms(request.terms));
    } else {
      XKS_ASSIGN_OR_RETURN(query, KeywordQuery::Parse(request.query));
    }
  }
  if (obs != nullptr) {
    obs->stage_parse->Observe(SecondsSince(stage_start));
    stage_start = ObsClock::now();
  }

  // Resolve and validate the document selection (order preserved), then the
  // page window. The epoch check runs before the fingerprint check so a
  // post-mutation replay fails as "corpus changed", not as a generic
  // wrong-request cursor.
  std::vector<size_t> selection;
  uint64_t fingerprint = 0;
  size_t offset = 0;
  {
    QueryTrace::Scope stage(trace, "selection");
    XKS_RETURN_IF_ERROR(ResolveSelection(request.documents, &selection));
    std::vector<DocumentId> selected_ids;
    selected_ids.reserve(selection.size());
    for (size_t index : selection) selected_ids.push_back(documents_[index].id);

    fingerprint = CursorFingerprint(query, request, selected_ids, revision_);
    if (!request.cursor.empty()) {
      PageCursor cursor;
      XKS_ASSIGN_OR_RETURN(cursor, DecodeCursor(request.cursor));
      if (cursor.epoch != epoch_) {
        return Status::FailedPrecondition(
            "corpus changed: cursor was minted at epoch " +
            std::to_string(cursor.epoch) + " but the corpus is at epoch " +
            std::to_string(epoch_) + "; restart pagination");
      }
      if (cursor.fingerprint != fingerprint) {
        return Status::InvalidArgument(
            "cursor does not belong to this request (query, configuration or "
            "corpus changed)");
      }
      XKS_RETURN_IF_ERROR(ValidatePageWindow(cursor.offset, request.top_k));
      offset = static_cast<size_t>(cursor.offset);
    } else {
      XKS_RETURN_IF_ERROR(ValidatePageWindow(0, request.top_k));
    }
  }
  if (obs != nullptr) {
    obs->stage_selection->Observe(SecondsSince(stage_start));
  }

  SearchResponse response;
  response.parsed_query = query;
  response.epoch = epoch_;

  // Phase 1: fan the stateless executor out over the selected documents,
  // up to max_parallelism at a time, into per-document result slots.
  // Documents are claimed in selection order, so the executed set is always
  // a contiguous prefix of the selection. Without ranking, hits already
  // arrive in final order, so dispatch stops once the page plus one
  // look-ahead hit (the next_cursor probe) is known.
  const SearchOptions options = PipelineOptions(
      request, cancel, obs != nullptr ? &obs->pipeline : nullptr);
  const size_t needed =
      request.top_k == 0 ? SIZE_MAX : offset + request.top_k + 1;
  // Cross-document score comparability: every document normalizes
  // specificity against the same corpus-wide depth. A single-document
  // selection keeps the legacy result-set-relative scale (normalizer 0).
  // A coordinator overrides this with the union corpus depth so shard-local
  // scores merge onto one scale.
  const size_t depth_normalizer =
      request.shared_depth_normalizer != 0
          ? static_cast<size_t>(request.shared_depth_normalizer)
          : (selection.size() > 1 ? corpus_max_depth_ : 0);

  // The result cache, when this snapshot carries one and the request did
  // not opt out. Shards probe and fill concurrently under the fan-out; a
  // hit skips ExecuteSearch for that document, and everything downstream
  // (ranking, merge, page cut) runs identically on cached and fresh
  // candidate lists, which is what keeps responses byte-identical.
  ResultCache* const cache =
      (request.use_cache && cache_ != nullptr) ? cache_.get() : nullptr;
  const std::string cache_prefix =
      cache != nullptr ? CacheKeyPrefix(query, request) : std::string();

  // Per-document slots hold shared candidate lists: a slot either references
  // a cache entry (shared with other requests) or a fresh execution (shared
  // with the cache it just filled). Slots the cache retains must stay
  // intact, so the page cut below copies out of shared slots and moves only
  // out of sole-owned ones.
  std::vector<std::shared_ptr<const SearchResult>> results(selection.size());
  std::vector<uint8_t> from_cache(selection.size(), 0);
  std::vector<Status> statuses(selection.size());
  std::vector<std::vector<FragmentScore>> ranked(request.rank ? selection.size()
                                                              : 0);
  // High-water mark of unranked hits discovered so far; once it reaches
  // `needed`, no further documents are dispatched (in-flight ones finish).
  std::atomic<size_t> hits_seen{0};
  // Per-document failures land in their slot instead of aborting the
  // fan-out, so the replay below surfaces exactly the error a serial scan
  // would have hit — or none at all, when early termination would have
  // stopped the serial scan before reaching the failed document.
  std::atomic<bool> failed{false};
  const auto execute_document = [&](size_t di) -> Status {
    CacheKey key;
    if (cache != nullptr) {
      key = DocumentCacheKey(cache_prefix, documents_[selection[di]].id);
      if (std::shared_ptr<const SearchResult> entry = cache->Get(key)) {
        results[di] = std::move(entry);
        from_cache[di] = 1;
      }
    }
    if (results[di] == nullptr) {
      Result<SearchResult> result =
          ExecuteSearch(*documents_[selection[di]].store, query, options);
      if (!result.ok()) {
        statuses[di] = result.status();
        failed.store(true, std::memory_order_relaxed);
        return Status::OK();
      }
      // Created non-const so the page cut may move out of it later if the
      // cache did not retain it (std::const_pointer_cast stays legal).
      auto fresh = std::make_shared<SearchResult>(std::move(result).value());
      results[di] = fresh;
      if (cache != nullptr) cache->Put(key, results[di]);
    }
    if (request.rank) {
      ranked[di] = RankFragments(*results[di], query.size(), request.weights,
                                 depth_normalizer);
    } else {
      hits_seen.fetch_add(results[di]->fragments.size(),
                          std::memory_order_relaxed);
    }
    return Status::OK();
  };
  ParallelForOptions fan_out;
  fan_out.max_parallelism = request.max_parallelism;
  fan_out.cancel = cancel;
  if (!request.rank && needed != SIZE_MAX) {
    fan_out.stop = [&hits_seen, &failed, needed] {
      return failed.load(std::memory_order_relaxed) ||
             hits_seen.load(std::memory_order_relaxed) >= needed;
    };
  } else {
    fan_out.stop = [&failed] {
      return failed.load(std::memory_order_relaxed);
    };
  }
  std::vector<Candidate> candidates;
  size_t scanned = 0;
  if (obs != nullptr) stage_start = ObsClock::now();
  {
    QueryTrace::Scope stage(trace, "scan");
    size_t executed = 0;
    XKS_ASSIGN_OR_RETURN(
        executed, ParallelFor(selection.size(), execute_document, fan_out));
    // The replay below walks [0, executed) and dereferences every slot in
    // it, so the contiguous-prefix contract (claimed ⇒ ran to completion ⇒
    // slot filled or statused) is load-bearing here — check it, don't trust
    // it.
    XKS_CHECK(executed <= selection.size());
    for (size_t di = 0; di < executed; ++di) {
      XKS_DCHECK(results[di] != nullptr || !statuses[di].ok());
    }

    // No partial-response leak on cancellation: a deadline or cancel that
    // fired anywhere during the fan-out (stopping dispatch, or unwinding a
    // document mid-pipeline) withholds the whole response. Checked before
    // the replay so a response can never silently reflect a
    // cancellation-truncated prefix as if it were an ordinary early
    // termination.
    if (cancellable && cancel.cancelled()) return cancel.status();

    // Phase 1.5: replay the executed prefix in selection order,
    // reconstructing exactly the documents a serial scan would have
    // covered. A parallel scan may overshoot (documents claimed before the
    // stop condition fired); their slots are simply not consumed — that is
    // what keeps responses byte-identical at every max_parallelism setting.
    for (size_t di = 0; di < executed; ++di) {
      XKS_RETURN_IF_ERROR(statuses[di]);
      const SearchResult& result = *results[di];
      if (from_cache[di]) ++response.documents_from_cache;
      if (request.rank) {
        for (const FragmentScore& scored : ranked[di]) {
          candidates.push_back(
              Candidate{di, scored.fragment_index, scored.total});
        }
      } else {
        for (size_t fi = 0; fi < result.fragments.size(); ++fi) {
          candidates.push_back(Candidate{di, fi, 0.0});
        }
      }
      if (request.include_scan_breakdown) {
        response.scan_breakdown.push_back(DocumentScanCount{
            documents_[selection[di]].id, result.fragments.size()});
      }
      if (request.include_stats) {
        response.timings.Accumulate(result.timings);
        response.pruning.Accumulate(result.pruning);
        response.keyword_node_count += result.keyword_node_count;
      }
      ++scanned;
      if (!request.rank && candidates.size() >= needed) break;
    }
    if (trace.enabled()) {
      // The aggregate cache-probe view of this scan, as a child of the scan
      // span (per-document probes happen concurrently inside the fan-out,
      // so they are summarized rather than individually timed).
      TraceSpan probe;
      probe.name = "cache_probe";
      probe.attributes.emplace_back("probes",
                                    cache != nullptr ? scanned : 0);
      probe.attributes.emplace_back("cache_docs",
                                    response.documents_from_cache);
      trace.AddChild(std::move(probe));
      trace.Attr("documents", scanned);
    }
  }
  if (obs != nullptr) {
    obs->stage_scan->Observe(SecondsSince(stage_start));
    stage_start = ObsClock::now();
  }
  response.documents_searched = scanned;
  response.total_hits = candidates.size();
  response.total_is_exact = scanned == selection.size();
  response.stats_are_exact = scanned == selection.size();
  response.served_from_cache =
      scanned > 0 && response.documents_from_cache == scanned;

  // Phase 2: corpus-level merge. Ties break on (selection position,
  // document order), keeping pagination deterministic.
  if (request.rank) {
    QueryTrace::Scope stage(trace, "rank");
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Candidate& a, const Candidate& b) {
                       if (a.score != b.score) return a.score > b.score;
                       if (a.doc_index != b.doc_index) {
                         return a.doc_index < b.doc_index;
                       }
                       return a.fragment_index < b.fragment_index;
                     });
  }
  if (obs != nullptr) {
    obs->stage_rank->Observe(SecondsSince(stage_start));
    stage_start = ObsClock::now();
  }

  // Phase 3: cut the requested page and materialize its hits. A slot whose
  // candidate list is shared — the cache retained it, or it came from the
  // cache and other requests may hold it — must stay intact, so its
  // fragments are copied into the page. A slot this search solely owns
  // (cache disabled, entry rejected or already evicted: use_count == 1, and
  // nobody can re-acquire it since the cache no longer references it) keeps
  // the cheaper move. Copies and moves produce identical bytes, so the
  // response is unaffected either way.
  const size_t begin = std::min(offset, candidates.size());
  const size_t end = request.top_k == 0
                         ? candidates.size()
                         : std::min(begin + request.top_k, candidates.size());
  {
    QueryTrace::Scope stage(trace, "snippet");
    std::vector<uint8_t> movable(selection.size(), 0);
    for (size_t di = 0; di < scanned; ++di) {
      movable[di] = results[di].use_count() == 1 ? 1 : 0;
    }
    response.hits.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      const Candidate& candidate = candidates[i];
      const FragmentResult& fragment =
          results[candidate.doc_index]->fragments[candidate.fragment_index];
      const Doc& doc = documents_[selection[candidate.doc_index]];
      Hit hit;
      hit.document = doc.id;
      hit.document_name = doc.name;
      hit.score = candidate.score;
      if (request.include_snippets) {
        hit.snippet = fragment.fragment.ToTreeString(query.size());
      }
      if (movable[candidate.doc_index]) {
        FragmentResult& owned =
            std::const_pointer_cast<SearchResult>(results[candidate.doc_index])
                ->fragments[candidate.fragment_index];
        hit.rtf = std::move(owned.rtf);
        hit.fragment = std::move(owned.fragment);
        if (request.include_raw_fragments) hit.raw = std::move(owned.raw);
      } else {
        hit.rtf = fragment.rtf;
        hit.fragment = fragment.fragment;
        if (request.include_raw_fragments) hit.raw = fragment.raw;
      }
      response.hits.push_back(std::move(hit));
    }
  }
  if (obs != nullptr) {
    obs->stage_snippet->Observe(SecondsSince(stage_start));
    obs->latency->Observe(SecondsSince(search_start));
  }
  if (end < candidates.size()) {
    response.next_cursor = EncodeCursor(PageCursor{end, fingerprint, epoch_});
  }
  if (trace.enabled()) {
    trace.Attr("cache_docs", response.documents_from_cache);
    trace.Attr("hits", response.total_hits);
    response.trace = std::make_shared<const TraceSpan>(trace.Finish());
  }
  return response;
}

}  // namespace xks
