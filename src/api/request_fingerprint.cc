#include "src/api/request_fingerprint.h"

namespace xks {

void AppendExecutionShape(Fingerprint* fp, const KeywordQuery& query,
                          const SearchRequest& request) {
  fp->PutString(query.ToString());
  fp->PutByte(static_cast<uint8_t>(request.semantics));
  fp->PutByte(static_cast<uint8_t>(request.elca_algorithm));
  fp->PutByte(static_cast<uint8_t>(request.slca_algorithm));
  fp->PutByte(static_cast<uint8_t>(request.pruning));
}

uint64_t CursorFingerprint(const KeywordQuery& query,
                           const SearchRequest& request,
                           const std::vector<DocumentId>& documents,
                           uint64_t corpus_revision) {
  Fingerprint fp;
  AppendExecutionShape(&fp, query, request);
  fp.PutBool(request.rank);
  if (request.rank) {
    // Ranking weights change the merge order, so a cursor must not survive
    // a weight change. Raw IEEE-754 bytes keep the hash deterministic.
    const double weights[] = {
        request.weights.specificity, request.weights.proximity,
        request.weights.compactness, request.weights.slca_bonus,
        request.weights.match_concentration};
    fp.PutDoubles(weights, sizeof(weights) / sizeof(weights[0]));
    // A coordinator-supplied depth normalizer changes scores the same way a
    // weight change does. Folded in only when set, so every fingerprint
    // minted before the field existed is unchanged.
    if (request.shared_depth_normalizer != 0) {
      fp.PutVarint64(request.shared_depth_normalizer);
    }
  }
  fp.PutVarint64(request.top_k);
  fp.PutVarint64(corpus_revision);
  for (DocumentId id : documents) fp.PutVarint32(id);
  return fp.Digest64();
}

std::string CacheKeyPrefix(const KeywordQuery& query,
                           const SearchRequest& request) {
  Fingerprint fp;
  AppendExecutionShape(&fp, query, request);
  fp.PutBool(request.include_raw_fragments);
  return fp.ConsumeMaterial();
}

CacheKey DocumentCacheKey(const std::string& prefix, DocumentId id) {
  Fingerprint fp;
  fp.PutString(prefix);
  fp.PutVarint32(id);
  return CacheKey::FromMaterial(fp.ConsumeMaterial());
}

}  // namespace xks
