#include "src/api/cursor.h"

#include <cinttypes>
#include <cstdio>

namespace xks {
namespace {

constexpr std::string_view kPrefix = "xksc2:";
constexpr std::string_view kLegacyPrefix = "xksc1:";

/// Parses a full run of hex digits; false on empty/overlong/non-hex input.
/// Both cases are accepted (encode emits lowercase, but cursors that round-
/// trip through case-normalizing clients must still decode).
bool ParseHex64(std::string_view text, uint64_t* value) {
  if (text.empty() || text.size() > 16) return false;
  uint64_t v = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return false;
    }
    v = (v << 4) | static_cast<uint64_t>(digit);
  }
  *value = v;
  return true;
}

}  // namespace

std::string EncodeCursor(const PageCursor& cursor) {
  char buffer[80];
  std::snprintf(buffer, sizeof(buffer), "%s%" PRIx64 ":%" PRIx64 ":%" PRIx64,
                std::string(kPrefix).c_str(), cursor.fingerprint, cursor.offset,
                cursor.epoch);
  return buffer;
}

Result<PageCursor> DecodeCursor(std::string_view token) {
  if (token.substr(0, kLegacyPrefix.size()) == kLegacyPrefix) {
    return Status::InvalidArgument(
        "legacy pre-epoch cursor (xksc1); re-issue the search to obtain a "
        "fresh cursor");
  }
  if (token.substr(0, kPrefix.size()) != kPrefix) {
    return Status::InvalidArgument("unrecognized cursor");
  }
  std::string_view body = token.substr(kPrefix.size());
  size_t first = body.find(':');
  if (first == std::string_view::npos) {
    return Status::InvalidArgument("malformed cursor");
  }
  size_t second = body.find(':', first + 1);
  if (second == std::string_view::npos) {
    return Status::InvalidArgument("malformed cursor");
  }
  PageCursor cursor;
  if (!ParseHex64(body.substr(0, first), &cursor.fingerprint) ||
      !ParseHex64(body.substr(first + 1, second - first - 1), &cursor.offset) ||
      !ParseHex64(body.substr(second + 1), &cursor.epoch)) {
    return Status::InvalidArgument("malformed cursor");
  }
  return cursor;
}

}  // namespace xks
