// Opaque pagination cursors for Database::Search.
//
// A cursor is the pair (offset, fingerprint): how many hits the client has
// consumed, and a hash binding the cursor to the request that produced it
// (query, pipeline configuration, ranking weights, document selection and
// the corpus revision — document names plus per-document table sizes).
// Replaying a cursor against a different request — or against a corpus
// whose shape changed underneath it — is rejected instead of silently
// returning a misaligned page.

#ifndef XKS_API_CURSOR_H_
#define XKS_API_CURSOR_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/result.h"

namespace xks {

/// Decoded cursor state.
struct PageCursor {
  /// Hits already served; the next page starts here.
  uint64_t offset = 0;
  /// Request/corpus fingerprint the cursor is bound to.
  uint64_t fingerprint = 0;
};

/// Renders a cursor as an opaque token ("xksc1:<fingerprint>:<offset>").
std::string EncodeCursor(const PageCursor& cursor);

/// Parses a token produced by EncodeCursor; InvalidArgument on anything else.
Result<PageCursor> DecodeCursor(std::string_view token);

/// FNV-1a 64-bit hash, the fingerprint building block.
uint64_t Fnv1a64(std::string_view data, uint64_t seed = 0xcbf29ce484222325ull);

}  // namespace xks

#endif  // XKS_API_CURSOR_H_
