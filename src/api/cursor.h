// Opaque pagination cursors for Database::Search.
//
// A cursor is the triple (offset, fingerprint, epoch): how many hits the
// client has consumed, a hash binding the cursor to the request that
// produced it (query, pipeline configuration, ranking weights, document
// selection and the corpus revision), and the epoch of the snapshot the
// page was cut from. The epoch is checked first and separately: replaying a
// cursor after the corpus mutated (any AddDocument / RemoveDocument /
// ReplaceDocument published a newer snapshot) fails with a clean
// FailedPrecondition("corpus changed") so the client knows to restart
// pagination, while a cursor that belongs to a different request — or to a
// different corpus that happens to sit at the same epoch — stays an
// InvalidArgument. (A cursor from a different corpus at a *different*
// epoch is indistinguishable from a post-mutation replay without a
// persistent corpus identity, so it too reports FailedPrecondition;
// either way the client's only correct move is to re-issue the search.)

#ifndef XKS_API_CURSOR_H_
#define XKS_API_CURSOR_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/result.h"

namespace xks {

/// Decoded cursor state.
struct PageCursor {
  /// Hits already served; the next page starts here.
  uint64_t offset = 0;
  /// Request/corpus fingerprint the cursor is bound to.
  uint64_t fingerprint = 0;
  /// Epoch of the snapshot that minted the cursor. A mutation bumps the
  /// corpus epoch, so a stale cursor is detectable before any fingerprint
  /// comparison — and distinguishable from a plain wrong-request cursor.
  uint64_t epoch = 0;
};

/// Renders a cursor as an opaque token ("xksc2:<fingerprint>:<offset>:<epoch>").
std::string EncodeCursor(const PageCursor& cursor);

/// Parses a token produced by EncodeCursor; InvalidArgument on anything
/// else, including the retired pre-epoch "xksc1" scheme.
Result<PageCursor> DecodeCursor(std::string_view token);

}  // namespace xks

#endif  // XKS_API_CURSOR_H_
