// Effectiveness metrics over API hits: the Section-5.1 CFR/APR comparison
// (src/core/metrics.h) lifted to corpus-level responses.

#ifndef XKS_API_EFFECTIVENESS_H_
#define XKS_API_EFFECTIVENESS_H_

#include <vector>

#include "src/api/search_types.h"
#include "src/core/metrics.h"

namespace xks {

/// Compares the aligned hit lists of a ValidRTF response (V) and a MaxMatch
/// response (X). Both must come from the same query, LCA semantics and
/// document selection with ranking off and an unbounded page — anything
/// whose (document, root) sequences disagree is an InvalidArgument.
Result<QueryEffectiveness> CompareHitEffectiveness(
    const std::vector<Hit>& valid_rtf, const std::vector<Hit>& max_match);

}  // namespace xks

#endif  // XKS_API_EFFECTIVENESS_H_
