#include "src/api/database.h"

#include <algorithm>
#include <utility>

#include "src/common/codec.h"
#include "src/common/fingerprint.h"
#include "src/common/io.h"
#include "src/xml/parser.h"

namespace xks {
namespace {

constexpr char kCorpusMagic[] = "XKS3";
constexpr char kCorpusMagicV2[] = "XKS2";
constexpr char kLegacyMagic[] = "XKS1";

/// Appends the shape of one store (table sizes) to revision material.
void AppendStoreShape(std::string* material, const ShreddedStore& store) {
  PutVarint64(material, store.labels().size());
  PutVarint64(material, store.elements().size());
  PutVarint64(material, store.values().size());
  PutVarint64(material, store.index().vocabulary_size());
}

}  // namespace

Database::Database() : mutex_(std::make_unique<Mutex>()) {}

Result<DocumentId> Database::AddStoreLocked(const std::string& name,
                                            ShreddedStore store) {
  if (name.empty()) {
    return Status::InvalidArgument("document name must not be empty");
  }
  if (by_name_.contains(name)) {
    return Status::AlreadyExists("document '" + name + "' already in corpus");
  }
  if (documents_.size() >= UINT32_MAX) {
    return Status::OutOfRange("corpus is full");
  }
  DocumentId id = static_cast<DocumentId>(documents_.size());
  DocumentEntry entry;
  entry.name = name;
  entry.store = std::make_shared<const ShreddedStore>(std::move(store));
  entry.stats = entry.store->ComputeStats();
  entry.live = true;
  MergeStatsLocked(entry.stats);
  by_name_.emplace(name, id);
  documents_.push_back(std::move(entry));
  ++live_count_;
  if (built_) {
    BumpRevisionLocked('a', id, documents_.back());
    ++epoch_;
    PublishLocked();
  }
  return id;
}

Result<DocumentId> Database::AddDocument(const std::string& name,
                                         const Document& doc) {
  MutexLock lock(*mutex_);
  return AddStoreLocked(name, ShreddedStore::Build(doc));
}

Result<DocumentId> Database::AddDocumentXml(const std::string& name,
                                            std::string_view xml) {
  Document doc;
  XKS_ASSIGN_OR_RETURN(doc, ParseXml(xml));
  return AddDocument(name, doc);
}

Status Database::RemoveLocked(DocumentId id) {
  if (id >= documents_.size() || !documents_[id].live) {
    return Status::NotFound("unknown document id " + std::to_string(id));
  }
  DocumentEntry& entry = documents_[id];
  UnmergeStatsLocked(entry.stats);
  by_name_.erase(entry.name);
  if (built_) BumpRevisionLocked('r', id, entry);
  // Tombstone the slot: the id is never reassigned, so every other id —
  // and every persisted reference to one — stays stable.
  entry.name.clear();
  entry.store.reset();
  entry.stats = DocumentStats{};
  entry.live = false;
  --live_count_;
  if (built_) {
    ++epoch_;
    PublishLocked();
  }
  return Status::OK();
}

Status Database::RemoveDocument(DocumentId id) {
  MutexLock lock(*mutex_);
  return RemoveLocked(id);
}

Status Database::RemoveDocument(const std::string& name) {
  MutexLock lock(*mutex_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no document named '" + name + "'");
  }
  return RemoveLocked(it->second);
}

Status Database::ReplaceLocked(DocumentId id, const Document& doc) {
  if (id >= documents_.size() || !documents_[id].live) {
    return Status::NotFound("unknown document id " + std::to_string(id));
  }
  DocumentEntry& entry = documents_[id];
  UnmergeStatsLocked(entry.stats);
  entry.store = std::make_shared<const ShreddedStore>(ShreddedStore::Build(doc));
  entry.stats = entry.store->ComputeStats();
  MergeStatsLocked(entry.stats);
  if (built_) {
    BumpRevisionLocked('p', id, entry);
    ++epoch_;
    PublishLocked();
  }
  return Status::OK();
}

Status Database::ReplaceDocument(DocumentId id, const Document& doc) {
  MutexLock lock(*mutex_);
  return ReplaceLocked(id, doc);
}

Result<DocumentId> Database::ReplaceDocument(const std::string& name,
                                             const Document& doc) {
  MutexLock lock(*mutex_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no document named '" + name + "'");
  }
  DocumentId id = it->second;
  XKS_RETURN_IF_ERROR(ReplaceLocked(id, doc));
  return id;
}

Result<DocumentId> Database::ReplaceDocumentXml(const std::string& name,
                                                std::string_view xml) {
  Document doc;
  XKS_ASSIGN_OR_RETURN(doc, ParseXml(xml));
  return ReplaceDocument(name, doc);
}

void Database::MergeStatsLocked(const DocumentStats& stats) {
  for (const auto& [word, count] : stats.word_frequencies) {
    corpus_frequency_[word] += count;
  }
  total_postings_ += stats.postings;
  ++depth_census_[stats.max_depth];
}

void Database::UnmergeStatsLocked(const DocumentStats& stats) {
  for (const auto& [word, count] : stats.word_frequencies) {
    auto it = corpus_frequency_.find(word);
    if (it == corpus_frequency_.end()) continue;  // defensive; cannot happen
    if (it->second <= count) {
      corpus_frequency_.erase(it);
    } else {
      it->second -= count;
    }
  }
  total_postings_ -= stats.postings;
  auto census = depth_census_.find(stats.max_depth);
  if (census != depth_census_.end() && --census->second == 0) {
    depth_census_.erase(census);
  }
}

size_t Database::MaxDepthLocked() const {
  return depth_census_.empty() ? 1 : depth_census_.rbegin()->first;
}

void Database::BumpRevisionLocked(char op, DocumentId id,
                                  const DocumentEntry& entry) {
  std::string material;
  material.push_back(op);
  PutVarint32(&material, id);
  PutLengthPrefixed(&material, entry.name);
  if (entry.store != nullptr) AppendStoreShape(&material, *entry.store);
  revision_ = Fnv1a64(material, revision_);
}

void Database::PublishLocked() {
  auto snapshot = std::shared_ptr<Snapshot>(new Snapshot());
  // Every published snapshot gets its own fresh cache: entries of the
  // previous epoch die with the previous snapshot, so cache invalidation
  // on mutation needs no explicit work at all.
  if (cache_config_.enabled) {
    snapshot->cache_ =
        std::make_shared<ResultCache>(cache_config_, metrics_registry_);
  }
  if (metrics_registry_ != nullptr) {
    if (instruments_ == nullptr) {
      auto instruments = std::make_shared<Snapshot::SearchInstruments>();
      instruments->queries = metrics_registry_->counter("xks_search_queries_total");
      instruments->latency =
          metrics_registry_->histogram("xks_search_latency_seconds");
      instruments->stage_parse = metrics_registry_->histogram(
          "xks_search_stage_seconds", "stage=\"parse\"");
      instruments->stage_selection = metrics_registry_->histogram(
          "xks_search_stage_seconds", "stage=\"selection\"");
      instruments->stage_scan = metrics_registry_->histogram(
          "xks_search_stage_seconds", "stage=\"scan\"");
      instruments->stage_rank = metrics_registry_->histogram(
          "xks_search_stage_seconds", "stage=\"rank\"");
      instruments->stage_snippet = metrics_registry_->histogram(
          "xks_search_stage_seconds", "stage=\"snippet\"");
      instruments->pipeline = PipelineMetrics::Resolve(metrics_registry_);
      instruments_ = std::move(instruments);
    }
    snapshot->instruments_ = instruments_;
  }
  snapshot->documents_.reserve(live_count_);
  for (size_t id = 0; id < documents_.size(); ++id) {
    const DocumentEntry& entry = documents_[id];
    if (!entry.live) continue;
    snapshot->documents_.push_back(Snapshot::Doc{
        static_cast<DocumentId>(id), entry.name, entry.store});
  }
  snapshot->by_name_ = by_name_;
  snapshot->frequency_ = corpus_frequency_;
  snapshot->total_postings_ = total_postings_;
  snapshot->corpus_max_depth_ = MaxDepthLocked();
  snapshot->epoch_ = epoch_;
  snapshot->revision_ = revision_;
  snapshot_ = std::move(snapshot);
}

Status Database::Build() {
  MutexLock lock(*mutex_);
  if (built_) return Status::OK();
  if (live_count_ == 0) {
    return Status::InvalidArgument("cannot build an empty corpus");
  }
  // Seed the revision chain with the full corpus shape (ids + names +
  // per-document table sizes) so cursors handed out against one corpus are
  // rejected by any corpus that differs — including a same-size rebuild
  // from different inputs. This is the only full-shape walk; mutations
  // evolve the chain in O(changed doc).
  std::string shape;
  for (size_t id = 0; id < documents_.size(); ++id) {
    const DocumentEntry& entry = documents_[id];
    if (!entry.live) continue;
    PutVarint32(&shape, static_cast<DocumentId>(id));
    PutLengthPrefixed(&shape, entry.name);
    AppendStoreShape(&shape, *entry.store);
  }
  revision_ = Fnv1a64(shape);
  epoch_ = 1;
  built_ = true;
  PublishLocked();
  return Status::OK();
}

bool Database::built() const {
  MutexLock lock(*mutex_);
  return built_;
}

uint64_t Database::epoch() const {
  MutexLock lock(*mutex_);
  return epoch_;
}

size_t Database::document_count() const {
  MutexLock lock(*mutex_);
  return live_count_;
}

Result<std::string> Database::document_name(DocumentId id) const {
  MutexLock lock(*mutex_);
  if (id >= documents_.size() || !documents_[id].live) {
    return Status::NotFound("unknown document id " + std::to_string(id));
  }
  return documents_[id].name;
}

Result<DocumentId> Database::FindDocument(const std::string& name) const {
  MutexLock lock(*mutex_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no document named '" + name + "'");
  }
  return it->second;
}

Result<std::shared_ptr<const ShreddedStore>> Database::store(
    DocumentId id) const {
  MutexLock lock(*mutex_);
  if (id >= documents_.size() || !documents_[id].live) {
    return Status::NotFound("unknown document id " + std::to_string(id));
  }
  return documents_[id].store;
}

uint64_t Database::WordFrequency(const std::string& word) const {
  MutexLock lock(*mutex_);
  auto it = corpus_frequency_.find(word);
  return it == corpus_frequency_.end() ? 0 : it->second;
}

size_t Database::vocabulary_size() const {
  MutexLock lock(*mutex_);
  return corpus_frequency_.size();
}

size_t Database::total_postings() const {
  MutexLock lock(*mutex_);
  return total_postings_;
}

size_t Database::corpus_max_depth() const {
  MutexLock lock(*mutex_);
  return MaxDepthLocked();
}

void Database::set_cache_config(const CacheConfig& config) {
  MutexLock lock(*mutex_);
  cache_config_ = config;
  // Republish so the change takes effect immediately: same catalog state,
  // same epoch and revision (this is a serving-configuration change, not a
  // corpus mutation), fresh cache under the new configuration.
  if (built_) PublishLocked();
}

CacheConfig Database::cache_config() const {
  MutexLock lock(*mutex_);
  return cache_config_;
}

void Database::set_metrics_registry(MetricsRegistry* registry) {
  MutexLock lock(*mutex_);
  if (metrics_registry_ == registry) return;
  metrics_registry_ = registry;
  instruments_ = nullptr;  // re-resolve against the new registry
  // Republish like set_cache_config: same catalog state, same epoch and
  // revision, instruments swapped for every search from now on.
  if (built_) PublishLocked();
}

MetricsRegistry* Database::metrics_registry() const {
  MutexLock lock(*mutex_);
  return metrics_registry_;
}

CacheStats Database::cache_stats() const {
  std::shared_ptr<const Snapshot> current = snapshot();
  return current != nullptr ? current->cache_stats() : CacheStats{};
}

std::shared_ptr<const Snapshot> Database::snapshot() const {
  MutexLock lock(*mutex_);
  return snapshot_;
}

Result<SearchResponse> Database::Search(const SearchRequest& request) const {
  std::shared_ptr<const Snapshot> current = snapshot();
  if (current == nullptr) {
    return Status::InvalidArgument(
        "Database::Build() must be called before Search()");
  }
  return current->Search(request);
}

void Database::EncodeTo(std::string* dst) const {
  MutexLock lock(*mutex_);
  dst->append(kCorpusMagic, 4);
  PutVarint64(dst, epoch_);
  PutVarint64(dst, revision_);
  PutVarint64(dst, documents_.size());
  for (const DocumentEntry& entry : documents_) {
    PutVarint64(dst, entry.live ? 1 : 0);
    if (!entry.live) continue;
    PutLengthPrefixed(dst, entry.name);
    std::string blob;
    entry.store->EncodeTo(&blob);
    PutLengthPrefixed(dst, blob);
  }
}

Result<Database> Database::DecodeFrom(std::string_view data,
                                      const std::string& legacy_name) {
  if (data.size() >= 4 && data.substr(0, 4) == kLegacyMagic) {
    // Legacy single-document store: surface as a one-document corpus.
    ShreddedStore store;
    XKS_ASSIGN_OR_RETURN(store, ShreddedStore::DecodeFrom(data));
    Database db;
    {
      MutexLock lock(*db.mutex_);
      XKS_RETURN_IF_ERROR(
          db.AddStoreLocked(legacy_name, std::move(store)).status());
    }
    XKS_RETURN_IF_ERROR(db.Build());
    return db;
  }
  if (data.size() >= 4 && data.substr(0, 4) == kCorpusMagicV2) {
    // Earlier multi-document corpus (pre-epoch): every slot is live, and
    // Build() publishes it as epoch 1.
    ByteReader reader(data.substr(4));
    uint64_t count = 0;
    XKS_ASSIGN_OR_RETURN(count, reader.ReadCount("corpus document count"));
    if (count == 0) return Status::Corruption("empty corpus file");
    Database db;
    {
      MutexLock lock(*db.mutex_);
      db.documents_.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        std::string name;
        XKS_ASSIGN_OR_RETURN(name, reader.ReadLengthPrefixedString());
        if (name.empty()) return Status::Corruption("empty document name");
        std::string_view blob;
        XKS_ASSIGN_OR_RETURN(blob, reader.ReadLengthPrefixedSpan());
        ShreddedStore store;
        XKS_ASSIGN_OR_RETURN(store, ShreddedStore::DecodeFrom(blob));
        Result<DocumentId> added = db.AddStoreLocked(name, std::move(store));
        if (!added.ok()) {
          if (added.status().code() == StatusCode::kAlreadyExists) {
            return Status::Corruption("duplicate document name '" + name +
                                      "'");
          }
          return added.status();
        }
      }
    }
    XKS_RETURN_IF_ERROR(reader.ExpectDone("corpus file"));
    XKS_RETURN_IF_ERROR(db.Build());
    return db;
  }
  if (data.size() < 4 || data.substr(0, 4) != kCorpusMagic) {
    return Status::Corruption("bad corpus magic");
  }
  ByteReader reader(data.substr(4));
  uint64_t epoch = 0;
  uint64_t revision = 0;
  uint64_t count = 0;
  XKS_ASSIGN_OR_RETURN(epoch, reader.ReadVarint64());
  XKS_ASSIGN_OR_RETURN(revision, reader.ReadVarint64());
  XKS_ASSIGN_OR_RETURN(count, reader.ReadCount("corpus document count"));
  if (count == 0) return Status::Corruption("empty corpus file");
  Database db;
  bool any_live = false;
  {
    MutexLock lock(*db.mutex_);
    db.documents_.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t live = 0;
      XKS_ASSIGN_OR_RETURN(live, reader.ReadVarint64());
      if (live > 1) return Status::Corruption("bad document liveness flag");
      if (live == 0) {
        // Tombstone: the slot keeps its id reserved.
        db.documents_.push_back(DocumentEntry{});
        continue;
      }
      std::string name;
      XKS_ASSIGN_OR_RETURN(name, reader.ReadLengthPrefixedString());
      if (name.empty()) return Status::Corruption("empty document name");
      std::string_view blob;
      XKS_ASSIGN_OR_RETURN(blob, reader.ReadLengthPrefixedSpan());
      ShreddedStore store;
      XKS_ASSIGN_OR_RETURN(store, ShreddedStore::DecodeFrom(blob));
      Result<DocumentId> added = db.AddStoreLocked(name, std::move(store));
      if (!added.ok()) {
        if (added.status().code() == StatusCode::kAlreadyExists) {
          return Status::Corruption("duplicate document name '" + name + "'");
        }
        return added.status();
      }
    }
    any_live = db.live_count_ > 0;
  }
  XKS_RETURN_IF_ERROR(reader.ExpectDone("corpus file"));
  if (epoch == 0) {
    // Saved before the first Build(). Like the legacy formats, loading
    // publishes the corpus immediately (epoch 1) — a loaded database is
    // always searchable.
    if (!any_live) {
      return Status::Corruption("corpus file with no live documents");
    }
    XKS_RETURN_IF_ERROR(db.Build());
    return db;
  }
  // Restore the published state verbatim: same epoch, same revision — so
  // surviving DocumentIds, statistics and even in-flight cursors keep
  // working across the Save/Load round trip.
  {
    MutexLock lock(*db.mutex_);
    db.epoch_ = epoch;
    db.revision_ = revision;
    db.built_ = true;
    db.PublishLocked();
  }
  return db;
}

Status Database::Save(const std::string& path) const {
  std::string buffer;
  EncodeTo(&buffer);
  return WriteStringToFile(path, buffer);
}

Result<Database> Database::Load(const std::string& path,
                                const std::string& legacy_name) {
  std::string buffer;
  XKS_ASSIGN_OR_RETURN(buffer, ReadFileToString(path));
  return DecodeFrom(buffer, legacy_name);
}

}  // namespace xks
