#include "src/api/database.h"

#include <algorithm>
#include <atomic>

#include "src/api/cursor.h"
#include "src/common/codec.h"
#include "src/common/io.h"
#include "src/common/worker_pool.h"
#include "src/xml/parser.h"

namespace xks {
namespace {

constexpr char kCorpusMagic[] = "XKS2";
constexpr char kLegacyMagic[] = "XKS1";

/// One pre-page candidate: a fragment of one executed document.
struct Candidate {
  size_t doc_index = 0;
  size_t fragment_index = 0;
  double score = 0;
};

/// Binds a cursor to the request shape: normalized query, pipeline
/// configuration, paging mode and the exact document selection.
uint64_t RequestFingerprint(const KeywordQuery& query,
                            const SearchRequest& request,
                            const std::vector<DocumentId>& documents,
                            uint64_t corpus_revision) {
  std::string material = query.ToString();
  material.push_back('\0');
  material.push_back(static_cast<char>(request.semantics));
  material.push_back(static_cast<char>(request.elca_algorithm));
  material.push_back(static_cast<char>(request.slca_algorithm));
  material.push_back(static_cast<char>(request.pruning));
  material.push_back(request.rank ? 1 : 0);
  if (request.rank) {
    // Ranking weights change the merge order, so a cursor must not survive
    // a weight change. Raw IEEE-754 bytes keep the hash deterministic.
    const double weights[] = {
        request.weights.specificity, request.weights.proximity,
        request.weights.compactness, request.weights.slca_bonus,
        request.weights.match_concentration};
    material.append(reinterpret_cast<const char*>(weights), sizeof(weights));
  }
  PutVarint64(&material, request.top_k);
  PutVarint64(&material, corpus_revision);
  for (DocumentId id : documents) PutVarint32(&material, id);
  return Fnv1a64(material);
}

SearchOptions PipelineOptions(const SearchRequest& request) {
  SearchOptions options;
  options.semantics = request.semantics;
  options.elca_algorithm = request.elca_algorithm;
  options.slca_algorithm = request.slca_algorithm;
  options.pruning = request.pruning;
  options.keep_raw_fragments = request.include_raw_fragments;
  return options;
}

}  // namespace

Result<DocumentId> Database::AddDocument(const std::string& name,
                                         const Document& doc) {
  if (name.empty()) {
    return Status::InvalidArgument("document name must not be empty");
  }
  if (by_name_.contains(name)) {
    return Status::AlreadyExists("document '" + name + "' already in corpus");
  }
  if (documents_.size() >= UINT32_MAX) {
    return Status::OutOfRange("corpus is full");
  }
  DocumentId id = static_cast<DocumentId>(documents_.size());
  documents_.push_back(DocumentEntry{name, ShreddedStore::Build(doc)});
  by_name_.emplace(name, id);
  built_ = false;
  return id;
}

Result<DocumentId> Database::AddDocumentXml(const std::string& name,
                                            std::string_view xml) {
  Document doc;
  XKS_ASSIGN_OR_RETURN(doc, ParseXml(xml));
  return AddDocument(name, doc);
}

Status Database::Build() {
  if (documents_.empty()) {
    return Status::InvalidArgument("cannot build an empty corpus");
  }
  corpus_frequency_.clear();
  total_postings_ = 0;
  corpus_max_depth_ = 1;
  // The revision hashes the corpus shape (names + table sizes) so cursors
  // handed out against one corpus are rejected by any corpus that differs —
  // including a same-size rebuild from different inputs.
  std::string shape;
  for (const DocumentEntry& entry : documents_) {
    for (const auto& [word, count] : entry.store.values().FrequencyTable()) {
      corpus_frequency_[word] += count;
    }
    total_postings_ += entry.store.index().total_postings();
    for (size_t i = 0; i < entry.store.elements().size(); ++i) {
      corpus_max_depth_ = std::max<size_t>(corpus_max_depth_,
                                           entry.store.elements().row(i).level);
    }
    PutLengthPrefixed(&shape, entry.name);
    PutVarint64(&shape, entry.store.labels().size());
    PutVarint64(&shape, entry.store.elements().size());
    PutVarint64(&shape, entry.store.values().size());
    PutVarint64(&shape, entry.store.index().vocabulary_size());
  }
  revision_ = Fnv1a64(shape);
  built_ = true;
  return Status::OK();
}

Result<DocumentId> Database::FindDocument(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no document named '" + name + "'");
  }
  return it->second;
}

uint64_t Database::WordFrequency(const std::string& word) const {
  auto it = corpus_frequency_.find(word);
  return it == corpus_frequency_.end() ? 0 : it->second;
}

Result<SearchResponse> Database::Search(const SearchRequest& request) const {
  if (!built_) {
    return Status::InvalidArgument(
        "Database::Build() must be called before Search()");
  }

  // Resolve the query.
  KeywordQuery query;
  if (!request.terms.empty()) {
    XKS_ASSIGN_OR_RETURN(query, KeywordQuery::FromTerms(request.terms));
  } else {
    XKS_ASSIGN_OR_RETURN(query, KeywordQuery::Parse(request.query));
  }

  // Resolve the document selection (dedupe, preserve order, validate).
  std::vector<DocumentId> documents;
  if (request.documents.empty()) {
    documents.resize(documents_.size());
    for (size_t i = 0; i < documents.size(); ++i) {
      documents[i] = static_cast<DocumentId>(i);
    }
  } else {
    for (DocumentId id : request.documents) {
      if (id >= documents_.size()) {
        return Status::NotFound("unknown document id " + std::to_string(id));
      }
      if (std::find(documents.begin(), documents.end(), id) == documents.end()) {
        documents.push_back(id);
      }
    }
  }

  // Resolve the page window.
  const uint64_t fingerprint =
      RequestFingerprint(query, request, documents, revision_);
  size_t offset = 0;
  if (!request.cursor.empty()) {
    PageCursor cursor;
    XKS_ASSIGN_OR_RETURN(cursor, DecodeCursor(request.cursor));
    if (cursor.fingerprint != fingerprint) {
      return Status::InvalidArgument(
          "cursor does not belong to this request (query, configuration or "
          "corpus changed)");
    }
    offset = static_cast<size_t>(cursor.offset);
  }

  SearchResponse response;
  response.parsed_query = query;

  // Phase 1: fan the stateless executor out over the selected documents,
  // up to max_parallelism at a time, into per-document result slots.
  // Documents are claimed in selection order, so the executed set is always
  // a contiguous prefix of the selection. Without ranking, hits already
  // arrive in final order, so dispatch stops once the page plus one
  // look-ahead hit (the next_cursor probe) is known.
  const SearchOptions options = PipelineOptions(request);
  // Overflow-safe: a forged cursor with a huge offset degrades to a full
  // scan (empty page, exact totals), never a silently truncated one.
  const size_t needed = request.top_k == 0 ||
                                offset > SIZE_MAX - request.top_k - 1
                            ? SIZE_MAX
                            : offset + request.top_k + 1;
  // Cross-document score comparability: every document normalizes
  // specificity against the same corpus-wide depth. A single-document
  // selection keeps the legacy result-set-relative scale (normalizer 0).
  const size_t depth_normalizer = documents.size() > 1 ? corpus_max_depth_ : 0;

  std::vector<SearchResult> results(documents.size());
  std::vector<Status> statuses(documents.size());
  std::vector<std::vector<FragmentScore>> ranked(request.rank ? documents.size() : 0);
  // High-water mark of unranked hits discovered so far; once it reaches
  // `needed`, no further documents are dispatched (in-flight ones finish).
  std::atomic<size_t> hits_seen{0};
  // Per-document failures land in their slot instead of aborting the
  // fan-out, so the replay below surfaces exactly the error a serial scan
  // would have hit — or none at all, when early termination would have
  // stopped the serial scan before reaching the failed document.
  std::atomic<bool> failed{false};
  const auto execute_document = [&](size_t di) -> Status {
    Result<SearchResult> result =
        ExecuteSearch(store(documents[di]), query, options);
    if (!result.ok()) {
      statuses[di] = result.status();
      failed.store(true, std::memory_order_relaxed);
      return Status::OK();
    }
    results[di] = std::move(result).value();
    if (request.rank) {
      ranked[di] = RankFragments(results[di], query.size(), request.weights,
                                 depth_normalizer);
    } else {
      hits_seen.fetch_add(results[di].fragments.size(),
                          std::memory_order_relaxed);
    }
    return Status::OK();
  };
  ParallelForOptions fan_out;
  fan_out.max_parallelism = request.max_parallelism;
  if (!request.rank && needed != SIZE_MAX) {
    fan_out.stop = [&hits_seen, &failed, needed] {
      return failed.load(std::memory_order_relaxed) ||
             hits_seen.load(std::memory_order_relaxed) >= needed;
    };
  } else {
    fan_out.stop = [&failed] {
      return failed.load(std::memory_order_relaxed);
    };
  }
  size_t executed = 0;
  XKS_ASSIGN_OR_RETURN(
      executed, ParallelFor(documents.size(), execute_document, fan_out));

  // Phase 1.5: replay the executed prefix in document order, reconstructing
  // exactly the documents a serial scan would have covered. A parallel scan
  // may overshoot (documents claimed before the stop condition fired);
  // their slots are simply not consumed — that is what keeps responses
  // byte-identical at every max_parallelism setting.
  std::vector<Candidate> candidates;
  size_t scanned = 0;
  for (size_t di = 0; di < executed; ++di) {
    XKS_RETURN_IF_ERROR(statuses[di]);
    const SearchResult& result = results[di];
    if (request.rank) {
      for (const FragmentScore& scored : ranked[di]) {
        candidates.push_back(Candidate{di, scored.fragment_index, scored.total});
      }
    } else {
      for (size_t fi = 0; fi < result.fragments.size(); ++fi) {
        candidates.push_back(Candidate{di, fi, 0.0});
      }
    }
    if (request.include_stats) {
      response.timings.Accumulate(result.timings);
      response.pruning.Accumulate(result.pruning);
      response.keyword_node_count += result.keyword_node_count;
    }
    ++scanned;
    if (!request.rank && candidates.size() >= needed) break;
  }
  response.documents_searched = scanned;
  response.total_hits = candidates.size();
  response.total_is_exact = scanned == documents.size();
  response.stats_are_exact = scanned == documents.size();

  // Phase 2: corpus-level merge. Ties break on (document id, document
  // order), keeping pagination deterministic.
  if (request.rank) {
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Candidate& a, const Candidate& b) {
                       if (a.score != b.score) return a.score > b.score;
                       if (a.doc_index != b.doc_index) {
                         return a.doc_index < b.doc_index;
                       }
                       return a.fragment_index < b.fragment_index;
                     });
  }

  // Phase 3: cut the requested page and materialize its hits.
  const size_t begin = std::min(offset, candidates.size());
  const size_t end = request.top_k == 0
                         ? candidates.size()
                         : std::min(begin + request.top_k, candidates.size());
  response.hits.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    const Candidate& candidate = candidates[i];
    FragmentResult& fragment =
        results[candidate.doc_index].fragments[candidate.fragment_index];
    Hit hit;
    hit.document = documents[candidate.doc_index];
    hit.document_name = documents_[hit.document].name;
    hit.score = candidate.score;
    if (request.include_snippets) {
      hit.snippet = fragment.fragment.ToTreeString(query.size());
    }
    hit.rtf = std::move(fragment.rtf);
    hit.fragment = std::move(fragment.fragment);
    if (request.include_raw_fragments) hit.raw = std::move(fragment.raw);
    response.hits.push_back(std::move(hit));
  }
  if (end < candidates.size()) {
    response.next_cursor = EncodeCursor(PageCursor{end, fingerprint});
  }
  return response;
}

void Database::EncodeTo(std::string* dst) const {
  dst->append(kCorpusMagic, 4);
  PutVarint64(dst, documents_.size());
  for (const DocumentEntry& entry : documents_) {
    PutLengthPrefixed(dst, entry.name);
    std::string blob;
    entry.store.EncodeTo(&blob);
    PutLengthPrefixed(dst, blob);
  }
}

Result<Database> Database::DecodeFrom(std::string_view data,
                                      const std::string& legacy_name) {
  if (data.size() >= 4 && data.substr(0, 4) == kLegacyMagic) {
    // Legacy single-document store: surface as a one-document corpus.
    ShreddedStore store;
    XKS_ASSIGN_OR_RETURN(store, ShreddedStore::DecodeFrom(data));
    Database db;
    db.documents_.push_back(DocumentEntry{legacy_name, std::move(store)});
    db.by_name_.emplace(legacy_name, 0);
    XKS_RETURN_IF_ERROR(db.Build());
    return db;
  }
  if (data.size() < 4 || data.substr(0, 4) != kCorpusMagic) {
    return Status::Corruption("bad corpus magic");
  }
  Decoder decoder(data.substr(4));
  uint64_t count = 0;
  XKS_RETURN_IF_ERROR(decoder.GetVarint64(&count));
  if (count == 0) return Status::Corruption("empty corpus file");
  if (count > decoder.remaining()) {
    return Status::Corruption("implausible corpus document count");
  }
  Database db;
  db.documents_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    DocumentEntry entry;
    XKS_RETURN_IF_ERROR(decoder.GetLengthPrefixed(&entry.name));
    if (entry.name.empty()) return Status::Corruption("empty document name");
    if (db.by_name_.contains(entry.name)) {
      return Status::Corruption("duplicate document name '" + entry.name + "'");
    }
    std::string blob;
    XKS_RETURN_IF_ERROR(decoder.GetLengthPrefixed(&blob));
    XKS_ASSIGN_OR_RETURN(entry.store, ShreddedStore::DecodeFrom(blob));
    db.by_name_.emplace(entry.name, static_cast<DocumentId>(i));
    db.documents_.push_back(std::move(entry));
  }
  if (!decoder.done()) {
    return Status::Corruption("trailing bytes in corpus file");
  }
  XKS_RETURN_IF_ERROR(db.Build());
  return db;
}

Status Database::Save(const std::string& path) const {
  std::string buffer;
  EncodeTo(&buffer);
  return WriteStringToFile(path, buffer);
}

Result<Database> Database::Load(const std::string& path,
                                const std::string& legacy_name) {
  std::string buffer;
  XKS_ASSIGN_OR_RETURN(buffer, ReadFileToString(path));
  return DecodeFrom(buffer, legacy_name);
}

}  // namespace xks
