#include "src/obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "src/common/codec.h"

namespace xks {

namespace {

// Doubles travel as their raw IEEE-754 bits in a varint — deterministic and
// round-trip exact (same convention as the wire weights).
void PutDoubleBits(std::string* out, double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  PutVarint64(out, bits);
}

Result<double> ReadDoubleBits(ByteReader& reader) {
  Result<uint64_t> bits = reader.ReadVarint64();
  if (!bits.ok()) return bits.status();
  double value;
  std::memcpy(&value, &*bits, sizeof(value));
  return value;
}

void AppendNumber(std::string* out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  out->append(buffer);
}

void AppendSeries(std::string* out, const std::string& name,
                  std::string_view labels, std::string_view extra_label) {
  out->append(name);
  if (!labels.empty() || !extra_label.empty()) {
    out->push_back('{');
    out->append(labels);
    if (!labels.empty() && !extra_label.empty()) out->push_back(',');
    out->append(extra_label);
    out->push_back('}');
  }
  out->push_back(' ');
}

}  // namespace

const std::vector<double>& DefaultLatencyBounds() {
  static const std::vector<double>* const kBounds = [] {
    auto* bounds = new std::vector<double>();
    double bound = 1e-6;  // 1 microsecond
    for (int i = 0; i < 24; ++i) {  // up to ~8.39 s
      bounds->push_back(bound);
      bound *= 2.0;
    }
    return bounds;
  }();
  return *kBounds;
}

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry* const kDefault = new MetricsRegistry();
  return kDefault;
}

Counter* MetricsRegistry::counter(std::string_view name,
                                  std::string_view labels) {
  MutexLock lock(mutex_);
  auto& slot = counters_[Key(std::string(name), std::string(labels))];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name, std::string_view labels) {
  MutexLock lock(mutex_);
  auto& slot = gauges_[Key(std::string(name), std::string(labels))];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name,
                                      std::string_view labels) {
  MutexLock lock(mutex_);
  auto& slot = histograms_[Key(std::string(name), std::string(labels))];
  if (!slot) slot = std::make_unique<Histogram>(&DefaultLatencyBounds());
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  MutexLock lock(mutex_);
  // Each map iterates in (name, labels) order already; group consecutive
  // same-name entries into families, then merge-sort the family lists by
  // name so the overall order is independent of creation order and kind.
  auto group = [&snapshot](const auto& map, MetricKind kind, auto&& fill) {
    for (const auto& [key, instrument] : map) {
      if (snapshot.families.empty() || snapshot.families.back().name != key.first ||
          snapshot.families.back().kind != kind) {
        MetricFamily family;
        family.name = key.first;
        family.kind = kind;
        snapshot.families.push_back(std::move(family));
      }
      MetricPoint point;
      point.labels = key.second;
      fill(*instrument, point);
      snapshot.families.back().points.push_back(std::move(point));
    }
  };
  group(counters_, MetricKind::kCounter, [](const Counter& c, MetricPoint& p) {
    p.counter_value = c.value();
  });
  group(gauges_, MetricKind::kGauge, [](const Gauge& g, MetricPoint& p) {
    p.gauge_value = g.value();
  });
  group(histograms_, MetricKind::kHistogram,
        [](const Histogram& h, MetricPoint& p) {
          p.histogram.bounds = h.bounds();
          p.histogram.buckets.resize(h.bounds().size() + 1);
          for (size_t i = 0; i < p.histogram.buckets.size(); ++i) {
            p.histogram.buckets[i] = h.bucket(i);
          }
          p.histogram.count = h.count();
          p.histogram.sum = h.sum();
        });
  std::stable_sort(snapshot.families.begin(), snapshot.families.end(),
                   [](const MetricFamily& a, const MetricFamily& b) {
                     return a.name < b.name;
                   });
  return snapshot;
}

const MetricFamily* MetricsSnapshot::Find(std::string_view name) const {
  for (const MetricFamily& family : families) {
    if (family.name == name) return &family;
  }
  return nullptr;
}

uint64_t MetricsSnapshot::CounterTotal(std::string_view name) const {
  const MetricFamily* family = Find(name);
  if (family == nullptr || family->kind != MetricKind::kCounter) return 0;
  uint64_t total = 0;
  for (const MetricPoint& point : family->points) total += point.counter_value;
  return total;
}

std::string MetricsSnapshot::TextExposition() const {
  std::string out;
  char buffer[96];
  for (const MetricFamily& family : families) {
    const char* type = family.kind == MetricKind::kCounter    ? "counter"
                       : family.kind == MetricKind::kGauge    ? "gauge"
                                                              : "histogram";
    out.append("# TYPE ").append(family.name).push_back(' ');
    out.append(type).push_back('\n');
    for (const MetricPoint& point : family.points) {
      switch (family.kind) {
        case MetricKind::kCounter:
          AppendSeries(&out, family.name, point.labels, {});
          std::snprintf(buffer, sizeof(buffer), "%" PRIu64,
                        point.counter_value);
          out.append(buffer).push_back('\n');
          break;
        case MetricKind::kGauge:
          AppendSeries(&out, family.name, point.labels, {});
          std::snprintf(buffer, sizeof(buffer), "%" PRId64, point.gauge_value);
          out.append(buffer).push_back('\n');
          break;
        case MetricKind::kHistogram: {
          uint64_t cumulative = 0;
          for (size_t i = 0; i < point.histogram.bounds.size(); ++i) {
            cumulative += point.histogram.buckets[i];
            std::string le = "le=\"";
            AppendNumber(&le, point.histogram.bounds[i]);
            le.push_back('"');
            AppendSeries(&out, family.name + "_bucket", point.labels, le);
            std::snprintf(buffer, sizeof(buffer), "%" PRIu64, cumulative);
            out.append(buffer).push_back('\n');
          }
          AppendSeries(&out, family.name + "_bucket", point.labels,
                       "le=\"+Inf\"");
          std::snprintf(buffer, sizeof(buffer), "%" PRIu64,
                        point.histogram.count);
          out.append(buffer).push_back('\n');
          AppendSeries(&out, family.name + "_sum", point.labels, {});
          AppendNumber(&out, point.histogram.sum);
          out.push_back('\n');
          AppendSeries(&out, family.name + "_count", point.labels, {});
          std::snprintf(buffer, sizeof(buffer), "%" PRIu64,
                        point.histogram.count);
          out.append(buffer).push_back('\n');
          break;
        }
      }
    }
  }
  return out;
}

void AppendMetricsSnapshot(std::string* out, const MetricsSnapshot& snapshot) {
  PutVarint64(out, snapshot.families.size());
  for (const MetricFamily& family : snapshot.families) {
    PutLengthPrefixed(out, family.name);
    out->push_back(static_cast<char>(family.kind));
    PutVarint64(out, family.points.size());
    for (const MetricPoint& point : family.points) {
      PutLengthPrefixed(out, point.labels);
      switch (family.kind) {
        case MetricKind::kCounter:
          PutVarint64(out, point.counter_value);
          break;
        case MetricKind::kGauge:
          PutVarint64(out, static_cast<uint64_t>(point.gauge_value));
          break;
        case MetricKind::kHistogram:
          PutVarint64(out, point.histogram.bounds.size());
          for (double bound : point.histogram.bounds) {
            PutDoubleBits(out, bound);
          }
          for (uint64_t bucket : point.histogram.buckets) {
            PutVarint64(out, bucket);
          }
          PutVarint64(out, point.histogram.count);
          PutDoubleBits(out, point.histogram.sum);
          break;
      }
    }
  }
}

Status DecodeMetricsSnapshot(std::string_view bytes, MetricsSnapshot* out) {
  out->families.clear();
  ByteReader reader(bytes);
  Result<uint64_t> family_count = reader.ReadCount("metric families");
  if (!family_count.ok()) return family_count.status();
  out->families.reserve(*family_count);
  for (uint64_t f = 0; f < *family_count; ++f) {
    MetricFamily family;
    Result<std::string> name = reader.ReadLengthPrefixedString();
    if (!name.ok()) return name.status();
    family.name = std::move(name).value();
    Result<uint8_t> kind = reader.ReadU8();
    if (!kind.ok()) return kind.status();
    if (*kind > static_cast<uint8_t>(MetricKind::kHistogram)) {
      return Status::Corruption("unknown metric kind");
    }
    family.kind = static_cast<MetricKind>(*kind);
    Result<uint64_t> point_count = reader.ReadCount("metric points");
    if (!point_count.ok()) return point_count.status();
    family.points.reserve(*point_count);
    for (uint64_t p = 0; p < *point_count; ++p) {
      MetricPoint point;
      Result<std::string> labels = reader.ReadLengthPrefixedString();
      if (!labels.ok()) return labels.status();
      point.labels = std::move(labels).value();
      switch (family.kind) {
        case MetricKind::kCounter: {
          Result<uint64_t> value = reader.ReadVarint64();
          if (!value.ok()) return value.status();
          point.counter_value = *value;
          break;
        }
        case MetricKind::kGauge: {
          Result<uint64_t> value = reader.ReadVarint64();
          if (!value.ok()) return value.status();
          point.gauge_value = static_cast<int64_t>(*value);
          break;
        }
        case MetricKind::kHistogram: {
          Result<uint64_t> bound_count = reader.ReadCount("histogram bounds");
          if (!bound_count.ok()) return bound_count.status();
          point.histogram.bounds.reserve(*bound_count);
          for (uint64_t b = 0; b < *bound_count; ++b) {
            Result<double> bound = ReadDoubleBits(reader);
            if (!bound.ok()) return bound.status();
            point.histogram.bounds.push_back(*bound);
          }
          point.histogram.buckets.reserve(*bound_count + 1);
          for (uint64_t b = 0; b <= *bound_count; ++b) {
            Result<uint64_t> bucket = reader.ReadVarint64();
            if (!bucket.ok()) return bucket.status();
            point.histogram.buckets.push_back(*bucket);
          }
          Result<uint64_t> count = reader.ReadVarint64();
          if (!count.ok()) return count.status();
          point.histogram.count = *count;
          Result<double> sum = ReadDoubleBits(reader);
          if (!sum.ok()) return sum.status();
          point.histogram.sum = *sum;
          break;
        }
      }
      family.points.push_back(std::move(point));
    }
    out->families.push_back(std::move(family));
  }
  return reader.ExpectDone("metrics snapshot");
}

}  // namespace xks
