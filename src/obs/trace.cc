#include "src/obs/trace.h"

#include <cinttypes>
#include <cstdio>

#include "src/common/codec.h"

namespace xks {

namespace {

uint64_t MicrosBetween(QueryTrace::Clock::time_point from,
                       QueryTrace::Clock::time_point to) {
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(to - from).count();
  return us > 0 ? static_cast<uint64_t>(us) : 0;
}

Status DecodeTraceSpanAtDepth(ByteReader& reader, TraceSpan* out, int depth) {
  if (depth > kMaxTraceDepth) {
    return Status::Corruption("trace span nesting too deep");
  }
  Result<std::string> name = reader.ReadLengthPrefixedString();
  if (!name.ok()) return name.status();
  out->name = std::move(name).value();
  Result<uint64_t> start_us = reader.ReadVarint64();
  if (!start_us.ok()) return start_us.status();
  out->start_us = *start_us;
  Result<uint64_t> duration_us = reader.ReadVarint64();
  if (!duration_us.ok()) return duration_us.status();
  out->duration_us = *duration_us;
  Result<uint64_t> attr_count = reader.ReadCount("trace attributes");
  if (!attr_count.ok()) return attr_count.status();
  out->attributes.reserve(*attr_count);
  for (uint64_t a = 0; a < *attr_count; ++a) {
    Result<std::string> key = reader.ReadLengthPrefixedString();
    if (!key.ok()) return key.status();
    Result<uint64_t> value = reader.ReadVarint64();
    if (!value.ok()) return value.status();
    out->attributes.emplace_back(std::move(key).value(), *value);
  }
  Result<uint64_t> child_count = reader.ReadCount("trace children");
  if (!child_count.ok()) return child_count.status();
  out->children.reserve(*child_count);
  for (uint64_t c = 0; c < *child_count; ++c) {
    TraceSpan child;
    const Status status = DecodeTraceSpanAtDepth(reader, &child, depth + 1);
    if (!status.ok()) return status;
    out->children.push_back(std::move(child));
  }
  return Status::OK();
}

}  // namespace

uint64_t TraceSpan::Attr(std::string_view key, uint64_t fallback) const {
  for (const auto& [name, value] : attributes) {
    if (name == key) return value;
  }
  return fallback;
}

const TraceSpan* TraceSpan::Child(std::string_view child_name) const {
  for (const TraceSpan& child : children) {
    if (child.name == child_name) return &child;
  }
  return nullptr;
}

void AppendTraceSpan(std::string* out, const TraceSpan& span) {
  PutLengthPrefixed(out, span.name);
  PutVarint64(out, span.start_us);
  PutVarint64(out, span.duration_us);
  PutVarint64(out, span.attributes.size());
  for (const auto& [key, value] : span.attributes) {
    PutLengthPrefixed(out, key);
    PutVarint64(out, value);
  }
  PutVarint64(out, span.children.size());
  for (const TraceSpan& child : span.children) {
    AppendTraceSpan(out, child);
  }
}

std::string EncodeTraceSpan(const TraceSpan& span) {
  std::string out;
  AppendTraceSpan(&out, span);
  return out;
}

Status DecodeTraceSpan(ByteReader& reader, TraceSpan* out) {
  *out = TraceSpan();
  return DecodeTraceSpanAtDepth(reader, out, 0);
}

Status DecodeTraceSpan(std::string_view bytes, TraceSpan* out) {
  ByteReader reader(bytes);
  const Status status = DecodeTraceSpan(reader, out);
  if (!status.ok()) return status;
  return reader.ExpectDone("trace span");
}

std::string FormatSlowQueryLine(std::string_view who, uint64_t fingerprint,
                                double elapsed_ms, const TraceSpan& root) {
  // Hops and cache tallies live at different depths depending on which
  // daemon built the trace (coordinator hops sit under "scatter"; the
  // library's cache count is an attribute of "scan"); mine them with a
  // small bounded walk instead of hard-coding either shape.
  uint64_t hops = 0;
  uint64_t cache_docs = root.Attr("cache_docs");
  for (const TraceSpan& child : root.children) {
    if (child.name == "hop") ++hops;
    cache_docs += child.Attr("cache_docs");
    for (const TraceSpan& grandchild : child.children) {
      if (grandchild.name == "hop") ++hops;
    }
  }
  char buffer[128];
  std::string line;
  line.append(who).append(": slow-query");
  std::snprintf(buffer, sizeof(buffer),
                " fingerprint=%016" PRIx64 " elapsed_ms=%.3f", fingerprint,
                elapsed_ms);
  line.append(buffer);
  line.append(" stages=[");
  bool first = true;
  for (const TraceSpan& child : root.children) {
    if (!first) line.push_back(',');
    first = false;
    std::snprintf(buffer, sizeof(buffer), "%s:%" PRIu64 "us",
                  child.name.c_str(), child.duration_us);
    line.append(buffer);
  }
  line.push_back(']');
  std::snprintf(buffer, sizeof(buffer),
                " hops=%" PRIu64 " cache_docs=%" PRIu64 " hits=%" PRIu64,
                hops, cache_docs, root.Attr("hits"));
  line.append(buffer);
  return line;
}

QueryTrace::QueryTrace(bool enabled, std::string_view root_name)
    : enabled_(enabled) {
  if (!enabled_) return;
  origin_ = Clock::now();
  Open root;
  root.span.name = std::string(root_name);
  root.started = origin_;
  stack_.push_back(std::move(root));
}

uint64_t QueryTrace::ElapsedUs() const {
  if (!enabled_) return 0;
  return MicrosBetween(origin_, Clock::now());
}

void QueryTrace::Attr(std::string_view key, uint64_t value) {
  if (!enabled_ || stack_.empty()) return;
  stack_.back().span.attributes.emplace_back(std::string(key), value);
}

void QueryTrace::AddChild(TraceSpan child) {
  if (!enabled_ || stack_.empty()) return;
  stack_.back().span.children.push_back(std::move(child));
}

void QueryTrace::Push(std::string_view name) {
  if (!enabled_) return;
  Open open;
  open.span.name = std::string(name);
  open.started = Clock::now();
  open.span.start_us = MicrosBetween(origin_, open.started);
  stack_.push_back(std::move(open));
}

void QueryTrace::Pop() {
  if (!enabled_ || stack_.size() < 2) return;
  Open open = std::move(stack_.back());
  stack_.pop_back();
  open.span.duration_us = MicrosBetween(open.started, Clock::now());
  stack_.back().span.children.push_back(std::move(open.span));
}

TraceSpan QueryTrace::Finish() {
  if (!enabled_ || stack_.empty()) return TraceSpan();
  while (stack_.size() > 1) Pop();
  Open root = std::move(stack_.front());
  stack_.clear();
  root.span.duration_us = MicrosBetween(root.started, Clock::now());
  return std::move(root.span);
}

}  // namespace xks
