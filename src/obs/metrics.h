// xks::MetricsRegistry — the process-wide named-instrument registry behind
// every counter, gauge and latency histogram in the stack.
//
// Instruments are keyed by (name, labels) where `labels` is a pre-rendered
// Prometheus label body ('stage="parse"', 'shard="127.0.0.1:7700"', or
// empty). Creation takes the registry mutex once; the returned pointer is
// stable for the registry's lifetime, so callers resolve their instruments
// up front and the hot path is a relaxed atomic bump with no lookup and no
// lock (per the PR 7 ground rule: the only mutex is XKS_GUARDED_BY-annotated
// and guards the instrument maps, never an increment).
//
// Snapshot() produces a deterministic, stable-ordered copy (families sorted
// by name, points sorted by label body) that renders to Prometheus-style
// text exposition and round-trips through the kStatsReply wire frame
// (EncodeMetricsSnapshot / DecodeMetricsSnapshot, ByteReader fail-closed).
//
// MetricsRegistry::Default() is the shared process registry every component
// falls back to; passing nullptr where a registry is accepted disables
// instrumentation entirely (the bench harness measures exactly that delta).

#ifndef XKS_OBS_METRICS_H_
#define XKS_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/result.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/obs/instruments.h"

namespace xks {

enum class MetricKind : uint8_t {
  kCounter = 0,
  kGauge = 1,
  kHistogram = 2,
};

/// One histogram's frozen state inside a snapshot. `buckets` has
/// bounds.size() + 1 entries (the last is the overflow bucket); counts are
/// per-bucket, not cumulative — TextExposition accumulates for the `le`
/// convention.
struct HistogramData {
  std::vector<double> bounds;
  std::vector<uint64_t> buckets;
  uint64_t count = 0;
  double sum = 0.0;
};

/// One (labels → value) point of a family.
struct MetricPoint {
  std::string labels;
  uint64_t counter_value = 0;
  int64_t gauge_value = 0;
  HistogramData histogram;
};

struct MetricFamily {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::vector<MetricPoint> points;
};

/// A frozen, stable-ordered copy of every instrument in a registry.
struct MetricsSnapshot {
  std::vector<MetricFamily> families;

  /// Prometheus-style text rendering (# TYPE lines, cumulative `le`
  /// histogram buckets, _sum/_count series).
  std::string TextExposition() const;

  /// The family with `name`, or nullptr.
  const MetricFamily* Find(std::string_view name) const;

  /// Sum of counter points in family `name` (0 when absent) — what the CI
  /// consistency asserts read.
  uint64_t CounterTotal(std::string_view name) const;
};

/// The log-scaled latency bucket bounds shared by every duration histogram:
/// powers of two in seconds from 1 microsecond to ~8.4 seconds.
const std::vector<double>& DefaultLatencyBounds();

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The shared process registry (never destroyed).
  static MetricsRegistry* Default();

  /// Finds or creates the instrument named `name` with label body `labels`.
  /// Pointers are stable for the registry's lifetime. A name should be used
  /// with one kind only; kinds live in separate namespaces, so reusing a
  /// name across kinds yields distinct families, not an error.
  Counter* counter(std::string_view name, std::string_view labels = {})
      XKS_EXCLUDES(mutex_);
  Gauge* gauge(std::string_view name, std::string_view labels = {})
      XKS_EXCLUDES(mutex_);
  /// Histograms all share the DefaultLatencyBounds() bucket layout.
  Histogram* histogram(std::string_view name, std::string_view labels = {})
      XKS_EXCLUDES(mutex_);

  /// Deterministic frozen copy of every instrument.
  MetricsSnapshot Snapshot() const XKS_EXCLUDES(mutex_);

 private:
  using Key = std::pair<std::string, std::string>;  // (name, labels)

  mutable Mutex mutex_;
  std::map<Key, std::unique_ptr<Counter>> counters_ XKS_GUARDED_BY(mutex_);
  std::map<Key, std::unique_ptr<Gauge>> gauges_ XKS_GUARDED_BY(mutex_);
  std::map<Key, std::unique_ptr<Histogram>> histograms_ XKS_GUARDED_BY(mutex_);
};

/// Serializes a snapshot for the kStatsReply wire body (no version byte;
/// the frame codec owns versioning).
void AppendMetricsSnapshot(std::string* out, const MetricsSnapshot& snapshot);

/// Fail-closed inverse over untrusted bytes; rejects trailing garbage.
Status DecodeMetricsSnapshot(std::string_view bytes, MetricsSnapshot* out);

}  // namespace xks

#endif  // XKS_OBS_METRICS_H_
