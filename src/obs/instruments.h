// Hot-path metric instruments: Counter, Gauge, Histogram.
//
// Deliberately header-only with no dependency beyond <atomic>: the
// instruments are plain lock-free cells, so code anywhere in the tree
// (including src/common, which xks_obs itself links against) can bump one
// through a pointer without taking a dependency on the registry library.
// Instruments are created and owned by xks::MetricsRegistry
// (src/obs/metrics.h), which hands out stable pointers; increments are
// relaxed atomics — the registry snapshot only promises a consistent-enough
// view for monitoring, never cross-metric atomicity.
//
// Histogram buckets are fixed at construction (log-scaled latency bounds by
// default, see metrics.h) so Observe() is a branchless-ish binary search
// plus three relaxed RMWs — cheap enough to sit on the per-query search
// path (bench/micro_metrics.cc pins the enabled-vs-disabled delta).

#ifndef XKS_OBS_INSTRUMENTS_H_
#define XKS_OBS_INSTRUMENTS_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

namespace xks {

/// A monotonically increasing count. Relaxed increments; read via value().
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A value that can go up and down (queue depths, bytes in use).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A distribution over fixed upper-bound buckets. `bounds` is not owned and
/// must outlive the histogram (the registry keeps one shared bounds vector
/// per bucket layout); bucket i counts observations <= bounds[i], with one
/// extra overflow bucket past the last bound.
class Histogram {
 public:
  explicit Histogram(const std::vector<double>* bounds)
      : bounds_(bounds),
        buckets_(std::make_unique<std::atomic<uint64_t>[]>(bounds->size() + 1)) {
    for (size_t i = 0; i <= bounds_->size(); ++i) buckets_[i].store(0);
  }
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value) {
    // Branch on bounds with a binary search: first bound >= value.
    size_t lo = 0, hi = bounds_->size();
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if ((*bounds_)[mid] < value) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    buckets_[lo].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // Accumulate the sum as raw IEEE-754 bits under a CAS loop; contention
    // is rare (one query finishing at a time per instrument in practice).
    uint64_t observed = sum_bits_.load(std::memory_order_relaxed);
    for (;;) {
      double current;
      static_assert(sizeof(current) == sizeof(observed), "double is 64-bit");
      std::memcpy(&current, &observed, sizeof(current));
      const double next = current + value;
      uint64_t next_bits;
      std::memcpy(&next_bits, &next, sizeof(next_bits));
      if (sum_bits_.compare_exchange_weak(observed, next_bits,
                                          std::memory_order_relaxed)) {
        break;
      }
    }
  }

  const std::vector<double>& bounds() const { return *bounds_; }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const {
    const uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }

 private:
  const std::vector<double>* bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};
};

}  // namespace xks

#endif  // XKS_OBS_INSTRUMENTS_H_
