// xks::QueryTrace — per-query span trees with steady-clock stage timings.
//
// A trace is a tree of named spans, each carrying its start offset and
// duration in microseconds relative to the trace origin plus a small set of
// numeric attributes (document counts, cache hits, deadline budgets). The
// library records stage spans (parse, selection, scan, rank, snippet)
// inside Snapshot::Search; the coordinator adds one child span per shard
// hop carrying the hop's deadline budget vs. actual latency; the daemons
// render a one-line stage breakdown into the slow-query log.
//
// QueryTrace is a single-threaded builder: spans open and close strictly
// LIFO through RAII Scopes, and pre-built spans (shard hops assembled after
// a parallel fan-out) attach via AddChild. A disabled trace never reads the
// clock — every method is a cheap early-out, so `include_trace=false`
// requests pay nothing and stay byte-identical on the wire.
//
// The serialized form (EncodeTraceSpan / DecodeTraceSpan) rides the
// SearchResponse's optional trailing section and is depth-limited and
// fail-closed like every other untrusted decode surface.

#ifndef XKS_OBS_TRACE_H_
#define XKS_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"

namespace xks {

class ByteReader;

/// Nesting deeper than this is rejected as Corruption on decode (real
/// traces are ~4 levels: root → stage → hop → shard stage).
inline constexpr int kMaxTraceDepth = 32;

struct TraceSpan {
  std::string name;
  /// Start offset relative to the trace origin, microseconds.
  uint64_t start_us = 0;
  uint64_t duration_us = 0;
  /// Numeric attributes in recording order (counts, budgets, ids).
  std::vector<std::pair<std::string, uint64_t>> attributes;
  std::vector<TraceSpan> children;

  /// The attribute named `key`, or `fallback` when absent.
  uint64_t Attr(std::string_view key, uint64_t fallback = 0) const;
  /// The first direct child named `name`, or nullptr.
  const TraceSpan* Child(std::string_view name) const;
};

/// Appends the recursive span encoding (length-prefixed name, varint
/// times, attributes, children).
void AppendTraceSpan(std::string* out, const TraceSpan& span);
std::string EncodeTraceSpan(const TraceSpan& span);

/// Fail-closed decode of one span tree from `reader` (leaves trailing bytes
/// for the caller); the string_view overload requires full consumption.
Status DecodeTraceSpan(ByteReader& reader, TraceSpan* out);
Status DecodeTraceSpan(std::string_view bytes, TraceSpan* out);

/// One structured slow-query log line: `who` prefix, query-shape
/// fingerprint, wall time, per-stage breakdown from the root's direct
/// children, hop and cache tallies mined from the attributes.
std::string FormatSlowQueryLine(std::string_view who, uint64_t fingerprint,
                                double elapsed_ms, const TraceSpan& root);

/// Single-threaded span-tree builder. All methods are no-ops when
/// constructed disabled.
class QueryTrace {
 public:
  using Clock = std::chrono::steady_clock;

  explicit QueryTrace(bool enabled, std::string_view root_name = "search");

  bool enabled() const { return enabled_; }

  /// Microseconds since the trace origin (0 when disabled).
  uint64_t ElapsedUs() const;

  /// Sets a numeric attribute on the innermost open span (the root when no
  /// Scope is open).
  void Attr(std::string_view key, uint64_t value);

  /// Attaches a pre-built span under the innermost open span.
  void AddChild(TraceSpan child);

  /// Closes every open span and returns the root. The trace is spent; only
  /// call once, and only when enabled().
  TraceSpan Finish();

  /// RAII stage span: opens on construction, closes (stamping the
  /// duration) on destruction. Scopes must nest strictly.
  class Scope {
   public:
    Scope(QueryTrace& trace, std::string_view name) : trace_(&trace) {
      trace_->Push(name);
    }
    ~Scope() { trace_->Pop(); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    QueryTrace* trace_;
  };

 private:
  friend class Scope;

  void Push(std::string_view name);
  void Pop();

  struct Open {
    TraceSpan span;
    Clock::time_point started;
  };

  bool enabled_;
  Clock::time_point origin_;
  /// stack_[0] is the root; spans close back into their parent's children.
  std::vector<Open> stack_;
};

}  // namespace xks

#endif  // XKS_OBS_TRACE_H_
