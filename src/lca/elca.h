// ELCA algorithms — "all the interesting LCA nodes".
//
// The paper's getLCA stage is the Indexed Stack algorithm of Xu &
// Papakonstantinou (EDBT 2008), which returns the Exclusive LCAs: nodes
// whose subtree still covers every keyword after excluding each maximal
// contains-all strict-descendant subtree. Three implementations of the same
// semantics:
//  * ElcaBruteForce — exhaustive counting oracle.
//  * ElcaStackMerge — sort-merge with a path stack carrying (total,
//    residual) keyword masks; O(Σ|S_i| · d). The classic DIL-style pass.
//  * ElcaIndexedStack — the indexed approach of EDBT'08 reconstructed:
//    candidates are generated from the smallest list by the
//    smallest-contains-all-ancestor kernel, then verified with
//    binary-search range counts against the contains-all children derived
//    from the SLCA set. O(|S_1|·k·d·log + |SLCA|·k·log).
//
// All three are cross-checked in tests/elca_test.cc on randomized trees.

#ifndef XKS_LCA_ELCA_H_
#define XKS_LCA_ELCA_H_

#include <vector>

#include "src/lca/lca.h"

namespace xks {

/// Exhaustive oracle.
std::vector<Dewey> ElcaBruteForce(const KeywordLists& lists);

/// Stack-based sort-merge.
std::vector<Dewey> ElcaStackMerge(const KeywordLists& lists);

/// Indexed Stack reconstruction (the paper's getLCA).
std::vector<Dewey> ElcaIndexedStack(const KeywordLists& lists);

}  // namespace xks

#endif  // XKS_LCA_ELCA_H_
