// SLCA algorithms (Smallest Lowest Common Ancestors).
//
// Three interchangeable implementations of the same semantics — the minimal
// contains-all nodes:
//  * SlcaBruteForce — exhaustive oracle over the prefix closure; O(n·d·k·log)
//    but obviously correct; used by tests and tiny inputs.
//  * SlcaIndexedLookup — Xu & Papakonstantinou's Indexed Lookup Eager
//    (SIGMOD'05): iterate the smallest list, binary-search the others.
//    O(|S_1| · k·d·log |S_max|).
//  * SlcaScanEager — the same paper's Scan Eager: one monotone cursor per
//    list instead of binary searches; O(Σ|S_i| · d) — wins when the lists
//    have comparable sizes.
//  * SlcaStackMerge — sort-merge of all lists with a path stack;
//    O(Σ|S_i| · d · log k).
//
// bench/micro_lca sweeps the crossover between the last two.

#ifndef XKS_LCA_SLCA_H_
#define XKS_LCA_SLCA_H_

#include <vector>

#include "src/lca/lca.h"

namespace xks {

/// Exhaustive oracle.
std::vector<Dewey> SlcaBruteForce(const KeywordLists& lists);

/// Indexed Lookup Eager.
std::vector<Dewey> SlcaIndexedLookup(const KeywordLists& lists);

/// Scan Eager (monotone cursors).
std::vector<Dewey> SlcaScanEager(const KeywordLists& lists);

/// Stack-based sort-merge.
std::vector<Dewey> SlcaStackMerge(const KeywordLists& lists);

}  // namespace xks

#endif  // XKS_LCA_SLCA_H_
