#include "src/lca/lca.h"

#include <algorithm>

#include "src/lca/merge.h"

namespace xks {

bool AnyListEmpty(const KeywordLists& lists) {
  if (lists.empty()) return true;
  for (const PostingList* list : lists) {
    if (list == nullptr || list->empty()) return true;
  }
  return false;
}

size_t SmallestListIndex(const KeywordLists& lists) {
  size_t best = 0;
  for (size_t i = 1; i < lists.size(); ++i) {
    if (lists[i]->size() < lists[best]->size()) best = i;
  }
  return best;
}

bool ContainsAllKeywords(const Dewey& v, const KeywordLists& lists) {
  const Dewey end = v.SubtreeEnd();
  for (const PostingList* list : lists) {
    if (!AnyPostingInRange(*list, v, end)) return false;
  }
  return true;
}

Dewey SmallestContainsAllAncestor(const Dewey& v, const KeywordLists& lists) {
  Dewey x = v;
  for (const PostingList* list : lists) {
    x = Dewey::Lca(x, ClosestPosting(*list, x));
  }
  return x;
}

void SortUniqueDeweys(std::vector<Dewey>* nodes) {
  std::sort(nodes->begin(), nodes->end());
  nodes->erase(std::unique(nodes->begin(), nodes->end()), nodes->end());
}

std::vector<Dewey> ContainsAllNodesBruteForce(const KeywordLists& lists) {
  std::vector<Dewey> result;
  if (AnyListEmpty(lists)) return result;
  // Every contains-all node is an ancestor-or-self of each list's postings,
  // so the prefix closure of (any) one list enumerates all candidates.
  std::vector<Dewey> candidates;
  for (const Dewey& d : *lists[0]) {
    for (size_t depth = 1; depth <= d.depth(); ++depth) {
      candidates.emplace_back(std::vector<uint32_t>(
          d.components().begin(),
          d.components().begin() + static_cast<long>(depth)));
    }
  }
  SortUniqueDeweys(&candidates);
  for (const Dewey& c : candidates) {
    if (ContainsAllKeywords(c, lists)) result.push_back(c);
  }
  return result;
}

std::vector<Dewey> FullLcaBruteForce(const KeywordLists& lists) {
  std::vector<Dewey> result;
  if (AnyListEmpty(lists)) return result;
  for (const Dewey& v : ContainsAllNodesBruteForce(lists)) {
    const Dewey end = v.SubtreeEnd();
    // lca(tuple) == v iff some witness sits at v itself, or two witnesses
    // can be put into different children of v.
    bool witness_at_v = false;
    for (const PostingList* list : lists) {
      size_t i = LowerBoundPosting(*list, v);
      if (i < list->size() && (*list)[i] == v) {
        witness_at_v = true;
        break;
      }
    }
    if (witness_at_v) {
      result.push_back(v);
      continue;
    }
    if (lists.size() < 2) continue;
    // No witness sits at v, so a tuple with LCA exactly v exists iff the
    // postings within v are not all confined to one common child subtree:
    // pick the two diverging witnesses and fill the rest arbitrarily.
    bool all_in_one_child;
    const PostingList& first = *lists[0];
    size_t lo = LowerBoundPosting(first, v);
    // All postings of list 0 within v are strict descendants here.
    uint32_t shared_child = (first)[lo][v.depth()];
    all_in_one_child = true;
    for (const PostingList* list : lists) {
      size_t i = LowerBoundPosting(*list, v);
      size_t j = LowerBoundPosting(*list, end);
      for (size_t p = i; p < j; ++p) {
        if ((*list)[p][v.depth()] != shared_child) {
          all_in_one_child = false;
          break;
        }
      }
      if (!all_in_one_child) break;
    }
    if (!all_in_one_child) result.push_back(v);
  }
  return result;
}


std::vector<Dewey> FullLcaStackMerge(const KeywordLists& lists) {
  std::vector<Dewey> result;
  if (AnyListEmpty(lists)) return result;
  const KeywordMask full = FullMask(lists.size());

  struct Entry {
    Dewey node;
    KeywordMask total = 0;
    /// A posting sits at the node itself.
    bool direct = false;
    /// Distinct children that contributed postings.
    uint32_t contributing_children = 0;
  };
  std::vector<Entry> stack;

  // A witness tuple with LCA exactly v exists iff v contains all keywords
  // and either some witness can sit at v itself, or witnesses can be placed
  // in two different children (see FullLcaBruteForce for the argument).
  auto finalize = [&](Entry&& e, Entry* parent) {
    if (e.total == full && (e.direct || e.contributing_children >= 2)) {
      result.push_back(e.node);
    }
    if (parent != nullptr) {
      parent->total |= e.total;
      parent->contributing_children += 1;
    }
  };

  MergePostings(lists, [&](const Dewey& p, KeywordMask mask) {
    while (!stack.empty() && !stack.back().node.IsAncestorOrSelf(p)) {
      Entry top = std::move(stack.back());
      stack.pop_back();
      const Dewey junction = Dewey::Lca(top.node, p);
      if (stack.empty() || stack.back().node.IsAncestor(junction)) {
        stack.push_back(Entry{junction});
      }
      finalize(std::move(top), stack.empty() ? nullptr : &stack.back());
    }
    Entry entry;
    entry.node = p;
    entry.total = mask;
    entry.direct = true;
    stack.push_back(std::move(entry));
  });
  while (!stack.empty()) {
    Entry top = std::move(stack.back());
    stack.pop_back();
    finalize(std::move(top), stack.empty() ? nullptr : &stack.back());
  }
  std::sort(result.begin(), result.end());
  return result;
}
}  // namespace xks
