// K-way merge of keyword posting lists into one document-order event stream.

#ifndef XKS_LCA_MERGE_H_
#define XKS_LCA_MERGE_H_

#include <functional>
#include <queue>

#include "src/lca/lca.h"

namespace xks {

/// Calls emit(node, mask) once per distinct Dewey across all lists, in
/// ascending document order; `mask` has bit i set when list i holds the node.
/// Heap-based k-way merge: O(Σ|S_i| · log k) comparisons.
inline void MergePostings(
    const KeywordLists& lists,
    const std::function<void(const Dewey&, KeywordMask)>& emit) {
  struct Head {
    const Dewey* dewey;
    size_t list;
    size_t pos;
  };
  auto greater = [](const Head& a, const Head& b) { return *a.dewey > *b.dewey; };
  std::priority_queue<Head, std::vector<Head>, decltype(greater)> heap(greater);
  for (size_t i = 0; i < lists.size(); ++i) {
    if (lists[i] != nullptr && !lists[i]->empty()) {
      heap.push(Head{&(*lists[i])[0], i, 0});
    }
  }
  while (!heap.empty()) {
    Head head = heap.top();
    heap.pop();
    const Dewey& current = *head.dewey;
    KeywordMask mask = KeywordMask{1} << head.list;
    auto advance = [&](Head h) {
      if (h.pos + 1 < lists[h.list]->size()) {
        heap.push(Head{&(*lists[h.list])[h.pos + 1], h.list, h.pos + 1});
      }
    };
    advance(head);
    // Fold in every other list holding the same node.
    while (!heap.empty() && *heap.top().dewey == current) {
      Head dup = heap.top();
      heap.pop();
      mask |= KeywordMask{1} << dup.list;
      advance(dup);
    }
    emit(current, mask);
  }
}

}  // namespace xks

#endif  // XKS_LCA_MERGE_H_
