#include "src/lca/elca.h"

#include <algorithm>

#include "src/lca/merge.h"
#include "src/lca/slca.h"

namespace xks {
namespace {

/// The distinct children of `v` that are ancestors-or-self of a node in the
/// sorted list `marks` (strictly below v). Because "contains all keywords"
/// propagates upward, the maximal contains-all strict descendants of any
/// node are exactly its contains-all children, and a child is contains-all
/// iff it covers an SLCA; `marks` is therefore the SLCA list in the indexed
/// algorithm and the contains-all list in the brute-force oracle.
std::vector<Dewey> CoveringChildren(const Dewey& v, const std::vector<Dewey>& marks) {
  std::vector<Dewey> children;
  const Dewey end = v.SubtreeEnd();
  auto it = std::upper_bound(marks.begin(), marks.end(), v);
  while (it != marks.end() && *it < end) {
    const Dewey& mark = *it;
    Dewey child = v.Child(mark[v.depth()]);
    Dewey child_end = child.SubtreeEnd();
    children.push_back(std::move(child));
    // Skip every mark inside this child: they map to the same child.
    it = std::lower_bound(it, marks.end(), child_end);
  }
  return children;
}

/// True iff, for every list, subtree(v) still holds a posting after
/// excluding the given contains-all children subtrees.
bool HasResidualWitnessForEveryList(const Dewey& v,
                                    const std::vector<Dewey>& excluded_children,
                                    const KeywordLists& lists) {
  const Dewey end = v.SubtreeEnd();
  for (const PostingList* list : lists) {
    size_t total = CountPostingsInRange(*list, v, end);
    if (total == 0) return false;
    size_t covered = 0;
    for (const Dewey& child : excluded_children) {
      covered += CountPostingsInRange(*list, child, child.SubtreeEnd());
    }
    if (total <= covered) return false;
  }
  return true;
}

}  // namespace

std::vector<Dewey> ElcaBruteForce(const KeywordLists& lists) {
  std::vector<Dewey> result;
  if (AnyListEmpty(lists)) return result;
  // Every ELCA is a contains-all node (its residual already covers all
  // keywords), so testing the contains-all closure is exhaustive.
  std::vector<Dewey> contains_all = ContainsAllNodesBruteForce(lists);
  for (const Dewey& v : contains_all) {
    std::vector<Dewey> children = CoveringChildren(v, contains_all);
    if (HasResidualWitnessForEveryList(v, children, lists)) {
      result.push_back(v);
    }
  }
  return result;
}

std::vector<Dewey> ElcaStackMerge(const KeywordLists& lists) {
  std::vector<Dewey> result;
  if (AnyListEmpty(lists)) return result;
  const KeywordMask full = FullMask(lists.size());

  struct Entry {
    Dewey node;
    /// Keywords anywhere in the processed part of this subtree.
    KeywordMask total = 0;
    /// Keywords outside every maximal contains-all descendant subtree.
    KeywordMask residual = 0;
  };
  std::vector<Entry> stack;

  auto finalize = [&](Entry&& e, Entry* parent) {
    const bool contains_all = e.total == full;
    if (e.residual == full) result.push_back(e.node);
    if (parent != nullptr) {
      parent->total |= e.total;
      // A contains-all child is itself the maximal excluded subtree from the
      // parent's point of view; otherwise its exclusions are the parent's.
      if (!contains_all) parent->residual |= e.residual;
    }
  };

  MergePostings(lists, [&](const Dewey& p, KeywordMask mask) {
    while (!stack.empty() && !stack.back().node.IsAncestorOrSelf(p)) {
      Entry top = std::move(stack.back());
      stack.pop_back();
      const Dewey junction = Dewey::Lca(top.node, p);
      if (stack.empty() || stack.back().node.IsAncestor(junction)) {
        stack.push_back(Entry{junction});
      }
      finalize(std::move(top), stack.empty() ? nullptr : &stack.back());
    }
    stack.push_back(Entry{p, mask, mask});
  });
  while (!stack.empty()) {
    Entry top = std::move(stack.back());
    stack.pop_back();
    finalize(std::move(top), stack.empty() ? nullptr : &stack.back());
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<Dewey> ElcaIndexedStack(const KeywordLists& lists) {
  std::vector<Dewey> result;
  if (AnyListEmpty(lists)) return result;
  // Candidate set: the smallest contains-all ancestor of every posting in
  // the smallest list. Every ELCA has a residual witness in that list whose
  // smallest contains-all ancestor is the ELCA itself, so this set is a
  // superset of the answer.
  const size_t smallest = SmallestListIndex(lists);
  std::vector<Dewey> candidates;
  candidates.reserve(lists[smallest]->size());
  for (const Dewey& v : *lists[smallest]) {
    candidates.push_back(SmallestContainsAllAncestor(v, lists));
  }
  SortUniqueDeweys(&candidates);
  // Verification probes exclude the contains-all children, which are the
  // children covering an SLCA.
  const std::vector<Dewey> slcas = SlcaIndexedLookup(lists);
  for (const Dewey& v : candidates) {
    std::vector<Dewey> children = CoveringChildren(v, slcas);
    if (HasResidualWitnessForEveryList(v, children, lists)) {
      result.push_back(v);
    }
  }
  return result;
}

}  // namespace xks
