// Shared machinery for the LCA algorithm family.
//
// All algorithms consume keyword node lists: one sorted Dewey posting list
// per query keyword (D_i in the paper). They return sorted node lists.
//
// Terminology used across src/lca/ (following Xu & Papakonstantinou):
//  * a node v "contains all keywords" when subtree(v) holds at least one
//    posting from every list;
//  * SLCA: minimal contains-all nodes (no contains-all strict descendant);
//  * ELCA ("all the interesting LCA nodes" that [12]'s Indexed Stack returns
//    and that the paper's getLCA uses): nodes that still contain every
//    keyword after excluding each maximal contains-all strict-descendant
//    subtree. SLCA ⊆ ELCA.

#ifndef XKS_LCA_LCA_H_
#define XKS_LCA_LCA_H_

#include <cstdint>
#include <vector>

#include "src/index/inverted_index.h"
#include "src/xml/dewey.h"

namespace xks {

/// One posting list per query keyword. Lists are borrowed, never owned.
using KeywordLists = std::vector<const PostingList*>;

/// Internal keyword mask: bit i (LSB order) = keyword i. Queries are capped
/// at 64 keywords, far beyond anything in the paper's workloads.
using KeywordMask = uint64_t;

inline constexpr size_t kMaxQueryKeywords = 64;

/// The all-keywords mask for `k` lists.
inline KeywordMask FullMask(size_t k) {
  return k >= 64 ? ~KeywordMask{0} : ((KeywordMask{1} << k) - 1);
}

/// True iff any list is null/empty (no node can contain all keywords) or
/// there are no lists at all.
bool AnyListEmpty(const KeywordLists& lists);

/// Index of the shortest list (the algorithms iterate over it).
size_t SmallestListIndex(const KeywordLists& lists);

/// True iff subtree(v) holds at least one posting from every list
/// (O(k log n) range probes).
bool ContainsAllKeywords(const Dewey& v, const KeywordLists& lists);

/// The smallest (deepest) ancestor-or-self of `v` whose subtree contains all
/// keywords. This is the per-witness kernel shared by Indexed Lookup SLCA
/// and the ELCA candidate generator: fold x := lca(x, closest(S_i, x)) over
/// the lists. Requires no empty list.
Dewey SmallestContainsAllAncestor(const Dewey& v, const KeywordLists& lists);

/// Sorts and deduplicates a node list in document order.
void SortUniqueDeweys(std::vector<Dewey>* nodes);

/// All "contains-all" nodes, computed exhaustively from the prefix closure
/// of the first list's postings (test oracle; also documents the semantics).
std::vector<Dewey> ContainsAllNodesBruteForce(const KeywordLists& lists);

/// Full LCA semantics of [4] (XRank): every node that is the LCA of some
/// witness tuple (x_1,...,x_k), x_i from list i. Exhaustive oracle used by
/// tests and the quickstart illustration; equals the contains-all nodes that
/// either hold a posting themselves or branch over two lists.
std::vector<Dewey> FullLcaBruteForce(const KeywordLists& lists);

/// Efficient full-LCA computation: one stack-merge pass, O(Σ|S_i| · d).
/// A contains-all node is a full LCA iff it holds a posting itself or
/// received contributions from at least two distinct children.
std::vector<Dewey> FullLcaStackMerge(const KeywordLists& lists);

}  // namespace xks

#endif  // XKS_LCA_LCA_H_
