#include "src/lca/slca.h"

#include <algorithm>

#include "src/lca/merge.h"

namespace xks {

std::vector<Dewey> SlcaBruteForce(const KeywordLists& lists) {
  std::vector<Dewey> contains_all = ContainsAllNodesBruteForce(lists);
  // Minimal elements: in sorted order any strict descendant of c would
  // immediately follow c, so checking the successor suffices.
  std::vector<Dewey> result;
  for (size_t i = 0; i < contains_all.size(); ++i) {
    if (i + 1 < contains_all.size() &&
        contains_all[i].IsAncestor(contains_all[i + 1])) {
      continue;
    }
    result.push_back(contains_all[i]);
  }
  return result;
}

std::vector<Dewey> SlcaIndexedLookup(const KeywordLists& lists) {
  std::vector<Dewey> result;
  if (AnyListEmpty(lists)) return result;
  const size_t smallest = SmallestListIndex(lists);
  std::vector<Dewey> candidates;
  candidates.reserve(lists[smallest]->size());
  for (const Dewey& v : *lists[smallest]) {
    candidates.push_back(SmallestContainsAllAncestor(v, lists));
  }
  SortUniqueDeweys(&candidates);
  // Every SLCA appears among the candidates (witness inside it) and no
  // candidate is a strict descendant of an SLCA, so the SLCAs are exactly
  // the candidates with no candidate strictly below them.
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (i + 1 < candidates.size() && candidates[i].IsAncestor(candidates[i + 1])) {
      continue;
    }
    result.push_back(candidates[i]);
  }
  return result;
}

std::vector<Dewey> SlcaScanEager(const KeywordLists& lists) {
  std::vector<Dewey> result;
  if (AnyListEmpty(lists)) return result;
  const size_t smallest = SmallestListIndex(lists);
  const PostingList& witnesses = *lists[smallest];

  // One monotone cursor per list: cursor[i] is the first posting > v. As
  // the witnesses ascend, each cursor only moves forward, so the whole pass
  // is O(Σ|S_i|) cursor steps (the "eager scan" of the SIGMOD'05 paper).
  std::vector<size_t> cursor(lists.size(), 0);
  std::vector<Dewey> candidates;
  candidates.reserve(witnesses.size());
  for (const Dewey& v : witnesses) {
    // The smallest contains-all ancestor of v is the shallowest over the
    // lists of "smallest ancestor of v containing some posting of list i"
    // (each is an ancestor of v, so they form a chain).
    Dewey x = v;
    for (size_t i = 0; i < lists.size(); ++i) {
      if (i == smallest) continue;
      const PostingList& list = *lists[i];
      size_t& c = cursor[i];
      while (c < list.size() && list[c] <= v) ++c;
      const Dewey* left = c > 0 ? &list[c - 1] : nullptr;
      const Dewey* right = c < list.size() ? &list[c] : nullptr;
      Dewey left_lca = left ? Dewey::Lca(*left, v) : Dewey();
      Dewey right_lca = right ? Dewey::Lca(*right, v) : Dewey();
      const Dewey& xi =
          left_lca.depth() >= right_lca.depth() ? left_lca : right_lca;
      if (xi.empty()) return result;  // unreachable: list is non-empty
      if (xi.depth() < x.depth()) x = xi;
    }
    candidates.push_back(std::move(x));
  }
  SortUniqueDeweys(&candidates);
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (i + 1 < candidates.size() && candidates[i].IsAncestor(candidates[i + 1])) {
      continue;
    }
    result.push_back(candidates[i]);
  }
  return result;
}

std::vector<Dewey> SlcaStackMerge(const KeywordLists& lists) {
  std::vector<Dewey> result;
  if (AnyListEmpty(lists)) return result;
  const KeywordMask full = FullMask(lists.size());

  struct Entry {
    Dewey node;
    KeywordMask total = 0;
    bool has_full_descendant = false;
  };
  std::vector<Entry> stack;

  auto finalize = [&](Entry&& e, Entry* parent) {
    const bool contains_all = e.total == full;
    if (contains_all && !e.has_full_descendant) result.push_back(e.node);
    if (parent != nullptr) {
      parent->total |= e.total;
      parent->has_full_descendant |= contains_all || e.has_full_descendant;
    }
  };

  MergePostings(lists, [&](const Dewey& p, KeywordMask mask) {
    while (!stack.empty() && !stack.back().node.IsAncestorOrSelf(p)) {
      Entry top = std::move(stack.back());
      stack.pop_back();
      const Dewey junction = Dewey::Lca(top.node, p);
      if (!stack.empty() && stack.back().node.IsAncestor(junction)) {
        stack.push_back(Entry{junction});
      } else if (stack.empty()) {
        stack.push_back(Entry{junction});
      }
      finalize(std::move(top), stack.empty() ? nullptr : &stack.back());
    }
    stack.push_back(Entry{p, mask});
  });
  while (!stack.empty()) {
    Entry top = std::move(stack.back());
    stack.pop_back();
    finalize(std::move(top), stack.empty() ? nullptr : &stack.back());
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace xks
