// Result<T>: a Status or a value, for APIs that produce something on success.

#ifndef XKS_COMMON_RESULT_H_
#define XKS_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/common/status.h"

namespace xks {

/// Holds either a value of type T or a non-OK Status.
///
///   Result<Document> r = ParseDocument(text);
///   if (!r.ok()) return r.status();
///   Document doc = std::move(r).value();
///
/// [[nodiscard]] for the same reason as Status: dropping a Result drops an
/// error (and a value someone paid to compute). Enforced repo-wide by
/// -Werror=unused-result; intentional drops use static_cast<void>(...).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a successful Result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Constructs a failed Result from a non-OK status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }

  /// The status; OK when a value is present.
  const Status& status() const { return status_; }

  /// The held value. Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

#define XKS_MACRO_CONCAT_IMPL(a, b) a##b
#define XKS_MACRO_CONCAT(a, b) XKS_MACRO_CONCAT_IMPL(a, b)

/// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define XKS_ASSIGN_OR_RETURN(lhs, expr)                                     \
  auto XKS_MACRO_CONCAT(_xks_result_, __LINE__) = (expr);                   \
  if (!XKS_MACRO_CONCAT(_xks_result_, __LINE__).ok())                       \
    return XKS_MACRO_CONCAT(_xks_result_, __LINE__).status();               \
  lhs = std::move(XKS_MACRO_CONCAT(_xks_result_, __LINE__)).value()

}  // namespace xks

#endif  // XKS_COMMON_RESULT_H_
