#include "src/common/status.h"

namespace xks {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace xks
