#include "src/common/fingerprint.h"

#include <cstring>

#include "src/common/codec.h"

namespace xks {

uint64_t Fnv1a64(std::string_view data, uint64_t seed) {
  uint64_t hash = seed;
  for (char c : data) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

void Fingerprint::PutVarint32(uint32_t value) {
  xks::PutVarint32(&material_, value);
}

void Fingerprint::PutVarint64(uint64_t value) {
  xks::PutVarint64(&material_, value);
}

void Fingerprint::PutDoubles(const double* values, size_t count) {
  material_.append(reinterpret_cast<const char*>(values),
                   count * sizeof(double));
}

}  // namespace xks
