// xks::Mutex / xks::MutexLock / xks::CondVar — annotatable, zero-overhead
// wrappers over the std synchronization primitives.
//
// Why wrappers: Clang's -Wthread-safety analysis can only check code whose
// lock types carry capability annotations, and std::mutex carries none. The
// wrappers are the thinnest possible annotated shell — every method is a
// single inlined forwarding call, there are no virtuals, no extra state and
// no extra atomics, so the generated code is byte-for-byte what the bare
// std primitives produce (bench/micro_parallel_scan and micro_result_cache
// pin this: BENCH_pr7.json sits inside the 1.25x trajectory gate).
//
// All locking code under src/ goes through these types; tools/lint.py
// rejects bare std::mutex / std::lock_guard / std::unique_lock /
// std::condition_variable anywhere under src/ except this file.
//
// Condition-variable idiom. Write waits as explicit loops over guarded
// state, with the predicate inline in the locked scope:
//
//   MutexLock lock(mu_);
//   while (queue_.empty() && !shutdown_) not_empty_.Wait(lock);
//
// (not as a lambda predicate passed into Wait): the analysis checks the
// enclosing function body, so the guarded reads in the loop condition are
// provably under the lock. The predicate/timed overloads exist for
// self-contained state that is not guarded-field-based.

#ifndef XKS_COMMON_MUTEX_H_
#define XKS_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "src/common/thread_annotations.h"

namespace xks {

class CondVar;

/// An annotated std::mutex. Prefer MutexLock over manual Lock/Unlock
/// pairing; the manual methods exist for the rare non-scoped protocol.
class XKS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() XKS_ACQUIRE() { raw_.lock(); }
  void Unlock() XKS_RELEASE() { raw_.unlock(); }

  /// Acquires without blocking when free; returns whether it acquired.
  /// Calling on a thread that already holds this mutex is undefined
  /// behaviour (same contract as std::mutex::try_lock).
  bool TryLock() XKS_TRY_ACQUIRE(true) { return raw_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex raw_;
};

/// RAII lock over a Mutex; the only way CondVar can wait. Holds for its
/// full scope — there is deliberately no early-unlock surface, which keeps
/// the scope the analysis sees identical to the scope the code has.
class XKS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) XKS_ACQUIRE(mu) : lock_(mu.raw_) {}
  ~MutexLock() XKS_RELEASE() {}  // lock_'s destructor does the unlock

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// An annotated std::condition_variable, waitable only through a held
/// MutexLock (so a wait without the lock is a compile error, not UB).
///
/// Wait/WaitFor/WaitUntil carry no REQUIRES annotation — the analysis
/// cannot express "requires the mutex behind `lock`" — but the MutexLock&
/// parameter makes the requirement structural: the caller cannot produce
/// one without holding the mutex. Spurious wakeups happen; always re-check
/// the predicate (use the explicit-loop idiom from the file comment).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock`, blocks, and re-acquires before returning.
  void Wait(MutexLock& lock) { raw_.wait(lock.lock_); }

  /// Waits until `pred()` is true. Only for predicates over state that is
  /// not lock-guarded (see the file comment for guarded state).
  template <typename Predicate>
  void Wait(MutexLock& lock, Predicate pred) {
    raw_.wait(lock.lock_, std::move(pred));
  }

  /// Blocks until notified or `deadline`; false on timeout. The lock is
  /// re-held either way.
  template <typename Clock, typename Duration>
  bool WaitUntil(MutexLock& lock,
                 const std::chrono::time_point<Clock, Duration>& deadline) {
    return raw_.wait_until(lock.lock_, deadline) == std::cv_status::no_timeout;
  }

  /// Blocks until notified or `timeout` elapses; false on timeout.
  template <typename Rep, typename Period>
  bool WaitFor(MutexLock& lock,
               const std::chrono::duration<Rep, Period>& timeout) {
    return raw_.wait_for(lock.lock_, timeout) == std::cv_status::no_timeout;
  }

  void NotifyOne() { raw_.notify_one(); }
  void NotifyAll() { raw_.notify_all(); }

 private:
  std::condition_variable raw_;
};

}  // namespace xks

#endif  // XKS_COMMON_MUTEX_H_
