// Deterministic pseudo-random source for data generation and property tests.
//
// All dataset generators take an explicit seed so every experiment in
// EXPERIMENTS.md is exactly reproducible.

#ifndef XKS_COMMON_RANDOM_H_
#define XKS_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace xks {

/// xoshiro-style 64-bit generator (splitmix64 core): tiny, fast, and stable
/// across platforms (unlike std::mt19937 distributions, whose mapping to
/// ranges is implementation-defined through std::uniform_int_distribution).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return (Next() >> 11) * (1.0 / 9007199254740992.0) < p;
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * (1.0 / 9007199254740992.0); }

  /// Picks a uniformly random element of `v`. Requires !v.empty().
  template <typename T>
  const T& Choice(const std::vector<T>& v) {
    return v[Uniform(v.size())];
  }

 private:
  uint64_t state_;
};

}  // namespace xks

#endif  // XKS_COMMON_RANDOM_H_
