#include "src/common/codec.h"

// The one sanctioned home of raw offset arithmetic over untrusted bytes
// (see the header comment and the decode-safety rule in tools/lint.py).
// Every index below is guarded by an explicit remaining()/size check first.

namespace xks {

void PutVarint64(std::string* dst, uint64_t value) {
  while (value >= 0x80) {
    dst->push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  dst->push_back(static_cast<char>(value));
}

void PutVarint32(std::string* dst, uint32_t value) { PutVarint64(dst, value); }

void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

void PutFixedU32BE(std::string* dst, uint32_t value) {
  dst->push_back(static_cast<char>((value >> 24) & 0xff));
  dst->push_back(static_cast<char>((value >> 16) & 0xff));
  dst->push_back(static_cast<char>((value >> 8) & 0xff));
  dst->push_back(static_cast<char>(value & 0xff));
}

Result<uint8_t> ByteReader::ReadU8() {
  if (pos_ >= data_.size()) return Status::Corruption("truncated byte");
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint32_t> ByteReader::ReadFixedU32BE() {
  if (remaining() < 4) return Status::Corruption("truncated fixed u32");
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value = (value << 8) | static_cast<uint8_t>(data_[pos_++]);
  }
  return value;
}

Result<uint64_t> ByteReader::ReadVarint64() {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63; shift += 7) {
    if (pos_ >= data_.size()) return Status::Corruption("truncated varint");
    const uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    // The 10th group holds bit 63 alone: any higher payload bit — or a
    // continuation into an 11th group — cannot fit a u64.
    if (shift == 63 && (byte & ~uint8_t{1}) != 0) {
      return Status::Corruption("varint overflows 64 bits");
    }
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return result;
  }
  return Status::Corruption("varint too long");
}

Result<uint32_t> ByteReader::ReadVarint32() {
  uint64_t v64 = 0;
  XKS_ASSIGN_OR_RETURN(v64, ReadVarint64());
  if (v64 > UINT32_MAX) return Status::Corruption("varint32 overflow");
  return static_cast<uint32_t>(v64);
}

Result<std::string_view> ByteReader::ReadBytes(size_t n) {
  if (n > remaining()) return Status::Corruption("truncated bytes");
  std::string_view span = data_.substr(pos_, n);
  pos_ += n;
  return span;
}

Result<std::string_view> ByteReader::ReadLengthPrefixedSpan() {
  uint64_t len = 0;
  XKS_ASSIGN_OR_RETURN(len, ReadVarint64());
  if (len > remaining()) return Status::Corruption("truncated string");
  return ReadBytes(static_cast<size_t>(len));
}

Result<std::string> ByteReader::ReadLengthPrefixedString() {
  std::string_view span;
  XKS_ASSIGN_OR_RETURN(span, ReadLengthPrefixedSpan());
  return std::string(span);
}

Result<uint64_t> ByteReader::ReadCount(const char* what) {
  uint64_t count = 0;
  XKS_ASSIGN_OR_RETURN(count, ReadVarint64());
  if (count > remaining()) {
    return Status::Corruption(std::string("implausible ") + what);
  }
  return count;
}

Status ByteReader::ExpectDone(const char* what) const {
  if (!done()) {
    return Status::Corruption(std::string(what) + " has " +
                              std::to_string(remaining()) + " trailing bytes");
  }
  return Status::OK();
}

}  // namespace xks
