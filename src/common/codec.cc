#include "src/common/codec.h"

namespace xks {

void PutVarint64(std::string* dst, uint64_t value) {
  while (value >= 0x80) {
    dst->push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  dst->push_back(static_cast<char>(value));
}

void PutVarint32(std::string* dst, uint32_t value) { PutVarint64(dst, value); }

void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

Status Decoder::GetVarint64(uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63; shift += 7) {
    if (pos_ >= data_.size()) {
      return Status::Corruption("truncated varint");
    }
    uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return Status::OK();
    }
  }
  return Status::Corruption("varint too long");
}

Status Decoder::GetVarint32(uint32_t* value) {
  uint64_t v64 = 0;
  XKS_RETURN_IF_ERROR(GetVarint64(&v64));
  if (v64 > UINT32_MAX) return Status::Corruption("varint32 overflow");
  *value = static_cast<uint32_t>(v64);
  return Status::OK();
}

Status Decoder::GetLengthPrefixed(std::string* value) {
  uint64_t len = 0;
  XKS_RETURN_IF_ERROR(GetVarint64(&len));
  if (len > remaining()) return Status::Corruption("truncated string");
  value->assign(data_.data() + pos_, len);
  pos_ += len;
  return Status::OK();
}

}  // namespace xks
