#include "src/common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace xks {

std::string AsciiLower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    out.push_back(c);
  }
  return out;
}

bool IsAlnumAscii(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9');
}

std::vector<std::string> SplitString(std::string_view s, std::string_view delims) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || delims.find(s[i]) != std::string_view::npos) {
      if (i > start) out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v';
  };
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace xks
