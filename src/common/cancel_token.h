// Cooperative cancellation for long-running work.
//
// A CancelSource owns a cancellation flag; the CancelTokens it hands out
// observe that flag plus an optional deadline of their own. Work loops poll
// token.cancelled() at natural checkpoints (between pipeline stages, before
// claiming the next document of a corpus scan) and unwind with
// token.status() — there is no preemption, which is exactly what makes
// cancellation safe to thread through WorkerPool::ParallelFor and
// ExecuteSearch: a cancelled scan stops *dispatching* new work while every
// claimed unit still runs to completion, preserving the contiguous-prefix
// contract the corpus merge depends on.
//
// Tokens are cheap value types. A default-constructed token can never fire
// (no flag, no deadline) and its cancelled() is two branch-free compares, so
// the uncancellable fast path — every pre-existing caller — pays nothing.
// Deriving a deadline-bearing token (WithDeadline / WithDeadlineAfter)
// shares the source's flag and tightens the deadline monotonically, so a
// server can stack "client disconnected" (flag) on top of "request deadline"
// (time) on top of a library caller's own budget, and the earliest of them
// wins.
//
// Concurrency contract (formal — there is no mutex here to annotate, the
// whole type is built on one shared atomic plus immutable value state):
//
//   * CancelSource::Cancel, CancelSource::cancelled and every CancelToken
//     accessor are callable concurrently from any thread without external
//     synchronization. The shared flag is the only mutable state and is
//     only ever written true (release) and read (acquire); the deadline is
//     immutable after construction.
//   * Both firing conditions are monotonic: once cancelled() has returned
//     true it returns true forever, and status() is then guaranteed
//     non-OK. Callers may therefore check cancelled() first and call
//     status() for the reason without re-racing.
//   * Constructing, copying and deriving tokens (WithDeadline /
//     WithDeadlineAfter) is NOT synchronized with concurrent writes to the
//     same token object: tokens are value types — share by copy, never by
//     concurrent mutation of one instance.

#ifndef XKS_COMMON_CANCEL_TOKEN_H_
#define XKS_COMMON_CANCEL_TOKEN_H_

#include <atomic>
#include <chrono>
#include <memory>

#include "src/common/status.h"

namespace xks {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// A token that can never fire.
  CancelToken() = default;

  /// True once the source fired or the deadline passed. Safe and cheap to
  /// poll from any thread; tokens without a deadline never read the clock.
  bool cancelled() const {
    if (flag_ != nullptr && flag_->load(std::memory_order_acquire)) return true;
    return deadline_ != Clock::time_point::max() && Clock::now() >= deadline_;
  }

  /// True when this token could ever fire (it observes a source or carries a
  /// deadline). Lets hot loops skip the poll entirely for inert tokens.
  bool can_expire() const {
    return flag_ != nullptr || deadline_ != Clock::time_point::max();
  }

  /// Why the token fired: Cancelled when the source was fired (explicit
  /// cancellation wins over a deadline that also happens to have passed),
  /// DeadlineExceeded when only the deadline passed, OK while live.
  Status status() const;

  /// A derived token sharing this token's source, with its deadline
  /// tightened to min(current, `deadline`). Never loosens.
  CancelToken WithDeadline(Clock::time_point deadline) const;

  /// WithDeadline(now + budget).
  CancelToken WithDeadlineAfter(std::chrono::milliseconds budget) const;

  bool has_deadline() const { return deadline_ != Clock::time_point::max(); }
  Clock::time_point deadline() const { return deadline_; }

 private:
  friend class CancelSource;

  std::shared_ptr<const std::atomic<bool>> flag_;
  Clock::time_point deadline_ = Clock::time_point::max();
};

/// Owns the flag behind a family of CancelTokens.
class CancelSource {
 public:
  CancelSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Fires every token derived from this source. Idempotent, thread-safe.
  void Cancel() { flag_->store(true, std::memory_order_release); }

  bool cancelled() const { return flag_->load(std::memory_order_acquire); }

  /// A token observing this source (no deadline; derive one with
  /// CancelToken::WithDeadline as needed).
  CancelToken token() const;

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace xks

#endif  // XKS_COMMON_CANCEL_TOKEN_H_
