// Small string helpers shared across the library.

#ifndef XKS_COMMON_STRING_UTIL_H_
#define XKS_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace xks {

/// ASCII-lowercases `s` (the library treats all content case-insensitively,
/// matching the paper's lexical comparisons, e.g. "attribute" < "Chen" < "XML").
std::string AsciiLower(std::string_view s);

/// True iff `c` is an ASCII letter or digit.
bool IsAlnumAscii(char c);

/// Splits `s` on any character in `delims`, dropping empty pieces.
std::vector<std::string> SplitString(std::string_view s, std::string_view delims);

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view s);

/// True iff `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace xks

#endif  // XKS_COMMON_STRING_UTIL_H_
