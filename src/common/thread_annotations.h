// Clang thread-safety-analysis annotation macros (the Abseil/LLVM pattern).
//
// These macros attach locking contracts to types, fields and functions so
// that Clang's -Wthread-safety analysis can prove, at compile time, that
// every access to a guarded field happens under its mutex and that every
// `...Locked()` helper is only reachable with the right lock held. Under
// any other compiler (or when the analysis is off) they expand to nothing,
// so annotated code stays portable and zero-cost.
//
// The annotations only bite on types that are themselves declared as
// capabilities — use xks::Mutex / xks::MutexLock / xks::CondVar
// (src/common/mutex.h), not the raw std primitives (tools/lint.py rejects
// bare std::mutex under src/ for exactly this reason).
//
// Conventions for new code:
//   * every field written by more than one thread gets XKS_GUARDED_BY(mu_);
//   * every private helper that assumes the lock is held is named
//     `...Locked()` and annotated XKS_REQUIRES(mu_);
//   * public entry points that must NOT be called with the lock held (they
//     take it themselves) may add XKS_EXCLUDES(mu_) when re-entry is a
//     plausible bug;
//   * XKS_NO_THREAD_SAFETY_ANALYSIS is a last resort and must carry a
//     justification comment on the preceding line (enforced by
//     tools/lint.py).
//
// CI compiles the tree with clang and -Werror=thread-safety
// -Werror=thread-safety-beta (the `static-analysis` job), so a missing or
// wrong annotation is a build break, not a TSan flake.

#ifndef XKS_COMMON_THREAD_ANNOTATIONS_H_
#define XKS_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define XKS_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define XKS_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

/// Declares a type to be a lockable capability ("mutex" names the kind in
/// diagnostics).
#define XKS_CAPABILITY(x) XKS_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type whose constructor acquires and destructor releases
/// a capability.
#define XKS_SCOPED_CAPABILITY XKS_THREAD_ANNOTATION_(scoped_lockable)

/// Field/variable may only be read or written while holding `x`.
#define XKS_GUARDED_BY(x) XKS_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer field: the *pointed-to* data may only be accessed while
/// holding `x` (the pointer itself is unguarded).
#define XKS_PT_GUARDED_BY(x) XKS_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function may only be called while holding the given capabilities.
#define XKS_REQUIRES(...) \
  XKS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function may only be called while NOT holding the given capabilities
/// (it acquires them itself; calling with them held would deadlock).
#define XKS_EXCLUDES(...) XKS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define XKS_ACQUIRE(...) \
  XKS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define XKS_RELEASE(...) \
  XKS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `result`.
#define XKS_TRY_ACQUIRE(result, ...) \
  XKS_THREAD_ANNOTATION_(try_acquire_capability(result, __VA_ARGS__))

/// Asserts (for the analysis, not at runtime) that the capability is held.
#define XKS_ASSERT_CAPABILITY(x) \
  XKS_THREAD_ANNOTATION_(assert_capability(x))

/// Returns a reference to the mutex guarding this function's result.
#define XKS_RETURN_CAPABILITY(x) XKS_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: turns the analysis off for one function. Every use must
/// carry a justification comment on the preceding line; tools/lint.py
/// fails the build otherwise.
#define XKS_NO_THREAD_SAFETY_ANALYSIS \
  XKS_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // XKS_COMMON_THREAD_ANNOTATIONS_H_
