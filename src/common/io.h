// Whole-file binary I/O helpers shared by the persistence layers.

#ifndef XKS_COMMON_IO_H_
#define XKS_COMMON_IO_H_

#include <string>

#include "src/common/result.h"

namespace xks {

/// Reads the entire file at `path` into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes `data` to `path`, replacing any existing file.
Status WriteStringToFile(const std::string& path, const std::string& data);

}  // namespace xks

#endif  // XKS_COMMON_IO_H_
