// XKS_CHECK / XKS_DCHECK — runtime invariant assertions for the handful of
// properties the static analysis cannot express.
//
// The thread-safety annotations (src/common/thread_annotations.h) prove
// lock discipline at compile time; these macros cover the residue — value
// invariants that hold *because* of the locking protocol but are not
// themselves lock facts (a claim counter that must never exceed its bound,
// byte accounting that must never underflow). XKS_CHECK is always on and
// aborts with file:line plus the failed expression; XKS_DCHECK compiles to
// the same in debug builds and to nothing under NDEBUG, so hot paths can
// assert freely.
//
// These are for programming errors (invariant breakage), never for input
// validation — user-facing errors must surface as Status/Result.

#ifndef XKS_COMMON_CHECK_H_
#define XKS_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace xks {
namespace internal {

[[noreturn]] inline void CheckFail(const char* expression, const char* file,
                                   int line) {
  // fprintf, not iostreams: this must work mid-corruption, with no
  // allocation and no locale machinery in the way.
  std::fprintf(stderr, "XKS_CHECK failed at %s:%d: %s\n", file, line,
               expression);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace xks

/// Aborts the process when `condition` is false. Always on.
#define XKS_CHECK(condition)                                        \
  (static_cast<bool>(condition)                                     \
       ? static_cast<void>(0)                                       \
       : ::xks::internal::CheckFail(#condition, __FILE__, __LINE__))

/// XKS_CHECK in debug builds; vanishes (condition unevaluated) under
/// NDEBUG. Only for invariants too hot to check in release.
#ifdef NDEBUG
#define XKS_DCHECK(condition) static_cast<void>(0)
#else
#define XKS_DCHECK(condition) XKS_CHECK(condition)
#endif

#endif  // XKS_COMMON_CHECK_H_
