// Binary encoding/decoding primitives shared by every byte format in the
// tree (on-disk XKS tables and corpora, the xksd wire protocol, cursors).
//
// Decoding discipline. Every decoder in this repository consumes untrusted
// bytes — network peers, corpus files from disk, client-supplied tokens —
// through the bounds-checked ByteReader below and nothing else. ByteReader
// is fail-closed: every read either returns a value after checking the
// bytes exist, or a Corruption Status; no read ever touches memory past the
// buffer, and a hostile length or count can never drive an allocation
// larger than the input that carried it (ReadCount). tools/lint.py enforces
// the discipline tree-wide: raw memcpy / reinterpret_cast / manual offset
// arithmetic inside Decode*/Parse* functions is a lint error everywhere but
// this file and codec.cc, which hold the only sanctioned offset arithmetic.

#ifndef XKS_COMMON_CODEC_H_
#define XKS_COMMON_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/result.h"
#include "src/common/status.h"

namespace xks {

/// Appends an unsigned LEB128 varint to `dst`.
void PutVarint64(std::string* dst, uint64_t value);

/// Appends a 32-bit varint.
void PutVarint32(std::string* dst, uint32_t value);

/// Appends a length-prefixed string.
void PutLengthPrefixed(std::string* dst, std::string_view value);

/// Appends a fixed-width big-endian u32 (the wire frame length prefix).
void PutFixedU32BE(std::string* dst, uint32_t value);

/// Bounds-checked cursor over an untrusted encoded buffer. All reads are
/// fail-closed: they verify the bytes exist before touching them and return
/// Corruption when the buffer is exhausted or malformed. The buffer is not
/// owned; the view must outlive the reader (and the spans it hands out).
///
/// Invariant: remaining() only ever decreases, by exactly the bytes a
/// successful read consumed; a failed read leaves no usable position (the
/// decode must be abandoned).
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data), pos_(0) {}

  /// One raw byte.
  Result<uint8_t> ReadU8();

  /// Four raw bytes as a big-endian u32.
  Result<uint32_t> ReadFixedU32BE();

  /// An unsigned LEB128 varint. Strict: at most 10 groups, and bits past
  /// position 63 must be zero (a non-canonical 10th byte > 1 is Corruption,
  /// not silent truncation).
  Result<uint64_t> ReadVarint64();

  /// A varint that must fit 32 bits.
  Result<uint32_t> ReadVarint32();

  /// The next `n` raw bytes as a view into the buffer.
  Result<std::string_view> ReadBytes(size_t n);

  /// A varint length followed by that many bytes, as a view.
  Result<std::string_view> ReadLengthPrefixedSpan();

  /// A varint length followed by that many bytes, copied out.
  Result<std::string> ReadLengthPrefixedString();

  /// A varint element count, rejected as Corruption("implausible <what>")
  /// when it exceeds remaining(). Every decodable element consumes at least
  /// one input byte, so any larger count cannot be satisfied — and must be
  /// rejected *before* it sizes a reserve/resize, so a hostile count can
  /// never become a memory-exhaustion primitive.
  Result<uint64_t> ReadCount(const char* what);

  /// Bytes not yet consumed.
  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

  /// The unconsumed suffix, without consuming it.
  std::string_view rest() const { return data_.substr(pos_); }

  /// OK when the buffer is fully consumed; Corruption("<what> has N
  /// trailing bytes") otherwise. Strict decoders call this last so trailing
  /// garbage cannot ride along behind a valid prefix.
  Status ExpectDone(const char* what) const;

 private:
  std::string_view data_;
  size_t pos_;
};

}  // namespace xks

#endif  // XKS_COMMON_CODEC_H_
