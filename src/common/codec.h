// Binary encoding helpers for the on-disk table format (varint + strings).

#ifndef XKS_COMMON_CODEC_H_
#define XKS_COMMON_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace xks {

/// Appends an unsigned LEB128 varint to `dst`.
void PutVarint64(std::string* dst, uint64_t value);

/// Appends a 32-bit varint.
void PutVarint32(std::string* dst, uint32_t value);

/// Appends a length-prefixed string.
void PutLengthPrefixed(std::string* dst, std::string_view value);

/// Cursor over an encoded buffer; all Get* methods fail with Corruption when
/// the buffer is exhausted or malformed.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data), pos_(0) {}

  Status GetVarint64(uint64_t* value);
  Status GetVarint32(uint32_t* value);
  Status GetLengthPrefixed(std::string* value);

  /// Bytes remaining.
  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_;
};

}  // namespace xks

#endif  // XKS_COMMON_CODEC_H_
