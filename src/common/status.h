// Status: error propagation type for the xkslib public API.
//
// Follows the RocksDB convention: library entry points never throw; they
// return a Status (or a Result<T>, see result.h) that callers must inspect.

#ifndef XKS_COMMON_STATUS_H_
#define XKS_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace xks {

/// Machine-readable category of a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kNotFound,
  kOutOfRange,
  kIoError,
  kCorruption,
  kAlreadyExists,
  kUnsupported,
  kFailedPrecondition,
  kInternal,
  // Appended by the query-service work (serialized over the wire by
  // src/server/wire.cc, so this enum is append-only from here on).
  kCancelled,
  kDeadlineExceeded,
  kResourceExhausted,
  kUnavailable,
};

/// Returns a stable human-readable name for a StatusCode ("OK", "ParseError", ...).
std::string_view StatusCodeName(StatusCode code);

/// Result of an operation: an OK marker, or an error code plus message.
///
/// Cheap to copy in the OK case (no allocation). Typical use:
///
///   Status s = parser.Parse(text, &doc);
///   if (!s.ok()) return s;
///
/// [[nodiscard]]: a dropped Status is a swallowed error, so every by-value
/// return of one must be consumed. Built with -Werror=unused-result, a
/// discard site is a compile error; the rare intentional drop must say so
/// with an explicit static_cast<void>(...) at the call site.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK Status to the caller. Library-internal convenience.
#define XKS_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::xks::Status _xks_status = (expr);          \
    if (!_xks_status.ok()) return _xks_status;   \
  } while (false)

}  // namespace xks

#endif  // XKS_COMMON_STATUS_H_
