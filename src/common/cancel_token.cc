#include "src/common/cancel_token.h"

#include <algorithm>

namespace xks {

Status CancelToken::status() const {
  if (flag_ != nullptr && flag_->load(std::memory_order_acquire)) {
    return Status::Cancelled("request cancelled");
  }
  if (deadline_ != Clock::time_point::max() && Clock::now() >= deadline_) {
    return Status::DeadlineExceeded("deadline exceeded");
  }
  return Status::OK();
}

CancelToken CancelToken::WithDeadline(Clock::time_point deadline) const {
  CancelToken derived = *this;
  derived.deadline_ = std::min(deadline_, deadline);
  return derived;
}

CancelToken CancelToken::WithDeadlineAfter(
    std::chrono::milliseconds budget) const {
  return WithDeadline(Clock::now() + budget);
}

CancelToken CancelSource::token() const {
  CancelToken token;
  token.flag_ = flag_;
  return token;
}

}  // namespace xks
