#include "src/common/worker_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/obs/instruments.h"

namespace xks {

WorkerPool::WorkerPool(size_t threads, size_t queue_capacity)
    : queue_capacity_(std::max<size_t>(1, queue_capacity)) {
  threads_.reserve(std::max<size_t>(1, threads));
  for (size_t i = 0; i < std::max<size_t>(1, threads); ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    MutexLock lock(mutex_);
    shutdown_ = true;
  }
  queue_not_empty_.NotifyAll();
  queue_not_full_.NotifyAll();
  for (std::thread& thread : threads_) thread.join();
}

void WorkerPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    while (queue_.size() >= queue_capacity_ && !shutdown_) {
      queue_not_full_.Wait(lock);
    }
    // Submitting into a destructing pool would drop the task silently;
    // treat it as a caller bug but keep the process alive.
    if (shutdown_) return;
    queue_.push_back(std::move(task));
    if (queue_depth_metric_ != nullptr) queue_depth_metric_->Add(1);
  }
  queue_not_empty_.NotifyOne();
}

void WorkerPool::set_metrics(Counter* tasks, Gauge* queue_depth) {
  MutexLock lock(mutex_);
  tasks_metric_ = tasks;
  queue_depth_metric_ = queue_depth;
}

void WorkerPool::WaitIdle() {
  MutexLock lock(mutex_);
  while (!queue_.empty() || active_ != 0) idle_.Wait(lock);
}

size_t WorkerPool::DefaultParallelism() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

void WorkerPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (queue_.empty() && !shutdown_) queue_not_empty_.Wait(lock);
      // Drain the queue even during shutdown: every submitted task runs.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
      if (queue_depth_metric_ != nullptr) queue_depth_metric_->Add(-1);
      if (tasks_metric_ != nullptr) tasks_metric_->Increment();
    }
    queue_not_full_.NotifyOne();
    try {
      task();
    } catch (...) {
      // The task's exception must not take the worker (or the process)
      // down; ParallelFor converts exceptions to Status before they get
      // here, bare Submit callers are documented to not throw.
    }
    {
      MutexLock lock(mutex_);
      XKS_DCHECK(active_ > 0);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.NotifyAll();
    }
  }
}

namespace {

/// body() with exceptions folded into Status, so a throwing body surfaces
/// as an error instead of tearing down a worker thread.
Status RunBody(const std::function<Status(size_t)>& body, size_t index) {
  try {
    return body(index);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("parallel task threw: ") + e.what());
  } catch (...) {
    return Status::Internal("parallel task threw a non-standard exception");
  }
}

}  // namespace

Result<size_t> ParallelFor(size_t count,
                           const std::function<Status(size_t)>& body,
                           const ParallelForOptions& options) {
  const size_t parallelism =
      std::min(count == 0 ? 1 : count, options.max_parallelism == 0
                                           ? WorkerPool::DefaultParallelism()
                                           : options.max_parallelism);
  // A token that can never fire must stay off the claim path entirely (it
  // would otherwise cost a clock read per index for every legacy caller).
  const bool cancellable = options.cancel.can_expire();

  if (parallelism <= 1) {
    size_t executed = 0;
    for (size_t i = 0; i < count; ++i) {
      if (options.stop && options.stop()) break;
      if (cancellable && options.cancel.cancelled()) break;
      XKS_RETURN_IF_ERROR(RunBody(body, i));
      ++executed;
      // The serial path has no pool, but the task count still reflects
      // every executed body so the counter means the same thing at every
      // parallelism setting.
      if (options.tasks_metric != nullptr) options.tasks_metric->Increment();
    }
    return executed;
  }

  std::atomic<size_t> next{0};
  std::atomic<bool> halt{false};
  Mutex error_mutex;
  size_t first_error_index = SIZE_MAX;
  Status first_error = Status::OK();

  const auto runner = [&] {
    for (;;) {
      if (halt.load(std::memory_order_acquire)) return;
      if (options.stop && options.stop()) return;
      if (cancellable && options.cancel.cancelled()) return;
      // Claim-then-always-run keeps the executed set a contiguous prefix:
      // a stop/halt observed after the claim does not abandon the index.
      const size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= count) return;
      Status status = RunBody(body, index);
      if (!status.ok()) {
        MutexLock lock(error_mutex);
        if (index < first_error_index) {
          first_error_index = index;
          first_error = std::move(status);
        }
        halt.store(true, std::memory_order_release);
      }
    }
  };

  {
    // The calling thread is one of the runners: parallelism N spawns only
    // N-1 threads, and the caller works instead of idling in the join.
    WorkerPool pool(parallelism - 1, /*queue_capacity=*/parallelism - 1);
    pool.set_metrics(options.tasks_metric, options.queue_depth_metric);
    for (size_t i = 0; i + 1 < parallelism; ++i) pool.Submit(runner);
    runner();
    // Pool destruction drains the runners and joins the workers, which is
    // the happens-before edge making every body's writes visible here.
  }

  if (first_error_index != SIZE_MAX) {
    // The contiguous-prefix contract in the error case: the failing index
    // was claimed, so the claim counter must have advanced past it.
    XKS_CHECK(first_error_index < next.load(std::memory_order_acquire));
    XKS_CHECK(!first_error.ok());
    return first_error;
  }
  return std::min(count, next.load(std::memory_order_acquire));
}

}  // namespace xks
