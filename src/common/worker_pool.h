// WorkerPool + ParallelFor: the in-process fan-out substrate the corpus
// scan (src/api/database.cc) shards onto.
//
// WorkerPool is a fixed set of threads draining one bounded task queue.
// Submit blocks while the queue is full (backpressure instead of unbounded
// memory growth), tasks that throw are contained to the task (the worker
// thread survives and keeps draining), and the destructor drains every
// already-submitted task before joining.
//
// ParallelFor is the Status-propagating loop built on top: indices are
// claimed in order off a shared counter, every claimed index runs to
// completion, and dispatch stops once a body fails or the caller's stop
// predicate fires. Because claiming is ordered and claimed work always
// runs, the set of executed indices is always a contiguous prefix [0, n) —
// the property that lets a parallel corpus scan reconstruct exactly the
// documents a serial scan would have covered.

#ifndef XKS_COMMON_WORKER_POOL_H_
#define XKS_COMMON_WORKER_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "src/common/cancel_token.h"
#include "src/common/mutex.h"
#include "src/common/result.h"

namespace xks {

class Counter;
class Gauge;

/// Locking contract: one mutex (`mutex_`) guards the queue, the active-task
/// count and the shutdown flag; the annotations below make the compiler
/// hold every access to it. The thread vector is written only by the
/// constructor (before any concurrency exists) and read by the destructor
/// (after every worker has observed shutdown), so it needs no lock.
class WorkerPool {
 public:
  /// Spawns `threads` workers (at least one) sharing a queue that holds at
  /// most `queue_capacity` waiting tasks.
  explicit WorkerPool(size_t threads, size_t queue_capacity = 1024);

  /// Drains every already-submitted task, then joins the workers.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueues `task`; blocks (holding no lock while waiting) while the
  /// queue is full. Callable from any thread, including a worker — but a
  /// worker submitting into a full queue deadlocks by construction, so
  /// tasks must not Submit. A task that throws is swallowed by its worker
  /// (use ParallelFor for error reporting).
  void Submit(std::function<void()> task) XKS_EXCLUDES(mutex_);

  /// Returns once every submitted task has finished and the queue is
  /// empty. Callable from any non-worker thread without external
  /// synchronization; "idle" is a moment-in-time fact if other threads
  /// keep submitting.
  void WaitIdle() XKS_EXCLUDES(mutex_);

  size_t thread_count() const { return threads_.size(); }

  /// Wires the pool onto registry instruments (src/obs/instruments.h):
  /// `tasks` counts every executed task, `queue_depth` tracks waiting tasks.
  /// Either may be nullptr. Call before the first Submit; the pointers must
  /// outlive the pool (registry instruments always do).
  void set_metrics(Counter* tasks, Gauge* queue_depth) XKS_EXCLUDES(mutex_);

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// permits 0 for "unknown").
  static size_t DefaultParallelism();

 private:
  void WorkerLoop() XKS_EXCLUDES(mutex_);

  const size_t queue_capacity_;
  Mutex mutex_;
  CondVar queue_not_full_;
  CondVar queue_not_empty_;
  CondVar idle_;
  std::deque<std::function<void()>> queue_ XKS_GUARDED_BY(mutex_);
  /// Tasks currently executing on a worker.
  size_t active_ XKS_GUARDED_BY(mutex_) = 0;
  bool shutdown_ XKS_GUARDED_BY(mutex_) = false;
  /// Optional registry instruments; set once before submissions begin.
  Counter* tasks_metric_ XKS_GUARDED_BY(mutex_) = nullptr;
  Gauge* queue_depth_metric_ XKS_GUARDED_BY(mutex_) = nullptr;
  /// Written by the constructor only; joined by the destructor.
  std::vector<std::thread> threads_;
};

/// Tuning/termination knobs for ParallelFor.
struct ParallelForOptions {
  /// Concurrent bodies; 0 = WorkerPool::DefaultParallelism(), 1 = run
  /// inline on the calling thread.
  size_t max_parallelism = 0;
  /// Checked before each index is claimed; once it returns true no further
  /// indices are dispatched (in-flight bodies still finish). Called
  /// concurrently from every worker, so it must be callable without
  /// external synchronization.
  std::function<bool()> stop;
  /// Cooperative cancellation, checked exactly like `stop`: a fired token
  /// (explicit cancel or expired deadline) stops further dispatch while
  /// already-claimed indices run to completion, so the executed set is still
  /// a contiguous prefix and ParallelFor still returns its size. Callers
  /// that must distinguish "cancelled" from "ran out of work" inspect the
  /// token afterwards; ParallelFor itself does not turn cancellation into an
  /// error. Default-constructed tokens never fire and cost nothing.
  CancelToken cancel;
  /// Optional registry instruments (src/obs/instruments.h): `tasks_metric`
  /// counts every executed body, `queue_depth_metric` tracks tasks waiting
  /// in the transient pool. Either may be nullptr (disabled); both must
  /// outlive the call — registry instruments always do.
  Counter* tasks_metric = nullptr;
  Gauge* queue_depth_metric = nullptr;
};

/// Runs body(0) … body(count - 1), up to options.max_parallelism at a time,
/// claiming indices in order. Dispatch stops when a body returns a non-OK
/// Status, throws (converted to Status::Internal), or options.stop fires;
/// indices already claimed always run to completion, so the executed set is
/// a contiguous prefix. Returns the size of that prefix, or the
/// lowest-index error among executed bodies. `body` is invoked concurrently
/// from up to max_parallelism threads and must tolerate that; everything it
/// wrote is visible to the caller when ParallelFor returns.
Result<size_t> ParallelFor(size_t count,
                           const std::function<Status(size_t)>& body,
                           const ParallelForOptions& options = {});

}  // namespace xks

#endif  // XKS_COMMON_WORKER_POOL_H_
