#include "src/common/io.h"

#include <cstdio>
#include <memory>

namespace xks {

Result<std::string> ReadFileToString(const std::string& path) {
  std::unique_ptr<FILE, int (*)(FILE*)> f(std::fopen(path.c_str(), "rb"),
                                          &std::fclose);
  if (f == nullptr) return Status::IoError("cannot open '" + path + "' for read");
  std::string buffer;
  char chunk[1 << 16];
  size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f.get())) > 0) {
    buffer.append(chunk, n);
  }
  if (std::ferror(f.get())) return Status::IoError("read error on '" + path + "'");
  return buffer;
}

Status WriteStringToFile(const std::string& path, const std::string& data) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open '" + path + "' for write");
  size_t written = std::fwrite(data.data(), 1, data.size(), f);
  // fclose flushes the stdio buffer; a failure there (ENOSPC, writeback
  // error) means the file is truncated even when fwrite reported success.
  int closed = std::fclose(f);
  if (written != data.size() || closed != 0) {
    return Status::IoError("short write to '" + path + "'");
  }
  return Status::OK();
}

}  // namespace xks
