// Shared fingerprint/hashing primitives.
//
// Every identity hash in the system — pagination-cursor fingerprints, the
// corpus revision chain, and the result-cache keys — is built the same way:
// append the fields that matter to a byte string ("material") in a fixed
// order, then hash it with FNV-1a. Fingerprint is that accumulator. Keeping
// the accumulator (and the hash) in one place is what lets the cursor
// fingerprint and the cache key share their common material prefix (see
// src/api/request_fingerprint.h) so the two can never drift apart.
//
// The material encoding is deliberately simple rather than self-describing:
// fixed-order appends with varint integers and NUL-terminated strings. Two
// different field sequences can in principle produce the same material;
// callers that mix variable-length strings with other fields must either
// terminate them (PutString appends a NUL) or length-prefix them.

#ifndef XKS_COMMON_FINGERPRINT_H_
#define XKS_COMMON_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

namespace xks {

/// FNV-1a 64-bit hash over `data`, chained through `seed` (pass a previous
/// digest to extend a hash chain, as the corpus revision does).
uint64_t Fnv1a64(std::string_view data, uint64_t seed = 0xcbf29ce484222325ull);

/// Accumulates fingerprint material and digests it on demand. The material
/// itself is exposed so callers that need exact-match keys (the result
/// cache) can store it verbatim instead of trusting a 64-bit digest.
class Fingerprint {
 public:
  Fingerprint() = default;

  /// Appends one raw byte.
  void PutByte(uint8_t value) { material_.push_back(static_cast<char>(value)); }

  /// Appends a bool as one byte (1/0).
  void PutBool(bool value) { PutByte(value ? 1 : 0); }

  /// Appends the string bytes followed by a NUL terminator, so a string
  /// field cannot bleed into whatever is appended next.
  void PutString(std::string_view value) {
    material_.append(value.data(), value.size());
    material_.push_back('\0');
  }

  /// Appends a varint-encoded integer.
  void PutVarint32(uint32_t value);
  void PutVarint64(uint64_t value);

  /// Appends the raw IEEE-754 bytes of `count` doubles (deterministic,
  /// unlike any decimal rendering).
  void PutDoubles(const double* values, size_t count);

  /// FNV-1a digest of the material accumulated so far.
  uint64_t Digest64() const { return Fnv1a64(material_); }

  const std::string& material() const { return material_; }
  std::string ConsumeMaterial() { return std::move(material_); }

 private:
  std::string material_;
};

}  // namespace xks

#endif  // XKS_COMMON_FINGERPRINT_H_
