// QueryBackend — the seam between the TCP front end (XksServer) and
// whatever executes the queries behind it.
//
// Two implementations exist: QueryService (src/server/service.h) executes
// against a local Database — that is xksd — and CoordBackend
// (src/coord/coord_service.h) scatter-gathers over remote xksd shards —
// that is xks_coord. The server is deliberately ignorant of which one it
// fronts: both speak the same admission contract (synchronous Status on
// rejection, exactly-once DoneCallback on admission), the same drain
// contract (BeginDrain rejects new work, Drain also waits for admitted
// work), and the same health probe, so xks_client drives either daemon
// unchanged.
//
// Threading. Submit, the stats/health accessors, and BeginDrain must be
// thread-safe; Drain may block. DoneCallbacks run on backend-internal
// threads and must not block for long or re-enter Submit.

#ifndef XKS_SERVER_BACKEND_H_
#define XKS_SERVER_BACKEND_H_

#include <cstdint>
#include <functional>

#include "src/api/search_types.h"
#include "src/common/cancel_token.h"
#include "src/common/fingerprint.h"
#include "src/common/result.h"
#include "src/server/wire.h"

namespace xks {

/// Query-shape fingerprint for the slow-query log: FNV-1a over the
/// pre-parsed terms (or the raw query text when none), so repeats of one
/// query shape aggregate under one id across daemons and restarts.
inline uint64_t QueryShapeFingerprint(const SearchRequest& request) {
  Fingerprint fp;
  for (const QueryTerm& term : request.terms) {
    fp.PutString(term.label);
    fp.PutString(term.word);
  }
  if (request.terms.empty()) fp.PutString(request.query);
  return fp.Digest64();
}

/// Monotonic admission counters; read via QueryBackend::stats().
struct ServiceStats {
  uint64_t submitted = 0;          ///< Submit calls, admitted or not.
  uint64_t admitted = 0;           ///< Entered the pending queue.
  uint64_t completed = 0;          ///< Done callback invoked (any outcome).
  uint64_t shed_overload = 0;      ///< Rejected: pending queue full.
  uint64_t shed_quota = 0;         ///< Rejected: per-client quota.
  uint64_t rejected_draining = 0;  ///< Rejected: drain in progress.
  uint64_t batches = 0;            ///< Batches dispatched.
  uint64_t max_batch = 0;          ///< Largest batch dispatched.
};

class QueryBackend {
 public:
  virtual ~QueryBackend() = default;

  using DoneCallback = std::function<void(Result<SearchResponse>)>;

  /// Admits one query or rejects it synchronously (the returned Status is
  /// what a server should send back to the client verbatim). On admission,
  /// `done` is invoked exactly once later with the query's outcome.
  virtual Status Submit(uint64_t client_id, SearchRequest request,
                        CancelToken cancel, DoneCallback done) = 0;

  /// Stops admitting (Unavailable) without waiting.
  virtual void BeginDrain() = 0;

  /// BeginDrain + blocks until every admitted query has completed.
  virtual void Drain() = 0;

  virtual ServiceStats stats() const = 0;

  /// Answers a kHealthCheck frame: which snapshot (or shard-union view)
  /// this backend is serving. Must not block on query execution.
  virtual HealthReply Health() const = 0;
};

}  // namespace xks

#endif  // XKS_SERVER_BACKEND_H_
