// XksServer — the TCP front end of the xksd and xks_coord daemons.
//
// A thin network shell around a QueryBackend (a local QueryService for
// xksd, a shard-fanning CoordBackend for xks_coord): it owns the listening
// socket, one reader thread per accepted connection, and the framing
// (src/server/wire.h). Everything interesting — batching, admission
// control, deadlines — lives in the backend; the server's own jobs are:
//
//   * decode request frames and Submit them under the connection's client
//     id (the unit the per-connection in-flight quota is enforced on);
//   * answer kHealthCheck frames out-of-band of the query pipeline;
//   * write each outcome back as a response or Status frame, under a
//     per-connection write lock so concurrently completing batch members
//     interleave frame-atomically;
//   * arm a CancelSource per in-flight request and fire it when the
//     connection drops, so a disconnected client's queries stop consuming
//     the corpus scan mid-flight (cooperative cancellation);
//   * graceful drain: Shutdown() stops accepting, lets the service finish
//     every admitted query (responses still flow to connected clients),
//     then closes connections and joins all threads. This is what SIGTERM
//     maps to in xksd_main.
//
// Lifecycle: construct → Start() (binds; port() is then real, also for
// port 0 = ephemeral) → serve → Shutdown() (idempotent). The Database must
// outlive the server.

#ifndef XKS_SERVER_SERVER_H_
#define XKS_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/api/database.h"
#include "src/common/cancel_token.h"
#include "src/common/mutex.h"
#include "src/common/result.h"
#include "src/obs/metrics.h"
#include "src/server/service.h"

namespace xks {

struct ServerConfig {
  /// Listen address. Loopback by default: xksd is a backend daemon; fronting
  /// it to the world is a deliberate flag away (xksd --host 0.0.0.0).
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; the bound port is available from port() after Start().
  uint16_t port = 0;
  /// Incoming frame size ceiling (protects against hostile length prefixes).
  size_t max_frame_bytes = 16u << 20;
  /// Registry kStatsRequest frames are answered from (and response-encode
  /// timings feed into); nullptr disables both. Must outlive the server.
  MetricsRegistry* metrics = MetricsRegistry::Default();
  ServiceConfig service;
};

class XksServer {
 public:
  /// Fronts a local corpus: owns a QueryService over `db`. `db` must
  /// outlive the server.
  XksServer(const Database* db, const ServerConfig& config);

  /// Fronts an externally owned backend (the coordinator daemon uses this;
  /// config.service is ignored — the backend brings its own admission
  /// knobs). `backend` must outlive the server.
  XksServer(QueryBackend* backend, const ServerConfig& config);

  /// Shutdown() if still running.
  ~XksServer();

  XksServer(const XksServer&) = delete;
  XksServer& operator=(const XksServer&) = delete;

  /// Binds, listens and starts accepting. InvalidArgument/IoError on bad
  /// host or bind failure.
  Status Start();

  /// The bound port; 0 before Start().
  uint16_t port() const { return port_; }

  /// Graceful drain: stop accepting, finish every admitted query (responses
  /// are still written), cancel idle readers, join everything. Idempotent
  /// and thread-safe (the SIGTERM path calls it from the main thread while
  /// readers are live).
  void Shutdown();

  /// Admission/batching counters of the underlying backend.
  ServiceStats service_stats() const;

  /// Connections accepted over the server's lifetime.
  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-connection state, shared between the reader thread and in-flight
  /// done-callbacks (which may outlive the reader). Two independent locks:
  /// write_mutex serializes whole reply frames onto the socket (it guards
  /// the *write side of fd* — a kernel resource, not a field, so the
  /// contract is this comment plus WriteReply being the only writer),
  /// inflight_mutex guards the cancel-source map. They are never held
  /// together, so no lock ordering exists to violate.
  struct Connection {
    ~Connection();  ///< Closes fd once the last reference drops.
    int fd = -1;
    uint64_t id = 0;
    /// Response-encode latency histogram (xks_wire_encode_seconds); set at
    /// accept time, nullptr when metrics are disabled. Carried here because
    /// WriteReply runs from done-callbacks that hold only the Connection.
    Histogram* encode_seconds = nullptr;
    Mutex write_mutex;
    /// One CancelSource per in-flight request id; fired on disconnect.
    Mutex inflight_mutex;
    std::unordered_map<uint64_t, CancelSource> inflight
        XKS_GUARDED_BY(inflight_mutex);
    std::atomic<bool> closed{false};
  };

  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Connection> conn);
  /// Serializes one reply frame to the connection (no-op once closed).
  static void WriteReply(const std::shared_ptr<Connection>& conn,
                         uint64_t request_id, const Result<SearchResponse>& outcome);
  /// Serializes one raw frame to the connection (health replies; no-op once
  /// closed).
  static void WriteRawReply(const std::shared_ptr<Connection>& conn,
                            const Frame& frame);
  /// Fires every in-flight cancel source of `conn` (disconnect semantics).
  static void CancelAllInflight(Connection* conn);

  const ServerConfig config_;
  /// Set only by the Database constructor; backend_ points at it then.
  std::unique_ptr<QueryService> owned_service_;
  QueryBackend* const backend_;
  /// Resolved once from config_.metrics (nullptr when disabled); copied
  /// into each Connection at accept time.
  Histogram* encode_seconds_ = nullptr;

  /// Written by Start() before the acceptor exists and reset by Shutdown()
  /// after every thread that reads it has been joined, so the concurrent
  /// readers (AcceptLoop, the fd-waking shutdown path) see a stable value
  /// without a lock. Not guarded: there is no moment of concurrent write.
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> shutting_down_{false};
  std::atomic<uint64_t> connections_accepted_{0};
  std::thread accept_thread_;

  /// Guards the accept-side registries. The acceptor appends under the
  /// lock; Shutdown swaps both vectors out under the lock (after joining
  /// the acceptor) and joins/cancels them outside it, so the join never
  /// blocks other lock holders.
  Mutex connections_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_
      XKS_GUARDED_BY(connections_mutex_);
  std::vector<std::thread> reader_threads_ XKS_GUARDED_BY(connections_mutex_);
  /// Serializes Start/Shutdown against each other (including concurrent
  /// Shutdown calls: the first does the teardown, later ones no-op).
  Mutex lifecycle_mutex_;
  bool started_ XKS_GUARDED_BY(lifecycle_mutex_) = false;
  bool shut_down_ XKS_GUARDED_BY(lifecycle_mutex_) = false;
};

}  // namespace xks

#endif  // XKS_SERVER_SERVER_H_
