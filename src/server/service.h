// QueryService — the batched, deadline-aware, admission-controlled executor
// behind the xksd daemon (and behind any other front end: the TCP server in
// src/server/server.h is one thin client of this seam, a REPL would be
// another).
//
// Shape. Callers Submit() queries tagged with a client id and a
// CancelToken; admission control answers synchronously:
//
//   * pending queue full            → ResourceExhausted (overload shed)
//   * per-client in-flight quota hit → ResourceExhausted (one greedy
//     connection cannot starve the rest)
//   * service draining               → Unavailable
//
// Admitted queries are grouped into batches by a dispatcher thread: it
// takes up to batch_max queued queries (lingering batch_linger_ms for
// stragglers once the first arrives, so pipelined clients coalesce), pins
// ONE snapshot for the whole batch — amortizing the snapshot acquisition
// and giving every member the same epoch and the same warm result cache to
// probe — and fans the members out through ParallelFor. Each member runs
// under its own CancelToken (deadline re-armed from submission time, so
// queue wait counts against the budget; client disconnect fires the token
// mid-scan), and its completion callback receives exactly what
// Snapshot::Search returned: a SearchResponse, or Cancelled /
// DeadlineExceeded / any validation error.
//
// Drain. BeginDrain() makes every later Submit fail Unavailable;
// Drain() additionally blocks until the queue is empty and every admitted
// query has completed — the graceful-SIGTERM contract: nothing admitted is
// ever dropped, nothing new is accepted.
//
// Threading. Submit and the stats accessor are thread-safe. Completion
// callbacks run on the dispatcher (or one of its ParallelFor workers) and
// must not block for long or re-enter Submit.

#ifndef XKS_SERVER_SERVICE_H_
#define XKS_SERVER_SERVICE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <unordered_map>

#include "src/api/database.h"
#include "src/common/cancel_token.h"
#include "src/common/mutex.h"
#include "src/obs/metrics.h"
#include "src/server/backend.h"

namespace xks {

/// Admission + batching knobs.
struct ServiceConfig {
  /// Queries admitted but not yet picked into a batch; one more submission
  /// beyond this is shed with ResourceExhausted instead of queueing
  /// unboundedly.
  size_t max_pending = 256;
  /// Admitted-but-incomplete queries one client may have at a time.
  size_t per_client_inflight = 32;
  /// Queries per batch (one pinned snapshot each).
  size_t batch_max = 16;
  /// How long the dispatcher lingers for stragglers after the first query
  /// of a batch arrives. 0 = take whatever is queued and go.
  uint64_t batch_linger_ms = 1;
  /// Concurrent members per batch (ParallelFor parallelism); 0 = one per
  /// hardware thread.
  size_t workers = 0;
  /// Emit one structured slow-query line to stderr for every member whose
  /// execution takes at least this many milliseconds; 0 disables. While
  /// enabled the service collects a trace for every member so the line can
  /// carry the stage breakdown — the client's response is untouched unless
  /// it asked for the trace itself (the forced trace is stripped before the
  /// done callback, preserving byte identity).
  uint64_t slow_query_ms = 0;
  /// Registry the admission counters are mirrored onto (and the slow-query
  /// counter / batch worker instruments feed); nullptr disables. Must
  /// outlive the service. The ServiceStats struct stays authoritative per
  /// instance; the registry aggregates across instances.
  MetricsRegistry* metrics = MetricsRegistry::Default();
};

// ServiceStats lives in src/server/backend.h (shared with every other
// QueryBackend implementation).

class QueryService : public QueryBackend {
 public:
  /// `db` must outlive the service. The dispatcher thread starts
  /// immediately; queries fail cleanly (InvalidArgument) while the
  /// database is unbuilt.
  QueryService(const Database* db, const ServiceConfig& config);

  /// Drains (see Drain) and joins the dispatcher.
  ~QueryService() override;

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Admits one query or rejects it synchronously (see file comment for the
  /// admission rules — the returned Status is what a server should send
  /// back to the client verbatim). On admission, `done` is invoked exactly
  /// once later with the query's outcome. `cancel` is observed up to the
  /// last cooperative checkpoint before the response is cut; request
  /// .deadline_ms (if any) is armed HERE, so time spent queued counts
  /// against the deadline.
  Status Submit(uint64_t client_id, SearchRequest request, CancelToken cancel,
                DoneCallback done) override XKS_EXCLUDES(mutex_);

  /// Stops admitting (Unavailable) without waiting.
  void BeginDrain() override XKS_EXCLUDES(mutex_);

  /// BeginDrain + blocks until every admitted query has completed.
  void Drain() override XKS_EXCLUDES(mutex_);

  ServiceStats stats() const override XKS_EXCLUDES(mutex_);

  /// The published snapshot's epoch/revision/size; all-zero before Build().
  HealthReply Health() const override;

 private:
  struct PendingQuery {
    uint64_t client_id = 0;
    SearchRequest request;
    CancelToken cancel;
    DoneCallback done;
  };

  void DispatcherLoop() XKS_EXCLUDES(mutex_);
  /// Runs one batch against one pinned snapshot. Called lock-free: batch
  /// members belong to the dispatcher alone once popped from pending_.
  void RunBatch(std::vector<PendingQuery>* batch) XKS_EXCLUDES(mutex_);
  /// Marks one query finished: quota release + drain bookkeeping.
  void FinishOne(uint64_t client_id) XKS_EXCLUDES(mutex_);

  /// Registry mirrors of the ServiceStats counters plus the slow-query
  /// counter and batch-worker instruments; all nullptr when metrics are
  /// disabled. Immutable after construction, so increments need no lock.
  struct Mirror {
    Counter* submitted = nullptr;
    Counter* admitted = nullptr;
    Counter* completed = nullptr;
    Counter* shed_overload = nullptr;
    Counter* shed_quota = nullptr;
    Counter* rejected_draining = nullptr;
    Counter* batches = nullptr;
    Counter* slow_queries = nullptr;
    Counter* worker_tasks = nullptr;
    Gauge* worker_queue_depth = nullptr;
  };

  const Database* const db_;
  const ServiceConfig config_;
  Mirror mirror_;

  /// One mutex guards the whole admission state: queue, quotas, drain flag
  /// and counters move together under every state transition.
  mutable Mutex mutex_;
  CondVar work_cv_;   ///< Dispatcher wake-up.
  CondVar drain_cv_;  ///< Drain() completion.
  std::deque<PendingQuery> pending_ XKS_GUARDED_BY(mutex_);
  /// Admitted-but-incomplete count per client; entries erased at zero so
  /// the map does not grow with the lifetime client-id counter.
  std::unordered_map<uint64_t, size_t> inflight_ XKS_GUARDED_BY(mutex_);
  size_t inflight_total_ XKS_GUARDED_BY(mutex_) = 0;
  bool draining_ XKS_GUARDED_BY(mutex_) = false;
  ServiceStats stats_ XKS_GUARDED_BY(mutex_);

  std::thread dispatcher_;
};

}  // namespace xks

#endif  // XKS_SERVER_SERVICE_H_
