#include "src/server/service.h"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/worker_pool.h"

namespace xks {

QueryService::QueryService(const Database* db, const ServiceConfig& config)
    : db_(db), config_(config) {
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

QueryService::~QueryService() {
  Drain();
  if (dispatcher_.joinable()) dispatcher_.join();
}

Status QueryService::Submit(uint64_t client_id, SearchRequest request,
                            CancelToken cancel, DoneCallback done) {
  PendingQuery query;
  query.client_id = client_id;
  query.request = std::move(request);
  query.cancel = cancel;
  query.done = std::move(done);
  // Arm the deadline at submission, not at Search entry: a query's time in
  // the pending queue counts against its budget, which is what lets an
  // overloaded server expire queued work instead of executing it late.
  if (query.request.deadline_ms > 0) {
    query.cancel = query.cancel.WithDeadlineAfter(
        std::chrono::milliseconds(query.request.deadline_ms));
    query.request.deadline_ms = 0;
  }
  {
    MutexLock lock(mutex_);
    ++stats_.submitted;
    if (draining_) {
      ++stats_.rejected_draining;
      return Status::Unavailable("service is draining; not accepting queries");
    }
    if (pending_.size() >= config_.max_pending) {
      ++stats_.shed_overload;
      return Status::ResourceExhausted(
          "pending queue full (max_pending=" +
          std::to_string(config_.max_pending) + "); retry later");
    }
    auto it = inflight_.find(client_id);
    const size_t inflight = it == inflight_.end() ? 0 : it->second;
    if (inflight >= config_.per_client_inflight) {
      ++stats_.shed_quota;
      return Status::ResourceExhausted(
          "per-connection in-flight quota exceeded (quota=" +
          std::to_string(config_.per_client_inflight) + ")");
    }
    inflight_[client_id] = inflight + 1;
    ++inflight_total_;
    ++stats_.admitted;
    pending_.push_back(std::move(query));
  }
  work_cv_.NotifyOne();
  return Status::OK();
}

void QueryService::BeginDrain() {
  {
    MutexLock lock(mutex_);
    draining_ = true;
  }
  work_cv_.NotifyAll();
}

void QueryService::Drain() {
  BeginDrain();
  MutexLock lock(mutex_);
  while (!pending_.empty() || inflight_total_ != 0) drain_cv_.Wait(lock);
}

ServiceStats QueryService::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

void QueryService::DispatcherLoop() {
  for (;;) {
    std::vector<PendingQuery> batch;
    {
      MutexLock lock(mutex_);
      while (pending_.empty() && !draining_) work_cv_.Wait(lock);
      if (pending_.empty()) return;  // draining and nothing left to run
      // Linger briefly for stragglers: a pipelined client's burst arrives
      // over microseconds, and picking them into one batch means one
      // snapshot pin and one warm cache pass instead of N. Drain skips the
      // linger — finishing fast beats batching well on the way down.
      if (config_.batch_linger_ms > 0 && !draining_ &&
          pending_.size() < config_.batch_max) {
        const auto linger_deadline =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(config_.batch_linger_ms);
        while (pending_.size() < config_.batch_max && !draining_ &&
               work_cv_.WaitUntil(lock, linger_deadline)) {
        }
      }
      const size_t take =
          std::min(pending_.size(), std::max<size_t>(1, config_.batch_max));
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(pending_.front()));
        pending_.pop_front();
      }
      ++stats_.batches;
      stats_.max_batch = std::max<uint64_t>(stats_.max_batch, take);
    }
    RunBatch(&batch);
  }
}

void QueryService::RunBatch(std::vector<PendingQuery>* batch) {
  // One snapshot per batch: every member sees the same epoch and probes the
  // same (warm) result cache, and the snapshot acquisition — shared_ptr under
  // the catalog mutex — happens once instead of once per query.
  const std::shared_ptr<const Snapshot> snapshot =
      db_ != nullptr ? db_->snapshot() : nullptr;
  ParallelForOptions fan_out;
  fan_out.max_parallelism = config_.workers;
  // Member bodies always report OK: a member's failure is its own outcome,
  // delivered through its done callback, never a reason to halt the batch.
  const Result<size_t> fanned = ParallelFor(
      batch->size(),
      [&](size_t i) -> Status {
        PendingQuery& query = (*batch)[i];
        Result<SearchResponse> outcome = [&]() -> Result<SearchResponse> {
          if (query.cancel.can_expire() && query.cancel.cancelled()) {
            // Expired while queued: report without executing anything.
            // Both firing conditions are monotonic, so status() is
            // guaranteed non-OK here.
            return query.cancel.status();
          }
          if (snapshot == nullptr) {
            return Status::InvalidArgument("corpus is not built");
          }
          query.request.cancel = query.cancel;
          return snapshot->Search(query.request);
        }();
        query.done(std::move(outcome));
        FinishOne(query.client_id);
        return Status::OK();
      },
      fan_out);
  // Bodies never fail and nothing stops dispatch, so the whole batch ran.
  XKS_CHECK(fanned.ok());
  XKS_CHECK(*fanned == batch->size());
}

HealthReply QueryService::Health() const {
  HealthReply reply;
  if (!db_->built()) return reply;
  const std::shared_ptr<const Snapshot> snapshot = db_->snapshot();
  if (snapshot == nullptr) return reply;
  reply.epoch = snapshot->epoch();
  reply.revision = snapshot->revision();
  reply.document_count = snapshot->document_count();
  reply.corpus_max_depth = snapshot->corpus_max_depth();
  return reply;
}

void QueryService::FinishOne(uint64_t client_id) {
  {
    MutexLock lock(mutex_);
    auto it = inflight_.find(client_id);
    if (it != inflight_.end() && --it->second == 0) inflight_.erase(it);
    --inflight_total_;
    ++stats_.completed;
  }
  drain_cv_.NotifyAll();
}

}  // namespace xks
