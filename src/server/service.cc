#include "src/server/service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/worker_pool.h"

namespace xks {

QueryService::QueryService(const Database* db, const ServiceConfig& config)
    : db_(db), config_(config) {
  if (config_.metrics != nullptr) {
    MetricsRegistry& reg = *config_.metrics;
    // backend="local" distinguishes this admission layer from the
    // coordinator's (CoordBackend mirrors the same families with
    // backend="coord") when both run in one process.
    const std::string_view b = "backend=\"local\"";
    mirror_.submitted = reg.counter("xks_service_submitted_total", b);
    mirror_.admitted = reg.counter("xks_service_admitted_total", b);
    mirror_.completed = reg.counter("xks_service_completed_total", b);
    mirror_.shed_overload = reg.counter("xks_service_shed_overload_total", b);
    mirror_.shed_quota = reg.counter("xks_service_shed_quota_total", b);
    mirror_.rejected_draining =
        reg.counter("xks_service_rejected_draining_total", b);
    mirror_.batches = reg.counter("xks_service_batches_total", b);
    mirror_.slow_queries = reg.counter("xks_slow_queries_total", b);
    mirror_.worker_tasks =
        reg.counter("xks_worker_tasks_total", "pool=\"service\"");
    mirror_.worker_queue_depth =
        reg.gauge("xks_worker_queue_depth", "pool=\"service\"");
  }
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

QueryService::~QueryService() {
  Drain();
  if (dispatcher_.joinable()) dispatcher_.join();
}

Status QueryService::Submit(uint64_t client_id, SearchRequest request,
                            CancelToken cancel, DoneCallback done) {
  PendingQuery query;
  query.client_id = client_id;
  query.request = std::move(request);
  query.cancel = cancel;
  query.done = std::move(done);
  // Arm the deadline at submission, not at Search entry: a query's time in
  // the pending queue counts against its budget, which is what lets an
  // overloaded server expire queued work instead of executing it late.
  if (query.request.deadline_ms > 0) {
    query.cancel = query.cancel.WithDeadlineAfter(
        std::chrono::milliseconds(query.request.deadline_ms));
    query.request.deadline_ms = 0;
  }
  {
    MutexLock lock(mutex_);
    ++stats_.submitted;
    if (mirror_.submitted != nullptr) mirror_.submitted->Increment();
    if (draining_) {
      ++stats_.rejected_draining;
      if (mirror_.rejected_draining != nullptr) {
        mirror_.rejected_draining->Increment();
      }
      return Status::Unavailable("service is draining; not accepting queries");
    }
    if (pending_.size() >= config_.max_pending) {
      ++stats_.shed_overload;
      if (mirror_.shed_overload != nullptr) mirror_.shed_overload->Increment();
      return Status::ResourceExhausted(
          "pending queue full (max_pending=" +
          std::to_string(config_.max_pending) + "); retry later");
    }
    auto it = inflight_.find(client_id);
    const size_t inflight = it == inflight_.end() ? 0 : it->second;
    if (inflight >= config_.per_client_inflight) {
      ++stats_.shed_quota;
      if (mirror_.shed_quota != nullptr) mirror_.shed_quota->Increment();
      return Status::ResourceExhausted(
          "per-connection in-flight quota exceeded (quota=" +
          std::to_string(config_.per_client_inflight) + ")");
    }
    inflight_[client_id] = inflight + 1;
    ++inflight_total_;
    ++stats_.admitted;
    if (mirror_.admitted != nullptr) mirror_.admitted->Increment();
    pending_.push_back(std::move(query));
  }
  work_cv_.NotifyOne();
  return Status::OK();
}

void QueryService::BeginDrain() {
  {
    MutexLock lock(mutex_);
    draining_ = true;
  }
  work_cv_.NotifyAll();
}

void QueryService::Drain() {
  BeginDrain();
  MutexLock lock(mutex_);
  while (!pending_.empty() || inflight_total_ != 0) drain_cv_.Wait(lock);
}

ServiceStats QueryService::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

void QueryService::DispatcherLoop() {
  for (;;) {
    std::vector<PendingQuery> batch;
    {
      MutexLock lock(mutex_);
      while (pending_.empty() && !draining_) work_cv_.Wait(lock);
      if (pending_.empty()) return;  // draining and nothing left to run
      // Linger briefly for stragglers: a pipelined client's burst arrives
      // over microseconds, and picking them into one batch means one
      // snapshot pin and one warm cache pass instead of N. Drain skips the
      // linger — finishing fast beats batching well on the way down.
      if (config_.batch_linger_ms > 0 && !draining_ &&
          pending_.size() < config_.batch_max) {
        const auto linger_deadline =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(config_.batch_linger_ms);
        while (pending_.size() < config_.batch_max && !draining_ &&
               work_cv_.WaitUntil(lock, linger_deadline)) {
        }
      }
      const size_t take =
          std::min(pending_.size(), std::max<size_t>(1, config_.batch_max));
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(pending_.front()));
        pending_.pop_front();
      }
      ++stats_.batches;
      if (mirror_.batches != nullptr) mirror_.batches->Increment();
      stats_.max_batch = std::max<uint64_t>(stats_.max_batch, take);
    }
    RunBatch(&batch);
  }
}

void QueryService::RunBatch(std::vector<PendingQuery>* batch) {
  // One snapshot per batch: every member sees the same epoch and probes the
  // same (warm) result cache, and the snapshot acquisition — shared_ptr under
  // the catalog mutex — happens once instead of once per query.
  const std::shared_ptr<const Snapshot> snapshot =
      db_ != nullptr ? db_->snapshot() : nullptr;
  ParallelForOptions fan_out;
  fan_out.max_parallelism = config_.workers;
  fan_out.tasks_metric = mirror_.worker_tasks;
  fan_out.queue_depth_metric = mirror_.worker_queue_depth;
  const bool slow_log = config_.slow_query_ms > 0;
  // Member bodies always report OK: a member's failure is its own outcome,
  // delivered through its done callback, never a reason to halt the batch.
  const Result<size_t> fanned = ParallelFor(
      batch->size(),
      [&](size_t i) -> Status {
        PendingQuery& query = (*batch)[i];
        const bool client_wants_trace = query.request.include_trace;
        Result<SearchResponse> outcome = [&]() -> Result<SearchResponse> {
          if (query.cancel.can_expire() && query.cancel.cancelled()) {
            // Expired while queued: report without executing anything.
            // Both firing conditions are monotonic, so status() is
            // guaranteed non-OK here.
            return query.cancel.status();
          }
          if (snapshot == nullptr) {
            return Status::InvalidArgument("corpus is not built");
          }
          query.request.cancel = query.cancel;
          // The slow-query log needs the stage breakdown, so force trace
          // collection for every member while the log is enabled; the forced
          // trace is stripped again below unless the client asked for it.
          if (slow_log) query.request.include_trace = true;
          return snapshot->Search(query.request);
        }();
        if (slow_log && outcome.ok() && outcome.value().trace != nullptr) {
          const TraceSpan& root = *outcome.value().trace;
          const double elapsed_ms =
              static_cast<double>(root.duration_us) / 1e3;
          if (elapsed_ms >= static_cast<double>(config_.slow_query_ms)) {
            std::fprintf(
                stderr, "%s\n",
                FormatSlowQueryLine("xksd", QueryShapeFingerprint(query.request),
                                    elapsed_ms, root)
                    .c_str());
            if (mirror_.slow_queries != nullptr) {
              mirror_.slow_queries->Increment();
            }
          }
          if (!client_wants_trace) outcome.value().trace.reset();
        }
        query.done(std::move(outcome));
        FinishOne(query.client_id);
        return Status::OK();
      },
      fan_out);
  // Bodies never fail and nothing stops dispatch, so the whole batch ran.
  XKS_CHECK(fanned.ok());
  XKS_CHECK(*fanned == batch->size());
}

HealthReply QueryService::Health() const {
  HealthReply reply;
  if (!db_->built()) return reply;
  const std::shared_ptr<const Snapshot> snapshot = db_->snapshot();
  if (snapshot == nullptr) return reply;
  reply.epoch = snapshot->epoch();
  reply.revision = snapshot->revision();
  reply.document_count = snapshot->document_count();
  reply.corpus_max_depth = snapshot->corpus_max_depth();
  return reply;
}

void QueryService::FinishOne(uint64_t client_id) {
  {
    MutexLock lock(mutex_);
    auto it = inflight_.find(client_id);
    if (it != inflight_.end() && --it->second == 0) inflight_.erase(it);
    --inflight_total_;
    ++stats_.completed;
    if (mirror_.completed != nullptr) mirror_.completed->Increment();
  }
  drain_cv_.NotifyAll();
}

}  // namespace xks
