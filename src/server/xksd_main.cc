// xksd — the XML keyword search daemon.
//
// Serves a corpus (loaded from an XKS file or generated in-process) over the
// length-prefixed TCP protocol in src/server/wire.h, through the batched
// deadline-aware QueryService. SIGTERM / SIGINT trigger a graceful drain:
// stop accepting, finish every admitted query, flush replies, exit 0.
//
//   xksd --gen-dblp 0.01 --port 7700
//   xksd --corpus corpus.xks --port 7700 --max-pending 64 --inflight-quota 8

#include <signal.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/api/database.h"
#include "src/datagen/dblp_gen.h"
#include "src/server/server.h"

namespace {

// Self-pipe: the signal handler writes one byte; main blocks on the read
// end, so the drain runs on the main thread with a full C++ runtime, not in
// signal context.
int g_signal_pipe[2] = {-1, -1};

void OnTermSignal(int) {
  const char byte = 1;
  // Best-effort; if the pipe is somehow full the daemon is already waking.
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--corpus PATH | --gen-dblp SCALE) [options]\n"
      "\n"
      "corpus (exactly one):\n"
      "  --corpus PATH        load an XKS corpus file\n"
      "  --gen-dblp SCALE     generate the DBLP-like corpus at SCALE\n"
      "                       (fraction of dblp20040213; e.g. 0.01)\n"
      "  --gen-docs N         split the generated corpus into N documents\n"
      "                       with distinct seeds (default 4)\n"
      "  --gen-seed N         base seed for the generated documents\n"
      "                       (default 42; shards of one deployment use\n"
      "                       distinct bases for distinct content)\n"
      "\n"
      "server:\n"
      "  --host ADDR          numeric IPv4 listen address (default "
      "127.0.0.1)\n"
      "  --port PORT          listen port; 0 = ephemeral (default 7700)\n"
      "\n"
      "admission / batching:\n"
      "  --max-pending N      pending-queue bound before overload shedding\n"
      "  --inflight-quota N   per-connection in-flight quota\n"
      "  --batch-max N        queries per pinned-snapshot batch\n"
      "  --batch-linger-ms N  straggler linger before dispatching a batch\n"
      "  --workers N          concurrent batch members; 0 = hw threads\n"
      "\n"
      "observability:\n"
      "  --slow-query-ms N    log queries slower than N ms (stage breakdown\n"
      "                       on stderr); 0 = off (default)\n",
      argv0);
}

bool ParseUint(const char* text, uint64_t* out) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string corpus_path;
  double gen_scale = -1.0;
  uint64_t gen_docs = 4;
  uint64_t gen_seed = 42;
  std::string host = "127.0.0.1";
  uint64_t port = 7700;
  xks::ServiceConfig service;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "xksd: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    uint64_t u = 0;
    if (arg == "--corpus") {
      corpus_path = next();
    } else if (arg == "--gen-dblp") {
      gen_scale = std::atof(next());
      if (gen_scale <= 0.0) {
        std::fprintf(stderr, "xksd: --gen-dblp needs a scale > 0\n");
        return 2;
      }
    } else if (arg == "--gen-docs") {
      if (!ParseUint(next(), &gen_docs) || gen_docs == 0) {
        std::fprintf(stderr, "xksd: --gen-docs needs a positive integer\n");
        return 2;
      }
    } else if (arg == "--gen-seed") {
      if (!ParseUint(next(), &gen_seed)) {
        std::fprintf(stderr, "xksd: --gen-seed needs an integer\n");
        return 2;
      }
    } else if (arg == "--host") {
      host = next();
    } else if (arg == "--port") {
      if (!ParseUint(next(), &u) || u > 65535) {
        std::fprintf(stderr, "xksd: --port needs 0..65535\n");
        return 2;
      }
      port = u;
    } else if (arg == "--max-pending") {
      if (!ParseUint(next(), &u)) return Usage(argv[0]), 2;
      service.max_pending = u;
    } else if (arg == "--inflight-quota") {
      if (!ParseUint(next(), &u)) return Usage(argv[0]), 2;
      service.per_client_inflight = u;
    } else if (arg == "--batch-max") {
      if (!ParseUint(next(), &u) || u == 0) return Usage(argv[0]), 2;
      service.batch_max = u;
    } else if (arg == "--batch-linger-ms") {
      if (!ParseUint(next(), &u)) return Usage(argv[0]), 2;
      service.batch_linger_ms = u;
    } else if (arg == "--workers") {
      if (!ParseUint(next(), &u)) return Usage(argv[0]), 2;
      service.workers = u;
    } else if (arg == "--slow-query-ms") {
      if (!ParseUint(next(), &u)) return Usage(argv[0]), 2;
      service.slow_query_ms = u;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "xksd: unknown flag '%s'\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }

  if (corpus_path.empty() == (gen_scale <= 0.0)) {
    std::fprintf(stderr,
                 "xksd: exactly one of --corpus / --gen-dblp is required\n");
    Usage(argv[0]);
    return 2;
  }

  xks::Database db;
  if (!corpus_path.empty()) {
    auto loaded = xks::Database::Load(corpus_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "xksd: load '%s': %s\n", corpus_path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    db = std::move(loaded).value();
    if (!db.built()) {
      const xks::Status built = db.Build();
      if (!built.ok()) {
        std::fprintf(stderr, "xksd: build: %s\n", built.ToString().c_str());
        return 1;
      }
    }
  } else {
    for (uint64_t d = 0; d < gen_docs; ++d) {
      xks::DblpOptions options;
      options.seed = gen_seed + d;
      options.scale = gen_scale;
      auto added = db.AddDocument("dblp-" + std::to_string(d),
                                  xks::GenerateDblp(options));
      if (!added.ok()) {
        std::fprintf(stderr, "xksd: generate: %s\n",
                     added.status().ToString().c_str());
        return 1;
      }
    }
    const xks::Status built = db.Build();
    if (!built.ok()) {
      std::fprintf(stderr, "xksd: build: %s\n", built.ToString().c_str());
      return 1;
    }
  }
  std::fprintf(stderr, "xksd: corpus ready: %zu documents, epoch %llu\n",
               db.document_count(),
               static_cast<unsigned long long>(db.epoch()));

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "xksd: pipe: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction action {};
  action.sa_handler = OnTermSignal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  xks::ServerConfig config;
  config.host = host;
  config.port = static_cast<uint16_t>(port);
  config.service = service;
  xks::XksServer server(&db, config);
  const xks::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "xksd: start: %s\n", started.ToString().c_str());
    return 1;
  }
  // The readiness line scripts wait for (stdout, flushed).
  std::printf("xksd: listening on %s:%u\n", host.c_str(), server.port());
  std::fflush(stdout);

  // Block until SIGTERM/SIGINT.
  char byte = 0;
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }

  std::fprintf(stderr, "xksd: draining...\n");
  server.Shutdown();

  const xks::ServiceStats stats = server.service_stats();
  std::printf(
      "xksd: drained: submitted=%llu admitted=%llu completed=%llu "
      "shed_overload=%llu shed_quota=%llu rejected_draining=%llu "
      "batches=%llu max_batch=%llu connections=%llu\n",
      static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.admitted),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.shed_overload),
      static_cast<unsigned long long>(stats.shed_quota),
      static_cast<unsigned long long>(stats.rejected_draining),
      static_cast<unsigned long long>(stats.batches),
      static_cast<unsigned long long>(stats.max_batch),
      static_cast<unsigned long long>(server.connections_accepted()));
  std::fflush(stdout);
  return 0;
}
