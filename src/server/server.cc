#include "src/server/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <utility>

#include "src/server/wire.h"

namespace xks {

XksServer::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

XksServer::XksServer(const Database* db, const ServerConfig& config)
    : config_(config),
      owned_service_(std::make_unique<QueryService>(db, config.service)),
      backend_(owned_service_.get()) {
  if (config_.metrics != nullptr) {
    encode_seconds_ = config_.metrics->histogram("xks_wire_encode_seconds");
  }
}

XksServer::XksServer(QueryBackend* backend, const ServerConfig& config)
    : config_(config), backend_(backend) {
  if (config_.metrics != nullptr) {
    encode_seconds_ = config_.metrics->histogram("xks_wire_encode_seconds");
  }
}

XksServer::~XksServer() { Shutdown(); }

Status XksServer::Start() {
  MutexLock lifecycle(lifecycle_mutex_);
  if (started_) return Status::FailedPrecondition("server already started");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address '" + config_.host +
                                   "' (numeric IPv4 expected)");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const Status status =
        Status::IoError(std::string("bind ") + config_.host + ":" +
                        std::to_string(config_.port) + ": " +
                        std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  // Recover the bound port (meaningful for port 0 = ephemeral).
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  if (::listen(listen_fd_, 128) != 0) {
    const Status status =
        Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }

  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void XksServer::AcceptLoop() {
  uint64_t next_connection_id = 0;
  while (!shutting_down_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Shutdown() wakes this accept via shutdown(listen_fd_); any other
      // persistent accept failure also ends the loop (the listener is gone).
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->id = ++next_connection_id;
    conn->encode_seconds = encode_seconds_;
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    {
      MutexLock lock(connections_mutex_);
      connections_.push_back(conn);
      reader_threads_.emplace_back(
          [this, conn]() mutable { ReaderLoop(std::move(conn)); });
    }
  }
}

void XksServer::ReaderLoop(std::shared_ptr<Connection> conn) {
  for (;;) {
    Result<Frame> frame = ReadFrame(conn->fd, config_.max_frame_bytes);
    if (!frame.ok()) break;  // clean close, peer error or framing garbage

    if (frame->kind == FrameKind::kHealthCheck) {
      // Health probes bypass the query pipeline entirely: a draining or
      // saturated backend still answers, which is exactly what makes them
      // useful to a coordinator deciding where to send real queries.
      const Status valid = DecodeHealthCheck(frame->body);
      if (!valid.ok()) {
        WriteReply(conn, frame->request_id, valid);
        continue;
      }
      Frame reply;
      reply.kind = FrameKind::kHealthReply;
      reply.request_id = frame->request_id;
      reply.body = EncodeHealthReply(backend_->Health());
      WriteRawReply(conn, reply);
      continue;
    }
    if (frame->kind == FrameKind::kStatsRequest) {
      // Stats scrapes bypass the query pipeline like health probes do: a
      // draining daemon still exposes its counters, which is when they are
      // most interesting. A disabled registry answers an empty snapshot.
      const Status valid = DecodeStatsRequest(frame->body);
      if (!valid.ok()) {
        WriteReply(conn, frame->request_id, valid);
        continue;
      }
      Frame reply;
      reply.kind = FrameKind::kStatsReply;
      reply.request_id = frame->request_id;
      reply.body = EncodeStatsReply(config_.metrics != nullptr
                                        ? config_.metrics->Snapshot()
                                        : MetricsSnapshot());
      WriteRawReply(conn, reply);
      continue;
    }
    if (frame->kind != FrameKind::kSearchRequest) {
      WriteReply(conn, frame->request_id,
                 Status::InvalidArgument("expected a search request frame"));
      continue;
    }
    Result<SearchRequest> request = DecodeSearchRequest(frame->body);
    if (!request.ok()) {
      WriteReply(conn, frame->request_id, request.status());
      continue;
    }

    // One CancelSource per in-flight request: fired when the connection
    // drops, so abandoned queries stop dispatching mid-scan. The entry is
    // erased by the done-callback — the reply has been written (or dropped
    // on a closed connection) by then.
    const uint64_t request_id = frame->request_id;
    CancelToken token;
    {
      MutexLock lock(conn->inflight_mutex);
      token = conn->inflight[request_id].token();
    }
    std::shared_ptr<Connection> conn_ref = conn;
    const Status admitted = backend_->Submit(
        conn->id, std::move(request).value(), token,
        [conn_ref, request_id](Result<SearchResponse> outcome) {
          WriteReply(conn_ref, request_id, outcome);
          MutexLock lock(conn_ref->inflight_mutex);
          conn_ref->inflight.erase(request_id);
        });
    if (!admitted.ok()) {
      // Shed synchronously (overload, quota, draining): the rejection IS the
      // reply for this request id.
      WriteReply(conn, request_id, admitted);
      MutexLock lock(conn->inflight_mutex);
      conn->inflight.erase(request_id);
    }
  }
  // Disconnect: everything this connection still has in flight is abandoned
  // work — fire the cancel sources so the scans unwind cooperatively.
  conn->closed.store(true, std::memory_order_release);
  CancelAllInflight(conn.get());
  ::shutdown(conn->fd, SHUT_RDWR);
  // The fd itself is closed by the Connection destructor, once the last
  // in-flight done-callback drops its reference — never while a concurrent
  // WriteReply could still be using it.
}

void XksServer::WriteReply(const std::shared_ptr<Connection>& conn,
                           uint64_t request_id,
                           const Result<SearchResponse>& outcome) {
  if (conn->closed.load(std::memory_order_acquire)) return;
  Frame frame;
  frame.request_id = request_id;
  if (outcome.ok()) {
    frame.kind = FrameKind::kSearchResponse;
    if (conn->encode_seconds != nullptr) {
      const auto start = std::chrono::steady_clock::now();
      frame.body = EncodeSearchResponse(outcome.value());
      conn->encode_seconds->Observe(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count());
    } else {
      frame.body = EncodeSearchResponse(outcome.value());
    }
  } else {
    frame.kind = FrameKind::kStatus;
    frame.body = EncodeStatusPayload(outcome.status());
  }
  WriteRawReply(conn, frame);
}

void XksServer::WriteRawReply(const std::shared_ptr<Connection>& conn,
                              const Frame& frame) {
  if (conn->closed.load(std::memory_order_acquire)) return;
  MutexLock lock(conn->write_mutex);
  if (conn->closed.load(std::memory_order_acquire)) return;
  if (!WriteFrame(conn->fd, frame).ok()) {
    conn->closed.store(true, std::memory_order_release);
  }
}

void XksServer::CancelAllInflight(Connection* conn) {
  MutexLock lock(conn->inflight_mutex);
  for (auto& [id, source] : conn->inflight) source.Cancel();
}

void XksServer::Shutdown() {
  MutexLock lifecycle(lifecycle_mutex_);
  if (!started_ || shut_down_) return;
  shut_down_ = true;

  // 1. Stop accepting: wake the blocked accept and join the acceptor, after
  //    which the connection/reader lists are stable.
  shutting_down_.store(true, std::memory_order_release);
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();

  // 2. Drain the service: every admitted query completes and its reply is
  //    written to its (still open) connection; new submissions from live
  //    readers are rejected with Unavailable.
  backend_->Drain();

  // 3. Now the readers: take ownership of both registries under the lock
  //    (the joined acceptor can no longer append), then wake each reader
  //    out of its blocking read and join it with no lock held — the old
  //    unlocked reads of connections_/reader_threads_ were exactly the
  //    kind of tacit "stable by now" reasoning this PR turns into
  //    compiler-checked structure.
  std::vector<std::shared_ptr<Connection>> connections;
  std::vector<std::thread> readers;
  {
    MutexLock lock(connections_mutex_);
    connections.swap(connections_);
    readers.swap(reader_threads_);
  }
  for (const auto& conn : connections) {
    conn->closed.store(true, std::memory_order_release);
    ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (std::thread& reader : readers) {
    if (reader.joinable()) reader.join();
  }
  connections.clear();  // destructors close the fds

  ::close(listen_fd_);
  listen_fd_ = -1;
}

ServiceStats XksServer::service_stats() const { return backend_->stats(); }

}  // namespace xks
