// The xksd wire protocol: length-prefixed frames carrying serialized
// SearchRequests, SearchResponses and Statuses over a byte stream.
//
// Framing. Every message on the wire is one frame:
//
//   [u32 big-endian payload length][payload]
//   payload = [u8 kind][varint64 request_id][body]
//
// The request_id is chosen by the client and echoed verbatim on the
// response (or error Status) frame, so a client may pipeline any number of
// requests on one connection and match replies arriving out of order — the
// server batches and executes members concurrently, so reply order is NOT
// send order.
//
// Bodies are versioned (leading u8, currently 1) and built from the same
// varint/length-prefixed codec as the on-disk formats (src/common/codec.h);
// doubles travel as their raw IEEE-754 bit pattern in a varint. Decoders
// reject trailing bytes, out-of-range enum values and truncation with
// Corruption, so a malformed or hostile peer cannot push garbage past the
// boundary.
//
// Evolution. New fields are appended as optional trailing sections that are
// encoded only when non-default (and rejected as non-canonical when a peer
// sends them explicitly defaulted), so a message built from default-valued
// new fields is byte-for-byte the original v1 encoding — the golden-pinned
// byte-identity contract survives protocol growth, and current decoders
// accept bytes from older peers.
//
// Fidelity. A request round-trips losslessly: every result-shaping field of
// SearchRequest is carried, so the daemon executes exactly the request the
// client built (the in-process CancelToken is the one field that does not
// travel — the server derives its own from the connection + deadline_ms).
// A response carries the client-visible projection of SearchResponse —
// document/name/score/snippet per hit, cursor, totals, epoch, cache and
// stats counters — not the in-memory fragment trees; EncodeSearchResponse
// is the canonical byte form that the "server responses are byte-identical
// to library responses" contract (tests/server_test.cc) is stated against.

#ifndef XKS_SERVER_WIRE_H_
#define XKS_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/api/search_types.h"
#include "src/common/result.h"
#include "src/obs/metrics.h"

namespace xks {

/// Discriminates frame payloads.
enum class FrameKind : uint8_t {
  /// Client → server: one serialized SearchRequest.
  kSearchRequest = 1,
  /// Server → client: the serialized SearchResponse for one request_id.
  kSearchResponse = 2,
  /// Server → client: a non-OK Status for one request_id (bad request,
  /// deadline exceeded, overload shed, draining, ...).
  kStatus = 3,
  /// Client → server: liveness + snapshot probe (empty body beyond the
  /// version byte). Answered out-of-band of the query pipeline — a draining
  /// or saturated daemon still replies. The sharded coordinator pings
  /// shards with these.
  kHealthCheck = 4,
  /// Server → client: the serialized HealthReply for one kHealthCheck.
  kHealthReply = 5,
  /// Client → server: metrics scrape (empty body beyond the version byte).
  /// Answered out-of-band of the query pipeline, like kHealthCheck — a
  /// draining or saturated daemon still replies.
  kStatsRequest = 6,
  /// Server → client: the serialized MetricsSnapshot for one kStatsRequest.
  kStatsReply = 7,
};

/// A daemon's answer to kHealthCheck: which snapshot it is serving.
/// All-zero until the corpus is built.
struct HealthReply {
  /// Snapshot epoch (Database::epoch()); 0 before Build().
  uint64_t epoch = 0;
  /// Corpus revision (stable across Save/Load, bumped per mutation).
  uint64_t revision = 0;
  /// Live documents in the snapshot.
  uint64_t document_count = 0;
  /// Corpus-wide maximum document depth — the ranking depth normalizer a
  /// coordinator must union across shards for merged scores to be
  /// comparable.
  uint64_t corpus_max_depth = 0;
};

/// One decoded frame.
struct Frame {
  FrameKind kind = FrameKind::kStatus;
  /// Client-chosen correlation id, echoed on the reply.
  uint64_t request_id = 0;
  /// Encoded body (one of the Encode* payloads below).
  std::string body;
};

/// Hard ceiling a reader enforces on incoming payload length before
/// allocating — a 4-byte length prefix must not be a memory-exhaustion
/// primitive. Generous: responses with snippets over big corpora fit easily.
inline constexpr size_t kMaxFrameBytes = 64u << 20;

/// Serializes `request` (body only; wrap via EncodeFrame).
std::string EncodeSearchRequest(const SearchRequest& request);

/// Parses an EncodeSearchRequest body. The returned request carries a
/// default CancelToken; deadline_ms travels and is re-armed by the server.
Result<SearchRequest> DecodeSearchRequest(std::string_view body);

/// Serializes the client-visible projection of `response`.
std::string EncodeSearchResponse(const SearchResponse& response);

/// Parses an EncodeSearchResponse body. Hits carry document, name, score
/// and snippet; fragment trees do not travel.
Result<SearchResponse> DecodeSearchResponse(std::string_view body);

/// Serializes a kHealthCheck body (version byte only).
std::string EncodeHealthCheck();

/// Validates an EncodeHealthCheck body (version + no trailing bytes).
Status DecodeHealthCheck(std::string_view body);

/// Serializes a HealthReply.
std::string EncodeHealthReply(const HealthReply& reply);

/// Parses an EncodeHealthReply body.
Result<HealthReply> DecodeHealthReply(std::string_view body);

/// Serializes a kStatsRequest body (version byte only).
std::string EncodeStatsRequest();

/// Validates an EncodeStatsRequest body (version + no trailing bytes).
Status DecodeStatsRequest(std::string_view body);

/// Serializes a MetricsSnapshot as a kStatsReply body.
std::string EncodeStatsReply(const MetricsSnapshot& snapshot);

/// Parses an EncodeStatsReply body.
Result<MetricsSnapshot> DecodeStatsReply(std::string_view body);

/// Serializes a Status (code + message).
std::string EncodeStatusPayload(const Status& status);

/// Parses an EncodeStatusPayload body into `*out`. The return value is the
/// DECODE outcome (Corruption on malformed bytes); the decoded status itself
/// — typically non-OK — lands in `*out`. (Result<Status> would be ambiguous,
/// hence the out-param.)
Status DecodeStatusPayload(std::string_view body, Status* out);

/// payload bytes (kind + request_id + body) for one frame, without the
/// outer length prefix.
std::string EncodeFramePayload(const Frame& frame);

/// Parses payload bytes back into a Frame.
Result<Frame> DecodeFramePayload(std::string_view payload);

/// Blocking write of one complete frame (length prefix + payload) to `fd`.
/// Retries short writes and EINTR; IoError once the peer is gone.
Status WriteFrame(int fd, const Frame& frame);

/// Blocking read of one complete frame from `fd`. Unavailable on clean EOF
/// at a frame boundary (peer closed), IoError on mid-frame EOF or socket
/// errors, Corruption when the advertised length exceeds `max_frame_bytes`.
Result<Frame> ReadFrame(int fd, size_t max_frame_bytes = kMaxFrameBytes);

}  // namespace xks

#endif  // XKS_SERVER_WIRE_H_
