// XksClient — a blocking client for the xksd wire protocol.
//
// Two usage styles:
//
//   * Call(): send one request, wait for its reply. The simple scripting
//     path (one outstanding request at a time).
//   * Send()/Receive(): pipelining. Any number of requests go out with
//     caller-chosen ids; replies are Received as the server finishes them —
//     which, because the server batches and executes members concurrently,
//     is NOT necessarily send order. Match replies to requests by id.
//
// A reply is either the SearchResponse or the server's non-OK Status for
// that request (deadline exceeded, overload shed, bad request, draining) —
// Receive surfaces both through Reply. Transport-level failures (connection
// refused/reset, framing garbage) surface as the Result error of
// Connect/Send/Receive themselves.
//
// Instances are NOT thread-safe; use one client per thread or lock
// externally. One deliberate exception for wrappers that split send and
// receive across threads (src/coord/shard_channel.h): the socket's two
// directions are independent, so ONE thread may block in
// Receive()/ReceiveFrame() while ANOTHER sends — and Abort() may be called
// from any thread to unblock both. Everything else still needs external
// serialization. Used by examples/xks_client.cpp and tests/server_test.cc.

#ifndef XKS_SERVER_CLIENT_H_
#define XKS_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "src/api/search_types.h"
#include "src/common/result.h"
#include "src/server/wire.h"

namespace xks {

class XksClient {
 public:
  /// One reply, matched to the request that carried `request_id`.
  struct Reply {
    uint64_t request_id = 0;
    /// The response, or the server's error Status for this request.
    Result<SearchResponse> outcome = Status::Internal("uninitialized");
    /// The raw response body bytes exactly as the server sent them
    /// (EncodeSearchResponse output; empty for Status replies). This is
    /// what the byte-identity contract with the library is tested against.
    std::string raw_response;
  };

  /// Connects to `host`:`port` (numeric IPv4). `connect_timeout_ms` bounds
  /// connection establishment (DeadlineExceeded once it elapses); 0 keeps
  /// the OS default, which can far exceed any query deadline — callers with
  /// a budget should always pass one.
  static Result<XksClient> Connect(const std::string& host, uint16_t port,
                                   uint64_t connect_timeout_ms = 0);

  XksClient(XksClient&& other) noexcept;
  XksClient& operator=(XksClient&& other) noexcept;
  ~XksClient();

  XksClient(const XksClient&) = delete;
  XksClient& operator=(const XksClient&) = delete;

  /// Sends `request` under `request_id` without waiting.
  Status Send(uint64_t request_id, const SearchRequest& request);

  /// Blocks for the next reply frame, whichever request it answers.
  Result<Reply> Receive();

  /// Send + Receive for the single-outstanding-request case. (With
  /// pipelined requests in flight, use Send/Receive directly — Call would
  /// misattribute an earlier request's reply.)
  Result<Reply> Call(const SearchRequest& request);

  /// Sends an arbitrary frame (health checks, protocol extensions) without
  /// waiting. The caller owns kind/request_id/body.
  Status SendFrame(const Frame& frame);

  /// Blocks for the next frame, undecoded — the raw counterpart of
  /// Receive() for callers that dispatch on FrameKind themselves.
  Result<Frame> ReceiveFrame();

  /// Half-closes the write side, telling the server no more requests are
  /// coming while replies can still be read.
  void FinishSending();

  /// Fully shuts down the socket (both directions), making any thread
  /// blocked in Receive()/ReceiveFrame() fail promptly with IoError. Safe
  /// to call from another thread; the fd stays owned (and is closed by the
  /// destructor as usual).
  void Abort();

 private:
  explicit XksClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  uint64_t next_request_id_ = 0;
};

}  // namespace xks

#endif  // XKS_SERVER_CLIENT_H_
