#include "src/server/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "src/server/wire.h"

namespace xks {

Result<XksClient> XksClient::Connect(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad server address '" + host +
                                   "' (numeric IPv4 expected)");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status status =
        Status::IoError("connect " + host + ":" + std::to_string(port) + ": " +
                        std::strerror(errno));
    ::close(fd);
    return status;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return XksClient(fd);
}

XksClient::XksClient(XksClient&& other) noexcept
    : fd_(other.fd_), next_request_id_(other.next_request_id_) {
  other.fd_ = -1;
}

XksClient& XksClient::operator=(XksClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    next_request_id_ = other.next_request_id_;
    other.fd_ = -1;
  }
  return *this;
}

XksClient::~XksClient() {
  if (fd_ >= 0) ::close(fd_);
}

Status XksClient::Send(uint64_t request_id, const SearchRequest& request) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  Frame frame;
  frame.kind = FrameKind::kSearchRequest;
  frame.request_id = request_id;
  frame.body = EncodeSearchRequest(request);
  return WriteFrame(fd_, frame);
}

Result<XksClient::Reply> XksClient::Receive() {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  Frame frame;
  XKS_ASSIGN_OR_RETURN(frame, ReadFrame(fd_));
  Reply reply;
  reply.request_id = frame.request_id;
  switch (frame.kind) {
    case FrameKind::kSearchResponse: {
      reply.raw_response = frame.body;
      SearchResponse response;
      XKS_ASSIGN_OR_RETURN(response, DecodeSearchResponse(frame.body));
      reply.outcome = std::move(response);
      return reply;
    }
    case FrameKind::kStatus: {
      Status status;
      XKS_RETURN_IF_ERROR(DecodeStatusPayload(frame.body, &status));
      if (status.ok()) {
        return Status::Corruption("server sent an OK status frame");
      }
      reply.outcome = status;
      return reply;
    }
    case FrameKind::kSearchRequest:
      break;
  }
  return Status::Corruption("unexpected frame kind from server");
}

Result<XksClient::Reply> XksClient::Call(const SearchRequest& request) {
  const uint64_t id = ++next_request_id_;
  XKS_RETURN_IF_ERROR(Send(id, request));
  Reply reply;
  XKS_ASSIGN_OR_RETURN(reply, Receive());
  if (reply.request_id != id) {
    return Status::Internal("reply id " + std::to_string(reply.request_id) +
                            " does not match request id " + std::to_string(id));
  }
  return reply;
}

void XksClient::FinishSending() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

}  // namespace xks
