#include "src/server/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <utility>

namespace xks {
namespace {

/// Connects `fd` with a wall-clock bound: non-blocking connect, poll for
/// writability, then SO_ERROR for the real outcome. Restores blocking mode
/// on success.
Status ConnectWithTimeout(int fd, const sockaddr_in& addr,
                          const std::string& peer,
                          uint64_t connect_timeout_ms) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Status::IoError(std::string("fcntl: ") + std::strerror(errno));
  }
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS && errno != EINTR) {
    return Status::IoError("connect " + peer + ": " + std::strerror(errno));
  }
  if (rc != 0) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    // One overall budget, re-armed only against time already spent: EINTR
    // wakeups do not extend the deadline.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(connect_timeout_ms);
    for (;;) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        return Status::DeadlineExceeded("connect " + peer + ": timed out after " +
                                        std::to_string(connect_timeout_ms) +
                                        "ms");
      }
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - now);
      rc = ::poll(&pfd, 1, static_cast<int>(left.count()) + 1);
      if (rc > 0) break;
      if (rc == 0) {
        return Status::DeadlineExceeded("connect " + peer + ": timed out after " +
                                        std::to_string(connect_timeout_ms) +
                                        "ms");
      }
      if (errno != EINTR) {
        return Status::IoError(std::string("poll: ") + std::strerror(errno));
      }
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0) {
      return Status::IoError(std::string("getsockopt: ") +
                             std::strerror(errno));
    }
    if (so_error != 0) {
      return Status::IoError("connect " + peer + ": " +
                             std::strerror(so_error));
    }
  }
  if (::fcntl(fd, F_SETFL, flags) != 0) {
    return Status::IoError(std::string("fcntl: ") + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

Result<XksClient> XksClient::Connect(const std::string& host, uint16_t port,
                                     uint64_t connect_timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad server address '" + host +
                                   "' (numeric IPv4 expected)");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const std::string peer = host + ":" + std::to_string(port);
  if (connect_timeout_ms > 0) {
    Status status = ConnectWithTimeout(fd, addr, peer, connect_timeout_ms);
    if (!status.ok()) {
      ::close(fd);
      return status;
    }
  } else if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr)) != 0) {
    const Status status =
        Status::IoError("connect " + peer + ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return XksClient(fd);
}

XksClient::XksClient(XksClient&& other) noexcept
    : fd_(other.fd_), next_request_id_(other.next_request_id_) {
  other.fd_ = -1;
}

XksClient& XksClient::operator=(XksClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    next_request_id_ = other.next_request_id_;
    other.fd_ = -1;
  }
  return *this;
}

XksClient::~XksClient() {
  if (fd_ >= 0) ::close(fd_);
}

Status XksClient::Send(uint64_t request_id, const SearchRequest& request) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  Frame frame;
  frame.kind = FrameKind::kSearchRequest;
  frame.request_id = request_id;
  frame.body = EncodeSearchRequest(request);
  return WriteFrame(fd_, frame);
}

Result<XksClient::Reply> XksClient::Receive() {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  Frame frame;
  XKS_ASSIGN_OR_RETURN(frame, ReadFrame(fd_));
  Reply reply;
  reply.request_id = frame.request_id;
  switch (frame.kind) {
    case FrameKind::kSearchResponse: {
      reply.raw_response = frame.body;
      SearchResponse response;
      XKS_ASSIGN_OR_RETURN(response, DecodeSearchResponse(frame.body));
      reply.outcome = std::move(response);
      return reply;
    }
    case FrameKind::kStatus: {
      Status status;
      XKS_RETURN_IF_ERROR(DecodeStatusPayload(frame.body, &status));
      if (status.ok()) {
        return Status::Corruption("server sent an OK status frame");
      }
      reply.outcome = status;
      return reply;
    }
    case FrameKind::kSearchRequest:
    case FrameKind::kHealthCheck:
    case FrameKind::kHealthReply:
    case FrameKind::kStatsRequest:
    case FrameKind::kStatsReply:
      // Health and stats traffic goes through SendFrame/ReceiveFrame; such
      // a frame surfacing here means the caller interleaved the two styles.
      break;
  }
  return Status::Corruption("unexpected frame kind from server");
}

Status XksClient::SendFrame(const Frame& frame) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  return WriteFrame(fd_, frame);
}

Result<Frame> XksClient::ReceiveFrame() {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  return ReadFrame(fd_);
}

Result<XksClient::Reply> XksClient::Call(const SearchRequest& request) {
  const uint64_t id = ++next_request_id_;
  XKS_RETURN_IF_ERROR(Send(id, request));
  Reply reply;
  XKS_ASSIGN_OR_RETURN(reply, Receive());
  if (reply.request_id != id) {
    return Status::Internal("reply id " + std::to_string(reply.request_id) +
                            " does not match request id " + std::to_string(id));
  }
  return reply;
}

void XksClient::FinishSending() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void XksClient::Abort() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

}  // namespace xks
