#include "src/server/wire.h"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <cstring>

#include "src/common/codec.h"

namespace xks {
namespace {

constexpr uint8_t kBodyVersion = 1;

// SearchRequest boolean flags, packed into one byte.
constexpr uint8_t kFlagRank = 1u << 0;
constexpr uint8_t kFlagUseCache = 1u << 1;
constexpr uint8_t kFlagSnippets = 1u << 2;
constexpr uint8_t kFlagRawFragments = 1u << 3;
constexpr uint8_t kFlagStats = 1u << 4;

void PutDouble(std::string* dst, double value) {
  PutVarint64(dst, std::bit_cast<uint64_t>(value));
}

Status GetDouble(Decoder* decoder, double* value) {
  uint64_t bits = 0;
  XKS_RETURN_IF_ERROR(decoder->GetVarint64(&bits));
  *value = std::bit_cast<double>(bits);
  return Status::OK();
}

Status GetByte(Decoder* decoder, uint8_t* value) {
  uint32_t wide = 0;
  XKS_RETURN_IF_ERROR(decoder->GetVarint32(&wide));
  if (wide > 0xff) return Status::Corruption("byte field out of range");
  *value = static_cast<uint8_t>(wide);
  return Status::OK();
}

/// Decodes a u8 into enum E, rejecting values past `max_value`.
template <typename E>
Status GetEnum(Decoder* decoder, E* value, uint8_t max_value,
               const char* what) {
  uint8_t raw = 0;
  XKS_RETURN_IF_ERROR(GetByte(decoder, &raw));
  if (raw > max_value) {
    return Status::Corruption(std::string("bad ") + what + " value " +
                              std::to_string(raw));
  }
  *value = static_cast<E>(raw);
  return Status::OK();
}

Status CheckVersion(Decoder* decoder) {
  uint8_t version = 0;
  XKS_RETURN_IF_ERROR(GetByte(decoder, &version));
  if (version != kBodyVersion) {
    return Status::Unsupported("unsupported wire body version " +
                               std::to_string(version));
  }
  return Status::OK();
}

Status CheckDone(const Decoder& decoder, const char* what) {
  if (!decoder.done()) {
    return Status::Corruption(std::string(what) + " has " +
                              std::to_string(decoder.remaining()) +
                              " trailing bytes");
  }
  return Status::OK();
}

/// Loops a full read of `n` bytes; false with `*eof` set when the stream
/// ended cleanly before the first byte.
Status ReadFull(int fd, char* out, size_t n, bool* clean_eof) {
  *clean_eof = false;
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, out + got, n - got);
    if (r > 0) {
      got += static_cast<size_t>(r);
      continue;
    }
    if (r == 0) {
      if (got == 0) {
        *clean_eof = true;
        return Status::Unavailable("connection closed");
      }
      return Status::IoError("connection closed mid-frame");
    }
    if (errno == EINTR) continue;
    return Status::IoError(std::string("read failed: ") + std::strerror(errno));
  }
  return Status::OK();
}

Status WriteFull(int fd, const char* data, size_t n) {
  // send(MSG_NOSIGNAL) so a peer that hung up yields EPIPE instead of a
  // process-killing SIGPIPE; plain write() is the fallback for the
  // non-socket fds the tests drive frames through.
  bool is_socket = true;
  size_t sent = 0;
  while (sent < n) {
    const ssize_t w =
        is_socket ? ::send(fd, data + sent, n - sent, MSG_NOSIGNAL)
                  : ::write(fd, data + sent, n - sent);
    if (w >= 0) {
      sent += static_cast<size_t>(w);
      continue;
    }
    if (errno == EINTR) continue;
    if (is_socket && errno == ENOTSOCK) {
      is_socket = false;
      continue;
    }
    return Status::IoError(std::string("write failed: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

std::string EncodeSearchRequest(const SearchRequest& request) {
  std::string body;
  body.push_back(static_cast<char>(kBodyVersion));
  PutLengthPrefixed(&body, request.query);
  PutVarint64(&body, request.terms.size());
  for (const QueryTerm& term : request.terms) {
    PutLengthPrefixed(&body, term.word);
    PutLengthPrefixed(&body, term.label);
  }
  PutVarint64(&body, request.documents.size());
  for (DocumentId id : request.documents) PutVarint32(&body, id);
  body.push_back(static_cast<char>(request.semantics));
  body.push_back(static_cast<char>(request.elca_algorithm));
  body.push_back(static_cast<char>(request.slca_algorithm));
  body.push_back(static_cast<char>(request.pruning));
  PutVarint64(&body, request.max_parallelism);
  PutVarint64(&body, request.top_k);
  PutLengthPrefixed(&body, request.cursor);
  uint8_t flags = 0;
  if (request.rank) flags |= kFlagRank;
  if (request.use_cache) flags |= kFlagUseCache;
  if (request.include_snippets) flags |= kFlagSnippets;
  if (request.include_raw_fragments) flags |= kFlagRawFragments;
  if (request.include_stats) flags |= kFlagStats;
  body.push_back(static_cast<char>(flags));
  PutDouble(&body, request.weights.specificity);
  PutDouble(&body, request.weights.proximity);
  PutDouble(&body, request.weights.compactness);
  PutDouble(&body, request.weights.slca_bonus);
  PutDouble(&body, request.weights.match_concentration);
  PutVarint64(&body, request.deadline_ms);
  return body;
}

Result<SearchRequest> DecodeSearchRequest(std::string_view body) {
  Decoder decoder(body);
  XKS_RETURN_IF_ERROR(CheckVersion(&decoder));
  SearchRequest request;
  XKS_RETURN_IF_ERROR(decoder.GetLengthPrefixed(&request.query));
  uint64_t term_count = 0;
  XKS_RETURN_IF_ERROR(decoder.GetVarint64(&term_count));
  if (term_count > decoder.remaining()) {
    return Status::Corruption("term count exceeds remaining bytes");
  }
  request.terms.reserve(static_cast<size_t>(term_count));
  for (uint64_t i = 0; i < term_count; ++i) {
    QueryTerm term;
    XKS_RETURN_IF_ERROR(decoder.GetLengthPrefixed(&term.word));
    XKS_RETURN_IF_ERROR(decoder.GetLengthPrefixed(&term.label));
    request.terms.push_back(std::move(term));
  }
  uint64_t doc_count = 0;
  XKS_RETURN_IF_ERROR(decoder.GetVarint64(&doc_count));
  if (doc_count > decoder.remaining()) {
    return Status::Corruption("document count exceeds remaining bytes");
  }
  request.documents.reserve(static_cast<size_t>(doc_count));
  for (uint64_t i = 0; i < doc_count; ++i) {
    uint32_t id = 0;
    XKS_RETURN_IF_ERROR(decoder.GetVarint32(&id));
    request.documents.push_back(id);
  }
  XKS_RETURN_IF_ERROR(GetEnum(&decoder, &request.semantics,
                              static_cast<uint8_t>(LcaSemantics::kSlca),
                              "semantics"));
  XKS_RETURN_IF_ERROR(GetEnum(&decoder, &request.elca_algorithm,
                              static_cast<uint8_t>(ElcaAlgorithm::kBruteForce),
                              "elca algorithm"));
  XKS_RETURN_IF_ERROR(GetEnum(&decoder, &request.slca_algorithm,
                              static_cast<uint8_t>(SlcaAlgorithm::kBruteForce),
                              "slca algorithm"));
  XKS_RETURN_IF_ERROR(
      GetEnum(&decoder, &request.pruning,
              static_cast<uint8_t>(PruningPolicy::kValidContributor),
              "pruning policy"));
  uint64_t parallelism = 0;
  XKS_RETURN_IF_ERROR(decoder.GetVarint64(&parallelism));
  request.max_parallelism = static_cast<size_t>(parallelism);
  uint64_t top_k = 0;
  XKS_RETURN_IF_ERROR(decoder.GetVarint64(&top_k));
  request.top_k = static_cast<size_t>(top_k);
  XKS_RETURN_IF_ERROR(decoder.GetLengthPrefixed(&request.cursor));
  uint8_t flags = 0;
  XKS_RETURN_IF_ERROR(GetByte(&decoder, &flags));
  request.rank = (flags & kFlagRank) != 0;
  request.use_cache = (flags & kFlagUseCache) != 0;
  request.include_snippets = (flags & kFlagSnippets) != 0;
  request.include_raw_fragments = (flags & kFlagRawFragments) != 0;
  request.include_stats = (flags & kFlagStats) != 0;
  XKS_RETURN_IF_ERROR(GetDouble(&decoder, &request.weights.specificity));
  XKS_RETURN_IF_ERROR(GetDouble(&decoder, &request.weights.proximity));
  XKS_RETURN_IF_ERROR(GetDouble(&decoder, &request.weights.compactness));
  XKS_RETURN_IF_ERROR(GetDouble(&decoder, &request.weights.slca_bonus));
  XKS_RETURN_IF_ERROR(
      GetDouble(&decoder, &request.weights.match_concentration));
  XKS_RETURN_IF_ERROR(decoder.GetVarint64(&request.deadline_ms));
  XKS_RETURN_IF_ERROR(CheckDone(decoder, "search request"));
  return request;
}

std::string EncodeSearchResponse(const SearchResponse& response) {
  std::string body;
  body.push_back(static_cast<char>(kBodyVersion));
  PutVarint64(&body, response.hits.size());
  for (const Hit& hit : response.hits) {
    PutVarint32(&body, hit.document);
    PutLengthPrefixed(&body, hit.document_name);
    PutDouble(&body, hit.score);
    PutLengthPrefixed(&body, hit.snippet);
  }
  PutLengthPrefixed(&body, response.next_cursor);
  PutVarint64(&body, response.total_hits);
  body.push_back(response.total_is_exact ? 1 : 0);
  PutVarint64(&body, response.documents_searched);
  PutVarint64(&body, response.epoch);
  body.push_back(response.served_from_cache ? 1 : 0);
  PutVarint64(&body, response.documents_from_cache);
  body.push_back(response.stats_are_exact ? 1 : 0);
  PutVarint64(&body, response.keyword_node_count);
  PutLengthPrefixed(&body, response.parsed_query.ToString());
  PutDouble(&body, response.timings.get_keyword_nodes_ms);
  PutDouble(&body, response.timings.get_lca_ms);
  PutDouble(&body, response.timings.get_rtf_ms);
  PutDouble(&body, response.timings.prune_ms);
  PutVarint64(&body, response.pruning.raw_nodes);
  PutVarint64(&body, response.pruning.kept_nodes);
  return body;
}

Result<SearchResponse> DecodeSearchResponse(std::string_view body) {
  Decoder decoder(body);
  XKS_RETURN_IF_ERROR(CheckVersion(&decoder));
  SearchResponse response;
  uint64_t hit_count = 0;
  XKS_RETURN_IF_ERROR(decoder.GetVarint64(&hit_count));
  if (hit_count > decoder.remaining()) {
    return Status::Corruption("hit count exceeds remaining bytes");
  }
  response.hits.reserve(static_cast<size_t>(hit_count));
  for (uint64_t i = 0; i < hit_count; ++i) {
    Hit hit;
    XKS_RETURN_IF_ERROR(decoder.GetVarint32(&hit.document));
    XKS_RETURN_IF_ERROR(decoder.GetLengthPrefixed(&hit.document_name));
    XKS_RETURN_IF_ERROR(GetDouble(&decoder, &hit.score));
    XKS_RETURN_IF_ERROR(decoder.GetLengthPrefixed(&hit.snippet));
    response.hits.push_back(std::move(hit));
  }
  XKS_RETURN_IF_ERROR(decoder.GetLengthPrefixed(&response.next_cursor));
  uint64_t value = 0;
  XKS_RETURN_IF_ERROR(decoder.GetVarint64(&value));
  response.total_hits = static_cast<size_t>(value);
  uint8_t flag = 0;
  XKS_RETURN_IF_ERROR(GetByte(&decoder, &flag));
  response.total_is_exact = flag != 0;
  XKS_RETURN_IF_ERROR(decoder.GetVarint64(&value));
  response.documents_searched = static_cast<size_t>(value);
  XKS_RETURN_IF_ERROR(decoder.GetVarint64(&response.epoch));
  XKS_RETURN_IF_ERROR(GetByte(&decoder, &flag));
  response.served_from_cache = flag != 0;
  XKS_RETURN_IF_ERROR(decoder.GetVarint64(&value));
  response.documents_from_cache = static_cast<size_t>(value);
  XKS_RETURN_IF_ERROR(GetByte(&decoder, &flag));
  response.stats_are_exact = flag != 0;
  XKS_RETURN_IF_ERROR(decoder.GetVarint64(&value));
  response.keyword_node_count = static_cast<size_t>(value);
  std::string query_text;
  XKS_RETURN_IF_ERROR(decoder.GetLengthPrefixed(&query_text));
  if (!query_text.empty()) {
    // The canonical display form re-parses to itself; a response for an
    // empty-query error never reaches this decoder (errors travel as
    // Status frames).
    Result<KeywordQuery> parsed = KeywordQuery::Parse(query_text);
    if (parsed.ok()) response.parsed_query = std::move(parsed).value();
  }
  XKS_RETURN_IF_ERROR(
      GetDouble(&decoder, &response.timings.get_keyword_nodes_ms));
  XKS_RETURN_IF_ERROR(GetDouble(&decoder, &response.timings.get_lca_ms));
  XKS_RETURN_IF_ERROR(GetDouble(&decoder, &response.timings.get_rtf_ms));
  XKS_RETURN_IF_ERROR(GetDouble(&decoder, &response.timings.prune_ms));
  XKS_RETURN_IF_ERROR(decoder.GetVarint64(&value));
  response.pruning.raw_nodes = static_cast<size_t>(value);
  XKS_RETURN_IF_ERROR(decoder.GetVarint64(&value));
  response.pruning.kept_nodes = static_cast<size_t>(value);
  XKS_RETURN_IF_ERROR(CheckDone(decoder, "search response"));
  return response;
}

std::string EncodeStatusPayload(const Status& status) {
  std::string body;
  body.push_back(static_cast<char>(kBodyVersion));
  PutVarint32(&body, static_cast<uint32_t>(status.code()));
  PutLengthPrefixed(&body, status.message());
  return body;
}

Status DecodeStatusPayload(std::string_view body, Status* out) {
  Decoder decoder(body);
  XKS_RETURN_IF_ERROR(CheckVersion(&decoder));
  uint32_t code = 0;
  XKS_RETURN_IF_ERROR(decoder.GetVarint32(&code));
  if (code > static_cast<uint32_t>(StatusCode::kUnavailable)) {
    return Status::Corruption("bad status code " + std::to_string(code));
  }
  std::string message;
  XKS_RETURN_IF_ERROR(decoder.GetLengthPrefixed(&message));
  XKS_RETURN_IF_ERROR(CheckDone(decoder, "status payload"));
  *out = Status(static_cast<StatusCode>(code), std::move(message));
  return Status::OK();
}

std::string EncodeFramePayload(const Frame& frame) {
  std::string payload;
  payload.push_back(static_cast<char>(frame.kind));
  PutVarint64(&payload, frame.request_id);
  payload.append(frame.body);
  return payload;
}

Result<Frame> DecodeFramePayload(std::string_view payload) {
  Decoder decoder(payload);
  uint8_t kind = 0;
  XKS_RETURN_IF_ERROR(GetByte(&decoder, &kind));
  if (kind < static_cast<uint8_t>(FrameKind::kSearchRequest) ||
      kind > static_cast<uint8_t>(FrameKind::kStatus)) {
    return Status::Corruption("bad frame kind " + std::to_string(kind));
  }
  Frame frame;
  frame.kind = static_cast<FrameKind>(kind);
  XKS_RETURN_IF_ERROR(decoder.GetVarint64(&frame.request_id));
  frame.body.assign(payload.substr(payload.size() - decoder.remaining()));
  return frame;
}

Status WriteFrame(int fd, const Frame& frame) {
  const std::string payload = EncodeFramePayload(frame);
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame payload exceeds kMaxFrameBytes");
  }
  char header[4];
  const uint32_t n = static_cast<uint32_t>(payload.size());
  header[0] = static_cast<char>((n >> 24) & 0xff);
  header[1] = static_cast<char>((n >> 16) & 0xff);
  header[2] = static_cast<char>((n >> 8) & 0xff);
  header[3] = static_cast<char>(n & 0xff);
  // One buffer, one stream of writes: interleaving with other frames is
  // prevented by the caller's per-connection write lock.
  std::string wire;
  wire.reserve(sizeof(header) + payload.size());
  wire.append(header, sizeof(header));
  wire.append(payload);
  return WriteFull(fd, wire.data(), wire.size());
}

Result<Frame> ReadFrame(int fd, size_t max_frame_bytes) {
  char header[4];
  bool clean_eof = false;
  Status status = ReadFull(fd, header, sizeof(header), &clean_eof);
  XKS_RETURN_IF_ERROR(status);
  const uint32_t n = (static_cast<uint32_t>(static_cast<uint8_t>(header[0]))
                      << 24) |
                     (static_cast<uint32_t>(static_cast<uint8_t>(header[1]))
                      << 16) |
                     (static_cast<uint32_t>(static_cast<uint8_t>(header[2]))
                      << 8) |
                     static_cast<uint32_t>(static_cast<uint8_t>(header[3]));
  if (n > max_frame_bytes) {
    return Status::Corruption("frame length " + std::to_string(n) +
                              " exceeds limit " +
                              std::to_string(max_frame_bytes));
  }
  std::string payload(n, '\0');
  if (n > 0) {
    status = ReadFull(fd, payload.data(), n, &clean_eof);
    if (!status.ok()) {
      return status.code() == StatusCode::kUnavailable
                 ? Status::IoError("connection closed mid-frame")
                 : status;
    }
  }
  return DecodeFramePayload(payload);
}

}  // namespace xks
