#include "src/server/wire.h"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <cstring>

#include "src/common/codec.h"

namespace xks {
namespace {

constexpr uint8_t kBodyVersion = 1;

// SearchRequest boolean flags, packed into one byte.
constexpr uint8_t kFlagRank = 1u << 0;
constexpr uint8_t kFlagUseCache = 1u << 1;
constexpr uint8_t kFlagSnippets = 1u << 2;
constexpr uint8_t kFlagRawFragments = 1u << 3;
constexpr uint8_t kFlagStats = 1u << 4;
constexpr uint8_t kFlagScanBreakdown = 1u << 5;
constexpr uint8_t kFlagIncludeTrace = 1u << 6;

void PutDouble(std::string* dst, double value) {
  PutVarint64(dst, std::bit_cast<uint64_t>(value));
}

Result<double> ReadDouble(ByteReader* reader) {
  uint64_t bits = 0;
  XKS_ASSIGN_OR_RETURN(bits, reader->ReadVarint64());
  return std::bit_cast<double>(bits);
}

/// Decodes a u8 into enum E, rejecting values past `max_value`.
template <typename E>
Status ReadEnum(ByteReader* reader, E* value, uint8_t max_value,
                const char* what) {
  uint8_t raw = 0;
  XKS_ASSIGN_OR_RETURN(raw, reader->ReadU8());
  if (raw > max_value) {
    return Status::Corruption(std::string("bad ") + what + " value " +
                              std::to_string(raw));
  }
  *value = static_cast<E>(raw);
  return Status::OK();
}

Status CheckVersion(ByteReader* reader) {
  uint8_t version = 0;
  XKS_ASSIGN_OR_RETURN(version, reader->ReadU8());
  if (version != kBodyVersion) {
    return Status::Unsupported("unsupported wire body version " +
                               std::to_string(version));
  }
  return Status::OK();
}

/// Loops a full read of `n` bytes; false with `*eof` set when the stream
/// ended cleanly before the first byte.
Status ReadFull(int fd, char* out, size_t n, bool* clean_eof) {
  *clean_eof = false;
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, out + got, n - got);
    if (r > 0) {
      got += static_cast<size_t>(r);
      continue;
    }
    if (r == 0) {
      if (got == 0) {
        *clean_eof = true;
        return Status::Unavailable("connection closed");
      }
      return Status::IoError("connection closed mid-frame");
    }
    if (errno == EINTR) continue;
    return Status::IoError(std::string("read failed: ") + std::strerror(errno));
  }
  return Status::OK();
}

Status WriteFull(int fd, const char* data, size_t n) {
  // send(MSG_NOSIGNAL) so a peer that hung up yields EPIPE instead of a
  // process-killing SIGPIPE; plain write() is the fallback for the
  // non-socket fds the tests drive frames through.
  bool is_socket = true;
  size_t sent = 0;
  while (sent < n) {
    const ssize_t w =
        is_socket ? ::send(fd, data + sent, n - sent, MSG_NOSIGNAL)
                  : ::write(fd, data + sent, n - sent);
    if (w >= 0) {
      sent += static_cast<size_t>(w);
      continue;
    }
    if (errno == EINTR) continue;
    if (is_socket && errno == ENOTSOCK) {
      is_socket = false;
      continue;
    }
    return Status::IoError(std::string("write failed: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

std::string EncodeSearchRequest(const SearchRequest& request) {
  std::string body;
  body.push_back(static_cast<char>(kBodyVersion));
  PutLengthPrefixed(&body, request.query);
  PutVarint64(&body, request.terms.size());
  for (const QueryTerm& term : request.terms) {
    PutLengthPrefixed(&body, term.word);
    PutLengthPrefixed(&body, term.label);
  }
  PutVarint64(&body, request.documents.size());
  for (DocumentId id : request.documents) PutVarint32(&body, id);
  body.push_back(static_cast<char>(request.semantics));
  body.push_back(static_cast<char>(request.elca_algorithm));
  body.push_back(static_cast<char>(request.slca_algorithm));
  body.push_back(static_cast<char>(request.pruning));
  PutVarint64(&body, request.max_parallelism);
  PutVarint64(&body, request.top_k);
  PutLengthPrefixed(&body, request.cursor);
  uint8_t flags = 0;
  if (request.rank) flags |= kFlagRank;
  if (request.use_cache) flags |= kFlagUseCache;
  if (request.include_snippets) flags |= kFlagSnippets;
  if (request.include_raw_fragments) flags |= kFlagRawFragments;
  if (request.include_stats) flags |= kFlagStats;
  if (request.include_scan_breakdown) flags |= kFlagScanBreakdown;
  if (request.include_trace) flags |= kFlagIncludeTrace;
  body.push_back(static_cast<char>(flags));
  PutDouble(&body, request.weights.specificity);
  PutDouble(&body, request.weights.proximity);
  PutDouble(&body, request.weights.compactness);
  PutDouble(&body, request.weights.slca_bonus);
  PutDouble(&body, request.weights.match_concentration);
  PutVarint64(&body, request.deadline_ms);
  // Optional trailing section (see wire.h "Evolution"): present only when
  // non-default, so a defaulted request is byte-for-byte the v1 encoding.
  if (request.shared_depth_normalizer != 0) {
    PutVarint64(&body, request.shared_depth_normalizer);
  }
  return body;
}

Result<SearchRequest> DecodeSearchRequest(std::string_view body) {
  ByteReader reader(body);
  XKS_RETURN_IF_ERROR(CheckVersion(&reader));
  SearchRequest request;
  XKS_ASSIGN_OR_RETURN(request.query, reader.ReadLengthPrefixedString());
  uint64_t term_count = 0;
  XKS_ASSIGN_OR_RETURN(term_count, reader.ReadCount("term count"));
  request.terms.reserve(static_cast<size_t>(term_count));
  for (uint64_t i = 0; i < term_count; ++i) {
    QueryTerm term;
    XKS_ASSIGN_OR_RETURN(term.word, reader.ReadLengthPrefixedString());
    XKS_ASSIGN_OR_RETURN(term.label, reader.ReadLengthPrefixedString());
    request.terms.push_back(std::move(term));
  }
  uint64_t doc_count = 0;
  XKS_ASSIGN_OR_RETURN(doc_count, reader.ReadCount("document count"));
  request.documents.reserve(static_cast<size_t>(doc_count));
  for (uint64_t i = 0; i < doc_count; ++i) {
    uint32_t id = 0;
    XKS_ASSIGN_OR_RETURN(id, reader.ReadVarint32());
    request.documents.push_back(id);
  }
  XKS_RETURN_IF_ERROR(ReadEnum(&reader, &request.semantics,
                               static_cast<uint8_t>(LcaSemantics::kSlca),
                               "semantics"));
  XKS_RETURN_IF_ERROR(ReadEnum(&reader, &request.elca_algorithm,
                               static_cast<uint8_t>(ElcaAlgorithm::kBruteForce),
                               "elca algorithm"));
  XKS_RETURN_IF_ERROR(ReadEnum(&reader, &request.slca_algorithm,
                               static_cast<uint8_t>(SlcaAlgorithm::kBruteForce),
                               "slca algorithm"));
  XKS_RETURN_IF_ERROR(
      ReadEnum(&reader, &request.pruning,
               static_cast<uint8_t>(PruningPolicy::kValidContributor),
               "pruning policy"));
  uint64_t parallelism = 0;
  XKS_ASSIGN_OR_RETURN(parallelism, reader.ReadVarint64());
  request.max_parallelism = static_cast<size_t>(parallelism);
  uint64_t top_k = 0;
  XKS_ASSIGN_OR_RETURN(top_k, reader.ReadVarint64());
  request.top_k = static_cast<size_t>(top_k);
  XKS_ASSIGN_OR_RETURN(request.cursor, reader.ReadLengthPrefixedString());
  uint8_t flags = 0;
  XKS_ASSIGN_OR_RETURN(flags, reader.ReadU8());
  request.rank = (flags & kFlagRank) != 0;
  request.use_cache = (flags & kFlagUseCache) != 0;
  request.include_snippets = (flags & kFlagSnippets) != 0;
  request.include_raw_fragments = (flags & kFlagRawFragments) != 0;
  request.include_stats = (flags & kFlagStats) != 0;
  request.include_scan_breakdown = (flags & kFlagScanBreakdown) != 0;
  request.include_trace = (flags & kFlagIncludeTrace) != 0;
  XKS_ASSIGN_OR_RETURN(request.weights.specificity, ReadDouble(&reader));
  XKS_ASSIGN_OR_RETURN(request.weights.proximity, ReadDouble(&reader));
  XKS_ASSIGN_OR_RETURN(request.weights.compactness, ReadDouble(&reader));
  XKS_ASSIGN_OR_RETURN(request.weights.slca_bonus, ReadDouble(&reader));
  XKS_ASSIGN_OR_RETURN(request.weights.match_concentration,
                       ReadDouble(&reader));
  XKS_ASSIGN_OR_RETURN(request.deadline_ms, reader.ReadVarint64());
  if (reader.remaining() > 0) {
    XKS_ASSIGN_OR_RETURN(request.shared_depth_normalizer,
                         reader.ReadVarint64());
    if (request.shared_depth_normalizer == 0) {
      return Status::Corruption(
          "non-canonical search request: explicit zero depth normalizer");
    }
  }
  XKS_RETURN_IF_ERROR(reader.ExpectDone("search request"));
  return request;
}

std::string EncodeSearchResponse(const SearchResponse& response) {
  std::string body;
  body.push_back(static_cast<char>(kBodyVersion));
  PutVarint64(&body, response.hits.size());
  for (const Hit& hit : response.hits) {
    PutVarint32(&body, hit.document);
    PutLengthPrefixed(&body, hit.document_name);
    PutDouble(&body, hit.score);
    PutLengthPrefixed(&body, hit.snippet);
  }
  PutLengthPrefixed(&body, response.next_cursor);
  PutVarint64(&body, response.total_hits);
  body.push_back(response.total_is_exact ? 1 : 0);
  PutVarint64(&body, response.documents_searched);
  PutVarint64(&body, response.epoch);
  body.push_back(response.served_from_cache ? 1 : 0);
  PutVarint64(&body, response.documents_from_cache);
  body.push_back(response.stats_are_exact ? 1 : 0);
  PutVarint64(&body, response.keyword_node_count);
  PutLengthPrefixed(&body, response.parsed_query.ToString());
  PutDouble(&body, response.timings.get_keyword_nodes_ms);
  PutDouble(&body, response.timings.get_lca_ms);
  PutDouble(&body, response.timings.get_rtf_ms);
  PutDouble(&body, response.timings.prune_ms);
  PutVarint64(&body, response.pruning.raw_nodes);
  PutVarint64(&body, response.pruning.kept_nodes);
  // Optional trailing section (see wire.h "Evolution"): the per-document
  // scan breakdown, present only when the request asked for it.
  if (!response.scan_breakdown.empty()) {
    PutVarint64(&body, response.scan_breakdown.size());
    for (const DocumentScanCount& entry : response.scan_breakdown) {
      PutVarint32(&body, entry.document);
      PutVarint64(&body, entry.hits);
    }
  }
  // Second optional trailing section: the query trace. A varint 0 where the
  // scan-breakdown count would be (the count is >= 1 whenever the breakdown
  // is present) says "no breakdown, trace follows"; after a non-empty
  // breakdown the same 0 acts as a section separator. Absent entirely when
  // there is no trace, so trace-off responses keep the prior byte form.
  if (response.trace != nullptr) {
    PutVarint64(&body, 0);
    PutLengthPrefixed(&body, EncodeTraceSpan(*response.trace));
  }
  return body;
}

Result<SearchResponse> DecodeSearchResponse(std::string_view body) {
  ByteReader reader(body);
  XKS_RETURN_IF_ERROR(CheckVersion(&reader));
  SearchResponse response;
  uint64_t hit_count = 0;
  XKS_ASSIGN_OR_RETURN(hit_count, reader.ReadCount("hit count"));
  response.hits.reserve(static_cast<size_t>(hit_count));
  for (uint64_t i = 0; i < hit_count; ++i) {
    Hit hit;
    XKS_ASSIGN_OR_RETURN(hit.document, reader.ReadVarint32());
    XKS_ASSIGN_OR_RETURN(hit.document_name, reader.ReadLengthPrefixedString());
    XKS_ASSIGN_OR_RETURN(hit.score, ReadDouble(&reader));
    XKS_ASSIGN_OR_RETURN(hit.snippet, reader.ReadLengthPrefixedString());
    response.hits.push_back(std::move(hit));
  }
  XKS_ASSIGN_OR_RETURN(response.next_cursor,
                       reader.ReadLengthPrefixedString());
  uint64_t value = 0;
  XKS_ASSIGN_OR_RETURN(value, reader.ReadVarint64());
  response.total_hits = static_cast<size_t>(value);
  uint8_t flag = 0;
  XKS_ASSIGN_OR_RETURN(flag, reader.ReadU8());
  response.total_is_exact = flag != 0;
  XKS_ASSIGN_OR_RETURN(value, reader.ReadVarint64());
  response.documents_searched = static_cast<size_t>(value);
  XKS_ASSIGN_OR_RETURN(response.epoch, reader.ReadVarint64());
  XKS_ASSIGN_OR_RETURN(flag, reader.ReadU8());
  response.served_from_cache = flag != 0;
  XKS_ASSIGN_OR_RETURN(value, reader.ReadVarint64());
  response.documents_from_cache = static_cast<size_t>(value);
  XKS_ASSIGN_OR_RETURN(flag, reader.ReadU8());
  response.stats_are_exact = flag != 0;
  XKS_ASSIGN_OR_RETURN(value, reader.ReadVarint64());
  response.keyword_node_count = static_cast<size_t>(value);
  std::string query_text;
  XKS_ASSIGN_OR_RETURN(query_text, reader.ReadLengthPrefixedString());
  if (!query_text.empty()) {
    // The canonical display form re-parses to itself; a response for an
    // empty-query error never reaches this decoder (errors travel as
    // Status frames).
    Result<KeywordQuery> parsed = KeywordQuery::Parse(query_text);
    if (parsed.ok()) response.parsed_query = std::move(parsed).value();
  }
  XKS_ASSIGN_OR_RETURN(response.timings.get_keyword_nodes_ms,
                       ReadDouble(&reader));
  XKS_ASSIGN_OR_RETURN(response.timings.get_lca_ms, ReadDouble(&reader));
  XKS_ASSIGN_OR_RETURN(response.timings.get_rtf_ms, ReadDouble(&reader));
  XKS_ASSIGN_OR_RETURN(response.timings.prune_ms, ReadDouble(&reader));
  XKS_ASSIGN_OR_RETURN(value, reader.ReadVarint64());
  response.pruning.raw_nodes = static_cast<size_t>(value);
  XKS_ASSIGN_OR_RETURN(value, reader.ReadVarint64());
  response.pruning.kept_nodes = static_cast<size_t>(value);
  if (reader.remaining() > 0) {
    // Either the scan-breakdown section (leading count >= 1), or — when the
    // leading varint is 0 — the trace section directly (see the encoder).
    uint64_t breakdown_count = 0;
    XKS_ASSIGN_OR_RETURN(breakdown_count,
                         reader.ReadCount("scan breakdown count"));
    response.scan_breakdown.reserve(static_cast<size_t>(breakdown_count));
    for (uint64_t i = 0; i < breakdown_count; ++i) {
      DocumentScanCount entry;
      XKS_ASSIGN_OR_RETURN(entry.document, reader.ReadVarint32());
      XKS_ASSIGN_OR_RETURN(entry.hits, reader.ReadVarint64());
      response.scan_breakdown.push_back(entry);
    }
    bool expect_trace = breakdown_count == 0;
    if (!expect_trace && reader.remaining() > 0) {
      uint64_t separator = 0;
      XKS_ASSIGN_OR_RETURN(separator, reader.ReadVarint64());
      if (separator != 0) {
        return Status::Corruption("bad trace section separator " +
                                  std::to_string(separator));
      }
      expect_trace = true;
    }
    if (expect_trace) {
      std::string_view trace_bytes;
      XKS_ASSIGN_OR_RETURN(trace_bytes, reader.ReadLengthPrefixedSpan());
      if (trace_bytes.empty()) {
        return Status::Corruption(
            "non-canonical search response: empty trace section");
      }
      TraceSpan root;
      XKS_RETURN_IF_ERROR(DecodeTraceSpan(trace_bytes, &root));
      response.trace = std::make_shared<const TraceSpan>(std::move(root));
    }
  }
  XKS_RETURN_IF_ERROR(reader.ExpectDone("search response"));
  return response;
}

std::string EncodeHealthCheck() {
  std::string body;
  body.push_back(static_cast<char>(kBodyVersion));
  return body;
}

Status DecodeHealthCheck(std::string_view body) {
  ByteReader reader(body);
  XKS_RETURN_IF_ERROR(CheckVersion(&reader));
  return reader.ExpectDone("health check");
}

std::string EncodeHealthReply(const HealthReply& reply) {
  std::string body;
  body.push_back(static_cast<char>(kBodyVersion));
  PutVarint64(&body, reply.epoch);
  PutVarint64(&body, reply.revision);
  PutVarint64(&body, reply.document_count);
  PutVarint64(&body, reply.corpus_max_depth);
  return body;
}

Result<HealthReply> DecodeHealthReply(std::string_view body) {
  ByteReader reader(body);
  XKS_RETURN_IF_ERROR(CheckVersion(&reader));
  HealthReply reply;
  XKS_ASSIGN_OR_RETURN(reply.epoch, reader.ReadVarint64());
  XKS_ASSIGN_OR_RETURN(reply.revision, reader.ReadVarint64());
  XKS_ASSIGN_OR_RETURN(reply.document_count, reader.ReadVarint64());
  XKS_ASSIGN_OR_RETURN(reply.corpus_max_depth, reader.ReadVarint64());
  XKS_RETURN_IF_ERROR(reader.ExpectDone("health reply"));
  return reply;
}

std::string EncodeStatsRequest() {
  std::string body;
  body.push_back(static_cast<char>(kBodyVersion));
  return body;
}

Status DecodeStatsRequest(std::string_view body) {
  ByteReader reader(body);
  XKS_RETURN_IF_ERROR(CheckVersion(&reader));
  return reader.ExpectDone("stats request");
}

std::string EncodeStatsReply(const MetricsSnapshot& snapshot) {
  std::string body;
  body.push_back(static_cast<char>(kBodyVersion));
  AppendMetricsSnapshot(&body, snapshot);
  return body;
}

Result<MetricsSnapshot> DecodeStatsReply(std::string_view body) {
  ByteReader reader(body);
  XKS_RETURN_IF_ERROR(CheckVersion(&reader));
  MetricsSnapshot snapshot;
  XKS_RETURN_IF_ERROR(DecodeMetricsSnapshot(reader.rest(), &snapshot));
  return snapshot;
}

std::string EncodeStatusPayload(const Status& status) {
  std::string body;
  body.push_back(static_cast<char>(kBodyVersion));
  PutVarint32(&body, static_cast<uint32_t>(status.code()));
  PutLengthPrefixed(&body, status.message());
  return body;
}

Status DecodeStatusPayload(std::string_view body, Status* out) {
  ByteReader reader(body);
  XKS_RETURN_IF_ERROR(CheckVersion(&reader));
  uint32_t code = 0;
  XKS_ASSIGN_OR_RETURN(code, reader.ReadVarint32());
  if (code > static_cast<uint32_t>(StatusCode::kUnavailable)) {
    return Status::Corruption("bad status code " + std::to_string(code));
  }
  std::string message;
  XKS_ASSIGN_OR_RETURN(message, reader.ReadLengthPrefixedString());
  XKS_RETURN_IF_ERROR(reader.ExpectDone("status payload"));
  *out = Status(static_cast<StatusCode>(code), std::move(message));
  return Status::OK();
}

std::string EncodeFramePayload(const Frame& frame) {
  std::string payload;
  payload.push_back(static_cast<char>(frame.kind));
  PutVarint64(&payload, frame.request_id);
  payload.append(frame.body);
  return payload;
}

Result<Frame> DecodeFramePayload(std::string_view payload) {
  ByteReader reader(payload);
  uint8_t kind = 0;
  XKS_ASSIGN_OR_RETURN(kind, reader.ReadU8());
  if (kind < static_cast<uint8_t>(FrameKind::kSearchRequest) ||
      kind > static_cast<uint8_t>(FrameKind::kStatsReply)) {
    return Status::Corruption("bad frame kind " + std::to_string(kind));
  }
  Frame frame;
  frame.kind = static_cast<FrameKind>(kind);
  XKS_ASSIGN_OR_RETURN(frame.request_id, reader.ReadVarint64());
  frame.body.assign(reader.rest());
  return frame;
}

Status WriteFrame(int fd, const Frame& frame) {
  const std::string payload = EncodeFramePayload(frame);
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame payload exceeds kMaxFrameBytes");
  }
  // One buffer, one stream of writes: interleaving with other frames is
  // prevented by the caller's per-connection write lock.
  std::string wire;
  wire.reserve(4 + payload.size());
  PutFixedU32BE(&wire, static_cast<uint32_t>(payload.size()));
  wire.append(payload);
  return WriteFull(fd, wire.data(), wire.size());
}

Result<Frame> ReadFrame(int fd, size_t max_frame_bytes) {
  char header[4];
  bool clean_eof = false;
  Status status = ReadFull(fd, header, sizeof(header), &clean_eof);
  XKS_RETURN_IF_ERROR(status);
  ByteReader header_reader(std::string_view(header, sizeof(header)));
  uint32_t n = 0;
  XKS_ASSIGN_OR_RETURN(n, header_reader.ReadFixedU32BE());
  if (n > max_frame_bytes) {
    return Status::Corruption("frame length " + std::to_string(n) +
                              " exceeds limit " +
                              std::to_string(max_frame_bytes));
  }
  std::string payload(n, '\0');
  if (n > 0) {
    status = ReadFull(fd, payload.data(), n, &clean_eof);
    if (!status.ok()) {
      return status.code() == StatusCode::kUnavailable
                 ? Status::IoError("connection closed mid-frame")
                 : status;
    }
  }
  return DecodeFramePayload(payload);
}

}  // namespace xks
