// ShreddedStore: the embedded stand-in for the paper's PostgreSQL platform.

#ifndef XKS_STORAGE_STORE_H_
#define XKS_STORAGE_STORE_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/index/inverted_index.h"
#include "src/storage/shredder.h"
#include "src/storage/tables.h"
#include "src/xml/dom.h"

namespace xks {

/// Per-document aggregate statistics, extracted once per store and merged /
/// unmerged into corpus-level aggregates by the catalog (src/api/database.h).
/// Keeping these per document is what makes corpus mutations O(changed doc):
/// adding or removing a document only touches its own word list, posting
/// count and depth — never the other documents' tables.
struct DocumentStats {
  /// (word, shred-time frequency), sorted by word.
  std::vector<std::pair<std::string, uint64_t>> word_frequencies;
  /// Total postings of the document's inverted index.
  size_t postings = 0;
  /// Depth of the document's deepest element (>= 1).
  size_t max_depth = 1;
};

/// Bundles the three shredded tables with the inverted index built over the
/// value table, plus binary persistence. This is the complete query-time
/// substrate: given a keyword query, the store produces the sorted keyword
/// node lists (what the paper fetched via SQL) and answers the per-node
/// metadata probes the RTF construction needs (label, ancestor labels, cID).
class ShreddedStore {
 public:
  ShreddedStore() = default;

  /// Shreds `doc` and builds the index. The document itself is not retained;
  /// everything query time needs lives in the tables.
  static ShreddedStore Build(const Document& doc);

  const LabelTable& labels() const { return tables_.labels; }
  const ElementTable& elements() const { return tables_.elements; }
  const ValueTable& values() const { return tables_.values; }
  const InvertedIndex& index() const { return index_; }

  /// Sorted keyword-node Dewey list for `word` (lowercased by the caller or
  /// not — the store lowercases defensively). Empty when the word is absent
  /// or a stop word.
  const PostingList& KeywordNodes(const std::string& word) const;

  /// Label-constrained keyword nodes: the subset of KeywordNodes(word) whose
  /// element label is `label` (XSearch-style "label:word" terms). Returns an
  /// owned, sorted list; empty when the word or label is unknown.
  PostingList KeywordNodesWithLabel(const std::string& word,
                                    const std::string& label) const;

  /// Label string of the node at `dewey`.
  Result<std::string> LabelOf(const Dewey& dewey) const;

  /// Labels of the ancestors-or-self on the path root → `dewey`, rebuilt
  /// from the element table's label-number-sequence.
  Result<std::vector<std::string>> AncestorLabels(const Dewey& dewey) const;

  /// cID (own-content feature) of the node at `dewey`.
  Result<ContentId> ContentFeatureOf(const Dewey& dewey) const;

  /// Shred-time frequency of `word`.
  uint64_t WordFrequency(const std::string& word) const;

  /// Extracts the document-level aggregates (word frequencies, posting
  /// count, deepest element). O(document); called once per catalog mutation
  /// on the changed document only.
  DocumentStats ComputeStats() const;

  /// Serializes the store to `path` / restores it. The format is the
  /// library's own compact binary layout (magic "XKS1").
  Status Save(const std::string& path) const;
  static Result<ShreddedStore> Load(const std::string& path);

  /// Encode/decode against in-memory buffers (used by Save/Load and tests).
  void EncodeTo(std::string* dst) const;
  static Result<ShreddedStore> DecodeFrom(std::string_view data);

 private:
  ShreddedTables tables_;
  InvertedIndex index_;
};

}  // namespace xks

#endif  // XKS_STORAGE_STORE_H_
