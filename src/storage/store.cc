#include "src/storage/store.h"

#include <algorithm>

#include "src/common/io.h"
#include "src/common/string_util.h"
#include "src/storage/shredder.h"

namespace xks {
namespace {

constexpr char kMagic[] = "XKS1";

}  // namespace

ShreddedStore ShreddedStore::Build(const Document& doc) {
  ShreddedStore store;
  store.tables_ = Shred(doc);
  store.index_ = InvertedIndex::Build(store.tables_.values);
  return store;
}

const PostingList& ShreddedStore::KeywordNodes(const std::string& word) const {
  return index_.FindOrEmpty(AsciiLower(word));
}

PostingList ShreddedStore::KeywordNodesWithLabel(const std::string& word,
                                                 const std::string& label) const {
  PostingList filtered;
  // Labels are interned in their original case; constraints compare
  // case-insensitively, consistent with content matching.
  const std::string wanted = AsciiLower(label);
  std::vector<bool> matching_ids(tables_.labels.size(), false);
  bool any = false;
  for (uint32_t id = 0; id < tables_.labels.size(); ++id) {
    if (AsciiLower(tables_.labels.Name(id)) == wanted) {
      matching_ids[id] = true;
      any = true;
    }
  }
  if (!any) return filtered;
  for (const Dewey& d : KeywordNodes(word)) {
    Result<const ElementRow*> row = tables_.elements.Find(d);
    if (row.ok() && matching_ids[(*row)->label_id]) filtered.push_back(d);
  }
  return filtered;
}

Result<std::string> ShreddedStore::LabelOf(const Dewey& dewey) const {
  const ElementRow* row = nullptr;
  XKS_ASSIGN_OR_RETURN(row, tables_.elements.Find(dewey));
  return tables_.labels.Name(row->label_id);
}

Result<std::vector<std::string>> ShreddedStore::AncestorLabels(
    const Dewey& dewey) const {
  const ElementRow* row = nullptr;
  XKS_ASSIGN_OR_RETURN(row, tables_.elements.Find(dewey));
  std::vector<std::string> labels;
  labels.reserve(row->label_path.size());
  for (uint32_t id : row->label_path) labels.push_back(tables_.labels.Name(id));
  return labels;
}

Result<ContentId> ShreddedStore::ContentFeatureOf(const Dewey& dewey) const {
  const ElementRow* row = nullptr;
  XKS_ASSIGN_OR_RETURN(row, tables_.elements.Find(dewey));
  return row->content_feature;
}

uint64_t ShreddedStore::WordFrequency(const std::string& word) const {
  return tables_.values.Frequency(AsciiLower(word));
}

DocumentStats ShreddedStore::ComputeStats() const {
  DocumentStats stats;
  stats.word_frequencies = tables_.values.FrequencyTable();
  stats.postings = index_.total_postings();
  for (size_t i = 0; i < tables_.elements.size(); ++i) {
    stats.max_depth =
        std::max<size_t>(stats.max_depth, tables_.elements.row(i).level);
  }
  return stats;
}

void ShreddedStore::EncodeTo(std::string* dst) const {
  dst->append(kMagic, 4);
  tables_.labels.Encode(dst);
  tables_.elements.Encode(dst);
  tables_.values.Encode(dst);
}

Result<ShreddedStore> ShreddedStore::DecodeFrom(std::string_view data) {
  if (data.size() < 4 || data.substr(0, 4) != kMagic) {
    return Status::Corruption("bad store magic");
  }
  ByteReader reader(data.substr(4));
  ShreddedStore store;
  XKS_RETURN_IF_ERROR(store.tables_.labels.Decode(&reader));
  XKS_RETURN_IF_ERROR(store.tables_.elements.Decode(&reader));
  XKS_RETURN_IF_ERROR(store.tables_.values.Decode(&reader));
  XKS_RETURN_IF_ERROR(reader.ExpectDone("store file"));
  store.index_ = InvertedIndex::Build(store.tables_.values);
  return store;
}

Status ShreddedStore::Save(const std::string& path) const {
  std::string buffer;
  EncodeTo(&buffer);
  return WriteStringToFile(path, buffer);
}

Result<ShreddedStore> ShreddedStore::Load(const std::string& path) {
  std::string buffer;
  XKS_ASSIGN_OR_RETURN(buffer, ReadFileToString(path));
  return DecodeFrom(buffer);
}

}  // namespace xks
