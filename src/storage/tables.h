// The paper's shredded relational schema (Section 5.2), embedded.
//
// The authors shred XML into PostgreSQL with three tables:
//   label   (label, ID)
//   element (node's label, Dewey, level, label-number-sequence, content-feature)
//   value   (node's label, Dewey, attribute, keyword)
// We reproduce the same three tables as in-process column-store-style
// structures with binary persistence (see store.h). The algorithms consume
// exactly what the paper's SQL produced: keyword rows from `value`, ancestor
// label sequences and content features from `element`.

#ifndef XKS_STORAGE_TABLES_H_
#define XKS_STORAGE_TABLES_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/codec.h"
#include "src/common/result.h"
#include "src/text/content.h"
#include "src/xml/dewey.h"

namespace xks {

/// Sentinel for "label not interned".
inline constexpr uint32_t kNoLabelId = UINT32_MAX;

/// label(label, ID): bidirectional dictionary of distinct element labels.
class LabelTable {
 public:
  /// Returns the id of `label`, interning it if new.
  uint32_t Intern(const std::string& label);

  /// Returns the id of `label`, or kNoLabelId when unknown.
  uint32_t Lookup(const std::string& label) const;

  /// The label string for `id`. Requires a valid id.
  const std::string& Name(uint32_t id) const { return names_[id]; }

  size_t size() const { return names_.size(); }

  void Encode(std::string* dst) const;
  Status Decode(ByteReader* reader);

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, uint32_t> ids_;
};

/// One row of element(label, dewey, level, label-number-sequence, cID).
struct ElementRow {
  uint32_t label_id = kNoLabelId;
  Dewey dewey;
  /// Depth of the node; equals dewey.depth().
  uint32_t level = 0;
  /// Label ids of the ancestors-or-self on the path root → node ("label
  /// number sequence", used to rebuild ancestor labels without the document).
  std::vector<uint32_t> label_path;
  /// cID of the node's own content set Cv (min/max word feature).
  ContentId content_feature;
};

/// element table: rows in document (Dewey) order with a hash lookup.
class ElementTable {
 public:
  /// Appends a row; rows must arrive in document order.
  void Append(ElementRow row);

  size_t size() const { return rows_.size(); }
  const ElementRow& row(size_t i) const { return rows_[i]; }

  /// Finds the row for `dewey`; NotFound when absent.
  Result<const ElementRow*> Find(const Dewey& dewey) const;

  void Encode(std::string* dst) const;
  Status Decode(ByteReader* reader);

 private:
  std::vector<ElementRow> rows_;
  std::unordered_map<Dewey, uint32_t, DeweyHash> by_dewey_;
};

/// Where a value-table word came from inside its node.
enum class ValueSource : uint8_t {
  kLabel = 0,      ///< the element's own label
  kAttribute = 1,  ///< an attribute name or value
  kText = 2,       ///< character data
};

/// One row of value(label, dewey, attribute, keyword): node `dewey` (labelled
/// `label_id`) contains the word `keyword`, originating from `source`.
struct ValueRow {
  std::string keyword;
  uint32_t label_id = kNoLabelId;
  Dewey dewey;
  ValueSource source = ValueSource::kText;
};

/// value table: flat rows plus shred-time word frequencies (Section 5.1
/// records the frequency of interesting words during shredding).
class ValueTable {
 public:
  void Append(ValueRow row) { rows_.push_back(std::move(row)); }

  size_t size() const { return rows_.size(); }
  const ValueRow& row(size_t i) const { return rows_[i]; }
  const std::vector<ValueRow>& rows() const { return rows_; }

  /// Bumps the occurrence counter for `word`.
  void CountWord(const std::string& word) { ++frequencies_[word]; }

  /// Total occurrences of `word` in the shredded data (0 when absent).
  uint64_t Frequency(const std::string& word) const;

  /// All (word, frequency) pairs, sorted by word.
  std::vector<std::pair<std::string, uint64_t>> FrequencyTable() const;

  void Encode(std::string* dst) const;
  Status Decode(ByteReader* reader);

 private:
  std::vector<ValueRow> rows_;
  std::unordered_map<std::string, uint64_t> frequencies_;
};

/// Encodes a Dewey code into `dst` (varint count + components).
void EncodeDewey(std::string* dst, const Dewey& dewey);

/// Decodes a Dewey code.
Status DecodeDewey(ByteReader* reader, Dewey* dewey);

}  // namespace xks

#endif  // XKS_STORAGE_TABLES_H_
