#include "src/storage/tables.h"

#include <algorithm>

namespace xks {

void EncodeDewey(std::string* dst, const Dewey& dewey) {
  PutVarint32(dst, static_cast<uint32_t>(dewey.depth()));
  for (uint32_t c : dewey.components()) PutVarint32(dst, c);
}

Status DecodeDewey(Decoder* decoder, Dewey* dewey) {
  uint32_t n = 0;
  XKS_RETURN_IF_ERROR(decoder->GetVarint32(&n));
  // Every component takes at least one encoded byte, so a count beyond the
  // bytes left is corruption — reject before allocating for it.
  if (n > 1u << 20 || n > decoder->remaining()) {
    return Status::Corruption("implausible Dewey depth");
  }
  std::vector<uint32_t> components(n);
  for (uint32_t i = 0; i < n; ++i) {
    XKS_RETURN_IF_ERROR(decoder->GetVarint32(&components[i]));
  }
  *dewey = Dewey(std::move(components));
  return Status::OK();
}

uint32_t LabelTable::Intern(const std::string& label) {
  auto it = ids_.find(label);
  if (it != ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(names_.size());
  names_.push_back(label);
  ids_.emplace(label, id);
  return id;
}

uint32_t LabelTable::Lookup(const std::string& label) const {
  auto it = ids_.find(label);
  return it == ids_.end() ? kNoLabelId : it->second;
}

void LabelTable::Encode(std::string* dst) const {
  PutVarint64(dst, names_.size());
  for (const std::string& name : names_) PutLengthPrefixed(dst, name);
}

Status LabelTable::Decode(Decoder* decoder) {
  names_.clear();
  ids_.clear();
  uint64_t n = 0;
  XKS_RETURN_IF_ERROR(decoder->GetVarint64(&n));
  // Each entry consumes at least one byte of input; anything larger than the
  // bytes left cannot be a valid count (and must not drive a reserve).
  if (n > decoder->remaining()) {
    return Status::Corruption("implausible label count");
  }
  names_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::string name;
    XKS_RETURN_IF_ERROR(decoder->GetLengthPrefixed(&name));
    ids_.emplace(name, static_cast<uint32_t>(names_.size()));
    names_.push_back(std::move(name));
  }
  return Status::OK();
}

void ElementTable::Append(ElementRow row) {
  by_dewey_.emplace(row.dewey, static_cast<uint32_t>(rows_.size()));
  rows_.push_back(std::move(row));
}

Result<const ElementRow*> ElementTable::Find(const Dewey& dewey) const {
  auto it = by_dewey_.find(dewey);
  if (it == by_dewey_.end()) {
    return Status::NotFound("element row for Dewey " + dewey.ToString());
  }
  return &rows_[it->second];
}

void ElementTable::Encode(std::string* dst) const {
  PutVarint64(dst, rows_.size());
  for (const ElementRow& row : rows_) {
    PutVarint32(dst, row.label_id);
    EncodeDewey(dst, row.dewey);
    PutVarint32(dst, row.level);
    PutVarint32(dst, static_cast<uint32_t>(row.label_path.size()));
    for (uint32_t id : row.label_path) PutVarint32(dst, id);
    PutLengthPrefixed(dst, row.content_feature.min_word);
    PutLengthPrefixed(dst, row.content_feature.max_word);
  }
}

Status ElementTable::Decode(Decoder* decoder) {
  rows_.clear();
  by_dewey_.clear();
  uint64_t n = 0;
  XKS_RETURN_IF_ERROR(decoder->GetVarint64(&n));
  if (n > decoder->remaining()) {
    return Status::Corruption("implausible element row count");
  }
  rows_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ElementRow row;
    XKS_RETURN_IF_ERROR(decoder->GetVarint32(&row.label_id));
    XKS_RETURN_IF_ERROR(DecodeDewey(decoder, &row.dewey));
    XKS_RETURN_IF_ERROR(decoder->GetVarint32(&row.level));
    uint32_t path_len = 0;
    XKS_RETURN_IF_ERROR(decoder->GetVarint32(&path_len));
    if (path_len > decoder->remaining()) {
      return Status::Corruption("implausible label path length");
    }
    row.label_path.resize(path_len);
    for (uint32_t j = 0; j < path_len; ++j) {
      XKS_RETURN_IF_ERROR(decoder->GetVarint32(&row.label_path[j]));
    }
    XKS_RETURN_IF_ERROR(decoder->GetLengthPrefixed(&row.content_feature.min_word));
    XKS_RETURN_IF_ERROR(decoder->GetLengthPrefixed(&row.content_feature.max_word));
    Append(std::move(row));
  }
  return Status::OK();
}

uint64_t ValueTable::Frequency(const std::string& word) const {
  auto it = frequencies_.find(word);
  return it == frequencies_.end() ? 0 : it->second;
}

std::vector<std::pair<std::string, uint64_t>> ValueTable::FrequencyTable() const {
  std::vector<std::pair<std::string, uint64_t>> table(frequencies_.begin(),
                                                      frequencies_.end());
  std::sort(table.begin(), table.end());
  return table;
}

void ValueTable::Encode(std::string* dst) const {
  PutVarint64(dst, rows_.size());
  for (const ValueRow& row : rows_) {
    PutLengthPrefixed(dst, row.keyword);
    PutVarint32(dst, row.label_id);
    EncodeDewey(dst, row.dewey);
    dst->push_back(static_cast<char>(row.source));
  }
  PutVarint64(dst, frequencies_.size());
  for (const auto& [word, count] : FrequencyTable()) {
    PutLengthPrefixed(dst, word);
    PutVarint64(dst, count);
  }
}

Status ValueTable::Decode(Decoder* decoder) {
  rows_.clear();
  frequencies_.clear();
  uint64_t n = 0;
  XKS_RETURN_IF_ERROR(decoder->GetVarint64(&n));
  if (n > decoder->remaining()) {
    return Status::Corruption("implausible value row count");
  }
  rows_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ValueRow row;
    XKS_RETURN_IF_ERROR(decoder->GetLengthPrefixed(&row.keyword));
    XKS_RETURN_IF_ERROR(decoder->GetVarint32(&row.label_id));
    XKS_RETURN_IF_ERROR(DecodeDewey(decoder, &row.dewey));
    uint32_t source = 0;
    XKS_RETURN_IF_ERROR(decoder->GetVarint32(&source));
    if (source > 2) return Status::Corruption("bad ValueSource");
    row.source = static_cast<ValueSource>(source);
    rows_.push_back(std::move(row));
  }
  uint64_t vocab = 0;
  XKS_RETURN_IF_ERROR(decoder->GetVarint64(&vocab));
  if (vocab > decoder->remaining()) {
    return Status::Corruption("implausible vocabulary size");
  }
  for (uint64_t i = 0; i < vocab; ++i) {
    std::string word;
    uint64_t count = 0;
    XKS_RETURN_IF_ERROR(decoder->GetLengthPrefixed(&word));
    XKS_RETURN_IF_ERROR(decoder->GetVarint64(&count));
    frequencies_.emplace(std::move(word), count);
  }
  return Status::OK();
}

}  // namespace xks
