#include "src/storage/tables.h"

#include <algorithm>

namespace xks {

void EncodeDewey(std::string* dst, const Dewey& dewey) {
  PutVarint32(dst, static_cast<uint32_t>(dewey.depth()));
  for (uint32_t c : dewey.components()) PutVarint32(dst, c);
}

Status DecodeDewey(ByteReader* reader, Dewey* dewey) {
  uint64_t n = 0;
  XKS_ASSIGN_OR_RETURN(n, reader->ReadCount("Dewey depth"));
  // Documents never nest a million levels deep; cap the depth well before
  // ReadCount's byte-budget bound would.
  if (n > 1u << 20) return Status::Corruption("implausible Dewey depth");
  std::vector<uint32_t> components(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    XKS_ASSIGN_OR_RETURN(components[i], reader->ReadVarint32());
  }
  *dewey = Dewey(std::move(components));
  return Status::OK();
}

uint32_t LabelTable::Intern(const std::string& label) {
  auto it = ids_.find(label);
  if (it != ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(names_.size());
  names_.push_back(label);
  ids_.emplace(label, id);
  return id;
}

uint32_t LabelTable::Lookup(const std::string& label) const {
  auto it = ids_.find(label);
  return it == ids_.end() ? kNoLabelId : it->second;
}

void LabelTable::Encode(std::string* dst) const {
  PutVarint64(dst, names_.size());
  for (const std::string& name : names_) PutLengthPrefixed(dst, name);
}

Status LabelTable::Decode(ByteReader* reader) {
  names_.clear();
  ids_.clear();
  uint64_t n = 0;
  XKS_ASSIGN_OR_RETURN(n, reader->ReadCount("label count"));
  names_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::string name;
    XKS_ASSIGN_OR_RETURN(name, reader->ReadLengthPrefixedString());
    ids_.emplace(name, static_cast<uint32_t>(names_.size()));
    names_.push_back(std::move(name));
  }
  return Status::OK();
}

void ElementTable::Append(ElementRow row) {
  by_dewey_.emplace(row.dewey, static_cast<uint32_t>(rows_.size()));
  rows_.push_back(std::move(row));
}

Result<const ElementRow*> ElementTable::Find(const Dewey& dewey) const {
  auto it = by_dewey_.find(dewey);
  if (it == by_dewey_.end()) {
    return Status::NotFound("element row for Dewey " + dewey.ToString());
  }
  return &rows_[it->second];
}

void ElementTable::Encode(std::string* dst) const {
  PutVarint64(dst, rows_.size());
  for (const ElementRow& row : rows_) {
    PutVarint32(dst, row.label_id);
    EncodeDewey(dst, row.dewey);
    PutVarint32(dst, row.level);
    PutVarint32(dst, static_cast<uint32_t>(row.label_path.size()));
    for (uint32_t id : row.label_path) PutVarint32(dst, id);
    PutLengthPrefixed(dst, row.content_feature.min_word);
    PutLengthPrefixed(dst, row.content_feature.max_word);
  }
}

Status ElementTable::Decode(ByteReader* reader) {
  rows_.clear();
  by_dewey_.clear();
  uint64_t n = 0;
  XKS_ASSIGN_OR_RETURN(n, reader->ReadCount("element row count"));
  rows_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ElementRow row;
    XKS_ASSIGN_OR_RETURN(row.label_id, reader->ReadVarint32());
    XKS_RETURN_IF_ERROR(DecodeDewey(reader, &row.dewey));
    XKS_ASSIGN_OR_RETURN(row.level, reader->ReadVarint32());
    uint64_t path_len = 0;
    XKS_ASSIGN_OR_RETURN(path_len, reader->ReadCount("label path length"));
    row.label_path.resize(static_cast<size_t>(path_len));
    for (uint64_t j = 0; j < path_len; ++j) {
      XKS_ASSIGN_OR_RETURN(row.label_path[j], reader->ReadVarint32());
    }
    XKS_ASSIGN_OR_RETURN(row.content_feature.min_word,
                         reader->ReadLengthPrefixedString());
    XKS_ASSIGN_OR_RETURN(row.content_feature.max_word,
                         reader->ReadLengthPrefixedString());
    Append(std::move(row));
  }
  return Status::OK();
}

uint64_t ValueTable::Frequency(const std::string& word) const {
  auto it = frequencies_.find(word);
  return it == frequencies_.end() ? 0 : it->second;
}

std::vector<std::pair<std::string, uint64_t>> ValueTable::FrequencyTable() const {
  std::vector<std::pair<std::string, uint64_t>> table(frequencies_.begin(),
                                                      frequencies_.end());
  std::sort(table.begin(), table.end());
  return table;
}

void ValueTable::Encode(std::string* dst) const {
  PutVarint64(dst, rows_.size());
  for (const ValueRow& row : rows_) {
    PutLengthPrefixed(dst, row.keyword);
    PutVarint32(dst, row.label_id);
    EncodeDewey(dst, row.dewey);
    dst->push_back(static_cast<char>(row.source));
  }
  PutVarint64(dst, frequencies_.size());
  for (const auto& [word, count] : FrequencyTable()) {
    PutLengthPrefixed(dst, word);
    PutVarint64(dst, count);
  }
}

Status ValueTable::Decode(ByteReader* reader) {
  rows_.clear();
  frequencies_.clear();
  uint64_t n = 0;
  XKS_ASSIGN_OR_RETURN(n, reader->ReadCount("value row count"));
  rows_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ValueRow row;
    XKS_ASSIGN_OR_RETURN(row.keyword, reader->ReadLengthPrefixedString());
    XKS_ASSIGN_OR_RETURN(row.label_id, reader->ReadVarint32());
    XKS_RETURN_IF_ERROR(DecodeDewey(reader, &row.dewey));
    uint32_t source = 0;
    XKS_ASSIGN_OR_RETURN(source, reader->ReadVarint32());
    if (source > 2) return Status::Corruption("bad ValueSource");
    row.source = static_cast<ValueSource>(source);
    rows_.push_back(std::move(row));
  }
  uint64_t vocab = 0;
  XKS_ASSIGN_OR_RETURN(vocab, reader->ReadCount("vocabulary size"));
  for (uint64_t i = 0; i < vocab; ++i) {
    std::string word;
    XKS_ASSIGN_OR_RETURN(word, reader->ReadLengthPrefixedString());
    uint64_t count = 0;
    XKS_ASSIGN_OR_RETURN(count, reader->ReadVarint64());
    frequencies_.emplace(std::move(word), count);
  }
  return Status::OK();
}

}  // namespace xks
