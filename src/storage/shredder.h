// Shredding: Document → the three relational tables.

#ifndef XKS_STORAGE_SHREDDER_H_
#define XKS_STORAGE_SHREDDER_H_

#include "src/storage/tables.h"
#include "src/xml/dom.h"

namespace xks {

/// Output of one shredding pass.
struct ShreddedTables {
  LabelTable labels;
  ElementTable elements;
  ValueTable values;
};

/// Shreds `doc` (which must already have Dewey codes assigned) into the
/// paper's three tables. Per node it:
///   * interns the label and emits an element row with the node's level,
///     the ancestor label-number-sequence and the cID of its own content;
///   * emits one value row per distinct word of Cv (label + attributes +
///     text, stop-words filtered), tagged with the word's source;
///   * counts every word occurrence into the frequency table (pre-dedup,
///     matching the Section 5.1 frequency numbers).
ShreddedTables Shred(const Document& doc);

}  // namespace xks

#endif  // XKS_STORAGE_SHREDDER_H_
