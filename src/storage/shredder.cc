#include "src/storage/shredder.h"

#include <algorithm>
#include <utility>

#include "src/text/stopwords.h"
#include "src/text/tokenizer.h"

namespace xks {
namespace {

/// Collects (word, source) pairs for one node, counting every occurrence
/// into the frequency table and deduplicating per node (a value row records
/// membership of a word in Cv, not its multiplicity).
void EmitValueRows(const Document& doc, NodeId id, uint32_t label_id,
                   ShreddedTables* out) {
  const Node& n = doc.node(id);
  std::vector<std::pair<std::string, ValueSource>> words;
  auto add = [&](ValueSource source) {
    return [&out, &words, source](std::string&& w) {
      if (IsStopWord(w)) return;
      out->values.CountWord(w);
      words.emplace_back(std::move(w), source);
    };
  };
  ForEachWord(n.label, add(ValueSource::kLabel));
  for (const Attribute& a : n.attributes) {
    ForEachWord(a.name, add(ValueSource::kAttribute));
    ForEachWord(a.value, add(ValueSource::kAttribute));
  }
  ForEachWord(n.text, add(ValueSource::kText));

  // Deduplicate per word, keeping the first (highest-priority) source.
  std::stable_sort(words.begin(), words.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  for (size_t i = 0; i < words.size(); ++i) {
    if (i > 0 && words[i].first == words[i - 1].first) continue;
    ValueRow row;
    row.keyword = words[i].first;
    row.label_id = label_id;
    row.dewey = n.dewey;
    row.source = words[i].second;
    out->values.Append(std::move(row));
  }
}

}  // namespace

ShreddedTables Shred(const Document& doc) {
  ShreddedTables out;
  if (doc.empty()) return out;

  // Recursion-free preorder walk carrying the ancestor label-id path.
  struct Frame {
    NodeId id;
    size_t path_len;  // label_path prefix length when entering this node
  };
  std::vector<uint32_t> path;
  std::vector<Frame> stack = {{doc.root(), 0}};
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    path.resize(frame.path_len);

    const Node& n = doc.node(frame.id);
    uint32_t label_id = out.labels.Intern(n.label);
    path.push_back(label_id);

    ElementRow row;
    row.label_id = label_id;
    row.dewey = n.dewey;
    row.level = static_cast<uint32_t>(n.dewey.depth());
    row.label_path = path;
    row.content_feature = ContentIdOf(ContentWords(doc, frame.id));
    out.elements.Append(std::move(row));

    EmitValueRows(doc, frame.id, label_id, &out);

    for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
      stack.push_back({*it, path.size()});
    }
  }
  return out;
}

}  // namespace xks
