// Fragment rendering: materialize a result fragment as XML text.
//
// Fragment trees carry structure, labels and search metadata; the original
// attributes and text live in the source document. Given both, this module
// reconstructs a self-contained XML snippet for each meaningful RTF — the
// presentation layer the paper's snippet-generation reference [25] motivates.

#ifndef XKS_CORE_RENDER_H_
#define XKS_CORE_RENDER_H_

#include <string>

#include "src/common/result.h"
#include "src/core/fragment.h"
#include "src/xml/dom.h"

namespace xks {

/// Rendering knobs.
struct RenderOptions {
  /// Pretty-print indentation; empty for compact output.
  std::string indent = "  ";
  /// Emit text content for non-keyword (path) nodes too. Keyword nodes
  /// always carry their text.
  bool include_internal_text = false;
  /// Emit attributes from the source document.
  bool include_attributes = true;
};

/// Renders `fragment` against its source document. Fails with NotFound when
/// the fragment references nodes absent from `doc` (i.e. the fragment was
/// produced from a different document).
Result<std::string> RenderFragmentXml(const Document& doc,
                                      const FragmentTree& fragment,
                                      const RenderOptions& options = {});

}  // namespace xks

#endif  // XKS_CORE_RENDER_H_
