#include "src/core/ranking.h"

#include <algorithm>
#include <bit>

#include "src/common/string_util.h"

namespace xks {

std::string FragmentScore::ToString() const {
  return StrFormat(
      "total=%.4f (specificity=%.3f proximity=%.3f compactness=%.3f "
      "slca=%.0f concentration=%.3f)",
      total, specificity, proximity, compactness, slca, match_concentration);
}

std::vector<FragmentScore> RankFragments(const SearchResult& result, size_t k,
                                         const RankingWeights& weights,
                                         size_t depth_normalizer) {
  std::vector<FragmentScore> scores;
  scores.reserve(result.fragments.size());
  if (result.fragments.empty()) return scores;

  size_t max_depth = std::max<size_t>(1, depth_normalizer);
  if (depth_normalizer == 0) {
    for (const FragmentResult& f : result.fragments) {
      max_depth = std::max(max_depth, f.rtf.root.depth());
    }
  }

  for (size_t i = 0; i < result.fragments.size(); ++i) {
    const FragmentResult& f = result.fragments[i];
    FragmentScore score;
    score.fragment_index = i;

    score.specificity =
        static_cast<double>(f.rtf.root.depth()) / static_cast<double>(max_depth);

    // Average path length from the root to each keyword node, in edges;
    // a fragment equal to its own keyword node has distance 0 → proximity 1.
    double total_distance = 0;
    for (const RtfKeywordNode& kn : f.rtf.knodes) {
      total_distance +=
          static_cast<double>(kn.dewey.depth() - f.rtf.root.depth());
    }
    const double avg_distance =
        f.rtf.knodes.empty()
            ? 0.0
            : total_distance / static_cast<double>(f.rtf.knodes.size());
    score.proximity = 1.0 / (1.0 + avg_distance);

    const size_t fragment_nodes = std::max<size_t>(1, f.fragment.size());
    score.compactness = static_cast<double>(f.fragment.KeywordNodeCount()) /
                        static_cast<double>(fragment_nodes);

    score.slca = f.rtf.root_is_slca ? 1.0 : 0.0;

    double matched_bits = 0;
    for (const RtfKeywordNode& kn : f.rtf.knodes) {
      matched_bits += static_cast<double>(std::popcount(kn.mask));
    }
    score.match_concentration =
        f.rtf.knodes.empty() || k == 0
            ? 0.0
            : matched_bits /
                  (static_cast<double>(f.rtf.knodes.size()) *
                   static_cast<double>(k));

    score.total = weights.specificity * score.specificity +
                  weights.proximity * score.proximity +
                  weights.compactness * score.compactness +
                  weights.slca_bonus * score.slca +
                  weights.match_concentration * score.match_concentration;
    scores.push_back(score);
  }

  std::stable_sort(scores.begin(), scores.end(),
                   [](const FragmentScore& a, const FragmentScore& b) {
                     return a.total > b.total;
                   });
  return scores;
}

std::vector<size_t> TopFragments(const SearchResult& result, size_t k,
                                 size_t limit, const RankingWeights& weights) {
  std::vector<FragmentScore> scores = RankFragments(result, k, weights);
  std::vector<size_t> top;
  for (size_t i = 0; i < scores.size() && i < limit; ++i) {
    top.push_back(scores[i].fragment_index);
  }
  return top;
}

}  // namespace xks
