#include "src/core/query.h"

#include <algorithm>

#include "src/common/string_util.h"
#include "src/text/stopwords.h"
#include "src/text/tokenizer.h"

namespace xks {

Result<KeywordQuery> KeywordQuery::Parse(const std::string& text) {
  std::vector<QueryTerm> terms;
  for (const std::string& token : SplitString(text, " \t\r\n")) {
    size_t colon = token.find(':');
    if (colon != std::string::npos) {
      // Label-constrained term "label:word".
      if (token.find(':', colon + 1) != std::string::npos) {
        return Status::InvalidArgument("malformed label constraint '" + token +
                                       "' (more than one ':')");
      }
      std::vector<std::string> label_words = TokenizeWords(token.substr(0, colon));
      std::vector<std::string> words = TokenizeWords(token.substr(colon + 1));
      if (label_words.size() != 1 || words.empty()) {
        return Status::InvalidArgument("malformed label constraint '" + token +
                                       "' (expected label:word)");
      }
      for (std::string& w : words) {
        terms.push_back(QueryTerm{std::move(w), label_words[0]});
      }
      continue;
    }
    for (std::string& w : TokenizeWords(token)) {
      terms.push_back(QueryTerm{std::move(w), ""});
    }
  }
  return FromTerms(std::move(terms));
}

Result<KeywordQuery> KeywordQuery::FromKeywords(std::vector<std::string> keywords) {
  std::vector<QueryTerm> terms;
  terms.reserve(keywords.size());
  for (std::string& raw : keywords) {
    terms.push_back(QueryTerm{std::move(raw), ""});
  }
  return FromTerms(std::move(terms));
}

Result<KeywordQuery> KeywordQuery::FromTerms(std::vector<QueryTerm> terms) {
  KeywordQuery query;
  for (QueryTerm& raw : terms) {
    QueryTerm term{AsciiLower(raw.word), AsciiLower(raw.label)};
    if (term.word.empty() || IsStopWord(term.word)) continue;
    if (std::find(query.terms_.begin(), query.terms_.end(), term) !=
        query.terms_.end()) {
      continue;  // duplicate term
    }
    query.keywords_.push_back(term.word);
    query.terms_.push_back(std::move(term));
  }
  if (query.terms_.empty()) {
    return Status::InvalidArgument("query has no usable keywords");
  }
  if (query.terms_.size() > kMaxQueryKeywords) {
    return Status::InvalidArgument(
        StrFormat("query has %zu terms; the library supports at most %zu",
                  query.terms_.size(), kMaxQueryKeywords));
  }
  return query;
}

bool KeywordQuery::has_label_constraints() const {
  for (const QueryTerm& term : terms_) {
    if (term.constrained()) return true;
  }
  return false;
}

std::string KeywordQuery::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(terms_.size());
  for (const QueryTerm& term : terms_) {
    parts.push_back(term.constrained() ? term.label + ":" + term.word
                                       : term.word);
  }
  return JoinStrings(parts, " ");
}

uint64_t PaperKeyNumber(KeywordMask mask, size_t k) {
  uint64_t key = 0;
  for (size_t i = 0; i < k; ++i) {
    if (mask & (KeywordMask{1} << i)) {
      key |= uint64_t{1} << (k - 1 - i);
    }
  }
  return key;
}

KeywordMask MaskFromPaperKeyNumber(uint64_t key_number, size_t k) {
  KeywordMask mask = 0;
  for (size_t i = 0; i < k; ++i) {
    if (key_number & (uint64_t{1} << (k - 1 - i))) {
      mask |= KeywordMask{1} << i;
    }
  }
  return mask;
}

std::string KListString(KeywordMask mask, size_t k) {
  std::string out;
  for (size_t i = 0; i < k; ++i) {
    if (i > 0) out.push_back(' ');
    out.push_back((mask & (KeywordMask{1} << i)) ? '1' : '0');
  }
  return out;
}

}  // namespace xks
