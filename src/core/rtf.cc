#include "src/core/rtf.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>

#include "src/common/string_util.h"
#include "src/lca/merge.h"

namespace xks {

std::vector<Rtf> GetRtfs(const std::vector<Dewey>& lcas, const KeywordLists& lists) {
  std::vector<Rtf> rtfs(lcas.size());
  for (size_t i = 0; i < lcas.size(); ++i) rtfs[i].root = lcas[i];
  if (lcas.empty()) return rtfs;

  // Merge sweep: walk keyword nodes in document order while maintaining the
  // stack of LCA nodes that are ancestors-or-self of the current position;
  // the stack top is then the *last* LCA in preorder that covers the node
  // (Algorithm 1, getRTF line 4).
  size_t next = 0;
  std::vector<size_t> stack;
  MergePostings(lists, [&](const Dewey& d, KeywordMask mask) {
    while (next < lcas.size() && lcas[next] <= d) {
      while (!stack.empty() && !lcas[stack.back()].IsAncestorOrSelf(lcas[next])) {
        stack.pop_back();
      }
      stack.push_back(next);
      ++next;
    }
    while (!stack.empty() && !lcas[stack.back()].IsAncestorOrSelf(d)) {
      stack.pop_back();
    }
    if (!stack.empty()) {
      rtfs[stack.back()].knodes.push_back(RtfKeywordNode{d, mask});
    }
  });
  return rtfs;
}

std::vector<Rtf> GetRtfsOracle(const std::vector<Dewey>& lcas,
                               const KeywordLists& lists) {
  std::vector<Rtf> rtfs(lcas.size());
  for (size_t i = 0; i < lcas.size(); ++i) rtfs[i].root = lcas[i];
  MergePostings(lists, [&](const Dewey& d, KeywordMask mask) {
    // Deepest LCA ancestor by linear scan.
    size_t best = lcas.size();
    for (size_t i = 0; i < lcas.size(); ++i) {
      if (lcas[i].IsAncestorOrSelf(d) &&
          (best == lcas.size() || lcas[i].depth() > lcas[best].depth())) {
        best = i;
      }
    }
    if (best != lcas.size()) rtfs[best].knodes.push_back(RtfKeywordNode{d, mask});
  });
  return rtfs;
}

Result<FragmentTree> BuildFragmentTree(const Rtf& rtf, const NodeMetadata& metadata) {
  FragmentTree tree;
  std::vector<std::string> root_labels;
  XKS_ASSIGN_OR_RETURN(root_labels, metadata.AncestorLabels(rtf.root));
  if (root_labels.size() != rtf.root.depth()) {
    return Status::Internal("ancestor labels disagree with Dewey depth for " +
                            rtf.root.ToString());
  }
  FragmentNode root;
  root.dewey = rtf.root;
  root.label = root_labels.back();
  tree.CreateRoot(std::move(root));

  std::unordered_map<Dewey, FragmentNodeId, DeweyHash> ids;
  ids.emplace(rtf.root, tree.root());

  for (const RtfKeywordNode& knode : rtf.knodes) {
    if (!rtf.root.IsAncestorOrSelf(knode.dewey)) {
      return Status::Internal("keyword node " + knode.dewey.ToString() +
                              " outside RTF rooted at " + rtf.root.ToString());
    }
    std::vector<std::string> labels;
    XKS_ASSIGN_OR_RETURN(labels, metadata.AncestorLabels(knode.dewey));
    if (labels.size() != knode.dewey.depth()) {
      return Status::Internal("ancestor labels disagree with Dewey depth for " +
                              knode.dewey.ToString());
    }
    // Materialize the path from the RTF root down to the keyword node.
    FragmentNodeId current = tree.root();
    for (size_t depth = rtf.root.depth() + 1; depth <= knode.dewey.depth(); ++depth) {
      Dewey prefix(std::vector<uint32_t>(
          knode.dewey.components().begin(),
          knode.dewey.components().begin() + static_cast<long>(depth)));
      auto it = ids.find(prefix);
      if (it != ids.end()) {
        current = it->second;
        continue;
      }
      FragmentNode node;
      node.dewey = prefix;
      node.label = labels[depth - 1];
      FragmentNodeId id = tree.AddChild(current, std::move(node));
      ids.emplace(std::move(prefix), id);
      current = id;
    }
    FragmentNode& leaf = tree.mutable_node(current);
    leaf.is_keyword_node = true;
    leaf.klist |= knode.mask;
    XKS_ASSIGN_OR_RETURN(leaf.cid, metadata.OwnContentId(knode.dewey));
  }

  // Transfer kList and cID to every ancestor (the information-transfer the
  // paper adds to pruneRTF, lines 11-12). Parents always precede children in
  // the arena, so one reverse pass folds bottom-up.
  for (FragmentNodeId id = static_cast<FragmentNodeId>(tree.size()) - 1; id > 0; --id) {
    const FragmentNode& n = tree.node(id);
    FragmentNode& parent = tree.mutable_node(n.parent);
    parent.klist |= n.klist;
    parent.cid.Merge(n.cid);
  }
  return tree;
}

namespace {

/// Bottom-up Definition-2 evaluation state.
struct DefinitionContext {
  std::vector<std::vector<Dewey>> keyword_sets;  // D_i
  size_t budget = 0;                             // remaining LCA evaluations
};

Dewey LcaOfUnionParts(const std::vector<std::vector<Dewey>>& parts) {
  Dewey lca;
  for (const auto& part : parts) {
    for (const Dewey& d : part) lca = Dewey::Lca(lca, d);
  }
  return lca;
}

/// Enumerates every nonempty subset of `pool` and calls visit(subset);
/// returns false when visit returns false (early exit).
bool ForEachNonemptySubset(const std::vector<Dewey>& pool,
                           const std::function<bool(const std::vector<Dewey>&)>& visit) {
  const size_t n = pool.size();
  std::vector<Dewey> subset;
  for (uint64_t mask = 1; mask < (uint64_t{1} << n); ++mask) {
    subset.clear();
    for (size_t i = 0; i < n; ++i) {
      if (mask & (uint64_t{1} << i)) subset.push_back(pool[i]);
    }
    if (!visit(subset)) return false;
  }
  return true;
}

/// Condition 1: every sub-combination of the partition keeps the same LCA.
bool Condition1Holds(const std::vector<std::vector<Dewey>>& partition,
                     const Dewey& lca, DefinitionContext* ctx) {
  // Recursive product over per-keyword nonempty subsets.
  std::vector<std::vector<Dewey>> chosen(partition.size());
  std::function<bool(size_t)> recurse = [&](size_t i) -> bool {
    if (i == partition.size()) {
      if (ctx->budget > 0) --ctx->budget;
      return LcaOfUnionParts(chosen) == lca;
    }
    return ForEachNonemptySubset(partition[i], [&](const std::vector<Dewey>& s) {
      chosen[i] = s;
      return recurse(i + 1);
    });
  };
  return recurse(0);
}

/// Condition 2 (maximality): no unclaimed extension of one keyword's part
/// keeps the LCA unchanged.
bool Condition2Violated(const std::vector<std::vector<Dewey>>& partition,
                        const std::vector<std::vector<Dewey>>& available_extra,
                        const Dewey& lca, DefinitionContext* ctx) {
  for (size_t i = 0; i < partition.size(); ++i) {
    bool found = !ForEachNonemptySubset(
        available_extra[i], [&](const std::vector<Dewey>& extra) {
          if (ctx->budget > 0) --ctx->budget;
          Dewey extended = lca;  // lca already covers the partition
          for (const Dewey& d : extra) extended = Dewey::Lca(extended, d);
          return extended != lca;  // keep scanning while LCA changes
        });
    if (found) return true;
  }
  return false;
}

/// Condition 3 (no lowering): no sub-part of one keyword's part combines
/// with unclaimed choices for the other keywords into a strictly lower LCA.
bool Condition3Violated(const std::vector<std::vector<Dewey>>& partition,
                        const std::vector<std::vector<Dewey>>& available,
                        const Dewey& lca, DefinitionContext* ctx) {
  const size_t k = partition.size();
  for (size_t i = 0; i < k; ++i) {
    bool violated = !ForEachNonemptySubset(
        partition[i], [&](const std::vector<Dewey>& sub) {
          // Fold the sub-part, then search the other keywords' choices for a
          // strictly lower combined LCA. Greedy per-keyword minimization is
          // unsound, so enumerate.
          std::vector<std::vector<Dewey>> chosen(k);
          chosen[i] = sub;
          std::function<bool(size_t)> recurse = [&](size_t j) -> bool {
            if (j == k) {
              if (ctx->budget > 0) --ctx->budget;
              Dewey combined = LcaOfUnionParts(chosen);
              return !lca.IsAncestor(combined);  // continue while not lower
            }
            if (j == i) return recurse(j + 1);
            return ForEachNonemptySubset(available[j],
                                         [&](const std::vector<Dewey>& s) {
                                           chosen[j] = s;
                                           return recurse(j + 1);
                                         });
          };
          return recurse(0);  // false (stop) as soon as a lower LCA is found
        });
    if (violated) return true;
  }
  return false;
}

}  // namespace

Result<EctEnumeration> RtfsByDefinition(const KeywordLists& lists,
                                        size_t max_combinations) {
  EctEnumeration out;
  if (AnyListEmpty(lists)) return out;
  const size_t k = lists.size();

  DefinitionContext ctx;
  ctx.budget = max_combinations * 64;
  uint64_t combinations = 1;
  for (const PostingList* list : lists) {
    if (list->size() > 20) {
      return Status::InvalidArgument("keyword list too large for enumeration");
    }
    combinations *= (uint64_t{1} << list->size()) - 1;
    if (combinations > max_combinations) {
      return Status::InvalidArgument(
          StrFormat("ECT would hold %llu combinations (cap %zu)",
                    static_cast<unsigned long long>(combinations),
                    max_combinations));
    }
    ctx.keyword_sets.emplace_back(list->begin(), list->end());
  }

  // Definition 1: enumerate the distinct unions (ECT_Q). Example 3: 11
  // distinct combinations for "Liu Keyword" on Figure 1(a), not 21.
  std::set<std::vector<Dewey>> unions;
  {
    std::vector<Dewey> current;
    std::function<void(size_t)> recurse = [&](size_t i) {
      if (i == k) {
        std::vector<Dewey> v = current;
        SortUniqueDeweys(&v);
        unions.insert(std::move(v));
        return;
      }
      ForEachNonemptySubset(ctx.keyword_sets[i], [&](const std::vector<Dewey>& s) {
        size_t before = current.size();
        current.insert(current.end(), s.begin(), s.end());
        recurse(i + 1);
        current.resize(before);
        return true;
      });
    };
    recurse(0);
  }
  out.partition_count = unions.size();

  // Group unions by their LCA and evaluate bottom-up (deepest LCA first:
  // reverse document order visits descendants before ancestors).
  std::map<Dewey, std::vector<std::vector<Dewey>>> by_lca;
  for (const std::vector<Dewey>& v : unions) {
    Dewey lca;
    for (const Dewey& d : v) lca = Dewey::Lca(lca, d);
    by_lca[lca].push_back(v);
  }

  std::set<Dewey> claimed;
  std::vector<Rtf> accepted;
  for (auto it = by_lca.rbegin(); it != by_lca.rend(); ++it) {
    const Dewey& lca = it->first;
    // Unclaimed extras per keyword (for conditions 2 and 3).
    std::vector<std::vector<Dewey>> available(k);
    for (size_t i = 0; i < k; ++i) {
      for (const Dewey& d : ctx.keyword_sets[i]) {
        if (claimed.count(d) == 0) available[i].push_back(d);
      }
    }
    const std::vector<Dewey>* best = nullptr;
    for (const std::vector<Dewey>& v : it->second) {
      // Uniqueness requirement: partitions are disjoint.
      bool overlaps = false;
      for (const Dewey& d : v) {
        if (claimed.count(d) > 0) {
          overlaps = true;
          break;
        }
      }
      if (overlaps) continue;
      // Split the union into per-keyword parts P_i = V ∩ D_i.
      std::vector<std::vector<Dewey>> partition(k);
      std::vector<std::vector<Dewey>> extra(k);  // available − P_i
      bool part_missing = false;
      for (size_t i = 0; i < k; ++i) {
        for (const Dewey& d : available[i]) {
          if (std::binary_search(v.begin(), v.end(), d)) {
            partition[i].push_back(d);
          } else {
            extra[i].push_back(d);
          }
        }
        if (partition[i].empty()) part_missing = true;
      }
      if (part_missing) continue;  // keyword only covered by claimed nodes
      if (ctx.budget == 0) {
        return Status::InvalidArgument("Definition-2 evaluation budget exhausted");
      }
      if (!Condition1Holds(partition, lca, &ctx)) continue;
      if (Condition2Violated(partition, extra, lca, &ctx)) continue;
      std::vector<std::vector<Dewey>> avail_full(k);
      for (size_t i = 0; i < k; ++i) {
        avail_full[i] = partition[i];
        avail_full[i].insert(avail_full[i].end(), extra[i].begin(), extra[i].end());
      }
      if (Condition3Violated(partition, avail_full, lca, &ctx)) continue;
      if (best == nullptr || v.size() > best->size()) best = &v;
    }
    if (best != nullptr) {
      Rtf rtf;
      rtf.root = lca;
      for (const Dewey& d : *best) {
        KeywordMask mask = 0;
        for (size_t i = 0; i < k; ++i) {
          if (std::binary_search(ctx.keyword_sets[i].begin(),
                                 ctx.keyword_sets[i].end(), d)) {
            mask |= KeywordMask{1} << i;
          }
        }
        rtf.knodes.push_back(RtfKeywordNode{d, mask});
        claimed.insert(d);
      }
      accepted.push_back(std::move(rtf));
    }
  }
  std::sort(accepted.begin(), accepted.end(),
            [](const Rtf& a, const Rtf& b) { return a.root < b.root; });
  out.rtfs = std::move(accepted);
  return out;
}

}  // namespace xks
