#include "src/core/node_info.h"

#include <algorithm>
#include <map>

namespace xks {

std::vector<LabelItem> BuildLabelItems(const FragmentTree& tree, FragmentNodeId id,
                                       size_t k) {
  std::vector<LabelItem> items;
  std::map<std::string, size_t> index;
  for (FragmentNodeId child : tree.node(id).children) {
    const FragmentNode& c = tree.node(child);
    auto [it, inserted] = index.emplace(c.label, items.size());
    if (inserted) {
      items.push_back(LabelItem{});
      items.back().label = c.label;
    }
    LabelItem& item = items[it->second];
    ++item.counter;
    item.chk_list.push_back(PaperKeyNumber(c.klist, k));
    item.chcid_list.push_back(c.cid);
    item.ch_list.push_back(child);
  }
  for (LabelItem& item : items) {
    std::sort(item.chk_list.begin(), item.chk_list.end());
    item.chk_list.erase(std::unique(item.chk_list.begin(), item.chk_list.end()),
                        item.chk_list.end());
  }
  return items;
}

bool KeyNumberCovered(uint64_t key, const std::vector<uint64_t>& chk_list) {
  // chk_list is sorted; only numbers greater than `key` can strictly cover it.
  auto it = std::upper_bound(chk_list.begin(), chk_list.end(), key);
  for (; it != chk_list.end(); ++it) {
    if ((key & *it) == key) return true;
  }
  return false;
}

}  // namespace xks
